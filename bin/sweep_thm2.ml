(* E2 sweep: the two-row attack on wrapped grids.

   dune exec bin/sweep_thm2.exe -- --side 51 --wrap torus *)

open Online_local
open Cmdliner

let run side wrap_name =
  let wrap =
    match wrap_name with
    | "torus" -> `Toroidal
    | "cylinder" -> `Cylindrical
    | other -> failwith ("unknown wrap: " ^ other)
  in
  List.iter
    (fun (name, algorithm) ->
      let r = Thm2_adversary.run ~wrap ~side ~algorithm () in
      Format.printf "thm2 %s side=%d vs %-12s %a@." wrap_name side name
        Thm2_adversary.pp_report r)
    [ ("greedy", Portfolio.greedy ()); ("ael(T=1)", Portfolio.ael ~t:1 ()) ]

let side = Arg.(value & opt int 21 & info [ "side" ] ~doc:"Grid side (odd).")
let wrap = Arg.(value & opt string "torus" & info [ "wrap" ] ~doc:"torus|cylinder.")

let cmd =
  Cmd.v (Cmd.info "sweep_thm2" ~doc:"Theorem 2 adversary sweep") Term.(const run $ side $ wrap)

let () = exit (Cmd.eval cmd)
