(* E2 sweep: the two-row attack on wrapped grids, over a parameter grid.

   dune exec bin/sweep_thm2.exe -- --side 21,51 --wrap torus,cylinder \
     --jobs 4 --checkpoint sweep_thm2.ckpt *)

open Cmdliner

let run sides wraps checkpoint resume exec trace metrics stats flight bulk memo =
  let cells =
    List.concat_map
      (fun wrap ->
        List.concat_map
          (fun side ->
            List.map
              (fun (algo, _) ->
                Jobs_catalog.thm2_cell ~memo ~bulk ~side ~wrap ~algo ())
              Jobs_catalog.thm2_algorithms)
          (Harness.Sweep.int_axis ~flag:"--side" sides))
      (Harness.Sweep.string_axis ~flag:"--wrap" wraps)
  in
  Obs_cli.with_observability ~program:"sweep_thm2" ~trace ~metrics ~stats ~flight
  @@ fun () ->
  match
    Harness.Sweep.run ~resume ?checkpoint ~jobs:exec.Obs_cli.jobs
      ~isolation:exec.Obs_cli.isolation ~supervisor:exec.Obs_cli.supervisor
      ~ppf:Format.std_formatter cells
  with
  | () -> 0
  | exception Harness.Sweep.Interrupted ->
      Format.eprintf "interrupted; finished cells are checkpointed@.";
      130

let sides =
  Arg.(value & opt string "21" & info [ "side" ] ~doc:"Grid sides (odd, comma-separated).")

let wraps =
  Arg.(value & opt string "torus" & info [ "wrap" ] ~doc:"torus|cylinder (comma-separated).")

let checkpoint =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~doc:"Append finished cells to this file.")

let resume =
  Arg.(value & flag & info [ "resume" ] ~doc:"Replay cells already in the checkpoint.")

let cmd =
  Cmd.v
    (Cmd.info "sweep_thm2" ~doc:"Theorem 2 adversary sweep")
    Term.(
      const run $ sides $ wraps $ checkpoint $ resume $ Obs_cli.exec_term
      $ Obs_cli.trace $ Obs_cli.metrics $ Obs_cli.stats $ Obs_cli.flight
      $ Obs_cli.bulk $ Obs_cli.memo)

let () = exit (Cmd.eval' cmd)
