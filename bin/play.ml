(* Pit any portfolio algorithm against any adversary.

   dune exec bin/play.exe -- --game thm1-grid --algo ael -t 2 --size 500
   dune exec bin/play.exe -- --game thm1-grid --algo ael --paranoid --deadline 30
   dune exec bin/play.exe -- --list *)

open Online_local
open Cmdliner

let algorithm_of name t =
  match name with
  | "greedy" -> Portfolio.greedy ()
  | "parity" -> Portfolio.hint_parity ()
  | "stripes" -> Portfolio.stripes3 ()
  | "gadget-rows" -> Portfolio.gadget_rows ()
  | "ael" -> Portfolio.ael ~t ()
  | "kp1" -> Portfolio.kp1 ~k:2 ~t ()
  | other -> failwith ("unknown algorithm: " ^ other)

let run list_games game_name algo_name t n paranoid memo max_calls max_work
    deadline trace metrics stats flight =
  if list_games then begin
    List.iter
      (fun g -> Format.printf "%-18s %s@." g.Game.name g.Game.description)
      Game.games;
    0
  end
  else
    match Game.find game_name with
    | None ->
        Format.printf "unknown game %s; try --list@." game_name;
        1
    | Some g ->
        Obs_cli.with_observability ~program:"play" ~trace ~metrics ~stats ~flight
        @@ fun () ->
        let d = Harness.Guard.default_limits in
        let limits =
          {
            Harness.Guard.max_color_calls =
              (match max_calls with Some _ as c -> c | None -> d.max_color_calls);
            max_work = (match max_work with Some _ as w -> w | None -> d.max_work);
            deadline;
          }
        in
        let verdict = g.Game.play ~paranoid ~memo ~limits ~n (algorithm_of algo_name t) in
        Format.printf "%a@." Game.pp_verdict verdict;
        0

let list_games = Arg.(value & flag & info [ "list" ] ~doc:"List the games.")
let game = Arg.(value & opt string "thm1-grid" & info [ "game" ] ~doc:"Game name.")

let algo =
  Arg.(
    value
    & opt string "ael"
    & info [ "algo" ] ~doc:"greedy|parity|stripes|gadget-rows|ael|kp1.")

let t = Arg.(value & opt int 1 & info [ "t"; "locality" ] ~doc:"Locality for ael/kp1.")
let n = Arg.(value & opt int 400 & info [ "n"; "size" ] ~doc:"Instance size (per game).")

let paranoid =
  Arg.(
    value & flag
    & info [ "paranoid" ] ~doc:"Audit the adversary's transcript (thm1; slow).")

let max_calls =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-calls" ] ~doc:"Color-call budget for the algorithm.")

let max_work =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-work" ] ~doc:"Cooperative work budget for the algorithm.")

let deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~doc:"Wall-clock deadline in seconds.")

let cmd =
  Cmd.v
    (Cmd.info "play" ~doc:"Pit an algorithm against a lower-bound adversary")
    Term.(
      const run $ list_games $ game $ algo $ t $ n $ paranoid $ Obs_cli.memo
      $ max_calls $ max_work
      $ deadline $ Obs_cli.trace $ Obs_cli.metrics $ Obs_cli.stats
      $ Obs_cli.flight)

let () = exit (Cmd.eval' cmd)
