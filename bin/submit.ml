(* Client for serve.exe: submit jobs, print their results in spec
   order, byte-identical to a local serverless run of the same cells.

     dune exec bin/submit.exe -- --socket /tmp/jobs.sock --kind thm1 \
       "t=1 k=9 side=4000 algo=ael" "t=2 k=9 side=4000 algo=ael"
     dune exec bin/submit.exe -- --socket /tmp/jobs.sock --from jobs.txt
     dune exec bin/submit.exe -- --socket /tmp/jobs.sock --health
     dune exec bin/submit.exe -- --socket /tmp/jobs.sock --server-stats

   A --from file holds one job per line, "kind<TAB>payload".  Retries
   (dropped connections, truncated frames, typed rejections) are
   automatic, seeded, and safe: job ids are content-derived, so a
   resubmit can never run a job twice.  The retry/reconnect tally goes
   to stderr; stdout carries only results. *)

open Cmdliner

let read_specs_file path =
  In_channel.with_open_bin path @@ fun ic ->
  let rec go acc =
    match In_channel.input_line ic with
    | None -> List.rev acc
    | Some "" -> go acc
    | Some line -> (
        match String.index_opt line '\t' with
        | None -> failwith (Printf.sprintf "%s: line without a TAB: %s" path line)
        | Some t ->
            let kind = String.sub line 0 t in
            let payload = String.sub line (t + 1) (String.length line - t - 1) in
            go ((kind, payload) :: acc))
  in
  go []

let run socket kind payloads from deadline_ms window max_attempts health stats
    trace metrics stats_out flight =
  Obs_cli.with_observability ~program:"submit" ~trace ~metrics ~stats:stats_out ~flight
  @@ fun () ->
  (* exit 2: the server is unreachable — an operational state with its
     own exit code, distinct from protocol/usage failures (exit 1) *)
  let print_or_unreachable = function
    | Ok json ->
        print_endline json;
        0
    | Error (`Unreachable reason) ->
        Format.eprintf "submit: cannot reach %s: %s@." socket reason;
        2
  in
  try
    if health then print_or_unreachable (Harness.Client.health ~socket ())
    else if stats then print_or_unreachable (Harness.Client.stats ~socket ())
    else begin
      let specs =
        (match from with Some path -> read_specs_file path | None -> [])
        @ List.map (fun p -> (kind, p)) payloads
      in
      if specs = [] then begin
        Format.eprintf "submit: nothing to submit (positional payloads or --from)@.";
        2
      end
      else begin
        let deadline =
          Option.map (fun ms -> float_of_int ms /. 1000.) deadline_ms
        in
        let campaign =
          Harness.Client.run_campaign ~window ?deadline ~max_attempts ~socket
            specs
        in
        List.iter
          (fun result -> Format.printf "%s@." result)
          campaign.Harness.Client.results;
        Format.eprintf "submit: %d results (%d resubmits, %d rejections, %d reconnects)@."
          (List.length campaign.Harness.Client.results)
          campaign.Harness.Client.resubmits campaign.Harness.Client.rejections
          campaign.Harness.Client.reconnects;
        0
      end
    end
  with Failure msg ->
    Format.eprintf "submit: %s@." msg;
    1

let socket =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH|tcp:PORT"
        ~doc:"The serve.exe socket: a Unix-domain path or $(b,tcp:PORT).")

let kind =
  Arg.(
    value
    & opt string "thm1"
    & info [ "kind" ] ~docv:"KIND"
        ~doc:"Job kind for positional payloads: thm1|thm2|thm3|fuzz.")

let payloads =
  Arg.(value & pos_all string [] & info [] ~docv:"PAYLOAD" ~doc:"Job payloads.")

let from =
  Arg.(
    value
    & opt (some string) None
    & info [ "from" ] ~docv:"FILE"
        ~doc:"Also submit one job per line of $(docv): kind<TAB>payload.")

let deadline_ms =
  Arg.(
    value
    & opt (some Obs_cli.positive_int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Per-attempt job deadline forwarded with each submit.")

let window =
  Arg.(
    value
    & opt Obs_cli.positive_int 16
    & info [ "window" ] ~docv:"N" ~doc:"Max jobs kept in flight (pipelining).")

let max_attempts =
  Arg.(
    value
    & opt Obs_cli.positive_int 10_000
    & info [ "max-attempts" ] ~docv:"N"
        ~doc:
          "Give up after $(docv) consecutive connection failures, or $(docv) \
           rejections of one job.")

let health =
  Arg.(
    value & flag
    & info [ "health" ] ~doc:"Print the server's health JSON and exit.")

let stats =
  Arg.(
    value & flag
    & info [ "server-stats" ]
        ~doc:
          "Print the server's stats JSON and exit.  (The shared --stats \
           FILE flag writes this client's own streaming statistics.)")

let cmd =
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit jobs to serve.exe and print their results")
    Term.(
      const run $ socket $ kind $ payloads $ from $ deadline_ms $ window
      $ max_attempts $ health $ stats $ Obs_cli.trace $ Obs_cli.metrics
      $ Obs_cli.stats $ Obs_cli.flight)

let () = exit (Cmd.eval' cmd)
