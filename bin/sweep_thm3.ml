(* E3 sweep: the gadget-chain attack.

   dune exec bin/sweep_thm3.exe -- --k 3 --gadgets 33 *)

open Online_local
open Cmdliner

let run k gadgets =
  List.iter
    (fun (name, algorithm) ->
      let r = Thm3_adversary.run ~k ~gadgets ~algorithm () in
      Format.printf "thm3 k=%d gadgets=%d (n=%d) vs %-12s@.  %a@." k gadgets
        (gadgets * k * k) name Thm3_adversary.pp_report r)
    [ ("greedy", Portfolio.greedy ()); ("gadget-rows", Portfolio.gadget_rows ()) ]

let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Gadget side (>= 3).")
let gadgets = Arg.(value & opt int 9 & info [ "gadgets" ] ~doc:"Chain length (>= 3).")

let cmd =
  Cmd.v (Cmd.info "sweep_thm3" ~doc:"Theorem 3 adversary sweep") Term.(const run $ k $ gadgets)

let () = exit (Cmd.eval cmd)
