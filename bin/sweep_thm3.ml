(* E3 sweep: the gadget-chain attack, over a parameter grid.

   dune exec bin/sweep_thm3.exe -- -k 3 --gadgets 9,33 \
     --jobs 4 --checkpoint sweep_thm3.ckpt *)

open Cmdliner

let run ks gadget_counts checkpoint resume exec trace metrics stats flight bulk memo =
  let cells =
    List.concat_map
      (fun k ->
        List.concat_map
          (fun gadgets ->
            List.map
              (fun (algo, _) ->
                Jobs_catalog.thm3_cell ~memo ~bulk ~k ~gadgets ~algo ())
              Jobs_catalog.thm3_algorithms)
          (Harness.Sweep.int_axis ~flag:"--gadgets" gadget_counts))
      (Harness.Sweep.int_axis ~flag:"-k" ks)
  in
  Obs_cli.with_observability ~program:"sweep_thm3" ~trace ~metrics ~stats ~flight
  @@ fun () ->
  match
    Harness.Sweep.run ~resume ?checkpoint ~jobs:exec.Obs_cli.jobs
      ~isolation:exec.Obs_cli.isolation ~supervisor:exec.Obs_cli.supervisor
      ~ppf:Format.std_formatter cells
  with
  | () -> 0
  | exception Harness.Sweep.Interrupted ->
      Format.eprintf "interrupted; finished cells are checkpointed@.";
      130

let ks = Arg.(value & opt string "3" & info [ "k" ] ~doc:"Gadget sides (>= 3, comma-separated).")

let gadget_counts =
  Arg.(value & opt string "9" & info [ "gadgets" ] ~doc:"Chain lengths (>= 3, comma-separated).")

let checkpoint =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~doc:"Append finished cells to this file.")

let resume =
  Arg.(value & flag & info [ "resume" ] ~doc:"Replay cells already in the checkpoint.")

let cmd =
  Cmd.v
    (Cmd.info "sweep_thm3" ~doc:"Theorem 3 adversary sweep")
    Term.(
      const run $ ks $ gadget_counts $ checkpoint $ resume $ Obs_cli.exec_term
      $ Obs_cli.trace $ Obs_cli.metrics $ Obs_cli.stats $ Obs_cli.flight
      $ Obs_cli.bulk $ Obs_cli.memo)

let () = exit (Cmd.eval' cmd)
