(* Exhaustive small-n verification of the Theorem 1 lower bound, up to
   canonical-view equivalence.

   The claim being checked: in b-force mode (Lemma 3.6 without the
   endgame) the Theorem 1 adversary defeats EVERY deterministic
   online-LOCAL algorithm within the budget — each enumerated strategy
   either produces a monochromatic edge or is forced into a row path of
   b-value >= k.  "Every algorithm" is made finite by quotienting: a
   strategy is a map from the canonical form (Canon.key) of the
   target's revealed component — structure, prior outputs, and which
   node is the target, nothing else — to a color in {0,1,2}.  Two
   views with isomorphic colored components are answered identically,
   which is exactly the equivalence class a hint-free, id-free
   algorithm can distinguish, so enumerating these strategies covers
   all such algorithms while the naive transcript enumeration (3 ^
   presents) is exponentially larger.  The printed reduction factor is
   the measured collapse.

   Strategy enumeration is a depth-first search over decision points:
   run the adversary against a table-driven algorithm; any view whose
   canonical key is unmapped answers 0 and records the key in
   discovery order; on completion, backtrack — bump the last decision
   that still has a color < 2, drop everything after it, rerun from
   scratch.  Reruns replay identically up to the changed decision
   because both sides are deterministic.

   A leaf "survives" if the run ends Survived with forced_b < k; the
   Lemma 3.6 failwith (improper coloring slipping past the per-present
   check) or a surviving leaf is a refutation and exits nonzero.

   dune exec bin/exhaust.exe -- -k 1,2 --side 16 *)

open Online_local
open Cmdliner

(* Canonical key of the revealed component containing the view's
   target.  Colors encode prior outputs and the target flag:
   uncolored = 0, output c = 2*(c+1); +1 marks the target. *)
let component_key view =
  let target = view.Models.View.target in
  let idx : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let q = Queue.create () in
  Hashtbl.replace idx target 0;
  Queue.add target q;
  let count = ref 1 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    List.iter
      (fun w ->
        if not (Hashtbl.mem idx w) then begin
          Hashtbl.replace idx w !count;
          incr count;
          Queue.add w q
        end)
      (view.Models.View.neighbors u)
  done;
  let n = !count in
  let colors = Array.make n 0 in
  let edges = ref [] in
  List.iter
    (fun u ->
      let iu = Hashtbl.find idx u in
      let flag = if u = target then 1 else 0 in
      colors.(iu) <-
        (match view.Models.View.output u with
        | None -> flag
        | Some c -> (2 * (c + 1)) + flag);
      List.iter
        (fun w ->
          let iw = Hashtbl.find idx w in
          if iu < iw then edges := (iu, iw) :: !edges)
        (view.Models.View.neighbors u))
    !order;
  Canon.key (Canon.make ~n ~edges:!edges ~colors)

(* The paper's region-width recurrence at T=0: w(0) = 1, w(k) = 2w + 3.
   Build never spans wider than this, so any wider leaf is a bug. *)
let width_bound k =
  let rec go k w = if k <= 0 then w else go (k - 1) ((2 * w) + 3) in
  go k 1

type totals = {
  mutable leaves : int;
  mutable survivors : int;
  mutable defeated : int;
  mutable min_presents : int;
  mutable max_presents : int;
  mutable max_depth : int;
  mutable max_width : int;
  classes : (string, unit) Hashtbl.t;
}

(* One adversary run against the strategy [prefix] (decided keys, in
   discovery order).  Returns the full decision list of the leaf —
   prefix plus the fresh keys discovered this run, all answered 0.

   [`Canon] keys each decision on the canonical component (two
   isomorphic views share one decision); [`Naive] keys on the concrete
   answer prefix — the transcript — so every present of every run is
   its own decision point.  The naive mode IS the brute-force
   enumeration of all deterministic strategies; running both measures
   the collapse the canonical quotient buys. *)
let run_leaf ~mode ~side ~k ~prefix =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 97 in
  List.iter (fun (key, c) -> Hashtbl.replace tbl key c) prefix;
  let fresh = ref [] in
  let presents = ref 0 in
  let transcript = Buffer.create 64 in
  let algorithm =
    Models.Algorithm.stateless ~pure:false ~name:"exhaust-strategy"
      ~locality:(fun ~n:_ -> 0)
      (fun view ->
        incr presents;
        let key =
          match mode with
          | `Canon -> component_key view
          | `Naive -> Buffer.contents transcript
        in
        let c =
          match Hashtbl.find_opt tbl key with
          | Some c -> c
          | None ->
              Hashtbl.replace tbl key 0;
              fresh := key :: !fresh;
              0
        in
        Buffer.add_char transcript (Char.chr (Char.code '0' + c));
        c)
  in
  let report =
    Thm1_adversary.run ~bulk:true ~endgame:false ~n_side:side ~k ~algorithm ()
  in
  (prefix @ List.rev_map (fun key -> (key, 0)) !fresh, report, !presents)

(* Next strategy in DFS order: bump the last decision still below color
   2, dropping everything after it. *)
let rec next_strategy = function
  | [] -> None
  | (key, c) :: rest when c < 2 -> Some (List.rev ((key, c + 1) :: rest))
  | _ :: rest -> next_strategy rest

let enumerate ~mode ~side ~k ~max_leaves =
  let totals =
    {
      leaves = 0;
      survivors = 0;
      defeated = 0;
      min_presents = max_int;
      max_presents = 0;
      max_depth = 0;
      max_width = 0;
      classes = Hashtbl.create 997;
    }
  in
  let rec go prefix =
    if totals.leaves >= max_leaves then
      failwith
        (Printf.sprintf "exhaust: more than %d leaves; raise --max-leaves"
           max_leaves);
    let decisions, report, presents = run_leaf ~mode ~side ~k ~prefix in
    totals.leaves <- totals.leaves + 1;
    List.iter (fun (key, _) -> Hashtbl.replace totals.classes key ()) decisions;
    totals.min_presents <- min totals.min_presents presents;
    totals.max_presents <- max totals.max_presents presents;
    totals.max_depth <- max totals.max_depth (List.length decisions);
    totals.max_width <- max totals.max_width report.Thm1_adversary.width;
    (match report.Thm1_adversary.result with
    | `Defeated _ -> totals.defeated <- totals.defeated + 1
    | `Survived ->
        if report.Thm1_adversary.forced_b < k then
          totals.survivors <- totals.survivors + 1);
    match next_strategy (List.rev decisions) with
    | None -> ()
    | Some prefix -> go prefix
  in
  go [];
  totals

let run ks side max_leaves min_reduction =
  let ks = Harness.Sweep.int_axis ~flag:"-k" ks in
  let failures = ref 0 in
  List.iter
    (fun k ->
      match enumerate ~mode:`Canon ~side ~k ~max_leaves with
      | exception Failure msg ->
          incr failures;
          Format.printf "exhaust thm1 side=%d k=%d: REFUTED (%s)@." side k msg
      | t -> (
          match enumerate ~mode:`Naive ~side ~k ~max_leaves with
          | exception Failure msg ->
              incr failures;
              Format.printf "exhaust thm1 side=%d k=%d: naive enumeration \
                             failed (%s)@."
                side k msg
          | naive ->
              let reduction =
                float_of_int naive.leaves /. float_of_int t.leaves
              in
              let classes = Hashtbl.length t.classes in
              let wb = width_bound k in
              let width_ok = t.max_width <= wb in
              Format.printf
                "exhaust thm1 b-force side=%d k=%d (T=0):@.\
                \  strategies (canonical): %d, all defeated or forced to b >= \
                 %d@.\
                \  decision classes:       %d (max depth %d)@.\
                \  presents per run:       %d..%d@.\
                \  strategies (naive):     %d over %d transcript decisions@.\
                \  equivalence reduction:  %.1fx@.\
                \  survivors:              %d canonical + %d naive@.\
                \  defeated outright:      %d@.\
                \  max region width:       %d (bound w(%d) = %d: %s)@."
                side k t.leaves k classes t.max_depth t.min_presents
                t.max_presents naive.leaves
                (Hashtbl.length naive.classes)
                reduction t.survivors naive.survivors t.defeated t.max_width k
                wb
                (if width_ok then "ok" else "EXCEEDED");
              if t.survivors > 0 || naive.survivors > 0 || not width_ok then
                incr failures;
              if reduction < min_reduction then begin
                incr failures;
                Format.printf "  reduction below required %.0fx@."
                  min_reduction
              end))
    ks;
  if !failures > 0 then 1 else 0

let ks =
  Arg.(
    value & opt string "1,2"
    & info [ "k" ] ~doc:"Forced b-value targets (comma-separated).")

let side =
  Arg.(
    value & opt int 16
    & info [ "side" ] ~doc:"Virtual grid side (must fit w(k) columns).")

let max_leaves =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-leaves" ] ~doc:"Abort if the strategy tree exceeds this.")

let min_reduction =
  Arg.(
    value & opt float 1.
    & info [ "min-reduction" ]
        ~doc:"Fail unless naive/enumerated reduction reaches this factor.")

let cmd =
  Cmd.v
    (Cmd.info "exhaust"
       ~doc:
         "Exhaustively verify the Theorem 1 b-force lemma against every \
          deterministic strategy up to canonical-view equivalence")
    Term.(const run $ ks $ side $ max_leaves $ min_reduction)

let () = exit (Cmd.eval' cmd)
