(* E4 sweep: minimal working locality of the Theorem 4 algorithm on one
   host family, for scaling studies.

   dune exec bin/sweep_thm4.exe -- --host grid --side 32 *)

open Online_local
open Cmdliner

let run host_name side n seeds =
  let seeds = List.init seeds (fun i -> i + 1) in
  let measure name host ~k ~oracle =
    let nn = Grid_graph.Graph.n host in
    let orders = Measure.adversarial_orders ~host ~seeds in
    let make ~t = Kp1_coloring.make ~k ~locality:(fun ~n:_ -> t) () in
    let t_max = Kp1_coloring.default_locality ~k ~n:nn in
    match
      Measure.min_locality_for_success ~host ~palette:(k + 1) ~orders ~make ~oracle
        ~t_max ()
    with
    | Some t_star ->
        Format.printf "%s: n=%d T*=%d prescribed=%d T*/log2(n)=%.2f@." name nn t_star
          t_max
          (float_of_int t_star /. (log (float_of_int nn) /. log 2.))
    | None -> Format.printf "%s: n=%d failed even at T=%d@." name nn t_max
  in
  match host_name with
  | "grid" ->
      let g = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:side ~cols:side in
      measure
        (Printf.sprintf "grid %dx%d (k=2)" side side)
        (Topology.Grid2d.graph g) ~k:2
        ~oracle:(Oracles.grid_bipartition g)
  | "tri" ->
      let t = Topology.Tri_grid.create ~side in
      measure
        (Printf.sprintf "tri side=%d (k=3)" side)
        (Topology.Tri_grid.graph t) ~k:3 ~oracle:(Oracles.tri_grid t)
  | "ktree" ->
      let kt = Topology.Ktree.random ~k:2 ~n ~seed:42 in
      measure
        (Printf.sprintf "2-tree n=%d (k=3)" n)
        (Topology.Ktree.graph kt) ~k:3 ~oracle:(Oracles.ktree kt)
  | other -> failwith ("unknown host: " ^ other)

let host = Arg.(value & opt string "grid" & info [ "host" ] ~doc:"grid|tri|ktree.")
let side = Arg.(value & opt int 24 & info [ "side" ] ~doc:"Side (grid/tri).")
let n = Arg.(value & opt int 300 & info [ "n" ] ~doc:"Nodes (ktree).")
let seeds = Arg.(value & opt int 2 & info [ "seeds" ] ~doc:"Random orders to include.")

let cmd =
  Cmd.v
    (Cmd.info "sweep_thm4" ~doc:"Theorem 4 locality scaling sweep")
    Term.(const run $ host $ side $ n $ seeds)

let () = exit (Cmd.eval cmd)
