(* E4 sweep: minimal working locality of the Theorem 4 algorithm, over
   one host family and a size axis.

   dune exec bin/sweep_thm4.exe -- --host grid --side 24,32 \
     --jobs 4 --checkpoint sweep_thm4.ckpt *)

open Online_local
open Cmdliner

let measure name host ~k ~oracle ~seeds =
  let nn = Grid_graph.Graph.n host in
  let orders = Measure.adversarial_orders ~host ~seeds in
  let make ~t = Kp1_coloring.make ~k ~locality:(fun ~n:_ -> t) () in
  let t_max = Kp1_coloring.default_locality ~k ~n:nn in
  match
    Measure.min_locality_for_success ~host ~palette:(k + 1) ~orders ~make ~oracle
      ~t_max ()
  with
  | Some t_star ->
      Format.asprintf "%s: n=%d T*=%d prescribed=%d T*/log2(n)=%.2f" name nn t_star
        t_max
        (float_of_int t_star /. (log (float_of_int nn) /. log 2.))
  | None -> Format.asprintf "%s: n=%d failed even at T=%d" name nn t_max

let cell host_name ~size ~seeds =
  let key = Printf.sprintf "host=%s size=%d seeds=%d" host_name size (List.length seeds) in
  let run () =
    match host_name with
    | "grid" ->
        let g = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:size ~cols:size in
        measure
          (Printf.sprintf "grid %dx%d (k=2)" size size)
          (Topology.Grid2d.graph g) ~k:2
          ~oracle:(Oracles.grid_bipartition g)
          ~seeds
    | "tri" ->
        let t = Topology.Tri_grid.create ~side:size in
        measure
          (Printf.sprintf "tri side=%d (k=3)" size)
          (Topology.Tri_grid.graph t) ~k:3 ~oracle:(Oracles.tri_grid t) ~seeds
    | "ktree" ->
        let kt = Topology.Ktree.random ~k:2 ~n:size ~seed:42 in
        measure
          (Printf.sprintf "2-tree n=%d (k=3)" size)
          (Topology.Ktree.graph kt) ~k:3 ~oracle:(Oracles.ktree kt) ~seeds
    | other -> failwith ("unknown host: " ^ other)
  in
  { Harness.Sweep.key; run }

let run host_name sides ns seeds checkpoint resume exec trace metrics stats
    flight =
  let seeds = List.init seeds (fun i -> i + 1) in
  (* grid/tri scale by side, ktree by node count. *)
  let sizes =
    if host_name = "ktree" then Harness.Sweep.int_axis ~flag:"-n" ns
    else Harness.Sweep.int_axis ~flag:"--side" sides
  in
  let cells = List.map (fun size -> cell host_name ~size ~seeds) sizes in
  Obs_cli.with_observability ~program:"sweep_thm4" ~trace ~metrics ~stats ~flight
  @@ fun () ->
  match
    Harness.Sweep.run ~resume ?checkpoint ~jobs:exec.Obs_cli.jobs
      ~isolation:exec.Obs_cli.isolation ~supervisor:exec.Obs_cli.supervisor
      ~ppf:Format.std_formatter cells
  with
  | () -> 0
  | exception Harness.Sweep.Interrupted ->
      Format.eprintf "interrupted; finished cells are checkpointed@.";
      130

let host = Arg.(value & opt string "grid" & info [ "host" ] ~doc:"grid|tri|ktree.")

let sides =
  Arg.(value & opt string "24" & info [ "side" ] ~doc:"Sides (grid/tri, comma-separated).")

let ns = Arg.(value & opt string "300" & info [ "n" ] ~doc:"Node counts (ktree, comma-separated).")
let seeds = Arg.(value & opt int 2 & info [ "seeds" ] ~doc:"Random orders to include.")

let checkpoint =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~doc:"Append finished cells to this file.")

let resume =
  Arg.(value & flag & info [ "resume" ] ~doc:"Replay cells already in the checkpoint.")

let cmd =
  Cmd.v
    (Cmd.info "sweep_thm4" ~doc:"Theorem 4 locality scaling sweep")
    Term.(
      const run $ host $ sides $ ns $ seeds $ checkpoint $ resume
      $ Obs_cli.exec_term $ Obs_cli.trace $ Obs_cli.metrics $ Obs_cli.stats
      $ Obs_cli.flight)

let () = exit (Cmd.eval' cmd)
