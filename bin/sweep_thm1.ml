(* E1 sweep: play the Theorem 1 adversary over a parameter grid.

   Axes are comma-separated; every combination is one cell.  With
   --checkpoint FILE each finished cell is flushed to FILE, and --resume
   replays completed cells verbatim, so a killed sweep can be restarted
   and still print byte-identical final output.  --jobs N runs cells on
   N domains; output order and resume behavior do not depend on N.

   dune exec bin/sweep_thm1.exe -- -t 1,2 -k 6,9 --side 4000 --algo ael \
     --jobs 4 --checkpoint sweep_thm1.ckpt
   dune exec bin/sweep_thm1.exe -- ... --checkpoint sweep_thm1.ckpt --resume *)

open Cmdliner

let run ts ks sides algos validate checkpoint resume exec trace metrics stats
    flight bulk memo =
  let cells =
    List.concat_map
      (fun t ->
        List.concat_map
          (fun k ->
            List.concat_map
              (fun side ->
                List.map
                  (fun algo ->
                    Jobs_catalog.thm1_cell ~memo ~bulk ~validate ~t ~k ~side
                      ~algo ())
                  (Harness.Sweep.string_axis ~flag:"--algo" algos))
              (Harness.Sweep.int_axis ~flag:"--side" sides))
          (Harness.Sweep.int_axis ~flag:"-k" ks))
      (Harness.Sweep.int_axis ~flag:"-t" ts)
  in
  Obs_cli.with_observability ~program:"sweep_thm1" ~trace ~metrics ~stats ~flight
  @@ fun () ->
  match
    Harness.Sweep.run ~resume ?checkpoint ~jobs:exec.Obs_cli.jobs
      ~isolation:exec.Obs_cli.isolation ~supervisor:exec.Obs_cli.supervisor
      ~ppf:Format.std_formatter cells
  with
  | () -> 0
  | exception Harness.Sweep.Interrupted ->
      Format.eprintf "interrupted; finished cells are checkpointed@.";
      130

let ts =
  Arg.(value & opt string "1" & info [ "t" ] ~doc:"Algorithm localities (comma-separated).")

let ks = Arg.(value & opt string "9" & info [ "k" ] ~doc:"Adversary b-value targets.")
let sides = Arg.(value & opt string "4000" & info [ "side" ] ~doc:"Grid sides sqrt(n).")

let algos =
  Arg.(
    value
    & opt string "ael"
    & info [ "algo" ] ~doc:"greedy|parity|stripes|ael (comma-separated).")

let validate =
  Arg.(value & flag & info [ "validate" ] ~doc:"Replay-check the transcript (slow).")

let checkpoint =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~doc:"Append finished cells to this file.")

let resume =
  Arg.(value & flag & info [ "resume" ] ~doc:"Replay cells already in the checkpoint.")

let cmd =
  Cmd.v
    (Cmd.info "sweep_thm1" ~doc:"Theorem 1 adversary sweep")
    Term.(
      const run $ ts $ ks $ sides $ algos $ validate $ checkpoint $ resume
      $ Obs_cli.exec_term $ Obs_cli.trace $ Obs_cli.metrics $ Obs_cli.stats
      $ Obs_cli.flight $ Obs_cli.bulk $ Obs_cli.memo)

let () = exit (Cmd.eval' cmd)
