(* E1 sweep: play the Theorem 1 adversary at chosen parameters.

   dune exec bin/sweep_thm1.exe -- --t 2 --k 6 --side 4000 --algo ael *)

open Online_local
open Cmdliner

let run t k side algo_name validate =
  let algorithm =
    match algo_name with
    | "greedy" -> Portfolio.greedy ()
    | "parity" -> Portfolio.hint_parity ()
    | "stripes" -> Portfolio.stripes3 ()
    | "ael" -> Portfolio.ael ~t ()
    | other -> failwith ("unknown algorithm: " ^ other)
  in
  let r = Thm1_adversary.run ~validate ~n_side:side ~k ~algorithm () in
  Format.printf "thm1 vs %s (T=%d) on %d^2 grid, b-target k=%d:@.  %a@." algo_name t side
    k Thm1_adversary.pp_report r;
  Format.printf "  guaranteed by theory: %b (needs k > 4T+4)@."
    (Thm1_adversary.guaranteed ~t ~k);
  Format.printf "  max fitting k at this side/T: %d@."
    (Thm1_adversary.recommended_k ~n_side:side ~t)

let t = Arg.(value & opt int 1 & info [ "t" ] ~doc:"Algorithm locality.")
let k = Arg.(value & opt int 9 & info [ "k" ] ~doc:"Adversary b-value target.")
let side = Arg.(value & opt int 4000 & info [ "side" ] ~doc:"Grid side sqrt(n).")

let algo =
  Arg.(value & opt string "ael" & info [ "algo" ] ~doc:"greedy|parity|stripes|ael.")

let validate =
  Arg.(value & flag & info [ "validate" ] ~doc:"Replay-check the transcript (slow).")

let cmd =
  Cmd.v
    (Cmd.info "sweep_thm1" ~doc:"Theorem 1 adversary sweep")
    Term.(const run $ t $ k $ side $ algo $ validate)

let () = exit (Cmd.eval cmd)
