(* Regenerate every experiment table (EXPERIMENTS.md).

   dune exec bin/repro.exe            -- full tables
   dune exec bin/repro.exe -- --quick -- bench-sized tables
   dune exec bin/repro.exe -- --jobs 4   -- render drivers on 4 domains
                                         (output is byte-identical) *)

let run quick exec trace metrics stats flight =
  Obs_cli.with_observability ~program:"repro" ~trace ~metrics ~stats ~flight @@ fun () ->
  Experiments.run_all ~quick ~jobs:exec.Obs_cli.jobs
    ~isolation:exec.Obs_cli.isolation ~supervisor:exec.Obs_cli.supervisor
    Format.std_formatter;
  Format.printf "@.";
  0

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink parameter ranges to bench sizes.")

let cmd =
  Cmd.v
    (Cmd.info "repro" ~doc:"Reproduce all experiments of the paper")
    Term.(
      const run $ quick $ Obs_cli.exec_term $ Obs_cli.trace $ Obs_cli.metrics
      $ Obs_cli.stats $ Obs_cli.flight)

let () = exit (Cmd.eval' cmd)
