(* Regenerate every experiment table (EXPERIMENTS.md).

   dune exec bin/repro.exe            -- full tables
   dune exec bin/repro.exe -- --quick -- bench-sized tables *)

let run quick =
  Experiments.run_all ~quick Format.std_formatter;
  Format.printf "@."

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink parameter ranges to bench sizes.")

let cmd =
  Cmd.v
    (Cmd.info "repro" ~doc:"Reproduce all experiments of the paper")
    Term.(const run $ quick)

let () = exit (Cmd.eval cmd)
