(* Fleet dispatch client: shard one campaign across N serve.exe
   endpoints, with failover, circuit breakers, and depth-probe
   rebalancing (Harness.Fleet).

     dune exec bin/dispatch.exe -- \
       --endpoint /tmp/a.sock --endpoint /tmp/b.sock --endpoint tcp:7001 \
       --kind thm1 "t=1 k=9 side=4000 algo=ael" "t=2 k=9 side=4000 algo=ael"
     dune exec bin/dispatch.exe -- --endpoint /tmp/a.sock --from jobs.txt

   Stdout carries only results, in spec order, byte-identical to a
   serverless sweep of the same cells and to a single-server submit.exe
   run — at every shard count, --jobs level, isolation mode, and
   kill/restart history.  The tally and the campaign verdict (FULL, or
   DEGRADED with the endpoint losses / drains / failovers that
   happened) go to stderr.  Exit 0 means every result is in, degraded
   or not; the verdict line is the place to look. *)

open Cmdliner

let read_specs_file path =
  In_channel.with_open_bin path @@ fun ic ->
  let rec go acc =
    match In_channel.input_line ic with
    | None -> List.rev acc
    | Some "" -> go acc
    | Some line -> (
        match String.index_opt line '\t' with
        | None -> failwith (Printf.sprintf "%s: line without a TAB: %s" path line)
        | Some t ->
            let kind = String.sub line 0 t in
            let payload = String.sub line (t + 1) (String.length line - t - 1) in
            go ((kind, payload) :: acc))
  in
  go []

let run endpoints kind payloads from deadline_ms window max_attempts shard_seed
    probe_interval_ms trace metrics stats_out flight =
  Obs_cli.with_observability ~program:"dispatch" ~trace ~metrics ~stats:stats_out
    ~flight
  @@ fun () ->
  try
    let specs =
      (match from with Some path -> read_specs_file path | None -> [])
      @ List.map (fun p -> (kind, p)) payloads
    in
    if specs = [] then begin
      Format.eprintf
        "dispatch: nothing to submit (positional payloads or --from)@.";
      2
    end
    else begin
      let deadline =
        Option.map (fun ms -> float_of_int ms /. 1000.) deadline_ms
      in
      let probe_interval = float_of_int probe_interval_ms /. 1000. in
      let campaign =
        Harness.Fleet.run_campaign ~window ?deadline ~max_attempts ~shard_seed
          ~probe_interval ~endpoints specs
      in
      List.iter
        (fun result -> Format.printf "%s@." result)
        campaign.Harness.Fleet.results;
      Format.eprintf
        "dispatch: %d results over %d endpoint(s) (%d failovers, %d \
         duplicates deduped, %d resubmits, %d rejections, %d reconnects)@."
        (List.length campaign.Harness.Fleet.results)
        (List.length endpoints) campaign.Harness.Fleet.failovers
        campaign.Harness.Fleet.duplicates campaign.Harness.Fleet.resubmits
        campaign.Harness.Fleet.rejections campaign.Harness.Fleet.reconnects;
      Format.eprintf "dispatch: verdict %s@."
        (Harness.Fleet.verdict_to_string campaign.Harness.Fleet.verdict);
      0
    end
  with
  | Failure msg ->
      Format.eprintf "dispatch: %s@." msg;
      1
  | Invalid_argument msg ->
      Format.eprintf "dispatch: %s@." msg;
      2

let endpoints =
  Arg.(
    non_empty
    & opt_all string []
    & info [ "endpoint" ] ~docv:"PATH|tcp:PORT"
        ~doc:
          "A serve.exe endpoint (repeatable): a Unix-domain socket path or \
           $(b,tcp:PORT).  Jobs are sharded across all endpoints given.")

let kind =
  Arg.(
    value
    & opt string "thm1"
    & info [ "kind" ] ~docv:"KIND"
        ~doc:"Job kind for positional payloads: thm1|thm2|thm3|fuzz.")

let payloads =
  Arg.(value & pos_all string [] & info [] ~docv:"PAYLOAD" ~doc:"Job payloads.")

let from =
  Arg.(
    value
    & opt (some string) None
    & info [ "from" ] ~docv:"FILE"
        ~doc:"Also submit one job per line of $(docv): kind<TAB>payload.")

let deadline_ms =
  Arg.(
    value
    & opt (some Obs_cli.positive_int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Per-attempt job deadline forwarded with each submit.")

let window =
  Arg.(
    value
    & opt Obs_cli.positive_int 16
    & info [ "window" ] ~docv:"N"
        ~doc:"Max jobs kept in flight per endpoint (pipelining).")

let max_attempts =
  Arg.(
    value
    & opt Obs_cli.positive_int 120
    & info [ "max-attempts" ] ~docv:"N"
        ~doc:
          "Give up after $(docv) rounds with the whole fleet unreachable, or \
           $(docv) rejections of one job.  Each all-dark round waits at most \
           one second, so the default bounds a fully dead fleet to about two \
           minutes.")

let shard_seed =
  Arg.(
    value
    & opt Obs_cli.non_negative_int 0
    & info [ "shard-seed" ] ~docv:"SEED"
        ~doc:
          "Seed for the deterministic job-to-endpoint sharding hash.  Output \
           bytes never depend on $(docv); only placement does.")

let probe_interval_ms =
  Arg.(
    value
    & opt Obs_cli.positive_int 250
    & info [ "probe-interval-ms" ] ~docv:"MS"
        ~doc:"How often each endpoint's queue depth is probed (rebalancing).")

let cmd =
  Cmd.v
    (Cmd.info "dispatch"
       ~doc:"Shard jobs across a fleet of serve.exe endpoints with failover")
    Term.(
      const run $ endpoints $ kind $ payloads $ from $ deadline_ms $ window
      $ max_attempts $ shard_seed $ probe_interval_ms $ Obs_cli.trace
      $ Obs_cli.metrics $ Obs_cli.stats $ Obs_cli.flight)

let () = exit (Cmd.eval' cmd)
