(* The resilient job server front door: accept thm1/thm2/thm3/fuzz jobs
   over a Unix-domain (or loopback TCP) socket and run them under the
   harness's isolation machinery.

     dune exec bin/serve.exe -- --socket /tmp/jobs.sock --jobs 4 \
       --isolate proc --journal jobs.journal
     dune exec bin/serve.exe -- --socket tcp:7421 --queue-limit 16
     dune exec bin/serve.exe -- --socket /tmp/jobs.sock --chaos 42

   Admission is bounded (--queue-limit; excess submits get a typed
   rejection), duplicate submits dedup on the content-derived job id,
   crashed jobs retry with seeded backoff and then quarantine, SIGTERM
   drains gracefully (in-flight jobs finish, queued jobs stay in the
   --journal), and --resume replays the journal after a crash or drain:
   finished jobs become cached results, accepted-but-unfinished jobs
   re-enter the queue.  --chaos SEED injects deterministic faults
   (dropped connections, partial/truncated frames, child SIGKILLs) to
   rehearse exactly those failure paths. *)

open Cmdliner

(* Atomic publish: write to a temp file, then rename into place — a
   fleet orchestrator polling the file never reads a half-written spec. *)
let advertise_ready path socket =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (socket ^ "\n"));
  Sys.rename tmp path

let run socket advertise queue_limit job_timeout_ms journal resume chaos
    (exec : Obs_cli.exec) trace metrics stats flight =
  Obs_cli.with_observability ~program:"serve" ~trace ~metrics ~stats ~flight @@ fun () ->
  let config =
    {
      Harness.Server.default_config with
      Harness.Server.jobs = exec.Obs_cli.jobs;
      isolation = exec.Obs_cli.isolation;
      queue_limit;
      retries = exec.Obs_cli.supervisor.Harness.Supervisor.retries;
      kill_grace = exec.Obs_cli.supervisor.Harness.Supervisor.kill_grace;
      default_deadline =
        Option.map (fun ms -> float_of_int ms /. 1000.) job_timeout_ms;
      chaos = Option.map (fun seed -> Harness.Server.default_chaos ~seed) chaos;
    }
  in
  match
    Harness.Server.run ~config ?journal ~resume ~socket
      ~on_ready:(fun () ->
        Option.iter (fun path -> advertise_ready path socket) advertise;
        Format.eprintf "serve: listening on %s (%d jobs, %s isolation)%s@."
          socket config.Harness.Server.jobs
          (match config.Harness.Server.isolation with
          | `Process -> "proc"
          | `In_domain -> "domain")
          (if chaos <> None then " [CHAOS]" else ""))
      ~handler:Jobs_catalog.handler ()
  with
  | () ->
      Format.eprintf "serve: drained cleanly@.";
      0
  | exception Failure msg ->
      Format.eprintf "serve: %s@." msg;
      1

let socket =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH|tcp:PORT"
        ~doc:
          "Listen on this Unix-domain socket path, or on loopback TCP with \
           $(b,tcp:PORT).  A stale socket file is replaced; the file is \
           removed on exit.")

let advertise =
  Arg.(
    value
    & opt (some string) None
    & info [ "advertise" ] ~docv:"FILE"
        ~doc:
          "Once the socket is accepting, write its spec to $(docv) \
           (atomically: temp file + rename).  Lets a fleet orchestrator \
           wait for readiness by polling for the file instead of racing \
           the bind.")

let queue_limit =
  Arg.(
    value
    & opt Obs_cli.positive_int Harness.Server.default_config.Harness.Server.queue_limit
    & info [ "queue-limit" ] ~docv:"N"
        ~doc:
          "Max jobs admitted but not yet running.  Submits beyond it are \
           answered with a typed rejection (backpressure), never queued \
           unboundedly.")

let job_timeout_ms =
  Arg.(
    value
    & opt (some Obs_cli.positive_int) None
    & info [ "job-timeout-ms" ] ~docv:"MS"
        ~doc:
          "With --isolate proc: default per-attempt wall-clock watchdog for \
           jobs that do not carry their own deadline.  Unset: no watchdog.")

let journal =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Record accepted jobs and their results to $(docv) (checkpoint \
           format), enabling --resume crash recovery and lossless drains.")

let resume =
  Arg.(
    value
    & flag
    & info [ "resume" ]
        ~doc:
          "Replay the --journal on startup: finished jobs are served as \
           cached results, accepted-but-unfinished jobs re-enter the queue.")

let chaos =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos" ] ~docv:"SEED"
        ~doc:
          "Inject deterministic faults from this seed: dropped connections, \
           partial and truncated reply frames, and (under --isolate proc) \
           child SIGKILLs.  Injected kills are charged no retry budget, so \
           chaos never quarantines a healthy job.")

let cmd =
  Cmd.v
    (Cmd.info "serve" ~doc:"Resilient job server over a Unix/TCP socket")
    Term.(
      const run $ socket $ advertise $ queue_limit $ job_timeout_ms $ journal $ resume
      $ chaos $ Obs_cli.exec_term $ Obs_cli.trace $ Obs_cli.metrics
      $ Obs_cli.stats $ Obs_cli.flight)

let () = exit (Cmd.eval' cmd)
