(* Shared --trace/--metrics plumbing for the sweep and repro binaries.

   Every binary in this directory exposes the same two flags:

     --trace FILE   stream NDJSON trace events to FILE
     --metrics      print the merged metrics registry after the run

   The metrics dump goes to stdout *after* the run's own output, so the
   CI determinism check can diff the whole stream (results + registry)
   across --jobs counts.  It is printed even on the interrupted
   (exit 130) path: a Ctrl-C'd sweep still reports what it counted. *)

open Cmdliner

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Stream NDJSON trace events to $(docv) (see trace_report).")

let metrics =
  Arg.(
    value
    & flag
    & info [ "metrics" ]
        ~doc:
          "Print the merged metrics registry on stdout after the run. \
           Totals are identical at every --jobs count.")

let with_observability ~program ~trace:trace_path ~metrics:want_metrics f =
  if want_metrics then Harness.Metrics.enable ();
  let code = Harness.Trace.with_sink_opt ~program trace_path f in
  if want_metrics then
    Format.printf "%a" Harness.Metrics.pp (Harness.Metrics.drain ());
  code
