(* Shared flag plumbing for the sweep, repro, play, serve and fuzz
   binaries.

   Every binary in this directory exposes the same observability flags:

     --trace FILE   stream NDJSON trace events to FILE
     --metrics      print the merged metrics registry after the run
     --stats FILE   write drained streaming stats (JSON) to FILE
     --flight FILE  binary flight-recorder ring, flushed on anomaly
     --bulk         executor fast path: skip per-step trace/metrics
                    event construction (verdicts unchanged)

   and the same execution-backend flags, parsed and validated here so
   "--jobs 0" fails identically everywhere, naming the flag:

     --jobs N             worker domains (in-domain) / children (proc)
     --isolate MODE       domain (default) | proc
     --retries N          proc mode: extra attempts per crashed cell
     --kill-grace-ms MS   proc mode: SIGTERM -> SIGKILL escalation gap
     --cell-timeout-ms MS proc mode: per-attempt wall-clock watchdog

   The metrics dump goes to stdout *after* the run's own output, so the
   CI determinism check can diff the whole stream (results + registry)
   across --jobs counts.  It is printed even on the interrupted
   (exit 130) path: a Ctrl-C'd sweep still reports what it counted. *)

open Cmdliner

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Stream NDJSON trace events to $(docv) (see trace_report).")

let metrics =
  Arg.(
    value
    & flag
    & info [ "metrics" ]
        ~doc:
          "Print the merged metrics registry on stdout after the run. \
           Totals are identical at every --jobs count.")

let stats =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Stream per-game statistics (count/mean/variance/min/max and \
           quantile sketches) and write the drained snapshot to $(docv) \
           as JSON after the run.  The bytes are identical at every \
           --jobs count and isolation mode.")

let flight =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Flight recorder: retain trace events in an in-memory ring \
           (binary encoding, see trace_report) and flush them to $(docv) \
           only on anomaly — misbehavior, quarantine, watchdog kill, \
           fault injection, or a failed audit.")

let bulk =
  Arg.(
    value
    & flag
    & info [ "bulk" ]
        ~doc:
          "Campaign fast path: skip per-step trace/metrics event \
           construction and the paranoid re-audit inside the game \
           executors.  Results and verdicts are byte-identical with and \
           without $(b,--bulk); only observability detail is elided.")

let memo =
  Arg.(
    value
    & flag
    & info [ "memo" ]
        ~doc:
          "Cross-cell memoization: replay color calls and thm1 reports \
           whose observable history already ran on this worker (see \
           lib/canon/README.md).  Result bytes and --stats files are \
           identical with and without $(b,--memo) at every --jobs count, \
           isolation mode, and resume history; caches are per-process \
           and never checkpointed.  Hit counters (canon.*) are \
           telemetry: a --memo run's --metrics dump is not \
           jobs-invariant, so don't byte-diff the two together.")

(* ----------------------- execution-backend flags ----------------------- *)

let int_at_least lo what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= lo -> Ok n
    | Some n ->
        Error
          (`Msg (Printf.sprintf "expected %s, got %d" what n))
    | None ->
        Error
          (`Msg (Printf.sprintf "expected %s, got %s" what (String.escaped s)))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let positive_int = int_at_least 1 "a positive integer"
let non_negative_int = int_at_least 0 "a non-negative integer"

let jobs =
  Arg.(
    value
    & opt positive_int (Harness.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Workers: domains under --isolate domain, child processes under \
           --isolate proc (default: available cores, capped at 8).  Output \
           bytes never depend on $(docv).")

let isolate =
  Arg.(
    value
    & opt (enum [ ("domain", `In_domain); ("proc", `Process) ]) `In_domain
    & info [ "isolate" ] ~docv:"MODE"
        ~doc:
          "Cell isolation: $(b,domain) runs cells on worker domains in this \
           process; $(b,proc) forks each cell into a supervised child \
           process that survives kills, retries crashed cells with seeded \
           backoff, and quarantines crash-looping ones.")

let retries =
  Arg.(
    value
    & opt non_negative_int Harness.Supervisor.default_config.Harness.Supervisor.retries
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "With --isolate proc: extra attempts after a cell's worker dies \
           abnormally, before the cell is quarantined.  0 disables \
           retrying.")

let kill_grace_ms =
  Arg.(
    value
    & opt positive_int 500
    & info [ "kill-grace-ms" ] ~docv:"MS"
        ~doc:
          "With --isolate proc: how long a timed-out child gets between \
           SIGTERM and the SIGKILL escalation.")

let cell_timeout_ms =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "cell-timeout-ms" ] ~docv:"MS"
        ~doc:
          "With --isolate proc: per-attempt wall-clock watchdog; a cell \
           exceeding it is killed and certified unresponsive.  Unset: no \
           watchdog.")

type exec = {
  jobs : int;
  isolation : Harness.Sweep.isolation;
  supervisor : Harness.Supervisor.config;
}

let exec_term =
  let make jobs isolation retries kill_grace_ms cell_timeout_ms =
    {
      jobs;
      isolation;
      supervisor =
        {
          Harness.Supervisor.default_config with
          Harness.Supervisor.retries;
          kill_grace = float_of_int kill_grace_ms /. 1000.;
          timeout = Option.map (fun ms -> float_of_int ms /. 1000.) cell_timeout_ms;
        };
    }
  in
  Term.(const make $ jobs $ isolate $ retries $ kill_grace_ms $ cell_timeout_ms)

let with_observability ~program ~trace:trace_path ~metrics:want_metrics
    ?(stats = None) ?(flight = None) f =
  if want_metrics then Harness.Metrics.enable ();
  if stats <> None then Harness.Stats.enable ();
  let code =
    Harness.Trace.with_sink_opt ~program trace_path @@ fun () ->
    Harness.Flight.with_sink_opt ~program flight f
  in
  if want_metrics then
    Format.printf "%a" Harness.Metrics.pp (Harness.Metrics.drain ());
  (match stats with
  | None -> ()
  | Some path ->
      let snap = Harness.Stats.drain () in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Obs.Json.to_string (Harness.Stats.snapshot_to_json snap));
          Out_channel.output_char oc '\n'));
  code
