(* E5 sweep: the Lemma 5.7 reduction on G_k, over a locality axis.

   dune exec bin/sweep_thm5.exe -- -k 3 --base-side 6 -t 4,8 \
     --jobs 4 --checkpoint sweep_thm5.ckpt *)

open Online_local
open Cmdliner

let cell ~k ~base_side ~t =
  {
    Harness.Sweep.key = Printf.sprintf "k=%d base-side=%d t=%d" k base_side t;
    run =
      (fun () ->
        let base =
          Topology.Grid2d.graph
            (Topology.Grid2d.create Topology.Grid2d.Simple ~rows:base_side
               ~cols:base_side)
        in
        let lay = Topology.Layered.create ~base ~k in
        let host = Topology.Layered.graph lay in
        let inner = Kp1_coloring.make ~k:(k + 1) ~locality:(fun ~n:_ -> t) () in
        let reduced = Thm5_reduction.reduce ~inner in
        let order = Models.Fixed_host.orders ~all:host (`Random 17) in
        let outcome =
          Models.Fixed_host.run ~oracle:(Oracles.layered lay) ~host ~palette:(k + 1)
            ~algorithm:reduced ~order ()
        in
        Format.asprintf "thm5 reduction on G_%d (n=%d, inner T=%d): %a@.  proper=%b" k
          (Grid_graph.Graph.n host)
          t Models.Run_stats.pp_outcome outcome
          (Models.Run_stats.succeeded outcome ~colors:(k + 1) ~host));
  }

let run ks base_sides ts checkpoint resume exec trace metrics stats flight =
  let cells =
    List.concat_map
      (fun k ->
        List.concat_map
          (fun base_side ->
            List.map
              (fun t -> cell ~k ~base_side ~t)
              (Harness.Sweep.int_axis ~flag:"-t" ts))
          (Harness.Sweep.int_axis ~flag:"--base-side" base_sides))
      (Harness.Sweep.int_axis ~flag:"-k" ks)
  in
  Obs_cli.with_observability ~program:"sweep_thm5" ~trace ~metrics ~stats ~flight
  @@ fun () ->
  match
    Harness.Sweep.run ~resume ?checkpoint ~jobs:exec.Obs_cli.jobs
      ~isolation:exec.Obs_cli.isolation ~supervisor:exec.Obs_cli.supervisor
      ~ppf:Format.std_formatter cells
  with
  | () -> 0
  | exception Harness.Sweep.Interrupted ->
      Format.eprintf "interrupted; finished cells are checkpointed@.";
      130

let ks = Arg.(value & opt string "3" & info [ "k" ] ~doc:"Layer counts of G_k (>= 2).")

let base_sides =
  Arg.(value & opt string "6" & info [ "base-side" ] ~doc:"Base grid sides.")

let ts = Arg.(value & opt string "8" & info [ "t" ] ~doc:"Inner algorithm localities.")

let checkpoint =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~doc:"Append finished cells to this file.")

let resume =
  Arg.(value & flag & info [ "resume" ] ~doc:"Replay cells already in the checkpoint.")

let cmd =
  Cmd.v
    (Cmd.info "sweep_thm5" ~doc:"Theorem 5 reduction sweep")
    Term.(
      const run $ ks $ base_sides $ ts $ checkpoint $ resume $ Obs_cli.exec_term
      $ Obs_cli.trace $ Obs_cli.metrics $ Obs_cli.stats $ Obs_cli.flight)

let () = exit (Cmd.eval' cmd)
