(* E5 sweep: the Lemma 5.7 reduction on G_k.

   dune exec bin/sweep_thm5.exe -- --k 3 --base-side 6 --t 8 *)

open Online_local
open Cmdliner

let run k base_side t =
  let base =
    Topology.Grid2d.graph
      (Topology.Grid2d.create Topology.Grid2d.Simple ~rows:base_side ~cols:base_side)
  in
  let lay = Topology.Layered.create ~base ~k in
  let host = Topology.Layered.graph lay in
  let inner = Kp1_coloring.make ~k:(k + 1) ~locality:(fun ~n:_ -> t) () in
  let reduced = Thm5_reduction.reduce ~inner in
  let order = Models.Fixed_host.orders ~all:host (`Random 17) in
  let outcome =
    Models.Fixed_host.run ~oracle:(Oracles.layered lay) ~host ~palette:(k + 1)
      ~algorithm:reduced ~order ()
  in
  Format.printf "thm5 reduction on G_%d (n=%d, inner T=%d): %a@.  proper=%b@." k
    (Grid_graph.Graph.n host)
    t Models.Run_stats.pp_outcome outcome
    (Models.Run_stats.succeeded outcome
       ~colors:(k + 1)
       ~host)

let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Layer count of G_k (>= 2).")
let base_side = Arg.(value & opt int 6 & info [ "base-side" ] ~doc:"Base grid side.")
let t = Arg.(value & opt int 8 & info [ "t" ] ~doc:"Inner algorithm locality.")

let cmd =
  Cmd.v
    (Cmd.info "sweep_thm5" ~doc:"Theorem 5 reduction sweep")
    Term.(const run $ k $ base_side $ t)

let () = exit (Cmd.eval cmd)
