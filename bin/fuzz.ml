(* Differential fuzz harness over the whole engine: colorings, b-values,
   adversary games (faults included), sweep checkpointing and the
   metrics registry.

   Each target pairs a seeded generator with a property whose failure is
   a genuine bug; failures shrink to a minimal counterexample and print
   a replay token that re-runs exactly that case:

     dune exec bin/fuzz.exe -- --seed 7 --cases 500 --jobs 4
     dune exec bin/fuzz.exe -- --targets thm1-game,bvalue-cancel
     dune exec bin/fuzz.exe -- --replay 'demo-bug:24301:3:12'
     dune exec bin/fuzz.exe -- --isolate proc --retries 1

   Stdout is byte-identical for a fixed (seed, cases, targets) whatever
   --jobs or --isolate is and however often it is re-run; shrunk repro
   files land in the corpus directory.  Exit 1 when any target fails.

   With --isolate proc each target runs inside a supervised child
   process (Harness.Supervisor): a target that segfaults, OOMs or hangs
   is killed and retried instead of taking the whole harness down, and
   is reported as "<target>: ERROR (...)" once quarantined.  Targets
   then parallelize across processes (--jobs), cases within one target
   run serially — even "serial" targets are safe to run concurrently in
   this mode because each owns its process-global state. *)

open Cmdliner
module FT = Proptest.Fuzz_targets
module FR = Proptest.Fuzz_run
module Runner = Proptest.Runner

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  if dir <> "" then go dir

let status_line (r : FR.report) =
  match r.status with
  | FR.Passed { cases } -> Printf.sprintf "%s: PASS (%d cases)" r.target.FT.name cases
  | FR.Skipped reason -> Printf.sprintf "%s: SKIP (%s)" r.target.FT.name reason
  | FR.Failed c ->
      Printf.sprintf "%s: FAIL (case %d, size %d, %d shrinks)" r.target.FT.name
        c.Runner.case c.Runner.size c.Runner.shrink_steps

(* Everything the parent needs from a finished target, reduced to plain
   strings/bools so a supervised child can Marshal it over the result
   pipe (a full FR.report holds the target record, hence closures). *)
type rendered = {
  line : string;  (** the one-line status *)
  extra : string;  (** counterexample + replay hint after the line, or "" *)
  repro : string option;  (** contents for corpus/<target>.repro *)
  failed : bool;
}

let render_report (r : FR.report) =
  let line = status_line r in
  match r.status with
  | FR.Failed c ->
      let pp = Format.asprintf "%a" Runner.pp_counterexample c in
      let replay =
        Printf.sprintf "replay: dune exec bin/fuzz.exe -- --replay '%s'"
          c.Runner.replay
      in
      {
        line;
        extra = Printf.sprintf "  %s\n  %s\n" pp replay;
        repro = Some (Printf.sprintf "%s\n%s\n" pp replay);
        failed = true;
      }
  | _ -> { line; extra = ""; repro = None; failed = false }

let print_rendered ppf r =
  Format.fprintf ppf "%s@." r.line;
  if r.extra <> "" then Format.fprintf ppf "%s@?" r.extra

let write_corpus ~corpus rendered =
  mkdir_p corpus;
  let summary = Buffer.create 256 in
  List.iter
    (fun (name, r) ->
      Buffer.add_string summary r.line;
      Buffer.add_char summary '\n';
      match r.repro with
      | Some contents ->
          Out_channel.with_open_bin
            (Filename.concat corpus (name ^ ".repro"))
            (fun oc -> Out_channel.output_string oc contents)
      | None -> ())
    rendered;
  Out_channel.with_open_bin
    (Filename.concat corpus "SUMMARY.txt")
    (fun oc -> Out_channel.output_string oc (Buffer.contents summary))

let resolve_targets = function
  | None -> Ok (List.filter_map FT.find FT.default_names)
  | Some spec ->
      let names = String.split_on_char ',' spec |> List.map String.trim in
      let missing = List.filter (fun n -> FT.find n = None) names in
      if missing <> [] then
        Error
          (Printf.sprintf "unknown fuzz target(s): %s (try --list)"
             (String.concat ", " missing))
      else Ok (List.filter_map FT.find names)

let list_targets () =
  List.iter
    (fun (t : FT.t) ->
      Printf.printf "%-16s %s%s\n" t.FT.name t.FT.doc
        (if t.FT.serial then " [serial]" else ""))
    FT.all;
  0

let run_replay token =
  match FR.replay token with
  | Error msg ->
      Format.eprintf "fuzz: %s@." msg;
      2
  | Ok r ->
      print_rendered Format.std_formatter (render_report r);
      (match r.FR.status with FR.Failed _ -> 1 | _ -> 0)

(* --isolate proc: one supervised child per target.  Cases inside a
   target run serially (jobs:1) — process-level parallelism across
   targets replaces domain-level parallelism within one.  An abnormal
   child death (crash, kill, hang) is retried by the supervisor and, once
   quarantined, reported as a failing ERROR line rather than aborting the
   harness. *)
let run_supervised ~config ~(exec : Obs_cli.exec) targets =
  let targets = Array.of_list targets in
  let results = Array.make (Array.length targets) None in
  Harness.Supervisor.run ~config:exec.Obs_cli.supervisor
    ~jobs:exec.Obs_cli.jobs ~tasks:(Array.length targets)
    ~key:(fun i -> targets.(i).FT.name)
    ~work:(fun i ->
      Marshal.to_string (render_report (FR.run_target ~jobs:1 ~config targets.(i))) [])
    ~consume:(fun i outcome ->
      let name = targets.(i).FT.name in
      let r =
        match outcome with
        | Harness.Supervisor.Done s -> (Marshal.from_string s 0 : rendered)
        | Harness.Supervisor.Failed msg ->
            {
              line = Printf.sprintf "%s: ERROR (%s)" name msg;
              extra = "";
              repro = None;
              failed = true;
            }
        | Harness.Supervisor.Quarantined q ->
            {
              line =
                Printf.sprintf "%s: ERROR (%s)" name
                  (Harness.Supervisor.quarantine_to_string q);
              extra = "";
              repro = None;
              failed = true;
            }
      in
      print_rendered Format.std_formatter r;
      results.(i) <- Some (name, r))
    ();
  Array.to_list results |> List.filter_map Fun.id

let run seed cases targets (exec : Obs_cli.exec) corpus list replay trace metrics
    stats flight bulk =
  (* Before any worker domains or supervised children exist: both
     inherit the flag (domains share the atomic, children fork after
     this point). *)
  FT.set_bulk bulk;
  if list then list_targets ()
  else
    match replay with
    | Some token -> run_replay token
    | None -> (
        match resolve_targets targets with
        | Error msg ->
            Format.eprintf "fuzz: %s@." msg;
            2
        | Ok targets ->
            Obs_cli.with_observability ~program:"fuzz" ~trace ~metrics ~stats ~flight
            @@ fun () ->
            let config = { Runner.default_config with Runner.seed; cases } in
            Format.printf "fuzz seed=%d cases=%d targets=%d@." seed cases
              (List.length targets);
            let rendered =
              match exec.Obs_cli.isolation with
              | `In_domain ->
                  List.map
                    (fun t ->
                      let r =
                        render_report
                          (FR.run_target ~jobs:exec.Obs_cli.jobs ~config t)
                      in
                      print_rendered Format.std_formatter r;
                      (t.FT.name, r))
                    targets
              | `Process -> run_supervised ~config ~exec targets
            in
            write_corpus ~corpus rendered;
            if List.exists (fun (_, r) -> r.failed) rendered then 1 else 0)

let seed =
  Arg.(
    value
    & opt int Runner.default_config.Runner.seed
    & info [ "seed" ] ~docv:"INT"
        ~doc:"Stream seed. Every case $(i,i) runs on the independent stream \
              derived from (seed, i).")

let cases =
  Arg.(
    value
    & opt int 200
    & info [ "cases" ] ~docv:"N"
        ~doc:"Cases per target (targets may cap this lower; see --list).")

let targets =
  Arg.(
    value
    & opt (some string) None
    & info [ "targets" ] ~docv:"a,b,c"
        ~doc:"Comma-separated target names (default: all except demo-bug).")

let corpus =
  Arg.(
    value
    & opt string "fuzz-corpus"
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Directory for SUMMARY.txt and shrunk <target>.repro files.")

let list =
  Arg.(value & flag & info [ "list" ] ~doc:"List all fuzz targets and exit.")

let replay =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"TOKEN"
        ~doc:
          "Re-run exactly the case a failure report named \
           (target:seed:case:size), shrinking again on failure.")

let cmd =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Differential fuzz harness over games, colorings and sweeps")
    Term.(
      const run $ seed $ cases $ targets $ Obs_cli.exec_term $ corpus $ list
      $ replay $ Obs_cli.trace $ Obs_cli.metrics $ Obs_cli.stats
      $ Obs_cli.flight $ Obs_cli.bulk)

let () = exit (Cmd.eval' cmd)
