(* Differential fuzz harness over the whole engine: colorings, b-values,
   adversary games (faults included), sweep checkpointing and the
   metrics registry.

   Each target pairs a seeded generator with a property whose failure is
   a genuine bug; failures shrink to a minimal counterexample and print
   a replay token that re-runs exactly that case:

     dune exec bin/fuzz.exe -- --seed 7 --cases 500 --jobs 4
     dune exec bin/fuzz.exe -- --targets thm1-game,bvalue-cancel
     dune exec bin/fuzz.exe -- --replay 'demo-bug:24301:3:12'

   Stdout is byte-identical for a fixed (seed, cases, targets) whatever
   --jobs is and however often it is re-run; shrunk repro files land in
   the corpus directory.  Exit 1 when any target fails. *)

open Cmdliner
module FT = Proptest.Fuzz_targets
module FR = Proptest.Fuzz_run
module Runner = Proptest.Runner

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  if dir <> "" then go dir

let status_line (r : FR.report) =
  match r.status with
  | FR.Passed { cases } -> Printf.sprintf "%s: PASS (%d cases)" r.target.FT.name cases
  | FR.Skipped reason -> Printf.sprintf "%s: SKIP (%s)" r.target.FT.name reason
  | FR.Failed c ->
      Printf.sprintf "%s: FAIL (case %d, size %d, %d shrinks)" r.target.FT.name
        c.Runner.case c.Runner.size c.Runner.shrink_steps

let print_report ppf (r : FR.report) =
  Format.fprintf ppf "%s@." (status_line r);
  match r.status with
  | FR.Failed c ->
      Format.fprintf ppf "  %a@." Runner.pp_counterexample c;
      Format.fprintf ppf "  replay: dune exec bin/fuzz.exe -- --replay '%s'@."
        c.Runner.replay
  | _ -> ()

let write_corpus ~corpus reports =
  mkdir_p corpus;
  let summary = Buffer.create 256 in
  List.iter
    (fun (r : FR.report) ->
      Buffer.add_string summary (status_line r);
      Buffer.add_char summary '\n';
      match r.status with
      | FR.Failed c ->
          let path = Filename.concat corpus (r.target.FT.name ^ ".repro") in
          Out_channel.with_open_bin path (fun oc ->
              Printf.fprintf oc "%s\n"
                (Format.asprintf "%a" Runner.pp_counterexample c);
              Printf.fprintf oc "replay: dune exec bin/fuzz.exe -- --replay '%s'\n"
                c.Runner.replay)
      | _ -> ())
    reports;
  Out_channel.with_open_bin
    (Filename.concat corpus "SUMMARY.txt")
    (fun oc -> Out_channel.output_string oc (Buffer.contents summary))

let resolve_targets = function
  | None -> Ok (List.filter_map FT.find FT.default_names)
  | Some spec ->
      let names = String.split_on_char ',' spec |> List.map String.trim in
      let missing = List.filter (fun n -> FT.find n = None) names in
      if missing <> [] then
        Error
          (Printf.sprintf "unknown fuzz target(s): %s (try --list)"
             (String.concat ", " missing))
      else Ok (List.filter_map FT.find names)

let list_targets () =
  List.iter
    (fun (t : FT.t) ->
      Printf.printf "%-16s %s%s\n" t.FT.name t.FT.doc
        (if t.FT.serial then " [serial]" else ""))
    FT.all;
  0

let run_replay token =
  match FR.replay token with
  | Error msg ->
      Format.eprintf "fuzz: %s@." msg;
      2
  | Ok r ->
      print_report Format.std_formatter r;
      (match r.FR.status with FR.Failed _ -> 1 | _ -> 0)

let run seed cases targets jobs corpus list replay trace metrics =
  if list then list_targets ()
  else
    match replay with
    | Some token -> run_replay token
    | None -> (
        match resolve_targets targets with
        | Error msg ->
            Format.eprintf "fuzz: %s@." msg;
            2
        | Ok targets ->
            Obs_cli.with_observability ~program:"fuzz" ~trace ~metrics @@ fun () ->
            let config = { Runner.default_config with Runner.seed; cases } in
            Format.printf "fuzz seed=%d cases=%d targets=%d@." seed cases
              (List.length targets);
            let reports =
              List.map
                (fun t ->
                  let r = FR.run_target ~jobs ~config t in
                  print_report Format.std_formatter r;
                  r)
                targets
            in
            write_corpus ~corpus reports;
            let failed =
              List.exists
                (fun r -> match r.FR.status with FR.Failed _ -> true | _ -> false)
                reports
            in
            if failed then 1 else 0)

let seed =
  Arg.(
    value
    & opt int Runner.default_config.Runner.seed
    & info [ "seed" ] ~docv:"INT"
        ~doc:"Stream seed. Every case $(i,i) runs on the independent stream \
              derived from (seed, i).")

let cases =
  Arg.(
    value
    & opt int 200
    & info [ "cases" ] ~docv:"N"
        ~doc:"Cases per target (targets may cap this lower; see --list).")

let targets =
  Arg.(
    value
    & opt (some string) None
    & info [ "targets" ] ~docv:"a,b,c"
        ~doc:"Comma-separated target names (default: all except demo-bug).")

let jobs =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "jobs" ]
        ~doc:
          "Worker domains (default: available cores, capped at 8). Output is \
           byte-identical at every jobs count; serial targets ignore it.")

let corpus =
  Arg.(
    value
    & opt string "fuzz-corpus"
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Directory for SUMMARY.txt and shrunk <target>.repro files.")

let list =
  Arg.(value & flag & info [ "list" ] ~doc:"List all fuzz targets and exit.")

let replay =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"TOKEN"
        ~doc:
          "Re-run exactly the case a failure report named \
           (target:seed:case:size), shrinking again on failure.")

let cmd =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Differential fuzz harness over games, colorings and sweeps")
    Term.(
      const run $ seed $ cases $ targets $ jobs $ corpus $ list $ replay
      $ Obs_cli.trace $ Obs_cli.metrics)

let () = exit (Cmd.eval' cmd)
