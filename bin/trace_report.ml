(* Render a per-theorem summary of a trace: NDJSON (--trace FILE) or a
   binary flight-recorder file (--flight FILE), sniffed by first byte.

   The reader is strict: any malformed line or frame, unknown event, or
   trace written by a newer format version is a hard error — a trace
   that parses here is a trace the whole toolchain agrees on.

   Reconstruction: records carry a global emission index [i] and the
   emitting domain id [w].  Events with equal [w] are causally ordered,
   so walking the records in [i] order with per-worker state rebuilds
   cell spans (Cell_start .. Cell_finish) and game spans
   (Game_start .. Game_verdict) even when workers interleave.

   dune exec bin/trace_report.exe -- sweep.trace *)

module T = Harness.Trace
module Mx = Harness.Metrics

(* An open game span on one worker, filled in by Step events until the
   verdict arrives. *)
type open_game = {
  g_adversary : string;
  g_max_calls : int option;
  mutable g_steps : int;  (* last presentation step seen *)
}

(* An open sweep-cell span on one worker. *)
type open_cell = {
  c_key : string;
  c_t0 : float;
  mutable c_max_view : int;  (* max Step view inside the cell *)
}

type worker = {
  mutable cur_cell : open_cell option;
  mutable cur_game : open_game option;
  mutable cells : int;
  mutable busy : float;  (* summed cell span duration, seconds *)
}

(* Per-adversary tallies. *)
type adversary_stats = {
  mutable games : int;
  outcomes : (string, int ref) Hashtbl.t;  (* outcome label -> count *)
  mutable defeat_buckets : int array;  (* log2 buckets of defeat steps *)
  mutable budget_games : int;  (* games that ran under a color-call budget *)
  mutable budget_used : int;
  mutable budget_limit : int;
  mutable budget_max_pct : float;
}

let adversary_stats () =
  {
    games = 0;
    outcomes = Hashtbl.create 8;
    defeat_buckets = Array.make 64 0;
    budget_games = 0;
    budget_used = 0;
    budget_limit = 0;
    budget_max_pct = 0.;
  }

let count tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl key (ref n)

let sorted_counts tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort compare

(* "t=1 k=6 side=400 algo=ael" -> Some 1 *)
let t_of_cell_key key =
  String.split_on_char ' ' key
  |> List.find_map (fun part ->
         match String.split_on_char '=' part with
         | [ "t"; v ] -> int_of_string_opt v
         | _ -> None)

let pp_buckets ppf buckets =
  Array.iteri
    (fun b n ->
      if n > 0 then
        let lo = Mx.bucket_lo b in
        let hi = if b = 0 then 0 else (2 * lo) - 1 in
        Format.fprintf ppf "  [%d..%d] %d" lo hi n)
    buckets

let report path =
  (* Same report for both trace containers: NDJSON (--trace) and the
     flight recorder's binary frames (--flight), sniffed by first
     byte.  The decoded record stream is identical by construction. *)
  let records =
    if Harness.Flight.is_flight_file path then Harness.Flight.read_file path
    else T.read_file path
  in
  let program, version =
    match records with
    | { T.ev = T.Trace_header { program; version }; _ } :: _ -> (program, version)
    | _ -> failwith "trace does not start with a header record"
  in
  let span =
    List.fold_left (fun acc r -> max acc r.T.ts) 0. records
  in
  let workers : (int, worker) Hashtbl.t = Hashtbl.create 8 in
  let worker w =
    match Hashtbl.find_opt workers w with
    | Some st -> st
    | None ->
        let st = { cur_cell = None; cur_game = None; cells = 0; busy = 0. } in
        Hashtbl.replace workers w st;
        st
  in
  let adversaries : (string, adversary_stats) Hashtbl.t = Hashtbl.create 8 in
  let adversary a =
    match Hashtbl.find_opt adversaries a with
    | Some st -> st
    | None ->
        let st = adversary_stats () in
        Hashtbl.replace adversaries a st;
        st
  in
  let cell_status = Hashtbl.create 4 in  (* "ok"/"error"/"replayed" -> count *)
  let fault_tags = Hashtbl.create 8 in
  let misbehaviors = Hashtbl.create 8 in
  let audit_ok = Hashtbl.create 4 in  (* executor -> count *)
  let audit_fail = Hashtbl.create 4 in
  let max_view_by_t = Hashtbl.create 8 in  (* T -> max view size *)
  let ckpt_flushes = ref 0 in
  let ckpt_bytes = ref 0 in
  let color_calls = ref 0 in
  let child_spawns = ref 0 in
  let child_heartbeats = ref 0 in
  let child_cpu_user = ref 0. in
  let child_cpu_sys = ref 0. in
  let exit_statuses = Hashtbl.create 4 in  (* "exit:0"/"signal:SIGKILL" -> count *)
  let kill_signals = Hashtbl.create 4 in  (* "sigterm"/"sigkill" -> count *)
  let retries = Hashtbl.create 4 in  (* cell key -> retry count *)
  let quarantined = ref [] in  (* (key, attempts, reason), reverse order *)
  let server_socket = ref None in
  let conns_opened = ref 0 in
  let conn_close_reasons = Hashtbl.create 4 in
  let job_dispositions = Hashtbl.create 4 in  (* "new"/"inflight"/"cached" *)
  let job_rejects = ref 0 in
  let job_starts = ref 0 in
  let job_statuses = Hashtbl.create 4 in  (* "ok"/"error"/"quarantined" *)
  let drains = ref [] in  (* (queued, running), reverse order *)
  let chaos_kinds = Hashtbl.create 4 in
  let canon_hits = Hashtbl.create 4 in  (* "step"/"game" memo hits *)
  let journal_corruptions = ref [] in  (* (path, line, reason), reverse *)
  let fleet_start = ref None in  (* (endpoints, jobs, shard_seed) *)
  let endpoint_states = Hashtbl.create 4 in  (* "endpoint state" -> count *)
  let failovers = ref 0 in
  let rebalanced = ref 0 in
  let fleet_verdicts = ref [] in  (* (verdict, results, failovers, dups) *)
  List.iter
    (fun r ->
      let w = worker r.T.w in
      match r.T.ev with
      | T.Trace_header _ -> ()
      | T.Cell_start { key } ->
          w.cur_cell <- Some { c_key = key; c_t0 = r.T.ts; c_max_view = 0 }
      | T.Cell_finish { key = _; status } ->
          count cell_status status 1;
          (match w.cur_cell with
          | Some c ->
              w.cells <- w.cells + 1;
              w.busy <- w.busy +. (r.T.ts -. c.c_t0);
              (match t_of_cell_key c.c_key with
              | Some t when c.c_max_view > 0 ->
                  let prev =
                    Option.value ~default:0 (Hashtbl.find_opt max_view_by_t t)
                  in
                  Hashtbl.replace max_view_by_t t (max prev c.c_max_view)
              | _ -> ())
          | None -> ());
          w.cur_cell <- None
      | T.Checkpoint_flush { bytes; _ } ->
          (* flushes land on the flushing worker's stream, but they are a
             whole-sweep notion — tallied globally *)
          incr ckpt_flushes;
          ckpt_bytes := !ckpt_bytes + bytes
      | T.Worker_start _ | T.Worker_stop _ -> ()
      | T.Game_start { adversary = a; max_color_calls; _ } ->
          w.cur_game <-
            Some
              {
                g_adversary = a;
                g_max_calls = max_color_calls;
                g_steps = 0;
              }
      | T.Game_verdict { adversary = a; outcome; color_calls = calls; _ } ->
          let st = adversary a in
          st.games <- st.games + 1;
          count st.outcomes outcome 1;
          (match w.cur_game with
          | Some g ->
              if outcome = "DEFEATED" then begin
                (* how long the adversary needed: last presentation step *)
                let b = Mx.bucket_of g.g_steps in
                st.defeat_buckets.(b) <- st.defeat_buckets.(b) + 1
              end;
              (match g.g_max_calls with
              | Some limit when limit > 0 ->
                  st.budget_games <- st.budget_games + 1;
                  st.budget_used <- st.budget_used + calls;
                  st.budget_limit <- st.budget_limit + limit;
                  st.budget_max_pct <-
                    Float.max st.budget_max_pct
                      (100. *. float_of_int calls /. float_of_int limit)
              | _ -> ())
          | None -> ());
          w.cur_game <- None
      | T.Step { step; max_view; _ } ->
          (match w.cur_game with
          | Some g -> g.g_steps <- max g.g_steps step
          | None -> ());
          (match w.cur_cell with
          | Some c -> c.c_max_view <- max c.c_max_view max_view
          | None -> ())
      | T.Reveal _ -> ()
      | T.Color_call _ -> incr color_calls
      | T.Audit { executor; ok; _ } ->
          count (if ok then audit_ok else audit_fail) executor 1
      | T.Fault_injected { tag; _ } -> count fault_tags tag 1
      | T.Misbehavior { label; _ } -> count misbehaviors label 1
      | T.Child_spawn _ -> incr child_spawns
      | T.Child_heartbeat _ -> incr child_heartbeats
      | T.Child_kill { signal; _ } -> count kill_signals signal 1
      | T.Child_exit { status; cpu_user; cpu_sys; _ } ->
          count exit_statuses status 1;
          child_cpu_user := !child_cpu_user +. cpu_user;
          child_cpu_sys := !child_cpu_sys +. cpu_sys
      | T.Cell_retry { key; _ } -> count retries key 1
      | T.Cell_quarantined { key; attempts; reason } ->
          quarantined := (key, attempts, reason) :: !quarantined
      | T.Server_start { socket; _ } -> server_socket := Some socket
      | T.Conn_open _ -> incr conns_opened
      | T.Conn_close { reason; _ } -> count conn_close_reasons reason 1
      | T.Job_submit { disposition; _ } -> count job_dispositions disposition 1
      | T.Job_reject _ -> incr job_rejects
      | T.Job_start _ -> incr job_starts
      | T.Job_done { status; _ } -> count job_statuses status 1
      | T.Server_drain { queued; running } -> drains := (queued, running) :: !drains
      | T.Chaos_injected { kind } -> count chaos_kinds kind 1
      | T.Canon_hit { kind; _ } -> count canon_hits kind 1
      | T.Journal_corrupt { path; line; reason } ->
          journal_corruptions := (path, line, reason) :: !journal_corruptions
      | T.Fleet_start { endpoints; jobs; shard_seed } ->
          fleet_start := Some (endpoints, jobs, shard_seed)
      | T.Endpoint_state { endpoint; state } ->
          count endpoint_states (endpoint ^ " " ^ state) 1
      | T.Failover _ -> incr failovers
      | T.Rebalance { moved; _ } -> rebalanced := !rebalanced + moved
      | T.Fleet_verdict { verdict; results; failovers = f; duplicates } ->
          fleet_verdicts := (verdict, results, f, duplicates) :: !fleet_verdicts)
    records;
  let ppf = Format.std_formatter in
  Format.fprintf ppf "trace %s: program %s, format v%d@." path program version;
  Format.fprintf ppf "  %d records, %d workers, span %.3fs@." (List.length records)
    (Hashtbl.length workers) span;
  if Hashtbl.length cell_status > 0 then begin
    Format.fprintf ppf "@.cells@.";
    List.iter
      (fun (status, n) -> Format.fprintf ppf "  %-10s %d@." status n)
      (sorted_counts cell_status);
    if !ckpt_flushes > 0 then
      Format.fprintf ppf "  checkpoint flushes %d (%d bytes)@." !ckpt_flushes
        !ckpt_bytes
  end;
  if Hashtbl.length workers > 1 then begin
    Format.fprintf ppf "@.worker load balance@.";
    Hashtbl.fold (fun w st acc -> (w, st) :: acc) workers []
    |> List.sort compare
    |> List.iter (fun (w, st) ->
           Format.fprintf ppf "  w%-3d %3d cells, busy %.3fs@." w st.cells st.busy)
  end;
  if !child_spawns > 0 then begin
    Format.fprintf ppf "@.supervisor (process isolation)@.";
    Format.fprintf ppf "  children spawned   %d@." !child_spawns;
    List.iter
      (fun (status, n) -> Format.fprintf ppf "  reaped %-12s %d@." status n)
      (sorted_counts exit_statuses);
    List.iter
      (fun (signal, n) -> Format.fprintf ppf "  watchdog %-10s %d@." signal n)
      (sorted_counts kill_signals);
    let total_retries =
      Hashtbl.fold (fun _ r acc -> acc + !r) retries 0
    in
    if total_retries > 0 then begin
      Format.fprintf ppf "  retries            %d@." total_retries;
      List.iter
        (fun (key, n) -> Format.fprintf ppf "    %-40s %d@." key n)
        (sorted_counts retries)
    end;
    List.iter
      (fun (key, attempts, reason) ->
        Format.fprintf ppf "  quarantined %s after %d attempts (%s)@." key
          attempts reason)
      (List.rev !quarantined);
    if !child_heartbeats > 0 then
      Format.fprintf ppf "  heartbeats         %d@." !child_heartbeats;
    Format.fprintf ppf "  child cpu          %.3fs user, %.3fs sys@."
      !child_cpu_user !child_cpu_sys
  end;
  (match !server_socket with
  | None -> ()
  | Some socket ->
      Format.fprintf ppf "@.job server (%s)@." socket;
      Format.fprintf ppf "  connections        %d@." !conns_opened;
      List.iter
        (fun (reason, n) -> Format.fprintf ppf "  closed %-11s %d@." reason n)
        (sorted_counts conn_close_reasons);
      List.iter
        (fun (d, n) -> Format.fprintf ppf "  submit %-11s %d@." d n)
        (sorted_counts job_dispositions);
      if !job_rejects > 0 then
        Format.fprintf ppf "  rejected           %d@." !job_rejects;
      Format.fprintf ppf "  job starts         %d@." !job_starts;
      List.iter
        (fun (status, n) -> Format.fprintf ppf "  done %-13s %d@." status n)
        (sorted_counts job_statuses);
      List.iter
        (fun (queued, running) ->
          Format.fprintf ppf "  drained with %d queued, %d running@." queued
            running)
        (List.rev !drains);
      if Hashtbl.length chaos_kinds > 0 then begin
        Format.fprintf ppf "  chaos injected@.";
        List.iter
          (fun (kind, n) -> Format.fprintf ppf "    %-16s %d@." kind n)
          (sorted_counts chaos_kinds)
      end);
  (match !fleet_start with
  | None -> ()
  | Some (endpoints, jobs, shard_seed) ->
      Format.fprintf ppf "@.fleet dispatch@.";
      Format.fprintf ppf "  endpoints          %d (jobs %d, shard seed %d)@."
        endpoints jobs shard_seed;
      List.iter
        (fun (key, n) -> Format.fprintf ppf "  state %-20s %d@." key n)
        (sorted_counts endpoint_states);
      if !failovers > 0 then
        Format.fprintf ppf "  failovers          %d@." !failovers;
      if !rebalanced > 0 then
        Format.fprintf ppf "  jobs rebalanced    %d@." !rebalanced;
      List.iter
        (fun (verdict, results, f, dups) ->
          Format.fprintf ppf
            "  verdict %s: %d results, %d failovers, %d duplicate deliveries@."
            verdict results f dups)
        (List.rev !fleet_verdicts));
  if !journal_corruptions <> [] then begin
    Format.fprintf ppf "@.journal corruption (records skipped on load)@.";
    List.iter
      (fun (path, line, reason) ->
        Format.fprintf ppf "  %s:%d: %s@." path line reason)
      (List.rev !journal_corruptions)
  end;
  if Hashtbl.length canon_hits > 0 then begin
    Format.fprintf ppf "@.memo cache hits@.";
    List.iter
      (fun (kind, n) -> Format.fprintf ppf "  %-10s %d@." kind n)
      (sorted_counts canon_hits)
  end;
  if Hashtbl.length adversaries > 0 then begin
    Format.fprintf ppf "@.games by adversary@.";
    Hashtbl.fold (fun a st acc -> (a, st) :: acc) adversaries []
    |> List.sort compare
    |> List.iter (fun (a, st) ->
           Format.fprintf ppf "  %s: %d game%s@." a st.games
             (if st.games = 1 then "" else "s");
           List.iter
             (fun (outcome, n) -> Format.fprintf ppf "    %-40s %d@." outcome n)
             (sorted_counts st.outcomes);
           if Array.exists (fun n -> n > 0) st.defeat_buckets then
             Format.fprintf ppf "    defeat steps:%a@." pp_buckets
               st.defeat_buckets;
           if st.budget_games > 0 && st.budget_limit > 0 then
             Format.fprintf ppf
               "    color-call budget: used %d of %d (avg %.1f%%, max %.1f%%)@."
               st.budget_used st.budget_limit
               (100. *. float_of_int st.budget_used /. float_of_int st.budget_limit)
               st.budget_max_pct)
  end;
  if Hashtbl.length max_view_by_t > 0 then begin
    Format.fprintf ppf "@.max view size vs T@.";
    Hashtbl.fold (fun t v acc -> (t, v) :: acc) max_view_by_t []
    |> List.sort compare
    |> List.iter (fun (t, v) -> Format.fprintf ppf "  T=%-3d %d@." t v)
  end;
  if !color_calls > 0 then
    Format.fprintf ppf "@.color calls traced: %d@." !color_calls;
  if Hashtbl.length fault_tags > 0 then begin
    Format.fprintf ppf "@.faults injected@.";
    List.iter
      (fun (tag, n) -> Format.fprintf ppf "  %-30s %d@." tag n)
      (sorted_counts fault_tags)
  end;
  if Hashtbl.length misbehaviors > 0 then begin
    Format.fprintf ppf "@.misbehavior certificates@.";
    List.iter
      (fun (label, n) -> Format.fprintf ppf "  %-30s %d@." label n)
      (sorted_counts misbehaviors)
  end;
  if Hashtbl.length audit_ok > 0 || Hashtbl.length audit_fail > 0 then begin
    Format.fprintf ppf "@.audits@.";
    let executors = Hashtbl.create 4 in
    Hashtbl.iter (fun e _ -> Hashtbl.replace executors e ()) audit_ok;
    Hashtbl.iter (fun e _ -> Hashtbl.replace executors e ()) audit_fail;
    Hashtbl.fold (fun e () acc -> e :: acc) executors []
    |> List.sort compare
    |> List.iter (fun e ->
           let get tbl =
             match Hashtbl.find_opt tbl e with Some r -> !r | None -> 0
           in
           Format.fprintf ppf "  %-15s %d ok, %d failed@." e (get audit_ok)
             (get audit_fail))
  end

let main path =
  match report path with
  | () -> 0
  | exception Obs.Json.Parse_error msg ->
      Format.eprintf "trace_report: %s@." msg;
      1
  | exception (Failure msg | Sys_error msg) ->
      Format.eprintf "trace_report: %s@." msg;
      1

(* Integrity-check a sweep/server journal: verify the v2 CRC trailers
   and report — without replaying — exactly which records a resume
   would skip.  Exit 0 on a clean journal, 1 when corruption is found. *)
let fsck_main path =
  match Harness.Sweep.Journal.fsck path with
  | { Harness.Sweep.Journal.version; records; corrupt } ->
      Format.printf "journal %s: format v%d, %d valid record%s@." path version
        records
        (if records = 1 then "" else "s");
      if version < 2 then
        Format.printf
          "  (pre-v2 format: records carry no CRC trailer to verify)@.";
      List.iter
        (fun { Harness.Sweep.Journal.line; reason } ->
          Format.printf "  line %d: CORRUPT — %s@." line reason)
        corrupt;
      if corrupt = [] then begin
        Format.printf "  no corruption detected@.";
        0
      end
      else begin
        Format.printf "  %d corrupt record%s: a --resume reruns exactly \
                       these keys@."
          (List.length corrupt)
          (if List.length corrupt = 1 then "" else "s");
        1
      end
  | exception (Invalid_argument msg | Sys_error msg | Failure msg) ->
      Format.eprintf "trace_report: journal-fsck: %s@." msg;
      2

open Cmdliner

let path =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE"
        ~doc:
          "Trace file: NDJSON written by --trace, or a binary flight \
           recording written by --flight (auto-detected).")

let journal_path =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"JOURNAL"
        ~doc:"Checkpoint/journal file written by --checkpoint or --journal.")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Summarize a trace (NDJSON or binary flight recording): \
             outcomes, defeat-step histograms, budgets, worker load")
    Term.(const main $ path)

let fsck_cmd =
  Cmd.v
    (Cmd.info "journal-fsck"
       ~doc:"Verify a checkpoint/journal's per-record CRC32 trailers \
             (format v2) and list the records a --resume would skip; \
             exits 1 when corruption is found, 2 on an unreadable or \
             newer-format journal")
    Term.(const fsck_main $ journal_path)

let cmd =
  Cmd.group
    ~default:Term.(const main $ path)
    (Cmd.info "trace_report"
       ~doc:"Summarize a trace, or integrity-check a journal \
             (journal-fsck)")
    [ report_cmd; fsck_cmd ]

(* [trace_report TRACE] (no subcommand) must keep rendering the report:
   Cmd.group only falls back to the default term when the first
   positional is absent, so a bare trace path would otherwise be
   rejected as an unknown command.  Route it to [report] explicitly. *)
let argv =
  let argv = Sys.argv in
  if
    Array.length argv > 1
    &&
    match argv.(1) with
    | "report" | "journal-fsck" -> false
    | s -> String.length s > 0 && s.[0] <> '-'
  then
    Array.append
      [| argv.(0); "report" |]
      (Array.sub argv 1 (Array.length argv - 1))
  else argv

let () = exit (Cmd.eval' ~argv cmd)
