(* Benchmark harness: one bechamel micro-benchmark per experiment (the
   inner loops that dominate each reproduction), the domain-scaling
   benchmark of the parallel sweep engine (E8), and the full
   regeneration of every experiment table (EXPERIMENTS.md).

   dune exec bench/main.exe                     -- everything
   dune exec bench/main.exe -- --sweep-scaling  -- only the E8 scaling
                                                   run (writes
                                                   BENCH_sweep_parallel.json) *)

open Bechamel
open Toolkit
open Online_local

(* ---------------------- benchmark subjects ---------------------- *)

let bench_bvalue =
  (* E6: the b-value of a 10k-arc directed row path. *)
  let len = 10_000 in
  let colors = Array.init (len + 1) (fun i -> i mod 3) in
  let path = List.init (len + 1) (fun i -> i) in
  Test.make ~name:"e6: b-value of 10k-arc path"
    (Staged.stage (fun () -> ignore (Colorings.Bvalue.b_path colors path)))

let bench_brute =
  (* E6: exhaustive proper-coloring enumeration (Lemma 3.4 checker). *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:3 ~cols:3 in
  let g = Topology.Grid2d.graph grid in
  Test.make ~name:"e6: enumerate 3-colorings of 3x3 grid"
    (Staged.stage (fun () -> ignore (Colorings.Brute.count_colorings g ~colors:3)))

let bench_ball =
  (* substrate: the per-presentation reveal cost. *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:64 ~cols:64 in
  let g = Topology.Grid2d.graph grid in
  let center = Topology.Grid2d.node grid ~row:32 ~col:32 in
  Test.make ~name:"substrate: B(v,8) on 64x64 grid"
    (Staged.stage (fun () -> ignore (Grid_graph.Bfs.ball g [ center ] 8)))

let bench_thm1 =
  (* E1: one full adversary game against greedy (k = 6). *)
  Test.make ~name:"e1: thm1 adversary vs greedy (k=6)"
    (Staged.stage (fun () ->
         ignore
           (Thm1_adversary.run ~n_side:400 ~k:6 ~algorithm:(Portfolio.greedy ()) ())))

let bench_harness_overhead =
  (* The same thm1 game with the algorithm under full guarding (budgets +
     deadline + exception containment).  Comparing against the raw e1
     benchmark above bounds the per-verdict cost of the guarded engine;
     the happy-path overhead should stay within ~10%. *)
  Test.make ~name:"harness: thm1 vs greedy (k=6), guarded"
    (Staged.stage (fun () ->
         let guard = Harness.Guard.create ~limits:Harness.Guard.default_limits () in
         let algorithm = Harness.Guard.algorithm guard (Portfolio.greedy ()) in
         ignore (Thm1_adversary.run ~n_side:400 ~k:6 ~algorithm ())))

let bench_thm2 =
  Test.make ~name:"e2: thm2 two-row attack (torus 13)"
    (Staged.stage (fun () ->
         ignore
           (Thm2_adversary.run ~wrap:`Toroidal ~side:13
              ~algorithm:(Portfolio.greedy ())
              ())))

let bench_thm3 =
  Test.make ~name:"e3: thm3 gadget attack (9 gadgets)"
    (Staged.stage (fun () ->
         ignore
           (Thm3_adversary.run ~k:3 ~gadgets:9 ~algorithm:(Portfolio.greedy ()) ())))

let bench_kp1 =
  (* E4: one full upper-bound run on a 20x20 grid. *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:20 ~cols:20 in
  let host = Topology.Grid2d.graph grid in
  let order = Models.Fixed_host.orders ~all:host (`Random 5) in
  Test.make ~name:"e4: kp1 3-colors 20x20 grid (T=4)"
    (Staged.stage (fun () ->
         ignore
           (Models.Fixed_host.run
              ~oracle:(Oracles.grid_bipartition grid)
              ~host ~palette:3
              ~algorithm:(Kp1_coloring.make ~k:2 ~locality:(fun ~n:_ -> 4) ())
              ~order ())))

let bench_ael =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:20 ~cols:20 in
  let host = Topology.Grid2d.graph grid in
  let order = Models.Fixed_host.orders ~all:host (`Random 5) in
  Test.make ~name:"e4: ael (oracle-free) 20x20 grid (T=4)"
    (Staged.stage (fun () ->
         ignore
           (Models.Fixed_host.run ~host ~palette:3
              ~algorithm:(Kp1_coloring.ael_bipartite ~locality:(fun ~n:_ -> 4) ())
              ~order ())))

let bench_thm5 =
  let base =
    Topology.Grid2d.graph (Topology.Grid2d.create Topology.Grid2d.Simple ~rows:4 ~cols:4)
  in
  let lay = Topology.Layered.create ~base ~k:3 in
  let host = Topology.Layered.graph lay in
  let order = Models.Fixed_host.orders ~all:host (`Random 3) in
  Test.make ~name:"e5: reduced algorithm colors G_3"
    (Staged.stage (fun () ->
         ignore
           (Models.Fixed_host.run ~oracle:(Oracles.layered lay) ~host ~palette:4
              ~algorithm:
                (Thm5_reduction.reduce
                   ~inner:(Kp1_coloring.make ~k:4 ~locality:(fun ~n:_ -> 6) ()))
              ~order ())))

let bench_gadget_classify =
  let chain = Topology.Gadget.create ~k:4 ~gadgets:2 () in
  let coloring = Colorings.Coloring.of_array (Topology.Gadget.canonical_k_coloring chain) in
  Test.make ~name:"e3: classify gadget matrix (k=4)"
    (Staged.stage (fun () ->
         ignore
           (Colorings.Colorful.classify
              (Colorings.Colorful.matrix_of_gadget chain coloring ~gadget:1))))

let bench_clique_chain =
  (* The structural oracle's clique walk on a triangular grid fragment. *)
  let t = Topology.Tri_grid.create ~side:12 in
  let g = Topology.Tri_grid.graph t in
  let view =
    {
      Models.View.n_total = Grid_graph.Graph.n g;
      palette = 4;
      node_count = (fun () -> Grid_graph.Graph.n g);
      neighbors = (fun v -> Array.to_list (Grid_graph.Graph.neighbors g v));
      mem_edge = (fun a b -> Grid_graph.Graph.mem_edge g a b);
      id = (fun v -> v + 1);
      output = (fun _ -> None);
      hint = (fun _ -> None);
      target = 0;
      new_nodes = [];
      step = 1;
    }
  in
  let frag = [ 0; 1; 2; 3; 4 ] in
  Test.make ~name:"e4: structural triangle-chain oracle query"
    (Staged.stage (fun () ->
         ignore (Oracles.triangle_chain.Models.Oracle.query view frag)))

let bench_dynamic_repair =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:12 ~cols:12 in
  let order =
    Models.Fixed_host.orders ~all:(Topology.Grid2d.graph grid) (`Random 2)
  in
  let updates = Models.Dynamic_local.incremental_grid_updates grid ~order in
  Test.make ~name:"models: dynamic greedy repair, 12x12 incremental build"
    (Staged.stage (fun () ->
         ignore
           (Models.Dynamic_local.run ~n_hint:144 ~palette:5
              ~algorithm:Models.Dynamic_local.greedy_repair ~updates ())))

let bench_cole_vishkin =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:40 ~cols:40 in
  Test.make ~name:"models: cole-vishkin 5-coloring, 40x40"
    (Staged.stage (fun () -> ignore (Models.Cole_vishkin.five_color grid)))

let tests =
  Test.make_grouped ~name:"online-local-grids"
    [
      bench_bvalue;
      bench_brute;
      bench_ball;
      bench_gadget_classify;
      bench_thm1;
      bench_harness_overhead;
      bench_thm2;
      bench_thm3;
      bench_kp1;
      bench_ael;
      bench_thm5;
      bench_clique_chain;
      bench_dynamic_repair;
      bench_cole_vishkin;
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Bechamel.Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Format.printf "%-55s %15s@." "benchmark" "ns/run";
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Format.printf "%-55s %15.0f@." name est
      | Some _ | None -> Format.printf "%-55s %15s@." name "-")
    rows

(* ------------------- E8: sweep domain scaling -------------------- *)

(* A fixed Theorem-1 cell grid, heavy enough (~0.1 s/cell, transcript
   validation on) that domain-spawn overhead is negligible against cell
   cost.  The same grid runs at 1/2/4/8 domains; output equality across
   jobs counts is asserted, wall-clock per jobs count is reported, and
   the record is written to BENCH_sweep_parallel.json. *)

let scaling_cells () =
  List.concat_map
    (fun t ->
      List.concat_map
        (fun k ->
          List.map
            (fun algo_name ->
              {
                Harness.Sweep.key =
                  Printf.sprintf "t=%d k=%d algo=%s" t k algo_name;
                run =
                  (fun () ->
                    let algorithm =
                      match algo_name with
                      | "ael" -> Portfolio.ael ~t ()
                      | _ -> Portfolio.greedy ()
                    in
                    let r =
                      Thm1_adversary.run ~validate:true ~n_side:30_000 ~k
                        ~algorithm ()
                    in
                    Format.asprintf "%a" Thm1_adversary.pp_report r);
              })
            [ "ael"; "greedy" ])
        [ 12; 13 ])
    [ 4; 6 ]

let sweep_scaling () =
  Format.printf
    "== E8: parallel sweep scaling (thm1 grid, %d cells, validate on) ==@.@."
    (List.length (scaling_cells ()));
  Format.printf "recommended_domain_count on this machine: %d@.@."
    (Domain.recommended_domain_count ());
  let render jobs =
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    let t0 = Unix.gettimeofday () in
    Harness.Sweep.run ~jobs ~ppf (scaling_cells ());
    let dt = Unix.gettimeofday () -. t0 in
    (dt, Buffer.contents buf)
  in
  (* Warm-up run: pay allocator/code warmup outside the measurements. *)
  ignore (render 1);
  let base_t, base_out = render 1 in
  let rows =
    (1, base_t, 1.0)
    :: List.map
         (fun jobs ->
           let t, out = render jobs in
           if not (String.equal out base_out) then
             failwith
               (Printf.sprintf
                  "BENCH sweep_parallel: output at --jobs %d differs from \
                   --jobs 1 — determinism contract broken"
                  jobs);
           (jobs, t, base_t /. t))
         [ 2; 4; 8 ]
  in
  Format.printf "%-8s %-12s %s@." "jobs" "seconds" "speedup";
  List.iter
    (fun (jobs, t, s) -> Format.printf "%-8d %-12.3f %.2fx@." jobs t s)
    rows;
  let json =
    Printf.sprintf
      "{\"bench\": \"sweep_parallel\", \"grid\": \"thm1 t=4,6 k=12,13 \
       side=30000 algo=ael,greedy validate=true\", \"cells\": %d, \
       \"recommended_domain_count\": %d, \"identical_output\": true, \
       \"runs\": [%s]}\n"
      (List.length (scaling_cells ()))
      (Domain.recommended_domain_count ())
      (String.concat ", "
         (List.map
            (fun (jobs, t, s) ->
              Printf.sprintf
                "{\"jobs\": %d, \"seconds\": %.3f, \"speedup\": %.2f}" jobs t s)
            rows))
  in
  Out_channel.with_open_text "BENCH_sweep_parallel.json" (fun oc ->
      Out_channel.output_string oc json);
  Format.printf "@.record written to BENCH_sweep_parallel.json@."

let () =
  if Array.exists (String.equal "--sweep-scaling") Sys.argv then
    sweep_scaling ()
  else begin
    Format.printf "== Bechamel micro-benchmarks (one per experiment) ==@.@.";
    run_benchmarks ();
    Format.printf "@.";
    sweep_scaling ();
    Format.printf "@.== Experiment regeneration (see EXPERIMENTS.md) ==@.";
    Experiments.run_all ~quick:false Format.std_formatter;
    Format.printf "@."
  end
