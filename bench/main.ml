(* Benchmark harness: one bechamel micro-benchmark per experiment (the
   inner loops that dominate each reproduction), the domain-scaling
   benchmark of the parallel sweep engine (E8), and the full
   regeneration of every experiment table (EXPERIMENTS.md).

   dune exec bench/main.exe                     -- everything
   dune exec bench/main.exe -- --sweep-scaling  -- only the E8 scaling
                                                   run (writes
                                                   BENCH_sweep_parallel.json)
   dune exec bench/main.exe -- --trace-overhead -- only the E9 overhead
                                                   run (writes
                                                   BENCH_trace_overhead.json)
   dune exec bench/main.exe -- --isolation-overhead
                                                -- only the E11 fork/pipe
                                                   overhead run (writes
                                                   BENCH_isolation_overhead.json)
   dune exec bench/main.exe -- --game-steps     -- only the E13 game-step
                                                   throughput run (writes
                                                   BENCH_game_steps.json)
   dune exec bench/main.exe -- --game-steps-check
                                                -- E13 regression gate: fresh
                                                   thm3 steps/s vs the
                                                   committed record
   dune exec bench/main.exe -- --canon-memo     -- only the E15 memoization
                                                   run (writes
                                                   BENCH_canon_memo.json)
   dune exec bench/main.exe -- --canon-memo-check
                                                -- E15 regression gate: the
                                                   committed record claims
                                                   >= 2x, fresh smoke >= 1.5x *)

open Bechamel
open Toolkit
open Online_local

(* ---------------------- benchmark subjects ---------------------- *)

let bench_bvalue =
  (* E6: the b-value of a 10k-arc directed row path. *)
  let len = 10_000 in
  let colors = Array.init (len + 1) (fun i -> i mod 3) in
  let path = List.init (len + 1) (fun i -> i) in
  Test.make ~name:"e6: b-value of 10k-arc path"
    (Staged.stage (fun () -> ignore (Colorings.Bvalue.b_path colors path)))

let bench_brute =
  (* E6: exhaustive proper-coloring enumeration (Lemma 3.4 checker). *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:3 ~cols:3 in
  let g = Topology.Grid2d.graph grid in
  Test.make ~name:"e6: enumerate 3-colorings of 3x3 grid"
    (Staged.stage (fun () -> ignore (Colorings.Brute.count_colorings g ~colors:3)))

let bench_ball =
  (* substrate: the per-presentation reveal cost. *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:64 ~cols:64 in
  let g = Topology.Grid2d.graph grid in
  let center = Topology.Grid2d.node grid ~row:32 ~col:32 in
  Test.make ~name:"substrate: B(v,8) on 64x64 grid"
    (Staged.stage (fun () -> ignore (Grid_graph.Bfs.ball g [ center ] 8)))

let bench_thm1 =
  (* E1: one full adversary game against greedy (k = 6). *)
  Test.make ~name:"e1: thm1 adversary vs greedy (k=6)"
    (Staged.stage (fun () ->
         ignore
           (Thm1_adversary.run ~n_side:400 ~k:6 ~algorithm:(Portfolio.greedy ()) ())))

let bench_harness_overhead =
  (* The same thm1 game with the algorithm under full guarding (budgets +
     deadline + exception containment).  Comparing against the raw e1
     benchmark above bounds the per-verdict cost of the guarded engine;
     the happy-path overhead should stay within ~10%. *)
  Test.make ~name:"harness: thm1 vs greedy (k=6), guarded"
    (Staged.stage (fun () ->
         let guard = Harness.Guard.create ~limits:Harness.Guard.default_limits () in
         let algorithm = Harness.Guard.algorithm guard (Portfolio.greedy ()) in
         ignore (Thm1_adversary.run ~n_side:400 ~k:6 ~algorithm ())))

let bench_harness_overhead_traced =
  (* The guarded game again, now streaming its trace to /dev/null —
     with the sink-open cost paid per run, this upper-bounds the cost of
     enabled tracing; BENCH_trace_overhead.json isolates the components. *)
  Test.make ~name:"harness: thm1 vs greedy (k=6), guarded+traced"
    (Staged.stage (fun () ->
         Harness.Trace.with_sink ~program:"bench" ~path:"/dev/null" (fun () ->
             let guard = Harness.Guard.create ~limits:Harness.Guard.default_limits () in
             let algorithm = Harness.Guard.algorithm guard (Portfolio.greedy ()) in
             ignore (Thm1_adversary.run ~n_side:400 ~k:6 ~algorithm ()))))

let bench_thm2 =
  Test.make ~name:"e2: thm2 two-row attack (torus 13)"
    (Staged.stage (fun () ->
         ignore
           (Thm2_adversary.run ~wrap:`Toroidal ~side:13
              ~algorithm:(Portfolio.greedy ())
              ())))

let bench_thm3 =
  Test.make ~name:"e3: thm3 gadget attack (9 gadgets)"
    (Staged.stage (fun () ->
         ignore
           (Thm3_adversary.run ~k:3 ~gadgets:9 ~algorithm:(Portfolio.greedy ()) ())))

let bench_kp1 =
  (* E4: one full upper-bound run on a 20x20 grid. *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:20 ~cols:20 in
  let host = Topology.Grid2d.graph grid in
  let order = Models.Fixed_host.orders ~all:host (`Random 5) in
  Test.make ~name:"e4: kp1 3-colors 20x20 grid (T=4)"
    (Staged.stage (fun () ->
         ignore
           (Models.Fixed_host.run
              ~oracle:(Oracles.grid_bipartition grid)
              ~host ~palette:3
              ~algorithm:(Kp1_coloring.make ~k:2 ~locality:(fun ~n:_ -> 4) ())
              ~order ())))

let bench_ael =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:20 ~cols:20 in
  let host = Topology.Grid2d.graph grid in
  let order = Models.Fixed_host.orders ~all:host (`Random 5) in
  Test.make ~name:"e4: ael (oracle-free) 20x20 grid (T=4)"
    (Staged.stage (fun () ->
         ignore
           (Models.Fixed_host.run ~host ~palette:3
              ~algorithm:(Kp1_coloring.ael_bipartite ~locality:(fun ~n:_ -> 4) ())
              ~order ())))

let bench_thm5 =
  let base =
    Topology.Grid2d.graph (Topology.Grid2d.create Topology.Grid2d.Simple ~rows:4 ~cols:4)
  in
  let lay = Topology.Layered.create ~base ~k:3 in
  let host = Topology.Layered.graph lay in
  let order = Models.Fixed_host.orders ~all:host (`Random 3) in
  Test.make ~name:"e5: reduced algorithm colors G_3"
    (Staged.stage (fun () ->
         ignore
           (Models.Fixed_host.run ~oracle:(Oracles.layered lay) ~host ~palette:4
              ~algorithm:
                (Thm5_reduction.reduce
                   ~inner:(Kp1_coloring.make ~k:4 ~locality:(fun ~n:_ -> 6) ()))
              ~order ())))

let bench_gadget_classify =
  let chain = Topology.Gadget.create ~k:4 ~gadgets:2 () in
  let coloring = Colorings.Coloring.of_array (Topology.Gadget.canonical_k_coloring chain) in
  Test.make ~name:"e3: classify gadget matrix (k=4)"
    (Staged.stage (fun () ->
         ignore
           (Colorings.Colorful.classify
              (Colorings.Colorful.matrix_of_gadget chain coloring ~gadget:1))))

let bench_clique_chain =
  (* The structural oracle's clique walk on a triangular grid fragment. *)
  let t = Topology.Tri_grid.create ~side:12 in
  let g = Topology.Tri_grid.graph t in
  let view =
    {
      Models.View.n_total = Grid_graph.Graph.n g;
      palette = 4;
      node_count = (fun () -> Grid_graph.Graph.n g);
      neighbors = (fun v -> Array.to_list (Grid_graph.Graph.neighbors g v));
      mem_edge = (fun a b -> Grid_graph.Graph.mem_edge g a b);
      id = (fun v -> v + 1);
      output = (fun _ -> None);
      hint = (fun _ -> None);
      target = 0;
      new_nodes = [];
      step = 1;
    }
  in
  let frag = [ 0; 1; 2; 3; 4 ] in
  Test.make ~name:"e4: structural triangle-chain oracle query"
    (Staged.stage (fun () ->
         ignore (Oracles.triangle_chain.Models.Oracle.query view frag)))

let bench_dynamic_repair =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:12 ~cols:12 in
  let order =
    Models.Fixed_host.orders ~all:(Topology.Grid2d.graph grid) (`Random 2)
  in
  let updates = Models.Dynamic_local.incremental_grid_updates grid ~order in
  Test.make ~name:"models: dynamic greedy repair, 12x12 incremental build"
    (Staged.stage (fun () ->
         ignore
           (Models.Dynamic_local.run ~n_hint:144 ~palette:5
              ~algorithm:Models.Dynamic_local.greedy_repair ~updates ())))

let bench_cole_vishkin =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:40 ~cols:40 in
  Test.make ~name:"models: cole-vishkin 5-coloring, 40x40"
    (Staged.stage (fun () -> ignore (Models.Cole_vishkin.five_color grid)))

let tests =
  Test.make_grouped ~name:"online-local-grids"
    [
      bench_bvalue;
      bench_brute;
      bench_ball;
      bench_gadget_classify;
      bench_thm1;
      bench_harness_overhead;
      bench_harness_overhead_traced;
      bench_thm2;
      bench_thm3;
      bench_kp1;
      bench_ael;
      bench_thm5;
      bench_clique_chain;
      bench_dynamic_repair;
      bench_cole_vishkin;
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Bechamel.Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Format.printf "%-55s %15s@." "benchmark" "ns/run";
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Format.printf "%-55s %15.0f@." name est
      | Some _ | None -> Format.printf "%-55s %15s@." name "-")
    rows

(* -------------------- shared BENCH_*.json schema ------------------ *)

(* Both scaling records share one envelope:
     {"bench": NAME, "meta": {cores, jobs_axis, ocaml_version, commit},
      "results": ...}
   so downstream tooling can parse every BENCH_*.json the same way. *)

let git_commit () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ | (exception _) -> "unknown")

let bench_record ~bench ~jobs_axis ~results =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String bench);
      ( "meta",
        Obs.Json.Obj
          [
            ("cores", Obs.Json.Int (Domain.recommended_domain_count ()));
            ("jobs_axis", Obs.Json.List (List.map (fun j -> Obs.Json.Int j) jobs_axis));
            ("ocaml_version", Obs.Json.String Sys.ocaml_version);
            ("commit", Obs.Json.String (git_commit ()));
          ] );
      ("results", results);
    ]

let write_bench_record path record =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string record);
      Out_channel.output_char oc '\n');
  Format.printf "@.record written to %s@." path

(* ------------------- E8: sweep domain scaling -------------------- *)

(* A fixed Theorem-1 cell grid, heavy enough (~0.1 s/cell, transcript
   validation on) that domain-spawn overhead is negligible against cell
   cost.  The same grid runs at 1/2/4/8 domains; output equality across
   jobs counts is asserted, wall-clock per jobs count is reported, and
   the record is written to BENCH_sweep_parallel.json. *)

let scaling_cells () =
  List.concat_map
    (fun t ->
      List.concat_map
        (fun k ->
          List.map
            (fun algo_name ->
              {
                Harness.Sweep.key =
                  Printf.sprintf "t=%d k=%d algo=%s" t k algo_name;
                run =
                  (fun () ->
                    let algorithm =
                      match algo_name with
                      | "ael" -> Portfolio.ael ~t ()
                      | _ -> Portfolio.greedy ()
                    in
                    let r =
                      Thm1_adversary.run ~validate:true ~n_side:30_000 ~k
                        ~algorithm ()
                    in
                    Format.asprintf "%a" Thm1_adversary.pp_report r);
              })
            [ "ael"; "greedy" ])
        [ 12; 13 ])
    [ 4; 6 ]

let sweep_scaling () =
  Format.printf
    "== E8: parallel sweep scaling (thm1 grid, %d cells, validate on) ==@.@."
    (List.length (scaling_cells ()));
  Format.printf "recommended_domain_count on this machine: %d@.@."
    (Domain.recommended_domain_count ());
  let render jobs =
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    let t0 = Unix.gettimeofday () in
    Harness.Sweep.run ~jobs ~ppf (scaling_cells ());
    let dt = Unix.gettimeofday () -. t0 in
    (dt, Buffer.contents buf)
  in
  (* Warm-up run: pay allocator/code warmup outside the measurements. *)
  ignore (render 1);
  let base_t, base_out = render 1 in
  let rows =
    (1, base_t, 1.0)
    :: List.map
         (fun jobs ->
           let t, out = render jobs in
           if not (String.equal out base_out) then
             failwith
               (Printf.sprintf
                  "BENCH sweep_parallel: output at --jobs %d differs from \
                   --jobs 1 — determinism contract broken"
                  jobs);
           (jobs, t, base_t /. t))
         [ 2; 4; 8 ]
  in
  Format.printf "%-8s %-12s %s@." "jobs" "seconds" "speedup";
  List.iter
    (fun (jobs, t, s) -> Format.printf "%-8d %-12.3f %.2fx@." jobs t s)
    rows;
  let results =
    Obs.Json.Obj
      [
        ( "grid",
          Obs.Json.String
            "thm1 t=4,6 k=12,13 side=30000 algo=ael,greedy validate=true" );
        ("cells", Obs.Json.Int (List.length (scaling_cells ())));
        ("identical_output", Obs.Json.Bool true);
        ( "runs",
          Obs.Json.List
            (List.map
               (fun (jobs, t, s) ->
                 Obs.Json.Obj
                   [
                     ("jobs", Obs.Json.Int jobs);
                     ("seconds", Obs.Json.Float t);
                     ("speedup", Obs.Json.Float s);
                   ])
               rows) );
      ]
  in
  write_bench_record "BENCH_sweep_parallel.json"
    (bench_record ~bench:"sweep_parallel"
       ~jobs_axis:(List.map (fun (jobs, _, _) -> jobs) rows)
       ~results)

(* ----------------- trace/metrics overhead (E9) ------------------- *)

(* The overhead contract of the observability layer, measured on the
   same guarded thm1 game as the bechamel harness-overhead subject:

     raw                        unguarded, hooks disabled
     guarded_untraced           guarded, hooks disabled (production default)
     guarded_untraced_control   identical second measurement of the above
     guarded_traced             guarded, sink streaming to /dev/null
     guarded_metrics            guarded, metrics registry enabled
     guarded_flight             guarded, flight-recorder ring armed
     guarded_stats              guarded, stats registry enabled

   A disabled hook is one atomic load per site, inseparable from
   measurement noise — so the tracing-disabled regression is measured as
   untraced vs its interleaved control, and the contract is that it
   stays under 2%.  Passes run round-robin and each subject keeps its
   minimum, so clock drift and allocator state cancel instead of
   biasing one side. *)

let raw_thm1 () =
  ignore (Thm1_adversary.run ~n_side:400 ~k:6 ~algorithm:(Portfolio.greedy ()) ())

let guarded_thm1 () =
  let guard = Harness.Guard.create ~limits:Harness.Guard.default_limits () in
  let algorithm = Harness.Guard.algorithm guard (Portfolio.greedy ()) in
  ignore (Thm1_adversary.run ~n_side:400 ~k:6 ~algorithm ())

(* One timed measurement: [inner] runs of [f], seconds per run. *)
let measure_inner ~inner f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to inner do
    f ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int inner

(* Round-robin best-of-passes runner shared by the overhead benches:
   each pass runs every subject once and keeps its per-subject minimum,
   so clock drift and allocator state cancel instead of biasing one
   side. *)
let round_robin_best ~passes subjects =
  List.iter (fun (_, pass) -> ignore (pass ())) subjects (* warm-up *);
  let best = Hashtbl.create 8 in
  for _ = 1 to passes do
    List.iter
      (fun (name, pass) ->
        let t = pass () in
        let prev = Option.value ~default:infinity (Hashtbl.find_opt best name) in
        Hashtbl.replace best name (Float.min prev t))
      subjects
  done;
  fun name -> Hashtbl.find best name

(* The flight-recorder and stats subjects shared by E9 and E14: same
   guarded thm1 game, observability in its campaign configuration. *)
let flight_subject measure =
  Harness.Flight.with_sink ~program:"bench" ~path:"/dev/null" (fun () ->
      measure guarded_thm1)

let stats_subject measure =
  Harness.Stats.enable ();
  Fun.protect
    ~finally:(fun () ->
      Harness.Stats.disable ();
      Harness.Stats.reset ())
    (fun () -> measure guarded_thm1)

let trace_overhead () =
  let inner = 60 and passes = 8 in
  Format.printf
    "== E9: trace/metrics overhead (thm1 vs greedy, k=6, side=400; best of \
     %d passes x %d runs) ==@.@."
    passes inner;
  let measure f = measure_inner ~inner f in
  let subjects =
    [
      ("raw", fun () -> measure raw_thm1);
      ("guarded_untraced", fun () -> measure guarded_thm1);
      ("guarded_untraced_control", fun () -> measure guarded_thm1);
      ( "guarded_traced",
        fun () ->
          Harness.Trace.with_sink ~program:"bench" ~path:"/dev/null" (fun () ->
              measure guarded_thm1) );
      ( "guarded_metrics",
        fun () ->
          Harness.Metrics.enable ();
          Fun.protect
            ~finally:(fun () ->
              Harness.Metrics.disable ();
              Harness.Metrics.reset ())
            (fun () -> measure guarded_thm1) );
      ("guarded_flight", fun () -> flight_subject measure);
      ("guarded_stats", fun () -> stats_subject measure);
    ]
  in
  let t = round_robin_best ~passes subjects in
  let pct a b = 100. *. (t a -. t b) /. t b in
  Format.printf "%-28s %12s@." "subject" "s/run";
  List.iter
    (fun (name, _) -> Format.printf "%-28s %12.6f@." name (t name))
    subjects;
  let disabled_pct = Float.max 0. (pct "guarded_untraced_control" "guarded_untraced") in
  let traced_pct = pct "guarded_traced" "guarded_untraced" in
  let metrics_pct = pct "guarded_metrics" "guarded_untraced" in
  let flight_pct = pct "guarded_flight" "guarded_untraced" in
  let stats_pct = pct "guarded_stats" "guarded_untraced" in
  Format.printf
    "@.tracing disabled: %+.2f%%  traced: %+.2f%%  metrics: %+.2f%%  \
     flight: %+.2f%%  stats: %+.2f%%@."
    disabled_pct traced_pct metrics_pct flight_pct stats_pct;
  let results =
    Obs.Json.Obj
      [
        ("subject", Obs.Json.String "thm1 adversary vs greedy (k=6, side=400)");
        ("inner_runs", Obs.Json.Int inner);
        ("passes", Obs.Json.Int passes);
        ( "seconds_per_run",
          Obs.Json.Obj
            (List.map (fun (name, _) -> (name, Obs.Json.Float (t name))) subjects)
        );
        ( "overhead_pct",
          Obs.Json.Obj
            [
              ("guard_vs_raw", Obs.Json.Float (pct "guarded_untraced" "raw"));
              ("tracing_disabled", Obs.Json.Float disabled_pct);
              ("tracing_enabled", Obs.Json.Float traced_pct);
              ("metrics_enabled", Obs.Json.Float metrics_pct);
              ("flight_enabled", Obs.Json.Float flight_pct);
              ("stats_enabled", Obs.Json.Float stats_pct);
            ] );
      ]
  in
  write_bench_record "BENCH_trace_overhead.json"
    (bench_record ~bench:"trace_overhead" ~jobs_axis:[ 1 ] ~results)

(* ------------------ fuzz-harness throughput (E10) ----------------- *)

(* Cases/second of [Proptest.Fuzz_run.run_target] on the parallel-safe
   differential targets, at 1 domain and at the pool default.  The same
   fixed (seed, cases) runs at both jobs counts; every target must pass
   (a counterexample would make the timing meaningless), and the
   per-target status lines are asserted identical across jobs — the
   same byte-identity contract bin/fuzz.exe ships under. *)

let fuzz_throughput () =
  let targets = [ "proper-vs-brute"; "bvalue-cancel"; "thm3-game" ] in
  let cases = 150 in
  let config =
    { Proptest.Runner.default_config with Proptest.Runner.seed = 0xBE7; cases }
  in
  (* On a 1-core box default_jobs is 1; floor the second point at 2 so
     the pool path (and its determinism) is always on the axis. *)
  let jobs_axis = [ 1; max 2 (Harness.Pool.default_jobs ()) ] in
  Format.printf "== E10: fuzz harness throughput (%d cases/target, seed %d) ==@.@."
    cases config.Proptest.Runner.seed;
  let describe report =
    match report.Proptest.Fuzz_run.status with
    | Proptest.Fuzz_run.Passed { cases } -> Printf.sprintf "PASS %d" cases
    | Proptest.Fuzz_run.Failed cex ->
        failwith
          (Printf.sprintf "BENCH fuzz_throughput: unexpected counterexample (%s)"
             cex.Proptest.Runner.replay)
    | Proptest.Fuzz_run.Skipped reason ->
        failwith ("BENCH fuzz_throughput: target skipped: " ^ reason)
  in
  let run jobs =
    List.map
      (fun name ->
        let target =
          match Proptest.Fuzz_targets.find name with
          | Some t -> t
          | None -> failwith ("BENCH fuzz_throughput: unknown target " ^ name)
        in
        let t0 = Unix.gettimeofday () in
        let report = Proptest.Fuzz_run.run_target ~jobs ~config target in
        let dt = Unix.gettimeofday () -. t0 in
        (name, describe report, dt))
      targets
  in
  (* Warm-up pass outside the measurements. *)
  ignore (run 1);
  let rows =
    List.map
      (fun jobs ->
        let measured = run jobs in
        let statuses = List.map (fun (n, s, _) -> (n, s)) measured in
        (jobs, statuses, measured))
      jobs_axis
  in
  (match rows with
  | (_, base, _) :: rest ->
      List.iter
        (fun (jobs, statuses, _) ->
          if statuses <> base then
            failwith
              (Printf.sprintf
                 "BENCH fuzz_throughput: report at --jobs %d differs from \
                  --jobs 1 — determinism contract broken"
                 jobs))
        rest
  | [] -> ());
  Format.printf "%-8s %-18s %-12s %s@." "jobs" "target" "seconds" "cases/s";
  List.iter
    (fun (jobs, _, measured) ->
      List.iter
        (fun (name, _, dt) ->
          Format.printf "%-8d %-18s %-12.3f %.0f@." jobs name dt
            (float_of_int cases /. dt))
        measured)
    rows;
  let results =
    Obs.Json.Obj
      [
        ("targets", Obs.Json.List (List.map (fun n -> Obs.Json.String n) targets));
        ("cases_per_target", Obs.Json.Int cases);
        ("seed", Obs.Json.Int config.Proptest.Runner.seed);
        ("identical_reports", Obs.Json.Bool true);
        ( "runs",
          Obs.Json.List
            (List.map
               (fun (jobs, _, measured) ->
                 Obs.Json.Obj
                   [
                     ("jobs", Obs.Json.Int jobs);
                     ( "per_target",
                       Obs.Json.List
                         (List.map
                            (fun (name, _, dt) ->
                              Obs.Json.Obj
                                [
                                  ("target", Obs.Json.String name);
                                  ("seconds", Obs.Json.Float dt);
                                  ( "cases_per_sec",
                                    Obs.Json.Float (float_of_int cases /. dt) );
                                ])
                            measured) );
                   ])
               rows) );
      ]
  in
  write_bench_record "BENCH_fuzz_throughput.json"
    (bench_record ~bench:"fuzz_throughput" ~jobs_axis ~results)

(* --------------- process-isolation overhead (E11) ---------------- *)

(* What one fork/pipe/waitpid round trip costs per sweep cell: the same
   fixed thm1 cell grid runs under `In_domain and under `Process (at
   jobs 1 and at the pool default), output byte-identity across all
   three is asserted (the Sweep isolation contract), and the per-cell
   premium of `Process over `In_domain at jobs 1 is reported.  Cells
   are deliberately light (~ms) so the premium is visible rather than
   drowned in cell cost — this is the worst case for --isolate proc. *)

let isolation_overhead () =
  let cells () =
    List.concat_map
      (fun k ->
        List.map
          (fun seed ->
            {
              Harness.Sweep.key = Printf.sprintf "k=%d seed=%d" k seed;
              run =
                (fun () ->
                  let r =
                    Thm1_adversary.run ~n_side:(200 + seed) ~k
                      ~algorithm:(Portfolio.greedy ()) ()
                  in
                  Format.asprintf "%a" Thm1_adversary.pp_report r);
            })
          [ 0; 1; 2; 3; 4; 5 ])
      [ 5; 6; 7; 8 ]
  in
  let n_cells = List.length (cells ()) in
  let jobs_axis = [ 1; max 2 (Harness.Pool.default_jobs ()) ] in
  Format.printf
    "== E11: process-isolation overhead (thm1 grid, %d light cells) ==@.@."
    n_cells;
  let render ~isolation jobs =
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    let t0 = Unix.gettimeofday () in
    Harness.Sweep.run ~jobs ~isolation ~ppf (cells ());
    let dt = Unix.gettimeofday () -. t0 in
    (dt, Buffer.contents buf)
  in
  let runs =
    [
      ("in_domain", `In_domain, 1);
      ("process", `Process, 1);
      ("process", `Process, List.nth jobs_axis 1);
    ]
  in
  (* Warm-up both backends outside the measurements. *)
  ignore (render ~isolation:`In_domain 1);
  ignore (render ~isolation:`Process 1);
  let measured =
    List.map
      (fun (name, isolation, jobs) ->
        let dt, out = render ~isolation jobs in
        (name, jobs, dt, out))
      runs
  in
  let base_out =
    match measured with (_, _, _, out) :: _ -> out | [] -> assert false
  in
  List.iter
    (fun (name, jobs, _, out) ->
      if not (String.equal out base_out) then
        failwith
          (Printf.sprintf
             "BENCH isolation_overhead: output of %s --jobs %d differs from \
              in_domain — isolation contract broken"
             name jobs))
    measured;
  let seconds name jobs =
    let _, _, dt, _ =
      List.find (fun (n, j, _, _) -> n = name && j = jobs) measured
    in
    dt
  in
  let dom1 = seconds "in_domain" 1 and proc1 = seconds "process" 1 in
  let per_cell_us = (proc1 -. dom1) /. float_of_int n_cells *. 1e6 in
  Format.printf "%-12s %-8s %-12s@." "isolation" "jobs" "seconds";
  List.iter
    (fun (name, jobs, dt, _) -> Format.printf "%-12s %-8d %-12.3f@." name jobs dt)
    measured;
  Format.printf "@.per-cell fork/pipe premium at jobs 1: %+.0f us@." per_cell_us;
  let results =
    Obs.Json.Obj
      [
        ( "grid",
          Obs.Json.String "thm1 k=5..8 side=200..205 algo=greedy, light cells" );
        ("cells", Obs.Json.Int n_cells);
        ("identical_output", Obs.Json.Bool true);
        ("per_cell_premium_us", Obs.Json.Float per_cell_us);
        ( "runs",
          Obs.Json.List
            (List.map
               (fun (name, jobs, dt, _) ->
                 Obs.Json.Obj
                   [
                     ("isolation", Obs.Json.String name);
                     ("jobs", Obs.Json.Int jobs);
                     ("seconds", Obs.Json.Float dt);
                   ])
               measured) );
      ]
  in
  write_bench_record "BENCH_isolation_overhead.json"
    (bench_record ~bench:"isolation_overhead" ~jobs_axis ~results)

(* ------------------ job-server throughput (E12) ------------------- *)

(* What the serve.exe front door costs: a fleet of trivial jobs is
   pushed through a forked server (proc isolation, the production
   default) three ways — chaos off, chaos on (fixed seed), and against
   a deliberately tiny admission queue — and jobs/s, the retry tallies,
   and the queue-rejection rate are reported.  Result byte-identity
   against a local map of the handler is asserted in every scenario:
   the resilience machinery must never buy throughput with wrong or
   lost answers. *)

let serve_throughput () =
  let module Server = Harness.Server in
  let module Client = Harness.Client in
  let fast_backoff = { Harness.Backoff.base = 0.002; max = 0.02; seed = 0x5EED } in
  let handler ~kind ~payload =
    match kind with
    | "rev" ->
        String.init (String.length payload) (fun i ->
            payload.[String.length payload - 1 - i])
    | other -> failwith ("unknown kind: " ^ other)
  in
  let n_jobs = 200 in
  let jobs = max 2 (Harness.Pool.default_jobs ()) in
  let specs =
    List.init n_jobs (fun i -> ("rev", Printf.sprintf "payload-%06d" i))
  in
  let scenario ~label ~chaos ~queue_limit ~window =
    let socket = Filename.temp_file "bench_serve" ".sock" in
    (try Sys.remove socket with Sys_error _ -> ());
    let config =
      {
        Server.default_config with
        Server.jobs;
        isolation = `Process;
        queue_limit;
        backoff = fast_backoff;
        kill_grace = 0.1;
        chaos;
      }
    in
    match Unix.fork () with
    | 0 ->
        (try Server.run ~config ~socket ~handler () with _ -> ());
        Unix._exit 0
    | pid ->
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            try Sys.remove socket with Sys_error _ -> ())
          (fun () ->
            let t0 = Unix.gettimeofday () in
            let c =
              Client.run_campaign ~backoff:fast_backoff ~window ~socket specs
            in
            let dt = Unix.gettimeofday () -. t0 in
            List.iteri
              (fun i ((kind, payload), got) ->
                if not (String.equal (handler ~kind ~payload) got) then
                  failwith
                    (Printf.sprintf
                       "BENCH serve_throughput: %s result %d differs from the \
                        serverless baseline — determinism contract broken"
                       label i))
              (List.combine specs c.Client.results);
            (label, dt, c))
  in
  Format.printf
    "== E12: job-server throughput (%d trivial jobs, %d workers, proc \
     isolation) ==@.@."
    n_jobs jobs;
  let runs =
    [
      scenario ~label:"chaos_off" ~chaos:None ~queue_limit:256 ~window:32;
      scenario ~label:"chaos_on"
        ~chaos:(Some (Server.default_chaos ~seed:42))
        ~queue_limit:256 ~window:32;
      scenario ~label:"backpressure" ~chaos:None ~queue_limit:2 ~window:64;
    ]
  in
  Format.printf "%-14s %-10s %-10s %-11s %-11s %s@." "scenario" "jobs/s"
    "resubmits" "rejections" "reconnects" "rejection rate";
  let rows =
    List.map
      (fun (label, dt, c) ->
        let rate = float_of_int n_jobs /. dt in
        let submits = n_jobs + c.Client.resubmits in
        let rejection_rate =
          float_of_int c.Client.rejections /. float_of_int submits
        in
        Format.printf "%-14s %-10.0f %-10d %-11d %-11d %.3f@." label rate
          c.Client.resubmits c.Client.rejections c.Client.reconnects
          rejection_rate;
        (label, dt, rate, c, rejection_rate))
      runs
  in
  let results =
    Obs.Json.Obj
      [
        ("n_jobs", Obs.Json.Int n_jobs);
        ("isolation", Obs.Json.String "process");
        ("identical_output", Obs.Json.Bool true);
        ( "runs",
          Obs.Json.List
            (List.map
               (fun (label, dt, rate, c, rejection_rate) ->
                 Obs.Json.Obj
                   [
                     ("scenario", Obs.Json.String label);
                     ("seconds", Obs.Json.Float dt);
                     ("jobs_per_s", Obs.Json.Float rate);
                     ("resubmits", Obs.Json.Int c.Client.resubmits);
                     ("rejections", Obs.Json.Int c.Client.rejections);
                     ("reconnects", Obs.Json.Int c.Client.reconnects);
                     ("rejection_rate", Obs.Json.Float rejection_rate);
                   ])
               rows) );
      ]
  in
  write_bench_record "BENCH_serve_throughput.json"
    (bench_record ~bench:"serve_throughput" ~jobs_axis:[ jobs ] ~results)

(* ------------- E14: stats/flight overhead and its gate ------------ *)

(* The campaign-observability overhead contract on the E9 subject.  The
   NDJSON sink pays string formatting and a write per event (~121% on
   this game); the flight recorder encodes into an in-memory ring and
   touches disk only on anomaly, so it must stay within 10% of the
   untraced guarded game; the stats registry is two integer
   accumulations per game and must stay within 5%.

   --stats-overhead        measure and write BENCH_stats_overhead.json
   --stats-overhead-check  assert the committed record honors the 10%
                           flight budget, then re-measure flight vs
                           baseline with a generous 35% bound (the CI
                           gate; shared runners are noisy) *)

let stats_overhead () =
  let inner = 60 and passes = 8 in
  Format.printf
    "== E14: stats/flight overhead (thm1 vs greedy, k=6, side=400; best of \
     %d passes x %d runs) ==@.@."
    passes inner;
  let measure f = measure_inner ~inner f in
  let subjects =
    [
      ("baseline", fun () -> measure guarded_thm1);
      ( "ndjson",
        fun () ->
          Harness.Trace.with_sink ~program:"bench" ~path:"/dev/null" (fun () ->
              measure guarded_thm1) );
      ("flight", fun () -> flight_subject measure);
      ("stats", fun () -> stats_subject measure);
    ]
  in
  let t = round_robin_best ~passes subjects in
  let pct name = 100. *. (t name -. t "baseline") /. t "baseline" in
  Format.printf "%-28s %12s %12s@." "subject" "s/run" "overhead";
  List.iter
    (fun (name, _) ->
      Format.printf "%-28s %12.6f %+11.2f%%@." name (t name) (pct name))
    subjects;
  let flight_pct = pct "flight" and stats_pct = pct "stats" in
  Format.printf "@.flight budget: %+.2f%% of <= 10%%  (ndjson for scale: %+.2f%%)@."
    flight_pct (pct "ndjson");
  let results =
    Obs.Json.Obj
      [
        ("subject", Obs.Json.String "thm1 adversary vs greedy (k=6, side=400)");
        ("inner_runs", Obs.Json.Int inner);
        ("passes", Obs.Json.Int passes);
        ( "seconds_per_run",
          Obs.Json.Obj
            (List.map (fun (name, _) -> (name, Obs.Json.Float (t name))) subjects)
        );
        ( "overhead_pct",
          Obs.Json.Obj
            [
              ("ndjson", Obs.Json.Float (pct "ndjson"));
              ("flight", Obs.Json.Float flight_pct);
              ("stats", Obs.Json.Float stats_pct);
            ] );
        ("flight_budget_pct", Obs.Json.Float 10.);
      ]
  in
  write_bench_record "BENCH_stats_overhead.json"
    (bench_record ~bench:"stats_overhead" ~jobs_axis:[ 1 ] ~results);
  if flight_pct > 10. then
    failwith
      (Printf.sprintf
         "BENCH stats_overhead: flight recorder cost %+.2f%% exceeds the 10%% \
          budget"
         flight_pct)

let stats_overhead_check () =
  let path = "BENCH_stats_overhead.json" in
  let committed =
    match
      Obs.Json.of_string (In_channel.with_open_text path In_channel.input_all)
    with
    | json -> json
    | exception Sys_error msg ->
        failwith ("BENCH stats_overhead check: cannot read committed record: " ^ msg)
  in
  let committed_pct name =
    match
      Option.bind
        (Option.bind (Obs.Json.member "results" committed)
           (Obs.Json.member "overhead_pct"))
        (Obs.Json.member name)
      |> Fun.flip Option.bind Obs.Json.to_float_opt
    with
    | Some pct -> pct
    | None ->
        failwith ("BENCH stats_overhead check: no committed overhead_pct." ^ name)
  in
  Format.printf "== E14 regression gate (vs committed %s) ==@.@." path;
  let flight_committed = committed_pct "flight" in
  Format.printf "committed: flight %+.2f%%  stats %+.2f%%  ndjson %+.2f%%@."
    flight_committed (committed_pct "stats") (committed_pct "ndjson");
  if flight_committed > 10. then
    failwith
      (Printf.sprintf
         "BENCH stats_overhead check: committed flight overhead %+.2f%% \
          exceeds the 10%% budget — regenerate with --stats-overhead on a \
          quiet machine"
         flight_committed);
  (* Fresh spot-check with a generous bound: CI runners are shared and
     noisy, so this is a smoke alarm, not the primary claim (which the
     committed record carries). *)
  let inner = 20 and passes = 4 in
  let measure f = measure_inner ~inner f in
  let subjects =
    [
      ("baseline", fun () -> measure guarded_thm1);
      ("flight", fun () -> flight_subject measure);
    ]
  in
  let t = round_robin_best ~passes subjects in
  let fresh = 100. *. (t "flight" -. t "baseline") /. t "baseline" in
  Format.printf "fresh flight overhead: %+.2f%% (bound 35%%)@." fresh;
  if fresh > 35. then
    failwith
      (Printf.sprintf
         "BENCH stats_overhead check: fresh flight overhead %+.2f%% exceeds \
          the 35%% smoke bound"
         fresh);
  Format.printf "@.within budget@."

(* ---------------- game-step throughput (E13) ---------------------- *)

(* Steps/s and reveals/s of the adversary executors on the game hot
   path ([~bulk:true]), at two instance sizes per theorem.  "Steps" are
   presentation steps (the unit the paper's adversaries spend), and
   "reveals" are host nodes entering the revealed region — the two
   counters every executor already maintains, so the benchmark measures
   the production code path, not an instrumented twin.

   [meta.before] pins the measurements of the same configurations taken
   on this container immediately before the incremental executor core
   landed (batch ball-and-filter reveals, (int*int)-keyed hashtables).
   The committed record asserts the headline claim of the rewrite:
   thm3's per-reveal O(region) filtering is gone, so its step rate must
   beat the old executor by >= 10x.

   --game-steps        measure and write BENCH_game_steps.json
   --game-steps-check  measure the thm3 rows only and compare against
                       the committed BENCH_game_steps.json: exit 1 on a
                       > 20% steps/s regression (the CI gate) *)

let game_steps_before =
  (* steps/s of the pre-incremental executor, same configs, same box *)
  [
    ("thm3 k=3 gadgets=32", 43_983.);
    ("thm3 k=3 gadgets=128", 14_370.);
    ("thm2 torus side=25", 39_633.);
    ("thm2 torus side=51", 10_307.);
    ("thm1 k=6 side=400", 285_691.);
    ("thm1 k=9 side=2000", 254_917.);
  ]

let game_steps_configs () =
  let greedy () = Portfolio.greedy () in
  let thm3 gadgets () =
    let r = Thm3_adversary.run ~bulk:true ~k:3 ~gadgets ~algorithm:(greedy ()) () in
    (r.Thm3_adversary.presented, r.Thm3_adversary.revealed)
  in
  let thm2 side () =
    let r =
      Thm2_adversary.run ~bulk:true ~wrap:`Toroidal ~side ~algorithm:(greedy ()) ()
    in
    (r.Thm2_adversary.presented, r.Thm2_adversary.revealed)
  in
  let thm1 ~n_side ~k () =
    let r = Thm1_adversary.run ~bulk:true ~n_side ~k ~algorithm:(greedy ()) () in
    (r.Thm1_adversary.presented, r.Thm1_adversary.revealed)
  in
  [
    ("thm3 k=3 gadgets=32", thm3 32);
    ("thm3 k=3 gadgets=128", thm3 128);
    ("thm2 torus side=25", thm2 25);
    ("thm2 torus side=51", thm2 51);
    ("thm1 k=6 side=400", thm1 ~n_side:400 ~k:6);
    ("thm1 k=9 side=2000", thm1 ~n_side:2000 ~k:9);
  ]

(* Whole-game repetitions under a fixed time budget: every config plays
   complete games (partial games would skew the step mix), the budget
   amortizes per-game setup, and a warm-up game runs outside the
   clock. *)
let game_steps_measure ?(budget = 0.5) f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  let steps = ref 0 and reveals = ref 0 and games = ref 0 in
  while Unix.gettimeofday () -. t0 < budget do
    let p, r = f () in
    steps := !steps + p;
    reveals := !reveals + r;
    incr games
  done;
  let dt = Unix.gettimeofday () -. t0 in
  ( float_of_int !steps /. dt,
    float_of_int !reveals /. dt,
    !games )

let game_steps () =
  Format.printf
    "== E13: game-step throughput (bulk executors, whole games) ==@.@.";
  Format.printf "%-22s %12s %12s %8s %10s@." "config" "steps/s" "reveals/s"
    "games" "vs before";
  let rows =
    List.map
      (fun (name, f) ->
        let steps_s, reveals_s, games = game_steps_measure f in
        let before = List.assoc name game_steps_before in
        let ratio = steps_s /. before in
        Format.printf "%-22s %12.0f %12.0f %8d %9.1fx@." name steps_s
          reveals_s games ratio;
        (name, steps_s, reveals_s, games, before, ratio))
      (game_steps_configs ())
  in
  (* The old executor paid O(revealed region) per reveal, so its deficit
     grows with instance size: the large thm3 chain is where the
     complexity-class claim is falsifiable (the small chain shows ~4x —
     there is simply not enough region for O(region) to hurt). *)
  let thm3_ratio =
    let _, _, _, _, _, r =
      List.find (fun (name, _, _, _, _, _) -> name = "thm3 k=3 gadgets=128") rows
    in
    r
  in
  if thm3_ratio < 10. then
    failwith
      (Printf.sprintf
         "BENCH game_steps: thm3 (gadgets=128) steps/s is only %.1fx the \
          pre-incremental executor (>= 10x required)"
         thm3_ratio);
  let results =
    Obs.Json.Obj
      [
        ("unit", Obs.Json.String "whole games, presented steps and revealed nodes per second");
        ("bulk", Obs.Json.Bool true);
        ( "runs",
          Obs.Json.List
            (List.map
               (fun (name, steps_s, reveals_s, games, before, ratio) ->
                 Obs.Json.Obj
                   [
                     ("config", Obs.Json.String name);
                     ("steps_per_s", Obs.Json.Float steps_s);
                     ("reveals_per_s", Obs.Json.Float reveals_s);
                     ("games", Obs.Json.Int games);
                     ("before_steps_per_s", Obs.Json.Float before);
                     ("speedup", Obs.Json.Float ratio);
                   ])
               rows) );
      ]
  in
  let record =
    match bench_record ~bench:"game_steps" ~jobs_axis:[ 1 ] ~results with
    | Obs.Json.Obj fields ->
        Obs.Json.Obj
          (List.map
             (fun (k, v) ->
               match (k, v) with
               | "meta", Obs.Json.Obj meta ->
                   ( "meta",
                     Obs.Json.Obj
                       (meta
                       @ [
                           ( "before",
                             Obs.Json.Obj
                               (List.map
                                  (fun (name, s) ->
                                    (name, Obs.Json.Float s))
                                  game_steps_before) );
                         ]) )
               | _ -> (k, v))
             fields)
    | other -> other
  in
  write_bench_record "BENCH_game_steps.json" record

(* The CI regression gate: measure the two thm3 configs fresh and fail
   on a > 20% steps/s drop against the committed record.  Only thm3 is
   re-measured — it is the config whose rate the incremental core
   changed by an order of magnitude, so it is also the one a regression
   in the frontier/packed layers shows up in first. *)
let game_steps_check () =
  let path = "BENCH_game_steps.json" in
  let committed =
    match
      Obs.Json.of_string (In_channel.with_open_text path In_channel.input_all)
    with
    | json -> json
    | exception Sys_error msg ->
        failwith ("BENCH game_steps check: cannot read committed record: " ^ msg)
  in
  let committed_rate config =
    let runs =
      match
        Option.bind (Obs.Json.member "results" committed)
          (Obs.Json.member "runs")
      with
      | Some (Obs.Json.List runs) -> runs
      | _ -> failwith "BENCH game_steps check: no results.runs in record"
    in
    match
      List.find_map
        (fun run ->
          match Obs.Json.member "config" run with
          | Some (Obs.Json.String name) when String.equal name config ->
              Option.bind (Obs.Json.member "steps_per_s" run)
                Obs.Json.to_float_opt
          | _ -> None)
        runs
    with
    | Some rate -> rate
    | None ->
        failwith ("BENCH game_steps check: no committed row for " ^ config)
  in
  Format.printf "== E13 regression gate (thm3 vs committed %s) ==@.@." path;
  let failures =
    List.filter_map
      (fun (name, f) ->
        if not (String.length name >= 4 && String.sub name 0 4 = "thm3") then
          None
        else begin
          let fresh, _, _ = game_steps_measure f in
          let committed = committed_rate name in
          let ratio = fresh /. committed in
          Format.printf "%-22s fresh=%.0f committed=%.0f (%.2fx)@." name fresh
            committed ratio;
          if ratio < 0.8 then Some name else None
        end)
      (game_steps_configs ())
  in
  match failures with
  | [] -> Format.printf "@.within 20%% of the committed record@."
  | names ->
      failwith
        (Printf.sprintf
           "BENCH game_steps check: steps/s regressed > 20%% vs committed \
            record on: %s"
           (String.concat ", " names))

(* -------------- cross-cell memoization speedup (E15) --------------- *)

(* The --memo speedup claim: on a dense t-axis thm1 sweep of
   locality-independent algorithms, the game-level report cache
   collapses the campaign to one live adversary run per (algorithm, k,
   side) — every other cell replays the recorded report and re-formats
   it with its own t.  Wall-clock of the identical sweep is measured
   memo-off and memo-on, and byte-identity of the rendered output is
   asserted: the contract is that --memo may only change wall-clock.

   The memo-on sweep is measured twice: cold (the caches start empty,
   so the sweep itself pays the live runs — this is the headline
   number) and warm (a second sweep on the same domain, all hits).

   --canon-memo        measure and write BENCH_canon_memo.json; fail
                       unless the cold speedup reaches 2x
   --canon-memo-check  assert the committed record claims >= 2x, then
                       re-measure fresh with a generous 1.5x bound
                       (the CI gate; shared runners are noisy) *)

let canon_memo_grid = "thm1 t=1..12 k=12 side=16000 algo=greedy,stripes validate=true"

let canon_memo_cells ~memo () =
  List.concat_map
    (fun t ->
      List.map
        (fun algo ->
          Jobs_catalog.thm1_cell ~memo ~bulk:false ~validate:true ~t ~k:12
            ~side:16_000 ~algo ())
        [ "greedy"; "stripes" ])
    (List.init 12 (fun i -> i + 1))

let canon_memo_render ~memo () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let t0 = Unix.gettimeofday () in
  Harness.Sweep.run ~jobs:1 ~ppf (canon_memo_cells ~memo ());
  let dt = Unix.gettimeofday () -. t0 in
  (dt, Buffer.contents buf)

(* One measurement pass: memo-off (best of [passes]; the caches stay
   untouched, memo-off never reads or writes them), then memo-on cold,
   then memo-on warm.  Returns (off, cold, warm, hits, misses) after
   asserting all three outputs byte-equal. *)
let canon_memo_measure ~passes () =
  ignore (canon_memo_render ~memo:false ());
  let off_t, off_out =
    List.fold_left
      (fun (best_t, out) _ ->
        let t, o = canon_memo_render ~memo:false () in
        if t < best_t then (t, o) else (best_t, out))
      (canon_memo_render ~memo:false ())
      (List.init (passes - 1) Fun.id)
  in
  let metrics_were_on = Obs.Metrics.on () in
  Obs.Metrics.enable ();
  ignore (Obs.Metrics.drain ());
  let cold_t, cold_out = canon_memo_render ~memo:true () in
  let snap = Obs.Metrics.drain () in
  if not metrics_were_on then Obs.Metrics.disable ();
  let counter name =
    match List.assoc_opt name snap.Obs.Metrics.counters with
    | Some v -> v
    | None -> 0
  in
  let warm_t, warm_out = canon_memo_render ~memo:true () in
  List.iter
    (fun (label, out) ->
      if not (String.equal out off_out) then
        failwith
          (Printf.sprintf
             "BENCH canon_memo: %s output differs from memo-off — the --memo \
              byte-identity contract is broken"
             label))
    [ ("memo-on (cold)", cold_out); ("memo-on (warm)", warm_out) ];
  (off_t, cold_t, warm_t, counter "canon.game.hit", counter "canon.game.miss")

let canon_memo () =
  let cells = List.length (canon_memo_cells ~memo:false ()) in
  Format.printf "== E15: cross-cell memoization (%s; %d cells) ==@.@."
    canon_memo_grid cells;
  let off_t, cold_t, warm_t, hits, misses = canon_memo_measure ~passes:3 () in
  let speedup = off_t /. cold_t in
  Format.printf "%-16s %-12s %s@." "mode" "seconds" "speedup";
  Format.printf "%-16s %-12.3f %.2fx@." "memo-off" off_t 1.0;
  Format.printf "%-16s %-12.3f %.2fx@." "memo-on (cold)" cold_t speedup;
  Format.printf "%-16s %-12.3f %.2fx@." "memo-on (warm)" warm_t (off_t /. warm_t);
  Format.printf "game cache: %d hits, %d misses (live runs)@." hits misses;
  let results =
    Obs.Json.Obj
      [
        ("grid", Obs.Json.String canon_memo_grid);
        ("cells", Obs.Json.Int cells);
        ("identical_output", Obs.Json.Bool true);
        ("game_hits", Obs.Json.Int hits);
        ("game_misses", Obs.Json.Int misses);
        ("speedup", Obs.Json.Float speedup);
        ( "runs",
          Obs.Json.List
            (List.map
               (fun (mode, t, s) ->
                 Obs.Json.Obj
                   [
                     ("mode", Obs.Json.String mode);
                     ("seconds", Obs.Json.Float t);
                     ("speedup", Obs.Json.Float s);
                   ])
               [
                 ("memo-off", off_t, 1.0);
                 ("memo-on-cold", cold_t, speedup);
                 ("memo-on-warm", warm_t, off_t /. warm_t);
               ]) );
      ]
  in
  write_bench_record "BENCH_canon_memo.json"
    (bench_record ~bench:"canon_memo" ~jobs_axis:[ 1 ] ~results);
  if speedup < 2.0 then
    failwith
      (Printf.sprintf
         "BENCH canon_memo: cold speedup %.2fx is below the 2x claim" speedup)

let canon_memo_check () =
  let path = "BENCH_canon_memo.json" in
  let committed =
    match
      Obs.Json.of_string (In_channel.with_open_text path In_channel.input_all)
    with
    | json -> json
    | exception Sys_error msg ->
        failwith ("BENCH canon_memo check: cannot read committed record: " ^ msg)
  in
  let committed_speedup =
    match
      Option.bind (Obs.Json.member "results" committed)
        (Obs.Json.member "speedup")
      |> Fun.flip Option.bind Obs.Json.to_float_opt
    with
    | Some s -> s
    | None -> failwith "BENCH canon_memo check: no committed results.speedup"
  in
  Format.printf "== E15 regression gate (vs committed %s) ==@.@." path;
  Format.printf "committed cold speedup: %.2fx@." committed_speedup;
  if committed_speedup < 2.0 then
    failwith
      (Printf.sprintf
         "BENCH canon_memo check: committed speedup %.2fx is below the 2x \
          claim — regenerate with --canon-memo on a quiet machine"
         committed_speedup);
  let off_t, cold_t, _, _, misses = canon_memo_measure ~passes:2 () in
  let fresh = off_t /. cold_t in
  Format.printf "fresh cold speedup: %.2fx (bound 1.5x; %d live runs)@." fresh
    misses;
  if fresh < 1.5 then
    failwith
      (Printf.sprintf
         "BENCH canon_memo check: fresh speedup %.2fx is below the 1.5x \
          smoke bound"
         fresh);
  Format.printf "@.within budget@."

(* ------------- E16: fleet dispatch throughput and gate ------------- *)

(* Sharded campaigns over 1/2/3 servers plus one mid-run SIGKILL
   failover leg.  Byte-identity with the serverless baseline is
   asserted inside every scenario (a mismatch is a failed bench, not a
   worse number); the jobs/s axis shows what sharding buys and what
   failover costs. *)

let fleet_throughput () =
  let module Server = Harness.Server in
  let module Client = Harness.Client in
  let module Fleet = Harness.Fleet in
  let fast_backoff = { Harness.Backoff.base = 0.002; max = 0.02; seed = 0x5EED } in
  let handler ~kind ~payload =
    match kind with
    | "rev" ->
        String.init (String.length payload) (fun i ->
            payload.[String.length payload - 1 - i])
    | "slowrev" ->
        (* just enough per-job cost that a mid-run SIGKILL lands while
           the campaign is genuinely in flight *)
        Unix.sleepf 0.005;
        String.init (String.length payload) (fun i ->
            payload.[String.length payload - 1 - i])
    | other -> failwith ("unknown kind: " ^ other)
  in
  let n_jobs = 200 in
  let specs =
    List.init n_jobs (fun i -> ("rev", Printf.sprintf "payload-%06d" i))
  in
  let slow_specs =
    List.init n_jobs (fun i -> ("slowrev", Printf.sprintf "payload-%06d" i))
  in
  let wait_ready socket =
    let deadline = Unix.gettimeofday () +. 5. in
    let rec go () =
      match Client.health ~recv_timeout:1. ~socket () with
      | Ok _ -> ()
      | Error (`Unreachable _) ->
          if Unix.gettimeofday () > deadline then
            failwith ("BENCH fleet_throughput: server never ready on " ^ socket);
          Unix.sleepf 0.01;
          go ()
    in
    go ()
  in
  let scenario ~label ~endpoints:n ~kill_one ~specs =
    let sockets =
      List.init n (fun _ ->
          let s = Filename.temp_file "bench_fleet" ".sock" in
          (try Sys.remove s with Sys_error _ -> ());
          s)
    in
    let config =
      {
        Server.default_config with
        Server.jobs = 2;
        isolation = `In_domain;
        queue_limit = 256;
        backoff = fast_backoff;
        kill_grace = 0.1;
      }
    in
    let pids =
      List.map
        (fun socket ->
          match Unix.fork () with
          | 0 ->
              (try Server.run ~config ~socket ~handler () with _ -> ());
              Unix._exit 0
          | pid -> pid)
        sockets
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun pid ->
            (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid))
          pids;
        List.iter
          (fun s -> try Sys.remove s with Sys_error _ -> ())
          sockets)
      (fun () ->
        List.iter wait_ready sockets;
        let killer =
          if not kill_one then None
          else
            let victim = List.nth pids (n - 1) in
            match Unix.fork () with
            | 0 ->
                Unix.sleepf 0.05;
                (try Unix.kill victim Sys.sigkill with Unix.Unix_error _ -> ());
                Unix._exit 0
            | pid -> Some pid
        in
        let t0 = Unix.gettimeofday () in
        let c =
          Fleet.run_campaign ~backoff:fast_backoff ~window:32
            ~recv_timeout:10. ~probe_interval:0.05 ~endpoints:sockets specs
        in
        let dt = Unix.gettimeofday () -. t0 in
        Option.iter (fun pid -> ignore (Unix.waitpid [] pid)) killer;
        List.iteri
          (fun i ((kind, payload), got) ->
            if not (String.equal (handler ~kind ~payload) got) then
              failwith
                (Printf.sprintf
                   "BENCH fleet_throughput: %s result %d differs from the \
                    serverless baseline — determinism contract broken"
                   label i))
          (List.combine specs c.Fleet.results);
        if kill_one && c.Fleet.failovers < 1 then
          failwith
            ("BENCH fleet_throughput: " ^ label
           ^ ": SIGKILL mid-run produced no failovers");
        (label, n, dt, c))
  in
  Format.printf
    "== E16: fleet dispatch throughput (%d trivial jobs, 2 workers per \
     server) ==@.@."
    n_jobs;
  let runs =
    [
      scenario ~label:"servers_1" ~endpoints:1 ~kill_one:false ~specs;
      scenario ~label:"servers_2" ~endpoints:2 ~kill_one:false ~specs;
      scenario ~label:"servers_3" ~endpoints:3 ~kill_one:false ~specs;
      scenario ~label:"servers_3_kill_1" ~endpoints:3 ~kill_one:true
        ~specs:slow_specs;
    ]
  in
  Format.printf "%-18s %-9s %-9s %-10s %-11s %s@." "scenario" "servers"
    "jobs/s" "failovers" "duplicates" "verdict";
  let rows =
    List.map
      (fun (label, n, dt, (c : Fleet.campaign)) ->
        let rate = float_of_int n_jobs /. dt in
        Format.printf "%-18s %-9d %-9.0f %-10d %-11d %s@." label n rate
          c.Fleet.failovers c.Fleet.duplicates
          (Fleet.verdict_to_string c.Fleet.verdict);
        (label, n, dt, rate, c))
      runs
  in
  let results =
    Obs.Json.Obj
      [
        ("n_jobs", Obs.Json.Int n_jobs);
        ("isolation", Obs.Json.String "domain");
        ("identical_output", Obs.Json.Bool true);
        ( "runs",
          Obs.Json.List
            (List.map
               (fun (label, n, dt, rate, (c : Fleet.campaign)) ->
                 Obs.Json.Obj
                   [
                     ("scenario", Obs.Json.String label);
                     ("servers", Obs.Json.Int n);
                     ("seconds", Obs.Json.Float dt);
                     ("jobs_per_s", Obs.Json.Float rate);
                     ("failovers", Obs.Json.Int c.Fleet.failovers);
                     ("duplicates", Obs.Json.Int c.Fleet.duplicates);
                     ("resubmits", Obs.Json.Int c.Fleet.resubmits);
                     ( "verdict",
                       Obs.Json.String (Fleet.verdict_to_string c.Fleet.verdict)
                     );
                   ])
               rows) );
      ]
  in
  write_bench_record "BENCH_fleet_throughput.json"
    (bench_record ~bench:"fleet_throughput" ~jobs_axis:[ 1; 2; 3 ] ~results);
  rows

(* The E16 gate re-runs the scenarios fresh (byte-identity and the
   failover assertions are inside) and then checks the shape of the
   numbers: sharding must not collapse throughput, and the kill leg
   must have actually exercised failover. *)
let fleet_throughput_check () =
  let rows = fleet_throughput () in
  let rate_of label =
    match
      List.find_map
        (fun (l, _, _, rate, c) ->
          if String.equal l label then Some (rate, c) else None)
        rows
    with
    | Some r -> r
    | None -> failwith ("BENCH fleet_throughput check: no row for " ^ label)
  in
  let r1, _ = rate_of "servers_1" in
  let r3, _ = rate_of "servers_3" in
  let _, (killed : Harness.Fleet.campaign) = rate_of "servers_3_kill_1" in
  Format.printf "@.== E16 gate ==@.@.";
  Format.printf "servers_3 / servers_1 = %.2fx@." (r3 /. r1);
  if r3 < 0.4 *. r1 then
    failwith
      (Printf.sprintf
         "BENCH fleet_throughput check: 3-server sharding collapsed \
          throughput (%.0f vs %.0f jobs/s)"
         r3 r1);
  (match killed.Harness.Fleet.verdict with
  | `Degraded _ -> ()
  | `Full ->
      failwith
        "BENCH fleet_throughput check: kill leg reported a FULL verdict");
  Format.printf "gate passed: sharding scales, failover exercised and typed@."

let () =
  if Array.exists (String.equal "--sweep-scaling") Sys.argv then
    sweep_scaling ()
  else if Array.exists (String.equal "--trace-overhead") Sys.argv then
    trace_overhead ()
  else if Array.exists (String.equal "--fuzz-throughput") Sys.argv then
    fuzz_throughput ()
  else if Array.exists (String.equal "--isolation-overhead") Sys.argv then
    isolation_overhead ()
  else if Array.exists (String.equal "--serve-throughput") Sys.argv then
    serve_throughput ()
  else if Array.exists (String.equal "--fleet-throughput-check") Sys.argv then
    fleet_throughput_check ()
  else if Array.exists (String.equal "--fleet-throughput") Sys.argv then
    ignore (fleet_throughput ())
  else if Array.exists (String.equal "--game-steps") Sys.argv then
    game_steps ()
  else if Array.exists (String.equal "--game-steps-check") Sys.argv then
    game_steps_check ()
  else if Array.exists (String.equal "--canon-memo-check") Sys.argv then
    canon_memo_check ()
  else if Array.exists (String.equal "--canon-memo") Sys.argv then
    canon_memo ()
  else if Array.exists (String.equal "--stats-overhead-check") Sys.argv then
    stats_overhead_check ()
  else if Array.exists (String.equal "--stats-overhead") Sys.argv then
    stats_overhead ()
  else begin
    Format.printf "== Bechamel micro-benchmarks (one per experiment) ==@.@.";
    run_benchmarks ();
    Format.printf "@.";
    sweep_scaling ();
    Format.printf "@.";
    trace_overhead ();
    Format.printf "@.== Experiment regeneration (see EXPERIMENTS.md) ==@.";
    Experiments.run_all ~quick:false Format.std_formatter;
    Format.printf "@."
  end
