(* The guarded game engine: budgets, deadlines, typed misbehavior,
   fault injection, and crash-tolerant checkpointed sweeps. *)

open Online_local
module A = Models.Algorithm
module FH = Models.Fixed_host
module RS = Models.Run_stats
module G = Harness.Guard
module M = Harness.Misbehavior

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let constant c = A.stateless ~name:"constant" ~locality:(fun ~n:_ -> 1) (fun _ -> c)

let path_run ?(palette = 3) ?(order = [ 0; 1; 2; 3 ]) algorithm =
  FH.run ~host:(Grid_graph.Graph.path_graph 5) ~palette ~algorithm ~order ()

(* ------------------------------ guard ------------------------------ *)

let test_work_budget_stops_spin () =
  let limits = { G.no_limits with max_work = Some 1000 } in
  let guard = G.create ~limits () in
  let spinner = G.algorithm guard (Harness.Faults.spin ~steps:1 (constant 0)) in
  let outcome = path_run spinner in
  (match G.fault guard with
  | Some (M.Budget_exhausted { used; budget = 1000 }) ->
      (* Bounded: the loop stopped within one tick of the budget. *)
      check_int "stopped at the budget" 1001 used
  | _ -> Alcotest.fail "expected Budget_exhausted");
  (* The executor saw a contained failure, not an abort. *)
  check_bool "violation recorded" true
    (match outcome.RS.violation with
    | Some (RS.Algorithm_failure _) -> true
    | _ -> false)

let test_color_call_budget () =
  let limits = { G.no_limits with max_color_calls = Some 2 } in
  let guard = G.create ~limits () in
  let outcome = path_run (G.algorithm guard (constant 0)) in
  (match G.fault guard with
  | Some (M.Budget_exhausted { used = 3; budget = 2 }) -> ()
  | _ -> Alcotest.fail "expected call-budget exhaustion");
  check_int "two honest answers before the cutoff" 3 outcome.RS.presented

let test_deadline_exceeded () =
  (* A zero deadline is already past at the first color call — the
     deterministic way to exercise the deadline path. *)
  let limits = { G.no_limits with deadline = Some 0.0 } in
  let guard = G.create ~limits () in
  ignore (path_run (G.algorithm guard (constant 0)));
  match G.fault guard with
  | Some (M.Deadline_exceeded { deadline = 0.0; _ }) -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded"

let test_fatal_exceptions_propagate () =
  let fatal =
    A.stateless ~name:"fatal" ~locality:(fun ~n:_ -> 1) (fun _ -> raise Stack_overflow)
  in
  let guard = G.create ~limits:G.no_limits () in
  (* Through the guard AND the executor AND capture: never swallowed. *)
  Alcotest.check_raises "stack overflow reaches the top" Stack_overflow (fun () ->
      match G.capture guard (fun () -> path_run (G.algorithm guard fatal)) with
      | Ok _ | Error _ -> ());
  check_bool "no fault recorded for fatal" true (G.fault guard = None)

let test_poisoned_after_first_fault () =
  let guard = G.create ~limits:G.no_limits () in
  let algo = G.algorithm guard (Harness.Faults.raise_at ~step:2 (constant 0)) in
  let outcome = path_run algo in
  (* The executor stopped at the failing step; the guard holds the
     typed cause and would fail fast on any further call. *)
  check_int "stopped at step 2" 2 outcome.RS.presented;
  match G.fault guard with
  | Some (M.Raised { message; _ }) ->
      check_bool "message kept" true (String.length message > 0)
  | _ -> Alcotest.fail "expected Raised"

let test_instantiate_failure_poisons () =
  let broken =
    {
      A.name = "broken-instantiate";
      locality = (fun ~n:_ -> 1);
      pure = false;
      instantiate = (fun ~n:_ ~palette:_ ~oracle:_ -> failwith "ctor boom");
    }
  in
  let guard = G.create ~limits:G.no_limits () in
  let outcome = path_run (G.algorithm guard broken) in
  check_bool "typed fault" true
    (match G.fault guard with Some (M.Raised _) -> true | _ -> false);
  check_bool "run degraded, not aborted" true
    (match outcome.RS.violation with
    | Some (RS.Algorithm_failure _) -> true
    | _ -> false)

let test_capture_classifies () =
  let guard = G.create ~limits:G.no_limits () in
  check_bool "ok" true (G.capture guard (fun () -> 41 + 1) = Ok 42);
  (match G.capture guard (fun () -> failwith "adversary bug") with
  | Error (M.Raised { message; _ }) ->
      check_bool "message" true (String.length message > 0)
  | _ -> Alcotest.fail "expected Error Raised");
  Alcotest.check_raises "fatal re-raised" Out_of_memory (fun () ->
      ignore (G.capture guard (fun () -> raise Out_of_memory)))

let test_tick_without_guard_is_noop () =
  (* Fault wrappers call tick unconditionally; outside a guarded call it
     must be free and harmless. *)
  for _ = 1 to 1000 do
    G.tick ()
  done

(* ------------------------------ faults ----------------------------- *)

let test_wrong_color_alternates () =
  let outcome = path_run (Harness.Faults.wrong_color ~every:2 (constant 0)) in
  let c v = Colorings.Coloring.get outcome.RS.coloring v in
  check_bool "odd calls honest" true (c 0 = Some 0 && c 2 = Some 0);
  check_bool "even calls shifted" true (c 1 = Some 1 && c 3 = Some 1)

let test_out_of_palette_default_color () =
  let outcome = path_run (Harness.Faults.out_of_palette ~at_step:1 (constant 0)) in
  match outcome.RS.violation with
  | Some (RS.Palette_overflow { color = 3; _ }) -> ()
  | _ -> Alcotest.fail "expected overflow with color = palette"

let test_amnesia_reinstantiates () =
  let instantiations = ref 0 in
  let counting =
    {
      A.name = "counting";
      locality = (fun ~n:_ -> 1);
      pure = false;
      instantiate =
        (fun ~n:_ ~palette:_ ~oracle:_ ->
          incr instantiations;
          fun _ -> 0);
    }
  in
  ignore (path_run (Harness.Faults.amnesia counting));
  check_int "fresh instance per call" 4 !instantiations;
  ignore (path_run counting);
  check_int "baseline instantiates once" 5 !instantiations

let test_fault_wrappers_rename () =
  check_string "tagged name" "spin@3(constant)"
    (Harness.Faults.spin ~steps:3 (constant 0)).A.name

let dummy_view =
  {
    Models.View.n_total = 1;
    palette = 3;
    node_count = (fun () -> 1);
    neighbors = (fun _ -> []);
    mem_edge = (fun _ _ -> false);
    id = (fun h -> h);
    output = (fun _ -> None);
    hint = (fun _ -> None);
    target = 0;
    new_nodes = [ 0 ];
    step = 1;
  }

let test_chaos_oracle_corrupts () =
  let honest =
    { Models.Oracle.parts = 2; radius = 0; query = (fun _ hs -> Array.make (List.length hs) 0) }
  in
  let chaotic = Harness.Faults.chaos_oracle ~seed:0 honest in
  let parts = chaotic.Models.Oracle.query dummy_view [ 0; 1; 2; 3 ] in
  Alcotest.(check (array int)) "even handles flipped" [| 1; 0; 1; 0 |] parts;
  check_int "parts preserved" 2 chaotic.Models.Oracle.parts

let test_chaos_oracle_preserves_shared_buffer () =
  (* An oracle may answer from a shared or cached buffer; the fault
     injector must corrupt the answer, never the oracle's own state. *)
  let shared = Array.make 4 0 in
  let honest = { Models.Oracle.parts = 2; radius = 0; query = (fun _ _ -> shared) } in
  let chaotic = Harness.Faults.chaos_oracle ~seed:0 honest in
  let parts = chaotic.Models.Oracle.query dummy_view [ 0; 1; 2; 3 ] in
  Alcotest.(check (array int)) "answer perturbed" [| 1; 0; 1; 0 |] parts;
  Alcotest.(check (array int)) "wrapped oracle's buffer untouched" [| 0; 0; 0; 0 |] shared

(* --------------------------- classification ------------------------ *)

let test_rigged_dishonest_transcript () =
  let v =
    Game.referee ~adversary:"rigged" ~n:1 ~guaranteed:false (Portfolio.greedy ())
      (fun _ -> raise (RS.Dishonest_transcript "frame 0 lied about an edge"))
  in
  match v.Game.outcome with
  | Game.Adversary_fault
      (M.Dishonest_transcript { message = "frame 0 lied about an edge" }) ->
      ()
  | o -> Alcotest.failf "expected dishonest transcript, got %s" (Game.outcome_label o)

let test_audit_like_message_stays_raised () =
  (* Classification is by exception constructor, never message text: a
     generic crash whose message merely resembles an audit diagnostic
     must not be promoted to a Dishonest_transcript certificate. *)
  let v =
    Game.referee ~adversary:"rigged" ~n:1 ~guaranteed:false (Portfolio.greedy ())
      (fun _ -> failwith "validate: node 7 presented twice")
  in
  match v.Game.outcome with
  | Game.Adversary_fault (M.Raised _) -> ()
  | o -> Alcotest.failf "expected generic raised, got %s" (Game.outcome_label o)

let test_rigged_repeated_presentation () =
  let v =
    Game.referee ~adversary:"rigged" ~n:1 ~guaranteed:false (Portfolio.greedy ())
      (fun _ -> (`Defeated (RS.Repeated_presentation 3), "rigged detail"))
  in
  match v.Game.outcome with
  | Game.Adversary_fault (M.Dishonest_transcript _) -> ()
  | o -> Alcotest.failf "expected adversary fault, got %s" (Game.outcome_label o)

let test_rigged_adversary_crash () =
  let v =
    Game.referee ~adversary:"rigged" ~n:1 ~guaranteed:false (Portfolio.greedy ())
      (fun _ -> invalid_arg "adversary bug")
  in
  check_bool "adversary fault" true
    (match v.Game.outcome with
    | Game.Adversary_fault (M.Raised _) -> true
    | _ -> false);
  check_bool "not a defeat" false v.Game.defeated

let test_paranoid_thm1_stays_defeated () =
  let v = Game.thm1.Game.play ~paranoid:true ~n:25 (Portfolio.greedy ()) in
  check_bool "audited defeat" true v.Game.defeated

(* ---------------------------- fault matrix -------------------------- *)

(* Pinned from a reference run; every row is deterministic (seeded
   orders, counter-based faults, work budgets — no clocks).  The shape
   that matters: honest losses stay DEFEATED, in-palette bugs lose
   honestly, everything else degrades to a typed fault, and no cell
   aborts the matrix. *)
let expected_matrix =
  let lower_games = [ "thm1-grid"; "thm2-torus"; "thm2-cylinder"; "thm3-gadgets" ] in
  let upper_games = [ "upper-grid"; "upper-grid-oracle" ] in
  List.concat_map
    (fun game ->
      let baseline = if List.mem game lower_games then "DEFEATED" else "survived" in
      let amnesia =
        (* greedy and gadget-rows carry no global state, so amnesia just
           loses honestly; ael and kp1 crash without their memory. *)
        match game with
        | "thm2-torus" | "thm2-cylinder" | "thm3-gadgets" -> "DEFEATED"
        | _ -> "ALGORITHM-FAULT (raised)"
      in
      [
        (game, "none", baseline);
        (game, "wrong-color", "DEFEATED");
        (game, "out-of-palette", "ALGORITHM-FAULT (out-of-palette)");
        (game, "raise", "ALGORITHM-FAULT (raised)");
        (game, "spin", "ALGORITHM-FAULT (budget-exhausted)");
        (game, "amnesia", amnesia);
      ])
    (lower_games @ upper_games)

let test_fault_matrix () =
  let actual = Experiments.fault_matrix () in
  check_int "matrix size" (List.length expected_matrix) (List.length actual);
  List.iter2
    (fun (eg, ef, eo) (ag, af, ao) ->
      check_string (Printf.sprintf "%s/%s game" eg ef) eg ag;
      check_string (Printf.sprintf "%s/%s fault" eg ef) ef af;
      check_string (Printf.sprintf "%s x %s" eg ef) eo ao)
    expected_matrix actual

(* The bulk contract: the executor fast path elides per-step trace and
   metrics events and the paranoid re-audit, and changes nothing else.
   Quantified here over the whole E7 matrix — every game crossed with
   every fault class — the strongest equivalence the repo's own
   infrastructure can state in one call. *)
let test_fault_matrix_bulk_equivalent () =
  let baseline = Experiments.fault_matrix () in
  let bulk = Experiments.fault_matrix ~bulk:true () in
  check_int "matrix size" (List.length baseline) (List.length bulk);
  List.iter2
    (fun (bg, bf, bo) (kg, kf, ko) ->
      check_string (Printf.sprintf "%s/%s game" bg bf) bg kg;
      check_string (Printf.sprintf "%s/%s fault" bg bf) bf kf;
      check_string (Printf.sprintf "%s x %s bulk" bg bf) bo ko)
    baseline bulk

(* ------------------------------ sweep ------------------------------ *)

let with_temp_checkpoint f =
  let path = Filename.temp_file "sweep_test" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let render cells ?resume ?checkpoint ?jobs () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Harness.Sweep.run ?resume ?checkpoint ?jobs ~ppf cells;
  Buffer.contents buf

let counted_cells log =
  List.map
    (fun key ->
      {
        Harness.Sweep.key;
        run =
          (fun () ->
            log := key :: !log;
            "result of " ^ key ^ "\nsecond line of " ^ key);
      })
    [ "a"; "b"; "c" ]

let test_sweep_resume_byte_identical () =
  with_temp_checkpoint (fun path ->
      let log = ref [] in
      let full = render (counted_cells log) ~checkpoint:path () in
      check_int "three cells ran" 3 (List.length !log);
      (* Drop the last checkpoint line: simulate a kill between cells
         (line 0 is the version header). *)
      let lines =
        String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all)
      in
      let kept = List.filteri (fun i _ -> i < 3) lines in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) kept);
      log := [];
      let resumed = render (counted_cells log) ~resume:true ~checkpoint:path () in
      check_string "byte-identical output" full resumed;
      Alcotest.(check (list string)) "only the missing cell reran" [ "c" ] !log;
      (* And the checkpoint is complete again: a second resume runs nothing. *)
      log := [];
      let again = render (counted_cells log) ~resume:true ~checkpoint:path () in
      check_string "still byte-identical" full again;
      check_int "nothing reran" 0 (List.length !log))

let test_sweep_crashed_cell_continues () =
  let cells =
    [
      { Harness.Sweep.key = "good"; run = (fun () -> "ok") };
      { Harness.Sweep.key = "bad"; run = (fun () -> failwith "cell exploded") };
      { Harness.Sweep.key = "after"; run = (fun () -> "still here") };
    ]
  in
  let out = render cells () in
  check_string "error recorded, sweep continued"
    "ok\nERROR: Failure(\"cell exploded\")\nstill here\n" out

let test_sweep_duplicate_keys_rejected () =
  let cells =
    [
      { Harness.Sweep.key = "same"; run = (fun () -> "x") };
      { Harness.Sweep.key = "same"; run = (fun () -> "y") };
    ]
  in
  Alcotest.check_raises "duplicate keys"
    (Invalid_argument "Sweep.run: duplicate cell key same") (fun () ->
      ignore (render cells ()))

let test_sweep_interrupt_preserves_checkpoint () =
  with_temp_checkpoint (fun path ->
      let cells =
        [
          { Harness.Sweep.key = "first"; run = (fun () -> "done first") };
          { Harness.Sweep.key = "second"; run = (fun () -> raise Harness.Sweep.Interrupted) };
          { Harness.Sweep.key = "third"; run = (fun () -> "done third") };
        ]
      in
      (try ignore (render cells ~checkpoint:path ()) with
      | Harness.Sweep.Interrupted -> ());
      let saved = In_channel.with_open_text path In_channel.input_all in
      check_bool "first cell checkpointed" true (String.length saved > 0);
      (* Resume completes the remaining cells without rerunning the first. *)
      let log = ref [] in
      let cells' =
        List.map
          (fun key ->
            {
              Harness.Sweep.key;
              run =
                (fun () ->
                  log := key :: !log;
                  "done " ^ key);
            })
          [ "first"; "second"; "third" ]
      in
      let out = render cells' ~resume:true ~checkpoint:path () in
      Alcotest.(check (list string)) "only unfinished cells ran" [ "third"; "second" ] !log;
      check_string "full output" "done first\ndone second\ndone third\n" out)

(* Pinned renderings: Misbehavior.pp feeds verdict details, trace
   Misbehavior events and the fault-matrix table — its exact text is a
   compatibility surface, so change it deliberately. *)
let test_misbehavior_pp_pinned () =
  let render m = Format.asprintf "%a" M.pp m in
  check_string "raised without backtrace" "raised: Failure(\"boom\")"
    (render (M.Raised { message = "Failure(\"boom\")"; backtrace = "" }));
  check_string "raised with backtrace"
    "raised: Failure(\"boom\") [backtrace recorded]"
    (render (M.Raised { message = "Failure(\"boom\")"; backtrace = "Raised at ..." }));
  check_string "out of palette" "out-of-palette color 17"
    (render (M.Out_of_palette { color = 17 }));
  check_string "budget" "budget exhausted (1001 > 1000)"
    (render (M.Budget_exhausted { used = 1001; budget = 1000 }));
  check_string "deadline" "deadline exceeded (2.500s > 1.000s)"
    (render (M.Deadline_exceeded { elapsed = 2.5; deadline = 1.0 }));
  check_string "dishonest" "dishonest transcript: replay diverged"
    (render (M.Dishonest_transcript { message = "replay diverged" }));
  check_string "unresponsive"
    "unresponsive: killed by supervisor after 3.200s (limit 2.000s)"
    (render (M.Unresponsive { elapsed = 3.2; limit = 2.0 }));
  (* label stays in lockstep with pp: both name every variant *)
  Alcotest.(check (list string)) "labels"
    [
      "raised";
      "out-of-palette";
      "budget-exhausted";
      "deadline-exceeded";
      "dishonest-transcript";
      "unresponsive";
    ]
    (List.map M.label
       [
         M.Raised { message = ""; backtrace = "" };
         M.Out_of_palette { color = 0 };
         M.Budget_exhausted { used = 0; budget = 0 };
         M.Deadline_exceeded { elapsed = 0.; deadline = 0. };
         M.Dishonest_transcript { message = "" };
         M.Unresponsive { elapsed = 0.; limit = 0. };
       ])

let test_sweep_break_mid_cell_not_recorded () =
  (* What SIGINT now does: Sys.Break out of the deepest containment
     layer.  capture must re-raise it as fatal, the sweep must surface
     Interrupted, and the interrupted cell must NOT be recorded as a
     fake result in the checkpoint. *)
  with_temp_checkpoint (fun path ->
      let cells =
        [
          { Harness.Sweep.key = "first"; run = (fun () -> "done first") };
          {
            Harness.Sweep.key = "break";
            run =
              (fun () ->
                let guard = G.create ~limits:G.no_limits () in
                match G.capture guard (fun () -> raise Sys.Break) with
                | Ok _ | Error _ -> "swallowed");
          };
        ]
      in
      (try
         ignore (render cells ~checkpoint:path ());
         Alcotest.fail "expected Interrupted"
       with Harness.Sweep.Interrupted -> ());
      let saved = In_channel.with_open_text path In_channel.input_all in
      let body = "first\tdone first" in
      check_string "only the completed cell is checkpointed"
        (Printf.sprintf "#sweep-checkpoint v2\n%s\t@%08x:%d\n" body
           (Harness.Wire.crc32 body) (String.length body))
        saved)

let test_sweep_torn_record_reruns () =
  with_temp_checkpoint (fun path ->
      let log = ref [] in
      let full = render (counted_cells log) ~checkpoint:path () in
      (* Tear the final record: a kill mid-write leaves no newline. *)
      let saved = In_channel.with_open_text path In_channel.input_all in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (String.sub saved 0 (String.length saved - 5)));
      log := [];
      let resumed = render (counted_cells log) ~resume:true ~checkpoint:path () in
      Alcotest.(check (list string)) "only the torn cell reran" [ "c" ] !log;
      check_string "byte-identical output" full resumed;
      (* The rerun's record superseded the torn one: a further resume
         replays everything verbatim. *)
      log := [];
      let again = render (counted_cells log) ~resume:true ~checkpoint:path () in
      check_int "nothing reran" 0 (List.length !log);
      check_string "still byte-identical" full again)

let test_axis_parsers () =
  Alcotest.(check (list int)) "ints" [ 1; 2; 8 ] (Harness.Sweep.int_axis "1,2,8");
  Alcotest.(check (list string)) "strings" [ "ael"; "greedy" ]
    (Harness.Sweep.string_axis " ael, greedy ,");
  Alcotest.check_raises "bad int"
    (Invalid_argument "Sweep.int_axis: not an integer: x (flag -t)") (fun () ->
      ignore (Harness.Sweep.int_axis ~flag:"-t" "1,x"))

let test_axis_rejects_empty () =
  (* An empty axis used to silently produce a zero-cell sweep; it must
     fail loudly, naming the flag the user has to fix. *)
  Alcotest.check_raises "empty int axis"
    (Invalid_argument "Sweep.int_axis: empty axis (flag -t)") (fun () ->
      ignore (Harness.Sweep.int_axis ~flag:"-t" ""));
  Alcotest.check_raises "blank-only int axis"
    (Invalid_argument "Sweep.int_axis: empty axis (flag -k)") (fun () ->
      ignore (Harness.Sweep.int_axis ~flag:"-k" " , ,"));
  Alcotest.check_raises "empty string axis"
    (Invalid_argument "Sweep.string_axis: empty axis (flag --algo)") (fun () ->
      ignore (Harness.Sweep.string_axis ~flag:"--algo" "  ,  "));
  Alcotest.check_raises "flagless caller still errors"
    (Invalid_argument "Sweep.int_axis: empty axis") (fun () ->
      ignore (Harness.Sweep.int_axis ""))

(* ------------------------- parallel sweep -------------------------- *)

(* Ten cells with deliberately uneven, reverse-sorted costs: the first
   cells finish last, so under any real pool the completion order
   differs from the cell order and the completion buffer actually has
   to reorder. *)
let uneven_cells ?(broken = []) () =
  List.init 10 (fun i ->
      let key = Printf.sprintf "cell%02d" i in
      {
        Harness.Sweep.key;
        run =
          (fun () ->
            let spin = (10 - i) * 20_000 in
            let acc = ref 0 in
            for j = 1 to spin do
              acc := (!acc + j) land 0xFFFF
            done;
            if List.mem i broken then failwith ("boom " ^ key);
            Printf.sprintf "%s -> %d\nsecond line of %s" key !acc key);
      })

let checkpoint_records path =
  (* Order-insensitive view of a checkpoint: the set of key/result
     records.  Parallel appends land in completion order, so equivalent
     checkpoints are equal as sets, not as bytes. *)
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")
  |> List.sort compare

let test_parallel_matches_sequential () =
  with_temp_checkpoint (fun p1 ->
      with_temp_checkpoint (fun p4 ->
          let seq = render (uneven_cells ()) ~checkpoint:p1 () in
          let par = render (uneven_cells ()) ~jobs:4 ~checkpoint:p4 () in
          check_string "stdout identical at jobs=1 vs jobs=4" seq par;
          Alcotest.(check (list string))
            "checkpoints equivalent (same record set)" (checkpoint_records p1)
            (checkpoint_records p4)))

let test_parallel_crashed_cell_degrades_alone () =
  let broken = [ 4 ] in
  let seq = render (uneven_cells ~broken ()) () in
  let par = render (uneven_cells ~broken ()) ~jobs:3 () in
  check_string "ERROR cell identical at any jobs count" seq par;
  check_bool "the error is recorded in place" true
    (let lines = String.split_on_char '\n' par in
     List.exists (fun l -> l = "ERROR: Failure(\"boom cell04\")") lines)

let test_parallel_resume_across_jobs_counts () =
  (* Kill-and-resume must replay byte-identically regardless of the
     jobs count used on either side of the kill. *)
  with_temp_checkpoint (fun path ->
      let full = render (uneven_cells ()) ~jobs:4 ~checkpoint:path () in
      (* Simulate a kill: drop the last two checkpoint records (whatever
         completion order they were appended in). *)
      let kept =
        let lines = checkpoint_records path in
        List.filteri (fun i _ -> i < List.length lines - 2) lines
      in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) kept);
      let resumed_seq =
        render (uneven_cells ()) ~resume:true ~checkpoint:path ()
      in
      check_string "jobs=4 run resumed at jobs=1" full resumed_seq;
      (* And back: tear it again, resume at a third jobs count. *)
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) kept);
      let resumed_par =
        render (uneven_cells ()) ~resume:true ~jobs:2 ~checkpoint:path ()
      in
      check_string "jobs=4 run resumed at jobs=2" full resumed_par)

let test_parallel_fatal_aborts_sweep () =
  (* A fatal exception (here Stack_overflow) in any worker must abort
     the whole sweep — drained, joined, and re-raised — never be
     recorded as a cell result. *)
  with_temp_checkpoint (fun path ->
      let cells =
        List.init 6 (fun i ->
            let key = Printf.sprintf "c%d" i in
            {
              Harness.Sweep.key;
              run =
                (fun () ->
                  if i = 2 then raise Stack_overflow else "ok " ^ key);
            })
      in
      Alcotest.check_raises "stack overflow reaches the caller"
        Stack_overflow (fun () ->
          ignore (render cells ~jobs:3 ~checkpoint:path ()));
      check_bool "no fatal cell in the checkpoint" true
        (List.for_all
           (fun l -> not (String.length l >= 2 && String.sub l 0 2 = "c2"))
           (checkpoint_records path)))

let test_parallel_interrupted_cell_propagates () =
  (* A cell raising Sweep.Interrupted directly is honored under a pool
     exactly as sequentially. *)
  let cells =
    List.init 4 (fun i ->
        {
          Harness.Sweep.key = Printf.sprintf "i%d" i;
          run =
            (fun () ->
              if i = 1 then raise Harness.Sweep.Interrupted else "ok");
        })
  in
  Alcotest.check_raises "Interrupted surfaces" Harness.Sweep.Interrupted
    (fun () -> ignore (render cells ~jobs:2 ()))

let test_parallel_guarded_games_deterministic () =
  (* Whole guarded games on pool workers: the E7 fault matrix re-run on
     4 domains must pin the exact same rows — Guard's ambient state is
     domain-local and the fault combinators share nothing. *)
  let cells_of () =
    List.map
      (fun (game, n, base) ->
        List.map
          (fun (fault, inject) ->
            {
              Harness.Sweep.key = game ^ "/" ^ fault;
              run =
                (fun () ->
                  let g = Option.get (Game.find game) in
                  let v =
                    g.Game.play
                      ~limits:
                        {
                          Harness.Guard.max_color_calls = Some 200_000;
                          max_work = Some 100_000;
                          deadline = Some 10.0;
                        }
                      ~n
                      (inject (base ()))
                  in
                  Game.outcome_label v.Game.outcome);
            })
          (("none", fun algo -> algo) :: Harness.Faults.algorithm_faults))
      [
        ("thm1-grid", 30, fun () -> Portfolio.ael ~t:1 ());
        ("thm2-torus", 13, fun () -> Portfolio.greedy ());
        ("thm3-gadgets", 9, fun () -> Portfolio.gadget_rows ());
      ]
    |> List.concat
  in
  let seq = render (cells_of ()) () in
  let par = render (cells_of ()) ~jobs:4 () in
  check_string "fault sub-matrix identical on 4 domains" seq par

let test_pool_ordered_delivery () =
  (* Pool.run alone: consume must see indices in order with results
     matching, whatever the completion order. *)
  let seen = ref [] in
  Harness.Pool.run ~jobs:4 ~tasks:20
    ~work:(fun i ->
      let acc = ref 0 in
      for j = 1 to (20 - i) * 5_000 do
        acc := (!acc + j) land 0xFF
      done;
      ignore !acc;
      i * i)
    ~consume:(fun i v -> seen := (i, v) :: !seen);
  Alcotest.(check (list (pair int int)))
    "in order, correct values"
    (List.init 20 (fun i -> (i, i * i)))
    (List.rev !seen)

(* ----------------------------- backoff ----------------------------- *)

(* Property coverage for the one retry schedule everything shares
   (supervisor, client, fleet breakers): the delay for (config, key,
   attempt) is a pure function of its arguments — byte-equal across
   domains — and always lands in [envelope, 2*envelope) where envelope
   is the capped exponential term.  That bound is what makes the cap a
   real ceiling: no jitter draw can push a delay past 2*max. *)

let backoff_case_gen =
  Proptest.Gen.(
    map3
      (fun (base_ms, span_ms) seed (key_n, attempt) ->
        let base = float_of_int base_ms /. 1000. in
        let cap = base +. (float_of_int span_ms /. 1000.) in
        ( { Harness.Backoff.base; max = cap; seed },
          Printf.sprintf "cell t=%d" key_n,
          attempt ))
      (pair (int_range 1 100) (int_range 0 2000))
      (int_range 0 1_000_000)
      (pair (int_range 0 50) (int_range 1 60)))

let print_backoff_case ({ Harness.Backoff.base; max; seed }, key, attempt) =
  Printf.sprintf "base=%g max=%g seed=%d key=%S attempt=%d" base max seed key
    attempt

let backoff_envelope (cfg : Harness.Backoff.config) attempt =
  Float.min (cfg.Harness.Backoff.base *. (2. ** float_of_int (attempt - 1)))
    cfg.Harness.Backoff.max

let backoff_proptest name prop =
  Alcotest.test_case name `Quick (fun () ->
      Proptest.Runner.check_exn
        ~config:{ Proptest.Runner.default_config with seed = 0xBAC0FF; cases = 200 }
        ~name ~print:print_backoff_case backoff_case_gen prop)

let prop_backoff_bounded_by_cap =
  backoff_proptest "delay within [envelope, 2*envelope)"
    (fun (cfg, key, attempt) ->
      let d = Harness.Backoff.delay cfg ~key ~attempt in
      let env = backoff_envelope cfg attempt in
      d >= env && d < 2. *. env +. 1e-12)

let prop_backoff_deterministic_across_domains =
  backoff_proptest "fixed seed replays across domains"
    (fun (cfg, key, attempt) ->
      let here = Harness.Backoff.delay cfg ~key ~attempt in
      let spawned =
        List.init 2 (fun _ ->
            Domain.spawn (fun () -> Harness.Backoff.delay cfg ~key ~attempt))
        |> List.map Domain.join
      in
      List.for_all (fun d -> Float.equal d here) spawned)

let prop_backoff_envelope_monotone =
  backoff_proptest "envelope monotone in attempt up to the cap"
    (fun (cfg, key, attempt) ->
      (* jitter aside, the exponential term never decreases with the
         attempt number and never exceeds the cap *)
      ignore key;
      let e1 = backoff_envelope cfg attempt in
      let e2 = backoff_envelope cfg (attempt + 1) in
      e2 >= e1 && e2 <= cfg.Harness.Backoff.max)

let () =
  Alcotest.run "harness"
    [
      ( "guard",
        [
          Alcotest.test_case "work budget stops spin" `Quick test_work_budget_stops_spin;
          Alcotest.test_case "color-call budget" `Quick test_color_call_budget;
          Alcotest.test_case "deadline" `Quick test_deadline_exceeded;
          Alcotest.test_case "fatal exceptions propagate" `Quick
            test_fatal_exceptions_propagate;
          Alcotest.test_case "poisoned after fault" `Quick test_poisoned_after_first_fault;
          Alcotest.test_case "instantiate failure" `Quick test_instantiate_failure_poisons;
          Alcotest.test_case "capture" `Quick test_capture_classifies;
          Alcotest.test_case "tick without guard" `Quick test_tick_without_guard_is_noop;
        ] );
      ( "faults",
        [
          Alcotest.test_case "wrong-color alternates" `Quick test_wrong_color_alternates;
          Alcotest.test_case "out-of-palette default" `Quick
            test_out_of_palette_default_color;
          Alcotest.test_case "amnesia reinstantiates" `Quick test_amnesia_reinstantiates;
          Alcotest.test_case "wrappers rename" `Quick test_fault_wrappers_rename;
          Alcotest.test_case "chaos oracle" `Quick test_chaos_oracle_corrupts;
          Alcotest.test_case "chaos oracle copies" `Quick
            test_chaos_oracle_preserves_shared_buffer;
        ] );
      ( "classification",
        [
          Alcotest.test_case "dishonest transcript" `Quick test_rigged_dishonest_transcript;
          Alcotest.test_case "audit-like message stays raised" `Quick
            test_audit_like_message_stays_raised;
          Alcotest.test_case "repeated presentation" `Quick
            test_rigged_repeated_presentation;
          Alcotest.test_case "adversary crash" `Quick test_rigged_adversary_crash;
          Alcotest.test_case "paranoid thm1" `Quick test_paranoid_thm1_stays_defeated;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "fault matrix pinned" `Slow test_fault_matrix;
          Alcotest.test_case "fault matrix bulk-equivalent" `Slow
            test_fault_matrix_bulk_equivalent;
        ] );
      ( "misbehavior",
        [ Alcotest.test_case "pp pinned" `Quick test_misbehavior_pp_pinned ] );
      ( "sweep",
        [
          Alcotest.test_case "resume byte-identical" `Quick test_sweep_resume_byte_identical;
          Alcotest.test_case "crashed cell continues" `Quick
            test_sweep_crashed_cell_continues;
          Alcotest.test_case "duplicate keys" `Quick test_sweep_duplicate_keys_rejected;
          Alcotest.test_case "interrupt preserves checkpoint" `Quick
            test_sweep_interrupt_preserves_checkpoint;
          Alcotest.test_case "break mid-cell not recorded" `Quick
            test_sweep_break_mid_cell_not_recorded;
          Alcotest.test_case "torn record reruns" `Quick test_sweep_torn_record_reruns;
          Alcotest.test_case "axis parsers" `Quick test_axis_parsers;
          Alcotest.test_case "axis rejects empty" `Quick test_axis_rejects_empty;
        ] );
      ( "parallel-sweep",
        [
          Alcotest.test_case "pool ordered delivery" `Quick test_pool_ordered_delivery;
          Alcotest.test_case "jobs=4 matches jobs=1" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "crashed cell degrades alone" `Quick
            test_parallel_crashed_cell_degrades_alone;
          Alcotest.test_case "resume across jobs counts" `Quick
            test_parallel_resume_across_jobs_counts;
          Alcotest.test_case "fatal aborts sweep" `Quick
            test_parallel_fatal_aborts_sweep;
          Alcotest.test_case "Interrupted propagates" `Quick
            test_parallel_interrupted_cell_propagates;
          Alcotest.test_case "guarded games deterministic" `Slow
            test_parallel_guarded_games_deterministic;
        ] );
      ( "backoff",
        [
          prop_backoff_bounded_by_cap;
          prop_backoff_deterministic_across_domains;
          prop_backoff_envelope_monotone;
        ] );
    ]
