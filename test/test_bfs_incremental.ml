(* The incremental executor substrate: Bfs.Frontier against the batch
   Bfs.ball reference, and the packed-coordinate containers against
   their stdlib references.  The frontier's byte-identity contract
   (same lists, same order as ball-and-filter) is what keeps the
   executor rewrite invisible to goldens, traces and sweeps — so it is
   pinned here both on hand-built cases and under a seeded property
   run. *)

open Grid_graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_nodes = Alcotest.(check (list int))

(* ------------------------- Packed.Coord -------------------------- *)

let test_coord_roundtrip () =
  List.iter
    (fun (r, c) ->
      let k = Packed.Coord.pack r c in
      check_int "row" r (Packed.Coord.row k);
      check_int "col" c (Packed.Coord.col k);
      check_bool "unpack" true (Packed.Coord.unpack k = (r, c)))
    [
      (0, 0);
      (1, 0);
      (0, 1);
      (-1, 0);
      (0, -1);
      (-7, 13);
      (13, -7);
      ((1 lsl 29) - 1, (1 lsl 29) - 1);
      (-(1 lsl 29) + 1, -(1 lsl 29) + 1);
    ]

let test_coord_steps () =
  let k = Packed.Coord.pack 5 (-3) in
  check_bool "north" true (Packed.Coord.north k = Packed.Coord.pack 4 (-3));
  check_bool "south" true (Packed.Coord.south k = Packed.Coord.pack 6 (-3));
  check_bool "west" true (Packed.Coord.west k = Packed.Coord.pack 5 (-4));
  check_bool "east" true (Packed.Coord.east k = Packed.Coord.pack 5 (-2));
  check_bool "row_step" true
    (k + Packed.Coord.row_step = Packed.Coord.pack 6 (-3))

let test_coord_order_is_lexicographic () =
  let coords = [ (0, 0); (0, 1); (0, -1); (1, 0); (-1, 5); (2, -9); (2, 4) ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_bool "pack order = coord order" true
            (compare (Packed.Coord.pack (fst a) (snd a))
               (Packed.Coord.pack (fst b) (snd b))
            = compare a b))
        coords)
    coords

let test_coord_range () =
  let lim = 1 lsl 29 in
  check_bool "in range" true (Packed.Coord.in_range (lim - 1) (-lim + 1));
  check_bool "row out" false (Packed.Coord.in_range lim 0);
  check_bool "col out" false (Packed.Coord.in_range 0 (-lim));
  check_int "checked ok" (Packed.Coord.pack 3 4) (Packed.Coord.pack_checked 3 4);
  check_bool "checked raises" true
    (match Packed.Coord.pack_checked lim 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------- Packed.Table -------------------------- *)

let test_table_basics () =
  let t = Packed.Table.create ~capacity:2 () in
  check_int "empty" 0 (Packed.Table.length t);
  (* grow well past the initial capacity, negatives included *)
  for i = -40 to 40 do
    Packed.Table.set t (i * 7) (i * i)
  done;
  check_int "length" 81 (Packed.Table.length t);
  check_bool "mem" true (Packed.Table.mem t (-280));
  check_bool "not mem" false (Packed.Table.mem t 1);
  check_int "find" 1600 (Packed.Table.find_default t (-280) ~default:(-1));
  check_int "default" (-1) (Packed.Table.find_default t 3 ~default:(-1));
  Packed.Table.set t 0 99;
  check_int "replace" 99 (Packed.Table.find_default t 0 ~default:(-1));
  check_int "replace keeps length" 81 (Packed.Table.length t);
  let sum = Packed.Table.fold t ~init:0 ~f:(fun acc _ v -> acc + v) in
  let sum' = ref 0 in
  Packed.Table.iter t ~f:(fun _ v -> sum' := !sum' + v);
  check_int "fold = iter" sum !sum';
  Packed.Table.clear t;
  check_int "cleared" 0 (Packed.Table.length t);
  check_bool "cleared mem" false (Packed.Table.mem t 0)

(* -------------------------- Packed.Set --------------------------- *)

let test_set_basics () =
  let s = Packed.Set.create 10 in
  check_int "empty" 0 (Packed.Set.cardinal s);
  Packed.Set.add s 3;
  Packed.Set.add s 9;
  Packed.Set.add s 3;
  check_int "dedup cardinal" 2 (Packed.Set.cardinal s);
  check_bool "mem" true (Packed.Set.mem s 9);
  check_bool "not mem" false (Packed.Set.mem s 0)

(* ------------------------- Bfs.Frontier -------------------------- *)

let test_frontier_ball_matches_batch () =
  let g = Graph.path_graph 10 in
  let f = Bfs.Frontier.create g in
  List.iter
    (fun (c, r) ->
      check_nodes
        (Printf.sprintf "ball c=%d r=%d" c r)
        (Bfs.ball g [ c ] r)
        (Bfs.Frontier.ball f c r))
    [ (4, 2); (4, 0); (0, 3); (9, 100); (5, 1) ];
  (* ball must not reveal *)
  check_bool "ball reveals nothing" false (Bfs.Frontier.revealed f 4)

let test_frontier_reveal_basics () =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:7 ~cols:7 in
  let g = Topology.Grid2d.graph grid in
  let f = Bfs.Frontier.create g in
  let center = Topology.Grid2d.node grid ~row:3 ~col:3 in
  let fresh1 = Bfs.Frontier.reveal f center 2 in
  check_nodes "first reveal = ball" (Bfs.ball g [ center ] 2) fresh1;
  check_nodes "re-reveal is empty" [] (Bfs.Frontier.reveal f center 2);
  check_nodes "smaller re-reveal is empty" []
    (Bfs.Frontier.reveal f center 1);
  (* growing the radius yields exactly the new shell *)
  let shell = Bfs.Frontier.reveal f center 3 in
  let ball3 = Bfs.ball g [ center ] 3 in
  check_nodes "shell = ball3 - ball2"
    (List.filter (fun v -> not (List.mem v fresh1)) ball3)
    shell;
  List.iter
    (fun v -> check_bool "revealed" true (Bfs.Frontier.revealed f v))
    ball3;
  let outside = Topology.Grid2d.node grid ~row:0 ~col:0 in
  check_bool "outside unrevealed" false (Bfs.Frontier.revealed f outside)

let test_frontier_disconnected () =
  let g = Graph.create ~n:5 ~edges:[ (0, 1); (2, 3) ] in
  let f = Bfs.Frontier.create g in
  check_nodes "component only" [ 0; 1 ] (Bfs.Frontier.reveal f 0 10);
  check_nodes "other component" [ 2; 3 ] (Bfs.Frontier.reveal f 3 10);
  check_bool "isolated unrevealed" false (Bfs.Frontier.revealed f 4)

(* ----------------------- seeded properties ----------------------- *)

let config = { Proptest.Runner.default_config with seed = 0xF40; cases = 60 }

let prop name gen print p =
  Alcotest.test_case name `Quick (fun () ->
      Proptest.Runner.check_exn ~config ~name ~print gen p)

module Gen = Proptest.Gen

(* a grid plus a sequence of (center, radius) operations on it *)
let grid_ops_gen =
  Gen.bind (Proptest.Domain_gen.simple_grid ~rows:(2, 8) ~cols:(2, 8))
    (fun grid ->
      let g = Topology.Grid2d.graph grid in
      Gen.map
        (fun ops -> (g, ops))
        (Gen.list ~min_len:1 ~max_len:12
           (Gen.pair (Gen.int_range 0 (Graph.n g - 1)) (Gen.int_range 0 6))))

let print_grid_ops (g, ops) =
  Printf.sprintf "n=%d ops=[%s]" (Graph.n g)
    (String.concat ";"
       (List.map (fun (c, r) -> Printf.sprintf "%d@%d" c r) ops))

let prop_frontier_ball =
  prop "Frontier.ball = Bfs.ball (order included)" grid_ops_gen print_grid_ops
    (fun (g, ops) ->
      let f = Bfs.Frontier.create g in
      List.for_all (fun (c, r) -> Bfs.Frontier.ball f c r = Bfs.ball g [ c ] r) ops)

let prop_frontier_reveal =
  prop "Frontier.reveal = ball-and-filter reference" grid_ops_gen
    print_grid_ops (fun (g, ops) ->
      let f = Bfs.Frontier.create g in
      let seen = Hashtbl.create 64 in
      List.for_all
        (fun (c, r) ->
          let expect =
            List.filter (fun v -> not (Hashtbl.mem seen v)) (Bfs.ball g [ c ] r)
          in
          List.iter (fun v -> Hashtbl.replace seen v ()) expect;
          Bfs.Frontier.reveal f c r = expect
          && Graph.fold_nodes g ~init:true ~f:(fun acc v ->
                 acc && Bfs.Frontier.revealed f v = Hashtbl.mem seen v))
        ops)

let table_ops_gen =
  Gen.list ~max_len:60
    (Gen.pair (Gen.int_range (-50) 50) (Gen.int_range 0 1000))

let print_table_ops ops =
  String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%d:%d" k v) ops)

let prop_table_vs_hashtbl =
  prop "Packed.Table = Hashtbl reference" table_ops_gen print_table_ops
    (fun ops ->
      let t = Packed.Table.create ~capacity:1 () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          (* spread keys through the packed-coordinate shape too *)
          let k = Packed.Coord.pack k (k * 3) in
          Packed.Table.set t k v;
          Hashtbl.replace h k v)
        ops;
      Packed.Table.length t = Hashtbl.length h
      && Hashtbl.fold
           (fun k v acc ->
             acc
             && Packed.Table.find_opt t k = Some v
             && Packed.Table.mem t k)
           h true
      && Packed.Table.fold t ~init:true ~f:(fun acc k v ->
             acc && Hashtbl.find_opt h k = Some v))

let set_ops_gen =
  Gen.bind (Gen.int_range 1 60) (fun n ->
      Gen.map
        (fun xs -> (n, xs))
        (Gen.list ~max_len:40 (Gen.int_range 0 (n - 1))))

let print_set_ops (n, xs) =
  Printf.sprintf "n=%d add=[%s]" n
    (String.concat ";" (List.map string_of_int xs))

let prop_set_vs_reference =
  prop "Packed.Set = reference" set_ops_gen print_set_ops (fun (n, xs) ->
      let s = Packed.Set.create n in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun x ->
          Packed.Set.add s x;
          Hashtbl.replace seen x ())
        xs;
      Packed.Set.cardinal s = Hashtbl.length seen
      && List.for_all
           (fun x -> Packed.Set.mem s x = Hashtbl.mem seen x)
           (List.init n Fun.id))

let coord_gen =
  let extent = (1 lsl 29) - 2 in
  Gen.pair (Gen.int_range (-extent) extent) (Gen.int_range (-extent) extent)

let prop_coord_roundtrip =
  prop "Coord roundtrip over the full range"
    (Gen.pair coord_gen coord_gen)
    (fun ((r1, c1), (r2, c2)) ->
      Printf.sprintf "(%d,%d) (%d,%d)" r1 c1 r2 c2)
    (fun ((r1, c1), (r2, c2)) ->
      Packed.Coord.unpack (Packed.Coord.pack r1 c1) = (r1, c1)
      && compare (Packed.Coord.pack r1 c1) (Packed.Coord.pack r2 c2)
         = compare (r1, c1) (r2, c2))

let () =
  Alcotest.run "bfs-incremental"
    [
      ( "packed-coord",
        [
          Alcotest.test_case "roundtrip" `Quick test_coord_roundtrip;
          Alcotest.test_case "neighbor steps" `Quick test_coord_steps;
          Alcotest.test_case "lexicographic" `Quick test_coord_order_is_lexicographic;
          Alcotest.test_case "range checks" `Quick test_coord_range;
        ] );
      ( "packed-containers",
        [
          Alcotest.test_case "table basics" `Quick test_table_basics;
          Alcotest.test_case "set basics" `Quick test_set_basics;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "ball matches batch" `Quick test_frontier_ball_matches_batch;
          Alcotest.test_case "reveal basics" `Quick test_frontier_reveal_basics;
          Alcotest.test_case "disconnected" `Quick test_frontier_disconnected;
        ] );
      ( "properties",
        [
          prop_frontier_ball;
          prop_frontier_reveal;
          prop_table_vs_hashtbl;
          prop_set_vs_reference;
          prop_coord_roundtrip;
        ] );
    ]
