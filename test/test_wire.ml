(* Harness.Wire: the shared length-prefixed framing codec.

   The robustness contract under test: decoding is total (frames or a
   typed error, never an exception), a hostile declared length is
   rejected before any allocation, and a decoder that errored stays
   poisoned.  The wire-codec fuzz target sweeps the same properties
   over random mangled streams; these are the deterministic anchors. *)

module Wire = Harness.Wire

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let frame_eq (t1, p1) { Wire.tag; payload } = t1 = tag && p1 = payload

let decode_all dec =
  let rec go acc =
    match Wire.decode dec with
    | Ok None -> (List.rev acc, None)
    | Ok (Some f) -> go (f :: acc)
    | Error e -> (List.rev acc, Some e)
  in
  go []

let test_roundtrip () =
  let dec = Wire.decoder ~tags:"RE" ~bare:"H" () in
  let frames = [ ('R', "result"); ('E', ""); ('R', "a\nb\tc\x00d") ] in
  List.iter
    (fun (tag, payload) ->
      Wire.feed_string dec (Bytes.to_string (Wire.encode ~tag payload)))
    frames;
  Wire.feed_string dec (Bytes.to_string (Wire.encode_bare 'H'));
  let decoded, err = decode_all dec in
  check_bool "no error" true (err = None);
  check_int "frame count" 4 (List.length decoded);
  List.iteri
    (fun i f ->
      let expect = if i = 3 then ('H', "") else List.nth frames i in
      check_bool (Printf.sprintf "frame %d" i) true (frame_eq expect f))
    decoded;
  check_int "buffer drained" 0 (Wire.buffered dec)

let test_byte_at_a_time () =
  let dec = Wire.decoder ~tags:"R" () in
  let wire = Bytes.to_string (Wire.encode ~tag:'R' "split me") in
  let seen = ref [] in
  String.iter
    (fun c ->
      Wire.feed_string dec (String.make 1 c);
      match Wire.decode dec with
      | Ok (Some f) -> seen := f :: !seen
      | Ok None -> ()
      | Error e -> Alcotest.failf "unexpected error: %s" (Wire.error_to_string e))
    wire;
  match !seen with
  | [ f ] ->
      check_bool "the one frame arrives on the last byte" true
        (frame_eq ('R', "split me") f)
  | l -> Alcotest.failf "expected exactly one frame, got %d" (List.length l)

let test_unknown_tag_poisons () =
  let dec = Wire.decoder ~tags:"R" ~bare:"H" () in
  Wire.feed_string dec "Z";
  (match Wire.decode dec with
  | Error (Wire.Unknown_tag 'Z') -> ()
  | other ->
      Alcotest.failf "expected Unknown_tag 'Z', got %s"
        (match other with
        | Ok _ -> "Ok"
        | Error e -> Wire.error_to_string e));
  (* the error is sticky, and feeding more is a no-op *)
  Wire.feed_string dec (Bytes.to_string (Wire.encode ~tag:'R' "late"));
  (match Wire.decode dec with
  | Error (Wire.Unknown_tag 'Z') -> ()
  | _ -> Alcotest.fail "poisoned decoder must keep returning its error");
  check_int "poisoned buffer holds nothing" 0 (Wire.buffered dec)

let test_oversized_before_allocation () =
  let dec = Wire.decoder ~max_payload:1024 ~tags:"R" () in
  (* header declaring 256 MiB: error on the 5 header bytes alone *)
  let header = Bytes.create 5 in
  Bytes.set header 0 'R';
  Bytes.set_int32_be header 1 (Int32.of_int (256 * 1024 * 1024));
  Wire.feed_string dec (Bytes.to_string header);
  (match Wire.decode dec with
  | Error (Wire.Oversized { tag = 'R'; declared; limit }) ->
      check_int "declared" (256 * 1024 * 1024) declared;
      check_int "limit" 1024 limit
  | _ -> Alcotest.fail "expected Oversized");
  check_bool "nothing proportional to the declared length is held" true
    (Wire.buffered dec <= 5)

let test_negative_length () =
  let dec = Wire.decoder ~tags:"R" () in
  let header = Bytes.create 5 in
  Bytes.set header 0 'R';
  Bytes.set_int32_be header 1 0x80000001l;
  Wire.feed_string dec (Bytes.to_string header);
  match Wire.decode dec with
  | Error (Wire.Negative_length { tag = 'R' }) -> ()
  | _ -> Alcotest.fail "expected Negative_length"

let test_exact_limit_is_fine () =
  let dec = Wire.decoder ~max_payload:8 ~tags:"R" () in
  Wire.feed_string dec (Bytes.to_string (Wire.encode ~tag:'R' "12345678"));
  match Wire.decode dec with
  | Ok (Some f) -> check_string "payload at the cap" "12345678" f.Wire.payload
  | _ -> Alcotest.fail "a payload of exactly max_payload must decode"

let test_truncated_is_silent () =
  let dec = Wire.decoder ~tags:"R" () in
  let wire = Bytes.to_string (Wire.encode ~tag:'R' "whole payload") in
  Wire.feed_string dec (String.sub wire 0 (String.length wire - 3));
  (match Wire.decode dec with
  | Ok None -> ()
  | _ -> Alcotest.fail "a truncated frame is just not-yet-complete");
  Wire.feed_string dec (String.sub wire (String.length wire - 3) 3);
  match Wire.decode dec with
  | Ok (Some f) -> check_bool "completes later" true (frame_eq ('R', "whole payload") f)
  | _ -> Alcotest.fail "frame must complete once the bytes arrive"

let test_overlapping_alphabets_rejected () =
  Alcotest.check_raises "tags/bare overlap"
    (Invalid_argument "Wire.decoder: a tag cannot be both framed and bare")
    (fun () -> ignore (Wire.decoder ~tags:"RH" ~bare:"H" ()))

let test_supervisor_compat_bytes () =
  (* the extraction must not have changed the supervisor's wire bytes:
     'H' is one bare byte, a framed reply is tag + BE length + payload *)
  check_string "bare heartbeat byte" "H"
    (Bytes.to_string (Wire.encode_bare 'H'));
  check_string "framed reply image" "R\x00\x00\x00\x02ok"
    (Bytes.to_string (Wire.encode ~tag:'R' "ok"))

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "byte-at-a-time" `Quick test_byte_at_a_time;
          Alcotest.test_case "unknown tag poisons" `Quick test_unknown_tag_poisons;
          Alcotest.test_case "oversized before allocation" `Quick
            test_oversized_before_allocation;
          Alcotest.test_case "negative length" `Quick test_negative_length;
          Alcotest.test_case "exact limit decodes" `Quick test_exact_limit_is_fine;
          Alcotest.test_case "truncation is silent" `Quick test_truncated_is_silent;
          Alcotest.test_case "overlapping alphabets rejected" `Quick
            test_overlapping_alphabets_rejected;
          Alcotest.test_case "supervisor wire bytes unchanged" `Quick
            test_supervisor_compat_bytes;
        ] );
    ]
