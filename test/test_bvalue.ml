open Grid_graph
module Bv = Colorings.Bvalue
module B = Colorings.Brute
module C = Colorings.Coloring
module G2 = Topology.Grid2d

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_a_value_cases () =
  let colors = [| 0; 1; 2; 0 |] in
  check_int "0 vs 1" (-1) (Bv.a_value colors 0 1);
  check_int "1 vs 0" 1 (Bv.a_value colors 1 0);
  check_int "special left" 0 (Bv.a_value colors 2 0);
  check_int "special right" 0 (Bv.a_value colors 1 2);
  check_int "same non-special" 0 (Bv.a_value colors 0 3);
  check_bool "antisymmetric" true
    (Bv.a_value colors 0 1 + Bv.a_value colors 1 0 = 0)

let test_a_value_range_check () =
  Alcotest.check_raises "bad color" (Invalid_argument "Bvalue: color 3 outside {0,1,2}")
    (fun () -> ignore (Bv.a_value [| 3; 0 |] 0 1))

let test_indicator () =
  let colors = [| 0; 2; 1 |] in
  check_int "not special" 0 (Bv.indicator colors 0);
  check_int "special" 1 (Bv.indicator colors 1)

let test_b_path_examples () =
  (* The paper's example: 3 -> 2 -> 1 -> 2 -> 1 -> 2 -> 3 has b = 0
     (paper colors 1,2,3 are our 0,1,2). *)
  let colors = [| 2; 1; 0; 1; 0; 1; 2 |] in
  check_int "figure 3 path" 0 (Bv.b_path colors [ 0; 1; 2; 3; 4; 5; 6 ]);
  (* 3 -> 2 -> 1 -> 2 -> 1 -> 3 has b = 1. *)
  let colors2 = [| 2; 1; 0; 1; 0; 2 |] in
  check_int "b = 1 path" 1 (Bv.b_path colors2 [ 0; 1; 2; 3; 4; 5 ]);
  check_int "reverse negates" (-1) (Bv.b_path colors2 [ 5; 4; 3; 2; 1; 0 ]);
  check_int "empty path" 0 (Bv.b_path colors2 []);
  check_int "single node" 0 (Bv.b_path colors2 [ 3 ])

let test_b_cycle_closing_arc () =
  let colors = [| 0; 1; 2 |] in
  (* b(cycle 0-1-2) = a(0,1) + a(1,2) + a(2,0) = -1 + 0 + 0. *)
  check_int "cycle" (-1) (Bv.b_cycle colors [ 0; 1; 2 ])

(* Lemma 3.3: every properly colored 4-cycle has b = 0 — exhaustively. *)
let test_lemma_3_3_exhaustive () =
  let square = Graph.cycle_graph 4 in
  let count = ref 0 in
  B.iter_colorings square ~colors:3 (fun colors ->
      incr count;
      check_int "cell b" 0 (Bv.b_cycle colors [ 0; 1; 2; 3 ]);
      check_bool "checker agrees" true
        (Bv.check_cell_cancellation square colors [ 0; 1; 2; 3 ]));
  check_bool "enumerated some" true (!count > 0)

let test_cell_checker_rejects_malformed () =
  let square = Graph.cycle_graph 4 in
  (* Improper coloring: the checker must return false, not claim b=0. *)
  check_bool "improper rejected" false
    (Bv.check_cell_cancellation square [| 0; 0; 1; 2 |] [ 0; 1; 2; 3 ]);
  (* Not a 4-cycle of the graph. *)
  let path = Graph.path_graph 4 in
  check_bool "non-cycle rejected" false
    (Bv.check_cell_cancellation path [| 0; 1; 0; 1 |] [ 0; 1; 2; 3 ])

(* Lemma 3.4: b of simple rectangle cycles in a properly 3-colored grid
   is zero — over all proper colorings of a small grid. *)
let test_lemma_3_4_exhaustive () =
  let grid = G2.create G2.Simple ~rows:3 ~cols:3 in
  let g = G2.graph grid in
  let rects =
    [ (0, 1, 0, 1); (0, 2, 0, 2); (1, 2, 0, 2); (0, 1, 1, 2) ]
  in
  let checked = ref 0 in
  B.iter_colorings g ~colors:3 (fun colors ->
      incr checked;
      List.iter
        (fun (top, bottom, left, right) ->
          let cycle = Bv.rectangle_cycle grid ~top ~bottom ~left ~right in
          check_bool "cycle valid" true (Walk.is_cycle g cycle);
          check_int "b = 0" 0 (Bv.b_cycle colors cycle);
          check_bool "checker" true (Bv.grid_cycle_b_is_zero grid colors cycle))
        rects);
  check_bool "many colorings" true (!checked > 100)

let test_rectangle_cycle_shape () =
  let grid = G2.create G2.Simple ~rows:5 ~cols:6 in
  let cycle = Bv.rectangle_cycle grid ~top:1 ~bottom:3 ~left:0 ~right:4 in
  check_int "perimeter" (2 * ((3 - 1) + (4 - 0))) (List.length cycle);
  check_bool "is simple cycle" true (Walk.is_cycle (G2.graph grid) cycle);
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Bvalue.rectangle_cycle: degenerate rectangle") (fun () ->
      ignore (Bv.rectangle_cycle grid ~top:2 ~bottom:2 ~left:0 ~right:3))

(* Lemma 3.5: parity of b over random proper colorings of random paths. *)
let proper_path_coloring_gen =
  (* Encode a proper 3-coloring of a path as a start color plus a list of
     nonzero increments mod 3 — this bijects with proper path colorings. *)
  Proptest.Gen.(
    bind (int_range 1 30) (fun len ->
        bind (int_range 0 2) (fun first ->
            map
              (fun moves ->
                let arr = Array.make (len + 1) first in
                List.iteri (fun i m -> arr.(i + 1) <- (arr.(i) + m) mod 3) moves;
                (len, arr))
              (list_size len (int_range 1 2)))))

let print_colors arr =
  "[" ^ String.concat ";" (List.map string_of_int (Array.to_list arr)) ^ "]"

let proptest name ~seed ~cases ~print gen p =
  Alcotest.test_case name `Quick (fun () ->
      Proptest.Runner.check_exn
        ~config:{ Proptest.Runner.default_config with seed; cases }
        ~name ~print gen p)

let prop_lemma_3_5_paths =
  proptest "Lemma 3.5 parity on proper paths" ~seed:0xB7A1 ~cases:500
    ~print:(fun (len, colors) ->
      Printf.sprintf "len=%d colors=%s" len (print_colors colors))
    proper_path_coloring_gen
    (fun (len, colors) ->
      let path = List.init (len + 1) (fun i -> i) in
      Bv.check_parity_path colors path
      && (Bv.b_path colors path - Bv.path_parity colors path) mod 2 = 0)

(* Lemma 3.5 for cycles: b(C) = length(C) mod 2, over proper colorings of
   small cycles (not necessarily in grids). *)
let test_lemma_3_5_cycles_exhaustive () =
  List.iter
    (fun len ->
      let g = Graph.cycle_graph len in
      B.iter_colorings g ~colors:3 (fun colors ->
          let cycle = List.init len (fun i -> i) in
          check_bool
            (Printf.sprintf "parity for %d-cycle" len)
            true
            (Bv.check_parity_cycle colors cycle)))
    [ 3; 4; 5; 6; 7 ]

(* b-value additivity under concatenation. *)
let prop_b_concat =
  proptest "b additive under concat" ~seed:0xB7A2 ~cases:300
    ~print:(fun (l1, l2, colors) ->
      Printf.sprintf "l1=%d l2=%d colors=%s" l1 l2 (print_colors colors))
    Proptest.Gen.(
      bind (int_range 1 10) (fun l1 ->
          bind (int_range 1 10) (fun l2 ->
              map
                (fun colors -> (l1, l2, Array.of_list colors))
                (list_size (l1 + l2 + 1) (int_range 0 2)))))
    (fun (l1, l2, colors) ->
      let p1 = List.init (l1 + 1) (fun i -> i) in
      let p2 = List.init (l2 + 1) (fun i -> i + l1) in
      let whole = List.init (l1 + l2 + 1) (fun i -> i) in
      Bv.b_path colors whole = Bv.b_path colors p1 + Bv.b_path colors p2)

let random_colors_gen max_len =
  Proptest.Gen.(
    bind (int_range 0 max_len) (fun len ->
        map (fun colors -> Array.of_list colors)
          (list_size (len + 1) (int_range 0 2))))

let prop_b_reverse_negates =
  proptest "b negates under reversal" ~seed:0xB7A3 ~cases:300
    ~print:print_colors (random_colors_gen 15)
    (fun colors ->
      let path = List.init (Array.length colors) (fun i -> i) in
      Bv.b_path colors (Walk.reverse path) = -Bv.b_path colors path)

(* b is bounded by the length. *)
let prop_b_bounded =
  proptest "|b| <= length" ~seed:0xB7A4 ~cases:300 ~print:print_colors
    (random_colors_gen 20)
    (fun colors ->
      let path = List.init (Array.length colors) (fun i -> i) in
      abs (Bv.b_path colors path) <= Walk.length path)

(* Equation (1): two opposite row cycles of a properly 3-colored
   cylindrical grid have b-values summing to zero — exhaustive on a small
   cylinder. *)
let test_equation_1_cylinder () =
  let grid = G2.create G2.Cylindrical ~rows:3 ~cols:3 in
  let g = G2.graph grid in
  let east r = G2.row_nodes grid r in
  let west r = Walk.reverse (G2.row_nodes grid r) in
  let count = ref 0 in
  B.iter_colorings g ~colors:3 (fun colors ->
      incr count;
      check_int "rows 0,1" 0 (Bv.b_cycle colors (east 0) + Bv.b_cycle colors (west 1));
      check_int "rows 0,2" 0 (Bv.b_cycle colors (east 0) + Bv.b_cycle colors (west 2)));
  check_bool "nontrivial enumeration" true (!count > 0)

(* Odd-column row cycles have odd b-value in any proper 3-coloring. *)
let test_odd_row_b_odd () =
  let grid = G2.create G2.Cylindrical ~rows:2 ~cols:5 in
  let g = G2.graph grid in
  B.iter_colorings g ~colors:3 (fun colors ->
      check_int "odd" 1 (abs (Bv.b_cycle colors (G2.row_nodes grid 0)) mod 2))

let () =
  Alcotest.run "bvalue"
    [
      ( "definitions",
        [
          Alcotest.test_case "a-value cases" `Quick test_a_value_cases;
          Alcotest.test_case "a-value range" `Quick test_a_value_range_check;
          Alcotest.test_case "indicator" `Quick test_indicator;
          Alcotest.test_case "b path examples" `Quick test_b_path_examples;
          Alcotest.test_case "b cycle closing arc" `Quick test_b_cycle_closing_arc;
        ] );
      ( "lemma-3.3",
        [
          Alcotest.test_case "exhaustive" `Quick test_lemma_3_3_exhaustive;
          Alcotest.test_case "malformed rejected" `Quick test_cell_checker_rejects_malformed;
        ] );
      ( "lemma-3.4",
        [
          Alcotest.test_case "exhaustive small grid" `Slow test_lemma_3_4_exhaustive;
          Alcotest.test_case "rectangle shape" `Quick test_rectangle_cycle_shape;
        ] );
      ( "lemma-3.5",
        [
          prop_lemma_3_5_paths;
          Alcotest.test_case "cycles exhaustive" `Quick test_lemma_3_5_cycles_exhaustive;
        ] );
      ("b-algebra", [ prop_b_concat; prop_b_reverse_negates; prop_b_bounded ]);
      ( "equation-1",
        [
          Alcotest.test_case "cylinder cancellation" `Slow test_equation_1_cylinder;
          Alcotest.test_case "odd rows odd b" `Quick test_odd_row_b_odd;
        ] );
    ]
