open Grid_graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_distances_path () =
  let g = Graph.path_graph 6 in
  let d = Bfs.distances_from g [ 0 ] in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5 |] d

let test_distances_multi_source () =
  let g = Graph.path_graph 7 in
  let d = Bfs.distances_from g [ 0; 6 ] in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 2; 1; 0 |] d

let test_distance_disconnected () =
  let g = Graph.create ~n:4 ~edges:[ (0, 1); (2, 3) ] in
  check_int "unreachable" max_int (Bfs.distance g 0 3);
  check_int "reachable" 1 (Bfs.distance g 2 3)

let test_ball () =
  let g = Graph.path_graph 10 in
  Alcotest.(check (list int)) "ball radius 2" [ 2; 3; 4; 5; 6 ] (Bfs.ball g [ 4 ] 2);
  Alcotest.(check (list int)) "ball radius 0" [ 4 ] (Bfs.ball g [ 4 ] 0);
  Alcotest.(check (list int)) "two centers" [ 0; 1; 8; 9 ] (Bfs.ball g [ 0; 9 ] 1)

let test_ball_grid_diamond () =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:9 ~cols:9 in
  let g = Topology.Grid2d.graph grid in
  let center = Topology.Grid2d.node grid ~row:4 ~col:4 in
  let ball = Bfs.ball g [ center ] 2 in
  (* The diamond of radius 2 away from borders has 13 nodes. *)
  check_int "diamond size" 13 (List.length ball);
  List.iter
    (fun v ->
      let r, c = Topology.Grid2d.coords grid v in
      check_bool "within L1 radius" true (abs (r - 4) + abs (c - 4) <= 2))
    ball

let test_eccentricity () =
  let g = Graph.path_graph 5 in
  check_int "end" 4 (Bfs.eccentricity g 0);
  check_int "middle" 2 (Bfs.eccentricity g 2);
  let disconnected = Graph.create ~n:3 ~edges:[ (0, 1) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Bfs.eccentricity: disconnected graph") (fun () ->
      ignore (Bfs.eccentricity disconnected 0))

let test_shortest_path () =
  let g = Graph.cycle_graph 6 in
  (match Bfs.shortest_path g 0 3 with
  | Some p ->
      check_int "length" 4 (List.length p);
      check_bool "is path" true (Walk.is_path g p)
  | None -> Alcotest.fail "expected a path");
  let disconnected = Graph.create ~n:3 ~edges:[ (0, 1) ] in
  check_bool "none" true (Bfs.shortest_path disconnected 0 2 = None)

let test_components () =
  let g = Graph.create ~n:7 ~edges:[ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.(check (list (list int)))
    "components"
    [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ]; [ 6 ] ]
    (Components.components g);
  Alcotest.(check (list int)) "component_of" [ 4; 5 ] (Components.component_of g 5);
  check_bool "not connected" false (Components.is_connected g);
  check_bool "path connected" true (Components.is_connected (Graph.path_graph 4))

let test_components_within () =
  let g = Graph.path_graph 10 in
  Alcotest.(check (list (list int)))
    "subset splits"
    [ [ 0; 1 ]; [ 3 ]; [ 5; 6; 7 ] ]
    (Components.components_within g [ 0; 1; 3; 5; 6; 7 ]);
  check_bool "connected subset" true (Components.is_connected_subset g [ 2; 3; 4 ]);
  check_bool "disconnected subset" false (Components.is_connected_subset g [ 2; 4 ])

let test_bipartite () =
  check_bool "path" true (Bipartite.is_bipartite (Graph.path_graph 5));
  check_bool "even cycle" true (Bipartite.is_bipartite (Graph.cycle_graph 6));
  check_bool "odd cycle" false (Bipartite.is_bipartite (Graph.cycle_graph 5));
  check_bool "K4" false (Bipartite.is_bipartite (Graph.complete 4))

let test_two_color_proper () =
  let g = Graph.cycle_graph 8 in
  match Bipartite.two_color g with
  | None -> Alcotest.fail "expected bipartite"
  | Some side ->
      Graph.iter_edges g (fun u v ->
          check_bool "sides differ" true (side.(u) <> side.(v)));
      check_int "canonical side of node 0" 0 side.(0)

let test_odd_cycle_witness () =
  let g = Graph.cycle_graph 7 in
  match Bipartite.odd_cycle g with
  | None -> Alcotest.fail "expected odd cycle"
  | Some cycle ->
      check_bool "odd length" true (List.length cycle mod 2 = 1);
      check_bool "is cycle" true (Walk.is_cycle g cycle)

let test_odd_cycle_in_larger_graph () =
  (* A triangle hanging off a path. *)
  let g = Graph.create ~n:6 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 3) ] in
  match Bipartite.odd_cycle g with
  | None -> Alcotest.fail "expected odd cycle"
  | Some cycle ->
      check_int "triangle" 3 (List.length cycle);
      check_bool "is cycle" true (Walk.is_cycle g cycle)

let test_subgraph_induced () =
  let g = Graph.cycle_graph 6 in
  let emb = Subgraph.induced g [ 0; 1; 2; 4 ] in
  check_int "nodes" 4 (Graph.n emb.Subgraph.graph);
  check_int "edges" 2 (Graph.m emb.Subgraph.graph);
  check_bool "mem host" true (Subgraph.mem_host emb 4);
  check_bool "not mem host" false (Subgraph.mem_host emb 3);
  check_int "roundtrip" 4 emb.Subgraph.to_host.(Subgraph.of_host_exn emb 4)

let test_subgraph_dedup () =
  let g = Graph.path_graph 4 in
  let emb = Subgraph.induced g [ 2; 1; 1; 2 ] in
  check_int "deduplicated" 2 (Graph.n emb.Subgraph.graph);
  check_int "edge kept" 1 (Graph.m emb.Subgraph.graph)

let grid_gen = Proptest.Domain_gen.simple_grid ~rows:(2, 8) ~cols:(2, 8)

let print_grid grid =
  Printf.sprintf "simple grid %dx%d" (Topology.Grid2d.rows grid)
    (Topology.Grid2d.cols grid)

let config = { Proptest.Runner.default_config with seed = 0xBF5; cases = 50 }

let prop name p =
  Alcotest.test_case name `Quick (fun () ->
      Proptest.Runner.check_exn ~config ~name ~print:print_grid grid_gen p)

let prop_grid_distance_is_l1 =
  prop "simple grid distance = L1" (fun grid ->
      let g = Topology.Grid2d.graph grid in
      let v0 = 0 in
      let d = Bfs.distances_from g [ v0 ] in
      Graph.fold_nodes g ~init:true ~f:(fun acc v ->
          let r, c = Topology.Grid2d.coords grid v in
          acc && d.(v) = r + c))

let prop_ball_monotone =
  prop "balls grow with radius" (fun grid ->
      let g = Topology.Grid2d.graph grid in
      let b1 = Bfs.ball g [ 0 ] 1 and b2 = Bfs.ball g [ 0 ] 2 in
      List.for_all (fun v -> List.mem v b2) b1)

let () =
  Alcotest.run "bfs-and-structure"
    [
      ( "bfs",
        [
          Alcotest.test_case "distances path" `Quick test_distances_path;
          Alcotest.test_case "multi source" `Quick test_distances_multi_source;
          Alcotest.test_case "disconnected" `Quick test_distance_disconnected;
          Alcotest.test_case "ball" `Quick test_ball;
          Alcotest.test_case "grid diamond" `Quick test_ball_grid_diamond;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
        ] );
      ( "components",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "components within" `Quick test_components_within;
        ] );
      ( "bipartite",
        [
          Alcotest.test_case "bipartite" `Quick test_bipartite;
          Alcotest.test_case "two color proper" `Quick test_two_color_proper;
          Alcotest.test_case "odd cycle witness" `Quick test_odd_cycle_witness;
          Alcotest.test_case "odd cycle in larger graph" `Quick test_odd_cycle_in_larger_graph;
        ] );
      ( "subgraph",
        [
          Alcotest.test_case "induced" `Quick test_subgraph_induced;
          Alcotest.test_case "dedup" `Quick test_subgraph_dedup;
        ] );
      ("bfs-properties", [ prop_grid_distance_is_l1; prop_ball_monotone ]);
    ]
