(* Goldens for the job-kind catalog: the payload encodings are wire
   format (serve.exe clients pin them), and a catalog-dispatched job
   must produce byte-identical output to the local sweep cell it
   mirrors — that equality is the server determinism contract. *)

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* Pinned payloads: these strings travel over the socket.  Changing a
   cell key format is a wire-protocol break, not a cosmetic edit. *)
let test_pinned_keys () =
  let c1 =
    Jobs_catalog.thm1_cell ~bulk:false ~validate:false ~t:2 ~k:7 ~side:120
      ~algo:"greedy" ()
  in
  check_string "thm1 key" "t=2 k=7 side=120 algo=greedy" c1.Harness.Sweep.key;
  let c2 = Jobs_catalog.thm2_cell ~bulk:false ~side:9 ~wrap:"torus" ~algo:"greedy" () in
  check_string "thm2 key" "wrap=torus side=9 algo=greedy" c2.Harness.Sweep.key;
  let c3 = Jobs_catalog.thm3_cell ~bulk:false ~k:3 ~gadgets:4 ~algo:"greedy" () in
  check_string "thm3 key" "k=3 gadgets=4 algo=greedy" c3.Harness.Sweep.key

(* A job whose payload is a sweep cell's key produces the cell's exact
   result string — for every kind, through the public handler. *)
let test_catalog_matches_sweep_cells () =
  let pairs =
    [
      ( "thm1",
        Jobs_catalog.thm1_cell ~bulk:false ~validate:false ~t:1 ~k:5 ~side:60
          ~algo:"greedy" () );
      ( "thm1",
        Jobs_catalog.thm1_cell ~bulk:false ~validate:false ~t:2 ~k:6 ~side:60
          ~algo:"ael" () );
      ("thm2", Jobs_catalog.thm2_cell ~bulk:false ~side:9 ~wrap:"torus" ~algo:"greedy" ());
      ( "thm2",
        Jobs_catalog.thm2_cell ~bulk:false ~side:7 ~wrap:"cylinder" ~algo:"greedy" () );
      ("thm3", Jobs_catalog.thm3_cell ~bulk:false ~k:3 ~gadgets:4 ~algo:"gadget-rows" ());
    ]
  in
  List.iter
    (fun (kind, cell) ->
      let local = cell.Harness.Sweep.run () in
      let dispatched =
        Jobs_catalog.handler ~kind ~payload:cell.Harness.Sweep.key
      in
      check_string (kind ^ " " ^ cell.Harness.Sweep.key) local dispatched)
    pairs

(* Bulk and memo are execution strategies, not semantics: every
   combination yields the plain cell's bytes. *)
let test_cell_variants_agree () =
  let base ~bulk ~memo =
    (Jobs_catalog.thm1_cell ~memo ~bulk ~validate:false ~t:1 ~k:5 ~side:60
       ~algo:"stripes" ())
      .Harness.Sweep.run ()
  in
  let plain = base ~bulk:false ~memo:false in
  check_string "bulk" plain (base ~bulk:true ~memo:false);
  check_string "memo" plain (base ~bulk:false ~memo:true);
  check_string "memo warmed" plain (base ~bulk:false ~memo:true);
  check_string "bulk+memo" plain (base ~bulk:true ~memo:true)

(* Pinned result prefix: the report layout itself is part of what the
   server replays to historical clients. *)
let test_pinned_result_shape () =
  let out = Jobs_catalog.handler ~kind:"thm1" ~payload:"t=1 k=5 side=60 algo=greedy" in
  let has needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i =
      i + nl <= hl && (String.sub out i nl = needle || go (i + 1))
    in
    go 0
  in
  check_bool "header" true (has "thm1 vs greedy (T=1) on 60^2 grid, b-target k=5:");
  check_bool "theory line" true (has "guaranteed by theory: false (needs k > 4T+4)")

(* Fuzz jobs: the payload format and the one-line PASS report are both
   pinned (the report must match bin/fuzz.exe's status line). *)
let test_fuzz_payload () =
  check_string "pinned pass line" "wire-codec: PASS (50 cases)"
    (Jobs_catalog.handler ~kind:"fuzz" ~payload:"target=wire-codec seed=42 cases=50");
  let raises f = match f () with exception _ -> true | _ -> false in
  check_bool "unknown target" true
    (raises (fun () ->
         Jobs_catalog.handler ~kind:"fuzz" ~payload:"target=zeta seed=1 cases=1"))

let test_bad_inputs_raise () =
  let raises f = match f () with exception _ -> true | _ -> false in
  check_bool "unknown kind" true
    (raises (fun () -> Jobs_catalog.handler ~kind:"thm9" ~payload:"x"));
  check_bool "bad payload" true
    (raises (fun () -> Jobs_catalog.handler ~kind:"thm1" ~payload:"garbage"));
  check_bool "unknown algo" true
    (raises (fun () ->
         Jobs_catalog.handler ~kind:"thm1" ~payload:"t=1 k=5 side=60 algo=zeta"));
  check_bool "kinds listed" true (List.mem "thm1" Jobs_catalog.kinds)

let () =
  Alcotest.run "catalog"
    [
      ( "goldens",
        [
          Alcotest.test_case "pinned cell keys" `Quick test_pinned_keys;
          Alcotest.test_case "catalog = sweep cells" `Quick
            test_catalog_matches_sweep_cells;
          Alcotest.test_case "bulk/memo variants agree" `Quick
            test_cell_variants_agree;
          Alcotest.test_case "pinned result shape" `Quick
            test_pinned_result_shape;
          Alcotest.test_case "fuzz payload" `Quick test_fuzz_payload;
          Alcotest.test_case "bad inputs raise" `Quick test_bad_inputs_raise;
        ] );
    ]
