(* Canonical labeling: refinement fixpoints, individualization
   tie-breaks, certificate round-trips, and agreement between the
   Dyn_graph and packed-coordinate (Virtual_grid snapshot) views of the
   same revealed region. *)

open Canon

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let mk n edges colors = Canon.make ~n ~edges ~colors

(* A fixed linear-congruential stream so shuffles are pinned. *)
let lcg seed =
  let s = ref seed in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

let random_perm rand n =
  let p = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = rand (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let apply_perm p n edges colors =
  let edges = List.map (fun (u, v) -> (p.(u), p.(v))) edges in
  let colors' = Array.make n 0 in
  Array.iteri (fun v c -> colors'.(p.(v)) <- c) colors;
  (edges, colors')

(* 1. Refinement reaches a fixpoint that separates degree classes. *)
let test_refine_path () =
  let g = mk 4 [ (0, 1); (1, 2); (2, 3) ] [| 0; 0; 0; 0 |] in
  let classes = refine_classes g in
  (* endpoints vs middles: exactly 2 classes on an even path *)
  check_int "endpoint class" classes.(3) classes.(0);
  check_int "middle class" classes.(2) classes.(1);
  check_bool "separated" true (classes.(0) <> classes.(1))

(* 2. Refinement fixpoint is stable: refining the refined classes as
   colors changes nothing. *)
let test_refine_fixpoint () =
  let g = mk 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] [| 0; 0; 1; 0; 0 |] in
  let c1 = refine_classes g in
  let g2 = { g with colors = c1 } in
  let c2 = refine_classes g2 in
  Alcotest.(check (array int)) "fixpoint" c1 c2

(* 3. Vertex colors seed the partition: a colored cycle refines further
   than the uncolored one. *)
let test_refine_seeded_by_colors () =
  let unc = mk 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] (Array.make 6 0) in
  let col = mk 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] [| 1; 0; 0; 0; 0; 0 |] in
  let k g = 1 + Array.fold_left max 0 (refine_classes g) in
  check_int "uncolored cycle is one class" 1 (k unc);
  check_bool "colored cycle splits by distance" true (k col > 1)

(* 4. Key invariance under relabeling: a pinned shuffle stream, many
   rounds, several graph shapes. *)
let test_key_invariant_under_relabeling () =
  let rand = lcg 42 in
  let shapes =
    [
      (4, [ (0, 1); (1, 2); (2, 3) ], [| 0; 1; 0; 2 |]);
      (5, [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ], [| 0; 0; 1; 1; 2 |]);
      (6, [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ], [| 3; 0; 0; 0; 1; 1 |]);
      (7, [ (0, 1); (1, 2); (1, 3); (3, 4); (4, 5); (4, 6) ], Array.make 7 0);
    ]
  in
  List.iter
    (fun (n, edges, colors) ->
      let k0 = key (mk n edges colors) in
      for _ = 1 to 10 do
        let p = random_perm rand n in
        let edges', colors' = apply_perm p n edges colors in
        check_string "relabel-invariant" k0 (key (mk n edges' colors'))
      done)
    shapes

(* 5. Individualization tie-break: the uncolored 6-cycle never splits
   under refinement alone (vertex-transitive), so the certificate comes
   entirely from individualization — and is still relabel-invariant. *)
let test_individualization_tiebreak () =
  let cyc p = mk 6 (List.map (fun (u, v) -> (p.(u), p.(v)))
                      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ])
                 (Array.make 6 0) in
  let idp = Array.init 6 (fun i -> i) in
  let g = cyc idp in
  check_int "refinement alone: one class" 0 (Array.fold_left max 0 (refine_classes g));
  let k0 = key g in
  let rot = Array.init 6 (fun i -> (i + 2) mod 6) in
  check_string "rotation" k0 (key (cyc rot));
  let refl = Array.init 6 (fun i -> (6 - i) mod 6) in
  check_string "reflection" k0 (key (cyc refl))

(* 6. Certificate round-trip: transport (certificate g) g = canon g,
   and the canonical form is a fixpoint of canon. *)
let test_certificate_roundtrip () =
  let g = mk 7 [ (0, 1); (1, 2); (1, 3); (3, 4); (4, 5); (4, 6); (2, 5) ]
            [| 0; 1; 0; 2; 0; 1; 0 |] in
  let c = canon g in
  check_bool "transport cert = canon" true (transport (certificate g) g = c);
  check_bool "canon idempotent" true (canon c = c);
  check_string "key of canon = key" (key g) (key c)

(* 7. Colored vs uncolored keys differ. *)
let test_colored_vs_uncolored () =
  let edges = [ (0, 1); (1, 2) ] in
  let a = mk 3 edges [| 0; 0; 0 |] in
  let b = mk 3 edges [| 0; 1; 0 |] in
  check_bool "colors are semantic" false (String.equal (key a) (key b))

(* 8. Non-isomorphic graphs get distinct keys (same n, same m). *)
let test_distinct_non_isomorphic () =
  let path = mk 4 [ (0, 1); (1, 2); (2, 3) ] (Array.make 4 0) in
  let star = mk 4 [ (0, 1); (0, 2); (0, 3) ] (Array.make 4 0) in
  check_bool "path vs star" false (String.equal (key path) (key star));
  (* 6 nodes, 6 edges: C6 vs two triangles *)
  let c6 = mk 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] (Array.make 6 0) in
  let tt = mk 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ] (Array.make 6 0) in
  check_bool "C6 vs 2xC3" false (String.equal (key c6) (key tt))

(* 9. Same colors, different color *placement* up to symmetry. *)
let test_color_placement () =
  (* On a path a-b-c-d, coloring {a,b} is not isomorphic to coloring
     {a,c} even though both use one 1 and three 0s... wait, {a,b} vs
     {d,c} IS isomorphic (reflection).  Adjacent-pair vs split-pair: *)
  let edges = [ (0, 1); (1, 2); (2, 3) ] in
  let adjacent = mk 4 edges [| 1; 1; 0; 0 |] in
  let split = mk 4 edges [| 1; 0; 1; 0 |] in
  let mirrored = mk 4 edges [| 0; 0; 1; 1 |] in
  check_bool "adjacent vs split" false (String.equal (key adjacent) (key split));
  check_string "reflection-equivalent" (key adjacent) (key mirrored)

(* 10. iso_equal agrees with a brute-force isomorphism search on all
   colored graphs over 4 nodes with <= 4 edges (pinned exhaustive
   mini-universe). *)
let test_iso_equal_vs_brute () =
  let n = 4 in
  let all_pairs =
    [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  let rec subsets = function
    | [] -> [ [] ]
    | e :: rest ->
        let s = subsets rest in
        s @ List.map (fun t -> e :: t) s
  in
  let colorings = [ [| 0; 0; 0; 0 |]; [| 1; 0; 0; 0 |]; [| 0; 1; 0; 1 |] ] in
  let graphs =
    List.concat_map
      (fun edges -> List.map (fun c -> mk n edges c) colorings)
      (List.filter (fun s -> List.length s <= 4) (subsets all_pairs))
  in
  (* all 24 permutations of 0..3 *)
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
          l
  in
  let perms4 = List.map Array.of_list (perms [ 0; 1; 2; 3 ]) in
  let brute_iso a b =
    List.exists
      (fun p ->
        Array.for_all2 ( = ) (transport p a).colors b.colors
        && (transport p a).adj = b.adj)
      perms4
  in
  let agree = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let want = brute_iso a b in
          let got = iso_equal a b in
          if want <> got then
            Alcotest.failf "iso_equal disagrees with brute force (want %b)" want;
          incr agree)
        graphs)
    graphs;
  check_bool "checked pairs" true (!agree > 1000)

(* 11. Dyn_graph and packed-coordinate (Virtual_grid) views of the same
   revealed region canonicalize identically. *)
let test_dyn_vs_virtual_grid () =
  let open Grid_graph in
  (* Build the revealed region of two adjacent presents at T=1 two
     ways: via Virtual_grid's executor and via a hand-built Dyn_graph
     with a different handle order. *)
  let algorithm = Models.Algorithm.greedy_first_fit in
  let vg =
    Online_local.Virtual_grid.create ~palette:3 ~n_total:81 ~radius:1
      ~algorithm ()
  in
  let f = Online_local.Virtual_grid.new_frame vg in
  let c0 = Online_local.Virtual_grid.present vg f ~row:4 ~col:4 in
  let c1 = Online_local.Virtual_grid.present vg f ~row:4 ~col:5 in
  let snap = Online_local.Virtual_grid.snapshot_region vg in
  let ga =
    Canon.of_graph snap ~colors:(fun v ->
        match Online_local.Virtual_grid.output vg v with
        | Some c -> c + 1
        | None -> 0)
  in
  (* Same region by hand: two radius-1 diamonds at (4,4)/(4,5).  Handles
     come out of [Dyn_graph.add_node] sequentially, so the scramble is a
     coordinate-index -> handle permutation applied to edges/colors. *)
  let coords =
    [ (4, 4); (3, 4); (5, 4); (4, 3); (4, 5); (3, 5); (5, 5); (4, 6) ]
  in
  let order = [ 3; 0; 7; 5; 1; 6; 2; 4 ] in
  let handle = Array.make (List.length coords) 0 in
  List.iteri (fun i j -> handle.(j) <- i) order;
  let dg = Dyn_graph.create () in
  List.iter (fun _ -> ignore (Dyn_graph.add_node dg)) coords;
  List.iteri
    (fun j (r, c) ->
      List.iteri
        (fun j' (r', c') ->
          if j < j' && abs (r - r') + abs (c - c') = 1 then
            Dyn_graph.add_edge dg handle.(j) handle.(j'))
        coords)
    coords;
  let color_of_coord (r, c) =
    if r = 4 && c = 4 then c0 + 1 else if r = 4 && c = 5 then c1 + 1 else 0
  in
  let colors_arr = Array.make (List.length coords) 0 in
  List.iteri (fun j rc -> colors_arr.(handle.(j)) <- color_of_coord rc) coords;
  let gb = Canon.of_dyn dg ~colors:(fun v -> colors_arr.(v)) in
  check_string "dyn = packed" (key ga) (key gb)

(* 12. Digest is a stable fingerprint of the key (pinned value guards
   accidental format changes). *)
let test_digest_pinned () =
  let g = mk 3 [ (0, 1); (1, 2) ] [| 0; 1; 0 |] in
  check_string "key format" "3;0,1,0;0-1,1-2" (key g);
  check_string "digest" (Digest.to_hex (Digest.string (key g))) (digest g)

(* 13. Empty and single-vertex graphs. *)
let test_tiny () =
  check_string "empty" "0;;" (key (mk 0 [] [||]));
  check_string "single" "1;7;" (key (mk 1 [] [| 7 |]));
  check_int "empty cert" 0 (Array.length (certificate (mk 0 [] [||])))

(* 14. make rejects bad input, transport rejects non-permutations. *)
let test_validation () =
  (try
     ignore (make ~n:2 ~edges:[ (0, 5) ] ~colors:[| 0; 0 |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (try
     ignore (make ~n:2 ~edges:[] ~colors:[| 0 |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (transport [| 0; 0 |] (mk 2 [ (0, 1) ] [| 0; 0 |]));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "canon"
    [
      ( "refinement",
        [
          Alcotest.test_case "path classes" `Quick test_refine_path;
          Alcotest.test_case "fixpoint" `Quick test_refine_fixpoint;
          Alcotest.test_case "color-seeded" `Quick test_refine_seeded_by_colors;
        ] );
      ( "canonical key",
        [
          Alcotest.test_case "relabel-invariant" `Quick test_key_invariant_under_relabeling;
          Alcotest.test_case "individualization tie-break" `Quick test_individualization_tiebreak;
          Alcotest.test_case "certificate round-trip" `Quick test_certificate_roundtrip;
          Alcotest.test_case "colored vs uncolored" `Quick test_colored_vs_uncolored;
          Alcotest.test_case "non-isomorphic distinct" `Quick test_distinct_non_isomorphic;
          Alcotest.test_case "color placement" `Quick test_color_placement;
          Alcotest.test_case "brute-force agreement" `Quick test_iso_equal_vs_brute;
        ] );
      ( "views",
        [
          Alcotest.test_case "dyn vs packed" `Quick test_dyn_vs_virtual_grid;
          Alcotest.test_case "digest pinned" `Quick test_digest_pinned;
          Alcotest.test_case "tiny graphs" `Quick test_tiny;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
