open Online_local
module T1 = Thm1_adversary
module A = Models.Algorithm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let defeated r = match r.T1.result with `Defeated _ -> true | `Survived -> false

let test_defeats_greedy_validated () =
  let r = T1.run ~validate:true ~n_side:300 ~k:9 ~algorithm:A.greedy_first_fit () in
  check_bool "defeated" true (defeated r);
  check_bool "fits" true r.T1.fits

let test_defeats_hint_parity () =
  let r = T1.run ~validate:true ~n_side:300 ~k:9 ~algorithm:A.hint_parity () in
  check_bool "defeated" true (defeated r)

let test_defeats_stripes3 () =
  (* stripes3 is proper on any fixed grid; only the deferred placement
     catches it. *)
  let r = T1.run ~validate:true ~n_side:300 ~k:9 ~algorithm:(Portfolio.stripes3 ()) () in
  check_bool "defeated" true (defeated r)

let test_defeats_underprovisioned_ael () =
  List.iter
    (fun t ->
      let k = (4 * t) + 5 in
      let n_side = 8 * ((2 * t) + 4) * (1 lsl k) in
      let algo = Portfolio.ael ~t () in
      let r = T1.run ~n_side ~k ~algorithm:algo () in
      check_bool (Printf.sprintf "ael T=%d defeated at k=%d" t k) true (defeated r);
      check_bool "construction fits" true r.T1.fits)
    [ 1 ]

let test_guaranteed_formula () =
  check_bool "k=9 t=1" true (T1.guaranteed ~t:1 ~k:9);
  check_bool "k=8 t=1" false (T1.guaranteed ~t:1 ~k:8);
  check_bool "k=13 t=2" true (T1.guaranteed ~t:2 ~k:13)

let test_recommended_k () =
  (* w(0) = 3 with t=1; w(k) = 2w+3: 3,9,21,45,93,189,381 -> for
     n_side=100, k=4 (w=93 <= 100, w(5)=189 > 100). *)
  check_int "n=100 t=1" 4 (T1.recommended_k ~n_side:100 ~t:1);
  check_int "tiny grid" 0 (T1.recommended_k ~n_side:4 ~t:2);
  check_bool "monotone in n" true
    (T1.recommended_k ~n_side:100_000 ~t:1 > T1.recommended_k ~n_side:100 ~t:1)

let test_survivor_has_zero_cycle_b () =
  (* A generously provisioned AEL survives a small-k attack, and the
     closing cycle's b-value is exactly zero (Lemma 3.4 live). *)
  let algo = Portfolio.ael ~t:8 () in
  let r = T1.run ~validate:true ~n_side:400 ~k:3 ~algorithm:algo () in
  check_bool "survived" true (not (defeated r));
  Alcotest.(check (option int)) "cycle b zero" (Some 0) r.T1.cycle_b;
  check_bool "path forced to b >= 3" true (r.T1.forced_b >= 3)

let test_forced_b_reaches_target () =
  (* Without the endgame, the recursion alone must reach b >= k against a
     surviving algorithm. *)
  let algo = Portfolio.ael ~t:6 () in
  let r = T1.run ~endgame:false ~validate:true ~n_side:400 ~k:2 ~algorithm:algo () in
  if not (defeated r) then check_bool "b >= 2" true (r.T1.forced_b >= 2)

let test_width_recurrence_respected () =
  (* The discovered region stays within the paper's 5^{k+1} T bound (we
     track the much tighter 2^k bound). *)
  let algo = Portfolio.ael ~t:4 () in
  let r = T1.run ~endgame:false ~n_side:2000 ~k:3 ~algorithm:algo () in
  let t = 4 in
  let rec pow5 e = if e = 0 then 1 else 5 * pow5 (e - 1) in
  check_bool "within 5^(k+1) T" true (r.T1.width <= pow5 4 * t)

let test_monotone_defeat_threshold () =
  (* If the adversary defeats ael(t) at b-target k, larger targets keep
     defeating it (the recursion only grows). *)
  let algo () = Portfolio.ael ~t:2 () in
  match Measure.min_defeating_b ~n_side:3000 ~t:2 ~algorithm:algo ~k_max:8 with
  | None -> Alcotest.fail "expected ael(2) to fall by k=8"
  | Some k0 ->
      let r = T1.run ~n_side:3000 ~k:(min 8 (k0 + 1)) ~algorithm:(algo ()) () in
      check_bool "still defeated above threshold" true (defeated r)

let test_prescribed_ael_survives_feasible_instances () =
  (* The tightness story in one test: AEL at its prescribed O(log n)
     locality cannot be defeated by any b-target that fits a feasible
     grid — the adversary would need k > 4T + 4, but the largest fitting
     k at T = 3 log2 n is far smaller on any materializable n_side. *)
  List.iter
    (fun n_side ->
      let algo = Kp1_coloring.ael_bipartite () in
      let t = algo.Models.Algorithm.locality ~n:(n_side * n_side) in
      let k = max 1 (T1.recommended_k ~n_side ~t) in
      check_bool "theory predicts survival" false (T1.guaranteed ~t ~k);
      let r = T1.run ~n_side ~k ~algorithm:algo () in
      check_bool
        (Printf.sprintf "survives n_side=%d (T=%d, k=%d)" n_side t k)
        true
        (not (defeated r));
      (* And the closing cycle, when the endgame ran, is b = 0. *)
      match r.T1.cycle_b with
      | Some b -> check_int "cycle b" 0 b
      | None -> ())
    [ 120; 200 ]

let test_frontier_grows_with_locality () =
  (* The minimal defeating b-target is non-decreasing in the algorithm's
     locality — the empirical shape of Theta(log n). *)
  let frontier t =
    Measure.min_defeating_b ~n_side:4000 ~t
      ~algorithm:(fun () -> Portfolio.ael ~t ())
      ~k_max:10
  in
  match (frontier 1, frontier 4) with
  | Some k1, Some k4 -> check_bool "frontier grows" true (k1 <= k4)
  | _ -> Alcotest.fail "both should be defeated within k <= 10"

let () =
  Alcotest.run "thm1-adversary"
    [
      ( "defeats",
        [
          Alcotest.test_case "greedy (validated)" `Quick test_defeats_greedy_validated;
          Alcotest.test_case "hint-parity (validated)" `Quick test_defeats_hint_parity;
          Alcotest.test_case "stripes3 (validated)" `Quick test_defeats_stripes3;
          Alcotest.test_case "under-provisioned ael" `Slow test_defeats_underprovisioned_ael;
        ] );
      ( "formulas",
        [
          Alcotest.test_case "guaranteed" `Quick test_guaranteed_formula;
          Alcotest.test_case "recommended_k" `Quick test_recommended_k;
        ] );
      ( "survival-side",
        [
          Alcotest.test_case "survivor cycle b = 0" `Slow test_survivor_has_zero_cycle_b;
          Alcotest.test_case "forced b reaches target" `Quick test_forced_b_reaches_target;
          Alcotest.test_case "width within paper bound" `Quick test_width_recurrence_respected;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "monotone defeat" `Slow test_monotone_defeat_threshold;
          Alcotest.test_case "prescribed AEL survives" `Slow
            test_prescribed_ael_survives_feasible_instances;
          Alcotest.test_case "frontier grows with T" `Slow test_frontier_grows_with_locality;
        ] );
    ]
