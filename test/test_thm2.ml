open Online_local
module T2 = Thm2_adversary
module A = Models.Algorithm
open Grid_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let defeated r = match r.T2.result with `Defeated _ -> true | `Survived -> false

let test_variant_plain_is_the_grid () =
  List.iter
    (fun (wrap, g2wrap) ->
      let side = 7 in
      let plain = T2.variant_host ~wrap ~side ~reflect:false ~band_lo:3 ~band_hi:5 in
      let reference =
        Topology.Grid2d.graph (Topology.Grid2d.create g2wrap ~rows:side ~cols:side)
      in
      check_bool "equal to reference grid" true (Graph.equal plain reference))
    [ (`Cylindrical, Topology.Grid2d.Cylindrical); (`Toroidal, Topology.Grid2d.Toroidal) ]

let test_variant_isomorphic () =
  (* phi = column reflection inside the band maps the reflected variant
     onto the plain grid. *)
  List.iter
    (fun wrap ->
      let side = 7 and band_lo = 3 and band_hi = 5 in
      let plain = T2.variant_host ~wrap ~side ~reflect:false ~band_lo ~band_hi in
      let refl = T2.variant_host ~wrap ~side ~reflect:true ~band_lo ~band_hi in
      let phi v =
        let r = v / side and j = v mod side in
        if r >= band_lo && r <= band_hi then (r * side) + ((side - j) mod side) else v
      in
      check_int "same edge count" (Graph.m plain) (Graph.m refl);
      Graph.iter_edges refl (fun u v ->
          check_bool "phi maps edges" true (Graph.mem_edge plain (phi u) (phi v))))
    [ `Cylindrical; `Toroidal ]

let test_variant_agrees_on_bands () =
  (* Induced subgraphs on the revealed bands coincide between variants. *)
  let wrap = `Toroidal and side = 13 in
  let band_lo = 3 and band_hi = 7 in
  let plain = T2.variant_host ~wrap ~side ~reflect:false ~band_lo ~band_hi in
  let refl = T2.variant_host ~wrap ~side ~reflect:true ~band_lo ~band_hi in
  let rows_nodes rows = List.concat_map (fun r -> List.init side (fun j -> (r * side) + j)) rows in
  List.iter
    (fun rows ->
      let a = Subgraph.induced plain (rows_nodes rows) in
      let b = Subgraph.induced refl (rows_nodes rows) in
      check_bool "identical induced band" true (Graph.equal a.Subgraph.graph b.Subgraph.graph))
    [ [ 0; 1; 2 ]; [ 4; 5; 6 ]; [ 8; 9 ] ]

let test_row_cycle_b () =
  (* Stripes (i + j) mod 3 on a 3-divisible cylinder: each a-value along
     a row is defined and sums telescope. *)
  let side = 9 in
  let colors = Array.init (side * side) (fun v -> ((v / side) + (v mod side)) mod 3) in
  let c = Colorings.Coloring.of_array colors in
  let b_east = T2.row_cycle_b c ~side ~row:2 ~east:true in
  let b_west = T2.row_cycle_b c ~side ~row:2 ~east:false in
  check_int "reversal negates" 0 (b_east + b_west)

let test_defeats_greedy () =
  List.iter
    (fun wrap ->
      List.iter
        (fun side ->
          let r = T2.run ~wrap ~side ~algorithm:A.greedy_first_fit () in
          check_bool
            (Printf.sprintf "defeated side=%d" side)
            true (defeated r);
          check_bool "preconditions" true r.T2.preconditions_met)
        [ 9; 13; 21 ])
    [ `Cylindrical; `Toroidal ]

let test_defeats_stripes () =
  (* stripes3 colors (row+col) mod 3 from hints; Fixed_host provides no
     hints here so it answers 0 everywhere — trivially defeated.  The
     interesting victim is an algorithm that is proper on the plain host:
     simulate one by coloring from the node id's coordinates. *)
  let id_stripes side =
    A.stateless ~name:"id-stripes" ~locality:(fun ~n:_ -> 1) (fun view ->
        let v = view.Models.View.id view.Models.View.target - 1 in
        ((v / side) + (v mod side)) mod 3)
  in
  let side = 9 in
  (* id-stripes 3-colors the plain toroidal grid properly (side mod 3 = 0). *)
  let host = T2.variant_host ~wrap:`Toroidal ~side ~reflect:false ~band_lo:3 ~band_hi:5 in
  let outcome =
    Models.Fixed_host.run ~host ~palette:3 ~algorithm:(id_stripes side)
      ~order:(Models.Fixed_host.orders ~all:host `Sequential)
      ()
  in
  check_bool "proper on plain host" true
    (Models.Run_stats.succeeded outcome ~colors:3 ~host);
  (* ... and the adversary still defeats it. *)
  let r = T2.run ~wrap:`Toroidal ~side ~algorithm:(id_stripes side) () in
  check_bool "defeated by reflection" true (defeated r)

let test_row_b_values_odd () =
  (* When the run survives to a full coloring, both recorded row b-values
     are odd (Lemma 3.5 with odd side). *)
  let side = 9 in
  let id_stripes =
    A.stateless ~name:"id-stripes" ~locality:(fun ~n:_ -> 1) (fun view ->
        let v = view.Models.View.id view.Models.View.target - 1 in
        ((v / side) + (v mod side)) mod 3)
  in
  let r = T2.run ~wrap:`Cylindrical ~side ~algorithm:id_stripes () in
  (* Defeated or not, if s-values were computed from a total coloring,
     they are odd. *)
  if r.T2.s_east <> 0 || r.T2.s_west <> 0 then begin
    check_int "s_east odd" 1 (abs r.T2.s_east mod 2);
    check_int "s_west odd" 1 (abs r.T2.s_west mod 2)
  end

let test_defeats_ael_on_torus () =
  (* AEL assumes a bipartite host; on an odd torus its parity labeling
     eventually meets an odd cycle and the executor converts the crash
     into an Algorithm_failure certificate — defeat, like any other. *)
  let r = T2.run ~wrap:`Toroidal ~side:13 ~algorithm:(Portfolio.ael ~t:1 ()) () in
  check_bool "defeated" true (defeated r);
  match r.T2.result with
  | `Defeated (Models.Run_stats.Algorithm_failure _)
  | `Defeated (Models.Run_stats.Monochromatic_edge _) ->
      ()
  | `Defeated other ->
      Alcotest.failf "unexpected violation: %a" Models.Run_stats.pp_violation other
  | `Survived -> Alcotest.fail "cannot survive"

let test_preconditions_reported () =
  (* side too small for T=1: 4T+4 = 8 > 7. *)
  let r = T2.run ~wrap:`Cylindrical ~side:7 ~algorithm:A.greedy_first_fit () in
  check_bool "preconditions false" false r.T2.preconditions_met

let test_even_side_not_guaranteed () =
  let r = T2.run ~wrap:`Cylindrical ~side:12 ~algorithm:A.greedy_first_fit () in
  check_bool "even side -> preconditions false" false r.T2.preconditions_met

let () =
  Alcotest.run "thm2-adversary"
    [
      ( "host-variants",
        [
          Alcotest.test_case "plain = grid" `Quick test_variant_plain_is_the_grid;
          Alcotest.test_case "isomorphic" `Quick test_variant_isomorphic;
          Alcotest.test_case "bands agree" `Quick test_variant_agrees_on_bands;
          Alcotest.test_case "row cycle b" `Quick test_row_cycle_b;
        ] );
      ( "attack",
        [
          Alcotest.test_case "defeats greedy" `Quick test_defeats_greedy;
          Alcotest.test_case "defeats proper stripes" `Quick test_defeats_stripes;
          Alcotest.test_case "row b odd" `Quick test_row_b_values_odd;
          Alcotest.test_case "ael crashes into a certificate" `Quick test_defeats_ael_on_torus;
          Alcotest.test_case "preconditions small side" `Quick test_preconditions_reported;
          Alcotest.test_case "preconditions even side" `Quick test_even_side_not_guaranteed;
        ] );
    ]
