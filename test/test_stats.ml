(* The streaming statistics registry: exact-integer accumulators, the
   two-limb sum of squares, merge laws, the transport codec, scoped
   deltas, and the Json float edge cases the snapshot rendering relies
   on. *)

module J = Obs.Json
module St = Obs.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* Each test owns the process-global registry for its duration. *)
let with_stats f =
  St.enable ();
  St.reset ();
  Fun.protect
    ~finally:(fun () ->
      St.reset ();
      St.disable ())
    f

let series name snap =
  match List.assoc_opt name snap with
  | Some s -> s
  | None -> Alcotest.failf "series %s missing from snapshot" name

(* ------------------------- json edge cases ------------------------- *)

let test_json_non_finite () =
  (* Non-finite floats have no JSON spelling: the canonical printer
     degrades them to null rather than emitting unparseable tokens. *)
  check_string "nan" "null" (J.to_string (J.Float Float.nan));
  check_string "inf" "null" (J.to_string (J.Float Float.infinity));
  check_string "-inf" "null" (J.to_string (J.Float Float.neg_infinity));
  check_string "nested" {|{"v":[null,1.5]}|}
    (J.to_string (J.Obj [ ("v", J.List [ J.Float Float.nan; J.Float 1.5 ]) ]))

let test_json_negative_zero () =
  (* -0.0 keeps its sign through print and reparse (%.6f preserves it),
     and stays byte-stable on re-emission. *)
  check_string "negative zero" "-0.0" (J.to_string (J.Float (-0.0)));
  check_string "positive zero" "0.0" (J.to_string (J.Float 0.0));
  let s = J.to_string (J.Float (-0.0)) in
  check_string "reparse stable" s (J.to_string (J.of_string s))

(* --------------------------- accumulator --------------------------- *)

let test_accumulator_exact () =
  with_stats @@ fun () ->
  let values = [ 3; -7; 12; 0; 12; 5 ] in
  List.iter (St.observe "t.series") values;
  let s = series "t.series" (St.drain ()) in
  let n = List.length values in
  check_int "n" n s.St.n;
  check_int "sum" (List.fold_left ( + ) 0 values) s.St.sum;
  check_int "min" (-7) s.St.min_v;
  check_int "max" 12 s.St.max_v;
  let mean = float_of_int s.St.sum /. float_of_int n in
  check_float "mean" mean (St.mean s);
  let var =
    List.fold_left
      (fun acc v -> acc +. ((float_of_int v -. mean) ** 2.))
      0. values
    /. float_of_int (n - 1)
  in
  check_float "variance" var (St.variance s);
  check_float "stddev" (sqrt var) (St.stddev s)

let test_sum_of_squares_carry () =
  (* Three observations of the clamp bound overflow the low limb: the
     exact sum of squares 3*(2^30-1)^2 exceeds 2^61 and must carry into
     the high limb (this is the case that caught [1 lsl 62] = min_int). *)
  with_stats @@ fun () ->
  let c = 0x3FFFFFFF in
  for _ = 1 to 3 do
    St.observe "t.carry" c
  done;
  let s = series "t.carry" (St.drain ()) in
  let total = 3 * (c * c) in
  check_int "sq_hi" 1 s.St.sq_hi;
  check_int "sq_lo" (total - (1 lsl 61)) s.St.sq_lo;
  check_bool "lo in range" true (s.St.sq_lo >= 0 && s.St.sq_lo < 1 lsl 61);
  (* Variance of a constant sample is exactly zero — only true because
     the sums are exact. *)
  check_float "variance of constant" 0. (St.variance s)

let test_clamping () =
  (* Sums and extrema keep the raw value; only the square is clamped so
     it stays representable. *)
  with_stats @@ fun () ->
  let big = 1 lsl 40 in
  St.observe "t.clamp" big;
  St.observe "t.clamp" (-big);
  let s = series "t.clamp" (St.drain ()) in
  check_int "sum keeps raw values" 0 s.St.sum;
  check_int "min raw" (-big) s.St.min_v;
  check_int "max raw" big s.St.max_v;
  let c = 0x3FFFFFFF in
  check_int "squares clamped" (2 * (c * c)) ((s.St.sq_hi * (1 lsl 61)) + s.St.sq_lo)

(* ------------------------------ sketch ----------------------------- *)

let test_sketch_bounds () =
  check_int "zero" 0 (St.sketch_index 0);
  check_int "negative" 0 (St.sketch_index (-5));
  for v = 1 to 7 do
    check_int "small exact" v (St.sketch_index v);
    check_int "small value" v (St.sketch_value (St.sketch_index v))
  done;
  List.iter
    (fun v ->
      let lo = St.sketch_value (St.sketch_index v) in
      check_bool
        (Printf.sprintf "lower bound for %d (bucket lo %d)" v lo)
        true
        (lo <= v && v * 8 <= lo * 9))
    [ 8; 9; 15; 16; 48; 50; 100; 1000; 12345; 1 lsl 50 ];
  (* max_int lands in the last bucket without overflow. *)
  check_bool "max_int bucket" true (St.sketch_index max_int < 480);
  check_bool "max_int bound" true
    (St.sketch_value (St.sketch_index max_int) <= max_int);
  (* Bucket indexes are monotone in the value. *)
  let rec mono prev = function
    | [] -> ()
    | v :: rest ->
        check_bool "monotone" true (St.sketch_index v >= St.sketch_index prev);
        mono v rest
  in
  mono 0 [ 1; 2; 7; 8; 9; 31; 32; 33; 1000; 1 lsl 40 ]

let test_quantiles () =
  with_stats @@ fun () ->
  for v = 1 to 100 do
    St.observe "t.q" v
  done;
  let s = series "t.q" (St.drain ()) in
  (* The rank-50 order statistic is 50; its bucket (values 48..51)
     reports its lower bound. *)
  check_int "p50" 48 (St.quantile s ~num:1 ~den:2);
  check_int "p100 bucket lo" (St.sketch_value (St.sketch_index 100))
    (St.quantile s ~num:1 ~den:1);
  check_int "empty" 0 (St.quantile { s with St.n = 0; sketch = [] } ~num:1 ~den:2)

(* --------------------------- merge laws ---------------------------- *)

(* Build a standalone snapshot without touching the ambient registry
   beyond a scoped window. *)
let snap_of values =
  let (), delta =
    St.scoped (fun () -> List.iter (fun (k, v) -> St.observe k v) values)
  in
  if delta = "" then []
  else
    match St.of_string delta with
    | Ok s -> s
    | Error e -> Alcotest.failf "delta decode: %s" e

let test_merge_laws () =
  with_stats @@ fun () ->
  let a = snap_of [ ("x", 1); ("x", 5); ("y", -3) ] in
  let b = snap_of [ ("x", 1000); ("z", 0) ] in
  let c = snap_of [ ("y", 7); ("z", 0x3FFFFFFF); ("z", 0x3FFFFFFF) ] in
  check_bool "commutative" true (St.merge a b = St.merge b a);
  check_bool "associative" true
    (St.merge a (St.merge b c) = St.merge (St.merge a b) c);
  check_bool "left identity" true (St.merge [] a = a);
  check_bool "right identity" true (St.merge a [] = a)

let test_codec_roundtrip () =
  with_stats @@ fun () ->
  let snap =
    snap_of [ ("a", 1); ("a", 1 lsl 40); ("a", -9); ("b", 0); ("c", 77) ]
  in
  (match St.of_string (St.to_string snap) with
  | Ok back -> check_bool "roundtrip" true (back = snap)
  | Error e -> Alcotest.failf "roundtrip: %s" e);
  check_string "empty snapshot" "[]" (St.to_string []);
  (match St.of_string "[" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match St.absorb_string "{\"not\":\"a snapshot\"}" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "absorb accepted garbage"

(* ------------------------------ scoped ----------------------------- *)

let test_scoped_delta () =
  with_stats @@ fun () ->
  St.observe "t.s" 1;
  let x, delta =
    St.scoped (fun () ->
        St.observe "t.s" 10;
        St.observe "t.other" 4;
        42)
  in
  check_int "result" 42 x;
  (match St.of_string delta with
  | Ok snap ->
      check_int "delta n" 1 (series "t.s" snap).St.n;
      check_int "delta sum" 10 (series "t.s" snap).St.sum;
      check_int "delta other" 4 (series "t.other" snap).St.sum
  | Error e -> Alcotest.failf "delta: %s" e);
  (* The scope's contribution still lands in this process's drain. *)
  let s = series "t.s" (St.drain ()) in
  check_int "drain n" 2 s.St.n;
  check_int "drain sum" 11 s.St.sum

let test_scoped_empty_and_disabled () =
  (let x, delta = St.scoped (fun () -> 7) in
   check_int "disabled result" 7 x;
   check_string "disabled delta" "" delta);
  with_stats @@ fun () ->
  let x, delta = St.scoped (fun () -> 9) in
  check_int "empty result" 9 x;
  check_string "empty delta" "" delta

let test_scoped_exception_discards () =
  with_stats @@ fun () ->
  (match St.scoped (fun () -> St.observe "t.boom" 5; failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  (* The aborted scope's observations never reach the registry... *)
  check_bool "discarded" true (List.assoc_opt "t.boom" (St.drain ()) = None);
  (* ...and recording is restored to the shard afterwards. *)
  St.observe "t.after" 1;
  check_int "restored" 1 (series "t.after" (St.drain ())).St.n

let test_nested_scopes () =
  with_stats @@ fun () ->
  let (inner_delta, outer_delta) =
    let (i, o) =
      St.scoped (fun () ->
          St.observe "t.n" 1;
          let (), d = St.scoped (fun () -> St.observe "t.n" 10) in
          d)
    in
    (i, o)
  in
  (match St.of_string inner_delta with
  | Ok snap -> check_int "inner sum" 10 (series "t.n" snap).St.sum
  | Error e -> Alcotest.failf "inner: %s" e);
  (* The inner scope merges into the outer one, so the outer delta
     carries both contributions. *)
  (match St.of_string outer_delta with
  | Ok snap ->
      check_int "outer n" 2 (series "t.n" snap).St.n;
      check_int "outer sum" 11 (series "t.n" snap).St.sum
  | Error e -> Alcotest.failf "outer: %s" e);
  check_int "drain sum" 11 (series "t.n" (St.drain ())).St.sum

(* -------------------------- absorb / drain ------------------------- *)

let test_absorb_and_drain () =
  with_stats @@ fun () ->
  St.observe "t.a" 1;
  let foreign = snap_of [ ("t.a", 100); ("t.b", 5) ] in
  St.absorb foreign;
  (match St.absorb_string "" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty absorb: %s" e);
  let snap = St.drain () in
  (* snap_of already merged [foreign] into this domain's shard once, so
     the absorbed copy doubles it. *)
  check_int "t.a" (1 + 200) (series "t.a" snap).St.sum;
  check_int "t.b" 10 (series "t.b" snap).St.sum;
  check_bool "sorted" true
    (List.map fst snap = List.sort String.compare (List.map fst snap));
  St.reset ();
  check_bool "reset" true (St.drain () = [])

let test_multi_domain_drain () =
  with_stats @@ fun () ->
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            for v = 1 to 10 do
              St.observe "t.par" ((i * 10) + v)
            done))
  in
  List.iter Domain.join domains;
  St.observe "t.par" 0;
  let s = series "t.par" (St.drain ()) in
  check_int "n" 41 s.St.n;
  let expected =
    List.fold_left ( + ) 0
      (List.concat_map (fun i -> List.init 10 (fun v -> (i * 10) + v + 1))
         [ 0; 1; 2; 3 ])
  in
  check_int "sum" expected s.St.sum;
  check_int "min" 0 s.St.min_v;
  check_int "max" 40 s.St.max_v

let () =
  Alcotest.run "stats"
    [
      ( "json",
        [
          Alcotest.test_case "non-finite floats" `Quick test_json_non_finite;
          Alcotest.test_case "negative zero" `Quick test_json_negative_zero;
        ] );
      ( "accumulator",
        [
          Alcotest.test_case "exact moments" `Quick test_accumulator_exact;
          Alcotest.test_case "sum-of-squares carry" `Quick
            test_sum_of_squares_carry;
          Alcotest.test_case "clamping" `Quick test_clamping;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "bucket bounds" `Quick test_sketch_bounds;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
        ] );
      ( "merge",
        [
          Alcotest.test_case "merge laws" `Quick test_merge_laws;
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
        ] );
      ( "scoped",
        [
          Alcotest.test_case "delta" `Quick test_scoped_delta;
          Alcotest.test_case "empty and disabled" `Quick
            test_scoped_empty_and_disabled;
          Alcotest.test_case "exception discards" `Quick
            test_scoped_exception_discards;
          Alcotest.test_case "nested scopes" `Quick test_nested_scopes;
        ] );
      ( "registry",
        [
          Alcotest.test_case "absorb and drain" `Quick test_absorb_and_drain;
          Alcotest.test_case "multi-domain drain" `Quick test_multi_domain_drain;
        ] );
    ]
