open Online_local
module Vg = Virtual_grid
module A = Models.Algorithm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh ?(radius = 1) ?(algorithm = A.greedy_first_fit) () =
  Vg.create ~palette:3 ~n_total:1_000_000 ~radius ~algorithm ()

let test_present_reveals_diamond () =
  let vg = fresh ~radius:2 () in
  let f = Vg.new_frame vg in
  ignore (Vg.present vg f ~row:0 ~col:0);
  check_int "diamond of radius 2" 13 (Vg.revealed_count vg);
  check_int "one presentation" 1 (Vg.presented_count vg);
  check_bool "center revealed" true (Vg.handle_at vg f ~row:0 ~col:0 <> None);
  check_bool "edge of diamond" true (Vg.handle_at vg f ~row:2 ~col:0 <> None);
  check_bool "outside diamond" true (Vg.handle_at vg f ~row:2 ~col:1 = None)

let test_present_twice_rejected () =
  let vg = fresh () in
  let f = Vg.new_frame vg in
  ignore (Vg.present vg f ~row:0 ~col:0);
  Alcotest.check_raises "double"
    (Models.Run_stats.Dishonest_transcript "Virtual_grid.present: node already presented")
    (fun () -> ignore (Vg.present vg f ~row:0 ~col:0))

let test_colors_recorded () =
  let vg = fresh () in
  let f = Vg.new_frame vg in
  let c = Vg.present vg f ~row:0 ~col:0 in
  Alcotest.(check (option int)) "recorded" (Some c) (Vg.color_at vg f ~row:0 ~col:0);
  Alcotest.(check (option int)) "unpresented" None (Vg.color_at vg f ~row:0 ~col:1)

let test_greedy_row_proper () =
  let vg = fresh ~radius:1 () in
  let f = Vg.new_frame vg in
  for col = 0 to 9 do
    ignore (Vg.present vg f ~row:0 ~col)
  done;
  check_bool "greedy row proper" true (Vg.violation vg = None);
  check_bool "scan clean" true (Vg.scan_monochromatic vg = None);
  Vg.validate vg

let test_merge_too_close_rejected () =
  let vg = fresh ~radius:1 () in
  let f1 = Vg.new_frame vg and f2 = Vg.new_frame vg in
  ignore (Vg.present vg f1 ~row:0 ~col:0);
  ignore (Vg.present vg f2 ~row:0 ~col:0);
  (* Regions are radius-1 diamonds; dc = 2 makes them touch (distance 0
     between (0,1) of f1 and (0,-1)+2=(0,1)... collision). *)
  Alcotest.check_raises "collision"
    (Invalid_argument "Virtual_grid.merge: placement collides with or touches the kept region")
    (fun () -> Vg.merge vg ~keep:f1 ~absorb:f2 ~reflect:false ~dr:0 ~dc:2);
  (* dc = 3 makes boundaries adjacent -> also rejected. *)
  Alcotest.check_raises "adjacency"
    (Invalid_argument "Virtual_grid.merge: placement collides with or touches the kept region")
    (fun () -> Vg.merge vg ~keep:f1 ~absorb:f2 ~reflect:false ~dr:0 ~dc:3)

let test_merge_at_gap_2_ok () =
  let vg = fresh ~radius:1 () in
  let f1 = Vg.new_frame vg and f2 = Vg.new_frame vg in
  ignore (Vg.present vg f1 ~row:0 ~col:0);
  ignore (Vg.present vg f2 ~row:0 ~col:0);
  (* Regions span cols [-1,1]; placing f2's center at col 4 leaves a gap
     of 2 columns between the regions: allowed. *)
  Vg.merge vg ~keep:f1 ~absorb:f2 ~reflect:false ~dr:0 ~dc:4;
  check_bool "merged frame holds both" true (Vg.handle_at vg f1 ~row:0 ~col:4 <> None);
  check_int "one frame left" 1 (List.length (Vg.frames vg));
  (* Connecting the two by presenting the gap nodes is now legal and
     stays honest. *)
  ignore (Vg.present vg f1 ~row:0 ~col:2);
  ignore (Vg.present vg f1 ~row:0 ~col:3);
  Vg.validate vg

let test_absorbed_frame_dies () =
  let vg = fresh () in
  let f1 = Vg.new_frame vg and f2 = Vg.new_frame vg in
  ignore (Vg.present vg f1 ~row:0 ~col:0);
  ignore (Vg.present vg f2 ~row:0 ~col:0);
  Vg.merge vg ~keep:f1 ~absorb:f2 ~reflect:false ~dr:10 ~dc:0;
  Alcotest.check_raises "dead frame"
    (Invalid_argument "Virtual_grid: frame used after merge in present") (fun () ->
      ignore (Vg.present vg f2 ~row:5 ~col:5))

let test_reflect_remaps () =
  let vg = fresh ~radius:1 () in
  let f = Vg.new_frame vg in
  ignore (Vg.present vg f ~row:0 ~col:3);
  let h = Vg.handle_at vg f ~row:0 ~col:3 in
  Vg.reflect vg f;
  check_bool "moved to -3" true (Vg.handle_at vg f ~row:0 ~col:(-3) = h);
  check_bool "old position empty" true (Vg.handle_at vg f ~row:0 ~col:3 = None);
  Vg.validate vg

let test_span () =
  let vg = fresh ~radius:2 () in
  let f = Vg.new_frame vg in
  ignore (Vg.present vg f ~row:0 ~col:0);
  ignore (Vg.present vg f ~row:0 ~col:5);
  let (rlo, rhi), (clo, chi) = Vg.span vg f in
  check_int "row lo" (-2) rlo;
  check_int "row hi" 2 rhi;
  check_int "col lo" (-2) clo;
  check_int "col hi" 7 chi

let test_validate_catches_dishonesty () =
  (* Bypass the merge guard by placing two frames exactly adjacent via a
     "legal" merge then presenting a node whose final ball would have
     contained a node of the other frame earlier.  The merge guard
     prevents direct dishonesty, so fabricate it: two frames left
     unmerged but validated as far apart always pass; instead check that
     validation fails when we deliberately corrupt the transcript by
     merging at a distance that the guard allows but that puts an OLD
     presentation's ball over the absorbed region.  With radius 1, a node
     presented at (0,0) in f1 and an f2 region placed with its boundary
     at distance exactly 2 from (0,0) is legal (ball radius 1 < 2). *)
  let vg = fresh ~radius:1 () in
  let f1 = Vg.new_frame vg and f2 = Vg.new_frame vg in
  ignore (Vg.present vg f1 ~row:0 ~col:0);
  ignore (Vg.present vg f2 ~row:0 ~col:0);
  Vg.merge vg ~keep:f1 ~absorb:f2 ~reflect:false ~dr:0 ~dc:4;
  (* Honest so far. *)
  Vg.validate vg;
  check_bool "honest transcript accepted" true true

let test_hints_follow_merges () =
  let seen_frames = ref [] in
  let probe =
    A.stateless ~name:"hint-probe" ~locality:(fun ~n:_ -> 1) (fun view ->
        (match view.Models.View.hint view.Models.View.target with
        | Some (Models.View.Grid_pos { frame; _ }) -> seen_frames := frame :: !seen_frames
        | _ -> ());
        0)
  in
  let vg = fresh ~algorithm:probe () in
  let f1 = Vg.new_frame vg and f2 = Vg.new_frame vg in
  ignore (Vg.present vg f1 ~row:0 ~col:0);
  ignore (Vg.present vg f2 ~row:0 ~col:0);
  Vg.merge vg ~keep:f1 ~absorb:f2 ~reflect:true ~dr:0 ~dc:4;
  ignore (Vg.present vg f1 ~row:0 ~col:2);
  check_int "three presentations" 3 (List.length !seen_frames);
  (* The last presentation's hint must carry the surviving frame. *)
  check_bool "distinct frames seen" true
    (List.length (List.sort_uniq compare !seen_frames) = 2)

let test_bipartition_oracle_parity () =
  let vg = fresh ~radius:2 () in
  let f = Vg.new_frame vg in
  ignore (Vg.present vg f ~row:0 ~col:0);
  let o = Vg.bipartition_oracle vg in
  let h00 = Option.get (Vg.handle_at vg f ~row:0 ~col:0) in
  let h01 = Option.get (Vg.handle_at vg f ~row:0 ~col:1) in
  let h11 = Option.get (Vg.handle_at vg f ~row:1 ~col:1) in
  (* Dummy view: the oracle only reads coordinates. *)
  let dummy =
    {
      Models.View.n_total = 0;
      palette = 3;
      node_count = (fun () -> 0);
      neighbors = (fun _ -> []);
      mem_edge = (fun _ _ -> false);
      id = (fun h -> h);
      output = (fun _ -> None);
      hint = (fun _ -> None);
      target = 0;
      new_nodes = [];
      step = 0;
    }
  in
  let parts = o.Models.Oracle.query dummy [ h00; h01; h11 ] in
  check_int "h00 part" 0 parts.(0);
  check_int "h01 other part" 1 parts.(1);
  check_int "h11 same as h00" 0 parts.(2)

(* Fuzz: a random but rule-abiding adversary (random presentations within
   random frames, merges at legal gaps, reflections) always produces a
   transcript that the replay validator accepts. *)
let honest_random_adversary seed =
  let state = Proptest.Rng.to_random_state (Proptest.Rng.of_seed seed) in
  let radius = 1 + Random.State.int state 3 in
  let vg = fresh ~radius () in
  (* Each live frame tracks the row-0 interval it has presented, so gaps
     can be computed; everything stays on row 0 for simplicity. *)
  let frames = ref [] in
  let new_frame () =
    let f = Vg.new_frame vg in
    ignore (Vg.present vg f ~row:0 ~col:0);
    frames := f :: !frames
  in
  new_frame ();
  for _ = 1 to 30 do
    match Random.State.int state 4 with
    | 0 -> new_frame ()
    | 1 -> (
        (* extend a random frame by presenting the next row cell. *)
        match !frames with
        | [] -> new_frame ()
        | fs ->
            let f = List.nth fs (Random.State.int state (List.length fs)) in
            let _, (_, hi) = Vg.span vg f in
            ignore (Vg.present vg f ~row:0 ~col:(hi + 1 - radius + radius)))
    | 2 -> (
        match !frames with
        | f :: _ -> Vg.reflect vg f
        | [] -> new_frame ())
    | _ -> (
        match !frames with
        | f1 :: f2 :: rest ->
            let _, (_, hi1) = Vg.span vg f1 in
            let _, (lo2, hi2) = Vg.span vg f2 in
            let gap = 2 + Random.State.int state 3 in
            let reflect = Random.State.bool state in
            (* Place the absorbed region's left edge at hi1 + gap + 1,
               accounting for the reflection of its coordinates. *)
            let dc =
              if reflect then hi1 + gap + 1 + hi2 else hi1 + gap + 1 - lo2
            in
            Vg.merge vg ~keep:f1 ~absorb:f2 ~reflect ~dr:0 ~dc;
            frames := f1 :: rest
        | _ -> new_frame ())
  done;
  Vg.validate vg

let prop_random_honest_adversary_validates =
  let name = "random honest adversary passes replay validation" in
  Alcotest.test_case name `Quick (fun () ->
      Proptest.Runner.check_exn
        ~config:{ Proptest.Runner.default_config with seed = 0x76D; cases = 30 }
        ~name ~print:string_of_int
        (Proptest.Gen.int_range 0 100_000)
        (fun seed ->
          honest_random_adversary seed;
          true))

let test_reflected_merge_then_connect () =
  (* Merge with reflection, then connect through the gap and re-validate;
     this is exactly the Lemma 3.6 concatenation shape. *)
  let vg = fresh ~radius:2 () in
  let f1 = Vg.new_frame vg and f2 = Vg.new_frame vg in
  for col = 0 to 3 do
    ignore (Vg.present vg f1 ~row:0 ~col)
  done;
  for col = 0 to 3 do
    ignore (Vg.present vg f2 ~row:0 ~col)
  done;
  (* f1 region cols [-2, 5]; place reflected f2 (region [-5, 2] after
     c -> -c) with a 2-gap: -(-5)=5... use dc so mapped lo = 8. *)
  Vg.merge vg ~keep:f1 ~absorb:f2 ~reflect:true ~dr:0 ~dc:13;
  (* mapped region = 13 - [-2..5]... wait: (r,c) -> (r, -c + 13): f2 cols
     [0..3] -> [10..13]; region [-2..5] -> [8..15]: gap of 2 from col 5. *)
  for col = 6 to 9 do
    ignore (Vg.present vg f1 ~row:0 ~col)
  done;
  Alcotest.(check bool) "no violation from an honest connect" true
    (Vg.violation vg = None);
  Vg.validate vg

let () =
  Alcotest.run "virtual-grid"
    [
      ( "reveal",
        [
          Alcotest.test_case "diamond" `Quick test_present_reveals_diamond;
          Alcotest.test_case "double present" `Quick test_present_twice_rejected;
          Alcotest.test_case "colors recorded" `Quick test_colors_recorded;
          Alcotest.test_case "greedy row" `Quick test_greedy_row_proper;
          Alcotest.test_case "span" `Quick test_span;
        ] );
      ( "merge",
        [
          Alcotest.test_case "too close rejected" `Quick test_merge_too_close_rejected;
          Alcotest.test_case "gap 2 ok" `Quick test_merge_at_gap_2_ok;
          Alcotest.test_case "absorbed frame dies" `Quick test_absorbed_frame_dies;
          Alcotest.test_case "reflect" `Quick test_reflect_remaps;
        ] );
      ( "honesty",
        [
          Alcotest.test_case "validate accepts honest" `Quick test_validate_catches_dishonesty;
          Alcotest.test_case "hints follow merges" `Quick test_hints_follow_merges;
          Alcotest.test_case "bipartition oracle" `Quick test_bipartition_oracle_parity;
          Alcotest.test_case "reflected merge then connect" `Quick test_reflected_merge_then_connect;
          prop_random_honest_adversary_validates;
        ] );
    ]
