open Online_local
module T3 = Thm3_adversary
module A = Models.Algorithm

let check_bool = Alcotest.(check bool)

let defeated r = match r.T3.result with `Defeated _ -> true | `Survived -> false

let test_defeats_greedy () =
  List.iter
    (fun k ->
      let r = T3.run ~k ~gadgets:9 ~algorithm:A.greedy_first_fit () in
      check_bool (Printf.sprintf "k=%d" k) true (defeated r);
      check_bool "preconditions" true r.T3.preconditions_met)
    [ 3; 4 ]

let test_gadget_rows_proper_on_plain () =
  (* The row-coloring baseline is proper on the plain chain... with only
     k colors, well inside the 2k-2 palette. *)
  let k = 3 and gadgets = 7 in
  let chain = Topology.Gadget.create ~k ~gadgets () in
  let host = Topology.Gadget.graph chain in
  let hints v =
    let g, i, j = Topology.Gadget.coords chain v in
    Some (Models.View.Gadget_pos { frame = 0; gadget = g; row = i; col = j })
  in
  let outcome =
    Models.Fixed_host.run ~hints ~host
      ~palette:((2 * k) - 2)
      ~algorithm:(Portfolio.gadget_rows ())
      ~order:(Models.Fixed_host.orders ~all:host `Sequential)
      ()
  in
  check_bool "proper on plain host" true
    (Models.Run_stats.succeeded outcome ~colors:((2 * k) - 2) ~host)

let test_classifications_conflict () =
  (* Against any algorithm that colored both end gadgets properly, the
     chosen host forces the classes to conflict; the report captures the
     probe classes. *)
  let r = T3.run ~k:3 ~gadgets:9 ~algorithm:A.greedy_first_fit () in
  match (r.T3.first_class, r.T3.result) with
  | Some _, `Defeated _ -> ()
  | None, `Defeated _ -> ()  (* the probe itself already failed *)
  | _, `Survived -> Alcotest.fail "adversary must not lose"

let test_seam_choice_logic () =
  (* An algorithm that always makes gadgets column-colorful (the
     canonical row coloring, read off hints) triggers the seam. *)
  let k = 3 and gadgets = 9 in
  let canonical =
    A.stateless ~name:"canonical-rows" ~locality:(fun ~n:_ -> 1) (fun view ->
        match view.Models.View.hint view.Models.View.target with
        | Some (Models.View.Gadget_pos { row; _ }) -> row
        | _ -> 0)
  in
  ignore canonical;
  (* Fixed_host in T3.run provides no hints, so instead make a stateful
     algorithm that decodes gadget coordinates from node identifiers
     (ids are host node + 1). *)
  let by_id =
    A.stateless ~name:"id-rows" ~locality:(fun ~n:_ -> 1) (fun view ->
        let v = view.Models.View.id view.Models.View.target - 1 in
        let i = v / k mod k in
        i)
  in
  let r = T3.run ~k ~gadgets ~algorithm:by_id () in
  check_bool "seam used" true r.T3.seam_used;
  check_bool "defeated" true (defeated r)

let test_validation () =
  Alcotest.check_raises "k too small" (Invalid_argument "thm3: k must be >= 3")
    (fun () -> ignore (T3.run ~k:2 ~gadgets:5 ~algorithm:A.greedy_first_fit ()));
  Alcotest.check_raises "gadget count"
    (Invalid_argument "thm3: need at least 3 gadgets") (fun () ->
      ignore (T3.run ~k:3 ~gadgets:2 ~algorithm:A.greedy_first_fit ()))

let test_preconditions_with_large_locality () =
  (* An algorithm with locality comparable to the chain length defeats
     the preconditions (as Theorem 3 predicts: the bound is Omega(n)). *)
  let wide =
    A.stateless ~name:"wide" ~locality:(fun ~n -> n) (fun _ -> 0)
  in
  let r = T3.run ~k:3 ~gadgets:5 ~algorithm:wide () in
  check_bool "preconditions false" false r.T3.preconditions_met

let test_brute_force_seam_unsolvable () =
  (* Ground truth: pin gadget 0 column-colorful and the last gadget
     column-colorful on the seam host (which transposes the suffix), and
     check no proper (2k-2)-coloring completes it. *)
  let k = 3 and gadgets = 3 in
  let seam = 1 in
  let chain = Topology.Gadget.create ~seam ~k ~gadgets () in
  let host = Topology.Gadget.graph chain in
  let pin chain_host =
    let partial =
      Colorings.Coloring.create (Grid_graph.Graph.n (Topology.Gadget.graph chain_host))
    in
    (* Canonical row coloring (row i monochromatic with color i) on both
       end gadgets: column-colorful in raw coordinates. *)
    List.iter
      (fun g ->
        List.iteri
          (fun idx v -> Colorings.Coloring.set partial v (idx / k))
          (Topology.Gadget.gadget_nodes chain_host g))
      [ 0; gadgets - 1 ];
    partial
  in
  let partial = pin chain in
  check_bool "pin is itself proper" true (Colorings.Coloring.is_proper host partial);
  (* On the seam host the suffix is transposed, so the two raw-identical
     pins classify differently after the isomorphism: unsolvable. *)
  check_bool "no proper completion on seam host" false
    (Colorings.Brute.exists_coloring ~partial host ~colors:((2 * k) - 2));
  (* The very same pins complete fine on the plain chain. *)
  let plain = Topology.Gadget.create ~k ~gadgets () in
  check_bool "solvable on plain host" true
    (Colorings.Brute.exists_coloring ~partial:(pin plain)
       (Topology.Gadget.graph plain)
       ~colors:((2 * k) - 2))

let () =
  Alcotest.run "thm3-adversary"
    [
      ( "attack",
        [
          Alcotest.test_case "defeats greedy" `Slow test_defeats_greedy;
          Alcotest.test_case "baseline proper on plain" `Quick test_gadget_rows_proper_on_plain;
          Alcotest.test_case "classification conflict" `Quick test_classifications_conflict;
          Alcotest.test_case "seam choice" `Quick test_seam_choice_logic;
        ] );
      ( "validation",
        [
          Alcotest.test_case "argument validation" `Quick test_validation;
          Alcotest.test_case "large locality preconditions" `Quick test_preconditions_with_large_locality;
          Alcotest.test_case "brute force seam unsolvable" `Slow test_brute_force_seam_unsolvable;
        ] );
    ]
