module D = Models.Dynamic_local

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let grid rows cols = Topology.Grid2d.create Topology.Grid2d.Simple ~rows ~cols

let test_greedy_repair_incremental_grid () =
  (* greedy-repair maintains a (Delta+1)=5-coloring while the grid is
     built node by node, in several insertion orders. *)
  let g = grid 8 8 in
  let host = Topology.Grid2d.graph g in
  List.iter
    (fun order ->
      let updates = D.incremental_grid_updates g ~order in
      let outcome =
        D.run ~n_hint:(Grid_graph.Graph.n host) ~palette:5 ~algorithm:D.greedy_repair
          ~updates ()
      in
      check_bool "no violation" true (outcome.D.violation = None);
      check_int "all labeled" (Grid_graph.Graph.n host) (List.length outcome.D.labels);
      (* Cross-check properness against the host graph. *)
      let coloring = Colorings.Coloring.create (Grid_graph.Graph.n host) in
      List.iter
        (fun (v, c) -> Colorings.Coloring.set coloring v c)
        (D.relabel_to_host ~order outcome.D.labels);
      check_bool "proper on host" true
        (Colorings.Coloring.is_proper_total host coloring ~colors:5))
    [
      Models.Fixed_host.orders ~all:host `Sequential;
      Models.Fixed_host.orders ~all:host (`Random 1);
      Models.Fixed_host.orders ~all:host (`Random 2);
    ]

let test_greedy_repair_palette3_can_fail () =
  (* With only 3 colors, greedy repair (locality 1) gets stuck under an
     adversarial insertion order on a star-of-triangles...  use K4 built
     incrementally: 4 colors needed. *)
  let updates =
    [
      D.Add_node { edges = [] };
      D.Add_node { edges = [ 0 ] };
      D.Add_node { edges = [ 0; 1 ] };
      D.Add_node { edges = [ 0; 1; 2 ] };
    ]
  in
  let outcome = D.run ~n_hint:4 ~palette:3 ~algorithm:D.greedy_repair ~updates () in
  check_bool "violated" true (outcome.D.violation <> None)

let test_bfs_repair_stronger () =
  (* Path built ends-first with 2 colors: greedy repair can deadlock on
     parity, bfs repair with enough radius fixes it locally. *)
  let g = grid 1 9 in
  let host = Topology.Grid2d.graph g in
  let order = [ 0; 8; 1; 7; 2; 6; 3; 5; 4 ] in
  let updates = D.incremental_grid_updates g ~order in
  let greedy_outcome =
    D.run ~n_hint:9 ~palette:2 ~algorithm:D.greedy_repair ~updates ()
  in
  let bfs_outcome =
    D.run ~n_hint:9 ~palette:2 ~algorithm:(D.bfs_repair ~radius:9) ~updates ()
  in
  ignore host;
  (* greedy may or may not fail depending on parity luck; bfs with full
     radius must always succeed on a path with 2 colors. *)
  check_bool "bfs repairs" true (bfs_outcome.D.violation = None);
  ignore greedy_outcome

let test_edge_insertion () =
  let updates =
    [
      D.Add_node { edges = [] };
      D.Add_node { edges = [] };
      D.Add_edge (0, 1);
    ]
  in
  let outcome = D.run ~n_hint:2 ~palette:2 ~algorithm:D.greedy_repair ~updates () in
  check_bool "repaired after edge insertion" true (outcome.D.violation = None)

let test_deletions_gated () =
  Alcotest.check_raises "deletion without flag"
    (Invalid_argument "Dynamic_local.run: deletions need ~allow_deletions:true")
    (fun () ->
      ignore
        (D.run ~n_hint:2 ~palette:2 ~algorithm:D.greedy_repair
           ~updates:[ D.Add_node { edges = [] }; D.Remove_node 0 ]
           ()))

let test_fully_dynamic () =
  (* Dynamic-LOCAL±: build a triangle, remove an edge, verify 2 colors
     then suffice after repair. *)
  let updates =
    [
      D.Add_node { edges = [] };
      D.Add_node { edges = [ 0 ] };
      D.Add_node { edges = [ 0; 1 ] };
      D.Remove_edge (0, 1);
      D.Remove_node 2;
    ]
  in
  let outcome =
    D.run ~allow_deletions:true ~n_hint:3 ~palette:3 ~algorithm:D.greedy_repair
      ~updates ()
  in
  check_bool "no violation" true (outcome.D.violation = None);
  check_int "two live nodes" 2 (List.length outcome.D.labels)

let test_nonlocal_relabel_rejected () =
  (* An algorithm that relabels a node far from the change is caught. *)
  let cheater =
    {
      D.name = "cheater";
      locality = (fun ~n:_ -> 1);
      react =
        (fun ~n:_ ~palette:_ view ->
          (* Properly colors its own node but also keeps rewriting node 0,
             which leaves the ball as soon as the path grows past it. *)
          [ (0, 2); (view.Models.View.target, 1) ]);
    }
  in
  let g = grid 1 6 in
  let order = [ 0; 1; 2; 3; 4; 5 ] in
  let updates = D.incremental_grid_updates g ~order in
  let outcome = D.run ~n_hint:6 ~palette:3 ~algorithm:cheater ~updates () in
  match outcome.D.violation with
  | Some (_, D.Nonlocal_relabel _) -> ()
  | other ->
      Alcotest.failf "expected nonlocal-relabel violation, got %s"
        (match other with
        | None -> "none"
        | Some (_, v) -> Format.asprintf "%a" D.pp_violation v)

let test_unlabeled_detected () =
  let lazybones =
    { D.name = "lazy"; locality = (fun ~n:_ -> 1); react = (fun ~n:_ ~palette:_ _ -> []) }
  in
  let outcome =
    D.run ~n_hint:1 ~palette:3 ~algorithm:lazybones
      ~updates:[ D.Add_node { edges = [] } ]
      ()
  in
  match outcome.D.violation with
  | Some (1, D.Unlabeled 0) -> ()
  | _ -> Alcotest.fail "expected unlabeled violation at step 1"

let test_out_of_palette_detected () =
  let wild =
    {
      D.name = "wild";
      locality = (fun ~n:_ -> 1);
      react = (fun ~n:_ ~palette:_ view -> [ (view.Models.View.target, 42) ]);
    }
  in
  let outcome =
    D.run ~n_hint:1 ~palette:3 ~algorithm:wild
      ~updates:[ D.Add_node { edges = [] } ]
      ()
  in
  match outcome.D.violation with
  | Some (_, D.Out_of_palette { color = 42; _ }) -> ()
  | _ -> Alcotest.fail "expected out-of-palette violation"

let test_relabeling_count () =
  let g = grid 4 4 in
  let order = Models.Fixed_host.orders ~all:(Topology.Grid2d.graph g) `Sequential in
  let updates = D.incremental_grid_updates g ~order in
  let outcome = D.run ~n_hint:16 ~palette:5 ~algorithm:D.greedy_repair ~updates () in
  (* greedy relabels exactly once per inserted node (no conflicts later). *)
  check_int "one write per node" 16 outcome.D.relabelings;
  check_int "steps" 16 outcome.D.steps

let () =
  Alcotest.run "dynamic-local"
    [
      ( "maintenance",
        [
          Alcotest.test_case "greedy 5-colors incremental grids" `Quick
            test_greedy_repair_incremental_grid;
          Alcotest.test_case "greedy stuck on K4/3" `Quick test_greedy_repair_palette3_can_fail;
          Alcotest.test_case "bfs repair on a path" `Quick test_bfs_repair_stronger;
          Alcotest.test_case "edge insertion" `Quick test_edge_insertion;
          Alcotest.test_case "relabeling count" `Quick test_relabeling_count;
        ] );
      ( "model-rules",
        [
          Alcotest.test_case "deletions gated" `Quick test_deletions_gated;
          Alcotest.test_case "fully dynamic" `Quick test_fully_dynamic;
          Alcotest.test_case "nonlocal relabel rejected" `Quick test_nonlocal_relabel_rejected;
          Alcotest.test_case "unlabeled detected" `Quick test_unlabeled_detected;
          Alcotest.test_case "out of palette detected" `Quick test_out_of_palette_detected;
        ] );
    ]
