open Grid_graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_empty () =
  let g = Graph.empty 5 in
  check_int "n" 5 (Graph.n g);
  check_int "m" 0 (Graph.m g);
  check_int "max_degree" 0 (Graph.max_degree g)

let test_create_dedups () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1); (1, 0); (0, 1); (1, 2) ] in
  check_int "m" 2 (Graph.m g);
  check_bool "edge 0-1" true (Graph.mem_edge g 0 1);
  check_bool "edge 1-0" true (Graph.mem_edge g 1 0);
  check_bool "no edge 0-2" false (Graph.mem_edge g 0 2)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph: self-loop") (fun () ->
      ignore (Graph.create ~n:2 ~edges:[ (1, 1) ]))

let test_out_of_range_rejected () =
  Alcotest.check_raises "range" (Invalid_argument "Graph: node 5 out of range [0,3)")
    (fun () -> ignore (Graph.create ~n:3 ~edges:[ (0, 5) ]))

let test_complete () =
  let g = Graph.complete 6 in
  check_int "m" 15 (Graph.m g);
  check_int "degree" 5 (Graph.degree g 3);
  check_bool "clique" true (Graph.is_clique g [ 0; 1; 2; 3; 4; 5 ])

let test_path_cycle () =
  let p = Graph.path_graph 5 in
  check_int "path m" 4 (Graph.m p);
  check_int "endpoint degree" 1 (Graph.degree p 0);
  let c = Graph.cycle_graph 5 in
  check_int "cycle m" 5 (Graph.m c);
  check_bool "wrap edge" true (Graph.mem_edge c 0 4);
  Alcotest.check_raises "small cycle"
    (Invalid_argument "Graph.cycle_graph: need at least 3 nodes") (fun () ->
      ignore (Graph.cycle_graph 2))

let test_neighbors_sorted () =
  let g = Graph.create ~n:5 ~edges:[ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2)

let test_iter_edges_each_once () =
  let g = Graph.complete 5 in
  let count = ref 0 in
  Graph.iter_edges g (fun u v ->
      incr count;
      check_bool "ordered" true (u < v));
  check_int "edge count" 10 !count

let test_union_disjoint () =
  let g = Graph.union_disjoint (Graph.path_graph 3) (Graph.cycle_graph 3) in
  check_int "n" 6 (Graph.n g);
  check_int "m" 5 (Graph.m g);
  check_bool "no cross edge" false (Graph.mem_edge g 2 3);
  check_bool "shifted edge" true (Graph.mem_edge g 3 4)

let test_add_edges () =
  let g = Graph.add_edges (Graph.empty 4) [ (0, 1); (2, 3) ] in
  check_int "m" 2 (Graph.m g);
  let g' = Graph.add_edges g [ (0, 1); (1, 2) ] in
  check_int "m after dup add" 3 (Graph.m g')

let test_equal () =
  let g1 = Graph.create ~n:3 ~edges:[ (0, 1); (1, 2) ] in
  let g2 = Graph.create ~n:3 ~edges:[ (1, 2); (0, 1) ] in
  let g3 = Graph.create ~n:3 ~edges:[ (0, 2); (1, 2) ] in
  check_bool "equal" true (Graph.equal g1 g2);
  check_bool "not equal" false (Graph.equal g1 g3)

let test_of_adjacency () =
  let g = Graph.of_adjacency [| [| 1 |]; [||]; [| 1 |] |] in
  check_bool "symmetrized" true (Graph.mem_edge g 1 0);
  check_int "m" 2 (Graph.m g)

let test_is_clique () =
  let g = Graph.create ~n:4 ~edges:[ (0, 1); (1, 2); (0, 2); (0, 3) ] in
  check_bool "triangle" true (Graph.is_clique g [ 0; 1; 2 ]);
  check_bool "not clique" false (Graph.is_clique g [ 0; 1; 3 ]);
  check_bool "edge is clique" true (Graph.is_clique g [ 0; 3 ]);
  check_bool "singleton" true (Graph.is_clique g [ 2 ])

(* Random graph generator for property tests; a failing graph shrinks
   by dropping edges and regenerating at smaller node counts. *)
let random_graph_gen : Graph.t Proptest.Gen.t =
  let open Proptest.Gen in
  bind (int_range 1 40) (fun n ->
      bind (int_range 0 (n * 3)) (fun m ->
          let endpoint = int_range 0 (n - 1) in
          map
            (fun pairs ->
              let edges = List.filter (fun (u, v) -> u <> v) pairs in
              Graph.create ~n ~edges)
            (list_size m (pair endpoint endpoint))))

let config = { Proptest.Runner.default_config with seed = 0x9AF; cases = 200 }

let prop name p =
  Alcotest.test_case name `Quick (fun () ->
      Proptest.Runner.check_exn ~config ~name
        ~print:Proptest.Domain_gen.print_graph random_graph_gen p)

let prop_degree_sum =
  prop "sum of degrees = 2m" (fun g ->
      let sum = Graph.fold_nodes g ~init:0 ~f:(fun acc v -> acc + Graph.degree g v) in
      sum = 2 * Graph.m g)

let prop_mem_edge_symmetric =
  prop "mem_edge symmetric" (fun g ->
      Graph.fold_nodes g ~init:true ~f:(fun acc u ->
          acc
          && Array.for_all
               (fun v -> Graph.mem_edge g u v && Graph.mem_edge g v u)
               (Graph.neighbors g u)))

let prop_edges_roundtrip =
  prop "create (edges g) = g" (fun g ->
      Graph.equal g (Graph.create ~n:(Graph.n g) ~edges:(Graph.edges g)))

let prop_max_degree =
  prop "max_degree is the max" (fun g ->
      let manual = Graph.fold_nodes g ~init:0 ~f:(fun acc v -> max acc (Graph.degree g v)) in
      manual = Graph.max_degree g)

let test_union_find () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial count" 6 (Union_find.count uf);
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  check_bool "same" true (Union_find.same uf 1 2);
  check_bool "different" false (Union_find.same uf 1 4);
  check_int "size" 4 (Union_find.size uf 1);
  check_int "count" 3 (Union_find.count uf);
  ignore (Union_find.union uf 1 2);
  check_int "idempotent count" 3 (Union_find.count uf)

let test_uf_dyn () =
  let uf = Online_local.Uf_dyn.create () in
  Online_local.Uf_dyn.ensure uf 10;
  ignore (Online_local.Uf_dyn.union uf 3 7);
  Online_local.Uf_dyn.ensure uf 100;
  ignore (Online_local.Uf_dyn.union uf 7 99);
  check_bool "same across growth" true (Online_local.Uf_dyn.same uf 3 99);
  check_int "size" 3 (Online_local.Uf_dyn.size uf 99);
  check_bool "isolated" false (Online_local.Uf_dyn.same uf 0 3)

let test_dyn_graph () =
  let d = Dyn_graph.create () in
  let a = Dyn_graph.add_node d in
  let b = Dyn_graph.add_node d in
  let c = Dyn_graph.add_node d in
  Dyn_graph.add_edge d a b;
  Dyn_graph.add_edge d b c;
  Dyn_graph.add_edge d a b;
  check_int "n" 3 (Dyn_graph.n d);
  check_bool "edge" true (Dyn_graph.mem_edge d b a);
  check_int "neighbors of b" 2 (List.length (Dyn_graph.neighbors d b));
  let s = Dyn_graph.snapshot d in
  check_int "snapshot m" 2 (Graph.m s);
  Alcotest.check_raises "loop" (Invalid_argument "Dyn_graph: self-loop") (fun () ->
      Dyn_graph.add_edge d a a)

let test_dyn_graph_growth () =
  let d = Dyn_graph.create () in
  for _ = 1 to 100 do
    ignore (Dyn_graph.add_node d)
  done;
  for i = 0 to 98 do
    Dyn_graph.add_edge d i (i + 1)
  done;
  check_int "n" 100 (Dyn_graph.n d);
  check_int "snapshot m" 99 (Graph.m (Dyn_graph.snapshot d))

let () =
  Alcotest.run "grid_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "create dedups" `Quick test_create_dedups;
          Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "out of range rejected" `Quick test_out_of_range_rejected;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "path and cycle" `Quick test_path_cycle;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "iter_edges once" `Quick test_iter_edges_each_once;
          Alcotest.test_case "union_disjoint" `Quick test_union_disjoint;
          Alcotest.test_case "add_edges" `Quick test_add_edges;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "of_adjacency" `Quick test_of_adjacency;
          Alcotest.test_case "is_clique" `Quick test_is_clique;
        ] );
      ( "graph-properties",
        [ prop_degree_sum; prop_mem_edge_symmetric; prop_edges_roundtrip; prop_max_degree ] );
      ( "union-find",
        [
          Alcotest.test_case "union find" `Quick test_union_find;
          Alcotest.test_case "uf_dyn" `Quick test_uf_dyn;
        ] );
      ( "dyn-graph",
        [
          Alcotest.test_case "dyn graph" `Quick test_dyn_graph;
          Alcotest.test_case "dyn graph growth" `Quick test_dyn_graph_growth;
        ] );
    ]
