module S = Colorings.Segments
module Bv = Colorings.Bvalue

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_decompose_example () =
  (* Paper colors 3 2 1 2 1 3 = our 2 1 0 1 0 2. *)
  let colors = [| 2; 1; 0; 1; 0; 2 |] in
  let path = [ 0; 1; 2; 3; 4; 5 ] in
  match S.decompose colors path with
  | [ seg ] ->
      check_int "start" 1 seg.S.start_index;
      check_int "stop" 4 seg.S.stop_index;
      check_int "first color" 1 seg.S.first_color;
      check_int "last color" 0 seg.S.last_color
  | other -> Alcotest.failf "expected one segment, got %d" (List.length other)

let test_decompose_multiple () =
  (* 1 0 2 0 2 1 0 1: segments [1,0], [0], [1,0,1]. *)
  let colors = [| 1; 0; 2; 0; 2; 1; 0; 1 |] in
  let segs = S.decompose colors [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  check_int "three segments" 3 (List.length segs);
  let plus, minus = S.transition_counts colors [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  (* 1->0 once; 0->0 none; 1->1 none. *)
  check_int "plus" 1 plus;
  check_int "minus" 0 minus

let test_all_special () =
  let colors = [| 2; 2; 2 |] in
  check_bool "no segments" true (S.decompose colors [ 0; 1; 2 ] = []);
  check_int "b via segments" 0 (S.b_via_segments colors [ 0; 1; 2 ])

let test_empty_path () =
  check_bool "empty" true (S.decompose [| 0 |] [] = [])

(* The Section 3.1 identity: for properly colored paths,
   b(P) = plus - minus. *)
let proper_path_gen =
  Proptest.Gen.(
    bind (int_range 1 40) (fun len ->
        bind (int_range 0 2) (fun first ->
            map
              (fun moves ->
                let arr = Array.make (len + 1) first in
                List.iteri (fun i m -> arr.(i + 1) <- (arr.(i) + m) mod 3) moves;
                arr)
              (list_size len (int_range 1 2)))))

let print_colors arr =
  "[" ^ String.concat ";" (List.map string_of_int (Array.to_list arr)) ^ "]"

let proptest name ~seed ~cases gen p =
  Alcotest.test_case name `Quick (fun () ->
      Proptest.Runner.check_exn
        ~config:{ Proptest.Runner.default_config with seed; cases }
        ~name ~print:print_colors gen p)

let prop_identity =
  proptest "b = plus - minus on proper paths" ~seed:0x5E61 ~cases:500
    proper_path_gen
    (fun colors ->
      let path = List.init (Array.length colors) (fun i -> i) in
      Bv.b_path colors path = S.b_via_segments colors path)

let prop_segment_structure =
  proptest "segments tile the non-special nodes" ~seed:0x5E62 ~cases:300
    proper_path_gen (fun colors ->
      let path = List.init (Array.length colors) (fun i -> i) in
      let segs = S.decompose colors path in
      let covered =
        List.concat_map
          (fun s -> List.init (s.S.stop_index - s.S.start_index + 1) (fun i -> s.S.start_index + i))
          segs
      in
      let non_special =
        List.filteri (fun i _ -> colors.(i) <> Bv.special) path
        |> List.mapi (fun _ v -> v)
      in
      List.length covered = List.length non_special
      && List.for_all (fun i -> colors.(i) <> Bv.special) covered)

let test_regions_grid () =
  (* A 3x3 grid colored with a special-color cross through the center
     row: two regions (top row, bottom row). *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:3 ~cols:3 in
  let g = Topology.Grid2d.graph grid in
  let colors =
    Array.init 9 (fun v ->
        let r, c = Topology.Grid2d.coords grid v in
        if r = 1 then 2 else (r + c) mod 2)
  in
  let regions = S.regions g colors in
  check_int "two regions" 2 (List.length regions);
  List.iter (fun reg -> check_int "three nodes each" 3 (List.length reg)) regions

let test_regions_whole_graph () =
  let g = Grid_graph.Graph.path_graph 5 in
  let colors = [| 0; 1; 0; 1; 0 |] in
  check_int "one region" 1 (List.length (S.regions g colors))

let () =
  Alcotest.run "segments"
    [
      ( "decomposition",
        [
          Alcotest.test_case "paper example" `Quick test_decompose_example;
          Alcotest.test_case "multiple segments" `Quick test_decompose_multiple;
          Alcotest.test_case "all special" `Quick test_all_special;
          Alcotest.test_case "empty path" `Quick test_empty_path;
        ] );
      ("identity", [ prop_identity; prop_segment_structure ]);
      ( "regions",
        [
          Alcotest.test_case "cross-separated grid" `Quick test_regions_grid;
          Alcotest.test_case "no special nodes" `Quick test_regions_whole_graph;
        ] );
    ]
