open Online_local

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_registry () =
  check_int "six games" 6 (List.length Game.games);
  check_bool "find known" true (Game.find "thm1-grid" <> None);
  check_bool "find upper" true (Game.find "upper-grid-oracle" <> None);
  check_bool "find unknown" true (Game.find "nonsense" = None)

let test_thm1_game_defeats_greedy () =
  let v = Game.thm1.Game.play ~n:3200 (Portfolio.greedy ()) in
  check_bool "defeated" true v.Game.defeated;
  check_bool "guaranteed at T=1" true v.Game.guaranteed;
  check_int "size recorded" 3200 v.Game.n

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_thm2_game_rounds_to_odd () =
  let v = Game.thm2_torus.Game.play ~n:20 (Portfolio.greedy ()) in
  check_int "odd side" 21 v.Game.n;
  check_bool "rounding visible in detail" true
    (contains ~needle:"side rounded 20 -> 21" v.Game.detail);
  check_bool "defeated" true v.Game.defeated

let test_thm2_game_odd_input_not_rounded () =
  let v = Game.thm2_torus.Game.play ~n:21 (Portfolio.greedy ()) in
  check_int "side kept" 21 v.Game.n;
  check_bool "no rounding note" false (contains ~needle:"rounded" v.Game.detail)

let test_thm2_cylinder_game () =
  let v = Game.thm2_cylinder.Game.play ~n:13 (Portfolio.greedy ()) in
  check_bool "defeated" true v.Game.defeated;
  check_bool "guaranteed" true v.Game.guaranteed

let test_thm3_game () =
  let v = Game.thm3.Game.play ~n:9 (Portfolio.gadget_rows ()) in
  check_bool "defeated" true v.Game.defeated;
  check_bool "guaranteed" true v.Game.guaranteed

let test_every_lower_game_beats_greedy () =
  List.iter
    (fun g ->
      let v = g.Game.play ~n:25 (Portfolio.greedy ()) in
      check_bool (g.Game.name ^ " beats greedy") true v.Game.defeated)
    [ Game.thm1; Game.thm2_torus; Game.thm2_cylinder; Game.thm3 ]

let test_upper_games_survivable () =
  let v = Game.upper_grid.Game.play ~n:8 (Portfolio.ael ~t:4 ()) in
  check_bool "ael survives the oracle-free grid" true (v.Game.outcome = Game.Survived);
  let v = Game.upper_grid_oracle.Game.play ~n:8 (Portfolio.kp1 ~k:2 ~t:8 ()) in
  check_bool "kp1 survives with the oracle" true (v.Game.outcome = Game.Survived)

let test_portfolio_run_games_total () =
  (* One faulty entry degrades its own verdicts only. *)
  let entries =
    [
      ("greedy", Portfolio.greedy ());
      ("saboteur", Harness.Faults.raise_at ~step:1 (Portfolio.greedy ()));
    ]
  in
  let results = Portfolio.run_games ~n:9 entries [ Game.thm3; Game.upper_grid ] in
  check_int "all pairings produced verdicts" 4 (List.length results);
  List.iter
    (fun (label, v) ->
      match (label, v.Game.outcome) with
      | "saboteur", Game.Algorithm_fault _ -> ()
      | "saboteur", o ->
          Alcotest.failf "saboteur should fault, got %s" (Game.outcome_label o)
      | _, (Game.Algorithm_fault _ | Game.Adversary_fault _) ->
          Alcotest.fail "healthy entry faulted"
      | _ -> ())
    results

let test_verdict_renders () =
  let v = Game.thm3.Game.play ~n:5 (Portfolio.greedy ()) in
  let s = Format.asprintf "%a" Game.pp_verdict v in
  check_bool "mentions adversary" true (contains ~needle:"thm3" s)

(* E7 fault matrix x memo: a memo-on play renders the exact verdict of a
   memo-off play — fault injection included (fault wrappers are impure,
   so the cache must decline them, not replay around them) — and a
   second memo-on play against a warmed per-domain cache agrees too. *)
let test_memo_matches_memo_off () =
  let limits =
    {
      Harness.Guard.max_color_calls = Some 200_000;
      max_work = Some 100_000;
      deadline = Some 10.0;
    }
  in
  List.iter
    (fun (game, n) ->
      List.iter
        (fun (fault, inject) ->
          List.iter
            (fun (aname, algo) ->
              let play ~memo = game.Game.play ~memo ~limits ~n (inject (algo ())) in
              let label which =
                Printf.sprintf "%s/%s/%s: %s = memo off" game.Game.name fault
                  aname which
              in
              let render v = Format.asprintf "%a" Game.pp_verdict v in
              let off = render (play ~memo:false) in
              Alcotest.(check string) (label "memo on") off (render (play ~memo:true));
              Alcotest.(check string) (label "warmed memo") off
                (render (play ~memo:true)))
            [ ("greedy", Portfolio.greedy); ("ael", fun () -> Portfolio.ael ~t:1 ()) ])
        (("none", fun algo -> algo) :: Harness.Faults.algorithm_faults))
    [
      (Game.thm1, 12);
      (Game.thm2_torus, 9);
      (Game.thm3, 7);
      (Game.upper_grid, 6);
    ]

let () =
  Alcotest.run "game"
    [
      ( "registry",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "thm1 vs greedy" `Quick test_thm1_game_defeats_greedy;
          Alcotest.test_case "thm2 odd rounding" `Quick test_thm2_game_rounds_to_odd;
          Alcotest.test_case "thm2 odd input kept" `Quick
            test_thm2_game_odd_input_not_rounded;
          Alcotest.test_case "thm2 cylinder" `Quick test_thm2_cylinder_game;
          Alcotest.test_case "thm3" `Quick test_thm3_game;
          Alcotest.test_case "lower games beat greedy" `Slow
            test_every_lower_game_beats_greedy;
          Alcotest.test_case "upper games survivable" `Quick test_upper_games_survivable;
          Alcotest.test_case "portfolio total" `Quick test_portfolio_run_games_total;
          Alcotest.test_case "verdict renders" `Quick test_verdict_renders;
          Alcotest.test_case "memo = memo-off, fault matrix" `Slow
            test_memo_matches_memo_off;
        ] );
    ]
