open Grid_graph
module G2 = Topology.Grid2d

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let proper g colors = Colorings.Coloring.is_proper g (Colorings.Coloring.of_array colors)

(* ---------------------------- 2d grids ---------------------------- *)

let test_simple_grid_structure () =
  let grid = G2.create G2.Simple ~rows:3 ~cols:4 in
  let g = G2.graph grid in
  check_int "n" 12 (Graph.n g);
  (* m = rows*(cols-1) + cols*(rows-1) *)
  check_int "m" ((3 * 3) + (4 * 2)) (Graph.m g);
  check_bool "horizontal" true (Graph.mem_edge g (G2.node grid ~row:1 ~col:1) (G2.node grid ~row:1 ~col:2));
  check_bool "vertical" true (Graph.mem_edge g (G2.node grid ~row:1 ~col:1) (G2.node grid ~row:2 ~col:1));
  check_bool "no diagonal" false (Graph.mem_edge g (G2.node grid ~row:0 ~col:0) (G2.node grid ~row:1 ~col:1));
  check_bool "no wrap" false (Graph.mem_edge g (G2.node grid ~row:0 ~col:0) (G2.node grid ~row:0 ~col:3))

let test_coords_roundtrip () =
  let grid = G2.create G2.Simple ~rows:5 ~cols:7 in
  for r = 0 to 4 do
    for c = 0 to 6 do
      let v = G2.node grid ~row:r ~col:c in
      Alcotest.(check (pair int int)) "roundtrip" (r, c) (G2.coords grid v)
    done
  done

let test_cylindrical_grid () =
  let grid = G2.create G2.Cylindrical ~rows:3 ~cols:5 in
  let g = G2.graph grid in
  check_int "m" ((3 * 5) + (5 * 2)) (Graph.m g);
  check_bool "col wrap" true (Graph.mem_edge g (G2.node grid ~row:1 ~col:0) (G2.node grid ~row:1 ~col:4));
  check_bool "no row wrap" false (Graph.mem_edge g (G2.node grid ~row:0 ~col:2) (G2.node grid ~row:2 ~col:2));
  (* rows are cycles, columns are paths *)
  let row = G2.row_nodes grid 1 in
  check_bool "row is cycle" true (Walk.is_cycle g row);
  let col = G2.col_nodes grid 2 in
  check_bool "col is path" true (Walk.is_path g col)

let test_toroidal_grid () =
  let grid = G2.create G2.Toroidal ~rows:4 ~cols:5 in
  let g = G2.graph grid in
  check_int "m" (2 * 4 * 5) (Graph.m g);
  check_bool "4-regular" true (Graph.max_degree g = 4 && Graph.degree g 0 = 4);
  check_bool "row wrap" true (Graph.mem_edge g (G2.node grid ~row:0 ~col:3) (G2.node grid ~row:3 ~col:3));
  check_bool "row cycle" true (Walk.is_cycle g (G2.row_nodes grid 2));
  check_bool "col cycle" true (Walk.is_cycle g (G2.col_nodes grid 2))

let test_wrap_validation () =
  Alcotest.check_raises "cols too small"
    (Invalid_argument "Grid2d.create: wrapping columns needs cols >= 3") (fun () ->
      ignore (G2.create G2.Cylindrical ~rows:3 ~cols:2));
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Grid2d.create: nonpositive dimension") (fun () ->
      ignore (G2.create G2.Simple ~rows:0 ~cols:3))

let test_segments () =
  let grid = G2.create G2.Simple ~rows:4 ~cols:6 in
  let g = G2.graph grid in
  let seg = G2.row_segment grid ~row:2 ~col_lo:1 ~col_hi:4 in
  check_int "segment length" 4 (List.length seg);
  check_bool "segment is path" true (Walk.is_path g seg);
  let cseg = G2.col_segment grid ~col:3 ~row_lo:0 ~row_hi:3 in
  check_bool "col segment is path" true (Walk.is_path g cseg)

let test_grid_bipartite_parity () =
  List.iter
    (fun (wrap, rows, cols, expect) ->
      let grid = G2.create wrap ~rows ~cols in
      check_bool
        (Printf.sprintf "bipartite %dx%d" rows cols)
        expect
        (Bipartite.is_bipartite (G2.graph grid)))
    [
      (G2.Simple, 5, 5, true);
      (G2.Cylindrical, 4, 6, true);
      (G2.Cylindrical, 4, 5, false);
      (G2.Toroidal, 4, 6, true);
      (G2.Toroidal, 5, 6, false);
      (G2.Toroidal, 5, 5, false);
    ]

let test_canonical_colorings () =
  let simple = G2.create G2.Simple ~rows:6 ~cols:7 in
  check_bool "2-coloring proper" true
    (proper (G2.graph simple) (G2.canonical_2_coloring simple));
  check_bool "3-coloring proper (simple)" true
    (proper (G2.graph simple) (G2.canonical_3_coloring simple));
  let cyl = G2.create G2.Cylindrical ~rows:4 ~cols:9 in
  check_bool "3-coloring proper (cyl, cols%3=0)" true
    (proper (G2.graph cyl) (G2.canonical_3_coloring cyl));
  let tor = G2.create G2.Toroidal ~rows:6 ~cols:9 in
  check_bool "3-coloring proper (torus, both %3=0)" true
    (proper (G2.graph tor) (G2.canonical_3_coloring tor));
  let bad = G2.create G2.Toroidal ~rows:5 ~cols:7 in
  Alcotest.check_raises "no recipe"
    (Invalid_argument "Grid2d.canonical_3_coloring: no canonical recipe applies")
    (fun () -> ignore (G2.canonical_3_coloring bad))

(* -------------------------- triangular grids -------------------------- *)

let test_tri_grid_structure () =
  let t = Topology.Tri_grid.create ~side:3 in
  let g = Topology.Tri_grid.graph t in
  (* Nodes: (side+1)(side+2)/2 = 10. *)
  check_int "n" 10 (Graph.n g);
  check_bool "unit edge" true
    (Graph.mem_edge g (Topology.Tri_grid.node t ~x:0 ~y:0) (Topology.Tri_grid.node t ~x:1 ~y:0));
  check_bool "anti-diagonal edge" true
    (Graph.mem_edge g (Topology.Tri_grid.node t ~x:1 ~y:0) (Topology.Tri_grid.node t ~x:0 ~y:1));
  check_bool "no main diagonal" false
    (Graph.mem_edge g (Topology.Tri_grid.node t ~x:0 ~y:0) (Topology.Tri_grid.node t ~x:1 ~y:1));
  check_bool "membership" true (Topology.Tri_grid.mem t ~x:0 ~y:3);
  check_bool "outside" false (Topology.Tri_grid.mem t ~x:2 ~y:2)

let test_tri_grid_coloring () =
  let t = Topology.Tri_grid.create ~side:8 in
  check_bool "3-coloring proper" true
    (proper (Topology.Tri_grid.graph t) (Topology.Tri_grid.canonical_3_coloring t));
  check_int "chromatic number 3" 3 (Colorings.Brute.chromatic_number (Topology.Tri_grid.graph (Topology.Tri_grid.create ~side:3)))

let test_tri_grid_triangles () =
  let t = Topology.Tri_grid.create ~side:4 in
  let g = Topology.Tri_grid.graph t in
  (* An interior node belongs to 6 unit triangles. *)
  let interior = Topology.Tri_grid.node t ~x:1 ~y:1 in
  let tris = Topology.Tri_grid.triangles_containing t interior in
  check_int "interior triangles" 6 (List.length tris);
  List.iter (fun tri -> check_bool "is clique" true (Graph.is_clique g tri)) tris;
  (* Every corner of the big triangle belongs to exactly 1 unit triangle
     — including the apexes, which the paper's literal main-diagonal
     definition would have orphaned. *)
  List.iter
    (fun (x, y) ->
      let corner = Topology.Tri_grid.node t ~x ~y in
      check_int
        (Printf.sprintf "corner (%d,%d) triangles" x y)
        1
        (List.length (Topology.Tri_grid.triangles_containing t corner)))
    [ (0, 0); (4, 0); (0, 4) ];
  (* No node is left outside every triangle. *)
  Graph.iter_nodes g (fun v ->
      check_bool "in some triangle" true (Topology.Tri_grid.triangles_containing t v <> []))

(* ------------------------------ k-trees ------------------------------ *)

let test_ktree_structure () =
  let kt = Topology.Ktree.create ~k:2 ~n:10 ~attach:(fun i -> i) in
  let g = Topology.Ktree.graph kt in
  check_int "n" 10 (Graph.n g);
  (* 2-tree: m = 3 (root triangle) + 2 per extra node. *)
  check_int "m" (3 + (2 * 7)) (Graph.m g);
  Array.iter
    (fun clique -> check_bool "maximal clique" true (Graph.is_clique g (Array.to_list clique)))
    (Topology.Ktree.cliques kt)

let test_ktree_coloring () =
  List.iter
    (fun k ->
      let kt = Topology.Ktree.random ~k ~n:(4 * (k + 2)) ~seed:11 in
      let g = Topology.Ktree.graph kt in
      check_bool
        (Printf.sprintf "canonical (k+1)-coloring proper, k=%d" k)
        true
        (proper g (Topology.Ktree.canonical_coloring kt));
      check_int
        (Printf.sprintf "chromatic = k+1, k=%d" k)
        (k + 1)
        (Colorings.Brute.chromatic_number g))
    [ 1; 2; 3 ]

let test_ktree_membership () =
  let kt = Topology.Ktree.random ~k:2 ~n:12 ~seed:5 in
  for v = 0 to 11 do
    let cliques = Topology.Ktree.cliques_containing kt v in
    check_bool "in some clique" true (cliques <> []);
    List.iter
      (fun c -> check_bool "member" true (Array.exists (( = ) v) c))
      cliques
  done

let test_ktree_validation () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Ktree.create: need at least k+1 nodes") (fun () ->
      ignore (Topology.Ktree.create ~k:3 ~n:3 ~attach:(fun _ -> 0)))

(* ------------------------------ gadgets ------------------------------ *)

let test_gadget_edges () =
  let c = Topology.Gadget.create ~k:3 ~gadgets:2 () in
  let g = Topology.Gadget.graph c in
  check_int "n" 18 (Graph.n g);
  let n000 = Topology.Gadget.node c ~gadget:0 ~row:0 ~col:0 in
  let n011 = Topology.Gadget.node c ~gadget:0 ~row:1 ~col:1 in
  let n001 = Topology.Gadget.node c ~gadget:0 ~row:0 ~col:1 in
  let n010 = Topology.Gadget.node c ~gadget:0 ~row:1 ~col:0 in
  check_bool "different row+col" true (Graph.mem_edge g n000 n011);
  check_bool "same row" false (Graph.mem_edge g n000 n001);
  check_bool "same col" false (Graph.mem_edge g n000 n010);
  let m100 = Topology.Gadget.node c ~gadget:1 ~row:0 ~col:0 in
  let m111 = Topology.Gadget.node c ~gadget:1 ~row:1 ~col:1 in
  check_bool "cross-gadget different row+col" true (Graph.mem_edge g n000 m111);
  check_bool "cross-gadget same row" false (Graph.mem_edge g n000 m100)

let test_gadget_coords_roundtrip () =
  let c = Topology.Gadget.create ~k:4 ~gadgets:3 () in
  for gdt = 0 to 2 do
    for i = 0 to 3 do
      for j = 0 to 3 do
        let v = Topology.Gadget.node c ~gadget:gdt ~row:i ~col:j in
        Alcotest.(check (triple int int int)) "roundtrip" (gdt, i, j)
          (Topology.Gadget.coords c v)
      done
    done
  done

let test_gadget_k_partite () =
  List.iter
    (fun k ->
      let c = Topology.Gadget.create ~k ~gadgets:4 () in
      check_bool
        (Printf.sprintf "canonical k-coloring proper k=%d" k)
        true
        (proper (Topology.Gadget.graph c) (Topology.Gadget.canonical_k_coloring c)))
    [ 2; 3; 4 ]

let test_gadget_seam_isomorphic () =
  (* The seam variant is isomorphic to the plain chain via transposing
     every gadget past the seam. *)
  let k = 3 and gadgets = 4 and seam = 1 in
  let plain = Topology.Gadget.create ~k ~gadgets () in
  let seamed = Topology.Gadget.create ~seam ~k ~gadgets () in
  let phi v =
    let g, i, j = Topology.Gadget.coords seamed v in
    if g > seam then Topology.Gadget.node plain ~gadget:g ~row:j ~col:i
    else v
  in
  let gs = Topology.Gadget.graph seamed and gp = Topology.Gadget.graph plain in
  check_int "same edge count" (Graph.m gp) (Graph.m gs);
  Graph.iter_edges gs (fun u v ->
      check_bool "phi maps edges to edges" true (Graph.mem_edge gp (phi u) (phi v)))

let test_gadget_seam_preserves_prefix_suffix () =
  let k = 3 and gadgets = 6 and seam = 2 in
  let plain = Topology.Gadget.create ~k ~gadgets () in
  let seamed = Topology.Gadget.create ~seam ~k ~gadgets () in
  let gp = Topology.Gadget.graph plain and gs = Topology.Gadget.graph seamed in
  (* Induced subgraphs on gadgets 0..seam and on gadgets seam+1.. are
     byte-identical between the two hosts. *)
  let nodes_of range = List.concat_map (Topology.Gadget.gadget_nodes plain) range in
  let prefix = nodes_of [ 0; 1; 2 ] and suffix = nodes_of [ 3; 4; 5 ] in
  List.iter
    (fun part ->
      let ep = Subgraph.induced gp part and es = Subgraph.induced gs part in
      check_bool "identical induced subgraph" true
        (Graph.equal ep.Subgraph.graph es.Subgraph.graph))
    [ prefix; suffix ]

let test_gadget_seam_canonical_proper () =
  let c = Topology.Gadget.create ~seam:2 ~k:3 ~gadgets:5 () in
  check_bool "seam canonical proper" true
    (proper (Topology.Gadget.graph c) (Topology.Gadget.canonical_k_coloring c))

(* --------------------------- layered graphs --------------------------- *)

let base_grid rows cols = G2.graph (G2.create G2.Simple ~rows ~cols)

let test_layered_counts () =
  let base = base_grid 3 4 in
  List.iter
    (fun k ->
      let t = Topology.Layered.create ~base ~k in
      check_int
        (Printf.sprintf "n_k for k=%d" k)
        ((1 lsl (k - 2)) * 12)
        (Graph.n (Topology.Layered.graph t)))
    [ 2; 3; 4; 5 ]

let test_layered_parents () =
  let base = base_grid 3 3 in
  let t = Topology.Layered.create ~base ~k:4 in
  let g = Topology.Layered.graph t in
  Graph.iter_nodes g (fun v ->
      match Topology.Layered.parent t v with
      | None -> check_int "layer 2" 2 (Topology.Layered.layer t v)
      | Some p ->
          check_bool "adjacent to parent" true (Graph.mem_edge g v p);
          check_bool "parent in lower layer" true
            (Topology.Layered.layer t p < Topology.Layered.layer t v);
          (* v* is adjacent to all of parent's older neighbors. *)
          let pa = Topology.Layered.base_ancestor t v in
          check_int "ancestor in base layer" 2 (Topology.Layered.layer t pa))

let test_layered_twins () =
  let base = base_grid 2 3 in
  let t = Topology.Layered.create ~base ~k:3 in
  let g = Topology.Layered.graph t in
  for v = 0 to 5 do
    match Topology.Layered.duplicate_in_top_layer t v with
    | None -> Alcotest.fail "expected twin"
    | Some tw ->
        check_bool "twin adjacent" true (Graph.mem_edge g v tw);
        check_int "twin layer" 3 (Topology.Layered.layer t tw);
        (* Twin adjacent to all of v's base-graph neighbors. *)
        Array.iter
          (fun w -> if w < 6 then check_bool "twin covers neighbor" true (Graph.mem_edge g tw w))
          (Graph.neighbors base v)
  done

let test_layered_coloring () =
  let base = base_grid 3 4 in
  List.iter
    (fun k ->
      let t = Topology.Layered.create ~base ~k in
      check_bool
        (Printf.sprintf "canonical %d-coloring proper" k)
        true
        (proper (Topology.Layered.graph t) (Topology.Layered.canonical_k_coloring t)))
    [ 2; 3; 4; 5 ]

let test_layered_chromatic () =
  let base = base_grid 2 2 in
  List.iter
    (fun k ->
      let t = Topology.Layered.create ~base ~k in
      check_int
        (Printf.sprintf "chromatic(G_%d) = %d" k k)
        k
        (Colorings.Brute.chromatic_number (Topology.Layered.graph t)))
    [ 2; 3; 4 ]

let test_layered_cliques_claim () =
  (* Claim 5.3: every node is in a k-clique together with its base ancestor. *)
  let base = base_grid 2 3 in
  let k = 4 in
  let t = Topology.Layered.create ~base ~k in
  let g = Topology.Layered.graph t in
  Graph.iter_nodes g (fun v ->
      let anc = Topology.Layered.base_ancestor t v in
      let rec extend clique =
        if List.length clique >= k then true
        else
          let cands =
            Array.to_list (Graph.neighbors g (List.hd clique))
            |> List.filter (fun w ->
                   (not (List.mem w clique))
                   && List.for_all (fun u -> Graph.mem_edge g u w) clique)
          in
          List.exists (fun w -> extend (w :: clique)) cands
      in
      let start = if v = anc then [ v ] else [ anc; v ] in
      let ok = (v = anc || Graph.mem_edge g v anc) && extend start in
      check_bool "k-clique with ancestor exists" true ok)

let () =
  Alcotest.run "topology"
    [
      ( "grid2d",
        [
          Alcotest.test_case "simple structure" `Quick test_simple_grid_structure;
          Alcotest.test_case "coords roundtrip" `Quick test_coords_roundtrip;
          Alcotest.test_case "cylindrical" `Quick test_cylindrical_grid;
          Alcotest.test_case "toroidal" `Quick test_toroidal_grid;
          Alcotest.test_case "wrap validation" `Quick test_wrap_validation;
          Alcotest.test_case "segments" `Quick test_segments;
          Alcotest.test_case "bipartite parity" `Quick test_grid_bipartite_parity;
          Alcotest.test_case "canonical colorings" `Quick test_canonical_colorings;
        ] );
      ( "tri-grid",
        [
          Alcotest.test_case "structure" `Quick test_tri_grid_structure;
          Alcotest.test_case "coloring" `Quick test_tri_grid_coloring;
          Alcotest.test_case "triangles" `Quick test_tri_grid_triangles;
        ] );
      ( "ktree",
        [
          Alcotest.test_case "structure" `Quick test_ktree_structure;
          Alcotest.test_case "coloring + chromatic" `Quick test_ktree_coloring;
          Alcotest.test_case "membership" `Quick test_ktree_membership;
          Alcotest.test_case "validation" `Quick test_ktree_validation;
        ] );
      ( "gadget",
        [
          Alcotest.test_case "edge rule" `Quick test_gadget_edges;
          Alcotest.test_case "coords roundtrip" `Quick test_gadget_coords_roundtrip;
          Alcotest.test_case "k-partite" `Quick test_gadget_k_partite;
          Alcotest.test_case "seam isomorphic" `Quick test_gadget_seam_isomorphic;
          Alcotest.test_case "seam preserves ends" `Quick test_gadget_seam_preserves_prefix_suffix;
          Alcotest.test_case "seam canonical proper" `Quick test_gadget_seam_canonical_proper;
        ] );
      ( "layered",
        [
          Alcotest.test_case "counts" `Quick test_layered_counts;
          Alcotest.test_case "parents" `Quick test_layered_parents;
          Alcotest.test_case "twins" `Quick test_layered_twins;
          Alcotest.test_case "coloring" `Quick test_layered_coloring;
          Alcotest.test_case "chromatic" `Quick test_layered_chromatic;
          Alcotest.test_case "claim 5.3 cliques" `Quick test_layered_cliques_claim;
        ] );
    ]
