open Grid_graph
module O = Models.Oracle
module V = Models.View
module FH = Models.Fixed_host

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_canonicalize () =
  (* Handles [5;2;9] with raw parts [1;0;1]: scanning by handle 2,5,9 the
     first part seen is 0 -> 0, then 1 -> 1. *)
  Alcotest.(check (array int)) "renamed" [| 1; 0; 1 |] (O.canonicalize [| 1; 0; 1 |] [ 5; 2; 9 ]);
  Alcotest.(check (array int)) "stable under renaming" [| 0; 1; 0 |]
    (O.canonicalize [| 7; 3; 7 |] [ 0; 1; 2 ]);
  Alcotest.(check (array int)) "empty" [||] (O.canonicalize [||] [])

let test_canonicalize_permutation_invariant () =
  (* Canonicalization must identify partitions that differ by renaming. *)
  let handles = [ 0; 1; 2; 3 ] in
  let a = O.canonicalize [| 2; 0; 2; 1 |] handles in
  let b = O.canonicalize [| 0; 1; 0; 2 |] handles in
  Alcotest.(check (array int)) "same canonical form" a b

(* View over a whole host graph, for direct oracle tests. *)
let full_view host =
  {
    V.n_total = Graph.n host;
    palette = 3;
    node_count = (fun () -> Graph.n host);
    neighbors = (fun v -> Array.to_list (Graph.neighbors host v));
    mem_edge = (fun a b -> Graph.mem_edge host a b);
    id = (fun v -> v + 1);
    output = (fun _ -> None);
    hint = (fun _ -> None);
    target = 0;
    new_nodes = [];
    step = 1;
  }

let test_bipartition_oracle () =
  let host = Graph.path_graph 6 in
  let view = full_view host in
  let parts = O.bipartition.O.query view [ 0; 1; 2; 3 ] in
  Alcotest.(check (array int)) "alternating" [| 0; 1; 0; 1 |] parts;
  Alcotest.check_raises "disconnected set"
    (Invalid_argument "Oracle.bipartition: queried set not connected") (fun () ->
      ignore (O.bipartition.O.query view [ 0; 2 ]))

let test_bipartition_oracle_odd_cycle () =
  let host = Graph.cycle_graph 5 in
  let view = full_view host in
  Alcotest.check_raises "odd cycle"
    (Invalid_argument "Oracle.bipartition: odd cycle in queried set") (fun () ->
      ignore (O.bipartition.O.query view [ 0; 1; 2; 3; 4 ]))

let test_of_canonical_coloring () =
  let coloring = [| 0; 1; 2; 1; 0 |] in
  let o = O.of_canonical_coloring ~parts:3 ~radius:1 ~to_host:(fun h -> h) ~host_coloring:coloring in
  check_int "radius" 1 o.O.radius;
  check_int "parts" 3 o.O.parts;
  let view = full_view (Graph.path_graph 5) in
  (* Host colors at 2,3,4 are 2,1,0 — three distinct parts, renamed in
     handle order. *)
  Alcotest.(check (array int)) "restricted + canonical" [| 0; 1; 2 |]
    (o.O.query view [ 2; 3; 4 ]);
  (* Host colors at 0,3,4 are 0,1,0 — a repeated part keeps its name. *)
  Alcotest.(check (array int)) "repetition" [| 0; 1; 0 |] (o.O.query view [ 0; 3; 4 ])

(* Definition 1.4 checked directly: for random connected fragments of a
   triangular grid, every proper 3-coloring of the 1-radius neighborhood
   restricts to the same partition of the fragment, up to permutation. *)
let canonical_partition raw handles = O.canonicalize (Array.of_list raw) handles

let liuc_check graph ~ell ~parts fragment =
  let ball = Bfs.ball graph fragment ell in
  let emb = Subgraph.induced graph ball in
  let fragment_local = List.map (Subgraph.of_host_exn emb) fragment in
  let witness = ref None in
  let ok = ref true in
  Colorings.Brute.iter_colorings emb.Subgraph.graph ~colors:parts (fun colors ->
      let restricted =
        canonical_partition (List.map (fun v -> colors.(v)) fragment_local) fragment
      in
      match !witness with
      | None -> witness := Some restricted
      | Some w -> if w <> restricted then ok := false);
  (!witness <> None, !ok)

(* The frontier-expansion sampler now lives in Proptest.Domain_gen
   (seeded by the engine's one splittable source); [seed] keeps the
   per-iteration independence the old ad-hoc Random.State gave. *)
let random_connected_fragment graph ~seed ~size =
  Proptest.Gen.generate
    (Proptest.Domain_gen.connected_fragment graph ~size)
    ~size:0
    (Proptest.Rng.of_seed seed)

let test_liuc_triangular_grid () =
  let t = Topology.Tri_grid.create ~side:5 in
  let g = Topology.Tri_grid.graph t in
  for seed = 0 to 7 do
    let fragment = random_connected_fragment g ~seed ~size:5 in
    let nonempty, unique = liuc_check g ~ell:1 ~parts:3 fragment in
    check_bool "colorings exist" true nonempty;
    check_bool "partition unique up to permutation" true unique
  done

let test_liuc_ktree () =
  let kt = Topology.Ktree.random ~k:2 ~n:14 ~seed:3 in
  let g = Topology.Ktree.graph kt in
  for seed = 0 to 5 do
    let fragment = random_connected_fragment g ~seed ~size:4 in
    let nonempty, unique = liuc_check g ~ell:1 ~parts:3 fragment in
    check_bool "colorings exist" true nonempty;
    check_bool "unique partition" true unique
  done

let test_liuc_bipartite_radius_0 () =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:4 ~cols:4 in
  let g = Topology.Grid2d.graph grid in
  for seed = 0 to 5 do
    let fragment = random_connected_fragment g ~seed ~size:5 in
    let nonempty, unique = liuc_check g ~ell:0 ~parts:2 fragment in
    check_bool "colorings exist" true nonempty;
    check_bool "unique partition" true unique
  done

(* A NON-example: the gadget chain G* is k-partite but does NOT admit a
   locally inferable unique coloring — a single gadget's k-coloring is
   not unique up to permutation (row- and column-partitions both work). *)
let test_gadget_chain_not_liuc () =
  let chain = Topology.Gadget.create ~k:3 ~gadgets:3 () in
  let g = Topology.Gadget.graph chain in
  let fragment = Topology.Gadget.gadget_nodes chain 1 in
  let _, unique = liuc_check g ~ell:1 ~parts:3 fragment in
  check_bool "partition NOT unique" false unique

let test_oracles_constructors () =
  let tri = Topology.Tri_grid.create ~side:4 in
  let o = Online_local.Oracles.tri_grid tri ~to_host:(fun h -> h) in
  check_int "tri parts" 3 o.O.parts;
  check_int "tri radius" 1 o.O.radius;
  let kt = Topology.Ktree.random ~k:3 ~n:12 ~seed:0 in
  let ok = Online_local.Oracles.ktree kt ~to_host:(fun h -> h) in
  check_int "ktree parts" 4 ok.O.parts;
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:4 ~cols:4 in
  let og = Online_local.Oracles.grid_bipartition grid ~to_host:(fun h -> h) in
  check_int "grid parts" 2 og.O.parts;
  check_int "grid radius" 0 og.O.radius;
  let odd = Topology.Grid2d.create Topology.Grid2d.Cylindrical ~rows:3 ~cols:5 in
  Alcotest.check_raises "odd cylinder rejected"
    (Invalid_argument "Oracles.grid_bipartition: grid not bipartite") (fun () ->
      ignore (Online_local.Oracles.grid_bipartition odd ~to_host:(fun h -> h)))

let test_oracle_through_executor () =
  (* The oracle handed to an algorithm must answer about view handles. *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:5 ~cols:5 in
  let host = Topology.Grid2d.graph grid in
  let seen_parts = ref None in
  let probe =
    {
      Models.Algorithm.name = "oracle-probe";
      locality = (fun ~n:_ -> 1);
      pure = false;
      instantiate =
        (fun ~n:_ ~palette:_ ~oracle ->
          let o = Option.get oracle in
          fun view ->
            let ball = V.ball view view.V.target 1 in
            seen_parts := Some (o.O.query view ball);
            0);
    }
  in
  ignore
    (FH.run
       ~oracle:(Online_local.Oracles.grid_bipartition grid)
       ~host ~palette:3 ~algorithm:probe
       ~order:[ Topology.Grid2d.node grid ~row:2 ~col:2 ]
       ());
  match !seen_parts with
  | None -> Alcotest.fail "oracle never queried"
  | Some parts ->
      check_int "five nodes" 5 (Array.length parts);
      (* center + 4 neighbors: center alone in one part. *)
      let zeros = Array.fold_left (fun acc p -> if p = 0 then acc + 1 else acc) 0 parts in
      check_bool "2 parts split 1/4 or 4/1" true (zeros = 1 || zeros = 4)

(* ------------------ structural triangle-chain oracle ------------------ *)

let test_triangle_chain_matches_canonical () =
  (* On a triangular grid, the structural oracle and the host-coloring
     oracle return the same partition (after canonicalization) for any
     connected query. *)
  let t = Topology.Tri_grid.create ~side:6 in
  let g = Topology.Tri_grid.graph t in
  let view = full_view g in
  let canonical = Online_local.Oracles.tri_grid t ~to_host:(fun h -> h) in
  for seed = 0 to 7 do
    let frag = random_connected_fragment g ~seed ~size:6 in
    let a = Online_local.Oracles.triangle_chain.O.query view frag in
    let b = canonical.O.query view frag in
    Alcotest.(check (array int)) (Printf.sprintf "seed %d" seed) b a
  done

let test_triangle_chain_rejects_triangle_free () =
  let g = Topology.Grid2d.graph (Topology.Grid2d.create Topology.Grid2d.Simple ~rows:4 ~cols:4) in
  let view = full_view g in
  Alcotest.check_raises "no triangles"
    (Invalid_argument "Oracles.triangle_chain: a queried node lies on no triangle")
    (fun () -> ignore (Online_local.Oracles.triangle_chain.O.query view [ 0; 1 ]))

let test_kp1_with_structural_oracle () =
  (* The Theorem 4 algorithm runs on a triangular grid with the purely
     structural oracle — no host coloring involved anywhere. *)
  let t = Topology.Tri_grid.create ~side:16 in
  let host = Topology.Tri_grid.graph t in
  let algo = Online_local.Kp1_coloring.make ~k:3 ~locality:(fun ~n:_ -> 5) () in
  for seed = 0 to 2 do
    let order = FH.orders ~all:host (`Random seed) in
    let outcome =
      FH.run
        ~oracle:(fun ~to_host ->
          ignore to_host;
          Online_local.Oracles.triangle_chain)
        ~host ~palette:4 ~algorithm:algo ~order ()
    in
    check_bool
      (Printf.sprintf "proper with structural oracle, seed %d" seed)
      true
      (Models.Run_stats.succeeded outcome ~colors:4 ~host)
  done

let test_clique_chain_ktree () =
  (* On a k-tree, the structural (k+1)-clique chain recovers the same
     partition as the construction coloring. *)
  List.iter
    (fun k ->
      let kt = Topology.Ktree.random ~k ~n:30 ~seed:(k * 5) in
      let g = Topology.Ktree.graph kt in
      let view = full_view g in
      let structural = Online_local.Oracles.clique_chain ~parts:(k + 1) ~radius:1 in
      let canonical = Online_local.Oracles.ktree kt ~to_host:(fun h -> h) in
      for seed = 0 to 3 do
        let frag = random_connected_fragment g ~seed ~size:5 in
        Alcotest.(check (array int))
          (Printf.sprintf "k=%d seed=%d" k seed)
          (canonical.O.query view frag)
          (structural.O.query view frag)
      done)
    [ 2; 3 ]

let test_kp1_with_clique_chain_on_ktree () =
  let k = 2 in
  let kt = Topology.Ktree.random ~k ~n:150 ~seed:9 in
  let host = Topology.Ktree.graph kt in
  let algo = Online_local.Kp1_coloring.make ~k:(k + 1) ~locality:(fun ~n:_ -> 3) () in
  let order = FH.orders ~all:host (`Random 4) in
  let outcome =
    FH.run
      ~oracle:(fun ~to_host ->
        ignore to_host;
        Online_local.Oracles.clique_chain ~parts:(k + 1) ~radius:1)
      ~host ~palette:(k + 2) ~algorithm:algo ~order ()
  in
  check_bool "proper with structural clique oracle" true
    (Models.Run_stats.succeeded outcome ~colors:(k + 2) ~host)

let test_clique_chain_layered () =
  (* G_k is chained by k-cliques (Claim 5.5): the structural oracle
     agrees with the canonical layered oracle. *)
  let base =
    Topology.Grid2d.graph (Topology.Grid2d.create Topology.Grid2d.Simple ~rows:3 ~cols:3)
  in
  let k = 3 in
  let lay = Topology.Layered.create ~base ~k in
  let g = Topology.Layered.graph lay in
  let view = full_view g in
  let structural = Online_local.Oracles.clique_chain ~parts:k ~radius:k in
  let canonical = Online_local.Oracles.layered lay ~to_host:(fun h -> h) in
  for seed = 0 to 3 do
    let frag = random_connected_fragment g ~seed ~size:6 in
    Alcotest.(check (array int))
      (Printf.sprintf "seed %d" seed)
      (canonical.O.query view frag)
      (structural.O.query view frag)
  done

let () =
  Alcotest.run "oracle"
    [
      ( "canonicalize",
        [
          Alcotest.test_case "basic" `Quick test_canonicalize;
          Alcotest.test_case "permutation invariant" `Quick test_canonicalize_permutation_invariant;
        ] );
      ( "builtin",
        [
          Alcotest.test_case "bipartition" `Quick test_bipartition_oracle;
          Alcotest.test_case "odd cycle rejected" `Quick test_bipartition_oracle_odd_cycle;
          Alcotest.test_case "of_canonical_coloring" `Quick test_of_canonical_coloring;
          Alcotest.test_case "constructors" `Quick test_oracles_constructors;
          Alcotest.test_case "through executor" `Quick test_oracle_through_executor;
        ] );
      ( "triangle-chain",
        [
          Alcotest.test_case "matches canonical" `Quick test_triangle_chain_matches_canonical;
          Alcotest.test_case "rejects triangle-free" `Quick test_triangle_chain_rejects_triangle_free;
          Alcotest.test_case "drives kp1" `Slow test_kp1_with_structural_oracle;
          Alcotest.test_case "clique chain on k-trees" `Quick test_clique_chain_ktree;
          Alcotest.test_case "clique chain drives kp1 on k-trees" `Slow
            test_kp1_with_clique_chain_on_ktree;
          Alcotest.test_case "clique chain on G_k" `Quick test_clique_chain_layered;
        ] );
      ( "liuc (definition 1.4)",
        [
          Alcotest.test_case "triangular grid" `Slow test_liuc_triangular_grid;
          Alcotest.test_case "k-tree" `Slow test_liuc_ktree;
          Alcotest.test_case "bipartite radius 0" `Quick test_liuc_bipartite_radius_0;
          Alcotest.test_case "gadget chain NOT liuc" `Quick test_gadget_chain_not_liuc;
        ] );
    ]
