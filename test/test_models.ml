open Grid_graph
module A = Models.Algorithm
module V = Models.View
module FH = Models.Fixed_host
module RS = Models.Run_stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let grid rows cols = Topology.Grid2d.create Topology.Grid2d.Simple ~rows ~cols

(* An algorithm that records what it sees, for auditing the executor. *)
let spy seen =
  A.stateless ~name:"spy" ~locality:(fun ~n:_ -> 2) (fun view ->
      seen := view.V.new_nodes :: !seen;
      0)

let test_reveal_is_union_of_balls () =
  let g2 = grid 7 7 in
  let host = Topology.Grid2d.graph g2 in
  let t = FH.start ~host ~palette:3 ~algorithm:A.greedy_first_fit () in
  let v1 = Topology.Grid2d.node g2 ~row:3 ~col:3 in
  ignore (FH.present t v1);
  let revealed = FH.revealed_host_nodes t in
  let expected = Bfs.ball host [ v1 ] 1 in
  Alcotest.(check (list int)) "first ball" expected (List.sort compare revealed);
  let v2 = Topology.Grid2d.node g2 ~row:0 ~col:0 in
  ignore (FH.present t v2);
  let expected2 = List.sort_uniq compare (expected @ Bfs.ball host [ v2 ] 1) in
  Alcotest.(check (list int)) "union of balls" expected2
    (List.sort compare (FH.revealed_host_nodes t))

let test_view_is_induced_subgraph () =
  let g2 = grid 6 6 in
  let host = Topology.Grid2d.graph g2 in
  let captured = ref None in
  let capture =
    A.stateless ~name:"capture" ~locality:(fun ~n:_ -> 2) (fun view ->
        captured := Some (V.snapshot_graph view);
        0)
  in
  let t = FH.start ~host ~palette:3 ~algorithm:capture () in
  ignore (FH.present t (Topology.Grid2d.node g2 ~row:2 ~col:2));
  ignore (FH.present t (Topology.Grid2d.node g2 ~row:2 ~col:3));
  match !captured with
  | None -> Alcotest.fail "no view captured"
  | Some snap ->
      (* The snapshot must be isomorphic to the induced subgraph on the
         revealed host nodes — and with our handle order, equal up to the
         executor's to_host relabeling. *)
      let revealed = FH.revealed_host_nodes t in
      let emb = Subgraph.induced host revealed in
      check_int "same node count" (Graph.n emb.Subgraph.graph) (Graph.n snap);
      check_int "same edge count" (Graph.m emb.Subgraph.graph) (Graph.m snap)

let test_presented_twice_rejected () =
  let host = Graph.path_graph 5 in
  let t = FH.start ~host ~palette:3 ~algorithm:A.greedy_first_fit () in
  ignore (FH.present t 2);
  Alcotest.check_raises "double present"
    (RS.Dishonest_transcript "Fixed_host.present: node 2 presented twice") (fun () ->
      ignore (FH.present t 2))

let test_palette_overflow_certificate () =
  let bad = A.stateless ~name:"bad" ~locality:(fun ~n:_ -> 1) (fun _ -> 99) in
  let host = Graph.path_graph 3 in
  let outcome = FH.run ~host ~palette:3 ~algorithm:bad ~order:[ 0; 1; 2 ] () in
  (match outcome.RS.violation with
  | Some (RS.Palette_overflow { color = 99; _ }) -> ()
  | _ -> Alcotest.fail "expected palette overflow");
  check_bool "not succeeded" false (RS.succeeded outcome ~colors:3 ~host)

let test_greedy_succeeds_on_path () =
  let host = Graph.path_graph 20 in
  let outcome =
    FH.run ~host ~palette:2 ~algorithm:A.greedy_first_fit
      ~order:(FH.orders ~all:host `Sequential) ()
  in
  check_bool "greedy 2-colors a path sequentially" true
    (RS.succeeded outcome ~colors:2 ~host)

let test_greedy_can_fail_on_adversarial_order () =
  (* Classic: color both ends of each odd-even pair first. *)
  let host = Graph.path_graph 6 in
  (* Present 0,3 far apart (T=1 balls disjoint)... greedy colors both 0;
     then 1,4 get 1; then 2 adjacent to 1(=1) and 3(=0) -> stuck with
     palette 2. *)
  let outcome =
    FH.run ~host ~palette:2 ~algorithm:A.greedy_first_fit ~order:[ 0; 3; 1; 4; 2; 5 ] ()
  in
  check_bool "violated" true (outcome.RS.violation <> None)

let test_ids_and_hints_plumbing () =
  let host = Graph.path_graph 3 in
  let got_ids = ref [] and got_hint = ref None in
  let probe =
    A.stateless ~name:"probe" ~locality:(fun ~n:_ -> 1) (fun view ->
        got_ids := List.map view.V.id view.V.new_nodes;
        got_hint := view.V.hint view.V.target;
        0)
  in
  let outcome =
    FH.run
      ~ids:(fun v -> 100 + v)
      ~hints:(fun v -> Some (V.Layer_pos { layer = v }))
      ~host ~palette:3 ~algorithm:probe ~order:[ 1 ] ()
  in
  ignore outcome;
  check_bool "custom ids" true (List.mem 101 !got_ids);
  check_bool "custom hint" true (!got_hint = Some (V.Layer_pos { layer = 1 }))

let test_spy_sees_monotone_reveals () =
  let g2 = grid 8 8 in
  let host = Topology.Grid2d.graph g2 in
  let seen = ref [] in
  let order = FH.orders ~all:host (`Random 13) in
  ignore (FH.run ~host ~palette:3 ~algorithm:(spy seen) ~order ());
  (* New handles must be strictly increasing across steps. *)
  let all = List.concat (List.rev !seen) in
  let sorted = List.sort compare all in
  check_bool "handles unique" true (List.length (List.sort_uniq compare all) = List.length all);
  check_bool "allocation order" true (all = sorted)

(* ------------------------- LOCAL model ------------------------- *)

let test_local_stripes_runs () =
  let g2 = grid 5 6 in
  let host = Topology.Grid2d.graph g2 in
  let algo = Models.Local_model.grid_stripes g2 in
  let coloring = Models.Local_model.run ~host ~palette:3 algo in
  check_bool "proper" true (Colorings.Coloring.is_proper_total host coloring ~colors:3)

let test_local_ball_view_is_local () =
  (* A LOCAL algorithm at locality 1 sees exactly its closed neighborhood. *)
  let sizes = ref [] in
  let algo =
    {
      Models.Local_model.name = "size-probe";
      locality = (fun ~n:_ -> 1);
      output =
        (fun ~n:_ ~palette:_ view ->
          sizes := view.V.node_count () :: !sizes;
          0);
    }
  in
  let host = Graph.cycle_graph 10 in
  ignore (Models.Local_model.run ~host ~palette:1 algo);
  check_bool "every view has 3 nodes" true (List.for_all (( = ) 3) !sizes)

let test_local_to_online_simulation () =
  (* The simulated LOCAL algorithm must produce the same coloring in
     Online-LOCAL as in LOCAL, for every presentation order. *)
  let g2 = grid 4 5 in
  let host = Topology.Grid2d.graph g2 in
  let algo = Models.Local_model.grid_stripes g2 in
  let direct = Models.Local_model.run ~host ~palette:3 algo in
  List.iter
    (fun order ->
      let outcome =
        FH.run ~host ~palette:3 ~algorithm:(Models.Local_model.to_online algo) ~order ()
      in
      check_bool "simulation succeeded" true (RS.succeeded outcome ~colors:3 ~host);
      Graph.iter_nodes host (fun v ->
          check_int "same output"
            (Colorings.Coloring.get_exn direct v)
            (Colorings.Coloring.get_exn outcome.RS.coloring v)))
    [ FH.orders ~all:host `Sequential; FH.orders ~all:host (`Random 4) ]

(* ------------------------- SLOCAL model ------------------------- *)

let test_slocal_greedy () =
  let host = Graph.complete 5 in
  let order = FH.orders ~all:host `Sequential in
  let coloring = Models.Slocal.run ~host ~palette:5 ~order Models.Slocal.greedy in
  check_bool "greedy (degree+1)-colors K5" true
    (Colorings.Coloring.is_proper_total host coloring ~colors:5)

let test_slocal_to_online_matches () =
  let g2 = grid 5 5 in
  let host = Topology.Grid2d.graph g2 in
  let order = FH.orders ~all:host (`Random 21) in
  let direct = Models.Slocal.run ~host ~palette:4 ~order Models.Slocal.greedy in
  let outcome =
    FH.run ~host ~palette:4
      ~algorithm:(Models.Slocal.to_online Models.Slocal.greedy)
      ~order ()
  in
  Graph.iter_nodes host (fun v ->
      check_int "same greedy output"
        (Colorings.Coloring.get_exn direct v)
        (Colorings.Coloring.get_exn outcome.RS.coloring v))

let test_partial_order_partial_coloring () =
  (* Presenting only part of the host yields a partial coloring, which
     never counts as success. *)
  let host = Graph.path_graph 10 in
  let outcome =
    FH.run ~host ~palette:2 ~algorithm:A.greedy_first_fit ~order:[ 0; 1; 2 ] ()
  in
  check_bool "no violation" true (outcome.RS.violation = None);
  check_int "three colored" 3 (Colorings.Coloring.colored_count outcome.RS.coloring);
  check_bool "not succeeded" false (RS.succeeded outcome ~colors:2 ~host)

let test_algorithm_exception_becomes_certificate () =
  let crasher =
    A.stateless ~name:"crasher" ~locality:(fun ~n:_ -> 1) (fun view ->
        if view.V.step = 2 then failwith "boom" else 0)
  in
  let host = Graph.path_graph 4 in
  let outcome = FH.run ~host ~palette:3 ~algorithm:crasher ~order:[ 0; 2; 3 ] () in
  match outcome.RS.violation with
  | Some (RS.Algorithm_failure { node = 2; message; _ }) ->
      check_bool "message mentions boom" true
        (String.length message > 0);
      (* The run stopped at the failing step. *)
      check_int "stopped" 2 outcome.RS.presented
  | other ->
      Alcotest.failf "expected algorithm failure, got %s"
        (match other with
        | None -> "success"
        | Some v -> Format.asprintf "%a" RS.pp_violation v)

let test_run_with_duplicate_order_certifies () =
  (* [run] converts a duplicated reveal order into a typed violation
     instead of letting [present]'s invalid_arg abort the run. *)
  let host = Graph.path_graph 5 in
  let outcome =
    FH.run ~host ~palette:3 ~algorithm:A.greedy_first_fit ~order:[ 0; 2; 2; 3 ] ()
  in
  (match outcome.RS.violation with
  | Some (RS.Repeated_presentation 2) -> ()
  | _ -> Alcotest.fail "expected repeated-presentation certificate");
  check_int "stopped at the duplicate" 2 outcome.RS.presented

let test_extreme_colors_certified () =
  let at c =
    let bad = A.stateless ~name:"bad" ~locality:(fun ~n:_ -> 1) (fun _ -> c) in
    let outcome =
      FH.run ~host:(Graph.path_graph 3) ~palette:3 ~algorithm:bad ~order:[ 0; 1 ] ()
    in
    match outcome.RS.violation with
    | Some (RS.Palette_overflow { color; _ }) -> color
    | _ -> Alcotest.fail "expected palette overflow"
  in
  check_int "max_int" max_int (at max_int);
  check_int "negative" (-5) (at (-5));
  check_int "min_int" min_int (at min_int)

let test_empty_order_clean_result () =
  let host = Graph.path_graph 4 in
  let outcome = FH.run ~host ~palette:3 ~algorithm:A.greedy_first_fit ~order:[] () in
  check_bool "no violation" true (outcome.RS.violation = None);
  check_int "nothing presented" 0 outcome.RS.presented;
  check_int "nothing colored" 0 (Colorings.Coloring.colored_count outcome.RS.coloring);
  check_bool "not a success" false (RS.succeeded outcome ~colors:3 ~host)

let test_fatal_exception_not_contained () =
  let fatal =
    A.stateless ~name:"fatal" ~locality:(fun ~n:_ -> 1) (fun _ -> raise Out_of_memory)
  in
  Alcotest.check_raises "out of memory propagates" Out_of_memory (fun () ->
      ignore
        (FH.run ~host:(Graph.path_graph 3) ~palette:3 ~algorithm:fatal ~order:[ 0 ] ()))

let test_failure_records_backtrace_field () =
  let crasher =
    A.stateless ~name:"crasher" ~locality:(fun ~n:_ -> 1) (fun _ -> failwith "boom")
  in
  let outcome =
    FH.run ~host:(Graph.path_graph 3) ~palette:3 ~algorithm:crasher ~order:[ 0 ] ()
  in
  match outcome.RS.violation with
  | Some (RS.Algorithm_failure { backtrace; _ }) ->
      (* Recording is enabled by the harness; the field exists and is a
         string either way. *)
      check_bool "backtrace is a string" true (String.length backtrace >= 0)
  | _ -> Alcotest.fail "expected algorithm failure"

let test_kp1_oracle_parts_mismatch () =
  let g2 = grid 4 4 in
  let host = Topology.Grid2d.graph g2 in
  let algo = Online_local.Kp1_coloring.make ~k:3 () in
  Alcotest.check_raises "parts mismatch" (Invalid_argument "kp1: oracle parts <> k")
    (fun () ->
      ignore
        (FH.run
           ~oracle:(Online_local.Oracles.grid_bipartition g2)
           ~host ~palette:4 ~algorithm:algo ~order:[ 0 ] ()))

let test_oracle_radius_extends_reveals () =
  (* With an oracle of radius 2 and locality 1, each presentation must
     reveal the radius-3 host ball. *)
  let g2 = grid 9 9 in
  let host = Topology.Grid2d.graph g2 in
  let algo =
    {
      Models.Algorithm.name = "noop";
      locality = (fun ~n:_ -> 1);
      pure = false;
      instantiate = (fun ~n:_ ~palette:_ ~oracle:_ _ -> 0);
    }
  in
  let oracle ~to_host =
    ignore to_host;
    {
      Models.Oracle.parts = 2;
      radius = 2;
      query = (fun _ handles -> Array.make (List.length handles) 0);
    }
  in
  let t = FH.start ~oracle ~host ~palette:3 ~algorithm:algo () in
  let center = Topology.Grid2d.node g2 ~row:4 ~col:4 in
  ignore (FH.present t center);
  let expected = Bfs.ball host [ center ] 3 in
  Alcotest.(check (list int))
    "radius = locality + oracle radius" expected
    (List.sort compare (FH.revealed_host_nodes t))

let test_orders () =
  let host = Graph.path_graph 6 in
  Alcotest.(check (list int)) "sequential" [ 0; 1; 2; 3; 4; 5 ]
    (FH.orders ~all:host `Sequential);
  let shuffled = FH.orders ~all:host (`Random 3) in
  check_int "permutation" 6 (List.length (List.sort_uniq compare shuffled));
  Alcotest.(check (list int)) "deterministic" shuffled (FH.orders ~all:host (`Random 3))

(* Pinned renderings: pp_violation/pp_outcome feed trace Audit events,
   checkpointed sweep cells and EXPERIMENTS.md tables, so their exact
   text is a compatibility surface — change it deliberately. *)
let test_pp_violation_pinned () =
  let render v = Format.asprintf "%a" RS.pp_violation v in
  Alcotest.(check string) "monochromatic edge" "monochromatic edge 3 -- 7"
    (render (RS.Monochromatic_edge (3, 7)));
  Alcotest.(check string) "palette overflow" "node 2 got out-of-palette color 9"
    (render (RS.Palette_overflow { node = 2; color = 9 }));
  Alcotest.(check string) "repeated presentation" "node 5 presented twice"
    (render (RS.Repeated_presentation 5));
  Alcotest.(check string) "failure without backtrace"
    "algorithm raised on node 1: Failure(\"boom\")"
    (render
       (RS.Algorithm_failure
          { node = 1; message = "Failure(\"boom\")"; backtrace = "" }));
  Alcotest.(check string) "failure with backtrace"
    "algorithm raised on node 1: Failure(\"boom\") [backtrace recorded]"
    (render
       (RS.Algorithm_failure
          { node = 1; message = "Failure(\"boom\")"; backtrace = "Raised at ..." }))

let test_pp_outcome_pinned () =
  let host = Graph.path_graph 3 in
  let ok =
    FH.run ~host ~palette:3 ~algorithm:A.greedy_first_fit ~order:[ 0; 1; 2 ] ()
  in
  Alcotest.(check string) "clean run" "steps=3 revealed=3 max_view=3 colored=3/3 ok"
    (Format.asprintf "%a" RS.pp_outcome ok);
  let bad =
    let c = A.stateless ~name:"c0" ~locality:(fun ~n:_ -> 1) (fun _ -> 0) in
    FH.run ~host ~palette:3 ~algorithm:c ~order:[ 0; 1; 2 ] ()
  in
  Alcotest.(check string) "violating run"
    "steps=3 revealed=3 max_view=3 colored=3/3 VIOLATION: monochromatic edge 0 -- 1"
    (Format.asprintf "%a" RS.pp_outcome bad)

let () =
  Alcotest.run "models"
    [
      ( "fixed-host",
        [
          Alcotest.test_case "reveal = union of balls" `Quick test_reveal_is_union_of_balls;
          Alcotest.test_case "view induced subgraph" `Quick test_view_is_induced_subgraph;
          Alcotest.test_case "double present rejected" `Quick test_presented_twice_rejected;
          Alcotest.test_case "palette overflow" `Quick test_palette_overflow_certificate;
          Alcotest.test_case "greedy path sequential" `Quick test_greedy_succeeds_on_path;
          Alcotest.test_case "greedy adversarial order" `Quick test_greedy_can_fail_on_adversarial_order;
          Alcotest.test_case "ids and hints" `Quick test_ids_and_hints_plumbing;
          Alcotest.test_case "monotone reveals" `Quick test_spy_sees_monotone_reveals;
          Alcotest.test_case "orders" `Quick test_orders;
          Alcotest.test_case "oracle radius accounting" `Quick
            test_oracle_radius_extends_reveals;
          Alcotest.test_case "partial order partial coloring" `Quick
            test_partial_order_partial_coloring;
          Alcotest.test_case "kp1 oracle parts mismatch" `Quick
            test_kp1_oracle_parts_mismatch;
          Alcotest.test_case "exception becomes certificate" `Quick
            test_algorithm_exception_becomes_certificate;
          Alcotest.test_case "duplicate order certified" `Quick
            test_run_with_duplicate_order_certifies;
          Alcotest.test_case "extreme colors certified" `Quick
            test_extreme_colors_certified;
          Alcotest.test_case "empty order clean result" `Quick
            test_empty_order_clean_result;
          Alcotest.test_case "fatal exception not contained" `Quick
            test_fatal_exception_not_contained;
          Alcotest.test_case "backtrace recorded" `Quick
            test_failure_records_backtrace_field;
        ] );
      ( "local",
        [
          Alcotest.test_case "stripes runs" `Quick test_local_stripes_runs;
          Alcotest.test_case "ball views local" `Quick test_local_ball_view_is_local;
          Alcotest.test_case "to_online simulation" `Quick test_local_to_online_simulation;
        ] );
      ( "slocal",
        [
          Alcotest.test_case "greedy" `Quick test_slocal_greedy;
          Alcotest.test_case "to_online matches" `Quick test_slocal_to_online_matches;
        ] );
      ( "run-stats",
        [
          Alcotest.test_case "pp_violation pinned" `Quick test_pp_violation_pinned;
          Alcotest.test_case "pp_outcome pinned" `Quick test_pp_outcome_pinned;
        ] );
    ]
