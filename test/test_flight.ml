(* The flight recorder: binary codec roundtrip over the whole event
   vocabulary, anomaly-triggered flushing, the teardown tail flush, ring
   capacity, and the format sniff trace_report uses. *)

module T = Harness.Trace
module F = Harness.Flight

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp_file suffix f =
  let path = Filename.temp_file "flight_test" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* One event per constructor, with field values exercising negatives,
   zeros, options, floats and embedded newlines/NULs in strings. *)
let all_events : T.event list =
  [
    T.Trace_header { version = T.version; program = "test" };
    T.Cell_start { key = "k space\ttab" };
    T.Cell_finish { key = "k"; status = "ok" };
    T.Checkpoint_flush { key = "k"; bytes = 0 };
    T.Worker_start { index = 3 };
    T.Worker_stop { index = 3; tasks = 17 };
    T.Game_start
      {
        adversary = "thm1-grid";
        algorithm = "greedy";
        n = 400;
        max_color_calls = Some 12;
        max_work = None;
        deadline = Some 1.5;
      };
    T.Game_verdict
      {
        adversary = "thm1-grid";
        algorithm = "greedy";
        n = 400;
        outcome = "DEFEATED";
        guaranteed = true;
        color_calls = 41;
        work = 1234;
      };
    T.Step
      { executor = "virtual_grid"; step = 7; target = -1; revealed = 99;
        max_view = 99 };
    T.Reveal { executor = "virtual_grid"; step = 7; fresh = 4; revealed = 99 };
    T.Color_call { calls = 1; work = 0 };
    T.Audit { executor = "fixed_host"; ok = true; detail = "fine" };
    T.Fault_injected { tag = "flip"; call = 9 };
    T.Misbehavior { label = "budget"; detail = "line1\nline2\x00nul" };
    T.Child_spawn { key = "cell"; pid = 4242; attempt = 2 };
    T.Child_heartbeat { key = "cell"; pid = 4242 };
    T.Child_kill { key = "cell"; pid = 4242; signal = "KILL"; elapsed = 0.25 };
    T.Child_exit
      { key = "cell"; pid = 4242; status = "signaled 9"; cpu_user = 0.5;
        cpu_sys = 0.125 };
    T.Cell_retry { key = "cell"; attempt = 1; delay = 0.0625 };
    T.Cell_quarantined { key = "cell"; attempts = 3; reason = "kept dying" };
    T.Server_start { socket = "/tmp/x.sock"; jobs = 2; queue_limit = 64 };
    T.Conn_open { conn = 11 };
    T.Conn_close { conn = 11; reason = "eof" };
    T.Job_submit { id = "abc123"; kind = "thm1"; disposition = "queued" };
    T.Job_reject { id = "abc123"; queued = 64; limit = 64 };
    T.Job_start { id = "abc123"; attempt = 0 };
    T.Job_done { id = "abc123"; status = "done" };
    T.Server_drain { queued = 0; running = 2 };
    T.Chaos_injected { kind = "close" };
    T.Canon_hit { kind = "color"; key = "h\x00ash" };
    T.Journal_corrupt { path = "/tmp/j.journal"; line = 3; reason = "crc 0 != 1" };
    T.Fleet_start { endpoints = 3; jobs = 16; shard_seed = 42 };
    T.Endpoint_state { endpoint = "tcp:7001"; state = "breaker_open" };
    T.Failover { id = "abc123"; src = "/tmp/a.sock"; dst = "tcp:7001" };
    T.Rebalance { moved = 5; src = "tcp:7001"; dst = "/tmp/a.sock" };
    T.Fleet_verdict
      { verdict = "DEGRADED (endpoint tcp:7001 unreachable)"; results = 12;
        failovers = 2; duplicates = 1 };
  ]

(* Decoded records minus the leading file-header frame. *)
let recorded path =
  match F.read_file path with
  | { T.ev = T.Trace_header _; _ } :: rest -> rest
  | _ -> Alcotest.fail "missing header frame"

let recorded_events path = List.map (fun (r : T.record) -> r.T.ev) (recorded path)

let test_roundtrip_all_constructors () =
  with_temp_file ".flight" @@ fun path ->
  F.with_sink ~program:"test" ~path (fun () ->
      List.iter T.emit all_events;
      F.flush ());
  let back = recorded path in
  check_int "count" (List.length all_events) (List.length back);
  List.iter2
    (fun sent (r : T.record) ->
      check_bool "event survives the codec" true (sent = r.T.ev))
    all_events back;
  (* Envelopes: per-domain sequence numbers ascending from 0, and
     nonnegative timestamps. *)
  List.iteri
    (fun i (r : T.record) ->
      check_int "sequence" i r.i;
      check_bool "timestamp" true (r.ts >= 0.))
    back

let test_clean_run_leaves_header_only () =
  with_temp_file ".flight" @@ fun path ->
  F.with_sink ~program:"test" ~path (fun () ->
      for i = 1 to 100 do
        T.emit (T.Color_call { calls = i; work = i })
      done);
  match F.read_file path with
  | [ { T.ev = T.Trace_header { program = "test"; _ }; _ } ] -> ()
  | records -> Alcotest.failf "expected header only, got %d records"
                 (List.length records)

let test_anomaly_flush_and_tail () =
  with_temp_file ".flight" @@ fun path ->
  F.with_sink ~program:"test" ~path (fun () ->
      T.emit (T.Color_call { calls = 1; work = 1 });
      check_bool "anomalous" true
        (F.anomalous (T.Misbehavior { label = "l"; detail = "d" }));
      check_bool "audit ok not anomalous" false
        (F.anomalous (T.Audit { executor = "x"; ok = true; detail = "" }));
      check_bool "audit failure anomalous" true
        (F.anomalous (T.Audit { executor = "x"; ok = false; detail = "" }));
      T.emit (T.Misbehavior { label = "l"; detail = "d" });
      (* Everything up to the anomaly is on disk before the sink ends. *)
      check_int "flushed through the anomaly" 2
        (List.length (recorded_events path));
      (* Events after the last anomaly ride out on the teardown flush. *)
      T.emit (T.Job_done { id = "post"; status = "done" }));
  match recorded_events path with
  | [ T.Color_call _; T.Misbehavior _; T.Job_done { id = "post"; _ } ] -> ()
  | evs -> Alcotest.failf "unexpected records after teardown: %d" (List.length evs)

let test_ring_capacity () =
  with_temp_file ".flight" @@ fun path ->
  F.with_sink ~program:"test" ~cap:4 ~path (fun () ->
      for i = 1 to 10 do
        T.emit (T.Color_call { calls = i; work = 0 })
      done;
      F.flush ());
  match recorded_events path with
  | [ T.Color_call { calls = 7; _ }; T.Color_call { calls = 8; _ };
      T.Color_call { calls = 9; _ }; T.Color_call { calls = 10; _ } ] ->
      ()
  | evs -> Alcotest.failf "expected the last 4 events, got %d" (List.length evs)

let test_flush_is_incremental () =
  (* A second flush only appends what arrived since the first. *)
  with_temp_file ".flight" @@ fun path ->
  F.with_sink ~program:"test" ~path (fun () ->
      T.emit (T.Conn_open { conn = 1 });
      F.flush ();
      T.emit (T.Conn_close { conn = 1; reason = "eof" });
      F.flush ();
      F.flush ());
  match recorded_events path with
  | [ T.Conn_open _; T.Conn_close _ ] -> ()
  | evs -> Alcotest.failf "duplicated or lost frames: %d" (List.length evs)

let test_is_flight_file () =
  with_temp_file ".flight" @@ fun flight ->
  with_temp_file ".ndjson" @@ fun ndjson ->
  F.with_sink ~program:"test" ~path:flight (fun () -> ());
  T.with_sink ~program:"test" ~path:ndjson (fun () ->
      T.emit (T.Conn_open { conn = 1 }));
  check_bool "flight file" true (F.is_flight_file flight);
  check_bool "ndjson file" false (F.is_flight_file ndjson);
  check_bool "missing file" false (F.is_flight_file "/nonexistent/x.flight")

let test_read_rejects_corruption () =
  with_temp_file ".flight" @@ fun path ->
  F.with_sink ~program:"test" ~path (fun () ->
      T.emit (T.Misbehavior { label = "l"; detail = "d" }));
  let data =
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  in
  let rejects what bytes =
    with_temp_file ".bad" @@ fun bad ->
    Out_channel.with_open_bin bad (fun oc -> Out_channel.output_string oc bytes);
    match F.read_file bad with
    | exception Obs.Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  rejects "truncated frame" (String.sub data 0 (String.length data - 1));
  rejects "bad tag" ("X" ^ String.sub data 1 (String.length data - 1));
  (* A header claiming a newer format version is refused like the NDJSON
     reader does: hand-craft the frame byte by byte. *)
  let newer =
    let b = Buffer.create 32 in
    Buffer.add_char b 'F';
    Buffer.add_int32_be b 13l;
    Buffer.add_char b '\000' (* i *);
    Buffer.add_char b '\000' (* w *);
    Buffer.add_string b (String.make 8 '\000') (* ts *);
    Buffer.add_char b '\000' (* Trace_header *);
    Buffer.add_char b (Char.chr ((T.version + 1) lsl 1)) (* zigzag version *);
    Buffer.add_char b '\000' (* program "" *);
    Buffer.contents b
  in
  rejects "newer format version" newer;
  check_string "good file still reads" "test"
    (match F.read_file path with
    | { T.ev = T.Trace_header { program; _ }; _ } :: _ -> program
    | _ -> "?")

let () =
  Alcotest.run "flight"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip all constructors" `Quick
            test_roundtrip_all_constructors;
          Alcotest.test_case "rejects corruption" `Quick
            test_read_rejects_corruption;
        ] );
      ( "flush",
        [
          Alcotest.test_case "clean run leaves header only" `Quick
            test_clean_run_leaves_header_only;
          Alcotest.test_case "anomaly flush and teardown tail" `Quick
            test_anomaly_flush_and_tail;
          Alcotest.test_case "ring capacity" `Quick test_ring_capacity;
          Alcotest.test_case "incremental flush" `Quick test_flush_is_incremental;
        ] );
      ( "sniff",
        [ Alcotest.test_case "is_flight_file" `Quick test_is_flight_file ] );
    ]
