module CV = Models.Cole_vishkin

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let proper g colors = Colorings.Coloring.is_proper g (Colorings.Coloring.of_array colors)

let test_log_star () =
  check_int "log* 1" 0 (CV.log_star 1);
  check_int "log* 2" 1 (CV.log_star 2);
  check_int "log* 4" 2 (CV.log_star 4);
  check_int "log* 16" 3 (CV.log_star 16);
  check_int "log* 65536" 4 (CV.log_star 65536)

let test_path_three_coloring () =
  (* A single path with identity ids. *)
  let n = 200 in
  let ids = Array.init n (fun i -> i + 1) in
  let succ = Array.init n (fun i -> if i + 1 < n then Some (i + 1) else None) in
  let colors, rounds = CV.path_three_coloring ~ids ~succ in
  Array.iteri
    (fun i c ->
      check_bool "three colors" true (c >= 0 && c <= 2);
      if i + 1 < n then check_bool "proper" true (c <> colors.(i + 1)))
    colors;
  check_bool "few rounds" true (rounds <= CV.log_star n + 8)

let test_path_adversarial_ids () =
  (* Large, weird identifiers. *)
  let n = 64 in
  let ids = Array.init n (fun i -> (i * 7919) + 1_000_000) in
  let succ = Array.init n (fun i -> if i + 1 < n then Some (i + 1) else None) in
  let colors, _ = CV.path_three_coloring ~ids ~succ in
  for i = 0 to n - 2 do
    check_bool "proper" true (colors.(i) <> colors.(i + 1))
  done

let test_forest_of_paths () =
  (* Two disjoint paths at once. *)
  let ids = [| 11; 5; 9; 42; 17 |] in
  let succ = [| Some 1; Some 2; None; Some 4; None |] in
  let colors, _ = CV.path_three_coloring ~ids ~succ in
  check_bool "path 1 proper" true (colors.(0) <> colors.(1) && colors.(1) <> colors.(2));
  check_bool "path 2 proper" true (colors.(3) <> colors.(4))

let test_grid_five_coloring () =
  List.iter
    (fun (rows, cols) ->
      let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows ~cols in
      let g = Topology.Grid2d.graph grid in
      let trace = CV.five_color grid in
      check_bool
        (Printf.sprintf "proper %dx%d" rows cols)
        true
        (proper g trace.CV.colors);
      check_bool "five colors" true (Array.for_all (fun c -> c >= 0 && c < 5) trace.CV.colors);
      check_bool "log*-ish rounds" true
        (trace.CV.rounds <= CV.log_star (rows * cols) + 12))
    [ (5, 5); (12, 17); (30, 30); (1, 40) ]

let test_grid_adversarial_ids () =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:10 ~cols:10 in
  let g = Topology.Grid2d.graph grid in
  let trace = CV.five_color ~ids:(fun v -> (v * 7919) + 3) grid in
  check_bool "proper" true (proper g trace.CV.colors)

let test_wrapped_rejected () =
  let grid = Topology.Grid2d.create Topology.Grid2d.Toroidal ~rows:5 ~cols:5 in
  Alcotest.check_raises "wrapped"
    (Invalid_argument "Cole_vishkin.five_color: simple grids only") (fun () ->
      ignore (CV.five_color grid))

let test_rounds_scale_log_star () =
  (* The iteration count grows extremely slowly: a 10^6-node-wide path
     still converges in a handful of rounds. *)
  let wide = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:1 ~cols:100_000 in
  let trace = CV.five_color wide in
  check_bool "tiny iteration count" true (trace.CV.cv_iterations <= 6)

let () =
  Alcotest.run "cole-vishkin"
    [
      ( "paths",
        [
          Alcotest.test_case "log*" `Quick test_log_star;
          Alcotest.test_case "single path" `Quick test_path_three_coloring;
          Alcotest.test_case "adversarial ids" `Quick test_path_adversarial_ids;
          Alcotest.test_case "forest" `Quick test_forest_of_paths;
        ] );
      ( "grids",
        [
          Alcotest.test_case "five coloring" `Quick test_grid_five_coloring;
          Alcotest.test_case "adversarial ids" `Quick test_grid_adversarial_ids;
          Alcotest.test_case "wrapped rejected" `Quick test_wrapped_rejected;
          Alcotest.test_case "log* scaling" `Slow test_rounds_scale_log_star;
        ] );
    ]
