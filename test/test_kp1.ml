open Online_local
module FH = Models.Fixed_host
module RS = Models.Run_stats
module K = Kp1_coloring

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let grid rows cols = Topology.Grid2d.create Topology.Grid2d.Simple ~rows ~cols

let run_grid ?(t = 4) ?(palette = 3) ?stats ~seed ~rows ~cols maker =
  let g = grid rows cols in
  let host = Topology.Grid2d.graph g in
  let algo = maker ?stats ~t () in
  let order = FH.orders ~all:host (`Random seed) in
  let outcome =
    FH.run ~oracle:(Oracles.grid_bipartition g) ~host ~palette ~algorithm:algo ~order ()
  in
  (RS.succeeded outcome ~colors:palette ~host, outcome)

let kp1_maker ?stats ~t () = K.make ?stats ~k:2 ~locality:(fun ~n:_ -> t) ()
let ael_maker ?stats ~t () = K.ael_bipartite ?stats ~locality:(fun ~n:_ -> t) ()

let test_kp1_grid_many_seeds () =
  for seed = 0 to 9 do
    let ok, _ = run_grid ~seed ~rows:16 ~cols:16 kp1_maker in
    check_bool (Printf.sprintf "seed %d" seed) true ok
  done

let test_ael_matches_kp1 () =
  (* The oracle-based k=2 instance and the incremental bipartite instance
     implement the same algorithm; their stats must agree on every run. *)
  for seed = 0 to 5 do
    let s1 = K.fresh_stats () and s2 = K.fresh_stats () in
    let ok1, o1 = run_grid ~stats:s1 ~seed ~rows:14 ~cols:14 kp1_maker in
    let ok2, o2 = run_grid ~stats:s2 ~seed ~rows:14 ~cols:14 ael_maker in
    check_bool "both succeed" true (ok1 && ok2);
    check_int "same swaps" s1.K.swaps s2.K.swaps;
    check_int "same wave commits" s1.K.wave_commits s2.K.wave_commits;
    (* And identical colorings node for node. *)
    let c1 = Colorings.Coloring.to_array_exn o1.RS.coloring in
    let c2 = Colorings.Coloring.to_array_exn o2.RS.coloring in
    Alcotest.(check (array int)) "identical colorings" c1 c2
  done

let test_default_locality_always_succeeds () =
  (* At the prescribed T = 3(k-1)ceil(log2 n), no escapes ever occur. *)
  List.iter
    (fun (rows, cols, seed) ->
      let g = grid rows cols in
      let host = Topology.Grid2d.graph g in
      let stats = K.fresh_stats () in
      let algo = K.make ~stats ~k:2 () in
      let order = FH.orders ~all:host (`Random seed) in
      let outcome =
        FH.run ~oracle:(Oracles.grid_bipartition g) ~host ~palette:3 ~algorithm:algo
          ~order ()
      in
      check_bool "succeeded" true (RS.succeeded outcome ~colors:3 ~host);
      check_int "no escapes" 0 stats.K.escapes)
    [ (10, 10, 1); (12, 9, 2); (20, 20, 3) ]

let test_sequential_and_two_ends_orders () =
  let g = grid 15 15 in
  let host = Topology.Grid2d.graph g in
  List.iter
    (fun order ->
      let algo = K.make ~k:2 ~locality:(fun ~n:_ -> 5) () in
      let outcome =
        FH.run ~oracle:(Oracles.grid_bipartition g) ~host ~palette:3 ~algorithm:algo
          ~order ()
      in
      check_bool "succeeded" true (RS.succeeded outcome ~colors:3 ~host))
    (Measure.adversarial_orders ~host ~seeds:[ 5; 6 ])

let test_determinism () =
  let run () =
    let _, o = run_grid ~seed:7 ~rows:12 ~cols:12 kp1_maker in
    Colorings.Coloring.to_array_exn o.RS.coloring
  in
  Alcotest.(check (array int)) "same run twice" (run ()) (run ())

let test_tri_grid_k3 () =
  for seed = 0 to 4 do
    let tri = Topology.Tri_grid.create ~side:20 in
    let host = Topology.Tri_grid.graph tri in
    let stats = K.fresh_stats () in
    let algo = K.make ~stats ~k:3 ~locality:(fun ~n:_ -> 6) () in
    let order = FH.orders ~all:host (`Random seed) in
    let outcome =
      FH.run ~oracle:(Oracles.tri_grid tri) ~host ~palette:4 ~algorithm:algo ~order ()
    in
    check_bool (Printf.sprintf "tri seed %d" seed) true
      (RS.succeeded outcome ~colors:4 ~host)
  done

let test_ktree_coloring () =
  List.iter
    (fun k ->
      let kt = Topology.Ktree.random ~k ~n:200 ~seed:(k * 7) in
      let host = Topology.Ktree.graph kt in
      let algo = K.make ~k:(k + 1) ~locality:(fun ~n:_ -> 3) () in
      let order = FH.orders ~all:host (`Random 1) in
      let outcome =
        FH.run ~oracle:(Oracles.ktree kt) ~host ~palette:(k + 2) ~algorithm:algo
          ~order ()
      in
      check_bool
        (Printf.sprintf "(k+2)-colors %d-tree" k)
        true
        (RS.succeeded outcome ~colors:(k + 2) ~host))
    [ 2; 3; 4 ]

let test_layered_coloring () =
  let base = Topology.Grid2d.graph (grid 5 5) in
  List.iter
    (fun k ->
      let lay = Topology.Layered.create ~base ~k in
      let host = Topology.Layered.graph lay in
      let algo = K.make ~k ~locality:(fun ~n:_ -> 5) () in
      let order = FH.orders ~all:host (`Random 2) in
      let outcome =
        FH.run ~oracle:(Oracles.layered lay) ~host ~palette:(k + 1) ~algorithm:algo
          ~order ()
      in
      check_bool
        (Printf.sprintf "(k+1)-colors G_%d" k)
        true
        (RS.succeeded outcome ~colors:(k + 1) ~host))
    [ 2; 3; 4 ]

let test_bipartite_wrapped_grids () =
  (* Even cylinders and even-by-even tori are bipartite, so the k = 2
     algorithm covers them too (Corollary 1.1 is about all bipartite
     graphs, not just simple grids). *)
  List.iter
    (fun (wrap, rows, cols) ->
      let g = Topology.Grid2d.create wrap ~rows ~cols in
      let host = Topology.Grid2d.graph g in
      let algo = K.make ~k:2 ~locality:(fun ~n:_ -> 4) () in
      let order = FH.orders ~all:host (`Random 3) in
      let outcome =
        FH.run ~oracle:(Oracles.grid_bipartition g) ~host ~palette:3 ~algorithm:algo
          ~order ()
      in
      check_bool
        (Printf.sprintf "wrapped %dx%d" rows cols)
        true
        (RS.succeeded outcome ~colors:3 ~host))
    [
      (Topology.Grid2d.Cylindrical, 8, 10);
      (Topology.Grid2d.Toroidal, 8, 10);
      (Topology.Grid2d.Cylindrical, 5, 12);
    ]

let test_general_bipartite_host () =
  (* An arbitrary bipartite host: a random even-cycle-glued structure
     (here: a hypercube-ish graph = product of paths). *)
  let host =
    (* 4-dimensional hypercube: bipartite, degree 4. *)
    let n = 16 in
    let edges = ref [] in
    for v = 0 to n - 1 do
      for b = 0 to 3 do
        let w = v lxor (1 lsl b) in
        if v < w then edges := (v, w) :: !edges
      done
    done;
    Grid_graph.Graph.create ~n ~edges:!edges
  in
  let algo = K.ael_bipartite ~locality:(fun ~n:_ -> 2) () in
  for seed = 0 to 4 do
    let order = FH.orders ~all:host (`Random seed) in
    let outcome = FH.run ~host ~palette:3 ~algorithm:algo ~order () in
    check_bool
      (Printf.sprintf "hypercube seed %d" seed)
      true
      (RS.succeeded outcome ~colors:3 ~host)
  done

(* Randomized end-to-end properties, on the in-repo shrinking engine. *)
let proptest name ~seed ~cases ~print gen p =
  Alcotest.test_case name `Quick (fun () ->
      Proptest.Runner.check_exn
        ~config:{ Proptest.Runner.default_config with seed; cases }
        ~name ~print gen p)

let triple_gen a b c = Proptest.Gen.map3 (fun x y z -> (x, y, z)) a b c

(* At the prescribed locality, kp1 never fails on random small grids
   with random orders. *)
let prop_kp1_prescribed_always_wins =
  proptest "kp1 at prescribed locality always proper" ~seed:0x2B51 ~cases:25
    ~print:(fun (rows, cols, seed) ->
      Printf.sprintf "rows=%d cols=%d seed=%d" rows cols seed)
    Proptest.Gen.(
      triple_gen (int_range 3 14) (int_range 3 14) (int_range 0 10_000))
    (fun (rows, cols, seed) ->
      let g = grid rows cols in
      let host = Topology.Grid2d.graph g in
      let algo = K.make ~k:2 () in
      let order = FH.orders ~all:host (`Random seed) in
      let outcome =
        FH.run ~oracle:(Oracles.grid_bipartition g) ~host ~palette:3 ~algorithm:algo
          ~order ()
      in
      RS.succeeded outcome ~colors:3 ~host)

let prop_ael_tight_locality_proper_or_caught =
  (* At arbitrary (possibly insufficient) localities, the outcome is
     always *audited*: either a proper coloring or an explicit violation
     certificate — never a silent bad state. *)
  proptest "every outcome is proper or certified" ~seed:0x2B52 ~cases:25
    ~print:(fun (side, t, seed) ->
      Printf.sprintf "side=%d t=%d seed=%d" side t seed)
    Proptest.Gen.(
      triple_gen (int_range 4 16) (int_range 1 4) (int_range 0 10_000))
    (fun (side, t, seed) ->
      let g = grid side side in
      let host = Topology.Grid2d.graph g in
      let algo = K.ael_bipartite ~locality:(fun ~n:_ -> t) () in
      let order = FH.orders ~all:host (`Random seed) in
      let outcome = FH.run ~host ~palette:3 ~algorithm:algo ~order () in
      match outcome.RS.violation with
      | Some _ -> true
      | None -> RS.succeeded outcome ~colors:3 ~host)

let test_flip_larger_ablation () =
  (* The ablation must still color properly when T is generous, but it
     performs at least as many type changes as the paper's choice on
     merge-heavy orders. *)
  let g = grid 16 16 in
  let host = Topology.Grid2d.graph g in
  let order = FH.orders ~all:host (`Random 11) in
  let run flip =
    let stats = K.fresh_stats () in
    let algo = K.make ~stats ~k:2 ~flip ~locality:(fun ~n:_ -> 12) () in
    let outcome =
      FH.run ~oracle:(Oracles.grid_bipartition g) ~host ~palette:3 ~algorithm:algo
        ~order ()
    in
    (RS.succeeded outcome ~colors:3 ~host, stats)
  in
  let ok_s, smaller = run `Smaller in
  let ok_l, larger = run `Larger in
  check_bool "smaller flip succeeds" true ok_s;
  check_bool "larger flip succeeds" true ok_l;
  check_bool "ablation does at least as many wave commits" true
    (larger.K.wave_commits >= smaller.K.wave_commits)

let test_palette_too_small_rejected () =
  let g = grid 5 5 in
  let host = Topology.Grid2d.graph g in
  let algo = K.make ~k:2 () in
  Alcotest.check_raises "palette" (Invalid_argument "kp1: palette must have k+1 colors")
    (fun () ->
      ignore
        (FH.run ~oracle:(Oracles.grid_bipartition g) ~host ~palette:2 ~algorithm:algo
           ~order:[ 0 ] ()))

let test_oracle_required () =
  let host = Topology.Grid2d.graph (grid 4 4) in
  let algo = K.make ~k:2 () in
  Alcotest.check_raises "oracle" (Invalid_argument "kp1: partition oracle required")
    (fun () -> ignore (FH.run ~host ~palette:3 ~algorithm:algo ~order:[ 0 ] ()))

let test_k_validation () =
  Alcotest.check_raises "k" (Invalid_argument "kp1: k must be >= 2") (fun () ->
      ignore (K.make ~k:1 ()))

let test_default_locality_formula () =
  check_int "k=2 n=1024" (3 * 10) (K.default_locality ~k:2 ~n:1024);
  check_int "k=3 n=1000" (6 * 10) (K.default_locality ~k:3 ~n:1000);
  check_int "tiny n" 1 (K.default_locality ~k:2 ~n:1)

let test_stats_counters_behave () =
  let g = grid 18 18 in
  let host = Topology.Grid2d.graph g in
  let stats = K.fresh_stats () in
  let algo = K.make ~stats ~k:2 ~locality:(fun ~n:_ -> 3) () in
  let order = FH.orders ~all:host (`Random 9) in
  ignore (FH.run ~oracle:(Oracles.grid_bipartition g) ~host ~palette:3 ~algorithm:algo ~order ());
  check_int "largest group is everything" (18 * 18) stats.K.largest_group;
  check_bool "swaps accompany type changes" true (stats.K.swaps >= stats.K.type_changes);
  check_bool "waves accompany swaps" true
    (stats.K.swaps = 0 || stats.K.wave_commits > 0)

let () =
  Alcotest.run "kp1-coloring"
    [
      ( "grid-k2",
        [
          Alcotest.test_case "many seeds" `Quick test_kp1_grid_many_seeds;
          Alcotest.test_case "ael = kp1(k=2)" `Quick test_ael_matches_kp1;
          Alcotest.test_case "prescribed locality" `Quick test_default_locality_always_succeeds;
          Alcotest.test_case "stress orders" `Quick test_sequential_and_two_ends_orders;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "other-hosts",
        [
          Alcotest.test_case "triangular grid k=3" `Slow test_tri_grid_k3;
          Alcotest.test_case "k-trees" `Quick test_ktree_coloring;
          Alcotest.test_case "layered G_k" `Quick test_layered_coloring;
          Alcotest.test_case "bipartite wrapped grids" `Quick test_bipartite_wrapped_grids;
          Alcotest.test_case "hypercube host" `Quick test_general_bipartite_host;
        ] );
      ( "kp1-properties",
        [ prop_kp1_prescribed_always_wins; prop_ael_tight_locality_proper_or_caught ] );
      ( "ablation-and-validation",
        [
          Alcotest.test_case "flip larger" `Quick test_flip_larger_ablation;
          Alcotest.test_case "palette too small" `Quick test_palette_too_small_rejected;
          Alcotest.test_case "oracle required" `Quick test_oracle_required;
          Alcotest.test_case "k >= 2" `Quick test_k_validation;
          Alcotest.test_case "default locality" `Quick test_default_locality_formula;
          Alcotest.test_case "stats counters" `Quick test_stats_counters_behave;
        ] );
    ]
