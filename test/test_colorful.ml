module Cf = Colorings.Colorful
module B = Colorings.Brute
module C = Colorings.Coloring

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_confinement_basics () =
  let m = [| [| 0; 0; 1 |]; [| 1; 2; 3 |]; [| 2; 3; 0 |] |] in
  check_bool "confined row" true (Cf.confined_to_row m ~color:0 ~row:0);
  check_bool "not confined row" false (Cf.confined_to_row m ~color:1 ~row:0);
  check_bool "not confined col" false (Cf.confined_to_col m ~color:0 ~col:0);
  let m2 = [| [| 0; 1 |]; [| 0; 2 |] |] in
  check_bool "confined col" true (Cf.confined_to_col m2 ~color:0 ~col:0)

let test_colorful_basics () =
  let m = [| [| 0; 0; 1 |]; [| 1; 2; 3 |]; [| 2; 3; 0 |] |] in
  check_bool "row 0 not colorful" false (Cf.row_colorful m ~row:0);
  check_bool "row 1 colorful" true (Cf.row_colorful m ~row:1);
  check_bool "is row colorful" true (Cf.is_row_colorful m);
  check_bool "col 2 colorful" true (Cf.col_colorful m ~col:2)

let test_transpose () =
  let m = [| [| 0; 1 |]; [| 2; 3 |] |] in
  Alcotest.(check (array (array int))) "transpose" [| [| 0; 2 |]; [| 1; 3 |] |] (Cf.transpose m);
  check_bool "row colorful flips" true
    (Cf.is_row_colorful m = Cf.is_col_colorful (Cf.transpose m))

let test_classify () =
  check_bool "both" true (Cf.classify [| [| 0; 1 |]; [| 2; 3 |] |] = Cf.Both);
  check_bool "neither" true (Cf.classify [| [| 0; 0 |]; [| 0; 0 |] |] = Cf.Neither)

let test_matrix_of_gadget () =
  let chain = Topology.Gadget.create ~k:3 ~gadgets:2 () in
  let coloring = C.of_array (Topology.Gadget.canonical_k_coloring chain) in
  let m = Cf.matrix_of_gadget chain coloring ~gadget:0 in
  Alcotest.(check (array (array int)))
    "row coloring" [| [| 0; 0; 0 |]; [| 1; 1; 1 |]; [| 2; 2; 2 |] |] m

(* Claim 4.5 exhaustively for k = 3: every proper 4-coloring of A(3)
   classifies as exactly one of row-/column-colorful. *)
let test_claim_4_5_exhaustive () =
  let k = 3 in
  let chain = Topology.Gadget.create ~k ~gadgets:1 () in
  let g = Topology.Gadget.graph chain in
  let count = ref 0 and rows = ref 0 and cols = ref 0 in
  B.iter_colorings g ~colors:((2 * k) - 2) (fun colors ->
      incr count;
      let m =
        Array.init k (fun i ->
            Array.init k (fun j -> colors.(Topology.Gadget.node chain ~gadget:0 ~row:i ~col:j)))
      in
      match Cf.classify m with
      | Cf.Row_colorful -> incr rows
      | Cf.Column_colorful -> incr cols
      | Cf.Both -> Alcotest.fail "gadget cannot be both"
      | Cf.Neither -> Alcotest.fail "gadget cannot be neither");
  check_bool "enumerated" true (!count > 0);
  check_bool "both kinds occur" true (!rows > 0 && !cols > 0);
  (* Transposition symmetry of A(k) forces the two counts to agree. *)
  check_int "row/col symmetry" !rows !cols

(* Claim 4.3 on proper colorings of A(3) with any number of colors up to
   2k-2: a color is confined to at most one row xor one column. *)
let test_claim_4_3_exhaustive () =
  let k = 3 in
  let chain = Topology.Gadget.create ~k ~gadgets:1 () in
  let g = Topology.Gadget.graph chain in
  B.iter_colorings g ~colors:((2 * k) - 2) (fun colors ->
      let m =
        Array.init k (fun i ->
            Array.init k (fun j -> colors.(Topology.Gadget.node chain ~gadget:0 ~row:i ~col:j)))
      in
      for color = 0 to (2 * k) - 3 do
        let rows_confined =
          List.length
            (List.filter (fun i -> Cf.confined_to_row m ~color ~row:i)
               (List.init k (fun i -> i)))
        in
        let cols_confined =
          List.length
            (List.filter (fun j -> Cf.confined_to_col m ~color ~col:j)
               (List.init k (fun j -> j)))
        in
        check_bool "at most one row" true (rows_confined <= 1);
        check_bool "at most one col" true (cols_confined <= 1);
        check_bool "not both" true (not (rows_confined = 1 && cols_confined = 1))
      done)

(* Lemma 4.6 on a 2-gadget chain, sampled: consecutive gadgets never
   classify differently under a proper (2k-2)-coloring. *)
let test_lemma_4_6_sampled () =
  let k = 3 in
  let chain = Topology.Gadget.create ~k ~gadgets:2 () in
  let g = Topology.Gadget.graph chain in
  let seen = ref 0 in
  (try
     B.iter_colorings g ~colors:((2 * k) - 2) (fun colors ->
         incr seen;
         let coloring = C.of_array colors in
         let c0 = Cf.classify (Cf.matrix_of_gadget chain coloring ~gadget:0) in
         let c1 = Cf.classify (Cf.matrix_of_gadget chain coloring ~gadget:1) in
         check_bool "same classification" true (c0 = c1);
         if !seen > 20000 then raise Exit)
   with Exit -> ());
  check_bool "found colorings" true (!seen > 0)

(* The canonical coloring (rows monochromatic) makes every column carry
   all k colors, so each gadget classifies as column-colorful. *)
let test_canonical_is_row_colorful () =
  List.iter
    (fun k ->
      let chain = Topology.Gadget.create ~k ~gadgets:3 () in
      let coloring = C.of_array (Topology.Gadget.canonical_k_coloring chain) in
      for gadget = 0 to 2 do
        check_bool "canonical col-colorful" true
          (Cf.classify (Cf.matrix_of_gadget chain coloring ~gadget) = Cf.Column_colorful)
      done)
    [ 3; 4 ]

let () =
  Alcotest.run "colorful"
    [
      ( "basics",
        [
          Alcotest.test_case "confinement" `Quick test_confinement_basics;
          Alcotest.test_case "colorful" `Quick test_colorful_basics;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "matrix of gadget" `Quick test_matrix_of_gadget;
        ] );
      ( "claims",
        [
          Alcotest.test_case "claim 4.5 exhaustive" `Slow test_claim_4_5_exhaustive;
          Alcotest.test_case "claim 4.3 exhaustive" `Slow test_claim_4_3_exhaustive;
          Alcotest.test_case "lemma 4.6 sampled" `Slow test_lemma_4_6_sampled;
          Alcotest.test_case "canonical classification" `Quick test_canonical_is_row_colorful;
        ] );
    ]
