(* List coloring (the paper's SLOCAL intro example), identifier schemes,
   and run transcripts. *)

open Grid_graph
module LC = Colorings.List_coloring

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --------------------------- list coloring --------------------------- *)

let test_uniform_instance () =
  let g = Graph.cycle_graph 6 in
  let lists = LC.uniform_lists g ~colors:3 in
  check_bool "valid" true (LC.valid_instance g lists);
  let colors = LC.greedy g lists ~order:(List.init 6 (fun i -> i)) in
  check_bool "proper from lists" true (LC.is_list_proper g lists colors)

let test_invalid_instance_detected () =
  let g = Graph.complete 4 in
  let lists = LC.uniform_lists g ~colors:3 in
  check_bool "too few colors" false (LC.valid_instance g lists)

let test_greedy_never_stuck_on_valid_instances () =
  (* The intro claim: greedy solves (degree+1)-list coloring in any
     adversarial order — across random lists, graphs, and orders. *)
  List.iter
    (fun seed ->
      let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:6 ~cols:7 in
      let g = Topology.Grid2d.graph grid in
      let lists = LC.random_lists g ~slack:0 ~seed in
      check_bool "instance valid" true (LC.valid_instance g lists);
      List.iter
        (fun order_seed ->
          let order = Models.Fixed_host.orders ~all:g (`Random order_seed) in
          let colors = LC.greedy g lists ~order in
          check_bool "list proper" true (LC.is_list_proper g lists colors))
        [ 1; 2; 3 ])
    [ 10; 11; 12 ]

let test_greedy_order_validation () =
  let g = Graph.path_graph 3 in
  Alcotest.check_raises "bad order"
    (Invalid_argument "List_coloring.greedy: order is not a permutation") (fun () ->
      ignore (LC.greedy g (LC.uniform_lists g ~colors:2) ~order:[ 0; 0; 1 ]))

let test_slocal_list_greedy_matches () =
  (* The SLOCAL rule and the direct greedy agree on the same order. *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:5 ~cols:5 in
  let g = Topology.Grid2d.graph grid in
  let lists = LC.random_lists g ~slack:1 ~seed:77 in
  let order = Models.Fixed_host.orders ~all:g (`Random 8) in
  let direct = LC.greedy g lists ~order in
  let universe = 1 + Array.fold_left (fun acc l -> List.fold_left max acc l) 0 lists in
  let via_slocal =
    Models.Slocal.run ~host:g ~palette:universe ~order
      (Models.Slocal.list_greedy ~lists:(fun v -> lists.(v)))
  in
  Graph.iter_nodes g (fun v ->
      check_int "same color" direct.(v) (Colorings.Coloring.get_exn via_slocal v));
  (* ... and through the Online-LOCAL simulation too. *)
  let online =
    Models.Fixed_host.run ~host:g ~palette:universe
      ~algorithm:(Models.Slocal.to_online (Models.Slocal.list_greedy ~lists:(fun v -> lists.(v))))
      ~order ()
  in
  Graph.iter_nodes g (fun v ->
      check_int "same via online" direct.(v)
        (Colorings.Coloring.get_exn online.Models.Run_stats.coloring v))

(* ------------------------------- ids ------------------------------- *)

let test_id_schemes_injective () =
  let n = 500 in
  check_bool "sequential" true (Models.Ids.all_distinct Models.Ids.sequential ~n);
  check_bool "reversed" true (Models.Ids.all_distinct (Models.Ids.reversed ~n) ~n);
  check_bool "salted" true (Models.Ids.all_distinct (Models.Ids.salted ~seed:42 ~n) ~n)

let test_salted_differs_by_seed () =
  let n = 100 in
  let a = Models.Ids.salted ~seed:1 ~n and b = Models.Ids.salted ~seed:2 ~n in
  check_bool "different schemes" true
    (List.exists (fun v -> a v <> b v) (List.init n (fun i -> i)))

let test_salted_memoized () =
  let ids = Models.Ids.salted ~seed:7 ~n:50 in
  check_int "stable" (ids 13) (ids 13)

let test_cole_vishkin_with_salted_ids () =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:9 ~cols:9 in
  let ids = Models.Ids.salted ~seed:3 ~n:81 in
  let trace = Models.Cole_vishkin.five_color ~ids grid in
  check_bool "proper" true
    (Colorings.Coloring.is_proper (Topology.Grid2d.graph grid)
       (Colorings.Coloring.of_array trace.Models.Cole_vishkin.colors))

(* ---------------------------- transcripts ---------------------------- *)

let test_transcript_records () =
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:6 ~cols:6 in
  let host = Topology.Grid2d.graph grid in
  let t = Models.Transcript.create () in
  let algo = Models.Transcript.wrap t (Models.Algorithm.greedy_first_fit) in
  let order = Models.Fixed_host.orders ~all:host `Sequential in
  let outcome = Models.Fixed_host.run ~host ~palette:3 ~algorithm:algo ~order () in
  ignore outcome;
  let steps = Models.Transcript.steps t in
  check_int "36 steps" 36 (List.length steps);
  let first = List.hd steps in
  check_int "step 1" 1 first.Models.Transcript.index;
  check_int "first id" 1 first.Models.Transcript.target_id;
  (* region sizes never shrink *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Models.Transcript.region_size <= b.Models.Transcript.region_size
        && monotone rest
    | _ -> true
  in
  check_bool "region monotone" true (monotone steps)

let test_transcript_csv_and_summary () =
  let host = Graph.path_graph 4 in
  let t = Models.Transcript.create () in
  let algo = Models.Transcript.wrap t Models.Algorithm.greedy_first_fit in
  ignore (Models.Fixed_host.run ~host ~palette:2 ~algorithm:algo ~order:[ 0; 1; 2; 3 ] ());
  let csv = Models.Transcript.to_csv t in
  check_int "header + 4 rows" 5
    (List.length (String.split_on_char '\n' (String.trim csv)));
  check_bool "summary mentions steps" true
    (String.length (Models.Transcript.summary t) > 0)

let test_transcript_transparent () =
  (* Wrapping must not change behavior. *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:7 ~cols:7 in
  let host = Topology.Grid2d.graph grid in
  let order = Models.Fixed_host.orders ~all:host (`Random 5) in
  let bare =
    Models.Fixed_host.run ~host ~palette:3
      ~algorithm:(Online_local.Kp1_coloring.ael_bipartite ())
      ~order ()
  in
  let t = Models.Transcript.create () in
  let wrapped =
    Models.Fixed_host.run ~host ~palette:3
      ~algorithm:(Models.Transcript.wrap t (Online_local.Kp1_coloring.ael_bipartite ()))
      ~order ()
  in
  Alcotest.(check (array int))
    "identical colorings"
    (Colorings.Coloring.to_array_exn bare.Models.Run_stats.coloring)
    (Colorings.Coloring.to_array_exn wrapped.Models.Run_stats.coloring)

let () =
  Alcotest.run "extras"
    [
      ( "list-coloring",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_instance;
          Alcotest.test_case "invalid detected" `Quick test_invalid_instance_detected;
          Alcotest.test_case "never stuck" `Quick test_greedy_never_stuck_on_valid_instances;
          Alcotest.test_case "order validation" `Quick test_greedy_order_validation;
          Alcotest.test_case "slocal rule matches" `Quick test_slocal_list_greedy_matches;
        ] );
      ( "ids",
        [
          Alcotest.test_case "injective" `Quick test_id_schemes_injective;
          Alcotest.test_case "seed-dependent" `Quick test_salted_differs_by_seed;
          Alcotest.test_case "memoized" `Quick test_salted_memoized;
          Alcotest.test_case "cole-vishkin with salted ids" `Quick test_cole_vishkin_with_salted_ids;
        ] );
      ( "transcripts",
        [
          Alcotest.test_case "records" `Quick test_transcript_records;
          Alcotest.test_case "csv + summary" `Quick test_transcript_csv_and_summary;
          Alcotest.test_case "transparent" `Quick test_transcript_transparent;
        ] );
    ]
