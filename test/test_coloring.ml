open Grid_graph
module C = Colorings.Coloring
module B = Colorings.Brute
module P = Colorings.Perm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_partial_basics () =
  let c = C.create 4 in
  check_bool "nothing colored" false (C.is_colored c 2);
  check_int "count" 0 (C.colored_count c);
  C.set c 2 5;
  check_int "count" 1 (C.colored_count c);
  Alcotest.(check (option int)) "get" (Some 5) (C.get c 2);
  Alcotest.(check (option int)) "get uncolored" None (C.get c 0);
  check_bool "not total" false (C.is_total c);
  C.set c 2 5 (* same color is a no-op *);
  Alcotest.check_raises "recolor"
    (Invalid_argument "Coloring.set: node 2 already colored 5, refusing 6") (fun () ->
      C.set c 2 6)

let test_total_and_snapshots () =
  let c = C.of_array [| 0; 1; 2 |] in
  check_bool "total" true (C.is_total c);
  Alcotest.(check (option int)) "max" (Some 2) (C.max_color_used c);
  check_bool "within 3" true (C.uses_at_most c 3);
  check_bool "not within 2" false (C.uses_at_most c 2);
  Alcotest.(check (array int)) "snapshot" [| 0; 1; 2 |] (C.to_array_exn c);
  let p = C.create 2 in
  Alcotest.check_raises "partial snapshot"
    (Invalid_argument "Coloring.to_array_exn: partial coloring") (fun () ->
      ignore (C.to_array_exn p))

let test_proper_checks () =
  let g = Graph.path_graph 4 in
  let good = C.of_array [| 0; 1; 0; 1 |] in
  check_bool "proper" true (C.is_proper g good);
  check_bool "proper total" true (C.is_proper_total g good ~colors:2);
  let bad = C.of_array [| 0; 0; 1; 0 |] in
  check_bool "improper" false (C.is_proper g bad);
  Alcotest.(check (option (pair int int)))
    "witness" (Some (0, 1))
    (C.find_monochromatic_edge g bad);
  (* Partial colorings are proper until contradicted. *)
  let partial = C.create 4 in
  C.set partial 0 1;
  C.set partial 2 1;
  check_bool "partial proper" true (C.is_proper g partial);
  C.set partial 1 1;
  check_bool "partial improper" false (C.is_proper g partial)

let test_colored_nodes () =
  let c = C.create 5 in
  C.set c 3 0;
  C.set c 1 2;
  Alcotest.(check (list int)) "colored nodes" [ 1; 3 ] (C.colored_nodes c);
  let copy = C.copy c in
  C.set copy 0 0;
  check_int "copy isolated" 2 (C.colored_count c)

(* ------------------------------ brute ------------------------------ *)

let test_chromatic_numbers () =
  check_int "empty" 0 (B.chromatic_number (Graph.empty 0));
  check_int "edgeless" 1 (B.chromatic_number (Graph.empty 4));
  check_int "path" 2 (B.chromatic_number (Graph.path_graph 5));
  check_int "odd cycle" 3 (B.chromatic_number (Graph.cycle_graph 7));
  check_int "even cycle" 2 (B.chromatic_number (Graph.cycle_graph 8));
  check_int "K5" 5 (B.chromatic_number (Graph.complete 5));
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:3 ~cols:4 in
  check_int "grid" 2 (B.chromatic_number (Topology.Grid2d.graph grid))

let test_petersen () =
  (* The Petersen graph: outer 5-cycle, inner pentagram, spokes. *)
  let edges =
    List.init 5 (fun i -> (i, (i + 1) mod 5))
    @ List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5)))
    @ List.init 5 (fun i -> (i, 5 + i))
  in
  let g = Graph.create ~n:10 ~edges in
  check_int "petersen chromatic" 3 (B.chromatic_number g)

let test_find_coloring_proper () =
  let g = Graph.cycle_graph 5 in
  (match B.find_coloring g ~colors:3 with
  | None -> Alcotest.fail "expected coloring"
  | Some a -> check_bool "proper" true (C.is_proper g (C.of_array a)));
  check_bool "no 2-coloring" true (B.find_coloring g ~colors:2 = None)

let test_partial_extension () =
  (* Ends of an even-length path share a side: pinning both to 0 is
     satisfiable with 2 colors. *)
  let g = Graph.path_graph 5 in
  let partial = C.create 5 in
  C.set partial 0 0;
  C.set partial 4 0;
  (match B.find_coloring ~partial g ~colors:2 with
  | None -> Alcotest.fail "expected extension"
  | Some a ->
      check_int "pin respected" 0 a.(0);
      check_int "pin respected" 0 a.(4);
      check_bool "proper" true (C.is_proper g (C.of_array a)));
  (* Pinning opposite-parity ends to the same color is unsatisfiable. *)
  let odd = Graph.path_graph 4 in
  let unsat = C.create 4 in
  C.set unsat 0 0;
  C.set unsat 3 0;
  check_bool "parity contradiction" true (B.find_coloring ~partial:unsat odd ~colors:2 = None);
  (* So is pinning two adjacent nodes alike. *)
  let bad = C.create 4 in
  C.set bad 0 0;
  C.set bad 1 0;
  check_bool "contradiction" true (B.find_coloring ~partial:bad odd ~colors:2 = None)

let test_partial_out_of_palette () =
  let g = Graph.path_graph 2 in
  let partial = C.create 2 in
  C.set partial 0 7;
  check_bool "pin beyond palette fails" true (B.find_coloring ~partial g ~colors:3 = None)

let test_count_colorings () =
  (* An n-path has c*(c-1)^(n-1) proper c-colorings. *)
  check_int "path count" (3 * 2 * 2) (B.count_colorings (Graph.path_graph 3) ~colors:3);
  (* Triangle with 3 colors: 3! = 6. *)
  check_int "triangle count" 6 (B.count_colorings (Graph.complete 3) ~colors:3);
  check_int "impossible" 0 (B.count_colorings (Graph.complete 3) ~colors:2)

let test_iter_colorings_all_proper () =
  let g = Graph.cycle_graph 4 in
  let seen = ref 0 in
  B.iter_colorings g ~colors:2 (fun a ->
      incr seen;
      check_bool "proper" true (C.is_proper g (C.of_array a)));
  check_int "two 2-colorings" 2 !seen

(* ------------------------------ perms ------------------------------ *)

let test_perm_basics () =
  let p = P.of_array [| 2; 0; 1 |] in
  check_int "apply" 2 (P.apply p 0);
  check_int "size" 3 (P.size p);
  check_bool "identity" true (P.equal (P.identity 3) (P.of_array [| 0; 1; 2 |]));
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Perm.of_array: not a permutation") (fun () ->
      ignore (P.of_array [| 0; 0; 1 |]))

let test_perm_compose_inverse () =
  let p = P.of_array [| 1; 2; 0 |] in
  check_bool "p . p^-1 = id" true (P.equal (P.compose p (P.inverse p)) (P.identity 3));
  check_bool "p^-1 . p = id" true (P.equal (P.compose (P.inverse p) p) (P.identity 3));
  let q = P.transposition 3 0 2 in
  check_int "compose applies right first" (P.apply p (P.apply q 0)) (P.apply (P.compose p q) 0)

let test_perm_all () =
  check_int "3! perms" 6 (List.length (P.all 3));
  check_int "4! perms" 24 (List.length (P.all 4));
  let distinct = List.sort_uniq compare (List.map P.to_array (P.all 3)) in
  check_int "all distinct" 6 (List.length distinct)

let test_transposition_decomposition () =
  let k = 5 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          let swaps = P.transposition_decomposition ~src ~dst in
          check_bool "at most k-1 swaps" true (List.length swaps <= k - 1);
          (* Re-apply: swapping colors c1,c2 = post-compose transposition. *)
          let final =
            List.fold_left
              (fun acc (c1, c2) -> P.compose (P.transposition k c1 c2) acc)
              src swaps
          in
          check_bool "reaches dst" true (P.equal final dst))
        (List.filteri (fun i _ -> i mod 7 = 0) (P.all k)))
    (List.filteri (fun i _ -> i mod 13 = 0) (P.all k))

let () =
  Alcotest.run "colorings"
    [
      ( "coloring",
        [
          Alcotest.test_case "partial basics" `Quick test_partial_basics;
          Alcotest.test_case "total + snapshots" `Quick test_total_and_snapshots;
          Alcotest.test_case "proper checks" `Quick test_proper_checks;
          Alcotest.test_case "colored nodes + copy" `Quick test_colored_nodes;
        ] );
      ( "brute",
        [
          Alcotest.test_case "chromatic numbers" `Quick test_chromatic_numbers;
          Alcotest.test_case "petersen" `Quick test_petersen;
          Alcotest.test_case "find proper" `Quick test_find_coloring_proper;
          Alcotest.test_case "partial extension" `Quick test_partial_extension;
          Alcotest.test_case "partial out of palette" `Quick test_partial_out_of_palette;
          Alcotest.test_case "count colorings" `Quick test_count_colorings;
          Alcotest.test_case "iter colorings" `Quick test_iter_colorings_all_proper;
        ] );
      ( "perm",
        [
          Alcotest.test_case "basics" `Quick test_perm_basics;
          Alcotest.test_case "compose + inverse" `Quick test_perm_compose_inverse;
          Alcotest.test_case "all" `Quick test_perm_all;
          Alcotest.test_case "transposition decomposition" `Quick test_transposition_decomposition;
        ] );
    ]
