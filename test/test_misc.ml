(* Rendering, fitting, the general wrapped-grid 3-coloring, the
   rectangular-grid remarks after Theorems 1 and 2, and the stress-order
   generator. *)

open Online_local
module G2 = Topology.Grid2d

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------- proper_3_coloring ------------------------- *)

let test_general_3_coloring_all_wraps () =
  List.iter
    (fun (wrap, rows, cols) ->
      let grid = G2.create wrap ~rows ~cols in
      let colors = G2.proper_3_coloring grid in
      check_bool
        (Printf.sprintf "proper %dx%d" rows cols)
        true
        (Colorings.Coloring.is_proper (G2.graph grid) (Colorings.Coloring.of_array colors));
      check_bool "three colors" true (Array.for_all (fun c -> c >= 0 && c < 3) colors))
    [
      (G2.Simple, 5, 7);
      (G2.Cylindrical, 4, 5);
      (G2.Cylindrical, 3, 7);
      (G2.Toroidal, 5, 5);
      (G2.Toroidal, 5, 7);
      (G2.Toroidal, 4, 9);
      (G2.Toroidal, 3, 3);
      (G2.Toroidal, 7, 11);
    ]

let test_general_3_coloring_matches_chromatic () =
  (* For non-bipartite wrapped grids the chromatic number is exactly 3 —
     the construction is optimal. *)
  let grid = G2.create G2.Toroidal ~rows:5 ~cols:5 in
  check_int "chromatic 3" 3 (Colorings.Brute.chromatic_number (G2.graph grid))

(* ------------------------------ render ------------------------------ *)

let test_render_grid_coloring () =
  let grid = G2.create G2.Simple ~rows:2 ~cols:3 in
  let colors = [| Some 0; Some 1; None; Some 2; Some 1; Some 0 |] in
  check_string "render" "01.\n210" (Topology.Render.grid_coloring grid (fun v -> colors.(v)))

let test_render_region () =
  let probe r c =
    if r = 0 && c = 0 then `Colored 2 else if c = 1 then `Seen else `Unseen
  in
  check_string "window" "2o \n o " (Topology.Render.region ~rows:(0, 1) ~cols:(0, 2) probe)

(* ------------------------------- fit ------------------------------- *)

let test_fit_exact_line () =
  let line = Experiments.Fit.fit [ (0., 1.); (1., 3.); (2., 5.) ] in
  check_bool "slope" true (abs_float (line.Experiments.Fit.slope -. 2.) < 1e-9);
  check_bool "intercept" true (abs_float (line.Experiments.Fit.intercept -. 1.) < 1e-9);
  check_bool "r2" true (abs_float (line.Experiments.Fit.r_squared -. 1.) < 1e-9)

let test_fit_log () =
  (* y = 3 log2 x exactly. *)
  let points = List.map (fun x -> (float_of_int x, 3. *. (log (float_of_int x) /. log 2.))) [ 2; 4; 8; 16; 64 ] in
  let line = Experiments.Fit.fit_log_x points in
  check_bool "slope 3" true (abs_float (line.Experiments.Fit.slope -. 3.) < 1e-9)

let test_fit_validation () =
  Alcotest.check_raises "too few" (Invalid_argument "Fit.fit: need at least 2 points")
    (fun () -> ignore (Experiments.Fit.fit [ (1., 1.) ]))

(* -------------------------- stress orders -------------------------- *)

let test_adversarial_orders_are_permutations () =
  let host = Grid_graph.Graph.path_graph 21 in
  let orders = Measure.adversarial_orders ~host ~seeds:[ 3; 4 ] in
  check_int "five orders" 5 (List.length orders);
  List.iter
    (fun order ->
      check_int "permutation" 21 (List.length (List.sort_uniq compare order)))
    orders

let test_bit_reversal_spreads () =
  let host = Grid_graph.Graph.path_graph 16 in
  match Measure.adversarial_orders ~host ~seeds:[] with
  | [ _; _; bitrev ] ->
      (* The first two nodes are the two halves' representatives. *)
      check_int "first" 0 (List.nth bitrev 0);
      check_int "second" 8 (List.nth bitrev 1);
      check_int "third" 4 (List.nth bitrev 2)
  | _ -> Alcotest.fail "expected three built-in orders"

(* -------------------- rectangular-grid remarks -------------------- *)

let test_thm1_rectangular_remark () =
  (* Wide-but-short grids: when the height cannot host the endgame
     rectangle (a < ~4T+5), the construction does not fit — Omega(min(log
     b, a)).  Height needed vs available is reported via [fits]. *)
  let algo = Portfolio.ael ~t:3 () in
  let tall = Thm1_adversary.run ~dims:(60, 4000) ~n_side:0 ~k:4 ~algorithm:algo () in
  check_bool "tall enough: fits" true tall.Thm1_adversary.fits;
  let flat = Thm1_adversary.run ~dims:(6, 4000) ~n_side:0 ~k:4 ~algorithm:algo () in
  check_bool "too flat: does not fit" false flat.Thm1_adversary.fits

let test_thm2_rectangular_remark () =
  (* Omega(a) for odd b: row count gates the attack, column count does
     not (beyond oddness). *)
  let r_ok =
    Thm2_adversary.run_rect ~wrap:`Cylindrical ~rows:9 ~cols:15
      ~algorithm:(Portfolio.greedy ()) ()
  in
  check_bool "9 rows, T=1: preconditions met" true r_ok.Thm2_adversary.preconditions_met;
  check_bool "defeated" true
    (match r_ok.Thm2_adversary.result with `Defeated _ -> true | `Survived -> false);
  let r_flat =
    Thm2_adversary.run_rect ~wrap:`Cylindrical ~rows:7 ~cols:101
      ~algorithm:(Portfolio.greedy ()) ()
  in
  check_bool "7 rows: preconditions unmet however wide" false
    r_flat.Thm2_adversary.preconditions_met;
  let r_even =
    Thm2_adversary.run_rect ~wrap:`Cylindrical ~rows:51 ~cols:10
      ~algorithm:(Portfolio.greedy ()) ()
  in
  check_bool "even columns: no parity lever" false r_even.Thm2_adversary.preconditions_met

let () =
  Alcotest.run "misc"
    [
      ( "general-3-coloring",
        [
          Alcotest.test_case "all wraps" `Quick test_general_3_coloring_all_wraps;
          Alcotest.test_case "matches chromatic" `Slow test_general_3_coloring_matches_chromatic;
        ] );
      ( "render",
        [
          Alcotest.test_case "grid coloring" `Quick test_render_grid_coloring;
          Alcotest.test_case "region window" `Quick test_render_region;
        ] );
      ( "fit",
        [
          Alcotest.test_case "exact line" `Quick test_fit_exact_line;
          Alcotest.test_case "log fit" `Quick test_fit_log;
          Alcotest.test_case "validation" `Quick test_fit_validation;
        ] );
      ( "orders",
        [
          Alcotest.test_case "permutations" `Quick test_adversarial_orders_are_permutations;
          Alcotest.test_case "bit reversal" `Quick test_bit_reversal_spreads;
        ] );
      ( "rectangular-remarks",
        [
          Alcotest.test_case "thm1 remark" `Quick test_thm1_rectangular_remark;
          Alcotest.test_case "thm2 remark" `Quick test_thm2_rectangular_remark;
        ] );
    ]
