(* Harness.Fleet: sharded multi-server campaigns.

   Every test forks real serve.exe-shaped servers (Harness.Server.run
   in child processes) and drives them with the real fleet router over
   Unix-domain sockets.  The anchor assertion is the dispatch
   byte-identity contract: fleet campaign results equal a local map of
   the handler over the same specs — at every shard count, jobs level,
   isolation mode, chaos seed, and kill/drain history. *)

module Server = Harness.Server
module Client = Harness.Client
module Fleet = Harness.Fleet
module Backoff = Harness.Backoff

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fast_backoff = { Backoff.base = 0.002; max = 0.02; seed = 0x5EED }

(* Same deterministic handler as test_server: rev/upper/fail/slow. *)
let handler ~kind ~payload =
  match kind with
  | "rev" ->
      String.init (String.length payload) (fun i ->
          payload.[String.length payload - 1 - i])
  | "upper" -> String.uppercase_ascii payload
  | "fail" -> failwith ("no can do: " ^ payload)
  | "slow" ->
      Unix.sleepf 0.03;
      "slept for " ^ payload
  | "crawl" ->
      Unix.sleepf 0.15;
      "crawled " ^ payload
  | other -> failwith ("unknown kind: " ^ other)

let expected (kind, payload) =
  match handler ~kind ~payload with
  | r -> r
  | exception Failure msg -> "ERROR: Failure(\"" ^ msg ^ "\")"

let temp_path suffix =
  let path = Filename.temp_file "fleet_test" suffix in
  (try Sys.remove path with Sys_error _ -> ());
  path

let fork_server ?journal ?resume ~config ~socket () =
  match Unix.fork () with
  | 0 ->
      (try Server.run ~config ?journal ?resume ~socket ~handler () with _ -> ());
      Unix._exit 0
  | pid -> pid

let stop_server pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let fast_config jobs isolation =
  {
    Server.default_config with
    Server.jobs;
    isolation;
    backoff = fast_backoff;
    kill_grace = 0.1;
  }

(* Wait until a forked server's socket answers a health ping — the
   fleet types initial unreachability into the verdict, so tests that
   assert a FULL verdict must not race the bind. *)
let wait_ready socket =
  let deadline = Unix.gettimeofday () +. 5. in
  let rec go () =
    match Client.health ~recv_timeout:1. ~socket () with
    | Ok _ -> ()
    | Error (`Unreachable _) ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "server on %s never became ready" socket;
        Unix.sleepf 0.01;
        go ()
  in
  go ()

(* Fork [n] servers; call [f sockets pids]; SIGTERM-and-reap whatever
   is still alive on the way out. *)
let with_fleet ~n ~config f =
  let sockets = List.init n (fun _ -> temp_path ".sock") in
  let pids = List.map (fun s -> fork_server ~config ~socket:s ()) sockets in
  List.iter wait_ready sockets;
  Fun.protect
    ~finally:(fun () ->
      List.iter stop_server pids;
      List.iter (fun s -> try Sys.remove s with Sys_error _ -> ()) sockets)
    (fun () -> f sockets pids)

let campaign ?(window = 16) ?max_attempts ?(shard_seed = 0)
    ?(probe_interval = 0.05) ~endpoints specs =
  Fleet.run_campaign ~backoff:fast_backoff ~window ?max_attempts ~shard_seed
    ~probe_interval ~recv_timeout:10. ~endpoints specs

let mixed_specs =
  [
    ("rev", "stressed");
    ("upper", "two\nlines");
    ("fail", "boom");
    ("rev", "");
    ("upper", "last one");
    ("rev", "fleet");
    ("fail", "again");
    ("upper", "mixed");
  ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  n = 0
  || (m >= n
     && (let found = ref false in
         for i = 0 to m - n do
           if (not !found) && String.sub s i n = sub then found := true
         done;
         !found))

let check_results label specs (c : Fleet.campaign) =
  check_int (label ^ ": all results in") (List.length specs)
    (List.length c.Fleet.results);
  List.iteri
    (fun i (spec, got) ->
      check_string (Printf.sprintf "%s: result %d" label i) (expected spec) got)
    (List.combine specs c.Fleet.results)

(* ----------------------- byte-identity matrix ----------------------- *)

(* Calm fleet at every shard count x jobs level: byte-identical to the
   serverless baseline, FULL verdict, no failovers, no duplicates. *)
let test_identity_matrix () =
  List.iter
    (fun shards ->
      List.iter
        (fun jobs ->
          let label = Printf.sprintf "shards=%d jobs=%d" shards jobs in
          with_fleet ~n:shards ~config:(fast_config jobs `In_domain)
          @@ fun sockets _pids ->
          let c = campaign ~endpoints:sockets mixed_specs in
          check_results label mixed_specs c;
          check_bool (label ^ ": FULL verdict") true (c.Fleet.verdict = `Full);
          check_int (label ^ ": no failovers") 0 c.Fleet.failovers;
          check_int (label ^ ": no duplicates") 0 c.Fleet.duplicates)
        [ 1; 4 ])
    [ 1; 2; 3 ]

(* Chaos servers (dropped conns, partial/truncated frames, child
   SIGKILLs) at every shard count: the campaign still converges to the
   same bytes.  Process isolation so kill_child is exercised. *)
let test_identity_under_chaos () =
  List.iter
    (fun shards ->
      List.iter
        (fun seed ->
          let config =
            {
              (fast_config 2 `Process) with
              Server.chaos = Some (Server.default_chaos ~seed);
            }
          in
          let label = Printf.sprintf "chaos shards=%d seed=%d" shards seed in
          with_fleet ~n:shards ~config @@ fun sockets _pids ->
          let c = campaign ~window:8 ~endpoints:sockets mixed_specs in
          check_results label mixed_specs c)
        [ 7; 23 ])
    [ 1; 2; 3 ]

(* Single-endpoint fleet and single-server client: same bytes. *)
let test_single_endpoint_matches_client () =
  with_fleet ~n:1 ~config:(fast_config 2 `In_domain) @@ fun sockets _pids ->
  let f = campaign ~endpoints:sockets mixed_specs in
  let c =
    Client.run_campaign ~backoff:fast_backoff
      ~socket:(List.hd sockets) mixed_specs
  in
  List.iter2
    (fun a b -> check_string "fleet equals client" a b)
    c.Client.results f.Fleet.results

(* ------------------------------ failover ----------------------------- *)

(* SIGKILL one of three servers mid-campaign: its jobs fail over, the
   campaign completes with the same bytes, and the verdict says what
   happened instead of pretending it did not. *)
let test_sigkill_failover () =
  with_fleet ~n:3 ~config:(fast_config 1 `In_domain) @@ fun sockets pids ->
  let specs = List.init 12 (fun i -> ("slow", Printf.sprintf "kill-%d" i)) in
  let victim = List.nth pids 1 in
  (* the killer: a child that waits for the campaign to be mid-flight *)
  (match Unix.fork () with
  | 0 ->
      Unix.sleepf 0.08;
      (try Unix.kill victim Sys.sigkill with Unix.Unix_error _ -> ());
      Unix._exit 0
  | killer ->
      let c = campaign ~window:12 ~endpoints:sockets specs in
      ignore (Unix.waitpid [] killer);
      check_results "sigkill" specs c;
      check_bool "sigkill: degraded verdict" true
        (match c.Fleet.verdict with `Degraded _ -> true | `Full -> false);
      check_bool "sigkill: failovers counted" true (c.Fleet.failovers >= 1))

(* SIGTERM-drain one of two servers mid-campaign with slow jobs: the
   drained server still answers its in-flight job on the open
   connection while the fleet has already resubmitted it elsewhere —
   the redundant delivery is dropped and counted.  Exactly-once is the
   byte-identity assertion; [duplicates] makes the dedup visible. *)
let test_drain_duplicates_deduped () =
  with_fleet ~n:2 ~config:(fast_config 1 `In_domain) @@ fun sockets pids ->
  let specs = List.init 10 (fun i -> ("crawl", Printf.sprintf "drain-%d" i)) in
  let victim = List.hd pids in
  (match Unix.fork () with
  | 0 ->
      Unix.sleepf 0.05;
      (try Unix.kill victim Sys.sigterm with Unix.Unix_error _ -> ());
      Unix._exit 0
  | killer ->
      let c = campaign ~window:10 ~probe_interval:0.02 ~endpoints:sockets specs in
      ignore (Unix.waitpid [] killer);
      check_results "drain" specs c;
      check_bool "drain: degraded verdict" true
        (match c.Fleet.verdict with `Degraded _ -> true | `Full -> false);
      (* every result was delivered exactly once into [results]
         regardless of how many servers answered; any redundant answer
         must be in the counter, never in the output *)
      check_bool "drain: dedup counter consistent" true (c.Fleet.duplicates >= 0))

(* One endpoint never existed: the campaign degrades to the live
   server, names the dead one in the verdict, and loses nothing. *)
let test_dead_endpoint_degrades () =
  with_fleet ~n:1 ~config:(fast_config 2 `In_domain) @@ fun sockets _pids ->
  let dead = temp_path ".sock" in
  let endpoints = [ dead; List.hd sockets ] in
  let c = campaign ~max_attempts:50 ~endpoints mixed_specs in
  check_results "dead endpoint" mixed_specs c;
  match c.Fleet.verdict with
  | `Full -> Alcotest.fail "expected a degraded verdict"
  | `Degraded reasons ->
      check_bool "dead endpoint named" true
        (List.exists (contains ~sub:dead) reasons)

(* The whole fleet dark: a typed Failure bound, not a hang. *)
let test_all_dead_fails () =
  let endpoints = [ temp_path ".sock"; temp_path ".sock" ] in
  match campaign ~max_attempts:3 ~endpoints [ ("rev", "x") ] with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      check_bool "names the fleet" true
        (String.length msg > 0)

(* ------------------------------ sharding ----------------------------- *)

let test_home_shard_deterministic () =
  let shard = Fleet.home_shard ~shard_seed:42 ~endpoints:3 in
  List.iter
    (fun (kind, payload) ->
      let a = shard ~kind ~payload in
      let b = shard ~kind ~payload in
      check_int (Printf.sprintf "stable shard for %s/%s" kind payload) a b;
      check_bool "in range" true (a >= 0 && a < 3))
    mixed_specs;
  (* the seed actually matters: over enough jobs, two seeds disagree
     somewhere (equal placement for 64 jobs has probability 3^-64) *)
  let jobs = List.init 64 (fun i -> Printf.sprintf "job-%d" i) in
  let place seed =
    List.map
      (fun p -> Fleet.home_shard ~shard_seed:seed ~endpoints:3 ~kind:"rev" ~payload:p)
      jobs
  in
  check_bool "seeds differ" true (place 1 <> place 2)

(* ------------------------------ validation --------------------------- *)

let test_invalid_args () =
  Alcotest.check_raises "empty endpoints"
    (Invalid_argument "Fleet: at least one endpoint required") (fun () ->
      ignore (Fleet.run_campaign ~endpoints:[] [ ("rev", "x") ]));
  Alcotest.check_raises "duplicate endpoints"
    (Invalid_argument "Fleet: duplicate endpoint /tmp/same.sock") (fun () ->
      ignore
        (Fleet.run_campaign
           ~endpoints:[ "/tmp/same.sock"; "/tmp/same.sock" ]
           [ ("rev", "x") ]));
  Alcotest.check_raises "bad endpoint count"
    (Invalid_argument "Fleet: endpoints must be >= 1") (fun () ->
      ignore (Fleet.home_shard ~shard_seed:0 ~endpoints:0 ~kind:"rev" ~payload:""))

let () =
  Alcotest.run "fleet"
    [
      ( "byte-identity",
        [
          Alcotest.test_case "shard x jobs matrix" `Quick test_identity_matrix;
          Alcotest.test_case "chaos matrix" `Quick test_identity_under_chaos;
          Alcotest.test_case "single endpoint equals client" `Quick
            test_single_endpoint_matches_client;
        ] );
      ( "failover",
        [
          Alcotest.test_case "SIGKILL mid-campaign" `Quick test_sigkill_failover;
          Alcotest.test_case "SIGTERM drain dedups duplicates" `Quick
            test_drain_duplicates_deduped;
          Alcotest.test_case "dead endpoint degrades" `Quick
            test_dead_endpoint_degrades;
          Alcotest.test_case "all endpoints dead fails typed" `Quick
            test_all_dead_fails;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "home shard deterministic" `Quick
            test_home_shard_deterministic;
        ] );
      ( "validation",
        [ Alcotest.test_case "invalid arguments" `Quick test_invalid_args ] );
    ]
