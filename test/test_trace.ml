(* The observability layer: canonical JSON, the NDJSON trace codec and
   sink, the sharded metrics registry, and the versioned sweep
   checkpoint header. *)

open Online_local
module J = Obs.Json
module T = Harness.Trace
module Mx = Harness.Metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp_file suffix f =
  let path = Filename.temp_file "trace_test" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ------------------------------ json ------------------------------- *)

let test_json_canonical_printing () =
  check_string "object"
    {|{"a":1,"b":[true,false,null],"c":"x\n\"y\""}|}
    (J.to_string
       (J.Obj
          [
            ("a", J.Int 1);
            ("b", J.List [ J.Bool true; J.Bool false; J.Null ]);
            ("c", J.String "x\n\"y\"");
          ]));
  (* Floats: fixed-point, up to six decimals, trailing zeros trimmed,
     one decimal always kept. *)
  check_string "float trims zeros" "0.25" (J.to_string (J.Float 0.25));
  check_string "float keeps one decimal" "3.0" (J.to_string (J.Float 3.));
  check_string "float six decimals" "0.000001" (J.to_string (J.Float 1e-6));
  check_string "non-finite is null" "null" (J.to_string (J.Float Float.nan))

let test_json_roundtrip_byte_identical () =
  (* Canonical printing makes print/parse/print the identity on
     anything the library itself produced. *)
  List.iter
    (fun v ->
      let s = J.to_string v in
      check_string s s (J.to_string (J.of_string s)))
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.Float 1.5;
      J.Float (-0.000125);
      J.String "tabs\tand\nnewlines and \x01 control";
      J.List [ J.Int 1; J.List []; J.Obj [] ];
      J.Obj [ ("k", J.String "v"); ("nested", J.Obj [ ("x", J.Float 2.5) ]) ];
    ]

let test_json_parse_errors () =
  let rejects s =
    match J.of_string s with
    | exception J.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted malformed %S" s
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\":}";
  rejects "\"unterminated";
  rejects "1 2";
  rejects "tru"

let test_json_accessors () =
  let j = J.of_string {|{"i":3,"f":1.5,"s":"x","b":true}|} in
  check_bool "member+int" true (J.member "i" j |> Option.get |> J.to_int_opt = Some 3);
  check_bool "int reads as float" true
    (J.member "i" j |> Option.get |> J.to_float_opt = Some 3.);
  check_bool "missing member" true (J.member "zzz" j = None);
  check_bool "string" true (J.member "s" j |> Option.get |> J.to_string_opt = Some "x");
  check_bool "bool" true (J.member "b" j |> Option.get |> J.to_bool_opt = Some true)

(* --------------------------- trace codec --------------------------- *)

(* One of each event variant: the codec round-trip must cover the whole
   type, so adding an event without a decoder breaks this test. *)
let all_events =
  [
    T.Trace_header { version = T.version; program = "test" };
    T.Cell_start { key = "t=1 k=6" };
    T.Cell_finish { key = "t=1 k=6"; status = "ok" };
    T.Checkpoint_flush { key = "t=1 k=6"; bytes = 41 };
    T.Worker_start { index = 2 };
    T.Worker_stop { index = 2; tasks = 7 };
    T.Game_start
      {
        adversary = "thm1-grid";
        algorithm = "greedy";
        n = 40;
        max_color_calls = Some 100;
        max_work = None;
        deadline = Some 1.5;
      };
    T.Game_verdict
      {
        adversary = "thm1-grid";
        algorithm = "greedy";
        n = 40;
        outcome = "DEFEATED";
        guaranteed = true;
        color_calls = 17;
        work = 990;
      };
    T.Step { executor = "virtual_grid"; step = 3; target = 12; revealed = 30; max_view = 30 };
    T.Reveal { executor = "virtual_grid"; step = 3; fresh = 5; revealed = 30 };
    T.Color_call { calls = 17; work = 990 };
    T.Audit { executor = "fixed_host"; ok = false; detail = "monochromatic edge 0 -- 1" };
    T.Fault_injected { tag = "wrong-color"; call = 4 };
    T.Misbehavior { label = "raised"; detail = "raised: Failure" };
    T.Journal_corrupt { path = "j.journal"; line = 7; reason = "torn record" };
    T.Fleet_start { endpoints = 2; jobs = 8; shard_seed = 0 };
    T.Endpoint_state { endpoint = "/tmp/a.sock"; state = "up" };
    T.Failover { id = "deadbeef"; src = "/tmp/a.sock"; dst = "tcp:7002" };
    T.Rebalance { moved = 3; src = "/tmp/a.sock"; dst = "tcp:7002" };
    T.Fleet_verdict { verdict = "FULL"; results = 5; failovers = 0; duplicates = 0 };
  ]

let test_event_codec_roundtrip () =
  List.iteri
    (fun idx ev ->
      (* ts chosen dyadic so the decimal rendering is exact *)
      let r = { T.i = idx; w = 1; ts = 0.5 +. float_of_int idx; ev } in
      let line = T.record_to_string r in
      let r' = T.record_of_json (J.of_string line) in
      check_string "re-emit is byte-identical" line (T.record_to_string r');
      check_bool "structurally equal" true (r = r'))
    all_events

let test_codec_rejects_newer_version () =
  let line =
    {|{"i":0,"w":0,"ts":0.0,"ev":"trace_header","version":99,"program":"x"}|}
  in
  match T.record_of_json (J.of_string line) with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "accepted a newer trace format version"

let test_codec_rejects_unknown_event () =
  let line = {|{"i":0,"w":0,"ts":0.0,"ev":"time_travel"}|} in
  match T.record_of_json (J.of_string line) with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "accepted an unknown event"

(* ---------------------------- trace sink --------------------------- *)

let test_sink_ndjson_roundtrip () =
  (* Emit through a real sink, parse the file back, re-emit every
     record: the NDJSON stream must survive a full round-trip
     byte-identically. *)
  with_temp_file ".trace" (fun path ->
      check_bool "off outside sink" false (T.on ());
      T.with_sink ~program:"test" ~path (fun () ->
          check_bool "on inside sink" true (T.on ());
          List.iter T.emit (List.tl all_events));
      check_bool "off after sink" false (T.on ());
      let records = T.read_file path in
      check_int "header + events" (List.length all_events) (List.length records);
      (match records with
      | { T.ev = T.Trace_header { version; program }; i = 0; _ } :: _ ->
          check_int "header version" T.version version;
          check_string "header program" "test" program
      | _ -> Alcotest.fail "first record is not the header");
      List.iteri (fun idx r -> check_int "i is dense" idx r.T.i) records;
      let original = In_channel.with_open_text path In_channel.input_lines in
      let reemitted = List.map T.record_to_string records in
      Alcotest.(check (list string)) "re-emitted file is byte-identical" original
        reemitted)

let test_sink_rejects_nesting () =
  with_temp_file ".trace" (fun p1 ->
      with_temp_file ".trace" (fun p2 ->
          T.with_sink ~program:"outer" ~path:p1 (fun () ->
              match T.with_sink ~program:"inner" ~path:p2 (fun () -> ()) with
              | exception Invalid_argument _ -> ()
              | () -> Alcotest.fail "nested sink accepted")))

let test_read_file_strict () =
  with_temp_file ".trace" (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "{\"i\":0,\"w\":0,\"ts\":0.0,\"ev\":\"cell_start\",\"key\":\"a\"}\nnot json\n");
      match T.read_file path with
      | exception J.Parse_error msg ->
          check_bool "error names the line" true
            (String.length msg > 0
            && Option.is_some (String.index_opt msg ':'))
      | _ -> Alcotest.fail "malformed line accepted")

(* ----------------------------- metrics ----------------------------- *)

let test_metrics_disabled_records_nothing () =
  Mx.reset ();
  Mx.disable ();
  Mx.incr "nope";
  Mx.observe "nope.hist" 3;
  let s = Mx.drain () in
  check_int "no counters" 0 (List.length s.Mx.counters);
  check_int "no hists" 0 (List.length s.Mx.hists)

let test_metrics_merge_and_pp () =
  Mx.reset ();
  Mx.enable ();
  Fun.protect
    ~finally:(fun () ->
      Mx.disable ();
      Mx.reset ())
    (fun () ->
      Mx.incr "c.one";
      Mx.add "c.one" 4;
      Mx.gauge_max "g.peak" 10;
      Mx.gauge_max "g.peak" 7;
      Mx.observe "h.sizes" 1;
      Mx.observe "h.sizes" 6;
      let s = Mx.drain () in
      check_bool "counter summed" true (List.assoc "c.one" s.Mx.counters = 5);
      check_bool "gauge maxed" true (List.assoc "g.peak" s.Mx.gauges = 10);
      let h = List.assoc "h.sizes" s.Mx.hists in
      check_int "hist count" 2 h.Mx.count;
      check_int "hist sum" 7 h.Mx.sum;
      check_int "hist max" 6 h.Mx.max_value;
      check_int "1 lands in bucket 1" 1 h.Mx.buckets.(Mx.bucket_of 1);
      check_int "6 lands in bucket 3" 1 h.Mx.buckets.(Mx.bucket_of 6))

let drain_to_string () = Format.asprintf "%a" Mx.pp (Mx.drain ())

(* The determinism contract: a fixed workload drains byte-identical
   totals however it was spread over domains. *)
let metrics_workload jobs =
  Mx.reset ();
  Mx.enable ();
  Fun.protect
    ~finally:(fun () ->
      Mx.disable ();
      Mx.reset ())
    (fun () ->
      Harness.Pool.run ~jobs ~tasks:16
        ~work:(fun i ->
          Mx.incr "tasks.run";
          Mx.add "tasks.sum" i;
          Mx.gauge_max "tasks.max" i;
          Mx.observe "tasks.hist" (i + 1);
          i)
        ~consume:(fun _ _ -> ());
      drain_to_string ())

let test_metrics_jobs_invariant () =
  let sequential = metrics_workload 1 in
  let parallel = metrics_workload 4 in
  check_string "drained registry identical at jobs=1 and jobs=4" sequential parallel;
  check_bool "registry is non-trivial" true
    (String.length sequential > 0
    && Option.is_some
         (String.index_opt sequential 't') (* has the tasks.* names *))

let test_bucket_bounds () =
  check_int "bucket of 0" 0 (Mx.bucket_of 0);
  check_int "bucket of 1" 1 (Mx.bucket_of 1);
  check_int "bucket of 7" 3 (Mx.bucket_of 7);
  check_int "bucket of 8" 4 (Mx.bucket_of 8);
  List.iter
    (fun v ->
      check_bool "bucket_lo <= v" true (Mx.bucket_lo (Mx.bucket_of v) <= v))
    [ 1; 2; 3; 7; 8; 100; 4096; max_int ]

(* ------------------------- traced game run ------------------------- *)

let test_traced_game_has_spans () =
  with_temp_file ".trace" (fun path ->
      let verdict =
        T.with_sink ~program:"test" ~path (fun () ->
            Game.thm1.Game.play ~n:40 (Portfolio.greedy ()))
      in
      check_bool "greedy is defeated" true verdict.Game.defeated;
      let records = T.read_file path in
      let has p = List.exists (fun r -> p r.T.ev) records in
      check_bool "game_start present" true
        (has (function T.Game_start { adversary = "thm1-grid"; _ } -> true | _ -> false));
      check_bool "verdict is DEFEATED" true
        (has (function
          | T.Game_verdict { outcome = "DEFEATED"; _ } -> true
          | _ -> false));
      check_bool "steps present" true
        (has (function T.Step _ -> true | _ -> false));
      check_bool "color calls metered" true
        (has (function T.Color_call _ -> true | _ -> false)))

(* --------------------- checkpoint versioning ----------------------- *)

let cells_of log =
  List.map
    (fun key ->
      {
        Harness.Sweep.key;
        run =
          (fun () ->
            log := key :: !log;
            "result " ^ key);
      })
    [ "a"; "b" ]

let render ?resume ?checkpoint cells =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Harness.Sweep.run ?resume ?checkpoint ~ppf cells;
  Buffer.contents buf

let test_checkpoint_v2_header_written () =
  with_temp_file ".ckpt" (fun path ->
      let log = ref [] in
      let full = render ~checkpoint:path (cells_of log) in
      let lines = In_channel.with_open_text path In_channel.input_lines in
      check_string "header first" "#sweep-checkpoint v2" (List.hd lines);
      check_int "header + one record per cell" 3 (List.length lines);
      (* Every v2 record carries its CRC trailer. *)
      List.iter
        (fun line ->
          check_bool "record has a crc trailer" true
            (match String.rindex_opt line '\t' with
            | None -> false
            | Some t ->
                String.length line > t + 1 && line.[t + 1] = '@'))
        (List.tl lines);
      (* And the file resumes: nothing reruns, output is identical. *)
      log := [];
      let resumed = render ~resume:true ~checkpoint:path (cells_of log) in
      check_string "byte-identical resume" full resumed;
      check_int "nothing reran" 0 (List.length !log))

let test_checkpoint_v1_still_replays () =
  (* A v1 journal (header, no CRC trailers) keeps replaying unchanged. *)
  with_temp_file ".ckpt" (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            "#sweep-checkpoint v1\na\tresult a\nb\tresult b\n");
      let log = ref [] in
      let out = render ~resume:true ~checkpoint:path (cells_of log) in
      check_int "nothing reran" 0 (List.length !log);
      check_string "replayed v1 results" "result a\nresult b\n" out)

let corrupt_last_record path =
  (* flip one bit in the middle of the final record *)
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let last_line_start = String.rindex_from contents (String.length contents - 2) '\n' + 1 in
  let off = last_line_start + 3 in
  let b = Bytes.of_string contents in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b)

let test_checkpoint_corrupt_record_skipped_and_rerun () =
  with_temp_file ".ckpt" (fun ckpt ->
      with_temp_file ".trace" (fun trace ->
          let log = ref [] in
          let full = render ~checkpoint:ckpt (cells_of log) in
          corrupt_last_record ckpt;
          (* fsck sees exactly the damaged record *)
          let report = Harness.Sweep.Journal.fsck ckpt in
          check_int "fsck version" 2 report.Harness.Sweep.Journal.version;
          check_int "one corrupt record" 1
            (List.length report.Harness.Sweep.Journal.corrupt);
          (* resume: the bit-flipped record is skipped with a typed,
             traced warning and exactly that cell reruns *)
          log := [];
          let resumed =
            T.with_sink ~program:"test" ~path:trace (fun () ->
                render ~resume:true ~checkpoint:ckpt (cells_of log))
          in
          check_string "byte-identical despite corruption" full resumed;
          Alcotest.(check (list string)) "exactly the torn cell reran" [ "b" ] !log;
          let corrupt_events =
            List.filter
              (fun r ->
                match r.T.ev with T.Journal_corrupt _ -> true | _ -> false)
              (T.read_file trace)
          in
          check_int "typed warning traced" 1 (List.length corrupt_events);
          (* the journal is append-only: the damaged line stays (fsck
             keeps flagging it) but the rerun appended a good record
             that supersedes it — a second resume replays everything *)
          let report = Harness.Sweep.Journal.fsck ckpt in
          check_int "fsck still flags the torn line" 1
            (List.length report.Harness.Sweep.Journal.corrupt);
          check_int "both cells have valid records" 2
            report.Harness.Sweep.Journal.records;
          log := [];
          let again = render ~resume:true ~checkpoint:ckpt (cells_of log) in
          check_string "second resume byte-identical" full again;
          check_int "nothing reran" 0 (List.length !log)))

let test_checkpoint_v0_headerless_still_replays () =
  (* A checkpoint written before versioning has no header line; it must
     keep resuming. *)
  with_temp_file ".ckpt" (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "a\tresult a\nb\tresult b\n");
      let log = ref [] in
      let out = render ~resume:true ~checkpoint:path (cells_of log) in
      check_int "nothing reran" 0 (List.length !log);
      check_string "replayed v0 results" "result a\nresult b\n" out)

let test_checkpoint_newer_version_rejected () =
  with_temp_file ".ckpt" (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "#sweep-checkpoint v3\na\tresult a\n");
      let log = ref [] in
      match render ~resume:true ~checkpoint:path (cells_of log) with
      | exception Invalid_argument msg ->
          check_bool "names the version" true
            (Option.is_some (String.index_opt msg '3'))
      | _ -> Alcotest.fail "accepted a v3 checkpoint")

let test_traced_sweep_marks_replays () =
  with_temp_file ".ckpt" (fun ckpt ->
      with_temp_file ".trace" (fun trace ->
          let log = ref [] in
          ignore (render ~checkpoint:ckpt (cells_of log));
          T.with_sink ~program:"test" ~path:trace (fun () ->
              ignore (render ~resume:true ~checkpoint:ckpt (cells_of log)));
          let records = T.read_file trace in
          let replayed =
            List.length
              (List.filter
                 (fun r ->
                   match r.T.ev with
                   | T.Cell_finish { status = "replayed"; _ } -> true
                   | _ -> false)
                 records)
          in
          check_int "both cells replayed" 2 replayed))

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [
          Alcotest.test_case "canonical printing" `Quick test_json_canonical_printing;
          Alcotest.test_case "roundtrip byte-identical" `Quick
            test_json_roundtrip_byte_identical;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "codec",
        [
          Alcotest.test_case "event roundtrip" `Quick test_event_codec_roundtrip;
          Alcotest.test_case "newer version rejected" `Quick
            test_codec_rejects_newer_version;
          Alcotest.test_case "unknown event rejected" `Quick
            test_codec_rejects_unknown_event;
        ] );
      ( "sink",
        [
          Alcotest.test_case "ndjson roundtrip" `Quick test_sink_ndjson_roundtrip;
          Alcotest.test_case "nesting rejected" `Quick test_sink_rejects_nesting;
          Alcotest.test_case "strict reader" `Quick test_read_file_strict;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled is inert" `Quick
            test_metrics_disabled_records_nothing;
          Alcotest.test_case "merge and pp" `Quick test_metrics_merge_and_pp;
          Alcotest.test_case "jobs-count invariant" `Quick test_metrics_jobs_invariant;
          Alcotest.test_case "bucket bounds" `Quick test_bucket_bounds;
        ] );
      ( "integration",
        [
          Alcotest.test_case "traced game spans" `Quick test_traced_game_has_spans;
          Alcotest.test_case "traced sweep replays" `Quick
            test_traced_sweep_marks_replays;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "v2 header with crc trailers" `Quick
            test_checkpoint_v2_header_written;
          Alcotest.test_case "v1 replays" `Quick test_checkpoint_v1_still_replays;
          Alcotest.test_case "v0 replays" `Quick
            test_checkpoint_v0_headerless_still_replays;
          Alcotest.test_case "newer rejected" `Quick
            test_checkpoint_newer_version_rejected;
          Alcotest.test_case "corrupt record skipped, rerun, fsck" `Quick
            test_checkpoint_corrupt_record_skipped_and_rerun;
        ] );
    ]
