(* Harness.Server + Harness.Client: the resilient job server.

   Every test forks the server into a child process (so SIGTERM drains
   and crash-recovery restarts are the real thing, not simulations) and
   drives it with the real client over a Unix-domain socket.  The
   anchor assertion throughout: campaign results are byte-identical to
   a local map of the handler over the same specs — whatever the
   server's jobs count, isolation mode, chaos setting, or how many
   times it was killed and restarted in between. *)

module Server = Harness.Server
module Client = Harness.Client
module Backoff = Harness.Backoff

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fast_backoff = { Backoff.base = 0.002; max = 0.02; seed = 0x5EED }

(* The deterministic test handler.  Kinds:
     rev    -> the payload reversed
     upper  -> uppercased, multi-line results preserved
     fail   -> raises (the typed ERROR path)
     slow   -> sleeps 30 ms, then echoes (drain / backpressure fodder) *)
let handler ~kind ~payload =
  match kind with
  | "rev" -> String.init (String.length payload) (fun i ->
        payload.[String.length payload - 1 - i])
  | "upper" -> String.uppercase_ascii payload
  | "fail" -> failwith ("no can do: " ^ payload)
  | "slow" ->
      Unix.sleepf 0.03;
      "slept for " ^ payload
  | other -> failwith ("unknown kind: " ^ other)

(* What the server must answer for one spec — computed locally, the
   serverless baseline of the byte-identity contract. *)
let expected (kind, payload) =
  match handler ~kind ~payload with
  | r -> r
  | exception Failure msg -> "ERROR: Failure(\"" ^ msg ^ "\")"

let temp_path suffix =
  let path = Filename.temp_file "server_test" suffix in
  (try Sys.remove path with Sys_error _ -> ());
  path

let fork_server ?journal ?resume ~config ~socket () =
  match Unix.fork () with
  | 0 ->
      (try Server.run ~config ?journal ?resume ~socket ~handler () with _ -> ());
      Unix._exit 0
  | pid -> pid

let stop_server pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let with_server ?journal ?resume ~config f =
  let socket = temp_path ".sock" in
  let pid = fork_server ?journal ?resume ~config ~socket () in
  Fun.protect
    ~finally:(fun () ->
      stop_server pid;
      try Sys.remove socket with Sys_error _ -> ())
    (fun () -> f ~socket ~pid)

let campaign ?(window = 16) ?max_attempts ~socket specs =
  Client.run_campaign ~backoff:fast_backoff ~window ?max_attempts ~socket specs

let mixed_specs =
  [
    ("rev", "stressed");
    ("upper", "two\nlines");
    ("fail", "boom");
    ("rev", "");
    ("upper", "last one");
  ]

let fast_config jobs isolation =
  {
    Server.default_config with
    Server.jobs;
    isolation;
    backoff = fast_backoff;
    kill_grace = 0.1;
  }

(* ------------------------- basic round trips ------------------------- *)

let test_basic_roundtrip () =
  with_server ~config:(fast_config 2 `Process) @@ fun ~socket ~pid:_ ->
  let c = campaign ~socket mixed_specs in
  check_int "all results" (List.length mixed_specs) (List.length c.Client.results);
  List.iteri
    (fun i (spec, got) ->
      check_string (Printf.sprintf "result %d" i) (expected spec) got)
    (List.combine mixed_specs c.Client.results)

let test_results_jobs_isolation_invariant () =
  let baseline = List.map expected mixed_specs in
  List.iter
    (fun (jobs, isolation, label) ->
      with_server ~config:(fast_config jobs isolation) @@ fun ~socket ~pid:_ ->
      let c = campaign ~socket mixed_specs in
      List.iteri
        (fun i (want, got) ->
          check_string (Printf.sprintf "%s result %d" label i) want got)
        (List.combine baseline c.Client.results))
    [
      (1, `Process, "proc/1");
      (4, `Process, "proc/4");
      (1, `In_domain, "domain/1");
      (4, `In_domain, "domain/4");
    ]

let test_dedup_duplicate_specs () =
  with_server ~config:(fast_config 2 `In_domain) @@ fun ~socket ~pid:_ ->
  (* the same spec three times: one job server-side, three results *)
  let specs = [ ("rev", "same"); ("rev", "same"); ("rev", "same") ] in
  let c = campaign ~socket specs in
  List.iter (fun got -> check_string "deduped result" "emas" got) c.Client.results;
  let stats =
    match Client.stats ~socket () with
    | Ok json -> json
    | Error (`Unreachable reason) -> Alcotest.failf "stats unreachable: %s" reason
  in
  check_bool "server accepted exactly one job" true
    (let needle = "\"accepted\":1" in
     let rec find i =
       i + String.length needle <= String.length stats
       && (String.sub stats i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let test_health_and_stats () =
  with_server ~config:(fast_config 1 `In_domain) @@ fun ~socket ~pid:_ ->
  let retry_oneshot f =
    (* the forked server may still be binding; retry briefly *)
    let rec go n =
      match f () with
      | Ok v -> v
      | Error (`Unreachable _) when n > 0 ->
          Unix.sleepf 0.02;
          go (n - 1)
      | Error (`Unreachable reason) ->
          Alcotest.failf "server still unreachable: %s" reason
    in
    go 100
  in
  let health = retry_oneshot (fun () -> Client.health ~socket ()) in
  check_bool "health mentions status" true
    (String.length health > 0 && health.[0] = '{');
  let stats = retry_oneshot (fun () -> Client.stats ~socket ()) in
  check_bool "stats is json" true (String.length stats > 0 && stats.[0] = '{')

let test_health_unreachable_is_typed () =
  (* no server behind this path: the one-shots answer with a typed
     [`Unreachable], never a bare exception *)
  let socket = temp_path ".sock" in
  (match Client.health ~socket () with
  | Ok json -> Alcotest.failf "health of a missing socket answered: %s" json
  | Error (`Unreachable reason) ->
      check_bool "unreachable reason is non-empty" true (String.length reason > 0));
  match Client.stats ~socket () with
  | Ok json -> Alcotest.failf "stats of a missing socket answered: %s" json
  | Error (`Unreachable _) -> ()

(* --------------------------- backpressure ---------------------------- *)

let test_bounded_queue_rejects_and_recovers () =
  let config =
    { (fast_config 1 `In_domain) with Server.queue_limit = 1 }
  in
  with_server ~config @@ fun ~socket ~pid:_ ->
  let specs = List.init 6 (fun i -> ("slow", string_of_int i)) in
  let c = campaign ~window:6 ~socket specs in
  (* every job still completes, with correct bytes, through the retries *)
  List.iteri
    (fun i (spec, got) ->
      check_string (Printf.sprintf "result %d" i) (expected spec) got)
    (List.combine specs c.Client.results);
  check_bool "the bounded queue rejected at least one submit" true
    (c.Client.rejections > 0)

(* ------------------------ drain and recovery ------------------------- *)

(* Submit every spec raw (no waiting for results) and return once the
   server has acknowledged all of them — i.e. admitted and journaled
   them — so a SIGTERM right after lands with most of the queue
   outstanding. *)
let raw_submit_all ~socket specs =
  let module Wire = Harness.Wire in
  let addr = Unix.ADDR_UNIX socket in
  let rec conn tries =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if tries = 0 then Alcotest.fail "cannot reach forked server";
        Unix.sleepf 0.02;
        conn (tries - 1)
  in
  let fd = conn 250 in
  List.iter
    (fun (kind, payload) ->
      let frame = Wire.encode ~tag:'S' (kind ^ "\t\n" ^ payload) in
      ignore (Unix.write fd frame 0 (Bytes.length frame)))
    specs;
  let dec = Wire.decoder ~tags:"ARXE" () in
  let buf = Bytes.create 4096 in
  let rec wait acks =
    if acks < List.length specs then
      match Wire.decode dec with
      | Ok (Some { Wire.tag = 'A'; _ }) -> wait (acks + 1)
      | Ok (Some _) -> wait acks
      | Error _ -> Alcotest.fail "raw submit: protocol error"
      | Ok None -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> Alcotest.fail "raw submit: server closed before acking"
          | n ->
              Wire.feed dec buf 0 n;
              wait acks)
  in
  wait 0;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* SIGTERM the server with acknowledged jobs still queued/running,
   restart it on the same journal with ~resume, and run the full
   campaign against the restarted server.  The results must be
   byte-identical to the serverless baseline: nothing lost to the
   drain, nothing recomputed into a different answer. *)
let drain_recovery_scenario ~jobs ~isolation () =
  let config = fast_config jobs isolation in
  let journal = temp_path ".journal" in
  let socket = temp_path ".sock" in
  let specs = List.init 12 (fun i -> ("slow", Printf.sprintf "job-%d" i)) in
  let baseline = List.map expected specs in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove journal with Sys_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      (* phase 1: admit all 12 slow jobs, then drain immediately —
         in-flight ones finish during the drain, the rest stay only in
         the journal *)
      let pid1 = fork_server ~journal ~resume:false ~config ~socket () in
      raw_submit_all ~socket specs;
      stop_server pid1;
      (* phase 2: restart on the same journal and finish the campaign *)
      let pid2 = fork_server ~journal ~resume:true ~config ~socket () in
      Fun.protect
        ~finally:(fun () -> stop_server pid2)
        (fun () ->
          let c = campaign ~window:12 ~socket specs in
          List.iteri
            (fun i (want, got) ->
              check_string
                (Printf.sprintf "%s/%d result %d"
                   (match isolation with `Process -> "proc" | `In_domain -> "domain")
                   jobs i)
                want got)
            (List.combine baseline c.Client.results)))

let test_drain_recovery_proc_1 = drain_recovery_scenario ~jobs:1 ~isolation:`Process
let test_drain_recovery_proc_4 = drain_recovery_scenario ~jobs:4 ~isolation:`Process

let test_drain_recovery_domain_1 =
  drain_recovery_scenario ~jobs:1 ~isolation:`In_domain

let test_drain_recovery_domain_4 =
  drain_recovery_scenario ~jobs:4 ~isolation:`In_domain

(* A journal written by a drained server replays: finished jobs are
   served from the journal (status cached), unfinished re-run. *)
let test_journal_replay_serves_cached () =
  let config = fast_config 2 `Process in
  let journal = temp_path ".journal" in
  let specs = [ ("rev", "cache me"); ("fail", "cached error") ] in
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      (with_server ~journal ~resume:false ~config @@ fun ~socket ~pid:_ ->
       let c1 = campaign ~socket specs in
       check_int "first pass results" 2 (List.length c1.Client.results);
       (* second campaign on the same server: all cached *)
       let c2 = campaign ~socket specs in
       List.iter2
         (fun a b -> check_string "cached equals fresh" a b)
         c1.Client.results c2.Client.results);
      (* a FRESH server process on the same journal serves from it *)
      with_server ~journal ~resume:true ~config @@ fun ~socket ~pid:_ ->
      let c3 = campaign ~socket specs in
      List.iteri
        (fun i (spec, got) ->
          check_string (Printf.sprintf "replayed result %d" i) (expected spec) got)
        (List.combine specs c3.Client.results))

(* ------------------------------ chaos -------------------------------- *)

(* The acceptance gate: under every injected fault the campaign still
   converges and its bytes equal the serverless baseline.  Process
   isolation so kill_child is exercised too. *)
let chaos_scenario ~seed () =
  let config =
    {
      (fast_config 2 `Process) with
      Server.chaos = Some (Server.default_chaos ~seed);
    }
  in
  let specs =
    List.init 10 (fun i ->
        if i mod 3 = 0 then ("fail", Printf.sprintf "chaos-%d" i)
        else ("rev", Printf.sprintf "chaos-%d" i))
  in
  let baseline = List.map expected specs in
  with_server ~config @@ fun ~socket ~pid:_ ->
  let c = campaign ~window:8 ~socket specs in
  List.iteri
    (fun i (want, got) ->
      check_string (Printf.sprintf "chaos seed=%d result %d" seed i) want got)
    (List.combine baseline c.Client.results)

let test_chaos_seed_7 = chaos_scenario ~seed:7
let test_chaos_seed_23 = chaos_scenario ~seed:23

let () =
  Alcotest.run "server"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "mixed campaign" `Quick test_basic_roundtrip;
          Alcotest.test_case "jobs/isolation invariance" `Quick
            test_results_jobs_isolation_invariant;
          Alcotest.test_case "duplicate specs dedup" `Quick
            test_dedup_duplicate_specs;
          Alcotest.test_case "health and stats" `Quick test_health_and_stats;
          Alcotest.test_case "unreachable one-shots are typed" `Quick
            test_health_unreachable_is_typed;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "bounded queue rejects, campaign recovers" `Quick
            test_bounded_queue_rejects_and_recovers;
        ] );
      ( "drain-recovery",
        [
          Alcotest.test_case "proc jobs=1" `Quick test_drain_recovery_proc_1;
          Alcotest.test_case "proc jobs=4" `Quick test_drain_recovery_proc_4;
          Alcotest.test_case "domain jobs=1" `Quick test_drain_recovery_domain_1;
          Alcotest.test_case "domain jobs=4" `Quick test_drain_recovery_domain_4;
          Alcotest.test_case "journal replays cached results" `Quick
            test_journal_replay_serves_cached;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "soak seed=7" `Quick test_chaos_seed_7;
          Alcotest.test_case "soak seed=23" `Quick test_chaos_seed_23;
        ] );
    ]
