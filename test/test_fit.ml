(* Experiments.Fit against synthetic data with known closed forms. *)

module Fit = Experiments.Fit

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let test_exact_line () =
  (* y = 2x + 1, fit must be exact with r^2 = 1. *)
  let pts = List.map (fun x -> (float_of_int x, (2.0 *. float_of_int x) +. 1.0)) [ 1; 2; 3; 5; 8; 13 ] in
  let l = Fit.fit pts in
  check_float "slope" 2.0 l.Fit.slope;
  check_float "intercept" 1.0 l.Fit.intercept;
  check_float "r_squared" 1.0 l.Fit.r_squared

let test_negative_slope () =
  let pts = [ (0.0, 10.0); (1.0, 7.0); (2.0, 4.0); (3.0, 1.0) ] in
  let l = Fit.fit pts in
  check_float "slope" (-3.0) l.Fit.slope;
  check_float "intercept" 10.0 l.Fit.intercept;
  check_float "r_squared" 1.0 l.Fit.r_squared

let test_constant_data () =
  (* Zero variance in y: slope 0 and a degenerate r^2 (nan from 0/0). *)
  let l = Fit.fit [ (0.0, 5.0); (1.0, 5.0); (2.0, 5.0) ] in
  check_float "slope" 0.0 l.Fit.slope;
  check_float "intercept" 5.0 l.Fit.intercept;
  check_bool "r_squared degenerate" true (Float.is_nan l.Fit.r_squared)

let test_imperfect_fit () =
  (* Off-line points: 0 < r^2 < 1 and the residual-minimizing slope. *)
  let l = Fit.fit [ (0.0, 0.0); (1.0, 1.0); (2.0, 1.0); (3.0, 2.0) ] in
  check_float "slope" 0.6 l.Fit.slope;
  check_float "intercept" 0.1 l.Fit.intercept;
  check_bool "r_squared in (0,1)" true (l.Fit.r_squared > 0.0 && l.Fit.r_squared < 1.0)

let test_fit_log_x () =
  (* y = 3 log2 x + 2: fit_log_x recovers slope 3 exactly. *)
  let pts =
    List.map
      (fun x ->
        (float_of_int x, (3.0 *. (Float.log (float_of_int x) /. Float.log 2.0)) +. 2.0))
      [ 2; 4; 8; 16; 64; 256 ]
  in
  let l = Fit.fit_log_x pts in
  check_float "slope" 3.0 l.Fit.slope;
  check_float "intercept" 2.0 l.Fit.intercept;
  check_float "r_squared" 1.0 l.Fit.r_squared

let test_too_few_points () =
  Alcotest.check_raises "fewer than 2 points"
    (Invalid_argument "Fit.fit: need at least 2 points") (fun () ->
      ignore (Fit.fit [ (1.0, 1.0) ]))

let test_pp_mentions_fields () =
  let s = Format.asprintf "%a" Fit.pp (Fit.fit [ (0.0, 1.0); (1.0, 3.0) ]) in
  check_bool "nonempty" true (String.length s > 0)

let prop_fit_recovers_any_line =
  (* Proptest: for random integer-coefficient lines sampled at distinct
     points, OLS recovers the coefficients. *)
  let name = "fit recovers random exact lines" in
  Alcotest.test_case name `Quick (fun () ->
      let open Proptest in
      Runner.check_exn
        ~config:{ Runner.default_config with Runner.seed = 0xF17; cases = 100 }
        ~name
        ~print:(fun (a, b) -> Printf.sprintf "y = %dx + %d" a b)
        (Gen.pair (Gen.int_range (-20) 20) (Gen.int_range (-20) 20))
        (fun (a, b) ->
          let pts =
            List.map
              (fun x ->
                (float_of_int x, (float_of_int a *. float_of_int x) +. float_of_int b))
              [ 0; 1; 2; 7 ]
          in
          let l = Experiments.Fit.fit pts in
          Float.abs (l.Experiments.Fit.slope -. float_of_int a) < 1e-9
          && Float.abs (l.Experiments.Fit.intercept -. float_of_int b) < 1e-9))

let () =
  Alcotest.run "fit"
    [
      ( "fit",
        [
          Alcotest.test_case "exact line" `Quick test_exact_line;
          Alcotest.test_case "negative slope" `Quick test_negative_slope;
          Alcotest.test_case "constant data" `Quick test_constant_data;
          Alcotest.test_case "imperfect fit" `Quick test_imperfect_fit;
          Alcotest.test_case "fit_log_x" `Quick test_fit_log_x;
          Alcotest.test_case "too few points" `Quick test_too_few_points;
          Alcotest.test_case "pp" `Quick test_pp_mentions_fields;
          prop_fit_recovers_any_line;
        ] );
    ]
