(* The process-isolation backend: Harness.Supervisor directly, and
   Harness.Sweep.run ~isolation:`Process through it.

   Everything here forks, so every test runs on the main domain (alcotest
   executes cases sequentially in-process) and uses a fast supervisor
   config — millisecond backoff, no heartbeats — to keep the suite
   quick. *)

module Sup = Harness.Supervisor
module Sweep = Harness.Sweep

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fast =
  {
    Sup.default_config with
    Sup.heartbeat_interval = 0;
    backoff_base = 0.001;
    backoff_max = 0.01;
  }

let with_temp_file f =
  let path = Filename.temp_file "supervisor_test" ".tmp" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let render ?resume ?checkpoint ?(jobs = 1) ?isolation ?supervisor cells =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Sweep.run ?resume ?checkpoint ~jobs ?isolation ?supervisor ~ppf cells;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* A mixed cell list: plain results, a multi-line result, a raising
   cell.  Every thunk is deterministic, so the `Process output must be
   byte-identical to the `In_domain output — ERROR mapping included. *)
let mixed_cells () =
  [
    { Sweep.key = "plain"; run = (fun () -> "value=1") };
    {
      Sweep.key = "multiline";
      run = (fun () -> "line one\nline two\nline three");
    };
    { Sweep.key = "raiser"; run = (fun () -> failwith "cell exploded") };
    { Sweep.key = "empty"; run = (fun () -> "") };
    { Sweep.key = "last"; run = (fun () -> "value=5") };
  ]

let test_proc_matches_indomain () =
  let baseline = render ~isolation:`In_domain (mixed_cells ()) in
  check_bool "baseline mentions the contained raise" true
    (String.length baseline > 0);
  List.iter
    (fun jobs ->
      check_string
        (Printf.sprintf "proc --jobs %d output" jobs)
        baseline
        (render ~jobs ~isolation:`Process ~supervisor:fast (mixed_cells ())))
    [ 1; 2; 3 ]

let test_cross_mode_resume () =
  let full = mixed_cells () in
  let prefix = [ List.nth full 0; List.nth full 1 ] in
  let clean = render ~isolation:`In_domain full in
  (* Checkpoint written by one mode, resumed by the other — both
     directions, and a resumed run replays without re-forking. *)
  with_temp_file (fun ckpt ->
      ignore (render ~checkpoint:ckpt ~isolation:`In_domain prefix);
      check_string "in-domain checkpoint, proc resume" clean
        (render ~resume:true ~checkpoint:ckpt ~isolation:`Process
           ~supervisor:fast full));
  with_temp_file (fun ckpt ->
      ignore
        (render ~checkpoint:ckpt ~isolation:`Process ~supervisor:fast prefix);
      check_string "proc checkpoint, in-domain resume" clean
        (render ~resume:true ~checkpoint:ckpt ~isolation:`In_domain full);
      check_string "proc checkpoint, proc resume at jobs 2" clean
        (render ~resume:true ~checkpoint:ckpt ~jobs:2 ~isolation:`Process
           ~supervisor:fast full))

let test_self_kill_retried () =
  (* First attempt SIGKILLs its own worker process; the retry succeeds.
     The supervisor must deliver Done, and a sweep over the same cells
     must print exactly what an unkilled sweep prints. *)
  with_temp_file (fun marker ->
      (try Sys.remove marker with Sys_error _ -> ());
      let outcome = ref None in
      Sup.run ~config:fast ~jobs:1 ~tasks:1
        ~key:(fun _ -> "victim")
        ~work:(fun _ ->
          if not (Sys.file_exists marker) then begin
            Out_channel.with_open_bin marker (fun _ -> ());
            Unix.kill (Unix.getpid ()) Sys.sigkill
          end;
          "survived")
        ~consume:(fun _ o -> outcome := Some o)
        ();
      match !outcome with
      | Some (Sup.Done s) -> check_string "retried result" "survived" s
      | Some (Sup.Failed msg) -> Alcotest.failf "unexpected Failed: %s" msg
      | Some (Sup.Quarantined q) ->
          Alcotest.failf "unexpected quarantine: %s" (Sup.quarantine_to_string q)
      | None -> Alcotest.fail "no outcome delivered")

let test_always_dying_quarantined () =
  let outcome = ref None in
  Sup.run
    ~config:{ fast with Sup.retries = 1 }
    ~jobs:1 ~tasks:1
    ~key:(fun _ -> "doomed")
    ~work:(fun _ -> Unix.kill (Unix.getpid ()) Sys.sigkill |> fun () -> "unreachable")
    ~consume:(fun _ o -> outcome := Some o)
    ();
  match !outcome with
  | Some (Sup.Quarantined q) ->
      check_string "key" "doomed" q.Sup.key;
      check_int "attempts = 1 + retries" 2 q.Sup.attempts;
      check_int "one failure per attempt" 2 (List.length q.Sup.failures);
      List.iter
        (fun f ->
          match f with
          | Sup.Signaled s -> check_int "killed by SIGKILL" Sys.sigkill s
          | other ->
              Alcotest.failf "expected Signaled, got %s"
                (Sup.failure_to_string other))
        q.Sup.failures;
      let s = Sup.quarantine_to_string q in
      check_bool "string names the attempt count" true
        (String.length s >= 11 && String.sub s 0 11 = "QUARANTINED")
  | Some other ->
      Alcotest.failf "expected quarantine, got %s"
        (match other with
        | Sup.Done s -> "Done " ^ s
        | Sup.Failed s -> "Failed " ^ s
        | Sup.Quarantined _ -> assert false)
  | None -> Alcotest.fail "no outcome delivered"

let test_quarantine_checkpointed_and_replayed () =
  (* A quarantined cell's QUARANTINED line is a checkpointed result: a
     resume replays it verbatim instead of re-running the cell — even if
     the cell would now succeed. *)
  with_temp_file (fun ckpt ->
      let dying =
        [
          {
            Sweep.key = "doomed";
            run =
              (fun () ->
                Unix.kill (Unix.getpid ()) Sys.sigkill;
                "unreachable");
          };
          { Sweep.key = "fine"; run = (fun () -> "ok") };
        ]
      in
      let first =
        render ~checkpoint:ckpt ~isolation:`Process
          ~supervisor:{ fast with Sup.retries = 1 }
          dying
      in
      let contains_quarantine =
        String.split_on_char '\n' first
        |> List.exists (fun l ->
               String.length l >= 11 && String.sub l 0 11 = "QUARANTINED")
      in
      check_bool "sweep printed the quarantine" true contains_quarantine;
      let healed =
        [
          { Sweep.key = "doomed"; run = (fun () -> "healed") };
          { Sweep.key = "fine"; run = (fun () -> "ok") };
        ]
      in
      check_string "resume replays the quarantine verbatim" first
        (render ~resume:true ~checkpoint:ckpt ~isolation:`Process
           ~supervisor:fast healed))

let test_watchdog_unresponsive () =
  (* A blocking, non-ticking task — the guard's documented blind spot.
     With SIGTERM at its default disposition the first kill suffices
     (forced = false); a task that ignores SIGTERM takes the SIGKILL
     escalation (forced = true). *)
  let hang ~ignore_term () =
    if ignore_term then Sys.set_signal Sys.sigterm Sys.Signal_ignore;
    while true do
      ignore (Sys.opaque_identity ())
    done;
    "unreachable"
  in
  let run_hanging ~ignore_term =
    let outcome = ref None in
    Sup.run
      ~config:
        { fast with Sup.retries = 0; timeout = Some 0.2; kill_grace = 0.1 }
      ~jobs:1 ~tasks:1
      ~key:(fun _ -> "hang")
      ~work:(fun _ -> hang ~ignore_term ())
      ~consume:(fun _ o -> outcome := Some o)
      ();
    match !outcome with
    | Some (Sup.Quarantined { failures = [ f ]; _ }) -> f
    | Some _ | None -> Alcotest.fail "expected a single-failure quarantine"
  in
  (match run_hanging ~ignore_term:false with
  | Sup.Unresponsive { limit; forced; elapsed } ->
      check_bool "limit recorded" true (limit = 0.2);
      check_bool "elapsed at least the limit" true (elapsed >= 0.2);
      check_bool "SIGTERM sufficed" false forced
  | other ->
      Alcotest.failf "expected Unresponsive, got %s" (Sup.failure_to_string other));
  (match run_hanging ~ignore_term:true with
  | Sup.Unresponsive { forced; _ } ->
      check_bool "SIGKILL escalation fired" true forced
  | other ->
      Alcotest.failf "expected forced Unresponsive, got %s"
        (Sup.failure_to_string other));
  (* The certificate mapping for the blind spot. *)
  match Sup.to_misbehavior (Sup.Unresponsive { elapsed = 1.; limit = 0.5; forced = true }) with
  | Some (Harness.Misbehavior.Unresponsive { elapsed; limit }) ->
      check_bool "certificate fields" true (elapsed = 1. && limit = 0.5)
  | _ -> Alcotest.fail "Unresponsive must map to a Misbehavior certificate"

let test_deterministic_raise_not_retried () =
  (* A raising thunk is a result, not a crash: exactly one spawn, outcome
     Failed, never quarantined — retrying a deterministic raise would
     desync the two isolation modes. *)
  with_temp_file (fun counter ->
      (try Sys.remove counter with Sys_error _ -> ());
      let outcome = ref None in
      Sup.run ~config:fast ~jobs:1 ~tasks:1
        ~key:(fun _ -> "raiser")
        ~work:(fun _ ->
          let n =
            if Sys.file_exists counter then
              In_channel.with_open_bin counter In_channel.input_all
              |> String.trim |> int_of_string
            else 0
          in
          Out_channel.with_open_bin counter (fun oc ->
              Printf.fprintf oc "%d\n" (n + 1));
          failwith "deterministic")
        ~consume:(fun _ o -> outcome := Some o)
        ();
      (match !outcome with
      | Some (Sup.Failed msg) ->
          check_string "payload is the exception text" "Failure(\"deterministic\")" msg
      | _ -> Alcotest.fail "expected Failed");
      let attempts =
        In_channel.with_open_bin counter In_channel.input_all
        |> String.trim |> int_of_string
      in
      check_int "single attempt" 1 attempts)

let test_inline_short_circuits () =
  (* inline results never fork: deliver them for every task and the
     supervisor must not spawn at all (work would touch the filesystem). *)
  let seen = ref [] in
  Sup.run ~config:fast ~jobs:2 ~tasks:3
    ~key:(string_of_int)
    ~inline:(fun i -> Some (Printf.sprintf "inline-%d" i))
    ~work:(fun _ -> Alcotest.fail "work must not run")
    ~consume:(fun i o ->
      match o with
      | Sup.Done s -> seen := (i, s) :: !seen
      | _ -> Alcotest.fail "expected Done")
    ();
  check_bool "delivered in index order" true
    (List.rev !seen = [ (0, "inline-0"); (1, "inline-1"); (2, "inline-2") ])

(* Memo cells under the process backend.  The Canon.Memo tables live in
   Domain.DLS of whichever process runs the cell, so nothing about them
   crosses the supervisor wire or the checkpoint file — which is what
   makes memo-on output independent of isolation mode, worker count,
   kills, and resume history. *)
let memo_cells ~memo () =
  List.concat_map
    (fun t ->
      List.map
        (fun algo ->
          Jobs_catalog.thm1_cell ~memo ~bulk:false ~validate:false ~t ~k:5
            ~side:60 ~algo ())
        [ "greedy"; "stripes" ])
    [ 1; 2 ]

(* No `In_domain jobs > 1 here: spawning even one domain latches
   Unix.fork off for the rest of the process (see the header comment),
   and the later proc-backend tests fork.  The multi-domain half of the
   memo contract is covered by the canon-relabel fuzz target, which
   renders the same memo cells at jobs 1 and jobs 4. *)
let test_memo_isolation_modes () =
  let baseline = render ~isolation:`In_domain (memo_cells ~memo:false ()) in
  List.iter
    (fun (label, jobs, isolation) ->
      check_string label baseline
        (render ~jobs ~isolation ~supervisor:fast (memo_cells ~memo:true ())))
    [
      ("memo in-domain jobs 1", 1, `In_domain);
      ("memo proc jobs 1", 1, `Process);
      ("memo proc jobs 2", 2, `Process);
    ]

let test_memo_kill_resume () =
  (* A memo-on sweep whose worker gets SIGKILLed mid-cell, retried, then
     cut off and resumed from the checkpoint: the final output must be
     byte-identical to a clean memo-off run (the resumed process starts
     with a cold cache — only wall-clock may differ), and the
     checkpoint bytes themselves must be identical to a memo-off
     checkpoint — the cache is never serialized into it. *)
  let killer marker =
    {
      Sweep.key = "killer";
      run =
        (fun () ->
          if not (Sys.file_exists marker) then begin
            Out_channel.with_open_bin marker (fun _ -> ());
            Unix.kill (Unix.getpid ()) Sys.sigkill
          end;
          "survived")
    }
  in
  let cells ~memo marker = memo_cells ~memo () @ [ killer marker ] in
  (* The marker file gates the kill: it exists during every in-domain
     render (killer returns immediately — killing there would take down
     the test process) and is removed only just before the
     process-isolated render, whose forked worker takes the SIGKILL. *)
  with_temp_file (fun marker ->
      let clean = render ~isolation:`In_domain (cells ~memo:false marker) in
      with_temp_file (fun ckpt_off ->
          with_temp_file (fun ckpt_on ->
              ignore
                (render ~checkpoint:ckpt_off ~isolation:`In_domain
                   (cells ~memo:false marker));
              (try Sys.remove marker with Sys_error _ -> ());
              let killed =
                render ~checkpoint:ckpt_on ~isolation:`Process
                  ~supervisor:fast (cells ~memo:true marker)
              in
              check_string "memo-on survives the kill" clean killed;
              let bytes path =
                In_channel.with_open_bin path In_channel.input_all
              in
              check_string "checkpoint bytes carry no cache" (bytes ckpt_off)
                (bytes ckpt_on);
              (* Truncate the checkpoint to its first records and resume
                 memo-on in the other isolation mode. *)
              let contents = bytes ckpt_on in
              let cut =
                match String.index_from_opt contents
                        (String.length contents / 2) '\n'
                with
                | Some i -> i + 1
                | None -> String.length contents
              in
              Out_channel.with_open_bin ckpt_on (fun oc ->
                  Out_channel.output_string oc (String.sub contents 0 cut));
              check_string "memo-on resume replays byte-identically" clean
                (render ~resume:true ~checkpoint:ckpt_on ~isolation:`In_domain
                   (cells ~memo:true marker)))))

let test_validation () =
  let rejects what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  let run_with ?(jobs = 1) ?(tasks = 0) config =
    Sup.run ~config ~jobs ~tasks
      ~key:(fun _ -> "k")
      ~work:(fun _ -> "r")
      ~consume:(fun _ _ -> ())
      ()
  in
  rejects "retries < 0" (fun () -> run_with { fast with Sup.retries = -1 });
  rejects "timeout <= 0" (fun () -> run_with { fast with Sup.timeout = Some 0. });
  rejects "kill_grace <= 0" (fun () -> run_with { fast with Sup.kill_grace = 0. });
  rejects "heartbeat_interval < 0" (fun () ->
      run_with { fast with Sup.heartbeat_interval = -1 });
  rejects "backoff_base < 0" (fun () ->
      run_with { fast with Sup.backoff_base = -0.1 });
  rejects "backoff_max < backoff_base" (fun () ->
      run_with { fast with Sup.backoff_base = 1.0; backoff_max = 0.5 });
  rejects "jobs < 1" (fun () -> run_with ~jobs:0 fast);
  rejects "tasks < 0" (fun () -> run_with ~tasks:(-1) fast);
  rejects "sweep jobs < 1" (fun () ->
      Sweep.run ~jobs:0 ~ppf:Format.str_formatter []);
  (* and the valid default passes *)
  Sup.validate_config Sup.default_config

let () =
  Alcotest.run "supervisor"
    [
      ( "byte-identity",
        [
          Alcotest.test_case "proc = in-domain, all jobs" `Quick
            test_proc_matches_indomain;
          Alcotest.test_case "cross-mode resume" `Quick test_cross_mode_resume;
          Alcotest.test_case "memo across isolation modes" `Quick
            test_memo_isolation_modes;
          Alcotest.test_case "memo kill + resume, cache not checkpointed"
            `Quick test_memo_kill_resume;
        ] );
      ( "kill-tolerance",
        [
          Alcotest.test_case "self-SIGKILL retried" `Quick test_self_kill_retried;
          Alcotest.test_case "always dying quarantined" `Quick
            test_always_dying_quarantined;
          Alcotest.test_case "quarantine checkpointed" `Quick
            test_quarantine_checkpointed_and_replayed;
          Alcotest.test_case "watchdog unresponsive" `Quick
            test_watchdog_unresponsive;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "raise never retried" `Quick
            test_deterministic_raise_not_retried;
          Alcotest.test_case "inline short-circuits" `Quick
            test_inline_short_circuits;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
