(* End-to-end smoke tests: the experiment drivers (quick mode) run to
   completion and their tables contain the expected verdict markers.
   These are the regression net for EXPERIMENTS.md. *)

let render (f : ?quick:bool -> Format.formatter -> unit) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ~quick:true ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains name needle out =
  Alcotest.(check bool) (name ^ " mentions " ^ needle) true (contains ~needle out)

let test_e1 () =
  let out = render Experiments.e1_grid_lower_bound in
  check_contains "e1" "DEFEATED" out;
  check_contains "e1" "greedy" out;
  check_contains "e1" "fit of T*" out

let test_e2 () =
  let out = render Experiments.e2_torus_lower_bound in
  check_contains "e2" "DEFEATED" out;
  check_contains "e2" "torus" out;
  (* the quick table must not contain survivals with preconditions met *)
  Alcotest.(check bool) "no guaranteed survivals" false
    (contains ~needle:"true       survived" out)

let test_e3 () =
  let out = render Experiments.e3_gadget_lower_bound in
  check_contains "e3" "DEFEATED" out;
  check_contains "e3" "seam" out

let test_e4 () =
  let out = render Experiments.e4_upper_bound_scaling in
  check_contains "e4" "grid" out;
  check_contains "e4" "Ablation" out;
  Alcotest.(check bool) "no failures at prescribed locality" false
    (contains ~needle:"failed even" out)

let test_e5 () =
  let out = render Experiments.e5_reduction in
  check_contains "e5" "true" out;
  Alcotest.(check bool) "no false rows" false (contains ~needle:"false" out)

let test_e6 () =
  let out = render Experiments.e6_lemma_checks in
  check_contains "e6" "Lemma 3.3" out;
  check_contains "e6" "Lemma 3.4" out

let () =
  Alcotest.run "experiments"
    [
      ( "drivers",
        [
          Alcotest.test_case "E1" `Slow test_e1;
          Alcotest.test_case "E2" `Slow test_e2;
          Alcotest.test_case "E3" `Slow test_e3;
          Alcotest.test_case "E4" `Slow test_e4;
          Alcotest.test_case "E5" `Quick test_e5;
          Alcotest.test_case "E6" `Quick test_e6;
        ] );
    ]
