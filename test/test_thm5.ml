open Online_local
module FH = Models.Fixed_host
module RS = Models.Run_stats

let check_bool = Alcotest.(check bool)

let grid rows cols =
  Topology.Grid2d.graph (Topology.Grid2d.create Topology.Grid2d.Simple ~rows ~cols)

let run_reduced ~base ~k ~t ~seed =
  (* A colors G_{k+1} with k+2 colors; A' = reduce A colors G_k with k+1. *)
  let lay = Topology.Layered.create ~base ~k in
  let host = Topology.Layered.graph lay in
  let inner = Kp1_coloring.make ~k:(k + 1) ~locality:(fun ~n:_ -> t) () in
  let algo = Thm5_reduction.reduce ~inner in
  let order = FH.orders ~all:host (`Random seed) in
  let outcome =
    FH.run ~oracle:(Oracles.layered lay) ~host ~palette:(k + 1) ~algorithm:algo
      ~order ()
  in
  RS.succeeded outcome ~colors:(k + 1) ~host

let test_reduction_correct_k3 () =
  for seed = 0 to 4 do
    check_bool
      (Printf.sprintf "G_3 seed %d" seed)
      true
      (run_reduced ~base:(grid 5 5) ~k:3 ~t:8 ~seed)
  done

let test_reduction_correct_k4 () =
  check_bool "G_4" true (run_reduced ~base:(grid 4 4) ~k:4 ~t:10 ~seed:1)

let test_reduction_base_case_grid () =
  (* k = 2: reduce an algorithm for G_3 down to the plain grid. *)
  check_bool "grid via reduction" true (run_reduced ~base:(grid 6 6) ~k:2 ~t:8 ~seed:2)

let test_locality_relation () =
  let inner =
    {
      Models.Algorithm.name = "loc-probe";
      locality = (fun ~n -> n);
      pure = false;
      instantiate = (fun ~n:_ ~palette:_ ~oracle:_ _ -> 0);
    }
  in
  let reduced = Thm5_reduction.reduce ~inner in
  Alcotest.(check int) "locality evaluated at 2n" 14 (reduced.Models.Algorithm.locality ~n:7)

let test_extra_color_path_taken () =
  (* Force A to answer the extra color on mains by wrapping kp1 with a
     spy, and check A' still colors properly whenever A is proper. *)
  let uses = ref 0 in
  let inner_raw = Kp1_coloring.make ~k:4 ~locality:(fun ~n:_ -> 6) () in
  let inner =
    {
      inner_raw with
      Models.Algorithm.instantiate =
        (fun ~n ~palette ~oracle ->
          let f = inner_raw.Models.Algorithm.instantiate ~n ~palette ~oracle in
          fun view ->
            let c = f view in
            if c = palette - 1 then incr uses;
            c);
    }
  in
  let lay = Topology.Layered.create ~base:(grid 5 5) ~k:3 in
  let host = Topology.Layered.graph lay in
  let algo = Thm5_reduction.reduce ~inner in
  let ok = ref true in
  for seed = 0 to 6 do
    let order = FH.orders ~all:host (`Random seed) in
    let outcome =
      FH.run ~oracle:(Oracles.layered lay) ~host ~palette:4 ~algorithm:algo ~order ()
    in
    ok := !ok && RS.succeeded outcome ~colors:4 ~host
  done;
  check_bool "all runs proper" true !ok
  (* NOTE: whether the spare-color path fires depends on merge patterns;
     we record the count but only assert correctness either way. *)

let test_failure_transport () =
  (* If A is hopeless (constant color), A' inherits the failure — the
     contrapositive direction used in the proof of Lemma 5.7. *)
  let constant =
    Models.Algorithm.stateless ~name:"constant" ~locality:(fun ~n:_ -> 1) (fun _ -> 0)
  in
  let algo = Thm5_reduction.reduce ~inner:constant in
  let lay = Topology.Layered.create ~base:(grid 4 4) ~k:3 in
  let host = Topology.Layered.graph lay in
  let outcome =
    FH.run ~oracle:(Oracles.layered lay) ~host ~palette:4 ~algorithm:algo
      ~order:(FH.orders ~all:host `Sequential) ()
  in
  check_bool "reduced constant fails" false (RS.succeeded outcome ~colors:4 ~host)

let test_composed_reductions () =
  (* Climb two levels: reduce (reduce (kp1 for G_5)) colors G_3. *)
  let inner = Kp1_coloring.make ~k:5 ~locality:(fun ~n:_ -> 8) () in
  let once = Thm5_reduction.reduce ~inner in
  let twice = Thm5_reduction.reduce ~inner:once in
  let lay = Topology.Layered.create ~base:(grid 4 4) ~k:3 in
  let host = Topology.Layered.graph lay in
  let outcome =
    FH.run ~oracle:(Oracles.layered lay) ~host ~palette:4 ~algorithm:twice
      ~order:(FH.orders ~all:host (`Random 5)) ()
  in
  check_bool "double reduction proper" true (RS.succeeded outcome ~colors:4 ~host)

let () =
  Alcotest.run "thm5-reduction"
    [
      ( "correctness",
        [
          Alcotest.test_case "G_3" `Quick test_reduction_correct_k3;
          Alcotest.test_case "G_4" `Slow test_reduction_correct_k4;
          Alcotest.test_case "grid base case" `Quick test_reduction_base_case_grid;
          Alcotest.test_case "extra color path" `Slow test_extra_color_path_taken;
        ] );
      ( "structure",
        [
          Alcotest.test_case "locality at 2n" `Quick test_locality_relation;
          Alcotest.test_case "failure transport" `Quick test_failure_transport;
          Alcotest.test_case "composed reductions" `Slow test_composed_reductions;
        ] );
    ]
