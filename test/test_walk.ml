open Grid_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let g = Graph.cycle_graph 6

let test_is_walk () =
  check_bool "walk" true (Walk.is_walk g [ 0; 1; 2; 1; 0 ]);
  check_bool "not walk" false (Walk.is_walk g [ 0; 2 ]);
  check_bool "empty" true (Walk.is_walk g []);
  check_bool "singleton" true (Walk.is_walk g [ 3 ])

let test_is_path () =
  check_bool "path" true (Walk.is_path g [ 0; 1; 2; 3 ]);
  check_bool "repeat" false (Walk.is_path g [ 0; 1; 0 ]);
  check_bool "non-adjacent" false (Walk.is_path g [ 0; 3 ])

let test_is_cycle () =
  check_bool "full cycle" true (Walk.is_cycle g [ 0; 1; 2; 3; 4; 5 ]);
  check_bool "not closed" false (Walk.is_cycle g [ 0; 1; 2; 3 ]);
  check_bool "too short" false (Walk.is_cycle g [ 0; 1 ]);
  let square = Graph.create ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  check_bool "square" true (Walk.is_cycle square [ 0; 1; 2; 3 ])

let test_lengths () =
  check_int "path length" 3 (Walk.length [ 0; 1; 2; 3 ]);
  check_int "empty length" 0 (Walk.length []);
  check_int "singleton length" 0 (Walk.length [ 2 ]);
  check_int "cycle length" 6 (Walk.cycle_length [ 0; 1; 2; 3; 4; 5 ])

let test_arcs () =
  Alcotest.(check (list (pair int int)))
    "arcs" [ (0, 1); (1, 2) ] (Walk.arcs [ 0; 1; 2 ]);
  Alcotest.(check (list (pair int int)))
    "cycle arcs includes closing"
    [ (0, 1); (1, 2); (2, 0) ]
    (Walk.cycle_arcs [ 0; 1; 2 ]);
  Alcotest.(check (list (pair int int))) "empty" [] (Walk.arcs [ 5 ])

let test_reverse () =
  Alcotest.(check (list int)) "reverse" [ 3; 2; 1 ] (Walk.reverse [ 1; 2; 3 ])

let test_concat () =
  Alcotest.(check (list int)) "concat" [ 0; 1; 2; 3 ] (Walk.concat [ 0; 1; 2 ] [ 2; 3 ]);
  Alcotest.(check (list int)) "left empty" [ 2; 3 ] (Walk.concat [] [ 2; 3 ]);
  Alcotest.(check (list int)) "right empty" [ 0; 1 ] (Walk.concat [ 0; 1 ] []);
  Alcotest.check_raises "mismatch" (Invalid_argument "Walk.concat: endpoints differ")
    (fun () -> ignore (Walk.concat [ 0; 1 ] [ 2; 3 ]))

let walk_gen : Walk.t Proptest.Gen.t =
  (* Random walks on the 6-cycle; shrinking a step list yields a
     shorter walk from the same start. *)
  let open Proptest.Gen in
  bind (int_range 0 5) (fun start ->
      bind (int_range 0 12) (fun len ->
          map
            (fun steps ->
              let rec go cur acc = function
                | [] -> List.rev acc
                | s :: rest ->
                    let next = (cur + if s then 1 else 5) mod 6 in
                    go next (next :: acc) rest
              in
              go start [ start ] steps)
            (list_size len bool)))

let print_walk w = "[" ^ String.concat ";" (List.map string_of_int w) ^ "]"
let config = { Proptest.Runner.default_config with seed = 0xA1C; cases = 200 }

let prop name p =
  Alcotest.test_case name `Quick (fun () ->
      Proptest.Runner.check_exn ~config ~name ~print:print_walk walk_gen p)

let prop_arcs_count =
  prop "|arcs| = length" (fun w -> List.length (Walk.arcs w) = Walk.length w)

let prop_reverse_involutive =
  prop "reverse involutive" (fun w -> Walk.reverse (Walk.reverse w) = w)

let prop_walks_valid = prop "generator yields walks" (fun w -> Walk.is_walk g w)

let () =
  Alcotest.run "walk"
    [
      ( "walk",
        [
          Alcotest.test_case "is_walk" `Quick test_is_walk;
          Alcotest.test_case "is_path" `Quick test_is_path;
          Alcotest.test_case "is_cycle" `Quick test_is_cycle;
          Alcotest.test_case "lengths" `Quick test_lengths;
          Alcotest.test_case "arcs" `Quick test_arcs;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "concat" `Quick test_concat;
        ] );
      ("walk-properties", [ prop_arcs_count; prop_reverse_involutive; prop_walks_valid ]);
    ]
