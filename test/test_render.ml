(* Golden-output tests for Topology.Render on tiny grids. *)

module Grid2d = Topology.Grid2d
module Render = Topology.Render

let check_string = Alcotest.(check string)

let grid = Grid2d.create Grid2d.Simple ~rows:3 ~cols:4

let test_grid_coloring_total () =
  (* (row + col) mod 3 stripes. *)
  let color_of v =
    let r, c = Grid2d.coords grid v in
    Some ((r + c) mod 3)
  in
  check_string "stripes"
    "0120\n1201\n2012"
    (Render.grid_coloring grid color_of)

let test_grid_coloring_partial () =
  (* Only the middle row colored; everything else renders '.'. *)
  let color_of v =
    let r, c = Grid2d.coords grid v in
    if r = 1 then Some c else None
  in
  check_string "partial"
    "....\n0123\n...."
    (Render.grid_coloring grid color_of)

let test_grid_coloring_glyphs_and_overflow () =
  (* Custom glyphs; a color past the glyph table renders '?'. *)
  let color_of v =
    let r, c = Grid2d.coords grid v in
    if r = 0 then Some c else None
  in
  check_string "glyphs"
    "ab??\n....\n...."
    (Render.grid_coloring ~glyphs:"ab" grid color_of)

let test_grid_coloring_canonical () =
  (* The canonical 3-coloring of a simple grid renders properly: no two
     horizontally or vertically adjacent glyphs equal. *)
  let coloring = Grid2d.canonical_3_coloring grid in
  let s = Render.grid_coloring grid (fun v -> Some coloring.(v)) in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "3 lines" 3 (List.length lines);
  List.iter
    (fun line ->
      String.iteri
        (fun i ch -> if i > 0 then Alcotest.(check bool) "row-adjacent differ" true (ch <> line.[i - 1]))
        line)
    lines;
  List.iteri
    (fun r line ->
      if r > 0 then
        let prev = List.nth lines (r - 1) in
        String.iteri
          (fun c ch -> Alcotest.(check bool) "col-adjacent differ" true (ch <> prev.[c]))
          line)
    lines

let test_region () =
  (* A window over negative coordinates mixing all three cell states. *)
  let probe r c =
    if r = 0 && c = 0 then `Colored 7
    else if r = c then `Seen
    else if r < c then `Colored ((r + c) mod 3 |> abs)
    else `Unseen
  in
  check_string "window"
    "o10\n 71\n  o"
    (Render.region ~rows:(-1, 1) ~cols:(-1, 1) probe)

let test_region_overflow_glyph () =
  check_string "two-digit color" "?" (Render.region ~rows:(0, 0) ~cols:(0, 0) (fun _ _ -> `Colored 12))

let () =
  Alcotest.run "render"
    [
      ( "grid_coloring",
        [
          Alcotest.test_case "total stripes" `Quick test_grid_coloring_total;
          Alcotest.test_case "partial" `Quick test_grid_coloring_partial;
          Alcotest.test_case "glyphs and overflow" `Quick
            test_grid_coloring_glyphs_and_overflow;
          Alcotest.test_case "canonical 3-coloring proper" `Quick
            test_grid_coloring_canonical;
        ] );
      ( "region",
        [
          Alcotest.test_case "window" `Quick test_region;
          Alcotest.test_case "overflow glyph" `Quick test_region_overflow_glyph;
        ] );
    ]
