(* Coverage for Online_local.Portfolio (the baseline algorithm registry
   and run_games) and Online_local.Measure (empirical locality and
   defeat-threshold search). *)

open Grid_graph
module Game = Online_local.Game
module Portfolio = Online_local.Portfolio
module Measure = Online_local.Measure

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let limits =
  {
    Harness.Guard.max_color_calls = Some 200_000;
    max_work = Some 2_000_000;
    deadline = Some 10.0;
  }

let test_baselines_named () =
  let b1 = Portfolio.grid_baselines () and b2 = Portfolio.grid_baselines () in
  check_int "same portfolio size" (List.length b1) (List.length b2);
  check_bool "has greedy" true (List.mem_assoc "greedy" b1);
  check_bool "has an ael entry" true (List.mem_assoc "ael-T1" b1);
  List.iter2
    (fun (l1, _) (l2, _) -> check_bool "same labels" true (String.equal l1 l2))
    b1 b2;
  (* Labels are unique — run_games output would be ambiguous otherwise. *)
  let labels = List.map fst b1 in
  check_int "unique labels" (List.length labels)
    (List.length (List.sort_uniq compare labels))

let test_stripes3_survives_upper_grid () =
  (* stripes3 colors (row + col) mod 3 from hints: proper on the fixed
     simple grid of the upper-bound game. *)
  let v = Game.upper_grid.Game.play ~limits ~n:6 (Portfolio.stripes3 ()) in
  check_bool "survived" true (v.Game.outcome = Game.Survived)

let test_thm1_defeats_ael_t1 () =
  (* The E7 pinned baseline: Theorem 1 at side 30 defeats AEL at
     locality 1.  Side 30 only fits k = 2 < 4T + 5, so the theory
     guarantee flag stays off even though the attack lands. *)
  let v = Game.thm1.Game.play ~limits ~n:30 (Portfolio.ael ~t:1 ()) in
  check_bool "defeated" true v.Game.defeated;
  check_bool "not guaranteed at side 30" false v.Game.guaranteed;
  (* The guarantee threshold itself: at T = 1 the attack is certified
     once the side fits k = 9 nested calls. *)
  let k = Online_local.Thm1_adversary.recommended_k ~n_side:4000 ~t:1 in
  check_bool "guaranteed at side 4000" true
    (Online_local.Thm1_adversary.guaranteed ~t:1 ~k)

let test_run_games_total () =
  (* Every (algorithm, game) pairing yields exactly one labeled verdict,
     in portfolio-major order, and honest adversaries never produce
     Adversary_fault. *)
  let algs = [ ("greedy", Portfolio.greedy ()); ("stripes3", Portfolio.stripes3 ()) ] in
  let games = [ Game.thm1; Game.thm3 ] in
  let verdicts = Portfolio.run_games ~limits ~n:8 algs games in
  check_int "pairings" 4 (List.length verdicts);
  List.iter
    (fun (label, v) ->
      check_bool "label from portfolio" true (List.mem_assoc label algs);
      check_bool "honest adversary" true
        (match v.Game.outcome with Game.Adversary_fault _ -> false | _ -> true))
    verdicts

let test_adversarial_orders_are_permutations () =
  let host = Graph.path_graph 16 in
  let orders = Measure.adversarial_orders ~host ~seeds:[ 1; 2 ] in
  check_int "3 structured + 2 seeded" 5 (List.length orders);
  let identity = List.init 16 (fun i -> i) in
  List.iter
    (fun order ->
      check_bool "permutation of the host" true
        (List.sort compare order = identity))
    orders

let test_min_locality_binary_search () =
  (* A synthetic family with a known threshold: proper parity coloring
     iff t >= 3, else constant color 0.  The search must return exactly
     3, and None when even t_max fails. *)
  let host = Graph.path_graph 8 in
  let make ~t =
    Models.Algorithm.stateless ~name:(Printf.sprintf "step-%d" t)
      ~locality:(fun ~n:_ -> t)
      (fun view ->
        if t >= 3 then view.Models.View.id view.Models.View.target mod 2 else 0)
  in
  let orders = Measure.adversarial_orders ~host ~seeds:[ 0 ] in
  check_bool "threshold found" true
    (Measure.min_locality_for_success ~host ~palette:2 ~orders ~make ~t_max:6 ()
    = Some 3);
  check_bool "below threshold" true
    (Measure.min_locality_for_success ~host ~palette:2 ~orders ~make ~t_max:2 ()
    = None)

let test_min_locality_kp1_on_grid () =
  (* The Theorem 4 algorithm with the bipartition oracle finds some
     finite T* on a small grid. *)
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:4 ~cols:4 in
  let host = Topology.Grid2d.graph grid in
  let orders = Measure.adversarial_orders ~host ~seeds:[ 0 ] in
  match
    Measure.min_locality_for_success ~host ~palette:3 ~orders
      ~make:(fun ~t -> Online_local.Portfolio.kp1 ~k:2 ~t ())
      ~oracle:(Online_local.Oracles.grid_bipartition grid)
      ~t_max:16 ()
  with
  | Some t -> check_bool "T* within bound" true (t >= 1 && t <= 16)
  | None -> Alcotest.fail "kp1 should succeed at t_max = 16"

let test_min_defeating_b () =
  (* The Theorem 1 adversary defeats greedy at some b-target within the
     side's fitting range. *)
  match
    Measure.min_defeating_b ~n_side:16 ~t:1
      ~algorithm:(fun () -> Portfolio.greedy ())
      ~k_max:9
  with
  | Some k -> check_bool "within range" true (k >= 1 && k <= 9)
  | None -> Alcotest.fail "greedy should be defeated at some k <= 9"

let () =
  Alcotest.run "portfolio"
    [
      ( "portfolio",
        [
          Alcotest.test_case "baselines named" `Quick test_baselines_named;
          Alcotest.test_case "stripes3 survives upper grid" `Quick
            test_stripes3_survives_upper_grid;
          Alcotest.test_case "thm1 defeats ael T1" `Quick
            test_thm1_defeats_ael_t1;
          Alcotest.test_case "run_games total" `Quick test_run_games_total;
        ] );
      ( "measure",
        [
          Alcotest.test_case "adversarial orders" `Quick
            test_adversarial_orders_are_permutations;
          Alcotest.test_case "min locality binary search" `Quick
            test_min_locality_binary_search;
          Alcotest.test_case "min locality kp1" `Slow test_min_locality_kp1_on_grid;
          Alcotest.test_case "min defeating b" `Quick test_min_defeating_b;
        ] );
    ]
