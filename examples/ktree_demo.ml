(* Locally inferable unique colorings beyond grids: (k+2)-coloring
   k-trees and (k+1)-coloring the layered graphs G_k with the Theorem 4
   algorithm, plus the Theorem 5 reduction at work.

   Run with: dune exec examples/ktree_demo.exe *)

open Online_local
module FH = Models.Fixed_host
module RS = Models.Run_stats

let () =
  Format.printf "=== Theorem 4/5: coloring graphs with locally inferable unique colorings ===@.@.";

  (* k-trees: (k+1)-partite with a radius-1 oracle. *)
  Format.printf "(k+2)-coloring random k-trees at locality 4:@.";
  List.iter
    (fun k ->
      let kt = Topology.Ktree.random ~k ~n:700 ~seed:(k * 31) in
      let host = Topology.Ktree.graph kt in
      let stats = Kp1_coloring.fresh_stats () in
      let algo = Kp1_coloring.make ~stats ~k:(k + 1) ~locality:(fun ~n:_ -> 2) () in
      let order = FH.orders ~all:host (`Random 7) in
      let outcome =
        FH.run ~oracle:(Oracles.ktree kt) ~host ~palette:(k + 2) ~algorithm:algo
          ~order ()
      in
      Format.printf "  k=%d n=%d: proper=%b merges=%d swaps=%d@." k
        (Grid_graph.Graph.n host)
        (RS.succeeded outcome ~colors:(k + 2) ~host)
        stats.Kp1_coloring.merges stats.Kp1_coloring.swaps)
    [ 2; 3; 4 ];

  (* Triangular grid: the Figure 1 example. *)
  Format.printf "@.4-coloring a triangular grid (k = 3, radius-1 triangle oracle):@.";
  let tri = Topology.Tri_grid.create ~side:30 in
  let thost = Topology.Tri_grid.graph tri in
  let algo3 = Kp1_coloring.make ~k:3 ~locality:(fun ~n:_ -> 6) () in
  let outcome3 =
    FH.run ~oracle:(Oracles.tri_grid tri) ~host:thost ~palette:4 ~algorithm:algo3
      ~order:(FH.orders ~all:thost (`Random 3))
      ()
  in
  Format.printf "  side=30 n=%d: proper=%b@."
    (Grid_graph.Graph.n thost)
    (RS.succeeded outcome3 ~colors:4 ~host:thost);

  (* Layered graphs and the Theorem 5 reduction. *)
  Format.printf "@.The Lemma 5.7 reduction: an algorithm A for (k+2)-coloring G_(k+1)@.";
  Format.printf "drives an algorithm A' for (k+1)-coloring G_k (same locality):@.";
  let base =
    Topology.Grid2d.graph (Topology.Grid2d.create Topology.Grid2d.Simple ~rows:6 ~cols:6)
  in
  List.iter
    (fun k ->
      let lay = Topology.Layered.create ~base ~k in
      let host = Topology.Layered.graph lay in
      let inner = Kp1_coloring.make ~k:(k + 1) ~locality:(fun ~n:_ -> 8) () in
      let reduced = Thm5_reduction.reduce ~inner in
      let outcome =
        FH.run ~oracle:(Oracles.layered lay) ~host ~palette:(k + 1) ~algorithm:reduced
          ~order:(FH.orders ~all:host (`Random 1))
          ()
      in
      Format.printf "  G_%d (n=%d): A' proper=%b@." k
        (Grid_graph.Graph.n host)
        (RS.succeeded outcome ~colors:(k + 1) ~host))
    [ 2; 3; 4 ]
