(* The model hierarchy, executable: LOCAL and SLOCAL algorithms run
   natively and then simulated inside Online-LOCAL with identical
   outputs — the "sandwich" that makes Online-LOCAL lower bounds transfer
   to every model in the paper.

   Run with: dune exec examples/model_zoo.exe *)

module FH = Models.Fixed_host
module RS = Models.Run_stats

let () =
  Format.printf "=== LOCAL <= SLOCAL <= Online-LOCAL, executable ===@.@.";
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:8 ~cols:9 in
  let host = Topology.Grid2d.graph grid in

  (* A LOCAL algorithm (global stripes; locality ~ diameter). *)
  let local_algo = Models.Local_model.grid_stripes grid in
  let native = Models.Local_model.run ~host ~palette:3 local_algo in
  Format.printf "LOCAL stripes, native run: proper=%b@."
    (Colorings.Coloring.is_proper_total host native ~colors:3);

  let simulated =
    FH.run ~host ~palette:3
      ~algorithm:(Models.Local_model.to_online local_algo)
      ~order:(FH.orders ~all:host (`Random 5))
      ()
  in
  let agree = ref true in
  Grid_graph.Graph.iter_nodes host (fun v ->
      if
        Colorings.Coloring.get_exn native v
        <> Colorings.Coloring.get_exn simulated.RS.coloring v
      then agree := false);
  Format.printf "LOCAL simulated in Online-LOCAL: proper=%b, outputs identical=%b@.@."
    (RS.succeeded simulated ~colors:3 ~host)
    !agree;

  (* An SLOCAL algorithm (greedy) under an adversarial order. *)
  let order = FH.orders ~all:host (`Random 11) in
  let slocal_native = Models.Slocal.run ~host ~palette:5 ~order Models.Slocal.greedy in
  let slocal_sim =
    FH.run ~host ~palette:5
      ~algorithm:(Models.Slocal.to_online Models.Slocal.greedy)
      ~order ()
  in
  let agree2 = ref true in
  Grid_graph.Graph.iter_nodes host (fun v ->
      if
        Colorings.Coloring.get_exn slocal_native v
        <> Colorings.Coloring.get_exn slocal_sim.RS.coloring v
      then agree2 := false);
  Format.printf "SLOCAL greedy, native: proper=%b; simulated: proper=%b; identical=%b@.@."
    (Colorings.Coloring.is_proper_total host slocal_native ~colors:5)
    (RS.succeeded slocal_sim ~colors:5 ~host)
    !agree2;

  (* Dynamic-LOCAL: maintain a coloring while the adversary builds the
     graph node by node. *)
  let updates =
    Models.Dynamic_local.incremental_grid_updates grid
      ~order:(FH.orders ~all:host (`Random 7))
  in
  let dyn =
    Models.Dynamic_local.run
      ~n_hint:(Grid_graph.Graph.n host)
      ~palette:5 ~algorithm:Models.Dynamic_local.greedy_repair ~updates ()
  in
  Format.printf
    "Dynamic-LOCAL greedy repair under incremental construction: violation=%s, %d relabelings over %d updates@.@."
    (match dyn.Models.Dynamic_local.violation with
    | None -> "none"
    | Some (_, v) -> Format.asprintf "%a" Models.Dynamic_local.pp_violation v)
    dyn.Models.Dynamic_local.relabelings dyn.Models.Dynamic_local.steps;

  (* The other end of the locality spectrum: Cole-Vishkin 5-colors grids
     in Theta(log* n) LOCAL rounds — the contrast that makes the paper's
     3-coloring bounds bite. *)
  let big = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:100 ~cols:100 in
  let trace = Models.Cole_vishkin.five_color big in
  Format.printf
    "Cole-Vishkin on a 100x100 grid: proper 5-coloring in %d rounds (log* n = %d)@.@."
    trace.Models.Cole_vishkin.rounds
    (Models.Cole_vishkin.log_star 10_000);

  Format.printf
    "Because every model simulates into Online-LOCAL, the Omega(log n) and@.";
  Format.printf
    "Omega(sqrt n) adversaries of this library bound all of LOCAL, SLOCAL,@.";
  Format.printf "Dynamic-LOCAL and Online-LOCAL at once (Corollaries 1.1/1.2).@.";
  Format.printf
    "5 colors, by contrast, need only Theta(log* n) rounds even in LOCAL —@.";
  Format.printf "the gap the paper's introduction turns on.@."
