(* The Theorem 3 story: (2k-2)-coloring k-partite graphs has locality
   Omega(n), because the gadget chain G* forces a global row-vs-column
   commitment that the adversary can flip behind the algorithm's horizon.

   Run with: dune exec examples/gadget_demo.exe *)

open Online_local
module Cf = Colorings.Colorful

let () =
  let k = 3 and gadgets = 9 in
  Format.printf "=== Theorem 3: (2k-2)-coloring k-partite graphs needs Omega(n) ===@.@.";
  Format.printf "Host: G* with %d gadgets of side %d (n = %d), palette of %d colors.@.@."
    gadgets k
    (gadgets * k * k)
    ((2 * k) - 2);

  (* First, the structural facts, checked by brute force on one gadget. *)
  let single = Topology.Gadget.create ~k ~gadgets:1 () in
  let g1 = Topology.Gadget.graph single in
  let rows = ref 0 and cols = ref 0 in
  Colorings.Brute.iter_colorings g1 ~colors:((2 * k) - 2) (fun colors ->
      match
        Cf.classify
          (Array.init k (fun i ->
               Array.init k (fun j ->
                   colors.(Topology.Gadget.node single ~gadget:0 ~row:i ~col:j))))
      with
      | Cf.Row_colorful -> incr rows
      | Cf.Column_colorful -> incr cols
      | Cf.Both | Cf.Neither -> assert false);
  Format.printf
    "Claim 4.5 (exhaustive over all proper %d-colorings of one gadget):@." ((2 * k) - 2);
  Format.printf "  %d row-colorful, %d column-colorful, 0 both, 0 neither.@.@." !rows !cols;

  (* Then the attack. *)
  Format.printf "The adversary presents gadget 0, then gadget %d, then the rest;@."
    (gadgets - 1);
  Format.printf "if the two ends classify alike it swaps in the seam host (isomorphic@.";
  Format.printf "to G*, identical on both revealed neighborhoods).@.@.";
  List.iter
    (fun (name, algo) ->
      let r = Thm3_adversary.run ~k ~gadgets ~algorithm:algo () in
      Format.printf "  %-24s %a@." name Thm3_adversary.pp_report r)
    [
      ("greedy first-fit", Portfolio.greedy ());
      ("gadget-row colorer", Portfolio.gadget_rows ());
    ];
  Format.printf "@.(The gadget-row colorer is proper on the plain chain — only the@.";
  Format.printf "seam flip catches it, exactly as in the paper's argument.)@."
