(* Quickstart: 3-color a grid in the Online-LOCAL model with the
   O(log n)-locality algorithm of Theorem 4 / Akbari et al. (ICALP 2023),
   against a random adversarial presentation order.

   Run with: dune exec examples/quickstart.exe *)

open Online_local

let () =
  let side = 80 in
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:side ~cols:side in
  let host = Topology.Grid2d.graph grid in
  let n = Grid_graph.Graph.n host in

  (* The algorithm: (k+1)-coloring for k = 2 (bipartite hosts), at its
     prescribed locality 3 (k-1) ceil(log2 n). *)
  let stats = Kp1_coloring.fresh_stats () in
  let algorithm = Kp1_coloring.ael_bipartite ~stats () in
  Format.printf "host: %dx%d grid (n = %d), palette {0,1,2}@." side side n;
  Format.printf "algorithm: %s, locality T(n) = %d@." algorithm.Models.Algorithm.name
    (algorithm.Models.Algorithm.locality ~n);

  (* The adversary: a seeded random presentation order.  A transcript
     wrapper records what the algorithm saw at every step. *)
  let transcript = Models.Transcript.create () in
  let order = Models.Fixed_host.orders ~all:host (`Random 2024) in
  let outcome =
    Models.Fixed_host.run ~host ~palette:3
      ~algorithm:(Models.Transcript.wrap transcript algorithm)
      ~order ()
  in
  Format.printf "transcript: %s@." (Models.Transcript.summary transcript);

  Format.printf "outcome: %a@." Models.Run_stats.pp_outcome outcome;
  Format.printf "proper 3-coloring: %b@."
    (Models.Run_stats.succeeded outcome ~colors:3 ~host);
  Format.printf "group merges: %d, type changes: %d, barrier nodes: %d@."
    stats.Kp1_coloring.merges stats.Kp1_coloring.type_changes
    stats.Kp1_coloring.wave_commits;

  (* The same algorithm squeezed to locality 6: groups now coexist and
     merge, and the parity-flip barriers (color 2) become visible. *)
  let stats6 = Kp1_coloring.fresh_stats () in
  let squeezed = Kp1_coloring.ael_bipartite ~locality:(fun ~n:_ -> 6) ~stats:stats6 () in
  let outcome6 = Models.Fixed_host.run ~host ~palette:3 ~algorithm:squeezed ~order () in
  Format.printf "@.squeezed to T = 6: proper=%b merges=%d type changes=%d barrier nodes=%d@."
    (Models.Run_stats.succeeded outcome6 ~colors:3 ~host)
    stats6.Kp1_coloring.merges stats6.Kp1_coloring.type_changes
    stats6.Kp1_coloring.wave_commits;

  (* Show a window of the squeezed run's coloring around a parity-flip
     barrier — the third color (drawn as '2') that Algorithm 1 lays down
     when two groups with clashing parities merge. *)
  let coloring6 = outcome6.Models.Run_stats.coloring in
  let barrier =
    let found = ref None in
    for v = side * side - 1 downto 0 do
      if Colorings.Coloring.get coloring6 v = Some 2 then found := Some v
    done;
    !found
  in
  (match barrier with
  | None -> Format.printf "@.(no barriers were needed on this order)@."
  | Some v ->
      let r0 = min (max 0 ((v / side) - 10)) (side - 20) in
      let c0 = min (max 0 ((v mod side) - 10)) (side - 20) in
      Format.printf "@.20x20 window around a flip barrier (color 2), squeezed run:@.";
      Format.printf "%s@."
        (Topology.Render.region ~rows:(r0, r0 + 19) ~cols:(c0, c0 + 19) (fun r c ->
             match
               Colorings.Coloring.get coloring6 (Topology.Grid2d.node grid ~row:r ~col:c)
             with
             | Some col -> `Colored col
             | None -> `Unseen)))
