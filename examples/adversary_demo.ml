(* The Theorem 1 adversary in action: force any low-locality algorithm to
   draw a directed row path with a large b-value, close a cycle with
   nonzero b-value, and exhibit the inevitable monochromatic edge.

   Run with: dune exec examples/adversary_demo.exe *)

open Online_local

let attack name algorithm ~n_side ~k =
  let r = Thm1_adversary.run ~n_side ~k ~algorithm () in
  Format.printf "  %-28s %a@." name Thm1_adversary.pp_report r

let () =
  Format.printf "=== Theorem 1: 3-coloring grids needs Omega(log n) locality ===@.@.";
  Format.printf "Playing the Lemma 3.6 adversary (b-value target k = 9,@.";
  Format.printf "guaranteed to defeat any locality-1 algorithm since 9 > 4*1+4):@.@.";
  List.iter
    (fun (name, algo) -> attack name algo ~n_side:400 ~k:9)
    [
      ("greedy first-fit", Portfolio.greedy ());
      ("hint-parity", Portfolio.hint_parity ());
      ("stripes (r+c) mod 3", Portfolio.stripes3 ());
      ("AEL 3-coloring, T=1", Portfolio.ael ~t:1 ());
    ];
  Format.printf "@.The same adversary at a small b-value target loses to the paper's@.";
  Format.printf "algorithm once its locality is provisioned for the instance:@.@.";
  attack "AEL 3-coloring, T=8 (k=3)" (Portfolio.ael ~t:8 ()) ~n_side:400 ~k:3;
  Format.printf "@.The survivor's closing cycle has b-value exactly 0 — Lemma 3.4@.";
  Format.printf "observed live: a proper coloring cannot close a nonzero-b cycle.@.@.";
  (* A small survivor run, drawn: the closing rectangle between the two
     rows (digits = colors, 'o' = revealed but never asked, ' ' = unseen). *)
  let small =
    Thm1_adversary.run ~snapshot:true ~n_side:300 ~k:2
      ~algorithm:(Portfolio.ael ~t:4 ())
      ()
  in
  (match small.Thm1_adversary.snapshot with
  | Some picture ->
      Format.printf "Endgame window of a small survivor run (k=2 vs AEL T=4):@.%s@.@."
        picture
  | None -> ());
  Format.printf "Defeat frontier: smallest b-value target that defeats AEL at locality T@.";
  Format.printf "(the linear growth in T is the executable face of Theta(log n)):@.@.";
  List.iter
    (fun t ->
      match
        Measure.min_defeating_b ~n_side:4000 ~t
          ~algorithm:(fun () -> Portfolio.ael ~t ())
          ~k_max:12
      with
      | Some k -> Format.printf "  T = %d  defeated at k = %d@." t k
      | None -> Format.printf "  T = %d  survived k <= 12@." t)
    [ 1; 2; 3; 4; 5; 6 ]
