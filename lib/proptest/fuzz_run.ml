module Tr = Obs.Trace
module Mx = Obs.Metrics

type status =
  | Passed of { cases : int }
  | Failed of Runner.counterexample
  | Skipped of string

type report = {
  target : Fuzz_targets.t;
  status : status;
  cases_run : int;
}

type 'a failure = {
  case : int;
  size : int;
  tree : 'a Gen.tree;
  message : string;
}

let counterexample_of ~config ~name ~print prop (f : _ failure) =
  let minimal, steps, message =
    Runner.shrink ~max_shrinks:config.Runner.max_shrinks prop f.tree
      ~message:f.message
  in
  {
    Runner.name;
    seed = config.Runner.seed;
    case = f.case;
    size = f.size;
    shrink_steps = steps;
    printed = print minimal;
    message;
    replay =
      Runner.replay_token ~name ~seed:config.Runner.seed ~case:f.case
        ~size:f.size;
  }

let run_target ?(jobs = 1) ~config (t : Fuzz_targets.t) =
  match t.Fuzz_targets.available () with
  | Error reason -> { target = t; status = Skipped reason; cases_run = 0 }
  | Ok () ->
      let (Fuzz_targets.Packed { gen; print; prop }) = t.Fuzz_targets.packed in
      let cases =
        match t.Fuzz_targets.max_cases with
        | Some m -> min m config.Runner.cases
        | None -> config.Runner.cases
      in
      let config = { config with Runner.cases } in
      let jobs = if t.Fuzz_targets.serial then 1 else jobs in
      if Tr.on () then Tr.emit (Tr.Cell_start { key = "fuzz:" ^ t.name });
      (* All cases run whatever happens (no early stop), and only the
         lowest-index failure is kept: the sequential loop and the pool
         agree on the report AND on the metrics totals. *)
      let work i =
        let size = Runner.size_for config i in
        if Mx.on () then Mx.incr "fuzz.cases";
        match Runner.run_case gen prop ~seed:config.Runner.seed ~case:i ~size with
        | Runner.Case_pass -> None
        | Runner.Case_fail { tree; message } -> Some { case = i; size; tree; message }
      in
      let first_failure = ref None in
      let consume _i r =
        match (!first_failure, r) with
        | None, Some f -> first_failure := Some f
        | _ -> ()
      in
      if jobs <= 1 then
        for i = 0 to cases - 1 do
          consume i (work i)
        done
      else Harness.Pool.run ~jobs ~tasks:cases ~work ~consume;
      let status =
        match !first_failure with
        | None -> Passed { cases }
        | Some f ->
            if Mx.on () then Mx.incr "fuzz.failures";
            Failed (counterexample_of ~config ~name:t.name ~print prop f)
      in
      if Tr.on () then
        Tr.emit
          (Tr.Cell_finish
             {
               key = "fuzz:" ^ t.name;
               status = (match status with Passed _ -> "ok" | _ -> "error");
             });
      { target = t; status; cases_run = cases }

let replay ?(max_shrinks = Runner.default_config.Runner.max_shrinks) token =
  match Runner.parse_replay_token token with
  | None -> Error (Printf.sprintf "malformed replay token %S" token)
  | Some (name, seed, case, size) -> (
      match Fuzz_targets.find name with
      | None -> Error (Printf.sprintf "no fuzz target named %S" name)
      | Some t ->
          let (Fuzz_targets.Packed { gen; print; prop }) = t.Fuzz_targets.packed in
          let config =
            { Runner.default_config with Runner.seed; cases = 1; max_shrinks }
          in
          let status =
            match Runner.run_case gen prop ~seed ~case ~size with
            | Runner.Case_pass -> Passed { cases = 1 }
            | Runner.Case_fail { tree; message } ->
                Failed
                  (counterexample_of ~config ~name ~print prop
                     { case; size; tree; message })
          in
          Ok { target = t; status; cases_run = 1 })
