(** Generators over the repository's own domain: graphs, grids,
    presentation orders, colorings, fragments, portfolio algorithms and
    fault plans.

    These are the inputs the theorems quantify over ("all algorithms,
    all presentation orders") made samplable, with shrinking where the
    structure allows it: a failing graph shrinks by dropping edges and
    nodes, a failing order shrinks back towards the identity
    permutation, a failing parameter vector shrinks towards its
    smallest legal instance. *)

val small_graph : Grid_graph.Graph.t Gen.t
(** A random graph: [1..size/3+2] nodes (capped at 24), up to [2n]
    random edges (self-loops filtered, duplicates deduplicated by
    [Graph.create]).  Shrinks by removing edges, pulling endpoints
    towards node 0, and re-generating at smaller node counts. *)

val print_graph : Grid_graph.Graph.t -> string
(** [graph n=4 edges=[(0,1); (2,3)]] — the counterexample printer the
    graph-valued properties share. *)

val grid : Topology.Grid2d.t Gen.t
(** Any wrap kind, each dimension 3..7 (so wrapped dimensions are
    always legal).  Shrinks towards a [Simple] 3x3 grid. *)

val simple_grid : rows:int * int -> cols:int * int -> Topology.Grid2d.t Gen.t
(** A [Simple] grid with each dimension uniform in its inclusive
    range. *)

val tri_grid : side:int * int -> Topology.Tri_grid.t Gen.t

val order : Grid_graph.Graph.t -> Grid_graph.Graph.node list Gen.t
(** A uniform presentation order (permutation of all nodes); shrinks
    towards the sequential order. *)

val connected_fragment :
  Grid_graph.Graph.t -> size:int -> Grid_graph.Graph.node list Gen.t
(** A connected set of up to [size] nodes grown by seeded frontier
    expansion from a random start (sorted; no shrinking).  The sampler
    behind the Definition 1.4 tests. *)

val proper_coloring : Grid_graph.Graph.t -> colors:int -> int array Gen.t
(** A proper total [colors]-coloring, varied across cases by pinning a
    random node to a random color before handing the instance to
    {!Colorings.Brute.find_coloring} (no shrinking).
    @raise Invalid_argument when the graph admits no such coloring. *)

val rectangle : Topology.Grid2d.t -> (int * int * int * int) Gen.t
(** [(top, bottom, left, right)] with [top < bottom] and
    [left < right], in range for the grid — the input shape of
    {!Colorings.Bvalue.rectangle_cycle}.  Shrinks towards the unit
    square at the origin. *)

val grid_algorithm : (string * Models.Algorithm.t) Gen.t
(** A fresh algorithm from the grid portfolio: greedy, hint-parity,
    stripes3, or AEL at locality 1..3.  Shrinks towards greedy. *)

val fault_plan :
  (string * (Models.Algorithm.t -> Models.Algorithm.t)) option Gen.t
(** [None] (an honest run, ~half the cases) or one labeled
    fault-injection combinator from {!Harness.Faults.algorithm_faults}.
    Shrinks towards honesty. *)
