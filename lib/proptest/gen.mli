(** Generators with integrated shrinking.

    A generator does not produce a bare value: it produces a lazy {e
    shrink tree} — the generated value at the root, with every child a
    smaller variant that itself carries its own shrinks (the
    Hedgehog-style design, rather than QuickCheck's separate
    [shrink] function).  Because shrinking is built into generation,
    every combinator ({!map}, {!bind}, {!list}, ...) shrinks for free
    and shrunk values always satisfy the generator's invariants: a
    [bind]-dependent generator re-generates its inner value from the
    same split stream when the outer value shrinks, so e.g. a graph's
    edge list stays in range while its node count shrinks.

    Trees are lazy ([Seq.t] children): only the candidates the shrink
    search actually visits are ever constructed. *)

type 'a tree = Tree of 'a * 'a tree Seq.t
(** A value and its lazily produced smaller variants. *)

val root : 'a tree -> 'a
val children : 'a tree -> 'a tree Seq.t

type 'a t = size:int -> Rng.t -> 'a tree
(** A generator: from a size hint and a stream, a shrink tree.  [size]
    scales "how big" compound structures get; the runner ramps it up
    over the case budget. *)

val generate : 'a t -> size:int -> Rng.t -> 'a
(** Root of the generated tree — generation without shrinking. *)

(** {2 Primitives} *)

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val map3 : ('a -> 'b -> 'c -> 'd) -> 'a t -> 'b t -> 'c t -> 'd t
val pair : 'a t -> 'b t -> ('a * 'b) t

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Monadic dependency.  Shrinks the outer value first (re-generating
    the inner value deterministically from the recorded stream), then
    the inner one. *)

val int_range : int -> int -> int t
(** Uniform on the inclusive range; shrinks towards the {e origin} —
    0 when the range contains it, else the endpoint closest to 0 —
    by binary halving. *)

val bool : bool t
(** Shrinks [true] to [false]. *)

val oneof : 'a t list -> 'a t
(** Uniform choice among generators; shrinks within the chosen
    generator only.
    @raise Invalid_argument on an empty list. *)

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice.
    @raise Invalid_argument on an empty list or nonpositive total. *)

val oneof_const : 'a list -> 'a t
(** Uniform choice among constants; shrinks towards the head of the
    list. *)

val sized : (int -> 'a t) -> 'a t
(** Read the current size hint. *)

val list : ?min_len:int -> max_len:int -> 'a t -> 'a list t
(** Length uniform in [[min_len, max_len]] (default [min_len = 0]),
    then that many elements.  Shrinks by removing chunks of elements
    (never below [min_len]) and by shrinking individual elements. *)

val list_size : int -> 'a t -> 'a list t
(** Exactly that many elements; shrinks elements only. *)

val permutation : 'a list -> 'a list t
(** A uniform (Fisher-Yates) shuffle.  Shrinks towards the input order
    by undoing one recorded swap at a time, so a minimal counterexample
    is as close to the unshuffled order as the property allows. *)

val such_that : ?max_tries:int -> ('a -> bool) -> 'a t -> 'a t
(** Retry (fresh stream each time, default 100 tries) until the
    predicate holds, and prune shrink candidates that violate it.
    @raise Failure when no try satisfies the predicate. *)

val no_shrink : 'a t -> 'a t
(** Discard the shrink tree (keep only the root). *)

val of_rng_fun : (size:int -> Rng.t -> 'a) -> 'a t
(** Lift a plain seeded sampling function into a (non-shrinking)
    generator — the bridge for domain code that already knows how to
    sample from an {!Rng.t}. *)

(** {2 Tree surgery} (exposed for the runner and for engine tests) *)

val map_tree : ('a -> 'b) -> 'a tree -> 'b tree
val filter_tree : ('a -> bool) -> 'a tree -> 'a tree
(** Prune children whose root fails the predicate (the root of the
    whole tree is kept regardless). *)
