type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The SplitMix64 finalizer: an invertible avalanche over 64 bits. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let popcount x =
  let c = ref 0 in
  for i = 0 to 63 do
    if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr c
  done;
  !c

(* Gammas must be odd, and weak gammas (too few 01/10 bit transitions)
   are perturbed, per the SplitMix64 paper. *)
let mix_gamma z =
  let z = Int64.logor (mix64 z) 1L in
  if popcount (Int64.logxor z (Int64.shift_right_logical z 1)) < 24 then
    Int64.logxor z 0xAAAAAAAAAAAAAAAAL
  else z

let next t =
  t.state <- Int64.add t.state t.gamma;
  mix64 t.state

let of_seed seed = { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let of_seed_case ~seed ~case =
  let s = Int64.of_int seed and c = Int64.of_int case in
  {
    state = mix64 (Int64.add (Int64.mul s golden_gamma) (mix64 c));
    gamma = mix_gamma (mix64 (Int64.logxor s (Int64.mul c golden_gamma)));
  }

let copy t = { state = t.state; gamma = t.gamma }

let split t =
  let s = next t in
  let g = next t in
  { state = mix64 s; gamma = mix_gamma g }

let bits64 = next

(* A nonnegative 62-bit draw: OCaml's int is 63-bit, so shift out two. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits62 t mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let x = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int x /. 9007199254740992.0 (* 2^53 *)

let to_random_state t =
  Random.State.make [| bits62 t; bits62 t; bits62 t; bits62 t |]
