open Grid_graph

let small_graph : Graph.t Gen.t =
  Gen.sized (fun size ->
      let n_max = max 1 (min 24 ((size / 3) + 2)) in
      Gen.bind (Gen.int_range 1 n_max) (fun n ->
          let endpoint = Gen.int_range 0 (n - 1) in
          Gen.map
            (fun pairs ->
              Graph.create ~n ~edges:(List.filter (fun (u, v) -> u <> v) pairs))
            (Gen.list ~max_len:(2 * n) (Gen.pair endpoint endpoint))))

let print_graph g =
  Printf.sprintf "graph n=%d edges=[%s]" (Graph.n g)
    (String.concat "; "
       (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) (Graph.edges g)))

let grid : Topology.Grid2d.t Gen.t =
  Gen.map3
    (fun wrap rows cols -> Topology.Grid2d.create wrap ~rows ~cols)
    (Gen.oneof_const
       [ Topology.Grid2d.Simple; Topology.Grid2d.Cylindrical; Topology.Grid2d.Toroidal ])
    (Gen.int_range 3 7) (Gen.int_range 3 7)

let simple_grid ~rows:(rlo, rhi) ~cols:(clo, chi) =
  Gen.map2
    (fun rows cols -> Topology.Grid2d.create Topology.Grid2d.Simple ~rows ~cols)
    (Gen.int_range rlo rhi) (Gen.int_range clo chi)

let tri_grid ~side:(lo, hi) =
  Gen.map (fun side -> Topology.Tri_grid.create ~side) (Gen.int_range lo hi)

let order g = Gen.permutation (List.init (Graph.n g) (fun v -> v))

(* Frontier expansion, as the hand-rolled sampler in the oracle tests
   did — now drawing from the engine's one seeded source. *)
let connected_fragment g ~size:frag_size =
  Gen.of_rng_fun (fun ~size:_ rng ->
      let start = Rng.int rng (Graph.n g) in
      let visited = Hashtbl.create 16 in
      Hashtbl.replace visited start ();
      let frontier = ref [ start ] in
      for _ = 2 to frag_size do
        let candidates =
          List.concat_map
            (fun v ->
              Array.to_list (Graph.neighbors g v)
              |> List.filter (fun w -> not (Hashtbl.mem visited w)))
            !frontier
        in
        match candidates with
        | [] -> ()
        | cs ->
            let pick = List.nth cs (Rng.int rng (List.length cs)) in
            Hashtbl.replace visited pick ();
            frontier := pick :: !frontier
      done;
      List.sort compare !frontier)

let proper_coloring g ~colors =
  Gen.of_rng_fun (fun ~size:_ rng ->
      let pin_node = Rng.int rng (max 1 (Graph.n g)) in
      let pin_color = Rng.int rng colors in
      let pinned = Colorings.Coloring.create (Graph.n g) in
      if Graph.n g > 0 then Colorings.Coloring.set pinned pin_node pin_color;
      let attempt = Colorings.Brute.find_coloring ~partial:pinned g ~colors in
      match attempt with
      | Some c -> c
      | None -> (
          (* The pin may be what killed it (e.g. a forced partition);
             the unpinned instance is the real existence question. *)
          match Colorings.Brute.find_coloring g ~colors with
          | Some c -> c
          | None ->
              invalid_arg "Domain_gen.proper_coloring: graph admits no such coloring"))

let rectangle grid2d =
  let rows = Topology.Grid2d.rows grid2d and cols = Topology.Grid2d.cols grid2d in
  Gen.bind (Gen.pair (Gen.int_range 0 (rows - 2)) (Gen.int_range 0 (cols - 2)))
    (fun (top, left) ->
      Gen.map2
        (fun bottom right -> (top, bottom, left, right))
        (Gen.int_range (top + 1) (rows - 1))
        (Gen.int_range (left + 1) (cols - 1)))

let grid_algorithm : (string * Models.Algorithm.t) Gen.t =
  Gen.bind (Gen.int_range 0 3) (fun pick ->
      match pick with
      | 0 -> Gen.return ("greedy", Online_local.Portfolio.greedy ())
      | 1 -> Gen.return ("parity", Online_local.Portfolio.hint_parity ())
      | 2 -> Gen.return ("stripes", Online_local.Portfolio.stripes3 ())
      | _ ->
          Gen.map
            (fun t -> (Printf.sprintf "ael-t%d" t, Online_local.Portfolio.ael ~t ()))
            (Gen.int_range 1 3))

let fault_plan =
  Gen.frequency
    [
      (4, Gen.return None);
      (4, Gen.map (fun f -> Some f) (Gen.oneof_const Harness.Faults.algorithm_faults));
    ]
