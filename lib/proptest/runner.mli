(** The property runner: seeded case generation, greedy shrinking to a
    minimal counterexample, and one-line replay.

    Every case [i] of a check runs on the stream
    [Rng.of_seed_case ~seed ~case:i] at a size that ramps linearly over
    the case budget — so cases are independent of each other and of the
    domain that runs them, which is what lets {!Fuzz_run} fan the same
    cases over a {!Harness.Pool} and still report byte-identical
    results at any jobs count.

    On failure the runner descends the generator's shrink tree greedily
    (first failing child, repeat) and reports the minimal
    counterexample together with a {e replay token}
    [name:seed:case:size].  Re-running the test binary with
    [PROPTEST_REPLAY=<token>] in the environment — or
    [bin/fuzz.exe --replay <token>] for fuzz targets — re-executes
    exactly that failing case, nothing else. *)

type config = {
  cases : int;  (** cases to run (default 100) *)
  seed : int;
      (** stream seed; the default honors [PROPTEST_SEED] when set,
          else [0x5EED] *)
  max_shrinks : int;  (** accepted shrink steps before giving up *)
  size_min : int;  (** size hint of case 0 *)
  size_max : int;  (** size hint of the last case *)
}

val default_config : config
(** [{ cases = 100; seed = $PROPTEST_SEED or 0x5EED; max_shrinks = 1000;
      size_min = 5; size_max = 50 }] *)

type counterexample = {
  name : string;
  seed : int;
  case : int;  (** index of the failing case *)
  size : int;  (** size hint the failing case ran at *)
  shrink_steps : int;  (** accepted shrinks from original to minimal *)
  printed : string;  (** minimal counterexample, printed *)
  message : string;  (** why the property failed on it *)
  replay : string;  (** the replay token [name:seed:case:size] *)
}

type result = Passed of { cases : int } | Failed of counterexample

val replay_token : name:string -> seed:int -> case:int -> size:int -> string

val parse_replay_token : string -> (string * int * int * int) option
(** [(name, seed, case, size)] from a token, [None] on malformed
    input. *)

val size_for : config -> int -> int
(** Size hint for case [i]: linear from [size_min] to [size_max]. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
(** The full failure report: counterexample, reason, shrink count,
    and the replay line. *)

(** {2 Single cases} (the building blocks {!Fuzz_run} parallelizes) *)

type 'a case_outcome =
  | Case_pass
  | Case_fail of { tree : 'a Gen.tree; message : string }

val eval : ('a -> bool) -> 'a -> string option
(** [None] when the property holds; [Some reason] when it returns
    [false] or raises a non-fatal exception.  [Stack_overflow],
    [Out_of_memory] and [Sys.Break] re-raise. *)

val run_case :
  'a Gen.t -> ('a -> bool) -> seed:int -> case:int -> size:int -> 'a case_outcome

val shrink :
  max_shrinks:int -> ('a -> bool) -> 'a Gen.tree -> message:string -> 'a * int * string
(** Greedy descent to a minimal failing value:
    [(minimal, accepted_steps, final_message)]. *)

(** {2 Whole checks} *)

val check :
  ?config:config ->
  name:string ->
  print:('a -> string) ->
  'a Gen.t ->
  ('a -> bool) ->
  result
(** Run all cases (or, when [PROPTEST_REPLAY] names this property,
    exactly the token's case) and shrink the first failure. *)

val check_exn :
  ?config:config ->
  name:string ->
  print:('a -> string) ->
  'a Gen.t ->
  ('a -> bool) ->
  unit
(** Like {!check} but raises [Failure] with the formatted
    counterexample report — the alcotest-friendly face: the report
    (replay token included) lands in the test failure output. *)
