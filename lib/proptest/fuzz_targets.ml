module Graph = Grid_graph.Graph
module Grid2d = Topology.Grid2d
module Coloring = Colorings.Coloring
module Brute = Colorings.Brute
module Bvalue = Colorings.Bvalue
module Game = Online_local.Game

type packed =
  | Packed : {
      gen : 'a Gen.t;
      print : 'a -> string;
      prop : 'a -> bool;
    }
      -> packed

type t = {
  name : string;
  doc : string;
  serial : bool;
  max_cases : int option;
  available : unit -> (unit, string) result;
  packed : packed;
}

let always_available () = Ok ()

(* Campaign fast path for the game targets: set once at startup (before
   any worker domains or forked children exist), read per case. *)
let bulk_mode = Atomic.make false
let set_bulk b = Atomic.set bulk_mode b

(* ------------------------------------------------------------------ *)
(* proper-vs-brute                                                    *)
(* ------------------------------------------------------------------ *)

(* Exhaustive enumeration appears on both sides of the differential, so
   instances stay tiny: [count_colorings] at 3 colors on 7 nodes is at
   most 3^7 = 2187 leaves. *)
let tiny_graph : Graph.t Gen.t =
  Gen.bind (Gen.int_range 1 7) (fun n ->
      let endpoint = Gen.int_range 0 (n - 1) in
      Gen.map
        (fun pairs ->
          Graph.create ~n ~edges:(List.filter (fun (u, v) -> u <> v) pairs))
        (Gen.list ~max_len:(2 * n) (Gen.pair endpoint endpoint)))

let proper_vs_brute =
  let gen = Gen.pair tiny_graph (Gen.int_range 2 3) in
  let print (g, colors) =
    Printf.sprintf "%s colors=%d" (Domain_gen.print_graph g) colors
  in
  let prop (g, colors) =
    let count = Brute.count_colorings g ~colors in
    let exists = Brute.exists_coloring g ~colors in
    let chromatic = Brute.chromatic_number g in
    match Brute.find_coloring g ~colors with
    | Some c ->
        Coloring.is_proper_total g (Coloring.of_array c) ~colors
        && exists && count > 0 && chromatic <= colors
    | None -> (not exists) && count = 0 && chromatic > colors
  in
  {
    name = "proper-vs-brute";
    doc =
      "Brute.find_coloring against the independent propriety checker and its \
       own existence/counting/chromatic faces, on all graphs up to 7 nodes";
    serial = false;
    max_cases = None;
    available = always_available;
    packed = Packed { gen; print; prop };
  }

(* ------------------------------------------------------------------ *)
(* bvalue-cancel                                                      *)
(* ------------------------------------------------------------------ *)

let bvalue_cancel =
  let gen =
    Gen.bind (Domain_gen.simple_grid ~rows:(2, 5) ~cols:(2, 5)) (fun grid ->
        Gen.map2
          (fun coloring rect -> (grid, coloring, rect))
          (Domain_gen.proper_coloring (Grid2d.graph grid) ~colors:3)
          (Domain_gen.rectangle grid))
  in
  let print (grid, coloring, (top, bottom, left, right)) =
    Printf.sprintf "grid %dx%d rect=(t%d,b%d,l%d,r%d) coloring=[%s]"
      (Grid2d.rows grid) (Grid2d.cols grid) top bottom left right
      (String.concat ";" (Array.to_list (Array.map string_of_int coloring)))
  in
  let prop (grid, coloring, (top, bottom, left, right)) =
    let g = Grid2d.graph grid in
    let cyc = Bvalue.rectangle_cycle grid ~top ~bottom ~left ~right in
    (* Lemma 3.4: any rectangle cycle of a properly colored grid has
       b = 0; Lemma 3.5 gives its parity and the parity of any row
       segment. *)
    Bvalue.grid_cycle_b_is_zero grid coloring cyc
    && Bvalue.check_parity_cycle coloring cyc
    && Bvalue.check_parity_path coloring
         (Grid2d.row_segment grid ~row:top ~col_lo:left ~col_hi:right)
    (* Lemma 3.3 on every unit cell inside the rectangle. *)
    && (let ok = ref true in
        for r = top to bottom - 1 do
          for c = left to right - 1 do
            let cell =
              Bvalue.rectangle_cycle grid ~top:r ~bottom:(r + 1) ~left:c
                ~right:(c + 1)
            in
            if not (Bvalue.check_cell_cancellation g coloring cell) then
              ok := false
          done
        done;
        !ok)
  in
  {
    name = "bvalue-cancel";
    doc =
      "Lemmas 3.3-3.5 (cell cancellation, rectangle b = 0, parity) on random \
       proper 3-colorings of random simple grids and random rectangles";
    serial = false;
    max_cases = None;
    available = always_available;
    packed = Packed { gen; print; prop };
  }

(* ------------------------------------------------------------------ *)
(* thm{1,2,3}-game                                                    *)
(* ------------------------------------------------------------------ *)

(* Faults.spin burns its whole work budget on every case it fires in,
   so the default 50M-tick budget would make spin cases dominate the
   wall clock.  2M ticks keeps a spin case under a few milliseconds and
   changes no verdict: budget exhaustion is Algorithm_fault however
   small the budget. *)
let fuzz_limits =
  {
    Harness.Guard.max_color_calls = Some 200_000;
    max_work = Some 2_000_000;
    deadline = Some 10.0;
  }

let hard_fault = function
  | "out-of-palette" | "raise" | "spin" -> true
  | _ -> false

type game_case = {
  alg_name : string;
  algorithm : Models.Algorithm.t;
  fault : (string * (Models.Algorithm.t -> Models.Algorithm.t)) option;
  n : int;
}

let game_case_gen ~n_range:(lo, hi) : game_case Gen.t =
  Gen.map3
    (fun (alg_name, algorithm) fault n -> { alg_name; algorithm; fault; n })
    Domain_gen.grid_algorithm Domain_gen.fault_plan (Gen.int_range lo hi)

let print_game_case game c =
  Printf.sprintf "game=%s alg=%s fault=%s n=%d" game.Game.name c.alg_name
    (match c.fault with None -> "none" | Some (f, _) -> f)
    c.n

(* The verdict invariants every adversary must satisfy, fault injection
   or not:
   - the [defeated] flag is exactly [outcome = Defeated];
   - an honest adversary never produces [Adversary_fault];
   - a theory-guaranteed honest game never ends [Survived] (an honest
     algorithm may still fault, e.g. AEL raising on a non-bipartite
     host — that is not a survival);
   - a first-call out-of-palette/raise/spin always lands as
     [Algorithm_fault] (the E7 fault matrix, quantified over random
     victims and sizes). *)
let game_prop game c =
  let algorithm =
    match c.fault with
    | None -> c.algorithm
    | Some (_, inject) -> inject c.algorithm
  in
  let v =
    game.Game.play ~bulk:(Atomic.get bulk_mode) ~limits:fuzz_limits ~n:c.n
      algorithm
  in
  let flag_consistent =
    v.Game.defeated = (match v.Game.outcome with Game.Defeated -> true | _ -> false)
  in
  let honest_adversary =
    match v.Game.outcome with Game.Adversary_fault _ -> false | _ -> true
  in
  let guaranteed_defeat =
    match (c.fault, v.Game.guaranteed, v.Game.outcome) with
    | None, true, Game.Survived -> false
    | _ -> true
  in
  let faults_classified =
    match c.fault with
    | Some (name, _) when hard_fault name -> (
        match v.Game.outcome with Game.Algorithm_fault _ -> true | _ -> false)
    | _ -> true
  in
  flag_consistent && honest_adversary && guaranteed_defeat && faults_classified

let game_target ?(serial = false) ~name ~doc ~n_range pick_game =
  let gen =
    Gen.bind (game_case_gen ~n_range) (fun c ->
        Gen.map (fun game -> (game, c)) pick_game)
  in
  {
    name;
    doc;
    serial;
    max_cases = None;
    available = always_available;
    packed =
      Packed
        {
          gen;
          print = (fun (game, c) -> print_game_case game c);
          prop = (fun (game, c) -> game_prop game c);
        };
  }

let thm1_game =
  game_target ~name:"thm1-game"
    ~doc:
      "Theorem 1 verdict invariants over random portfolio algorithms, fault \
       plans and grid sides"
    ~n_range:(8, 40)
    (Gen.return Game.thm1)

let thm2_game =
  game_target ~name:"thm2-game"
    ~doc:
      "Theorem 2 (torus and cylinder) verdict invariants over random \
       algorithms, fault plans and sides"
    ~n_range:(7, 15)
    (Gen.oneof_const [ Game.thm2_torus; Game.thm2_cylinder ])

let thm3_game =
  game_target ~name:"thm3-game"
    ~doc:
      "Theorem 3 verdict invariants over random algorithms, fault plans and \
       gadget counts"
    ~n_range:(3, 10)
    (Gen.return Game.thm3)

(* ------------------------------------------------------------------ *)
(* sweep-resume                                                       *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "fuzz_sweep" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let render ?resume ?checkpoint ?jobs cells =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Harness.Sweep.run ?resume ?checkpoint ?jobs ~ppf cells;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let sweep_cells specs =
  List.mapi
    (fun i (payload, fail) ->
      {
        Harness.Sweep.key = Printf.sprintf "cell-%d" i;
        run =
          (fun () ->
            if fail then failwith (Printf.sprintf "injected failure %d" payload)
            else Printf.sprintf "payload=%d" payload);
      })
    specs

let sweep_resume =
  let gen =
    Gen.pair
      (Gen.list ~min_len:1 ~max_len:6
         (Gen.pair (Gen.int_range 0 99) Gen.bool))
      (Gen.int_range 0 100)
  in
  let print (specs, cut_pct) =
    Printf.sprintf "cells=[%s] cut=%d%%"
      (String.concat "; "
         (List.map
            (fun (p, f) -> Printf.sprintf "%d%s" p (if f then "!" else ""))
            specs))
      cut_pct
  in
  let prop (specs, cut_pct) =
    let baseline = render (sweep_cells specs) in
    with_temp_file (fun ckpt ->
        let first = render ~checkpoint:ckpt (sweep_cells specs) in
        let contents =
          In_channel.with_open_bin ckpt In_channel.input_all
        in
        (* Cut the checkpoint anywhere after the header — mid-record
           tears included — and resume: the output must still be
           byte-identical (a torn record re-runs its cell). *)
        let header_end =
          match String.index_opt contents '\n' with
          | Some i -> i + 1
          | None -> String.length contents
        in
        let cut =
          header_end
          + (String.length contents - header_end) * cut_pct / 100
        in
        Out_channel.with_open_bin ckpt (fun oc ->
            Out_channel.output_string oc (String.sub contents 0 cut));
        let resumed = render ~resume:true ~checkpoint:ckpt (sweep_cells specs) in
        String.equal baseline first && String.equal baseline resumed)
  in
  {
    name = "sweep-resume";
    doc =
      "Sweep checkpoint/resume byte-identity under random cell sets, injected \
       cell failures and random checkpoint truncation (torn records included)";
    serial = true (* global SIGINT handler + temp checkpoint files *);
    max_cases = Some 60;
    available = always_available;
    packed = Packed { gen; print; prop };
  }

(* ------------------------------------------------------------------ *)
(* metrics-jobs                                                       *)
(* ------------------------------------------------------------------ *)

let metrics_jobs =
  let gen = Gen.list ~min_len:1 ~max_len:8 (Gen.int_range 0 50) in
  let print ws =
    Printf.sprintf "workloads=[%s]"
      (String.concat ";" (List.map string_of_int ws))
  in
  let run_once ~jobs workloads =
    Harness.Metrics.enable ();
    Harness.Metrics.reset ();
    Fun.protect
      ~finally:(fun () ->
        Harness.Metrics.disable ();
        Harness.Metrics.reset ())
      (fun () ->
        let cells =
          List.mapi
            (fun i w ->
              {
                Harness.Sweep.key = Printf.sprintf "w-%d" i;
                run =
                  (fun () ->
                    Harness.Metrics.incr "fuzz.cells";
                    Harness.Metrics.add "fuzz.work" w;
                    Harness.Metrics.observe "fuzz.load" w;
                    Printf.sprintf "w=%d" w);
              })
            workloads
        in
        let out = render ~jobs cells in
        let snap = Harness.Metrics.drain () in
        (out, Format.asprintf "%a" Harness.Metrics.pp snap))
  in
  let prop workloads =
    let out1, snap1 = run_once ~jobs:1 workloads in
    let out2, snap2 = run_once ~jobs:2 workloads in
    String.equal out1 out2 && String.equal snap1 snap2
  in
  {
    name = "metrics-jobs";
    doc =
      "Sweep output and drained metrics registry byte-identical at --jobs 1 \
       vs --jobs 2";
    serial = true (* owns the process-global metrics registry *);
    max_cases = Some 40;
    available =
      (fun () ->
        if Harness.Metrics.on () then
          Error
            "metrics registry already enabled (run without --metrics to fuzz \
             this target)"
        else Ok ());
    packed = Packed { gen; print; prop };
  }

(* ------------------------------------------------------------------ *)
(* stats-merge                                                        *)
(* ------------------------------------------------------------------ *)

(* The determinism contract of Obs.Stats, differentially: the exact
   integer merge must be commutative and associative (so totals cannot
   depend on the work partition), and a drained registry must be
   byte-identical however the sweep distributed the cells. *)
let stats_merge =
  let gen =
    Gen.list ~min_len:1 ~max_len:6
      (Gen.list ~max_len:6 (Gen.int_range (-50) 1_100_000_000))
  in
  let print cells =
    Printf.sprintf "cells=[%s]"
      (String.concat ";"
         (List.map
            (fun vs -> "[" ^ String.concat "," (List.map string_of_int vs) ^ "]")
            cells))
  in
  let with_stats f =
    Harness.Stats.enable ();
    Harness.Stats.reset ();
    Fun.protect
      ~finally:(fun () ->
        Harness.Stats.disable ();
        Harness.Stats.reset ())
      f
  in
  let run_once ~jobs cells_values =
    with_stats @@ fun () ->
    let cells =
      List.mapi
        (fun i vs ->
          {
            Harness.Sweep.key = Printf.sprintf "s-%d" i;
            run =
              (fun () ->
                List.iter (fun v -> Harness.Stats.observe "fuzz.value" v) vs;
                Harness.Stats.observe "fuzz.cell_len" (List.length vs);
                Printf.sprintf "n=%d" (List.length vs));
          })
        cells_values
    in
    let out = render ~jobs cells in
    let snap = Harness.Stats.drain () in
    (out, Harness.Stats.to_string snap, Format.asprintf "%a" Harness.Stats.pp snap)
  in
  let prop cells_values =
    (* Jobs-invariance of the drained registry, down to the bytes of
       both the transport encoding and the rendered table. *)
    let out1, str1, pp1 = run_once ~jobs:1 cells_values in
    let out2, str2, pp2 = run_once ~jobs:2 cells_values in
    let invariant =
      String.equal out1 out2 && String.equal str1 str2 && String.equal pp1 pp2
    in
    (* Merge laws over the per-cell deltas captured by scoped. *)
    let deltas =
      with_stats @@ fun () ->
      List.map
        (fun vs ->
          let (), d =
            Harness.Stats.scoped (fun () ->
                List.iter (fun v -> Harness.Stats.observe "fuzz.value" v) vs)
          in
          if d = "" then []
          else match Harness.Stats.of_string d with Ok s -> s | Error _ -> [])
        cells_values
    in
    let merge = Harness.Stats.merge in
    let commutative =
      match deltas with
      | a :: b :: _ -> merge a b = merge b a
      | _ -> true
    in
    let associative =
      List.fold_left merge [] deltas = List.fold_right merge deltas []
    in
    invariant && commutative && associative
  in
  {
    name = "stats-merge";
    doc =
      "Stats merge commutative/associative over per-cell deltas, and the \
       drained registry byte-identical at --jobs 1 vs --jobs 2";
    serial = true (* owns the process-global stats registry *);
    max_cases = Some 40;
    available =
      (fun () ->
        if Harness.Stats.on () then
          Error
            "stats registry already enabled (run without --stats to fuzz this \
             target)"
        else Ok ());
    packed = Packed { gen; print; prop };
  }

(* ------------------------------------------------------------------ *)
(* sweep-kill                                                         *)
(* ------------------------------------------------------------------ *)

(* A process-isolated sweep must survive a worker child dying mid-cell
   at any point: the victim cell SIGKILLs its own worker process on the
   first attempt (after a randomized amount of work, so the kill lands
   at a random point of the parent's supervision loop), the supervisor
   retries it, and the final output must be byte-identical to a run
   with no kill at all. *)
let sweep_kill =
  let gen =
    Gen.bind
      (Gen.list ~min_len:2 ~max_len:5 (Gen.int_range 0 99))
      (fun payloads ->
        Gen.map3
          (fun victim kill_work jobs -> (payloads, victim, kill_work, jobs))
          (Gen.int_range 0 (List.length payloads - 1))
          (Gen.int_range 0 500)
          (Gen.int_range 1 2))
  in
  let print (payloads, victim, kill_work, jobs) =
    Printf.sprintf "payloads=[%s] victim=%d kill_work=%d jobs=%d"
      (String.concat ";" (List.map string_of_int payloads))
      victim kill_work jobs
  in
  let plain_cells payloads =
    List.mapi
      (fun i payload ->
        {
          Harness.Sweep.key = Printf.sprintf "cell-%d" i;
          run = (fun () -> Printf.sprintf "payload=%d" payload);
        })
      payloads
  in
  (* Retries are instant-ish here: the backoff only has to order events,
     not protect anything, and fuzz throughput matters. *)
  let fast_supervisor =
    {
      Harness.Supervisor.default_config with
      Harness.Supervisor.heartbeat_interval = 0;
      backoff_base = 0.001;
      backoff_max = 0.01;
    }
  in
  let prop (payloads, victim, kill_work, jobs) =
    let baseline = render (plain_cells payloads) in
    with_temp_file (fun marker ->
        (try Sys.remove marker with Sys_error _ -> ());
        let cells =
          List.mapi
            (fun i payload ->
              {
                Harness.Sweep.key = Printf.sprintf "cell-%d" i;
                run =
                  (fun () ->
                    if i = victim && not (Sys.file_exists marker) then begin
                      Out_channel.with_open_bin marker (fun _ -> ());
                      (* burn a randomized amount of work so the SIGKILL
                         lands at a random phase of the parent loop *)
                      for _ = 1 to kill_work * 200 do
                        ignore (Sys.opaque_identity ())
                      done;
                      Unix.kill (Unix.getpid ()) Sys.sigkill
                    end;
                    Printf.sprintf "payload=%d" payload);
              })
            payloads
        in
        let buf = Buffer.create 256 in
        let ppf = Format.formatter_of_buffer buf in
        Harness.Sweep.run ~jobs ~isolation:`Process ~supervisor:fast_supervisor
          ~ppf cells;
        Format.pp_print_flush ppf ();
        String.equal baseline (Buffer.contents buf))
  in
  {
    name = "sweep-kill";
    doc =
      "Process-isolated sweep survives a worker SIGKILLed at random timing \
       mid-cell: one retry later the output is byte-identical to an unkilled \
       run";
    serial = true (* forks (unsafe from pool domains) + SIGINT handler *);
    max_cases = Some 12;
    available = always_available;
    packed = Packed { gen; print; prop };
  }

(* ------------------------------------------------------------------ *)
(* wire-codec                                                         *)
(* ------------------------------------------------------------------ *)

(* The framing codec under hostile bytes: random valid frame streams
   mangled by truncation, bit flips, or a forged length prefix, fed to
   the decoder in adversarially small chunks.  Whatever arrives, the
   decoder must answer with frames or a typed error — never an
   exception, and never an allocation driven by a declared length the
   stream has not earned (the forged-length case asserts the error
   fires while the buffered bytes are still tiny). *)

type wire_mutation =
  | Wm_none
  | Wm_truncate of int  (* keep this many bytes *)
  | Wm_flip of int * int  (* byte index seed, bit 0-7 *)
  | Wm_forge_length of int * bool  (* frame index seed; negative? *)

let wire_codec =
  let cap = 4096 in
  let frame_gen =
    Gen.frequency
      [
        (1, Gen.return ('H', ""));
        ( 4,
          Gen.map2
            (fun tag bytes ->
              ( tag,
                String.init (List.length bytes) (fun i ->
                    Char.chr (List.nth bytes i)) ))
            (Gen.oneof_const [ 'R'; 'E' ])
            (Gen.list ~max_len:40 (Gen.int_range 0 255)) );
      ]
  in
  let mutation_gen =
    Gen.frequency
      [
        (2, Gen.return Wm_none);
        (2, Gen.map (fun n -> Wm_truncate n) (Gen.int_range 0 200));
        ( 3,
          Gen.map2 (fun i bit -> Wm_flip (i, bit)) (Gen.int_range 0 200)
            (Gen.int_range 0 7) );
        ( 2,
          Gen.map2
            (fun i neg -> Wm_forge_length (i, neg))
            (Gen.int_range 0 10) Gen.bool );
      ]
  in
  let gen =
    Gen.map3
      (fun frames mutation chunk -> (frames, mutation, chunk))
      (Gen.list ~max_len:8 frame_gen)
      mutation_gen (Gen.int_range 1 7)
  in
  let print (frames, mutation, chunk) =
    let pf (tag, payload) = Printf.sprintf "%c:%s" tag (String.escaped payload) in
    Printf.sprintf "frames=[%s] mutation=%s chunk=%d"
      (String.concat " " (List.map pf frames))
      (match mutation with
      | Wm_none -> "none"
      | Wm_truncate n -> Printf.sprintf "truncate:%d" n
      | Wm_flip (i, b) -> Printf.sprintf "flip:%d.%d" i b
      | Wm_forge_length (i, neg) ->
          Printf.sprintf "forge:%d%s" i (if neg then ":neg" else ""))
      chunk
  in
  let prop (frames, mutation, chunk) =
    let module Wire = Harness.Wire in
    let stream =
      String.concat ""
        (List.map
           (fun (tag, payload) ->
             if tag = 'H' then Bytes.to_string (Wire.encode_bare tag)
             else Bytes.to_string (Wire.encode ~tag payload))
           frames)
    in
    (* frame-header offsets, for aiming the forged length at one *)
    let header_offsets =
      List.rev
        (snd
           (List.fold_left
              (fun (off, acc) (tag, payload) ->
                if tag = 'H' then (off + 1, acc)
                else (off + 5 + String.length payload, off :: acc))
              (0, []) frames))
    in
    let stream =
      match mutation with
      | Wm_none -> stream
      | Wm_truncate keep ->
          String.sub stream 0 (min keep (String.length stream))
      | Wm_flip (i, bit) ->
          if stream = "" then stream
          else begin
            let b = Bytes.of_string stream in
            let i = i mod Bytes.length b in
            Bytes.set b i
              (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
            Bytes.to_string b
          end
      | Wm_forge_length (i, neg) -> (
          match header_offsets with
          | [] -> stream
          | offs ->
              let off = List.nth offs (i mod List.length offs) in
              let b = Bytes.of_string stream in
              (* tag byte at [off]; 4 length bytes follow.  Declare far
                 past the cap (or negative): the decoder must refuse
                 before buffering anything like that much. *)
              Bytes.set_int32_be b (off + 1)
                (if neg then 0x80000001l else Int32.max_int);
              Bytes.to_string b)
    in
    let dec = Wire.decoder ~max_payload:cap ~tags:"RE" ~bare:"H" () in
    let decoded = ref [] in
    let error = ref None in
    (try
       let pos = ref 0 in
       while !pos < String.length stream && !error = None do
         let len = min chunk (String.length stream - !pos) in
         Wire.feed_string dec (String.sub stream !pos len);
         pos := !pos + len;
         let drain = ref true in
         while !drain do
           match Wire.decode dec with
           | Ok None -> drain := false
           | Ok (Some { Wire.tag; payload }) ->
               decoded := (tag, payload) :: !decoded;
               (* a decoded payload can never exceed the cap *)
               if String.length payload > cap then begin
                 error := Some "over-cap payload";
                 drain := false
               end
           | Error e ->
               error := Some (Wire.error_to_string e);
               drain := false
         done
       done
     with exn ->
       (* the one absolute rule: typed errors, never exceptions *)
       error := Some ("EXCEPTION " ^ Printexc.to_string exn));
    let decoded = List.rev !decoded in
    let no_exception =
      match !error with
      | Some e -> not (String.length e > 9 && String.sub e 0 9 = "EXCEPTION")
      | None -> true
    in
    let is_prefix l1 l2 =
      let rec go a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && go a' b'
        | _ -> false
      in
      go l1 l2
    in
    no_exception
    &&
    match mutation with
    | Wm_none -> !error = None && decoded = frames
    | Wm_truncate _ ->
        (* a truncated stream decodes a prefix and never errors: the
           missing bytes are indistinguishable from not-yet-arrived *)
        !error = None && is_prefix decoded frames
    | Wm_flip _ ->
        (* any outcome is legal except an exception or an over-cap
           payload (both already folded into the checks above) *)
        (match !error with Some "over-cap payload" -> false | _ -> true)
    | Wm_forge_length _ ->
        (* if decoding reached the forged header it must refuse with a
           typed length error while holding only the bytes actually fed *)
        header_offsets = []
        || (match !error with
           | Some e ->
               (String.length e >= 9 && String.sub e 0 9 = "oversized")
               || String.length e >= 8
                  && String.sub e 0 8 = "negative"
           | None -> true (* an earlier frame consumed the stream short *))
           && Wire.buffered dec <= String.length stream
  in
  {
    name = "wire-codec";
    doc =
      "Wire framing under truncation, bit flips, forged length prefixes and \
       1-byte chunking: typed errors only, never an exception, never an \
       allocation driven by a declared length";
    serial = false;
    max_cases = None;
    available = always_available;
    packed = Packed { gen; print; prop };
  }

(* ------------------------------------------------------------------ *)
(* view-incremental                                                   *)
(* ------------------------------------------------------------------ *)

(* Differential for the incremental executor core.  Three executions of
   the same (host, algorithm, order) triple are compared step by step:

   - the real {!Models.Fixed_host} executor (incremental
     {!Grid_graph.Bfs.Frontier} reveals, flat handle map, packed
     presented set), bulk off;
   - the same executor with [~bulk:true];
   - a reference replay of the pre-incremental reveal rule from first
     principles: per presented node, a batch [Bfs.ball] over the whole
     host filtered against the revealed-so-far set.

   Per step the fresh host-node list (order included — handle
   numbering is observable through greedy first-fit) and the answered
   color must agree across all three; the whole-run [run] outcomes
   (counters, violation shape, coloring) must agree bulk-on vs
   bulk-off. *)

let view_incremental =
  let gen =
    Gen.bind (Domain_gen.simple_grid ~rows:(2, 6) ~cols:(2, 6)) (fun grid ->
        Gen.map2
          (fun (alg_name, algorithm) order -> (grid, alg_name, algorithm, order))
          Domain_gen.grid_algorithm
          (Domain_gen.order (Grid2d.graph grid)))
  in
  let print (grid, alg_name, _, order) =
    Printf.sprintf "grid %dx%d alg=%s order=[%s]" (Grid2d.rows grid)
      (Grid2d.cols grid) alg_name
      (String.concat ";" (List.map string_of_int order))
  in
  let prop (grid, _, algorithm, order) =
    let host = Grid2d.graph grid in
    let palette = 3 in
    let radius = algorithm.Models.Algorithm.locality ~n:(Graph.n host) in
    (* Per-step transcript of one real execution: (node, fresh host
       nodes in handle order, answered color).  Stops where [run]
       stops — on the first out-of-palette answer (an algorithm raise
       surfaces as color -1). *)
    let transcript ~bulk =
      let t = Models.Fixed_host.start ~bulk ~host ~palette ~algorithm () in
      let steps = ref [] in
      let stop = ref false in
      List.iter
        (fun v ->
          if not !stop then begin
            let before =
              List.length (Models.Fixed_host.revealed_host_nodes t)
            in
            let color = Models.Fixed_host.present t v in
            let fresh =
              List.filteri
                (fun i _ -> i >= before)
                (Models.Fixed_host.revealed_host_nodes t)
            in
            steps := (v, fresh, color) :: !steps;
            if color < 0 || color >= palette then stop := true
          end)
        order;
      List.rev !steps
    in
    let base = transcript ~bulk:false in
    let bulk = transcript ~bulk:true in
    (* Reference reveal bookkeeping, replayed over the real transcript's
       steps: batch ball minus already-revealed, both in ascending host
       order. *)
    let revealed = Hashtbl.create 64 in
    let reference_agrees =
      List.for_all
        (fun (v, fresh, _) ->
          let expect =
            List.filter
              (fun u -> not (Hashtbl.mem revealed u))
              (Grid_graph.Bfs.ball host [ v ] radius)
          in
          List.iter (fun u -> Hashtbl.replace revealed u ()) expect;
          fresh = expect)
        base
    in
    let outcome bulk =
      Models.Fixed_host.run ~bulk ~host ~palette ~algorithm ~order ()
    in
    let o1 = outcome false and o2 = outcome true in
    let stats (o : Models.Run_stats.outcome) =
      (o.presented, o.revealed, o.max_view_size)
    in
    let violation_shape (o : Models.Run_stats.outcome) =
      match o.violation with
      | None -> "none"
      | Some (Models.Run_stats.Monochromatic_edge (u, v)) ->
          Printf.sprintf "mono:%d-%d" u v
      | Some (Models.Run_stats.Palette_overflow { node; color }) ->
          Printf.sprintf "overflow:%d:%d" node color
      | Some (Models.Run_stats.Repeated_presentation v) ->
          Printf.sprintf "repeat:%d" v
      | Some (Models.Run_stats.Algorithm_failure { node; message; _ }) ->
          Printf.sprintf "fail:%d:%s" node message
    in
    reference_agrees && base = bulk
    && stats o1 = stats o2
    && violation_shape o1 = violation_shape o2
    && Coloring.to_array o1.Models.Run_stats.coloring
       = Coloring.to_array o2.Models.Run_stats.coloring
  in
  {
    name = "view-incremental";
    doc =
      "Fixed_host executor differential: incremental Frontier reveals vs a \
       batch ball-and-filter reference, and bulk vs non-bulk, agree on every \
       per-step fresh-node list, color, counter and violation";
    serial = false;
    max_cases = None;
    available = always_available;
    packed = Packed { gen; print; prop };
  }

(* ------------------------------------------------------------------ *)
(* canon-relabel                                                      *)
(* ------------------------------------------------------------------ *)

(* Canonical labeling under attack from three sides: the key must be
   invariant under random relabelings, [Canon.iso_equal] must agree
   with a brute-force permutation search (both directions — distinct
   keys for non-isomorphic pairs included), and a memo-on game sweep
   must render byte-identically at --jobs 1 and --jobs 4 (hits depend
   on domain packing; output must not). *)
let canon_relabel =
  let colored_graph =
    Gen.bind (Gen.int_range 1 6) (fun n ->
        let endpoint = Gen.int_range 0 (n - 1) in
        Gen.map2
          (fun pairs colors ->
            ( n,
              List.filter (fun (u, v) -> u <> v) pairs,
              Array.of_list colors ))
          (Gen.list ~max_len:(2 * n) (Gen.pair endpoint endpoint))
          (Gen.list_size n (Gen.int_range 0 2)))
  in
  let gen =
    Gen.bind colored_graph (fun ((n, _, _) as a) ->
        Gen.map2
          (fun b perm -> (a, b, Array.of_list perm))
          colored_graph
          (Gen.permutation (List.init n (fun i -> i))))
  in
  let print ((n, edges, colors), (n2, edges2, _), perm) =
    Printf.sprintf "n=%d edges=[%s] colors=[%s] vs n=%d edges=[%s] perm=[%s]" n
      (String.concat ";"
         (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges))
      (String.concat ";"
         (Array.to_list (Array.map string_of_int colors)))
      n2
      (String.concat ";"
         (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges2))
      (String.concat ";" (Array.to_list (Array.map string_of_int perm)))
  in
  let mk (n, edges, colors) = Canon.make ~n ~edges ~colors in
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
          l
  in
  let brute_iso a b =
    a.Canon.n = b.Canon.n
    && List.exists
         (fun p ->
           let t = Canon.transport (Array.of_list p) a in
           t.Canon.colors = b.Canon.colors && t.Canon.adj = b.Canon.adj)
         (perms (List.init a.Canon.n (fun i -> i)))
  in
  let memo_game_cells () =
    List.map
      (fun (key, algorithm) ->
        {
          Harness.Sweep.key;
          run =
            (fun () ->
              Format.asprintf "%a" Game.pp_verdict
                (Game.thm1.Game.play ~bulk:(Atomic.get bulk_mode) ~memo:true
                   ~n:12 algorithm));
        })
      [
        ("greedy", Online_local.Portfolio.greedy ());
        ("stripes", Online_local.Portfolio.stripes3 ());
        ("greedy-again", Online_local.Portfolio.greedy ());
      ]
  in
  let prop ((a_raw, b_raw, perm) : (int * (int * int) list * int array)
                                   * (int * (int * int) list * int array)
                                   * int array) =
    let a = mk a_raw in
    let b = mk b_raw in
    (* 1. relabeling (a fresh reveal order) never moves the key *)
    let relabeled = Canon.transport perm a in
    String.equal (Canon.key a) (Canon.key relabeled)
    && Canon.transport (Canon.certificate a) a = Canon.canon a
    (* 2. iso_equal = brute-force permutation search, both verdicts *)
    && Canon.iso_equal a b = brute_iso a b
    && String.equal (Canon.key a) (Canon.key b) = brute_iso a b
    (* 3. memo-on sweeps render byte-identically at jobs 1 and 4 *)
    && String.equal
         (render ~jobs:1 (memo_game_cells ()))
         (render ~jobs:4 (memo_game_cells ()))
  in
  {
    name = "canon-relabel";
    doc =
      "Canonical labeling: key invariance under random relabelings, \
       iso_equal vs brute-force isomorphism (distinct keys for \
       non-isomorphic views), and memo-on sweep byte-identity at --jobs 1 \
       vs 4";
    serial = true (* spawns worker domains for the jobs comparison *);
    max_cases = Some 60;
    available = always_available;
    packed = Packed { gen; print; prop };
  }

(* ------------------------------------------------------------------ *)
(* demo-bug                                                           *)
(* ------------------------------------------------------------------ *)

let demo_bug =
  let gen = Gen.list ~max_len:20 (Gen.int_range 0 1000) in
  let print xs =
    Printf.sprintf "[%s]" (String.concat ";" (List.map string_of_int xs))
  in
  let prop xs = List.fold_left ( + ) 0 xs < 100 in
  {
    name = "demo-bug";
    doc =
      "Deliberately broken property (list sums stay below 100); shrinks to \
       [100].  Armed only when FUZZ_DEMO_BUG=1 — the CI probe that shrinking \
       and replay work end-to-end";
    serial = false;
    max_cases = None;
    available =
      (fun () ->
        match Sys.getenv_opt "FUZZ_DEMO_BUG" with
        | Some "1" -> Ok ()
        | _ -> Error "set FUZZ_DEMO_BUG=1 to arm this deliberately broken target");
    packed = Packed { gen; print; prop };
  }

let all =
  [
    proper_vs_brute;
    bvalue_cancel;
    thm1_game;
    thm2_game;
    thm3_game;
    sweep_resume;
    sweep_kill;
    metrics_jobs;
    stats_merge;
    wire_codec;
    view_incremental;
    canon_relabel;
    demo_bug;
  ]

let default_names =
  List.filter_map
    (fun t -> if String.equal t.name "demo-bug" then None else Some t.name)
    all

let find name = List.find_opt (fun t -> String.equal t.name name) all
