(** The engine behind [bin/fuzz.exe]: run {!Fuzz_targets} under a
    {!Runner.config}, optionally fanned over a {!Harness.Pool}.

    Determinism contract: for a fixed [(seed, cases)] the report of
    every target — counterexample, shrink count, replay token included —
    is byte-identical whatever [jobs] is.  Three ingredients:

    {ul
    {- every case [i] runs on the independent stream
       [Rng.of_seed_case ~seed ~case:i], so no case depends on which
       domain ran it or what ran before;}
    {- all [cases] cases always run (no early stop on failure), and
       only the {e lowest-index} failure is reported and shrunk;}
    {- shrinking happens on the calling domain, from the failing case's
       recorded tree.}}

    Targets marked [serial] (process-global state) always run their
    cases sequentially on the calling domain, whatever [jobs] says. *)

type status =
  | Passed of { cases : int }
  | Failed of Runner.counterexample
  | Skipped of string  (** the target's [available] said no *)

type report = {
  target : Fuzz_targets.t;
  status : status;
  cases_run : int;  (** 0 when skipped *)
}

val run_target : ?jobs:int -> config:Runner.config -> Fuzz_targets.t -> report
(** Run one target's full case budget (capped at the target's
    [max_cases]).  Emits [Cell_start]/[Cell_finish] trace events (key
    [fuzz:<name>]) and [fuzz.cases]/[fuzz.failures] metrics when the
    respective sinks are on. *)

val replay : ?max_shrinks:int -> string -> (report, string) result
(** [replay token] re-runs exactly the case a replay token
    [target:seed:case:size] names — one generation, one property
    evaluation, shrinking on failure.  Bypasses the target's
    [available] gate (the token proves intent).  [Error] on a malformed
    token or an unknown target name. *)
