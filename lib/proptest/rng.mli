(** A splittable pseudo-random generator (SplitMix64).

    The property engine needs two things an ad-hoc [Random.State] does
    not give cleanly:

    {ul
    {- {e splitting} — a generator can fork an independent stream, so a
       compound generator can hand each sub-generator its own stream and
       re-run any of them in isolation (the mechanism behind integrated
       shrinking's deterministic re-generation);}
    {- {e O(1) per-case streams} — {!of_seed_case} derives the stream of
       case [i] directly from [(seed, i)], so a replay token can jump to
       the failing case without replaying the [i-1] cases before it, and
       a parallel fuzzer can run cases on any domain in any order and
       still produce byte-identical results.}}

    The implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014):
    a 64-bit counter advanced by an odd [gamma] and finalized by a
    bit-mixing function.  Streams obtained by {!split} or
    {!of_seed_case} use freshly mixed state {e and} gamma, so sibling
    streams are statistically independent for testing purposes. *)

type t
(** A mutable generator.  Not domain-safe: never share one value across
    domains — derive per-domain streams with {!split} or
    {!of_seed_case} instead. *)

val of_seed : int -> t
(** A deterministic generator from an integer seed. *)

val of_seed_case : seed:int -> case:int -> t
(** The stream of case number [case] under [seed]: deterministic,
    O(1), and independent across distinct [(seed, case)] pairs. *)

val copy : t -> t
(** Snapshot the current state: the copy replays exactly the draws the
    original would have made from this point. *)

val split : t -> t
(** Fork an independent stream.  Advances [t] (by two draws) and returns
    a fresh generator; the two never produce correlated output. *)

val bits64 : t -> int64
(** The next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].  Uses a 62-bit draw
    modulo [bound]; the modulo bias is below [2^-40] for any bound a
    test generator would use.
    @raise Invalid_argument on [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [[lo, hi]] inclusive.
    @raise Invalid_argument when [lo > hi]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [[0, 1)], 53 bits of precision. *)

val to_random_state : t -> Random.State.t
(** A stdlib [Random.State.t] seeded from this stream (consumes four
    draws).  The bridge for existing code that takes a [Random.State]:
    route it through the one seeded source instead of making its own. *)
