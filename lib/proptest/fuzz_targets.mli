(** The differential fuzz targets behind [bin/fuzz.exe].

    Each target packages one generator, one printer and one property
    whose failure is a genuine bug somewhere in the engine:

    {ul
    {- [proper-vs-brute] — the exhaustive coloring solver against an
       independent propriety checker and its own counting/existence
       faces;}
    {- [bvalue-cancel] — Lemmas 3.3-3.5 on random proper colorings of
       random grids and random rectangle cycles;}
    {- [thm1-game], [thm2-game], [thm3-game] — adversary-vs-portfolio
       verdict invariants, with and without injected faults: an honest
       adversary never yields [Adversary_fault], a theory-guaranteed
       honest game never yields [Survived], and a first-call
       out-of-palette/raise/spin fault always yields
       [Algorithm_fault];}
    {- [sweep-resume] — checkpoint/resume byte-identity of
       {!Harness.Sweep} under random cell sets, random failures and
       random checkpoint truncation;}
    {- [sweep-kill] — a process-isolated sweep ([`Process] isolation)
       whose victim cell SIGKILLs its own worker at randomized timing
       must, after the supervisor's retry, print bytes identical to an
       unkilled run;}
    {- [metrics-jobs] — {!Harness.Metrics} totals and sweep output
       byte-identical at [--jobs 1] vs [--jobs 2];}
    {- [wire-codec] — the {!Harness.Wire} framing codec under
       truncation, bit flips, forged length prefixes and byte-at-a-time
       chunking: typed errors only, never an exception, and a forged
       declared length can never drive an allocation;}
    {- [view-incremental] — the {!Models.Fixed_host} executor core:
       incremental {!Grid_graph.Bfs.Frontier} reveals against a batch
       ball-and-filter reference, and bulk against non-bulk, must agree
       on every per-step fresh-node list, answered color, run counter,
       violation and final coloring;}
    {- [demo-bug] — a deliberately broken property (list sums stay
       below 100), armed only when [FUZZ_DEMO_BUG=1]: the CI probe that
       shrinking and replay actually work end-to-end.}} *)

type packed =
  | Packed : {
      gen : 'a Gen.t;
      print : 'a -> string;
      prop : 'a -> bool;
    }
      -> packed

type t = {
  name : string;
  doc : string;
  serial : bool;
      (** must run its cases sequentially on the calling domain
          (touches process-global state: the metrics registry, signal
          handlers, temp files) *)
  max_cases : int option;
      (** cap on the per-target case budget, for targets whose single
          case is itself a whole sweep *)
  available : unit -> (unit, string) result;
      (** [Error reason] skips the target (reported, not failed) *)
  packed : packed;
}

val set_bulk : bool -> unit
(** Play the game targets' cases with [~bulk:true] (the executor fast
    path).  Set once at startup, before any worker domains or supervised
    children exist.  Verdicts are identical either way — this exists so
    long fuzz campaigns can spend their budget on cases instead of
    per-step trace events, and so CI can fuzz both paths. *)

val all : t list
(** Every target, [demo-bug] included. *)

val default_names : string list
(** The names run when no [--targets] is given: everything except
    [demo-bug]. *)

val find : string -> t option
