type 'a tree = Tree of 'a * 'a tree Seq.t

let root (Tree (x, _)) = x
let children (Tree (_, cs)) = cs

type 'a t = size:int -> Rng.t -> 'a tree

let generate g ~size rng = root (g ~size rng)

(* A Seq whose contents are computed only when forced. *)
let seq_delay (f : unit -> 'a Seq.t) : 'a Seq.t = fun () -> f () ()

let rec map_tree f (Tree (x, cs)) =
  Tree (f x, seq_delay (fun () -> Seq.map (map_tree f) cs))

let rec filter_tree pred (Tree (x, cs)) =
  Tree
    ( x,
      seq_delay (fun () ->
          Seq.filter_map
            (fun (Tree (y, _) as t) ->
              if pred y then Some (filter_tree pred t) else None)
            cs) )

let rec tree_map2 f ta tb =
  let (Tree (a, sa)) = ta and (Tree (b, sb)) = tb in
  Tree
    ( f a b,
      seq_delay (fun () ->
          Seq.append
            (Seq.map (fun ta' -> tree_map2 f ta' tb) sa)
            (Seq.map (fun tb' -> tree_map2 f ta tb') sb)) )

let return x : _ t = fun ~size:_ _ -> Tree (x, Seq.empty)
let map f (g : _ t) : _ t = fun ~size rng -> map_tree f (g ~size rng)

let map2 f (ga : _ t) (gb : _ t) : _ t =
 fun ~size rng ->
  let ra = Rng.split rng in
  let rb = Rng.split rng in
  tree_map2 f (ga ~size ra) (gb ~size rb)

let pair ga gb = map2 (fun a b -> (a, b)) ga gb
let map3 f ga gb gc = map2 (fun (a, b) c -> f a b c) (pair ga gb) gc

(* Monadic bind with integrated shrinking: shrink the outer tree first;
   every outer candidate re-runs [f] on a fresh copy of the recorded
   stream, so the inner value is re-generated deterministically and
   stays consistent with the shrunk outer value. *)
let bind (g : _ t) (f : _ -> _ t) : _ t =
 fun ~size rng ->
  let inner_rng = Rng.split rng in
  let rec go (Tree (a, sa)) =
    let (Tree (b, sb)) = f a ~size (Rng.copy inner_rng) in
    Tree (b, seq_delay (fun () -> Seq.append (Seq.map go sa) sb))
  in
  go (g ~size rng)

(* Shrink candidates between [origin] and [x], halving the distance:
   origin first (the biggest jump), then ever-closer values. *)
let towards ~origin x : int Seq.t =
  if x = origin then Seq.empty
  else
    let rec halves d () =
      if d = 0 then Seq.Nil else Seq.Cons (x - d, halves (d / 2))
    in
    halves (x - origin)

let rec int_tree ~origin x =
  Tree (x, seq_delay (fun () -> Seq.map (int_tree ~origin) (towards ~origin x)))

let int_range lo hi : int t =
  if lo > hi then invalid_arg "Gen.int_range: lo > hi";
  let origin = if lo <= 0 && 0 <= hi then 0 else if lo > 0 then lo else hi in
  fun ~size:_ rng -> int_tree ~origin (Rng.int_in rng lo hi)

let bool : bool t =
 fun ~size:_ rng ->
  if Rng.bool rng then Tree (true, Seq.return (Tree (false, Seq.empty)))
  else Tree (false, Seq.empty)

let oneof gens : _ t =
  let n = List.length gens in
  if n = 0 then invalid_arg "Gen.oneof: empty list";
  fun ~size rng -> (List.nth gens (Rng.int rng n)) ~size rng

let frequency weighted : _ t =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if weighted = [] || total <= 0 then
    invalid_arg "Gen.frequency: empty list or nonpositive total";
  fun ~size rng ->
    let pick = Rng.int rng total in
    let rec go acc = function
      | [] -> assert false
      | (w, g) :: rest -> if pick < acc + w then g ~size rng else go (acc + w) rest
    in
    go 0 weighted

let oneof_const xs : _ t =
  let n = List.length xs in
  if n = 0 then invalid_arg "Gen.oneof_const: empty list";
  map (List.nth xs) (int_range 0 (n - 1))

let sized f : _ t = fun ~size rng -> (f size) ~size rng

(* ------------------------- list shrinking ------------------------- *)

(* All ways to remove one consecutive chunk of [k] elements. *)
let removes k xs : 'a list Seq.t =
  let rec split_at k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let hd, tl = split_at (k - 1) rest in
          (x :: hd, tl)
  in
  let rec go xs () =
    let n = List.length xs in
    if k > n then Seq.Nil
    else
      let hd, tl = split_at k xs in
      Seq.Cons (tl, Seq.map (fun rest -> hd @ rest) (go tl))
  in
  go xs

(* Chunk removals at sizes n, n/2, n/4, ..., 1, never dropping the list
   below [min_len] elements. *)
let drops ~min_len trees : 'a tree list Seq.t =
  let n = List.length trees in
  let rec sizes k () = if k <= 0 then Seq.Nil else Seq.Cons (k, sizes (k / 2)) in
  sizes (n - min_len)
  |> Seq.concat_map (fun k ->
         Seq.filter (fun xs -> List.length xs >= min_len) (removes k trees))

(* One element replaced by one of its shrinks, every position. *)
let rec shrink_one trees : 'a tree list Seq.t =
  match trees with
  | [] -> Seq.empty
  | t :: rest ->
      seq_delay (fun () ->
          Seq.append
            (Seq.map (fun c -> c :: rest) (children t))
            (Seq.map (fun rest' -> t :: rest') (shrink_one rest)))

let rec interleave ~min_len trees : 'a list tree =
  Tree
    ( List.map root trees,
      seq_delay (fun () ->
          Seq.map (interleave ~min_len)
            (Seq.append (drops ~min_len trees) (shrink_one trees))) )

let list_trees_of n (elt : 'a t) ~size rng =
  List.init n (fun _ ->
      let r = Rng.split rng in
      elt ~size r)

let list_size n (elt : _ t) : _ t =
  if n < 0 then invalid_arg "Gen.list_size: negative length";
  fun ~size rng -> interleave ~min_len:n (list_trees_of n elt ~size rng)

let list ?(min_len = 0) ~max_len (elt : _ t) : _ t =
  if min_len < 0 || max_len < min_len then
    invalid_arg "Gen.list: need 0 <= min_len <= max_len";
  fun ~size rng ->
    let n = Rng.int_in rng min_len max_len in
    interleave ~min_len (list_trees_of n elt ~size rng)

(* ------------------------- permutations --------------------------- *)

(* Fisher-Yates, recording the swaps; shrinking undoes the latest
   remaining swap, so candidates walk back towards the input order. *)
let permutation (xs : 'a list) : 'a list t =
 fun ~size:_ rng ->
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let swaps = ref [] in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    if i <> j then swaps := (i, j) :: !swaps
  done;
  let apply swaps =
    let a = Array.copy arr in
    (* [swaps] is recorded outermost-last; re-apply in original order. *)
    List.iter
      (fun (i, j) ->
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp)
      (List.rev swaps);
    Array.to_list a
  in
  let rec tree swaps =
    Tree
      ( apply swaps,
        seq_delay (fun () ->
            match swaps with
            | [] -> Seq.empty
            | _ :: rest -> Seq.return (tree rest)) )
  in
  tree !swaps

let such_that ?(max_tries = 100) pred (g : _ t) : _ t =
 fun ~size rng ->
  let rec attempt n =
    if n = 0 then
      failwith
        (Printf.sprintf "Gen.such_that: no candidate in %d tries" max_tries)
    else
      let r = Rng.split rng in
      let t = g ~size r in
      if pred (root t) then filter_tree pred t else attempt (n - 1)
  in
  attempt max_tries

let no_shrink (g : _ t) : _ t = fun ~size rng -> Tree (generate g ~size rng, Seq.empty)
let of_rng_fun f : _ t = fun ~size rng -> Tree (f ~size rng, Seq.empty)
