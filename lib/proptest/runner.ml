type config = {
  cases : int;
  seed : int;
  max_shrinks : int;
  size_min : int;
  size_max : int;
}

let default_seed () =
  match Sys.getenv_opt "PROPTEST_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0x5EED)
  | None -> 0x5EED

let default_config =
  { cases = 100; seed = default_seed (); max_shrinks = 1000; size_min = 5; size_max = 50 }

type counterexample = {
  name : string;
  seed : int;
  case : int;
  size : int;
  shrink_steps : int;
  printed : string;
  message : string;
  replay : string;
}

type result = Passed of { cases : int } | Failed of counterexample

let replay_token ~name ~seed ~case ~size =
  Printf.sprintf "%s:%d:%d:%d" name seed case size

let parse_replay_token token =
  (* name:seed:case:size, splitting from the right so names may contain
     colons. *)
  match String.rindex_opt token ':' with
  | None -> None
  | Some i3 -> (
      let size = String.sub token (i3 + 1) (String.length token - i3 - 1) in
      let rest = String.sub token 0 i3 in
      match String.rindex_opt rest ':' with
      | None -> None
      | Some i2 -> (
          let case = String.sub rest (i2 + 1) (String.length rest - i2 - 1) in
          let rest = String.sub rest 0 i2 in
          match String.rindex_opt rest ':' with
          | None -> None
          | Some i1 -> (
              let seed = String.sub rest (i1 + 1) (String.length rest - i1 - 1) in
              let name = String.sub rest 0 i1 in
              match
                (int_of_string_opt seed, int_of_string_opt case, int_of_string_opt size)
              with
              | Some seed, Some case, Some size when name <> "" ->
                  Some (name, seed, case, size)
              | _ -> None)))

let size_for config i =
  if config.cases <= 1 then config.size_max
  else
    config.size_min
    + (config.size_max - config.size_min) * i / (config.cases - 1)

let pp_counterexample ppf c =
  Format.fprintf ppf
    "@[<v>property %S failed (case %d of seed %d, size %d)@,\
     counterexample (after %d shrink steps): %s@,\
     reason: %s@,\
     replay: PROPTEST_REPLAY='%s' re-runs exactly this case@]"
    c.name c.case c.seed c.size c.shrink_steps c.printed c.message c.replay

type 'a case_outcome =
  | Case_pass
  | Case_fail of { tree : 'a Gen.tree; message : string }

let is_fatal = function
  | Stack_overflow | Out_of_memory | Sys.Break -> true
  | _ -> false

let eval prop x =
  match prop x with
  | true -> None
  | false -> Some "property returned false"
  | exception e when not (is_fatal e) -> Some ("raised " ^ Printexc.to_string e)

let run_case gen prop ~seed ~case ~size =
  let rng = Rng.of_seed_case ~seed ~case in
  let tree = gen ~size rng in
  match eval prop (Gen.root tree) with
  | None -> Case_pass
  | Some message -> Case_fail { tree; message }

let shrink ~max_shrinks prop tree ~message =
  let rec descend tree steps message =
    if steps >= max_shrinks then (Gen.root tree, steps, message)
    else
      let failing =
        Seq.find_map
          (fun c ->
            match eval prop (Gen.root c) with
            | Some m -> Some (c, m)
            | None -> None)
          (Gen.children tree)
      in
      match failing with
      | Some (c, m) -> descend c (steps + 1) m
      | None -> (Gen.root tree, steps, message)
  in
  descend tree 0 message

let counterexample_of ~config ~name ~print ~case ~size prop tree message =
  let minimal, steps, message = shrink ~max_shrinks:config.max_shrinks prop tree ~message in
  {
    name;
    seed = config.seed;
    case;
    size;
    shrink_steps = steps;
    printed = print minimal;
    message;
    replay = replay_token ~name ~seed:config.seed ~case ~size;
  }

let replay_request name =
  match Sys.getenv_opt "PROPTEST_REPLAY" with
  | None -> None
  | Some token -> (
      match parse_replay_token token with
      | Some (n, seed, case, size) when String.equal n name -> Some (seed, case, size)
      | _ -> None)

let check ?(config = default_config) ~name ~print gen prop =
  match replay_request name with
  | Some (seed, case, size) -> (
      let config = { config with seed } in
      match run_case gen prop ~seed ~case ~size with
      | Case_pass -> Passed { cases = 1 }
      | Case_fail { tree; message } ->
          Failed (counterexample_of ~config ~name ~print ~case ~size prop tree message))
  | None ->
      let rec go case =
        if case >= config.cases then Passed { cases = config.cases }
        else
          let size = size_for config case in
          match run_case gen prop ~seed:config.seed ~case ~size with
          | Case_pass -> go (case + 1)
          | Case_fail { tree; message } ->
              Failed (counterexample_of ~config ~name ~print ~case ~size prop tree message)
      in
      go 0

let check_exn ?config ~name ~print gen prop =
  match check ?config ~name ~print gen prop with
  | Passed _ -> ()
  | Failed c -> failwith (Format.asprintf "%a" pp_counterexample c)
