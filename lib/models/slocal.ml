open Grid_graph

type t = {
  name : string;
  locality : n:int -> int;
  output : n:int -> palette:int -> View.t -> int;
}

let run ?ids ~host ~palette ~order t =
  let n = Graph.n host in
  let ids = match ids with Some f -> f | None -> fun v -> v + 1 in
  let radius = t.locality ~n in
  let coloring = Colorings.Coloring.create n in
  List.iter
    (fun v ->
      let view =
        Local_model.ball_view ~ids ~host ~palette ~radius ~center:v
          ~outputs:(fun w -> Colorings.Coloring.get coloring w)
      in
      let c = t.output ~n ~palette view in
      Colorings.Coloring.set coloring v c)
    order;
  coloring

let to_online t =
  let instantiate ~n ~palette ~oracle:_ (view : View.t) =
    let radius = t.locality ~n in
    let nodes = View.ball view view.View.target radius in
    let handle_of = Hashtbl.create (List.length nodes * 2 + 1) in
    List.iteri (fun i h -> Hashtbl.replace handle_of h i) nodes;
    let old_of = Array.of_list nodes in
    let sub =
      {
        view with
        View.node_count = (fun () -> Array.length old_of);
        neighbors =
          (fun h ->
            List.filter_map
              (fun w -> Hashtbl.find_opt handle_of w)
              (view.View.neighbors old_of.(h)));
        mem_edge = (fun a b -> view.View.mem_edge old_of.(a) old_of.(b));
        id = (fun h -> view.View.id old_of.(h));
        output = (fun h -> view.View.output old_of.(h));
        hint = (fun _ -> None);
        target = Hashtbl.find handle_of view.View.target;
        new_nodes = List.init (Array.length old_of) (fun i -> i);
        step = 1;
      }
    in
    t.output ~n ~palette sub
  in
  {
    Algorithm.name = "online<-slocal:" ^ t.name;
    locality = t.locality;
    pure = false;
    instantiate = (fun ~n ~palette ~oracle -> instantiate ~n ~palette ~oracle);
  }

let list_greedy ~lists =
  {
    name = "slocal-list-greedy";
    locality = (fun ~n:_ -> 1);
    output =
      (fun ~n:_ ~palette:_ (view : View.t) ->
        let target = view.View.target in
        let own = lists (view.View.id target - 1) in
        let taken =
          List.filter_map (fun w -> view.View.output w) (view.View.neighbors target)
        in
        match List.find_opt (fun c -> not (List.mem c taken)) own with
        | Some c -> c
        | None -> ( match own with c :: _ -> c | [] -> 0));
  }

let greedy =
  {
    name = "slocal-greedy";
    locality = (fun ~n:_ -> 1);
    output =
      (fun ~n:_ ~palette (view : View.t) ->
        let used =
          List.filter_map
            (fun w -> view.View.output w)
            (view.View.neighbors view.View.target)
        in
        let rec first c = if List.mem c used then first (c + 1) else c in
        let candidate = first 0 in
        if candidate < palette then candidate else 0);
  }
