(** The Online-LOCAL executor over a fixed, fully known host graph.

    This executor covers every experiment in which the adversary's power
    is just the choice of the presentation order (and, optionally, of a
    host from a family of isomorphic variants chosen {e before} the run):
    all upper-bound runs of Theorem 4, the gadget attack of Theorem 3,
    and the two-row attack of Theorem 2.  The deferred-placement
    adversary of Theorem 1 needs the richer executor in the core library.

    Per presented node [v] the executor reveals the host ball
    [B(v, T + oracle_radius)], extends the revealed region, and asks the
    algorithm instance for the color of [v].

    {2 Cost model}

    Revealing is incremental ({!Grid_graph.Bfs.Frontier}): each step
    costs O(frontier) — the fresh nodes plus the already-revealed shell
    the bounded BFS touches before slack pruning stops it — not
    O(revealed region) and not O(host).  Handle lookup is a flat array
    read, presented-twice detection a dense byte set: both O(1) and
    allocation-free.  Per step the executor allocates only the fresh
    handle list, the view closure record, and (unless [~bulk]) the
    trace/metrics events.  See [lib/online_local/README.md]. *)

type t
(** A running execution (host, algorithm instance, revealed region). *)

val start :
  ?bulk:bool ->
  ?memo:Canon.Memo.ctx ->
  ?ids:(Grid_graph.Graph.node -> int) ->
  ?hints:(Grid_graph.Graph.node -> View.hint option) ->
  ?oracle:(to_host:(Grid_graph.Graph.node -> Grid_graph.Graph.node) -> Oracle.t) ->
  host:Grid_graph.Graph.t ->
  palette:int ->
  algorithm:Algorithm.t ->
  unit ->
  t
(** Create an execution.  [bulk] (default [false]) skips per-step trace
    and metrics event construction on the hot path — it never changes
    colors, violations, or the audited outcome, only observability.
    [memo] enables the {!Canon.Memo} step cache: the host adjacency,
    ids, hints and every answer are folded into the context's chain
    digest, and calls of [pure] algorithms whose chain key was answered
    in an earlier run replay the cached color (charging the guard via
    the context), leaving output byte-identical to memo-off
    output.  [ids] assigns the unique identifier of each
    host node (default: host node + 1); [hints] attaches per-host-node
    hints ({e fixed-frame} — this executor commits the embedding up
    front, so all hints share frame 0 and honestly reveal host
    coordinates; adversaries that must hide coordinates use the deferred
    executor instead).  [oracle] builds the partition oracle from the
    executor's view-to-host mapping; its radius is added to the revealed
    ball radius. *)

val present : t -> Grid_graph.Graph.node -> int
(** Present one host node; returns the color the algorithm answered.
    @raise Run_stats.Dishonest_transcript if the node was already
    presented (an adversary rule violation, typed so the guarded engine
    certifies it as such). *)

val coloring : t -> Colorings.Coloring.t
(** Colors output so far, indexed by host node (shared, do not mutate). *)

val revealed_host_nodes : t -> Grid_graph.Graph.node list
(** Host nodes currently revealed, in handle order. *)

val to_host : t -> Grid_graph.Graph.node -> Grid_graph.Graph.node
(** Map a view handle to its host node. *)

val run :
  ?bulk:bool ->
  ?memo:Canon.Memo.ctx ->
  ?ids:(Grid_graph.Graph.node -> int) ->
  ?hints:(Grid_graph.Graph.node -> View.hint option) ->
  ?oracle:(to_host:(Grid_graph.Graph.node -> Grid_graph.Graph.node) -> Oracle.t) ->
  host:Grid_graph.Graph.t ->
  palette:int ->
  algorithm:Algorithm.t ->
  order:Grid_graph.Graph.node list ->
  unit ->
  Run_stats.outcome
(** Whole-run convenience: present every node of [order] (stopping early
    on a violation), then audit the result.  When [order] covers all host
    nodes and no violation occurred, [Run_stats.succeeded] on the outcome
    decides whether the algorithm won. *)

val orders : all:Grid_graph.Graph.t -> [ `Sequential | `Random of int ] -> Grid_graph.Graph.node list
(** Common presentation orders: [`Sequential] is [0, 1, ..., n-1];
    [`Random seed] is a seeded uniform shuffle. *)
