type step = {
  index : int;
  target_id : int;
  new_nodes : int;
  region_size : int;
  color : int;
}

type t = { mutable entries : step list }

let create () = { entries = [] }
let steps t = List.rev t.entries

let wrap t (algo : Algorithm.t) =
  {
    algo with
    Algorithm.name = algo.Algorithm.name ^ "+transcript";
    (* recording is a side effect per call: a skipped call would lose
       its transcript entry *)
    pure = false;
    instantiate =
      (fun ~n ~palette ~oracle ->
        let inner = algo.Algorithm.instantiate ~n ~palette ~oracle in
        fun view ->
          let color = inner view in
          t.entries <-
            {
              index = view.View.step;
              target_id = view.View.id view.View.target;
              new_nodes = List.length view.View.new_nodes;
              region_size = view.View.node_count ();
              color;
            }
            :: t.entries;
          color);
  }

let pp ppf t =
  List.iter
    (fun s ->
      Format.fprintf ppf "#%d id=%d +%d nodes (region %d) -> color %d@." s.index
        s.target_id s.new_nodes s.region_size s.color)
    (steps t)

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "step,target_id,new_nodes,region_size,color\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d\n" s.index s.target_id s.new_nodes
           s.region_size s.color))
    (steps t);
  Buffer.contents buf

let summary t =
  let ss = steps t in
  let total = List.length ss in
  let reveals = List.fold_left (fun acc s -> acc + s.new_nodes) 0 ss in
  let palette =
    List.sort_uniq compare (List.map (fun s -> s.color) ss) |> List.length
  in
  let final_region = match List.rev ss with last :: _ -> last.region_size | [] -> 0 in
  Printf.sprintf "%d steps, %d reveals, final region %d, %d distinct colors" total
    reveals final_region palette
