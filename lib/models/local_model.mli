(** The classical LOCAL model (Section 2.2).

    A LOCAL algorithm with locality [T] maps, for every node
    independently, the node's T-radius ball view (graph structure plus
    unique identifiers) to an output.  The paper's model hierarchy places
    LOCAL at the bottom: {!to_online} is the executable form of "any
    LOCAL algorithm can be simulated in Online-LOCAL with the same
    locality". *)

type t = {
  name : string;
  locality : n:int -> int;
  output : n:int -> palette:int -> View.t -> int;
      (** [view.target] is the node being computed; the view contains
          exactly its [T]-ball, with no outputs visible. *)
}

val ball_view :
  ids:(Grid_graph.Graph.node -> int) ->
  host:Grid_graph.Graph.t ->
  palette:int ->
  radius:int ->
  center:Grid_graph.Graph.node ->
  outputs:(Grid_graph.Graph.node -> int option) ->
  View.t
(** A self-contained view of the ball [B(center, radius)] in the host,
    with fresh handles in BFS order from the center; shared by the LOCAL
    and SLOCAL executors. *)

val run :
  ?ids:(Grid_graph.Graph.node -> int) ->
  host:Grid_graph.Graph.t ->
  palette:int ->
  t ->
  Colorings.Coloring.t
(** Evaluate every node's output (conceptually in parallel). *)

val to_online : t -> Algorithm.t
(** Simulation into Online-LOCAL: on each presented node, rebuild the
    T-ball view from the revealed region (which always contains it) and
    run the LOCAL output function; the global memory is unused. *)

val grid_stripes : Topology.Grid2d.t -> t
(** The trivial locality-O(sqrt n) LOCAL algorithm that 3-colors a grid
    by seeing the entire graph and using canonical stripes; the matching
    upper bound for Theorem 2 (up to constants).  The returned algorithm
    is host-specific: its view decoding assumes the given grid's
    identifier layout (executors pass host node + 1 by default). *)
