type instance = View.t -> int

type t = {
  name : string;
  locality : n:int -> int;
  pure : bool;
  instantiate : n:int -> palette:int -> oracle:Oracle.t option -> instance;
}

let stateless ?(pure = true) ~name ~locality f =
  { name; locality; pure; instantiate = (fun ~n:_ ~palette:_ ~oracle:_ -> f) }

let greedy_first_fit =
  let answer (view : View.t) =
    let used =
      List.filter_map (fun w -> view.View.output w) (view.View.neighbors view.View.target)
    in
    let rec first c = if List.mem c used then first (c + 1) else c in
    let candidate = first 0 in
    if candidate < view.View.palette then candidate else 0
  in
  stateless ~name:"greedy-first-fit" ~locality:(fun ~n:_ -> 1) answer

let hint_parity =
  let answer (view : View.t) =
    match view.View.hint view.View.target with
    | Some (View.Grid_pos { row; col; _ }) -> (row + col) mod 2
    | Some (View.Gadget_pos _ | View.Layer_pos _) | None -> 0
  in
  stateless ~name:"hint-parity" ~locality:(fun ~n:_ -> 1) answer
