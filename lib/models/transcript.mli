(** Run transcripts: record what an Online-LOCAL algorithm saw and
    answered, step by step, without touching the executors — the
    algorithm is wrapped, so transcripts work with every executor in the
    library (fixed-host, virtual-grid, reductions). *)

type step = {
  index : int;  (** 1-based presentation index *)
  target_id : int;  (** the presented node's identifier *)
  new_nodes : int;  (** nodes revealed by this presentation *)
  region_size : int;  (** revealed-region size after the reveal *)
  color : int;  (** the algorithm's answer *)
}

type t

val create : unit -> t
val steps : t -> step list
(** Recorded steps, oldest first. *)

val wrap : t -> Algorithm.t -> Algorithm.t
(** A recording proxy: behaves exactly like the wrapped algorithm. *)

val pp : Format.formatter -> t -> unit
(** One line per step. *)

val to_csv : t -> string
(** [step,target_id,new_nodes,region_size,color] rows with a header. *)

val summary : t -> string
(** One-line digest: steps, total reveals, final region, palette use. *)
