open Grid_graph

type hint =
  | Grid_pos of { frame : int; row : int; col : int }
  | Gadget_pos of { frame : int; gadget : int; row : int; col : int }
  | Layer_pos of { layer : int }

type t = {
  n_total : int;
  palette : int;
  node_count : unit -> int;
  neighbors : Graph.node -> Graph.node list;
  mem_edge : Graph.node -> Graph.node -> bool;
  id : Graph.node -> int;
  output : Graph.node -> int option;
  hint : Graph.node -> hint option;
  target : Graph.node;
  new_nodes : Graph.node list;
  step : int;
}

let snapshot_graph view =
  let size = view.node_count () in
  let edges = ref [] in
  for u = 0 to size - 1 do
    List.iter (fun v -> if u < v then edges := (u, v) :: !edges) (view.neighbors u)
  done;
  Graph.create ~n:size ~edges:!edges

let ball view v r =
  let dist = Hashtbl.create 64 in
  Hashtbl.replace dist v 0;
  let queue = Queue.create () in
  Queue.add v queue;
  let out = ref [ v ] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    if du < r then
      List.iter
        (fun w ->
          if not (Hashtbl.mem dist w) then begin
            Hashtbl.replace dist w (du + 1);
            Queue.add w queue;
            out := w :: !out
          end)
        (view.neighbors u)
  done;
  List.sort compare !out
