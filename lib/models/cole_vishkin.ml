type trace = { colors : int array; rounds : int; cv_iterations : int }

let log_star n =
  let rec go n acc = if n <= 1 then acc else go (int_of_float (log (float_of_int n) /. log 2.)) (acc + 1) in
  go n 0

(* Lowest bit position at which a and b differ (a <> b). *)
let lowest_diff_bit a b =
  let x = a lxor b in
  let rec go i x = if x land 1 = 1 then i else go (i + 1) (x lsr 1) in
  go 0 x

let cv_round colors succ =
  Array.mapi
    (fun v c ->
      let other = match succ.(v) with Some s -> colors.(s) | None -> c lxor 1 in
      let i = lowest_diff_bit c other in
      (2 * i) + ((c lsr i) land 1))
    colors

let path_three_coloring ~ids ~succ =
  let n = Array.length ids in
  if Array.length succ <> n then invalid_arg "Cole_vishkin: length mismatch";
  let pred = Array.make n None in
  Array.iteri (fun v -> function Some s -> pred.(s) <- Some v | None -> ()) succ;
  let colors = ref (Array.copy ids) in
  let rounds = ref 0 in
  (* Bit-reduce until the palette stabilizes at {0..5}. *)
  let max_color a = Array.fold_left max 0 a in
  while max_color !colors > 5 do
    colors := cv_round !colors succ;
    incr rounds
  done;
  (* One more round can still help (6-color fixpoint); then shed colors
     5, 4, 3 one independent class per round. *)
  List.iter
    (fun shed ->
      incr rounds;
      let current = !colors in
      colors :=
        Array.mapi
          (fun v c ->
            if c <> shed then c
            else begin
              let taken =
                List.filter_map
                  (fun o -> Option.map (fun u -> current.(u)) o)
                  [ succ.(v); pred.(v) ]
              in
              let rec first x = if List.mem x taken then first (x + 1) else x in
              first 0
            end)
          current)
    [ 5; 4; 3 ];
  (!colors, !rounds)

let five_color ?ids grid =
  (match Topology.Grid2d.wrap grid with
  | Topology.Grid2d.Simple -> ()
  | Topology.Grid2d.Cylindrical | Topology.Grid2d.Toroidal ->
      invalid_arg "Cole_vishkin.five_color: simple grids only");
  let ids = match ids with Some f -> f | None -> fun v -> v + 1 in
  let g = Topology.Grid2d.graph grid in
  let n = Grid_graph.Graph.n g in
  let rows = Topology.Grid2d.rows grid and cols = Topology.Grid2d.cols grid in
  let id_array = Array.init n ids in
  let horizontal_succ =
    Array.init n (fun v ->
        let r, c = Topology.Grid2d.coords grid v in
        if c + 1 < cols then Some (Topology.Grid2d.node grid ~row:r ~col:(c + 1))
        else None)
  in
  let vertical_succ =
    Array.init n (fun v ->
        let r, c = Topology.Grid2d.coords grid v in
        if r + 1 < rows then Some (Topology.Grid2d.node grid ~row:(r + 1) ~col:c)
        else None)
  in
  let h_colors, h_rounds = path_three_coloring ~ids:id_array ~succ:horizontal_succ in
  let v_colors, v_rounds = path_three_coloring ~ids:id_array ~succ:vertical_succ in
  (* The two forests run in parallel in LOCAL; rounds = max, not sum. *)
  let cv_iterations = max h_rounds v_rounds - 3 in
  let paired = Array.init n (fun v -> (3 * h_colors.(v)) + v_colors.(v)) in
  (* Reduce 9 -> 5: recolor classes 8..5, each an independent set. *)
  let colors = ref paired in
  let extra = ref 0 in
  List.iter
    (fun shed ->
      incr extra;
      let current = !colors in
      colors :=
        Array.mapi
          (fun v c ->
            if c <> shed then c
            else begin
              let taken =
                Array.to_list (Grid_graph.Graph.neighbors g v)
                |> List.map (fun u -> current.(u))
              in
              let rec first x = if List.mem x taken then first (x + 1) else x in
              first 0
            end)
          current)
    [ 8; 7; 6; 5 ];
  { colors = !colors; rounds = max h_rounds v_rounds + !extra; cv_iterations }
