exception Dishonest_transcript of string

type violation =
  | Monochromatic_edge of Grid_graph.Graph.node * Grid_graph.Graph.node
  | Palette_overflow of { node : Grid_graph.Graph.node; color : int }
  | Repeated_presentation of Grid_graph.Graph.node
  | Algorithm_failure of {
      node : Grid_graph.Graph.node;
      message : string;
      backtrace : string;
    }

type outcome = {
  coloring : Colorings.Coloring.t;
  violation : violation option;
  presented : int;
  revealed : int;
  max_view_size : int;
}

let pp_violation ppf = function
  | Monochromatic_edge (u, v) ->
      Format.fprintf ppf "monochromatic edge %d -- %d" u v
  | Palette_overflow { node; color } ->
      Format.fprintf ppf "node %d got out-of-palette color %d" node color
  | Repeated_presentation v -> Format.fprintf ppf "node %d presented twice" v
  | Algorithm_failure { node; message; backtrace } ->
      Format.fprintf ppf "algorithm raised on node %d: %s%s" node message
        (if backtrace = "" then "" else " [backtrace recorded]")

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>steps=%d revealed=%d max_view=%d colored=%d/%d %a@]"
    o.presented o.revealed o.max_view_size
    (Colorings.Coloring.colored_count o.coloring)
    (Colorings.Coloring.size o.coloring)
    (fun ppf -> function
      | None -> Format.fprintf ppf "ok"
      | Some v -> Format.fprintf ppf "VIOLATION: %a" pp_violation v)
    o.violation

let succeeded o ~colors ~host =
  o.violation = None
  && Colorings.Coloring.is_proper_total host o.coloring ~colors
