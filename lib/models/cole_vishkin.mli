(** Cole-Vishkin color reduction on grids: a proper 5-coloring in
    O(log* n) LOCAL rounds.

    Context for the complexity landscape the paper navigates: on grids,
    (Delta+1) = 5 colors take Theta(log* n) rounds in LOCAL, while 3
    colors take Theta(sqrt n) (and Theta(log n) in Online-LOCAL —
    Theorem 1).  The paper's remark on the omega(log* n)-o(sqrt n) gap
    [CKP19; CP19] is exactly the chasm between this module and the rest
    of the library.

    The construction: a grid's edges split into horizontal and vertical
    path forests.  Cole-Vishkin bit reduction 3-colors each forest's
    paths in log* n + O(1) rounds (each round, a node's new color depends
    only on its own and its path-successor's current color); the color
    pair is a proper 9-coloring of the grid, reduced to 5 greedily, one
    color class (an independent set) per round. *)

type trace = {
  colors : int array;  (** the final proper 5-coloring *)
  rounds : int;  (** synchronous LOCAL rounds consumed *)
  cv_iterations : int;  (** bit-reduction iterations until 6 colors *)
}

val five_color : ?ids:(Grid_graph.Graph.node -> int) -> Topology.Grid2d.t -> trace
(** Run the algorithm on a simple grid (wrapped grids' odd cycles break
    the path decomposition, so they are rejected).  [ids] supplies the
    initial coloring — any assignment injective on each row and column
    path (default: node + 1).
    @raise Invalid_argument on a wrapped grid. *)

val path_three_coloring : ids:int array -> succ:int option array -> int array * int
(** The inner engine, exposed for direct testing: proper 3-coloring of a
    union of disjoint paths given by successor pointers ([succ.(v)] is
    the next node along [v]'s path).  [ids] must be injective along each
    path.  Returns the coloring and the number of rounds. *)

val log_star : int -> int
(** The iterated logarithm (base 2), for the round-bound assertions. *)
