let sequential v = v + 1

(* SplitMix64-style mixing, reduced mod n^3; collisions resolved by
   linear probing over the target range, deterministically. *)
let salted ~seed ~n =
  let range = max 1 (n * n * n) in
  let mix x =
    let x = Int64.of_int (x + seed) in
    let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
    let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94d049bb133111ebL in
    Int64.to_int (Int64.logxor x (Int64.shift_right_logical x 31)) land max_int
  in
  let assigned = Hashtbl.create (2 * n) in
  let memo = Hashtbl.create (2 * n) in
  fun v ->
    match Hashtbl.find_opt memo v with
    | Some id -> id
    | None ->
        let rec place candidate =
          let candidate = candidate mod range in
          if Hashtbl.mem assigned candidate then place (candidate + 1)
          else begin
            Hashtbl.replace assigned candidate ();
            candidate + 1
          end
        in
        let id = place (mix v) in
        Hashtbl.replace memo v id;
        id

let reversed ~n v = n - v

let all_distinct ids ~n =
  let seen = Hashtbl.create (2 * n) in
  let rec go v =
    if v >= n then true
    else
      let id = ids v in
      if id <= 0 || Hashtbl.mem seen id then false
      else begin
        Hashtbl.replace seen id ();
        go (v + 1)
      end
  in
  go 0
