(** The SLOCAL model [GKM17] (Section 1).

    Nodes are processed in an adversarial order; the output of a node may
    depend on its T-radius ball {e and the outputs already assigned
    inside that ball} — but, unlike Online-LOCAL, on no global memory and
    on nothing outside the ball.  The executable simulation {!to_online}
    witnesses SLOCAL <= Online-LOCAL. *)

type t = {
  name : string;
  locality : n:int -> int;
  output : n:int -> palette:int -> View.t -> int;
      (** the view is the target's T-ball, with prior outputs visible *)
}

val run :
  ?ids:(Grid_graph.Graph.node -> int) ->
  host:Grid_graph.Graph.t ->
  palette:int ->
  order:Grid_graph.Graph.node list ->
  t ->
  Colorings.Coloring.t
(** Process the nodes in the given order. *)

val to_online : t -> Algorithm.t
(** Run the SLOCAL rule inside Online-LOCAL, ignoring the global memory
    and masking the view down to the target's ball. *)

val greedy : t
(** The locality-1 greedy coloring — the textbook SLOCAL example: pick
    the smallest color unused among already-colored neighbors.  Solves
    (degree+1)-coloring; with a smaller palette it answers 0 when stuck. *)

val list_greedy : lists:(Grid_graph.Graph.node -> int list) -> t
(** The (degree+1)-list-coloring greedy of the paper's introduction:
    locality 1, picks the first color of the target's list unused by an
    already-colored neighbor.  Lists are addressed by host node, decoded
    from the view's identifier ([id - 1] — executors' default scheme);
    answers the list's head when stuck (only possible on invalid
    instances). *)
