(** Outcomes and violation certificates common to all executors.

    Lower-bound adversaries must end a run with a concrete, checkable
    certificate that the algorithm failed; upper-bound runs must end with
    none. *)

exception Dishonest_transcript of string
(** Raised by executors and transcript auditors when the {e adversary}
    side breaks the model's rules — a node presented twice, a replay
    audit mismatch.  A dedicated constructor so the guarded engine can
    classify audit failures by exception type ({!Harness.Guard.capture}
    maps it to [Misbehavior.Dishonest_transcript]) instead of sniffing
    message text. *)

type violation =
  | Monochromatic_edge of Grid_graph.Graph.node * Grid_graph.Graph.node
      (** two adjacent host nodes got the same color *)
  | Palette_overflow of { node : Grid_graph.Graph.node; color : int }
      (** the algorithm answered outside [{0 .. palette-1}] *)
  | Repeated_presentation of Grid_graph.Graph.node
      (** the reveal order presented a node twice (an adversary bug, not
          an algorithm failure — executors refuse to continue) *)
  | Algorithm_failure of {
      node : Grid_graph.Graph.node;
      message : string;
      backtrace : string;
          (** [Printexc.get_backtrace] at the catch site ([""] when
              backtrace recording is off) *)
    }
      (** the algorithm raised a non-fatal exception when asked to color
          the node — a failure like any other (e.g. the bipartite
          3-coloring algorithm fed a non-bipartite host).  Fatal runtime
          exceptions ([Stack_overflow], [Out_of_memory], [Sys.Break])
          are re-raised by the executors, never recorded here. *)

type outcome = {
  coloring : Colorings.Coloring.t;  (** indexed by host node *)
  violation : violation option;  (** first violation discovered, if any *)
  presented : int;  (** number of presentation steps executed *)
  revealed : int;  (** number of host nodes revealed (in some ball) *)
  max_view_size : int;  (** largest revealed-region size at any step *)
}

val pp_violation : Format.formatter -> violation -> unit
val pp_outcome : Format.formatter -> outcome -> unit

val succeeded : outcome -> colors:int -> host:Grid_graph.Graph.t -> bool
(** Whether the run produced a total, proper coloring within the palette:
    no violation, every node colored, every color < colors, no
    monochromatic edge.  The explicit rechecks make this the final word
    even if an executor had a bookkeeping bug. *)
