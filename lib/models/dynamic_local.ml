open Grid_graph

type update =
  | Add_node of { edges : Graph.node list }
  | Add_edge of Graph.node * Graph.node
  | Remove_edge of Graph.node * Graph.node
  | Remove_node of Graph.node

type t = {
  name : string;
  locality : n:int -> int;
  react : n:int -> palette:int -> View.t -> (Graph.node * int) list;
}

type violation =
  | Improper of Graph.node * Graph.node
  | Unlabeled of Graph.node
  | Out_of_palette of { node : Graph.node; color : int }
  | Nonlocal_relabel of { change : Graph.node; node : Graph.node }

type outcome = {
  violation : (int * violation) option;
  labels : (Graph.node * int) list;
  steps : int;
  relabelings : int;
}

let pp_violation ppf = function
  | Improper (u, v) -> Format.fprintf ppf "monochromatic edge %d -- %d" u v
  | Unlabeled v -> Format.fprintf ppf "node %d left unlabeled" v
  | Out_of_palette { node; color } ->
      Format.fprintf ppf "node %d given out-of-palette color %d" node color
  | Nonlocal_relabel { change; node } ->
      Format.fprintf ppf "relabel of %d outside the ball of change %d" node change

(* Mutable dynamic graph supporting deletions (unlike Dyn_graph). *)
type world = {
  mutable next : int;
  adj : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* only live nodes present *)
  labels : (int, int) Hashtbl.t;
}

let live w v = Hashtbl.mem w.adj v

let neighbors w v =
  match Hashtbl.find_opt w.adj v with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun x () acc -> x :: acc) tbl []

let add_node w =
  let v = w.next in
  w.next <- w.next + 1;
  Hashtbl.replace w.adj v (Hashtbl.create 4);
  v

let add_edge w u v =
  if not (live w u && live w v) then invalid_arg "Dynamic_local: dead endpoint";
  if u = v then invalid_arg "Dynamic_local: self-loop";
  Hashtbl.replace (Hashtbl.find w.adj u) v ();
  Hashtbl.replace (Hashtbl.find w.adj v) u ()

let remove_edge w u v =
  (match Hashtbl.find_opt w.adj u with Some t -> Hashtbl.remove t v | None -> ());
  match Hashtbl.find_opt w.adj v with Some t -> Hashtbl.remove t u | None -> ()

let remove_node w v =
  List.iter (fun u -> remove_edge w u v) (neighbors w v);
  Hashtbl.remove w.adj v;
  Hashtbl.remove w.labels v

let ball w center radius =
  let dist = Hashtbl.create 64 in
  if not (live w center) then []
  else begin
    Hashtbl.replace dist center 0;
    let queue = Queue.create () in
    Queue.add center queue;
    let out = ref [ center ] in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let du = Hashtbl.find dist u in
      if du < radius then
        List.iter
          (fun x ->
            if not (Hashtbl.mem dist x) then begin
              Hashtbl.replace dist x (du + 1);
              Queue.add x queue;
              out := x :: !out
            end)
          (neighbors w u)
    done;
    List.sort compare !out
  end

let make_view w ~n_hint ~palette ~target ~new_nodes =
  {
    View.n_total = n_hint;
    palette;
    node_count = (fun () -> w.next);
    neighbors = (fun v -> neighbors w v);
    mem_edge =
      (fun u v ->
        match Hashtbl.find_opt w.adj u with
        | Some t -> Hashtbl.mem t v
        | None -> false);
    id = (fun v -> v + 1);
    output = (fun v -> Hashtbl.find_opt w.labels v);
    hint = (fun _ -> None);
    target;
    new_nodes;
    step = 0;
  }

let run ?(allow_deletions = false) ~n_hint ~palette ~algorithm ~updates () =
  let w = { next = 0; adj = Hashtbl.create 256; labels = Hashtbl.create 256 } in
  let radius = algorithm.locality ~n:n_hint in
  let violation = ref None in
  let relabelings = ref 0 in
  let steps = ref 0 in
  let audit step =
    if !violation = None then begin
      let check_node v =
        match Hashtbl.find_opt w.labels v with
        | None -> violation := Some (step, Unlabeled v)
        | Some c when c < 0 || c >= palette ->
            violation := Some (step, Out_of_palette { node = v; color = c })
        | Some c ->
            List.iter
              (fun u ->
                if !violation = None && Hashtbl.find_opt w.labels u = Some c && u < v
                then violation := Some (step, Improper (u, v)))
              (neighbors w v)
      in
      Hashtbl.iter (fun v _ -> if !violation = None then check_node v) w.adj
    end
  in
  let react step change ~new_nodes =
    let view = make_view w ~n_hint ~palette ~target:change ~new_nodes in
    let changes = algorithm.react ~n:n_hint ~palette view in
    let allowed = ball w change radius in
    List.iter
      (fun (v, c) ->
        if !violation = None then
          if not (List.mem v allowed) then
            violation := Some (step, Nonlocal_relabel { change; node = v })
          else begin
            Hashtbl.replace w.labels v c;
            incr relabelings
          end)
      changes
  in
  let apply step = function
    | Add_node { edges } ->
        let v = add_node w in
        List.iter (fun u -> add_edge w u v) edges;
        react step v ~new_nodes:[ v ]
    | Add_edge (u, v) ->
        add_edge w u v;
        react step u ~new_nodes:[]
    | Remove_edge (u, v) ->
        if not allow_deletions then
          invalid_arg "Dynamic_local.run: deletions need ~allow_deletions:true";
        remove_edge w u v;
        if live w u then react step u ~new_nodes:[]
    | Remove_node v ->
        if not allow_deletions then
          invalid_arg "Dynamic_local.run: deletions need ~allow_deletions:true";
        let nbrs = neighbors w v in
        remove_node w v;
        (match nbrs with
        | u :: _ when live w u -> react step u ~new_nodes:[]
        | _ -> ())
  in
  (try
     List.iter
       (fun u ->
         if !violation = None then begin
           incr steps;
           apply !steps u;
           audit !steps
         end)
       updates
   with Invalid_argument _ as e -> raise e);
  {
    violation = !violation;
    labels =
      Hashtbl.fold (fun v _ acc ->
          match Hashtbl.find_opt w.labels v with
          | Some c -> (v, c) :: acc
          | None -> acc)
        w.adj []
      |> List.sort compare;
    steps = !steps;
    relabelings = !relabelings;
  }

let greedy_repair =
  {
    name = "dynamic-greedy-repair";
    locality = (fun ~n:_ -> 1);
    react =
      (fun ~n:_ ~palette view ->
        let target = view.View.target in
        let used =
          List.filter_map (fun u -> view.View.output u) (view.View.neighbors target)
        in
        let mine = view.View.output target in
        let conflict = match mine with Some c -> List.mem c used | None -> true in
        if not conflict then []
        else begin
          let rec first c = if List.mem c used then first (c + 1) else c in
          let c = first 0 in
          [ (target, if c < palette then c else 0) ]
        end);
  }

let bfs_repair ~radius =
  {
    name = Printf.sprintf "dynamic-bfs-repair(r=%d)" radius;
    locality = (fun ~n:_ -> radius);
    react =
      (fun ~n:_ ~palette view ->
        (* Recolor greedily in BFS order from the change, but only nodes
           that are currently in conflict (or unlabeled). *)
        let order = View.ball view view.View.target radius in
        let current = Hashtbl.create 64 in
        List.iter
          (fun v ->
            match view.View.output v with
            | Some c -> Hashtbl.replace current v c
            | None -> ())
          order;
        let color_of v = Hashtbl.find_opt current v in
        let changes = ref [] in
        List.iter
          (fun v ->
            let nbr_colors =
              List.filter_map color_of (view.View.neighbors v)
            in
            let conflicted =
              match color_of v with
              | None -> true
              | Some c -> List.mem c nbr_colors
            in
            if conflicted then begin
              let rec first c = if List.mem c nbr_colors then first (c + 1) else c in
              let c = first 0 in
              let c = if c < palette then c else 0 in
              Hashtbl.replace current v c;
              changes := (v, c) :: !changes
            end)
          order;
        List.rev !changes);
  }

let incremental_grid_updates grid ~order =
  let rank = Hashtbl.create 256 in
  List.mapi
    (fun i host ->
      let edges =
        Array.to_list (Graph.neighbors (Topology.Grid2d.graph grid) host)
        |> List.filter_map (fun u -> Hashtbl.find_opt rank u)
      in
      Hashtbl.replace rank host i;
      Add_node { edges })
    order

let relabel_to_host ~order labels =
  let host_of = Array.of_list order in
  List.map (fun (rank, c) -> (host_of.(rank), c)) labels
