open Grid_graph

type t = {
  parts : int;
  radius : int;
  query : View.t -> Graph.node list -> int array;
}

let canonicalize raw handles =
  let order = List.mapi (fun i h -> (h, i)) handles in
  let order = List.sort compare order in
  let rename = Hashtbl.create 8 in
  let next = ref 0 in
  List.iter
    (fun (_, i) ->
      let part = raw.(i) in
      if not (Hashtbl.mem rename part) then begin
        Hashtbl.replace rename part !next;
        incr next
      end)
    order;
  Array.map (fun part -> Hashtbl.find rename part) raw

let of_canonical_coloring ~parts ~radius ~to_host ~host_coloring =
  let query _view handles =
    let raw =
      Array.of_list (List.map (fun h -> host_coloring.(to_host h)) handles)
    in
    canonicalize raw handles
  in
  { parts; radius; query }

let bipartition =
  let query (view : View.t) handles =
    let index = Hashtbl.create (List.length handles * 2 + 1) in
    List.iteri (fun i h -> Hashtbl.replace index h i) handles;
    let side = Array.make (List.length handles) (-1) in
    (match handles with
    | [] -> ()
    | start :: _ ->
        let queue = Queue.create () in
        side.(Hashtbl.find index start) <- 0;
        Queue.add start queue;
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          let su = side.(Hashtbl.find index u) in
          List.iter
            (fun w ->
              match Hashtbl.find_opt index w with
              | None -> ()
              | Some j ->
                  if side.(j) = -1 then begin
                    side.(j) <- 1 - su;
                    Queue.add w queue
                  end
                  else if side.(j) = su then
                    invalid_arg "Oracle.bipartition: odd cycle in queried set")
            (view.View.neighbors u)
        done);
    if Array.exists (( = ) (-1)) side then
      invalid_arg "Oracle.bipartition: queried set not connected";
    canonicalize side handles
  in
  { parts = 2; radius = 0; query }
