open Grid_graph

type t = {
  name : string;
  locality : n:int -> int;
  output : n:int -> palette:int -> View.t -> int;
}

(* Build a self-contained ball view around [center] inside [host].  The
   handles are fresh (BFS order from the center), so a LOCAL algorithm
   cannot accidentally observe anything outside the ball. *)
let ball_view ~ids ~host ~palette ~radius ~center ~outputs =
  let nodes = Bfs.ball host [ center ] radius in
  let handle_of = Hashtbl.create (List.length nodes * 2 + 1) in
  List.iteri (fun i v -> Hashtbl.replace handle_of v i) nodes;
  let host_of = Array.of_list nodes in
  let neighbors h =
    Array.to_list (Graph.neighbors host host_of.(h))
    |> List.filter_map (fun w -> Hashtbl.find_opt handle_of w)
  in
  {
    View.n_total = Graph.n host;
    palette;
    node_count = (fun () -> Array.length host_of);
    neighbors;
    mem_edge =
      (fun a b ->
        a < Array.length host_of && b < Array.length host_of
        && Graph.mem_edge host host_of.(a) host_of.(b));
    id = (fun h -> ids host_of.(h));
    output = (fun h -> outputs host_of.(h));
    hint = (fun _ -> None);
    target = Hashtbl.find handle_of center;
    new_nodes = List.init (Array.length host_of) (fun i -> i);
    step = 1;
  }

let run ?ids ~host ~palette t =
  let n = Graph.n host in
  let ids = match ids with Some f -> f | None -> fun v -> v + 1 in
  let radius = t.locality ~n in
  let coloring = Colorings.Coloring.create n in
  Graph.iter_nodes host (fun v ->
      let view =
        ball_view ~ids ~host ~palette ~radius ~center:v ~outputs:(fun _ -> None)
      in
      let c = t.output ~n ~palette view in
      Colorings.Coloring.set coloring v c);
  coloring

let to_online t =
  let instantiate ~n ~palette ~oracle:_ (view : View.t) =
    let radius = t.locality ~n in
    (* Reconstruct the pristine T-ball view from the revealed region: the
       executor guarantees B(target, T) is fully revealed.  Fresh handles
       hide the rest of the region and all outputs. *)
    let nodes = View.ball view view.View.target radius in
    let handle_of = Hashtbl.create (List.length nodes * 2 + 1) in
    List.iteri (fun i h -> Hashtbl.replace handle_of h i) nodes;
    let old_of = Array.of_list nodes in
    let sub =
      {
        view with
        View.node_count = (fun () -> Array.length old_of);
        neighbors =
          (fun h ->
            List.filter_map
              (fun w -> Hashtbl.find_opt handle_of w)
              (view.View.neighbors old_of.(h)));
        mem_edge = (fun a b -> view.View.mem_edge old_of.(a) old_of.(b));
        id = (fun h -> view.View.id old_of.(h));
        output = (fun _ -> None);
        hint = (fun _ -> None);
        target = Hashtbl.find handle_of view.View.target;
        new_nodes = List.init (Array.length old_of) (fun i -> i);
        step = 1;
      }
    in
    t.output ~n ~palette sub
  in
  {
    Algorithm.name = "online<-local:" ^ t.name;
    locality = t.locality;
    pure = false;
    instantiate = (fun ~n ~palette ~oracle -> instantiate ~n ~palette ~oracle);
  }

let grid_stripes grid =
  let stripe = Topology.Grid2d.canonical_3_coloring grid in
  {
    name = "grid-stripes";
    locality =
      (fun ~n:_ ->
        Topology.Grid2d.rows grid + Topology.Grid2d.cols grid);
    output =
      (fun ~n:_ ~palette:_ view ->
        (* Sees the whole graph; decode the host node from the identifier. *)
        stripe.(view.View.id view.View.target - 1));
  }
