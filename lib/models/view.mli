(** What an Online-LOCAL algorithm sees when the adversary presents a node.

    Per Section 2.2, after presenting [v_1, ..., v_i] the algorithm knows
    the subgraph [G_i] induced by the union of the T-radius balls of the
    presented nodes, the presentation sequence, and the outputs it
    produced.  A view exposes exactly that and nothing else:

    {ul
    {- nodes are {e handles} — dense integers allocated in discovery
       order, stable for the whole run, carrying no geometric meaning;}
    {- each handle has a unique identifier chosen by the adversary;}
    {- optional {e hints} expose coordinates in a per-component frame.
       A frame is only meaningful up to the isometries of the host
       family (translation, reflection), and frames merge when the
       adversary commits relative placements — so hints never reveal
       more than the revealed subgraph structure already determines.}}

    Views are windows onto the executor's mutable state: accessors always
    answer about the {e current} step.  Algorithms must not cache a view
    across steps (cache facts, not views). *)

type hint =
  | Grid_pos of { frame : int; row : int; col : int }
      (** position in a 2d-grid component frame *)
  | Gadget_pos of { frame : int; gadget : int; row : int; col : int }
      (** position in a gadget-chain component frame *)
  | Layer_pos of { layer : int }
      (** layer index in a layered graph [G_k] *)

type t = {
  n_total : int;  (** number of nodes of the whole input graph (known to algorithms) *)
  palette : int;  (** number of allowed colors *)
  node_count : unit -> int;  (** handles allocated so far *)
  neighbors : Grid_graph.Graph.node -> Grid_graph.Graph.node list;
      (** revealed neighbors of a revealed handle *)
  mem_edge : Grid_graph.Graph.node -> Grid_graph.Graph.node -> bool;
  id : Grid_graph.Graph.node -> int;  (** the adversary-assigned unique identifier *)
  output : Grid_graph.Graph.node -> int option;
      (** the color already output for a handle, if presented before *)
  hint : Grid_graph.Graph.node -> hint option;
  target : Grid_graph.Graph.node;  (** the handle that must be colored now *)
  new_nodes : Grid_graph.Graph.node list;
      (** handles that entered the revealed region at this step,
          in increasing handle order; includes [target] on its first
          appearance *)
  step : int;  (** 1-based index of this presentation *)
}

val snapshot_graph : t -> Grid_graph.Graph.t
(** An immutable copy of the revealed region (handles coincide).  O(size
    of the region) — meant for tests and small algorithms, not for use on
    every step of a large run. *)

val ball : t -> Grid_graph.Graph.node -> int -> Grid_graph.Graph.node list
(** [ball view v r]: handles within distance [r] of [v] {e in the
    revealed region}.  When the executor guarantees the host ball
    [B(v, r)] is fully revealed (always true for [v = target], [r <=
    locality]), this equals the host ball. *)
