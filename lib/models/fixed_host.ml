open Grid_graph

type t = {
  host : Graph.t;
  palette : int;
  mutable radius : int;  (* locality + oracle radius; fixed after [start] *)
  mutable instance : Algorithm.instance;  (* fixed after [start] *)
  region : Dyn_graph.t;
  frontier : Bfs.Frontier.t;  (* incremental revealed-view state *)
  handle_of_host : int array;  (* host node -> handle; -1 = unrevealed *)
  mutable host_of_handle : Graph.node array;  (* grown by doubling *)
  ids : Graph.node -> int;
  hints : Graph.node -> View.hint option;  (* by host node *)
  coloring : Colorings.Coloring.t;
  presented_set : Packed.Set.t;
  bulk : bool;
  memo : Canon.Memo.ctx option;
  mutable steps : int;
  mutable max_view : int;
  mutable first_violation : Run_stats.violation option;
}

let to_host t handle = t.host_of_handle.(handle)

let record_handle t host_node =
  let handle = Dyn_graph.add_node t.region in
  if handle >= Array.length t.host_of_handle then begin
    let bigger = Array.make (max 16 (2 * Array.length t.host_of_handle)) (-1) in
    Array.blit t.host_of_handle 0 bigger 0 (Array.length t.host_of_handle);
    t.host_of_handle <- bigger
  end;
  t.host_of_handle.(handle) <- host_node;
  t.handle_of_host.(host_node) <- handle;
  handle

(* Everything that shapes views beyond the presentation order: the host
   adjacency itself is hashed so two different hosts can never share a
   memo chain (thm2's reflected band, thm3's seam chain, ...). *)
let host_fingerprint host =
  let b = Buffer.create 1024 in
  let n = Graph.n host in
  Buffer.add_string b (string_of_int n);
  for v = 0 to n - 1 do
    Buffer.add_char b ';';
    Array.iter
      (fun w ->
        if v < w then begin
          Buffer.add_string b (string_of_int w);
          Buffer.add_char b ','
        end)
      (Graph.neighbors host v)
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))

let hint_repr = function
  | None -> "-"
  | Some (View.Grid_pos { frame; row; col }) ->
      Printf.sprintf "g%d:%d:%d" frame row col
  | Some (View.Gadget_pos { frame; gadget; row; col }) ->
      Printf.sprintf "G%d:%d:%d:%d" frame gadget row col
  | Some (View.Layer_pos { layer }) -> Printf.sprintf "l%d" layer

let start ?(bulk = false) ?memo ?ids ?hints ?oracle ~host ~palette ~algorithm () =
  let n = Graph.n host in
  let ids = match ids with Some f -> f | None -> fun v -> v + 1 in
  let hints = match hints with Some f -> f | None -> fun _ -> None in
  let locality = algorithm.Algorithm.locality ~n in
  let t =
    {
      host;
      palette;
      radius = locality;
      instance = (fun _ -> assert false);
      region = Dyn_graph.create ();
      frontier = Bfs.Frontier.create host;
      handle_of_host = Array.make (max n 1) (-1);
      host_of_handle = Array.make 16 (-1);
      ids;
      hints;
      coloring = Colorings.Coloring.create n;
      presented_set = Packed.Set.create (max n 1);
      bulk;
      memo;
      steps = 0;
      max_view = 0;
      first_violation = None;
    }
  in
  let oracle = Option.map (fun mk -> mk ~to_host:(to_host t)) oracle in
  t.radius <- locality + (match oracle with Some o -> o.Oracle.radius | None -> 0);
  t.instance <- algorithm.Algorithm.instantiate ~n ~palette ~oracle;
  (match memo with
  | Some ctx when Canon.Memo.pure ctx ->
      Canon.Memo.begin_run ctx
        (Printf.sprintf "fh|%s|%d|%d|%b|%s" algorithm.Algorithm.name palette
           t.radius (oracle <> None) (host_fingerprint host))
  | _ -> ());
  t

let reveal_ball t center =
  (* Extend the region from the previous frontier; returns new handles in
     order.  [Frontier.reveal] yields exactly the nodes of
     [B(center, radius)] not yet revealed, ascending — byte-identical to
     the batch [Bfs.ball]-then-filter it replaces, at O(frontier) cost. *)
  let fresh = Bfs.Frontier.reveal t.frontier center t.radius in
  let fresh_handles = List.map (fun v -> record_handle t v) fresh in
  List.iter
    (fun v ->
      let hv = t.handle_of_host.(v) in
      Array.iter
        (fun w ->
          let hw = t.handle_of_host.(w) in
          if hw >= 0 then Dyn_graph.add_edge t.region hv hw)
        (Graph.neighbors t.host v))
    fresh;
  fresh_handles

let make_view t ~target ~new_nodes =
  {
    View.n_total = Graph.n t.host;
    palette = t.palette;
    node_count = (fun () -> Dyn_graph.n t.region);
    neighbors = (fun h -> Dyn_graph.neighbors t.region h);
    mem_edge = (fun a b -> Dyn_graph.mem_edge t.region a b);
    id = (fun h -> t.ids (to_host t h));
    output = (fun h -> Colorings.Coloring.get t.coloring (to_host t h));
    hint = (fun h -> t.hints (to_host t h));
    target;
    new_nodes;
    step = t.steps;
  }

let present t v =
  if Packed.Set.mem t.presented_set v then
    raise
      (Run_stats.Dishonest_transcript
         (Printf.sprintf "Fixed_host.present: node %d presented twice" v));
  Packed.Set.add t.presented_set v;
  t.steps <- t.steps + 1;
  let new_nodes = reveal_ball t v in
  t.max_view <- max t.max_view (Dyn_graph.n t.region);
  if (not t.bulk) && Obs.Trace.on () then begin
    Obs.Trace.emit
      (Obs.Trace.Reveal
         {
           executor = "fixed_host";
           step = t.steps;
           fresh = List.length new_nodes;
           revealed = Dyn_graph.n t.region;
         });
    Obs.Trace.emit
      (Obs.Trace.Step
         {
           executor = "fixed_host";
           step = t.steps;
           target = v;
           revealed = Dyn_graph.n t.region;
           max_view = t.max_view;
         })
  end;
  if (not t.bulk) && Obs.Metrics.on () then begin
    Obs.Metrics.incr "fixed_host.presented";
    Obs.Metrics.add "fixed_host.revealed" (List.length new_nodes)
  end;
  let target = t.handle_of_host.(v) in
  (* Memo: fold the step's full observable delta (each fresh node's id
     and hint enter the chain exactly once, when the node enters the
     region), then replay a cached answer if this chain key was already
     answered — pure algorithms only, exceptions never cached. *)
  let memo_step =
    match t.memo with
    | Some ctx when Canon.Memo.pure ctx ->
        let b = Buffer.create 64 in
        Buffer.add_string b "p|";
        Buffer.add_string b (string_of_int v);
        List.iter
          (fun h ->
            let hv = to_host t h in
            Buffer.add_char b '|';
            Buffer.add_string b (string_of_int hv);
            Buffer.add_char b ':';
            Buffer.add_string b (string_of_int (t.ids hv));
            Buffer.add_char b ':';
            Buffer.add_string b (hint_repr (t.hints hv)))
          new_nodes;
        let suffix = Buffer.contents b in
        Some (ctx, suffix, Canon.Memo.step_key ctx suffix)
    | _ -> None
  in
  let cached =
    match memo_step with
    | Some (ctx, _, key) -> Canon.Memo.find ctx key
    | None -> None
  in
  let color =
    match
      (match cached with
      | Some c ->
          (match memo_step with
          | Some (ctx, _, _) -> Canon.Memo.charge ctx
          | None -> ());
          c
      | None -> t.instance (make_view t ~target ~new_nodes))
    with
    | c ->
        (match (memo_step, cached) with
        | Some (ctx, _, key), None -> Canon.Memo.add ctx key c
        | _ -> ());
        c
    | exception ((Stack_overflow | Out_of_memory | Sys.Break) as e) -> raise e
    | exception exn ->
        let backtrace = Printexc.get_backtrace () in
        if t.first_violation = None then
          t.first_violation <-
            Some
              (Run_stats.Algorithm_failure
                 { node = v; message = Printexc.to_string exn; backtrace });
        -1
  in
  (match memo_step with
  | Some (ctx, suffix, _) ->
      Canon.Memo.fold ctx (suffix ^ "=" ^ string_of_int color)
  | None -> ());
  (if t.first_violation = None then
     if color < 0 || color >= t.palette then
       t.first_violation <- Some (Run_stats.Palette_overflow { node = v; color })
     else Colorings.Coloring.set t.coloring v color);
  color

let coloring t = t.coloring

let revealed_host_nodes t =
  List.init (Dyn_graph.n t.region) (fun h -> t.host_of_handle.(h))

let audit t =
  let violation =
    match t.first_violation with
    | Some _ as v -> v
    | None ->
        Option.map
          (fun (u, v) -> Run_stats.Monochromatic_edge (u, v))
          (Colorings.Coloring.find_monochromatic_edge t.host t.coloring)
  in
  if (not t.bulk) && Obs.Trace.on () then
    Obs.Trace.emit
      (Obs.Trace.Audit
         {
           executor = "fixed_host";
           ok = violation = None;
           detail =
             (match violation with
             | None -> ""
             | Some v -> Format.asprintf "%a" Run_stats.pp_violation v);
         });
  if (not t.bulk) && Obs.Metrics.on () then begin
    Obs.Metrics.observe "fixed_host.run.presented" t.steps;
    Obs.Metrics.observe "fixed_host.run.max_view" t.max_view;
    Obs.Metrics.gauge_max "fixed_host.max_view" t.max_view
  end;
  if Obs.Stats.on () then begin
    Obs.Stats.observe "fixed_host.presented" t.steps;
    Obs.Stats.observe "fixed_host.revealed" (Dyn_graph.n t.region);
    Obs.Stats.observe "fixed_host.max_view" t.max_view
  end;
  {
    Run_stats.coloring = t.coloring;
    violation;
    presented = t.steps;
    revealed = Dyn_graph.n t.region;
    max_view_size = t.max_view;
  }

let run ?bulk ?memo ?ids ?hints ?oracle ~host ~palette ~algorithm ~order () =
  let t = start ?bulk ?memo ?ids ?hints ?oracle ~host ~palette ~algorithm () in
  let rec go = function
    | [] -> ()
    | v :: rest ->
        if Packed.Set.mem t.presented_set v then
          (* A duplicated reveal order is an adversary bug: certify it
             rather than letting [present]'s invalid_arg abort the run. *)
          t.first_violation <- Some (Run_stats.Repeated_presentation v)
        else begin
          let (_ : int) = present t v in
          if t.first_violation = None then go rest
        end
  in
  go order;
  audit t

let orders ~all = function
  | `Sequential -> List.init (Graph.n all) (fun i -> i)
  | `Random seed ->
      let state = Random.State.make [| seed; Graph.n all |] in
      let a = Array.init (Graph.n all) (fun i -> i) in
      for i = Array.length a - 1 downto 1 do
        let j = Random.State.int state (i + 1) in
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      done;
      Array.to_list a
