(** The Dynamic-LOCAL and Dynamic-LOCAL± models (Section 1).

    The adversary constructs the graph dynamically; after each
    modification an algorithm with locality [T] may adjust the solution
    only within the T-radius neighborhood of the point of change.
    [Dynamic-LOCAL] is the incremental setting (node and edge
    insertions); [Dynamic-LOCAL±] also allows deletions.  Both sit
    between LOCAL and Online-LOCAL in the paper's simulation sandwich, so
    the Omega(log n) grid bound (Theorem 1 + Corollary 1.2) applies to
    them; here they are executable so the upper-bound side — maintaining
    a proper coloring under updates with small locality — can be
    exercised and measured.

    The executor maintains a mutable labeling.  After every update it
    (a) hands the algorithm a view centered at the point of change,
    (b) applies the returned relabelings, rejecting any outside the
    T-ball of the change, and (c) audits that every present node is
    labeled within the palette and no monochromatic edge exists — the
    solution must be valid {e after every step}, which is what
    distinguishes the dynamic setting from the online one. *)

type update =
  | Add_node of { edges : Grid_graph.Graph.node list }
      (** insert a fresh node adjacent to the listed existing nodes; the
          new node's handle is the number of nodes inserted so far *)
  | Add_edge of Grid_graph.Graph.node * Grid_graph.Graph.node
  | Remove_edge of Grid_graph.Graph.node * Grid_graph.Graph.node
      (** Dynamic-LOCAL± only *)
  | Remove_node of Grid_graph.Graph.node  (** Dynamic-LOCAL± only; detaches all its edges *)

type t = {
  name : string;
  locality : n:int -> int;
  react : n:int -> palette:int -> View.t -> (Grid_graph.Graph.node * int) list;
      (** [view.target] is the point of change (for edge updates, one
          endpoint; the other is adjacent — or just detached).  The view
          shows the T-ball around the change in the {e current} graph,
          with current labels as outputs.  Returns relabelings to apply;
          nodes outside the ball are rejected. *)
}

type violation =
  | Improper of Grid_graph.Graph.node * Grid_graph.Graph.node
  | Unlabeled of Grid_graph.Graph.node
  | Out_of_palette of { node : Grid_graph.Graph.node; color : int }
  | Nonlocal_relabel of { change : Grid_graph.Graph.node; node : Grid_graph.Graph.node }

type outcome = {
  violation : (int * violation) option;  (** step index and first violation *)
  labels : (Grid_graph.Graph.node * int) list;  (** final labeling of live nodes *)
  steps : int;
  relabelings : int;  (** total label writes performed by the algorithm *)
}

val pp_violation : Format.formatter -> violation -> unit

val run :
  ?allow_deletions:bool ->
  n_hint:int ->
  palette:int ->
  algorithm:t ->
  updates:update list ->
  unit ->
  outcome
(** Drive the algorithm through the update sequence.  [n_hint] is the
    final node count announced to the algorithm (models know [n]);
    [allow_deletions:false] (the default, plain Dynamic-LOCAL) makes
    deletion updates raise [Invalid_argument].  Stops at the first
    violation. *)

val greedy_repair : t
(** Locality-1 maintenance: label the changed node (or the endpoint of a
    new conflicting edge) with the smallest color absent from its
    neighborhood; answers color 0 when stuck.  Maintains a proper
    (Delta+1)-coloring under arbitrary updates — the dynamic counterpart
    of SLOCAL greedy. *)

val bfs_repair : radius:int -> t
(** Conflict repair by local search: if the change created a conflict,
    recolor greedily outward within the given radius.  Stronger than
    {!greedy_repair} on tight palettes, still defeated in principle at
    radius o(log n) on grids (Corollary 1.2). *)

val incremental_grid_updates : Topology.Grid2d.t -> order:Grid_graph.Graph.node list -> update list
(** Build a grid node-by-node in the given order: each update inserts
    one grid node with edges to its already-inserted neighbors.  Handles
    in the updates coincide with positions in [order]; use
    {!relabel_to_host} to map back. *)

val relabel_to_host :
  order:Grid_graph.Graph.node list -> (Grid_graph.Graph.node * int) list ->
  (Grid_graph.Graph.node * int) list
(** Translate dynamic handles (insertion ranks) back to host nodes. *)
