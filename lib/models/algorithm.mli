(** Online-LOCAL algorithms.

    An algorithm is instantiated once per run — the instance is a closure
    whose captured state is the model's unbounded {e global memory}.  At
    every step the executor hands it the current {!View.t} and the
    instance must return a color in [{0 .. palette-1}] for
    [view.target]. *)

type instance = View.t -> int

type t = {
  name : string;
  locality : n:int -> int;
      (** the locality [T(n)]; executors reveal [B(v, T)] per presented
          node (plus the oracle radius when an oracle is in play) *)
  pure : bool;
      (** replayable: the instance keeps no mutable state across calls
          and its answer is a deterministic function of the view and
          any (deterministic) oracle — so a call whose observable
          history matches an earlier run's may be answered from the
          memo cache ({!Canon.Memo}).  Stateful algorithms must be
          [false]: skipping a call would desynchronise their memory. *)
  instantiate : n:int -> palette:int -> oracle:Oracle.t option -> instance;
      (** fresh mutable state for one run.  Algorithms that need an
          oracle should fail fast ([invalid_arg]) when given [None]. *)
}

val stateless : ?pure:bool -> name:string -> locality:(n:int -> int) -> (View.t -> int) -> t
(** An algorithm with no global memory (every SLOCAL algorithm is one).
    [pure] defaults to [true] — pass [false] for a stateless wrapper
    whose answers still depend on more than the run's own history
    (wall clock, global randomness, cross-run mutable tables). *)

val greedy_first_fit : t
(** The locality-1 greedy: the smallest palette color not used by an
    already-output neighbor, or color 0 when stuck (which then shows up
    as a monochromatic edge — greedy cannot refuse to answer).  This is
    the classic SLOCAL (degree+1)-coloring specialised to a fixed
    palette, and the first victim of every adversary in this library. *)

val hint_parity : t
(** Colors by coordinate parity taken from grid hints, using colors
    [{0, 1}]: [(row + col) mod 2] within the component frame.  Proper on
    a simple grid as long as the adversary never flips a frame's parity
    under it — which deferred-placement adversaries do at will.  A
    deliberately naive baseline. *)
