(** The partition oracle [O] of Section 5.1.2.

    For a graph with a locally inferable unique k-coloring of radius [l]
    (Definition 1.4), the oracle maps any connected set [C] of revealed
    handles to the unique k-partition of [C], with part indices
    canonicalized per query (the part of the smallest handle is 0, the
    next distinct part is 1, and so on).  Canonicalization matters: the
    oracle must not leak a globally consistent part labeling, only the
    partition up to permutation — exactly what Definition 1.4 offers.

    Implementing the oracle costs an extra [l] locality; executors
    account for it by revealing balls of radius [locality + radius]. *)

type t = {
  parts : int;  (** k *)
  radius : int;  (** l *)
  query : View.t -> Grid_graph.Graph.node list -> int array;
      (** [query view c] assigns a part in [{0..k-1}] to each handle of
          the connected set [c] (result indexed like the input list). *)
}

val canonicalize : int array -> Grid_graph.Graph.node list -> int array
(** Rename raw part indices so that, scanning the handle list by
    increasing handle, the first part seen is 0, the second is 1, ...
    [canonicalize raw handles] is indexed like [handles], whose raw part
    of [handles.(i)] is [raw.(i)]. *)

val of_canonical_coloring :
  parts:int -> radius:int -> to_host:(Grid_graph.Graph.node -> Grid_graph.Graph.node) ->
  host_coloring:int array -> t
(** The standard construction: the host topology has a canonical proper
    k-coloring whose partition is the unique one; the oracle restricts
    it to the queried set and canonicalizes.  [to_host] maps view
    handles to host nodes (supplied by the executor). *)

val bipartition : t
(** The radius-0 oracle for connected bipartite graphs: 2-color the
    queried set inside the revealed region itself.  Correct whenever the
    revealed region's components are connected bipartite subgraphs of a
    bipartite host — no host access needed.
    @raise Invalid_argument at query time if the set is not connected or
    not bipartite in the revealed region. *)
