(** Identifier assignment schemes.

    Both models let the adversary choose the unique identifiers from
    [{1 .. poly(n)}] (Section 2.2).  Executors take an [ids] function;
    these are the stock choices, including adversarial ones that stress
    identifier-dependent algorithms such as Cole-Vishkin. *)

val sequential : Grid_graph.Graph.node -> int
(** [v + 1] — the executors' default. *)

val salted : seed:int -> n:int -> Grid_graph.Graph.node -> int
(** A seeded pseudo-random permutation-ish injection into [{1 .. n^3}]:
    distinct nodes get distinct identifiers (collisions resolved
    deterministically), with no correlation to adjacency. *)

val reversed : n:int -> Grid_graph.Graph.node -> int
(** [n - v] — descending, for order-sensitivity tests. *)

val all_distinct : (Grid_graph.Graph.node -> int) -> n:int -> bool
(** Sanity check used by the tests: the scheme is injective on [0..n-1]
    and positive. *)
