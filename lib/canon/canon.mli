(** Canonical labeling for vertex-colored graphs.

    Pure-OCaml refinement + targeted individualization — no C stub.
    Revealed views in the online-LOCAL games are small (tens to a few
    thousand nodes), so an exponential-worst-case search with good
    refinement is the right trade: on path/grid-shaped views the 1-WL
    refinement discretizes after at most a couple of individualization
    steps.

    Two isomorphic colored graphs (a bijection of vertices preserving
    both adjacency and vertex colors) get the {e same} {!key}; two
    non-isomorphic ones get different keys.  The {!certificate} is the
    witnessing relabeling into canonical positions, so cached responses
    can be transported back to concrete handles.

    Colors are semantic: they encode whatever per-vertex decoration must
    be respected by the isomorphism (partial coloring outputs, the
    current target, hint classes, ...).  Callers build the color ints
    with an injective encoding — see {!Memo} and [bin/exhaust.ml]. *)

type graph = {
  n : int;
  adj : int array array;  (** [adj.(v)] sorted ascending, no self loops *)
  colors : int array;  (** semantic vertex colors, arbitrary ints *)
}

val make : n:int -> edges:(int * int) list -> colors:int array -> graph
(** Build a graph from an edge list.  Ignores self loops, deduplicates
    parallel edges, rejects out-of-range endpoints and a [colors] array
    of length other than [n]. *)

val of_graph : Grid_graph.Graph.t -> colors:(int -> int) -> graph
(** Adapt an immutable {!Grid_graph.Graph}; [colors v] decorates
    vertex [v]. *)

val of_dyn : Grid_graph.Dyn_graph.t -> colors:(int -> int) -> graph
(** Adapt a {!Grid_graph.Dyn_graph} snapshot (handles [0..n-1]). *)

val certificate : graph -> int array
(** [certificate g] is a permutation [p] with [p.(v)] the canonical
    position of vertex [v]: [transport (certificate g) g = canon g],
    and two isomorphic graphs transport to the {e same} graph. *)

val transport : int array -> graph -> graph
(** [transport p g] relabels [g] by [p] ([p.(v)] is the new name of
    [v]).  Rejects non-permutations. *)

val canon : graph -> graph
(** The canonical form: [transport (certificate g) g].  Isomorphic
    inputs have equal (structurally equal) canonical forms. *)

val key : graph -> string
(** Compact printable serialization of {!canon} — equal exactly on
    color-isomorphic graphs.  Format (documented in
    [lib/canon/README.md]): ["n;c0,c1,...;a-b,a-b,..."] with colors in
    canonical vertex order and edges sorted. *)

val digest : graph -> string
(** MD5 hex of {!key} — fixed-width key for cache tables. *)

val iso_equal : graph -> graph -> bool
(** [iso_equal a b]: color-preserving isomorphism test via key
    equality. *)

val refine_classes : graph -> int array
(** The stable 1-WL color partition (exposed for tests): class indices
    in [0..k-1], isomorphism-invariant, fixpoint of signature
    refinement starting from the vertex colors.  Not necessarily
    discrete — {!certificate} individualizes on top of it. *)

(** Cross-cell memo cache — see {!Canon_memo}. *)
module Memo = Canon_memo
