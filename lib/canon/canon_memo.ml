type ctx = {
  mutable chain : string;  (* MD5 hex of the folded history *)
  mutable charge : unit -> unit;
  pure : bool;
}

let seed = Digest.to_hex (Digest.string "canon-memo-v1")
let create ?(charge = fun () -> ()) ~pure () = { chain = seed; charge; pure }
let set_charge ctx f = ctx.charge <- f

let pure ctx = ctx.pure
let chain ctx = ctx.chain
let fold ctx s = ctx.chain <- Digest.to_hex (Digest.string (ctx.chain ^ s))

(* Each executor run restarts the chain from the seed before folding its
   header: two runs with identical headers and histories then share step
   keys even when the same ctx hosted an earlier run (thm2/thm3's probe
   host replays its prefix as cache hits), and identical cells on the
   same domain hit across a sweep. *)
let begin_run ctx header =
  ctx.chain <- seed;
  fold ctx header
let step_key ctx suffix = Digest.to_hex (Digest.string (ctx.chain ^ suffix))
let charge ctx = ctx.charge ()

(* Per-domain tables: per process, never checkpointed.  Capped so a
   giant campaign can't grow without bound; a reset only costs future
   hits, never correctness. *)
let cap = 1 lsl 20

let step_tbl : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let note_hit kind key =
  if Obs.Metrics.on () then Obs.Metrics.incr ("canon." ^ kind ^ ".hit");
  if Obs.Trace.on () then Obs.Trace.emit (Obs.Trace.Canon_hit { kind; key })

let note_miss kind =
  if Obs.Metrics.on () then Obs.Metrics.incr ("canon." ^ kind ^ ".miss")

let find ctx key =
  if not ctx.pure then None
  else begin
    let tbl = Domain.DLS.get step_tbl in
    match Hashtbl.find_opt tbl key with
    | Some c ->
        note_hit "step" key;
        Some c
    | None ->
        note_miss "step";
        None
  end

let add ctx key color =
  if ctx.pure then begin
    let tbl = Domain.DLS.get step_tbl in
    if Hashtbl.length tbl >= cap then Hashtbl.reset tbl;
    Hashtbl.replace tbl key color
  end

let note_hit ~kind ~key = note_hit kind key
let note_miss ~kind = note_miss kind
let reset () = Hashtbl.reset (Domain.DLS.get step_tbl)
