type graph = { n : int; adj : int array array; colors : int array }

let make ~n ~edges ~colors =
  if Array.length colors <> n then
    invalid_arg "Canon.make: colors length must equal n";
  let sets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Canon.make: edge endpoint out of range";
      if u <> v then begin
        sets.(u) <- v :: sets.(u);
        sets.(v) <- u :: sets.(v)
      end)
    edges;
  let adj =
    Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) sets
  in
  { n; adj; colors = Array.copy colors }

let of_graph g ~colors =
  let n = Grid_graph.Graph.n g in
  let adj =
    Array.init n (fun v ->
        let a = Array.copy (Grid_graph.Graph.neighbors g v) in
        Array.sort compare a;
        a)
  in
  { n; adj; colors = Array.init n colors }

let of_dyn g ~colors =
  let n = Grid_graph.Dyn_graph.n g in
  let adj =
    Array.init n (fun v ->
        Array.of_list
          (List.sort_uniq compare (Grid_graph.Dyn_graph.neighbors g v)))
  in
  { n; adj; colors = Array.init n colors }

(* Rank an array of signatures by sorted signature order: the result
   assigns each vertex the index of its signature among the distinct
   signatures sorted ascending.  Ranking by signature *value* (not first
   occurrence) is what makes the refinement isomorphism-invariant. *)
let rank (sigs : 'a array) : int array * int =
  let distinct = List.sort_uniq compare (Array.to_list sigs) in
  let tbl = Hashtbl.create (List.length distinct) in
  List.iteri (fun i s -> Hashtbl.replace tbl s i) distinct;
  (Array.map (fun s -> Hashtbl.find tbl s) sigs, List.length distinct)

(* 1-WL refinement to fixpoint.  [classes] holds arbitrary int class
   values; the result is a re-ranked partition in [0..k-1] that no
   signature round can split further.  The partition only ever refines
   (same class + same neighbor multiset => same new class), so we stop
   as soon as the distinct count stops growing. *)
let refine g classes =
  let classes, k = rank classes in
  let classes = ref classes and k = ref k in
  let continue_ = ref true in
  while !continue_ do
    let cur = !classes in
    let sigs =
      Array.init g.n (fun v ->
          ( cur.(v),
            List.sort compare
              (Array.to_list (Array.map (fun w -> cur.(w)) g.adj.(v))) ))
    in
    let next, k' = rank sigs in
    if k' = !k then continue_ := false
    else begin
      classes := next;
      k := k'
    end
  done;
  (!classes, !k)

let refine_classes g = fst (refine g (Array.copy g.colors))

(* Smallest class index that still has >= 2 members, with its member
   list in ascending vertex order; None when the partition is discrete.
   The choice is made on class *index*, which is isomorphism-invariant. *)
let target_cell g classes k =
  if k = g.n then None
  else begin
    let count = Array.make k 0 in
    Array.iter (fun c -> count.(c) <- count.(c) + 1) classes;
    let rec first c = if count.(c) >= 2 then c else first (c + 1) in
    let cell = first 0 in
    let members = ref [] in
    for v = g.n - 1 downto 0 do
      if classes.(v) = cell then members := v :: !members
    done;
    Some !members
  end

let transport p g =
  let n = g.n in
  if Array.length p <> n then invalid_arg "Canon.transport: size mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Canon.transport: not a permutation";
      seen.(i) <- true)
    p;
  let colors = Array.make n 0 in
  let adj = Array.make n [||] in
  for v = 0 to n - 1 do
    colors.(p.(v)) <- g.colors.(v);
    adj.(p.(v)) <- Array.map (fun w -> p.(w)) g.adj.(v)
  done;
  Array.iter (fun a -> Array.sort compare a) adj;
  { n; adj; colors }

let serialize g =
  let b = Buffer.create (16 + (4 * g.n)) in
  Buffer.add_string b (string_of_int g.n);
  Buffer.add_char b ';';
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int c))
    g.colors;
  Buffer.add_char b ';';
  let first = ref true in
  Array.iteri
    (fun v nbrs ->
      Array.iter
        (fun w ->
          if v < w then begin
            if !first then first := false else Buffer.add_char b ',';
            Buffer.add_string b (string_of_int v);
            Buffer.add_char b '-';
            Buffer.add_string b (string_of_int w)
          end)
        nbrs)
    g.adj;
  Buffer.contents b

(* Individualization-refinement search: refine; if the partition is
   discrete it IS a permutation into canonical positions — keep the
   lexicographically smallest serialized form over all branches.
   Branching individualizes every member of the invariantly-chosen
   target cell, which is what makes the minimum canonical. *)
let search g =
  let best = ref None in
  let rec go classes =
    let classes, k = refine g classes in
    match target_cell g classes k with
    | None ->
        let s = serialize (transport classes g) in
        (match !best with
        | Some (s0, _) when s0 <= s -> ()
        | _ -> best := Some (s, Array.copy classes))
    | Some members ->
        List.iter
          (fun v ->
            let c = Array.copy classes in
            c.(v) <- g.n;
            go c)
          members
  in
  go (Array.copy g.colors);
  match !best with Some r -> r | None -> assert false

let certificate g =
  if g.n = 0 then [||] else snd (search g)

let canon g = if g.n = 0 then g else transport (snd (search g)) g
let key g = if g.n = 0 then "0;;" else fst (search g)
let digest g = Digest.to_hex (Digest.string (key g))
let iso_equal a b = a.n = b.n && String.equal (key a) (key b)

module Memo = Canon_memo
