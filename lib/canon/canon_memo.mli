(** Cross-cell memo cache for executor steps and adversary reports.

    {2 What is cached, and why it is sound}

    The step cache does {e not} key on a canonical form of the whole
    revealed region (canonicalizing the region on every present would
    cost more than the algorithm call it saves).  It keys on an
    {e incremental chain digest} of the run's concrete observable
    history: the executor folds every observable input (host
    fingerprint, palette, radius, algorithm name, each presentation's
    coordinates/ids/hints, every merge/reflect commitment) and every
    answered color into an MD5 chain.  Equal chains therefore mean
    byte-identical observable histories — the next view is the same
    view, so replaying the cached answer is sound for any
    {e deterministic, stateless} algorithm.  The {!Canon} key proper is
    used where up-to-isomorphism collapse is load-bearing:
    [bin/exhaust.exe], the [canon-relabel] fuzz target, and the game
    cache below.

    Only algorithms marked [pure] (see {!Models.Algorithm.t}) are ever
    skipped; stateful instances always run live.  Skipped calls charge
    the guard meter through the {!ctx}'s [charge] hook so budgets,
    deadlines and the reported [color_calls] stay byte-identical to a
    memo-off run.

    {2 Process locality}

    Tables live in {!Domain.DLS} — per domain, per process, never
    checkpointed and never shipped across the supervisor wire.  A
    resumed or process-isolated run starts cold; only wall-clock
    changes, never output.  Hit/miss counters ([canon.step.hit], ...)
    are {e telemetry}, exempt from the metrics jobs-invariance contract
    (hits depend on how cells were packed onto domains); CI never
    byte-diffs metrics of a [--memo] run. *)

type ctx
(** Per-run memo context: the chain digest plus the guard charge hook. *)

val create : ?charge:(unit -> unit) -> pure:bool -> unit -> ctx
(** [charge] mirrors one guarded color call's accounting (budget check,
    deadline check, meters) without running the instance; default
    no-op for unguarded runs.  [pure] gates skipping: when false the
    context still folds (cheap) but {!find} always misses and
    {!add} never stores. *)

val set_charge : ctx -> (unit -> unit) -> unit
(** Late-bind the charge hook — [Game.referee] installs its guard's
    {!Harness.Guard.charge} here after the guard exists. *)

val pure : ctx -> bool

val fold : ctx -> string -> unit
(** Extend the chain digest with one observable delta. *)

val begin_run : ctx -> string -> unit
(** Reset the chain to the seed, then fold [header] — called by an
    executor at run start.  The reset is what lets a probe-and-replay
    adversary (thm2/thm3) replay its probe prefix as cache hits, and
    identical cells hit across a sweep on the same domain. *)

val chain : ctx -> string
(** Current chain digest (MD5 hex). *)

val step_key : ctx -> string -> string
(** [step_key ctx suffix]: the cache key for the call about to happen —
    digest of chain + suffix.  Does not advance the chain. *)

val find : ctx -> string -> int option
(** Cache lookup; bumps [canon.step.hit]/[canon.step.miss] and emits a
    [Canon_hit] trace event on hit.  Always [None] for impure
    contexts. *)

val add : ctx -> string -> int -> unit
(** Record an answered color under a step key (no-op when impure). *)

val charge : ctx -> unit
(** Invoke the guard charge hook (call exactly once per skipped call). *)

val note_hit : kind:string -> key:string -> unit
(** Bump [canon.<kind>.hit] and emit a [Canon_hit] trace event — for
    cache layers that keep their own (typed) tables, e.g. the
    game-level report cache in [Jobs_catalog]. *)

val note_miss : kind:string -> unit

val reset : unit -> unit
(** Drop this domain's step table (tests). *)
