(** A domain-safe metrics registry: counters, max-gauges and log2
    histograms, {e sharded per domain} and merged at {!drain}.

    Each domain that records a metric gets its own private shard (via
    [Domain.DLS]), so the hot path takes no lock and never contends;
    shards register themselves in a global list at creation, so {!drain}
    can merge shards of domains that have since terminated (a [Pool]
    worker's counts survive the worker).

    {2 Determinism contract}

    Every merge operation is commutative and associative over integers —
    counters add, gauges max, histogram buckets add — and {!drain} sorts
    names, so the merged snapshot is {e byte-identical} however the work
    was distributed: a fixed sweep drains the same totals at [--jobs 1]
    and [--jobs 4] (CI asserts exactly this).  Keep wall-clock and
    jobs-count-dependent values out of the registry; they belong in the
    {!Trace}, which makes no such promise.

    {2 Overhead contract}

    Disabled ({!on} false, the default), every recording function is one
    atomic load and a branch — no allocation, no table lookup.  Callers
    pass literal metric names so the disabled path stays allocation-free. *)

type hist = {
  count : int;  (** number of observations *)
  sum : int;
  max_value : int;
  buckets : int array;
      (** [buckets.(b)] counts observations [v] with
          [bucket_of v = b]; see {!bucket_of} *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name; max-merged *)
  hists : (string * hist) list;  (** sorted by name *)
}

val bucket_of : int -> int
(** Log2 bucketing: 0 for values [<= 0], otherwise the bit length of the
    value — [1] for 1, [2] for 2..3, [3] for 4..7, and so on.  Exposed so
    report renderers label bucket ranges consistently. *)

val bucket_lo : int -> int
(** Smallest value in a bucket: [bucket_lo (bucket_of v) <= v]. *)

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Discard every shard (including shards cached by live domains — they
    re-register lazily on next use). *)

val incr : string -> unit
(** Add 1 to a counter. *)

val add : string -> int -> unit
(** Add an arbitrary amount to a counter. *)

val gauge_max : string -> int -> unit
(** Raise a gauge to at least the given value (max-merge across shards —
    the only gauge semantics that stays deterministic under
    parallelism). *)

val observe : string -> int -> unit
(** Record one observation into a histogram. *)

val drain : unit -> snapshot
(** Merge all shards into one snapshot, names sorted.  Does not reset.
    Call it from the main domain after the parallel section; recording
    concurrent with a drain may or may not be included. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable registry dump, stable formatting (the CI determinism
    diff runs over this output). *)

val snapshot_to_json : snapshot -> Json.t
