type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------ printer ------------------------------ *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
    (* non-finite values have no JSON spelling; degrade to null *)
  else begin
    let s = Printf.sprintf "%.6f" f in
    (* Trim trailing zeros but keep one decimal, so a float stays a
       float on reparse and re-emission is byte-stable. *)
    let stop = ref (String.length s) in
    while !stop > 1 && s.[!stop - 1] = '0' && s.[!stop - 2] <> '.' do
      decr stop
    done;
    String.sub s 0 !stop
  end

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> add_escaped b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------ parser ------------------------------ *)

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some got when got = c -> st.pos <- st.pos + 1
  | Some got -> error st (Printf.sprintf "expected %c, found %c" c got)
  | None -> error st (Printf.sprintf "expected %c, found end of input" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else error st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  error st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some code -> code
                  | None -> error st ("bad \\u escape " ^ hex)
                in
                st.pos <- st.pos + 4;
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  (* 2-byte UTF-8; the emitter only produces \u00xx but
                     accept the full BMP on input. *)
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> error st (Printf.sprintf "bad escape \\%c" c)));
        go ()
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let body = String.sub st.src start (st.pos - start) in
  let is_float =
    String.exists (function '.' | 'e' | 'E' -> true | _ -> false) body
  in
  if is_float then
    match float_of_string_opt body with
    | Some f -> Float f
    | None -> error st ("bad number " ^ body)
  else
    match int_of_string_opt body with
    | Some n -> Int n
    | None -> error st ("bad number " ^ body)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "expected a value, found end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> error st "expected , or ] in array"
        in
        List (items [])
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields (f :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev (f :: acc)
          | _ -> error st "expected , or } in object"
        in
        Obj (fields [])
      end
  | Some c -> error st (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing input after value";
  v

(* ----------------------------- accessors ----------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
