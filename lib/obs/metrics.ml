type hist = { count : int; sum : int; max_value : int; buckets : int array }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * hist) list;
}

(* 63 buckets cover every nonnegative OCaml int. *)
let n_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and n = ref v in
    while !n > 0 do
      incr b;
      n := !n lsr 1
    done;
    !b
  end

let bucket_lo b = if b <= 0 then 0 else 1 lsl (b - 1)

type hist_acc = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_buckets : int array;
}

type shard = {
  s_counters : (string, int ref) Hashtbl.t;
  s_gauges : (string, int ref) Hashtbl.t;
  s_hists : (string, hist_acc) Hashtbl.t;
  s_epoch : int;
}

let enabled = Atomic.make false
let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* Shards are domain-private for lock-free recording, but registered in
   this global list at creation so [drain] can still merge the shard of
   a worker domain that has since terminated. *)
let registry : shard list ref = ref []
let registry_mutex = Mutex.create ()

(* Bumped by [reset]: live domains holding a stale cached shard detect
   the epoch mismatch and re-register a fresh one on next use. *)
let epoch = Atomic.make 0

let shard_key : shard option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let shard () =
  let cell = Domain.DLS.get shard_key in
  match !cell with
  | Some s when s.s_epoch = Atomic.get epoch -> s
  | _ ->
      let s =
        {
          s_counters = Hashtbl.create 32;
          s_gauges = Hashtbl.create 16;
          s_hists = Hashtbl.create 16;
          s_epoch = Atomic.get epoch;
        }
      in
      Mutex.protect registry_mutex (fun () -> registry := s :: !registry);
      cell := Some s;
      s

let reset () =
  Atomic.incr epoch;
  Mutex.protect registry_mutex (fun () -> registry := [])

let add name by =
  if Atomic.get enabled then begin
    let s = shard () in
    match Hashtbl.find_opt s.s_counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace s.s_counters name (ref by)
  end

let incr name = add name 1

let gauge_max name v =
  if Atomic.get enabled then begin
    let s = shard () in
    match Hashtbl.find_opt s.s_gauges name with
    | Some r -> if v > !r then r := v
    | None -> Hashtbl.replace s.s_gauges name (ref v)
  end

let observe name v =
  if Atomic.get enabled then begin
    let s = shard () in
    let acc =
      match Hashtbl.find_opt s.s_hists name with
      | Some acc -> acc
      | None ->
          let acc =
            { h_count = 0; h_sum = 0; h_max = min_int; h_buckets = Array.make n_buckets 0 }
          in
          Hashtbl.replace s.s_hists name acc;
          acc
    in
    acc.h_count <- acc.h_count + 1;
    acc.h_sum <- acc.h_sum + v;
    if v > acc.h_max then acc.h_max <- v;
    let b = bucket_of v in
    acc.h_buckets.(b) <- acc.h_buckets.(b) + 1
  end

let drain () =
  let shards = Mutex.protect registry_mutex (fun () -> !registry) in
  let counters = Hashtbl.create 64 in
  let gauges = Hashtbl.create 32 in
  let hists = Hashtbl.create 32 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt counters name with
          | Some total -> Hashtbl.replace counters name (total + !r)
          | None -> Hashtbl.replace counters name !r)
        s.s_counters;
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt gauges name with
          | Some best -> if !r > best then Hashtbl.replace gauges name !r
          | None -> Hashtbl.replace gauges name !r)
        s.s_gauges;
      Hashtbl.iter
        (fun name acc ->
          match Hashtbl.find_opt hists name with
          | Some h ->
              Hashtbl.replace hists name
                {
                  count = h.count + acc.h_count;
                  sum = h.sum + acc.h_sum;
                  max_value = max h.max_value acc.h_max;
                  buckets = Array.mapi (fun i c -> c + acc.h_buckets.(i)) h.buckets;
                }
          | None ->
              Hashtbl.replace hists name
                {
                  count = acc.h_count;
                  sum = acc.h_sum;
                  max_value = acc.h_max;
                  buckets = Array.copy acc.h_buckets;
                })
        s.s_hists)
    shards;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { counters = sorted counters; gauges = sorted gauges; hists = sorted hists }

let pp ppf s =
  let section title = Format.fprintf ppf "%s:@." title in
  if s.counters <> [] then begin
    section "counters";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-44s %12d@." name v)
      s.counters
  end;
  if s.gauges <> [] then begin
    section "gauges (max)";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-44s %12d@." name v)
      s.gauges
  end;
  if s.hists <> [] then begin
    section "histograms";
    List.iter
      (fun (name, h) ->
        let mean =
          if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count
        in
        Format.fprintf ppf "  %-44s count=%d sum=%d max=%d mean=%.2f@." name
          h.count h.sum h.max_value mean;
        Array.iteri
          (fun b c ->
            if c > 0 then
              let lo = bucket_lo b in
              let hi = if b = 0 then 0 else (2 * lo) - 1 in
              Format.fprintf ppf "    [%d..%d] %d@." lo hi c)
          h.buckets)
      s.hists
  end;
  if s.counters = [] && s.gauges = [] && s.hists = [] then
    Format.fprintf ppf "(no metrics recorded)@."

let snapshot_to_json s =
  let hist_json h =
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum", Json.Int h.sum);
        ("max", Json.Int h.max_value);
        ( "buckets",
          Json.List
            (Array.to_list h.buckets
            |> List.mapi (fun b c -> (b, c))
            |> List.filter (fun (_, c) -> c > 0)
            |> List.map (fun (b, c) ->
                   Json.Obj [ ("lo", Json.Int (bucket_lo b)); ("count", Json.Int c) ]))
        );
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.gauges));
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) s.hists));
    ]
