(** Typed, low-overhead event tracing for the guarded game engine.

    A trace is a stream of newline-delimited JSON records written to one
    {e sink}.  Each record wraps one {!event} in an envelope:

    {v {"i":12,"w":0,"ts":0.00153,"ev":"step", ...event fields...} v}

    where [i] is a global emission index (total order over the whole
    trace — records are written to the file in [i] order), [w] is the
    id of the domain that emitted the event (so a reader can demultiplex
    per-worker streams: events with equal [w] are causally ordered), and
    [ts] is seconds since the sink was opened.

    {2 Overhead contract}

    With no sink installed, {!on} is a single atomic load and {!emit} is
    a no-op.  Instrumentation sites must guard event {e construction}
    behind {!on} — [if Trace.on () then Trace.emit (Step {...})] — so a
    disabled trace allocates nothing.  The [harness_overhead] bench pins
    this (BENCH_trace_overhead.json).

    {2 Concurrency}

    One sink serves every domain: records are appended under a mutex,
    whole lines at a time, so a trace written by a parallel sweep is
    still one valid NDJSON stream.  Event {e interleaving} across
    domains follows completion order and is not deterministic; determinism
    lives in {!Metrics}, whose merged totals are jobs-count-invariant.

    The first record of every trace is a {!Trace_header} carrying the
    format version ({!version}) and the emitting program's name. *)

val version : int
(** Trace format version, [5] (v2 added the supervisor child-lifecycle
    events; v3 the job-server events; v4 the memo-cache [Canon_hit]
    event; v5 the fleet-dispatch events and [Journal_corrupt]).
    Readers must reject newer versions rather than misparse them;
    older traces parse fine under a newer reader. *)

type event =
  | Trace_header of { version : int; program : string }
  | Cell_start of { key : string }  (** a sweep cell began executing *)
  | Cell_finish of { key : string; status : string }
      (** [status] is ["ok"], ["error"], or ["replayed"] (resumed from a
          checkpoint without re-running) *)
  | Checkpoint_flush of { key : string; bytes : int }
      (** one record appended and flushed to the checkpoint file *)
  | Worker_start of { index : int }  (** pool worker domain spawned *)
  | Worker_stop of { index : int; tasks : int }
      (** pool worker finished, having run [tasks] tasks *)
  | Game_start of {
      adversary : string;
      algorithm : string;
      n : int;
      max_color_calls : int option;
      max_work : int option;
      deadline : float option;
    }  (** a guarded game began, with its guard limits *)
  | Game_verdict of {
      adversary : string;
      algorithm : string;
      n : int;
      outcome : string;  (** [Game.outcome_label] *)
      guaranteed : bool;
      color_calls : int;  (** guard meter at verdict *)
      work : int;  (** guard meter at verdict *)
    }
  | Step of {
      executor : string;
      step : int;
      target : int;
      revealed : int;
      max_view : int;
    }  (** one presentation step, with cumulative run counters *)
  | Reveal of { executor : string; step : int; fresh : int; revealed : int }
      (** the ball revealed at a step: [fresh] new nodes, [revealed]
          total *)
  | Color_call of { calls : int; work : int }
      (** guard-meter snapshot at a color call *)
  | Audit of { executor : string; ok : bool; detail : string }
      (** transcript audit result (end-of-run violation scan, or a
          [--validate]/[--paranoid] replay check) *)
  | Fault_injected of { tag : string; call : int }
      (** a [Harness.Faults] combinator actually fired *)
  | Misbehavior of { label : string; detail : string }
      (** a guard recorded its first misbehavior certificate *)
  | Child_spawn of { key : string; pid : int; attempt : int }
      (** the supervisor forked a worker process for a cell ([attempt]
          is 0 for the first try) *)
  | Child_heartbeat of { key : string; pid : int }
      (** a liveness byte arrived from a worker process *)
  | Child_kill of { key : string; pid : int; signal : string; elapsed : float }
      (** the watchdog sent [signal] (["sigterm"] or ["sigkill"]) after
          [elapsed] seconds of cell wall-clock *)
  | Child_exit of {
      key : string;
      pid : int;
      status : string;  (** ["exit:N"] or ["signal:NAME"] *)
      cpu_user : float;  (** child user CPU seconds, from [Unix.times] *)
      cpu_sys : float;  (** child system CPU seconds *)
    }  (** a worker process was reaped *)
  | Cell_retry of { key : string; attempt : int; delay : float }
      (** a failed cell was rescheduled: [attempt] is the upcoming try
          (1-based), [delay] the seeded backoff in seconds *)
  | Cell_quarantined of { key : string; attempts : int; reason : string }
      (** a cell exhausted its retry budget and was quarantined *)
  | Server_start of { socket : string; jobs : int; queue_limit : int }
      (** the job server opened its front door *)
  | Conn_open of { conn : int }  (** a client connection was accepted *)
  | Conn_close of { conn : int; reason : string }
      (** a client connection ended; [reason] is ["eof"], ["error"],
          ["protocol"], or a chaos-injection tag *)
  | Job_submit of { id : string; kind : string; disposition : string }
      (** a submit frame was admitted; [disposition] is ["new"] (fresh
          job), ["inflight"] (duplicate of a queued/running job — the
          connection attached as a waiter), or ["cached"] (duplicate of
          a finished job — the recorded result was replayed) *)
  | Job_reject of { id : string; queued : int; limit : int }
      (** the admission queue was full: the submit was answered with a
          typed rejection instead of unbounded memory *)
  | Job_start of { id : string; attempt : int }
      (** a job began executing ([attempt] is 0 for the first try) *)
  | Job_done of { id : string; status : string }
      (** a job reached its terminal result; [status] is ["ok"],
          ["error"], or ["quarantined"] *)
  | Server_drain of { queued : int; running : int }
      (** SIGTERM: the server stopped accepting, with this many jobs
          still queued (journaled for restart) and running (finished
          before exit) *)
  | Chaos_injected of { kind : string }
      (** the [--chaos] harness fired one injection: ["drop_conn"],
          ["partial_frame"], ["truncate_frame"], or ["kill_child"] *)
  | Canon_hit of { kind : string; key : string }
      (** the canonical-view memo cache answered from cache: [kind] is
          ["step"] (one skipped color call) or ["game"] (a whole cached
          adversary report); [key] is the cache key (an MD5 chain digest
          or resolved cell parameters) *)
  | Journal_corrupt of { path : string; line : int; reason : string }
      (** a checkpoint/journal record failed its v2 CRC/length check and
          was skipped on load ([line] is 1-based); the affected cell or
          job reruns instead of replaying corrupted bytes *)
  | Fleet_start of { endpoints : int; jobs : int; shard_seed : int }
      (** a fleet campaign opened against [endpoints] servers *)
  | Endpoint_state of { endpoint : string; state : string }
      (** an endpoint changed state: ["up"], ["unreachable"],
          ["draining"], ["breaker_open"], or ["down"] *)
  | Failover of { id : string; src : string; dst : string }
      (** job [id] was resubmitted from a failed endpoint [src] to [dst]
          under its content-derived id (the dedup layer makes the retry
          exactly-once) *)
  | Rebalance of { moved : int; src : string; dst : string }
      (** [moved] not-yet-submitted jobs migrated from a deep queue to a
          shallow one, guided by depth probes *)
  | Fleet_verdict of {
      verdict : string;
      results : int;
      failovers : int;
      duplicates : int;
    }
      (** campaign end: [verdict] is ["FULL"] (every endpoint healthy
          throughout) or ["DEGRADED reason"]; [duplicates] counts
          redundant result deliveries that were deduplicated *)

type record = { i : int; w : int; ts : float; ev : event }

(** {2 Emission} *)

val on : unit -> bool
(** Whether a sink {e or hook} is installed — the cheap gate every
    instrumentation site checks before constructing an event. *)

val emit : event -> unit
(** Append one record to the installed sink, then hand it to the
    installed hook (no-op without either).  Safe from any domain. *)

val set_hook : (event -> unit) option -> unit
(** Install a secondary in-process event consumer, called after the
    NDJSON sink.  This is how {!Flight} taps the event stream without
    the sites knowing about it; one slot, last set wins. *)

val detach_in_child : unit -> unit
(** Drop the installed sink and hook {e in this process} without
    closing anything.
    Must be the first thing a forked child calls: the child inherits the
    parent's buffered [out_channel], and any emission (or buffer flush
    at exit) would corrupt the parent's NDJSON stream.  Children must
    also terminate via [Unix._exit], which skips [at_exit] flushing of
    inherited buffers. *)

val with_sink : ?program:string -> path:string -> (unit -> 'a) -> 'a
(** Open [path], write the {!Trace_header}, install the sink for the
    duration of the callback, then flush, close and uninstall — also on
    exception.  Nesting is not supported: a sink installed while another
    is active raises [Invalid_argument]. *)

val with_sink_opt : ?program:string -> string option -> (unit -> 'a) -> 'a
(** [with_sink_opt None f] is [f ()]; [with_sink_opt (Some path) f] is
    [with_sink ~path f] — the shape every [--trace FILE] flag needs. *)

(** {2 Codec} *)

val record_to_json : record -> Json.t
val record_to_string : record -> string
(** One canonical NDJSON line, without the trailing newline. *)

val record_of_json : Json.t -> record
(** @raise Json.Parse_error on envelopes or events this version does not
    understand (including a [Trace_header] with a newer [version]). *)

val read_file : string -> record list
(** Parse a whole trace, strictly: any malformed line raises
    [Json.Parse_error] naming the line number.  The header is a record
    like any other; {!record_of_json} has already rejected incompatible
    versions. *)
