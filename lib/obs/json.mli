(** A minimal JSON tree with a {e canonical} printer, sufficient for the
    NDJSON trace format and the bench records — no external dependency.

    Canonical means: no whitespace, object fields in the order given,
    strings escaped with the shortest standard escape, and floats
    printed as fixed-point with up to six decimals, trailing zeros
    trimmed (one decimal always kept, so a float never reads back as an
    integer).  Because the printer is canonical,
    [to_string (of_string (to_string v)) = to_string v] holds for every
    value the library itself produced — the byte-identity the trace
    round-trip test pins. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Carries a human-readable position and cause. *)

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val of_string : string -> t
(** Parse one JSON value; trailing input (other than whitespace) is an
    error.  Numbers without ['.'], ['e'] or ['E'] parse as {!Int}.
    @raise Parse_error on malformed input. *)

(** {2 Accessors} — total lookups for the trace reader. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] on missing
    keys and non-objects. *)

val to_int_opt : t -> int option
(** [Int n] gives [Some n]; everything else [None]. *)

val to_float_opt : t -> float option
(** [Float f] and [Int n] both succeed — JSON does not distinguish. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
