let version = 5

type event =
  | Trace_header of { version : int; program : string }
  | Cell_start of { key : string }
  | Cell_finish of { key : string; status : string }
  | Checkpoint_flush of { key : string; bytes : int }
  | Worker_start of { index : int }
  | Worker_stop of { index : int; tasks : int }
  | Game_start of {
      adversary : string;
      algorithm : string;
      n : int;
      max_color_calls : int option;
      max_work : int option;
      deadline : float option;
    }
  | Game_verdict of {
      adversary : string;
      algorithm : string;
      n : int;
      outcome : string;
      guaranteed : bool;
      color_calls : int;
      work : int;
    }
  | Step of {
      executor : string;
      step : int;
      target : int;
      revealed : int;
      max_view : int;
    }
  | Reveal of { executor : string; step : int; fresh : int; revealed : int }
  | Color_call of { calls : int; work : int }
  | Audit of { executor : string; ok : bool; detail : string }
  | Fault_injected of { tag : string; call : int }
  | Misbehavior of { label : string; detail : string }
  | Child_spawn of { key : string; pid : int; attempt : int }
  | Child_heartbeat of { key : string; pid : int }
  | Child_kill of { key : string; pid : int; signal : string; elapsed : float }
  | Child_exit of {
      key : string;
      pid : int;
      status : string;
      cpu_user : float;
      cpu_sys : float;
    }
  | Cell_retry of { key : string; attempt : int; delay : float }
  | Cell_quarantined of { key : string; attempts : int; reason : string }
  | Server_start of { socket : string; jobs : int; queue_limit : int }
  | Conn_open of { conn : int }
  | Conn_close of { conn : int; reason : string }
  | Job_submit of { id : string; kind : string; disposition : string }
  | Job_reject of { id : string; queued : int; limit : int }
  | Job_start of { id : string; attempt : int }
  | Job_done of { id : string; status : string }
  | Server_drain of { queued : int; running : int }
  | Chaos_injected of { kind : string }
  | Canon_hit of { kind : string; key : string }
  | Journal_corrupt of { path : string; line : int; reason : string }
  | Fleet_start of { endpoints : int; jobs : int; shard_seed : int }
  | Endpoint_state of { endpoint : string; state : string }
  | Failover of { id : string; src : string; dst : string }
  | Rebalance of { moved : int; src : string; dst : string }
  | Fleet_verdict of {
      verdict : string;
      results : int;
      failovers : int;
      duplicates : int;
    }

type record = { i : int; w : int; ts : float; ev : event }

(* ------------------------------- codec ------------------------------- *)

let opt_int = function None -> Json.Null | Some n -> Json.Int n
let opt_float = function None -> Json.Null | Some f -> Json.Float f

let event_fields = function
  | Trace_header { version; program } ->
      ("trace_header", [ ("version", Json.Int version); ("program", Json.String program) ])
  | Cell_start { key } -> ("cell_start", [ ("key", Json.String key) ])
  | Cell_finish { key; status } ->
      ("cell_finish", [ ("key", Json.String key); ("status", Json.String status) ])
  | Checkpoint_flush { key; bytes } ->
      ("checkpoint_flush", [ ("key", Json.String key); ("bytes", Json.Int bytes) ])
  | Worker_start { index } -> ("worker_start", [ ("index", Json.Int index) ])
  | Worker_stop { index; tasks } ->
      ("worker_stop", [ ("index", Json.Int index); ("tasks", Json.Int tasks) ])
  | Game_start { adversary; algorithm; n; max_color_calls; max_work; deadline } ->
      ( "game_start",
        [
          ("adversary", Json.String adversary);
          ("algorithm", Json.String algorithm);
          ("n", Json.Int n);
          ("max_color_calls", opt_int max_color_calls);
          ("max_work", opt_int max_work);
          ("deadline", opt_float deadline);
        ] )
  | Game_verdict { adversary; algorithm; n; outcome; guaranteed; color_calls; work } ->
      ( "game_verdict",
        [
          ("adversary", Json.String adversary);
          ("algorithm", Json.String algorithm);
          ("n", Json.Int n);
          ("outcome", Json.String outcome);
          ("guaranteed", Json.Bool guaranteed);
          ("color_calls", Json.Int color_calls);
          ("work", Json.Int work);
        ] )
  | Step { executor; step; target; revealed; max_view } ->
      ( "step",
        [
          ("executor", Json.String executor);
          ("step", Json.Int step);
          ("target", Json.Int target);
          ("revealed", Json.Int revealed);
          ("max_view", Json.Int max_view);
        ] )
  | Reveal { executor; step; fresh; revealed } ->
      ( "reveal",
        [
          ("executor", Json.String executor);
          ("step", Json.Int step);
          ("fresh", Json.Int fresh);
          ("revealed", Json.Int revealed);
        ] )
  | Color_call { calls; work } ->
      ("color_call", [ ("calls", Json.Int calls); ("work", Json.Int work) ])
  | Audit { executor; ok; detail } ->
      ( "audit",
        [
          ("executor", Json.String executor);
          ("ok", Json.Bool ok);
          ("detail", Json.String detail);
        ] )
  | Fault_injected { tag; call } ->
      ("fault_injected", [ ("tag", Json.String tag); ("call", Json.Int call) ])
  | Misbehavior { label; detail } ->
      ("misbehavior", [ ("label", Json.String label); ("detail", Json.String detail) ])
  | Child_spawn { key; pid; attempt } ->
      ( "child_spawn",
        [ ("key", Json.String key); ("pid", Json.Int pid); ("attempt", Json.Int attempt) ]
      )
  | Child_heartbeat { key; pid } ->
      ("child_heartbeat", [ ("key", Json.String key); ("pid", Json.Int pid) ])
  | Child_kill { key; pid; signal; elapsed } ->
      ( "child_kill",
        [
          ("key", Json.String key);
          ("pid", Json.Int pid);
          ("signal", Json.String signal);
          ("elapsed", Json.Float elapsed);
        ] )
  | Child_exit { key; pid; status; cpu_user; cpu_sys } ->
      ( "child_exit",
        [
          ("key", Json.String key);
          ("pid", Json.Int pid);
          ("status", Json.String status);
          ("cpu_user", Json.Float cpu_user);
          ("cpu_sys", Json.Float cpu_sys);
        ] )
  | Cell_retry { key; attempt; delay } ->
      ( "cell_retry",
        [
          ("key", Json.String key);
          ("attempt", Json.Int attempt);
          ("delay", Json.Float delay);
        ] )
  | Cell_quarantined { key; attempts; reason } ->
      ( "cell_quarantined",
        [
          ("key", Json.String key);
          ("attempts", Json.Int attempts);
          ("reason", Json.String reason);
        ] )
  | Server_start { socket; jobs; queue_limit } ->
      ( "server_start",
        [
          ("socket", Json.String socket);
          ("jobs", Json.Int jobs);
          ("queue_limit", Json.Int queue_limit);
        ] )
  | Conn_open { conn } -> ("conn_open", [ ("conn", Json.Int conn) ])
  | Conn_close { conn; reason } ->
      ("conn_close", [ ("conn", Json.Int conn); ("reason", Json.String reason) ])
  | Job_submit { id; kind; disposition } ->
      ( "job_submit",
        [
          ("id", Json.String id);
          ("kind", Json.String kind);
          ("disposition", Json.String disposition);
        ] )
  | Job_reject { id; queued; limit } ->
      ( "job_reject",
        [ ("id", Json.String id); ("queued", Json.Int queued); ("limit", Json.Int limit) ]
      )
  | Job_start { id; attempt } ->
      ("job_start", [ ("id", Json.String id); ("attempt", Json.Int attempt) ])
  | Job_done { id; status } ->
      ("job_done", [ ("id", Json.String id); ("status", Json.String status) ])
  | Server_drain { queued; running } ->
      ("server_drain", [ ("queued", Json.Int queued); ("running", Json.Int running) ])
  | Chaos_injected { kind } -> ("chaos_injected", [ ("kind", Json.String kind) ])
  | Canon_hit { kind; key } ->
      ("canon_hit", [ ("kind", Json.String kind); ("key", Json.String key) ])
  | Journal_corrupt { path; line; reason } ->
      ( "journal_corrupt",
        [
          ("path", Json.String path);
          ("line", Json.Int line);
          ("reason", Json.String reason);
        ] )
  | Fleet_start { endpoints; jobs; shard_seed } ->
      ( "fleet_start",
        [
          ("endpoints", Json.Int endpoints);
          ("jobs", Json.Int jobs);
          ("shard_seed", Json.Int shard_seed);
        ] )
  | Endpoint_state { endpoint; state } ->
      ( "endpoint_state",
        [ ("endpoint", Json.String endpoint); ("state", Json.String state) ] )
  | Failover { id; src; dst } ->
      ( "failover",
        [
          ("id", Json.String id);
          ("src", Json.String src);
          ("dst", Json.String dst);
        ] )
  | Rebalance { moved; src; dst } ->
      ( "rebalance",
        [
          ("moved", Json.Int moved);
          ("src", Json.String src);
          ("dst", Json.String dst);
        ] )
  | Fleet_verdict { verdict; results; failovers; duplicates } ->
      ( "fleet_verdict",
        [
          ("verdict", Json.String verdict);
          ("results", Json.Int results);
          ("failovers", Json.Int failovers);
          ("duplicates", Json.Int duplicates);
        ] )

let record_to_json r =
  let tag, fields = event_fields r.ev in
  Json.Obj
    (("i", Json.Int r.i)
    :: ("w", Json.Int r.w)
    :: ("ts", Json.Float r.ts)
    :: ("ev", Json.String tag)
    :: fields)

let record_to_string r = Json.to_string (record_to_json r)

let decode_error msg = raise (Json.Parse_error msg)

let req_int j k =
  match Json.to_int_opt (Option.value (Json.member k j) ~default:Json.Null) with
  | Some n -> n
  | None -> decode_error ("trace record: missing int field " ^ k)

let req_float j k =
  match Json.to_float_opt (Option.value (Json.member k j) ~default:Json.Null) with
  | Some f -> f
  | None -> decode_error ("trace record: missing float field " ^ k)

let req_string j k =
  match Json.to_string_opt (Option.value (Json.member k j) ~default:Json.Null) with
  | Some s -> s
  | None -> decode_error ("trace record: missing string field " ^ k)

let req_bool j k =
  match Json.to_bool_opt (Option.value (Json.member k j) ~default:Json.Null) with
  | Some b -> b
  | None -> decode_error ("trace record: missing bool field " ^ k)

let opt_int_of j k =
  match Json.member k j with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.to_int_opt v with
      | Some n -> Some n
      | None -> decode_error ("trace record: field " ^ k ^ " is not an int"))

let opt_float_of j k =
  match Json.member k j with
  | None | Some Json.Null -> None
  | Some v -> (
      match Json.to_float_opt v with
      | Some f -> Some f
      | None -> decode_error ("trace record: field " ^ k ^ " is not a number"))

let event_of_json j =
  match req_string j "ev" with
  | "trace_header" ->
      let v = req_int j "version" in
      if v > version then
        decode_error
          (Printf.sprintf
             "trace format version %d is newer than this reader (max %d)" v version);
      Trace_header { version = v; program = req_string j "program" }
  | "cell_start" -> Cell_start { key = req_string j "key" }
  | "cell_finish" ->
      Cell_finish { key = req_string j "key"; status = req_string j "status" }
  | "checkpoint_flush" ->
      Checkpoint_flush { key = req_string j "key"; bytes = req_int j "bytes" }
  | "worker_start" -> Worker_start { index = req_int j "index" }
  | "worker_stop" -> Worker_stop { index = req_int j "index"; tasks = req_int j "tasks" }
  | "game_start" ->
      Game_start
        {
          adversary = req_string j "adversary";
          algorithm = req_string j "algorithm";
          n = req_int j "n";
          max_color_calls = opt_int_of j "max_color_calls";
          max_work = opt_int_of j "max_work";
          deadline = opt_float_of j "deadline";
        }
  | "game_verdict" ->
      Game_verdict
        {
          adversary = req_string j "adversary";
          algorithm = req_string j "algorithm";
          n = req_int j "n";
          outcome = req_string j "outcome";
          guaranteed = req_bool j "guaranteed";
          color_calls = req_int j "color_calls";
          work = req_int j "work";
        }
  | "step" ->
      Step
        {
          executor = req_string j "executor";
          step = req_int j "step";
          target = req_int j "target";
          revealed = req_int j "revealed";
          max_view = req_int j "max_view";
        }
  | "reveal" ->
      Reveal
        {
          executor = req_string j "executor";
          step = req_int j "step";
          fresh = req_int j "fresh";
          revealed = req_int j "revealed";
        }
  | "color_call" -> Color_call { calls = req_int j "calls"; work = req_int j "work" }
  | "audit" ->
      Audit
        {
          executor = req_string j "executor";
          ok = req_bool j "ok";
          detail = req_string j "detail";
        }
  | "fault_injected" ->
      Fault_injected { tag = req_string j "tag"; call = req_int j "call" }
  | "misbehavior" ->
      Misbehavior { label = req_string j "label"; detail = req_string j "detail" }
  | "child_spawn" ->
      Child_spawn
        { key = req_string j "key"; pid = req_int j "pid"; attempt = req_int j "attempt" }
  | "child_heartbeat" ->
      Child_heartbeat { key = req_string j "key"; pid = req_int j "pid" }
  | "child_kill" ->
      Child_kill
        {
          key = req_string j "key";
          pid = req_int j "pid";
          signal = req_string j "signal";
          elapsed = req_float j "elapsed";
        }
  | "child_exit" ->
      Child_exit
        {
          key = req_string j "key";
          pid = req_int j "pid";
          status = req_string j "status";
          cpu_user = req_float j "cpu_user";
          cpu_sys = req_float j "cpu_sys";
        }
  | "cell_retry" ->
      Cell_retry
        {
          key = req_string j "key";
          attempt = req_int j "attempt";
          delay = req_float j "delay";
        }
  | "cell_quarantined" ->
      Cell_quarantined
        {
          key = req_string j "key";
          attempts = req_int j "attempts";
          reason = req_string j "reason";
        }
  | "server_start" ->
      Server_start
        {
          socket = req_string j "socket";
          jobs = req_int j "jobs";
          queue_limit = req_int j "queue_limit";
        }
  | "conn_open" -> Conn_open { conn = req_int j "conn" }
  | "conn_close" ->
      Conn_close { conn = req_int j "conn"; reason = req_string j "reason" }
  | "job_submit" ->
      Job_submit
        {
          id = req_string j "id";
          kind = req_string j "kind";
          disposition = req_string j "disposition";
        }
  | "job_reject" ->
      Job_reject
        { id = req_string j "id"; queued = req_int j "queued"; limit = req_int j "limit" }
  | "job_start" -> Job_start { id = req_string j "id"; attempt = req_int j "attempt" }
  | "job_done" -> Job_done { id = req_string j "id"; status = req_string j "status" }
  | "server_drain" ->
      Server_drain { queued = req_int j "queued"; running = req_int j "running" }
  | "chaos_injected" -> Chaos_injected { kind = req_string j "kind" }
  | "canon_hit" -> Canon_hit { kind = req_string j "kind"; key = req_string j "key" }
  | "journal_corrupt" ->
      Journal_corrupt
        {
          path = req_string j "path";
          line = req_int j "line";
          reason = req_string j "reason";
        }
  | "fleet_start" ->
      Fleet_start
        {
          endpoints = req_int j "endpoints";
          jobs = req_int j "jobs";
          shard_seed = req_int j "shard_seed";
        }
  | "endpoint_state" ->
      Endpoint_state
        { endpoint = req_string j "endpoint"; state = req_string j "state" }
  | "failover" ->
      Failover
        { id = req_string j "id"; src = req_string j "src"; dst = req_string j "dst" }
  | "rebalance" ->
      Rebalance
        { moved = req_int j "moved"; src = req_string j "src"; dst = req_string j "dst" }
  | "fleet_verdict" ->
      Fleet_verdict
        {
          verdict = req_string j "verdict";
          results = req_int j "results";
          failovers = req_int j "failovers";
          duplicates = req_int j "duplicates";
        }
  | other -> decode_error ("trace record: unknown event " ^ other)

let record_of_json j =
  {
    i = req_int j "i";
    w = req_int j "w";
    ts = req_float j "ts";
    ev = event_of_json j;
  }

let read_file path =
  let lines =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_lines ic)
  in
  List.mapi
    (fun idx line ->
      match record_of_json (Json.of_string line) with
      | r -> r
      | exception Json.Parse_error msg ->
          raise (Json.Parse_error (Printf.sprintf "%s:%d: %s" path (idx + 1) msg)))
    lines

(* ------------------------------- sink ------------------------------- *)

type sink = { oc : out_channel; mutex : Mutex.t; mutable seq : int; t0 : float }

let sink : sink option Atomic.t = Atomic.make None

(* Secondary in-process consumer (the flight recorder): events flow to
   it after the NDJSON sink, and its presence alone turns [on] true so
   instrumentation sites construct events for it. *)
let hook : (event -> unit) option Atomic.t = Atomic.make None
let set_hook h = Atomic.set hook h

let on () = Atomic.get sink <> None || Atomic.get hook <> None

let write s ev =
  (* Whole lines under the mutex: a parallel sweep's workers interleave
     at record granularity, never inside one. *)
  Mutex.protect s.mutex (fun () ->
      let r =
        {
          i = s.seq;
          w = (Domain.self () :> int);
          ts = Unix.gettimeofday () -. s.t0;
          ev;
        }
      in
      s.seq <- s.seq + 1;
      output_string s.oc (record_to_string r);
      output_char s.oc '\n')

let emit ev =
  (match Atomic.get sink with None -> () | Some s -> write s ev);
  match Atomic.get hook with None -> () | Some f -> f ev

let detach_in_child () =
  Atomic.set sink None;
  Atomic.set hook None

let with_sink ?(program = Filename.basename Sys.executable_name) ~path f =
  let oc = open_out_bin path in
  let s = { oc; mutex = Mutex.create (); seq = 0; t0 = Unix.gettimeofday () } in
  if not (Atomic.compare_and_set sink None (Some s)) then begin
    close_out_noerr oc;
    invalid_arg "Trace.with_sink: a sink is already installed"
  end;
  write s (Trace_header { version; program });
  Fun.protect
    ~finally:(fun () ->
      Atomic.set sink None;
      close_out_noerr oc)
    f

let with_sink_opt ?program path f =
  match path with None -> f () | Some path -> with_sink ?program ~path f
