(** Streaming campaign statistics: mergeable per-series accumulators —
    count, mean, variance, min/max, and an HDR-style quantile sketch —
    {e sharded per domain} like {!Metrics} and merged at {!drain}.

    The OnlineStats idiom: every series is O(1) memory however many
    observations it absorbs, and two partial accumulators merge with
    Chan's parallel identities (counts and sums add, the cross term of
    the variance falls out of the exact sums).  The registry is the
    campaign-scale companion to {!Metrics}: where a counter answers
    "how many", a stats series answers "how were they distributed" —
    still at one atomic load per call when disabled.

    {2 Determinism contract}

    Merging floating-point means and M2s is commutative but {e not}
    associative, so a naive Chan merge would leak the work partition
    into the low bits of the variance.  This module therefore keeps the
    accumulator state in {e exact integer arithmetic} — count, sum, a
    123-bit sum of squares, min/max, and integer sketch buckets — and
    evaluates Chan's identities over those exact sums only at render
    time.  Merge is then exactly commutative {e and} associative, and
    {!drain} sorts series names, so the drained snapshot (and its
    {!snapshot_to_json} bytes) is byte-identical however the work was
    distributed: same totals at [--jobs 1] and [--jobs 4], in-domain or
    process-isolated (CI diffs exactly this).  Keep wall-clock and
    jobs-dependent values out of the registry; they belong in the
    {!Trace}, which makes no such promise.

    {2 Value range}

    Observations are native ints.  Values are clamped to
    [+-(2^30 - 1)] before squaring so the sum of squares stays exact in
    123 bits; sums of up to ~2^31 observations of clamped magnitude
    cannot overflow.  Campaign quantities (work ticks, color calls,
    steps, view sizes) sit far inside this range. *)

type series = {
  n : int;  (** observation count *)
  sum : int;
  sq_hi : int;  (** sum of squares, high limb (base 2{^61}) *)
  sq_lo : int;  (** sum of squares, low limb, [0 <= sq_lo < 2^61] *)
  min_v : int;  (** meaningless when [n = 0] *)
  max_v : int;  (** meaningless when [n = 0] *)
  sketch : (int * int) list;
      (** sparse HDR buckets [(index, count)], index ascending; see
          {!sketch_index} *)
}

type snapshot = (string * series) list
(** Sorted by series name. *)

val sketch_index : int -> int
(** Quantile-sketch bucketing: values [<= 0] and [0..7] map to buckets
    [0..7] exactly; larger values keep their top three mantissa bits
    (HDR style, \@12.5% relative resolution).  480 buckets cover every
    nonnegative OCaml int. *)

val sketch_value : int -> int
(** Lower bound of a bucket: [sketch_value (sketch_index v) <= v]. *)

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Discard every shard and every absorbed foreign snapshot (live
    domains holding a stale shard re-register lazily on next use). *)

val observe : string -> int -> unit
(** Record one observation into a series.  Disabled (the default), one
    atomic load and a branch. *)

val scoped : (unit -> 'a) -> 'a * string
(** [scoped f] runs [f] with this domain's recording redirected into a
    fresh scope, then merges the scope into the domain shard and
    returns [f]'s result together with the scope's encoded delta
    (see {!to_string}; [""] when stats are off or nothing was
    recorded).  The delta is exactly what [f] contributed — the unit
    {!Harness.Sweep} checkpoints per cell so a resumed run restores
    partial stats without double counting. *)

val absorb : snapshot -> unit
(** Merge a foreign snapshot (a child process's drain, a checkpoint
    delta) into the registry, to be included by the next {!drain}.
    No-op on the empty snapshot. *)

val absorb_string : string -> (unit, string) result
(** {!absorb} an encoded snapshot; [Error] on a malformed encoding. *)

val merge : snapshot -> snapshot -> snapshot
(** Exact commutative/associative merge of two snapshots. *)

val drain : unit -> snapshot
(** Merge all shards and absorbed snapshots, names sorted.  Does not
    reset.  Call it from the main domain after the parallel section. *)

val to_string : snapshot -> string
(** Canonical compact encoding (deterministic bytes) for transport over
    {!Harness.Wire} frames and sweep/server journals.  Newline- and
    tab-free, so it embeds in a journal record value. *)

val of_string : string -> (snapshot, string) result

val mean : series -> float

val variance : series -> float
(** Unbiased sample variance; [0.] when [n < 2]. *)

val stddev : series -> float

val quantile : series -> num:int -> den:int -> int
(** Sketch estimate of the [num/den] quantile (lower bucket bound —
    within 12.5% below the true order statistic for positive values).
    Integer arithmetic throughout: deterministic. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable dump, stable formatting (CI diffs this output across
    [--jobs] and isolation modes). *)

val snapshot_to_json : snapshot -> Json.t
(** Derived view — count/mean/variance/stddev/min/max/p50/p90/p99 and
    the sparse sketch — plus the exact raw sums, so the bytes are both
    human-useful and losslessly re-absorbable. *)
