(** The flight recorder: a per-domain in-memory ring of {!Trace.event}s,
    written to disk in a compact binary encoding {e only on anomaly}.

    NDJSON tracing (E9) costs ~121% on a hot game because every step
    formats JSON and hits the file through a shared mutex.  The flight
    recorder records the same event vocabulary into a domain-private
    ring buffer — no lock, no formatting, no I/O, not even encoding
    (the ring holds the record values; the binary codec runs at flush
    time) — and writes bytes
    only when something worth investigating happens: a misbehavior
    certificate, a quarantine, a watchdog kill, a fault injection, or a
    failed audit.  A clean million-game campaign leaves just the header
    on disk; a crash leaves the last [cap] events each involved domain
    saw, exactly when forensics wants them.

    {2 Wire format}

    Each record is one frame in {!Harness.Wire}'s framing — tag ['F'],
    4-byte big-endian payload length, payload — so any Wire decoder can
    walk a flight file.  The payload is the {!Trace.record} envelope
    and event encoded with zigzag-LEB128 varints, length-prefixed
    strings and 8-byte IEEE floats: a [Step] event is ~25 bytes against
    ~120 as NDJSON.  The first frame of every file is the
    {!Trace.Trace_header}, so a flight file is self-describing and
    {!read_file} rejects newer format versions like the NDJSON reader
    does.  [bin/trace_report.exe] sniffs the first byte (['F'] vs
    ['{']) and renders both formats identically.

    {2 Scope}

    Rings are domain-private: an anomaly flushes the ring of the domain
    that saw it (the events causally near the anomaly), not every
    domain's.  Flushes append under a process-wide mutex with one
    [write] each, so concurrent anomalies interleave at flush
    granularity.  Record [i] is the per-domain sequence number, [w] the
    domain id — per-worker streams stay causally ordered, as
    [trace_report] expects.  Forked children are detached by
    {!Trace.detach_in_child} along with the NDJSON sink: child-side
    anomalies surface in the parent as quarantine/kill events, which
    flush the parent's ring. *)

val default_cap : int
(** Events retained per domain ring (4096). *)

val on : unit -> bool
(** Whether a flight sink is installed. *)

val record : Trace.event -> unit
(** Append one event to this domain's ring (no-op without a sink);
    flush the ring if the event is anomalous.  Installed as the
    {!Trace.set_hook} consumer by {!with_sink} — call sites keep
    emitting through {!Trace.emit}. *)

val anomalous : Trace.event -> bool
(** The flush triggers: [Misbehavior], [Cell_quarantined],
    [Child_kill], [Fault_injected], and [Audit] with [ok = false]. *)

val flush : unit -> unit
(** Force-flush this domain's ring (e.g. before a deliberate abort).
    Bumps the [flight.flushes] metric like an anomaly flush. *)

val with_sink : ?program:string -> ?cap:int -> path:string -> (unit -> 'a) -> 'a
(** Truncate [path], write the header frame, install the recorder (and
    the {!Trace.set_hook} tap) for the duration of the callback, then
    uninstall — also on exception.  If any anomaly flushed during the
    callback, teardown flushes the calling domain's ring once more, so
    an anomalous run's file also carries the events after the last
    anomaly (the verdict, the audit); a clean run leaves only the
    header on disk.  Rings from a previous sink are invalidated, not
    inherited.  Nesting raises [Invalid_argument]. *)

val with_sink_opt : ?program:string -> ?cap:int -> string option -> (unit -> 'a) -> 'a
(** [None] is just the callback; [Some path] is {!with_sink}. *)

val is_flight_file : string -> bool
(** True when the file exists, is non-empty and starts with the frame
    tag ['F'] — the sniff [trace_report] uses to pick a decoder. *)

val read_file : string -> Trace.record list
(** Decode a whole flight file.
    @raise Json.Parse_error on a malformed frame or an incompatible
    header version, naming the byte offset (same exception family as
    {!Trace.read_file}, so readers handle both formats uniformly). *)
