(* Exact-integer accumulator state.  The sum of squares is kept as two
   limbs in base 2^61: a clamped value squares to < 2^60, so the low
   limb plus one square stays under 2^62 — inside OCaml's 63-bit native
   int — and the merge (add limbs, propagate one carry) is exactly
   commutative and associative — the property the whole determinism
   contract rests on.  (Base 2^62 would be tidier but [1 lsl 62] is
   [min_int] on a 63-bit int.) *)

let limb_base = 1 lsl 61
let clamp_max = 0x3FFFFFFF (* 2^30 - 1: largest magnitude safe to square *)

type series = {
  n : int;
  sum : int;
  sq_hi : int;
  sq_lo : int;
  min_v : int;
  max_v : int;
  sketch : (int * int) list;
}

type snapshot = (string * series) list

(* HDR-style sketch: exact buckets 0..7, then 8 sub-buckets (3 mantissa
   bits) per octave.  480 buckets cover every nonnegative int. *)
let n_sketch = 480

let bit_length v =
  let b = ref 0 and n = ref v in
  while !n > 0 do
    incr b;
    n := !n lsr 1
  done;
  !b

let sketch_index v =
  if v <= 0 then 0
  else if v < 8 then v
  else begin
    let e = bit_length v in
    ((e - 4) * 8) + (v lsr (e - 4))
  end

let sketch_value idx =
  if idx <= 0 then 0
  else if idx < 8 then idx
  else (8 + (idx mod 8)) lsl ((idx / 8) - 1)

type acc = {
  mutable a_n : int;
  mutable a_sum : int;
  mutable a_sq_hi : int;
  mutable a_sq_lo : int;
  mutable a_min : int;
  mutable a_max : int;
  a_sketch : int array;
}

let fresh_acc () =
  {
    a_n = 0;
    a_sum = 0;
    a_sq_hi = 0;
    a_sq_lo = 0;
    a_min = max_int;
    a_max = min_int;
    a_sketch = Array.make n_sketch 0;
  }

let record acc v =
  acc.a_n <- acc.a_n + 1;
  acc.a_sum <- acc.a_sum + v;
  let m =
    let a = abs v in
    if a < 0 || a > clamp_max then clamp_max else a
  in
  let sq = m * m in
  let lo = acc.a_sq_lo + sq in
  if lo >= limb_base then begin
    acc.a_sq_lo <- lo - limb_base;
    acc.a_sq_hi <- acc.a_sq_hi + 1
  end
  else acc.a_sq_lo <- lo;
  if v < acc.a_min then acc.a_min <- v;
  if v > acc.a_max then acc.a_max <- v;
  let b = sketch_index v in
  acc.a_sketch.(b) <- acc.a_sketch.(b) + 1

(* Merge a series into an accumulator: the Chan identities over exact
   sums (counts, sums and buckets add; the carry keeps the square sum
   exact). *)
let merge_series_into acc (s : series) =
  if s.n > 0 then begin
    acc.a_n <- acc.a_n + s.n;
    acc.a_sum <- acc.a_sum + s.sum;
    let lo = acc.a_sq_lo + s.sq_lo in
    let carry = if lo >= limb_base then 1 else 0 in
    acc.a_sq_lo <- (if carry = 1 then lo - limb_base else lo);
    acc.a_sq_hi <- acc.a_sq_hi + s.sq_hi + carry;
    if s.min_v < acc.a_min then acc.a_min <- s.min_v;
    if s.max_v > acc.a_max then acc.a_max <- s.max_v;
    List.iter
      (fun (i, c) ->
        if i >= 0 && i < n_sketch then acc.a_sketch.(i) <- acc.a_sketch.(i) + c)
      s.sketch
  end

let series_of_acc acc =
  let sketch = ref [] in
  for i = n_sketch - 1 downto 0 do
    if acc.a_sketch.(i) > 0 then sketch := (i, acc.a_sketch.(i)) :: !sketch
  done;
  {
    n = acc.a_n;
    sum = acc.a_sum;
    sq_hi = acc.a_sq_hi;
    sq_lo = acc.a_sq_lo;
    min_v = acc.a_min;
    max_v = acc.a_max;
    sketch = !sketch;
  }

(* ----------------------------- registry ----------------------------- *)

type shard = { s_series : (string, acc) Hashtbl.t; s_epoch : int }

let enabled = Atomic.make false
let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* Same shape as Metrics: domain-private shards for lock-free recording,
   registered globally so drain can merge shards of terminated workers;
   [foreign] collects absorbed child-process and checkpoint snapshots. *)
let registry : shard list ref = ref []
let foreign : (string, acc) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()
let epoch = Atomic.make 0

let shard_key : shard option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scope_key : (string, acc) Hashtbl.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let shard () =
  let cell = Domain.DLS.get shard_key in
  match !cell with
  | Some s when s.s_epoch = Atomic.get epoch -> s
  | _ ->
      let s = { s_series = Hashtbl.create 16; s_epoch = Atomic.get epoch } in
      Mutex.protect registry_mutex (fun () -> registry := s :: !registry);
      cell := Some s;
      s

let reset () =
  Atomic.incr epoch;
  Mutex.protect registry_mutex (fun () ->
      registry := [];
      Hashtbl.reset foreign)

let find_acc tbl name =
  match Hashtbl.find_opt tbl name with
  | Some acc -> acc
  | None ->
      let acc = fresh_acc () in
      Hashtbl.replace tbl name acc;
      acc

let observe name v =
  if Atomic.get enabled then begin
    let tbl =
      match !(Domain.DLS.get scope_key) with
      | Some scope -> scope
      | None -> (shard ()).s_series
    in
    record (find_acc tbl name) v
  end

let snapshot_of_tbl tbl =
  Hashtbl.fold (fun k acc l -> (k, series_of_acc acc) :: l) tbl []
  |> List.filter (fun (_, s) -> s.n > 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------ codec ------------------------------ *)

let to_string (snap : snapshot) =
  let series_json (name, s) =
    Json.Obj
      [
        ("k", Json.String name);
        ("n", Json.Int s.n);
        ("s", Json.Int s.sum);
        ("qh", Json.Int s.sq_hi);
        ("ql", Json.Int s.sq_lo);
        ("lo", Json.Int s.min_v);
        ("hi", Json.Int s.max_v);
        ( "b",
          Json.List
            (List.map
               (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
               s.sketch) );
      ]
  in
  Json.to_string (Json.List (List.map series_json snap))

let of_string str =
  let req j k =
    match Json.member k j with
    | Some v -> (
        match Json.to_int_opt v with
        | Some n -> n
        | None -> raise (Json.Parse_error ("stats snapshot: bad field " ^ k)))
    | None -> raise (Json.Parse_error ("stats snapshot: missing field " ^ k))
  in
  let series j =
    let name =
      match Json.member "k" j with
      | Some (Json.String s) -> s
      | _ -> raise (Json.Parse_error "stats snapshot: missing series name")
    in
    let sketch =
      match Json.member "b" j with
      | Some (Json.List l) ->
          List.map
            (function
              | Json.List [ Json.Int i; Json.Int c ] -> (i, c)
              | _ -> raise (Json.Parse_error "stats snapshot: bad bucket"))
            l
      | _ -> raise (Json.Parse_error "stats snapshot: missing buckets")
    in
    ( name,
      {
        n = req j "n";
        sum = req j "s";
        sq_hi = req j "qh";
        sq_lo = req j "ql";
        min_v = req j "lo";
        max_v = req j "hi";
        sketch;
      } )
  in
  match Json.of_string str with
  | Json.List l -> Ok (List.map series l)
  | _ -> Error "stats snapshot: expected a list"
  | exception Json.Parse_error msg -> Error msg

(* ------------------------------ merge ------------------------------ *)

let merge_into_tbl tbl (snap : snapshot) =
  List.iter (fun (name, s) -> merge_series_into (find_acc tbl name) s) snap

let merge a b =
  let tbl = Hashtbl.create 16 in
  merge_into_tbl tbl a;
  merge_into_tbl tbl b;
  snapshot_of_tbl tbl

let absorb (snap : snapshot) =
  if snap <> [] then
    Mutex.protect registry_mutex (fun () ->
        List.iter (fun (name, s) -> merge_series_into (find_acc foreign name) s) snap)

let absorb_string str =
  if str = "" then Ok ()
  else match of_string str with Ok snap -> absorb snap; Ok () | Error e -> Error e

let scoped f =
  if not (Atomic.get enabled) then (f (), "")
  else begin
    let cell = Domain.DLS.get scope_key in
    let saved = !cell in
    let tbl = Hashtbl.create 8 in
    cell := Some tbl;
    let x = Fun.protect ~finally:(fun () -> cell := saved) f in
    let snap = snapshot_of_tbl tbl in
    (* The scope's contribution still counts toward this process's own
       drain — only the encoded delta travels to checkpoints. *)
    if Atomic.get enabled then begin
      let s = (shard ()).s_series in
      match saved with
      | Some outer -> merge_into_tbl outer snap
      | None -> merge_into_tbl s snap
    end;
    (x, if snap = [] then "" else to_string snap)
  end

let drain () =
  let shards, absorbed =
    Mutex.protect registry_mutex (fun () ->
        (!registry, snapshot_of_tbl foreign))
  in
  let tbl = Hashtbl.create 32 in
  List.iter (fun s -> merge_into_tbl tbl (snapshot_of_tbl s.s_series)) shards;
  merge_into_tbl tbl absorbed;
  snapshot_of_tbl tbl

(* ----------------------------- derived ----------------------------- *)

let mean s = if s.n = 0 then 0.0 else float_of_int s.sum /. float_of_int s.n

let variance s =
  if s.n < 2 then 0.0
  else begin
    let sq =
      (float_of_int s.sq_hi *. float_of_int limb_base) +. float_of_int s.sq_lo
    in
    let sum = float_of_int s.sum in
    let n = float_of_int s.n in
    Float.max 0.0 ((sq -. (sum *. sum /. n)) /. (n -. 1.0))
  end

let stddev s = sqrt (variance s)

let quantile s ~num ~den =
  if s.n = 0 then 0
  else begin
    let rank = ((s.n * num) + den - 1) / den in
    let rank = if rank < 1 then 1 else rank in
    let rec go cum = function
      | [] -> sketch_value (n_sketch - 1)
      | (i, c) :: rest -> if cum + c >= rank then sketch_value i else go (cum + c) rest
    in
    go 0 s.sketch
  end

let pp ppf (snap : snapshot) =
  if snap = [] then Format.fprintf ppf "(no stats recorded)@."
  else begin
    Format.fprintf ppf "stats:@.";
    List.iter
      (fun (name, s) ->
        Format.fprintf ppf
          "  %-32s count=%d mean=%.2f stddev=%.2f min=%d max=%d p50=%d p90=%d \
           p99=%d@."
          name s.n (mean s) (stddev s) s.min_v s.max_v
          (quantile s ~num:1 ~den:2)
          (quantile s ~num:9 ~den:10)
          (quantile s ~num:99 ~den:100))
      snap
  end

let snapshot_to_json (snap : snapshot) =
  let series_json (name, s) =
    ( name,
      Json.Obj
        [
          ("count", Json.Int s.n);
          ("mean", Json.Float (mean s));
          ("variance", Json.Float (variance s));
          ("stddev", Json.Float (stddev s));
          ("min", Json.Int s.min_v);
          ("max", Json.Int s.max_v);
          ("p50", Json.Int (quantile s ~num:1 ~den:2));
          ("p90", Json.Int (quantile s ~num:9 ~den:10));
          ("p99", Json.Int (quantile s ~num:99 ~den:100));
          ("sum", Json.Int s.sum);
          ("sq_hi", Json.Int s.sq_hi);
          ("sq_lo", Json.Int s.sq_lo);
          ( "sketch",
            Json.List
              (List.map
                 (fun (i, c) ->
                   Json.Obj
                     [
                       ("lo", Json.Int (sketch_value i)); ("count", Json.Int c);
                     ])
                 s.sketch) );
        ] )
  in
  Json.Obj [ ("stats", Json.Obj (List.map series_json snap)) ]
