(* ------------------------- binary event codec ------------------------
   One frame per record: tag 'F', 4-byte big-endian payload length,
   payload.  The payload encodes the envelope (varint i, varint w,
   8-byte float ts) then the event: a constructor byte followed by the
   fields in declaration order — ints as zigzag LEB128, strings
   length-prefixed, floats as big-endian IEEE bits, options with a
   presence byte.  Kept in lib/obs (no Wire dependency — the framing is
   Wire-compatible by construction, and Harness depends on us). *)

let frame_tag = 'F'

let w_uint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let w_int buf v = w_uint buf ((v lsl 1) lxor (v asr 62))

let w_str buf s =
  w_uint buf (String.length s);
  Buffer.add_string buf s

let w_float buf f = Buffer.add_int64_be buf (Int64.bits_of_float f)
let w_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let w_opt w buf = function
  | None -> Buffer.add_char buf '\000'
  | Some v ->
      Buffer.add_char buf '\001';
      w buf v

let encode_event buf ev =
  let id n = Buffer.add_char buf (Char.chr n) in
  match (ev : Trace.event) with
  | Trace_header { version; program } ->
      id 0;
      w_int buf version;
      w_str buf program
  | Cell_start { key } ->
      id 1;
      w_str buf key
  | Cell_finish { key; status } ->
      id 2;
      w_str buf key;
      w_str buf status
  | Checkpoint_flush { key; bytes } ->
      id 3;
      w_str buf key;
      w_int buf bytes
  | Worker_start { index } ->
      id 4;
      w_int buf index
  | Worker_stop { index; tasks } ->
      id 5;
      w_int buf index;
      w_int buf tasks
  | Game_start { adversary; algorithm; n; max_color_calls; max_work; deadline } ->
      id 6;
      w_str buf adversary;
      w_str buf algorithm;
      w_int buf n;
      w_opt w_int buf max_color_calls;
      w_opt w_int buf max_work;
      w_opt w_float buf deadline
  | Game_verdict { adversary; algorithm; n; outcome; guaranteed; color_calls; work }
    ->
      id 7;
      w_str buf adversary;
      w_str buf algorithm;
      w_int buf n;
      w_str buf outcome;
      w_bool buf guaranteed;
      w_int buf color_calls;
      w_int buf work
  | Step { executor; step; target; revealed; max_view } ->
      id 8;
      w_str buf executor;
      w_int buf step;
      w_int buf target;
      w_int buf revealed;
      w_int buf max_view
  | Reveal { executor; step; fresh; revealed } ->
      id 9;
      w_str buf executor;
      w_int buf step;
      w_int buf fresh;
      w_int buf revealed
  | Color_call { calls; work } ->
      id 10;
      w_int buf calls;
      w_int buf work
  | Audit { executor; ok; detail } ->
      id 11;
      w_str buf executor;
      w_bool buf ok;
      w_str buf detail
  | Fault_injected { tag; call } ->
      id 12;
      w_str buf tag;
      w_int buf call
  | Misbehavior { label; detail } ->
      id 13;
      w_str buf label;
      w_str buf detail
  | Child_spawn { key; pid; attempt } ->
      id 14;
      w_str buf key;
      w_int buf pid;
      w_int buf attempt
  | Child_heartbeat { key; pid } ->
      id 15;
      w_str buf key;
      w_int buf pid
  | Child_kill { key; pid; signal; elapsed } ->
      id 16;
      w_str buf key;
      w_int buf pid;
      w_str buf signal;
      w_float buf elapsed
  | Child_exit { key; pid; status; cpu_user; cpu_sys } ->
      id 17;
      w_str buf key;
      w_int buf pid;
      w_str buf status;
      w_float buf cpu_user;
      w_float buf cpu_sys
  | Cell_retry { key; attempt; delay } ->
      id 18;
      w_str buf key;
      w_int buf attempt;
      w_float buf delay
  | Cell_quarantined { key; attempts; reason } ->
      id 19;
      w_str buf key;
      w_int buf attempts;
      w_str buf reason
  | Server_start { socket; jobs; queue_limit } ->
      id 20;
      w_str buf socket;
      w_int buf jobs;
      w_int buf queue_limit
  | Conn_open { conn } ->
      id 21;
      w_int buf conn
  | Conn_close { conn; reason } ->
      id 22;
      w_int buf conn;
      w_str buf reason
  | Job_submit { id = jid; kind; disposition } ->
      id 23;
      w_str buf jid;
      w_str buf kind;
      w_str buf disposition
  | Job_reject { id = jid; queued; limit } ->
      id 24;
      w_str buf jid;
      w_int buf queued;
      w_int buf limit
  | Job_start { id = jid; attempt } ->
      id 25;
      w_str buf jid;
      w_int buf attempt
  | Job_done { id = jid; status } ->
      id 26;
      w_str buf jid;
      w_str buf status
  | Server_drain { queued; running } ->
      id 27;
      w_int buf queued;
      w_int buf running
  | Chaos_injected { kind } ->
      id 28;
      w_str buf kind
  | Canon_hit { kind; key } ->
      id 29;
      w_str buf kind;
      w_str buf key
  | Journal_corrupt { path; line; reason } ->
      id 30;
      w_str buf path;
      w_int buf line;
      w_str buf reason
  | Fleet_start { endpoints; jobs; shard_seed } ->
      id 31;
      w_int buf endpoints;
      w_int buf jobs;
      w_int buf shard_seed
  | Endpoint_state { endpoint; state } ->
      id 32;
      w_str buf endpoint;
      w_str buf state
  | Failover { id = jid; src; dst } ->
      id 33;
      w_str buf jid;
      w_str buf src;
      w_str buf dst
  | Rebalance { moved; src; dst } ->
      id 34;
      w_int buf moved;
      w_str buf src;
      w_str buf dst
  | Fleet_verdict { verdict; results; failovers; duplicates } ->
      id 35;
      w_str buf verdict;
      w_int buf results;
      w_int buf failovers;
      w_int buf duplicates

let encode_record buf (r : Trace.record) =
  Buffer.clear buf;
  w_uint buf r.i;
  w_uint buf r.w;
  w_float buf r.ts;
  encode_event buf r.ev;
  let len = Buffer.length buf in
  let frame = Bytes.create (5 + len) in
  Bytes.set frame 0 frame_tag;
  Bytes.set_int32_be frame 1 (Int32.of_int len);
  Buffer.blit buf 0 frame 5 len;
  Bytes.unsafe_to_string frame

(* ------------------------------ decoder ------------------------------ *)

type cursor = { data : string; mutable pos : int; path : string }

let fail cur msg =
  raise
    (Json.Parse_error (Printf.sprintf "%s: byte %d: %s" cur.path cur.pos msg))

let r_byte cur =
  if cur.pos >= String.length cur.data then fail cur "truncated frame payload";
  let c = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let r_uint cur =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let b = r_byte cur in
    if !shift > 56 then fail cur "varint too long";
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !v

let r_int cur =
  let u = r_uint cur in
  (u lsr 1) lxor (-(u land 1))

let r_str cur =
  let len = r_uint cur in
  if len < 0 || cur.pos + len > String.length cur.data then
    fail cur "truncated string";
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let r_float cur =
  if cur.pos + 8 > String.length cur.data then fail cur "truncated float";
  let bits = String.get_int64_be cur.data cur.pos in
  cur.pos <- cur.pos + 8;
  Int64.float_of_bits bits

let r_bool cur = r_byte cur <> 0

let r_opt r cur = if r_byte cur = 0 then None else Some (r cur)

let decode_event cur : Trace.event =
  match r_byte cur with
  | 0 ->
      let v = r_int cur in
      if v > Trace.version then
        fail cur
          (Printf.sprintf "flight format version %d is newer than this reader (max %d)"
             v Trace.version);
      let program = r_str cur in
      Trace_header { version = v; program }
  | 1 -> Cell_start { key = r_str cur }
  | 2 ->
      let key = r_str cur in
      Cell_finish { key; status = r_str cur }
  | 3 ->
      let key = r_str cur in
      Checkpoint_flush { key; bytes = r_int cur }
  | 4 -> Worker_start { index = r_int cur }
  | 5 ->
      let index = r_int cur in
      Worker_stop { index; tasks = r_int cur }
  | 6 ->
      let adversary = r_str cur in
      let algorithm = r_str cur in
      let n = r_int cur in
      let max_color_calls = r_opt r_int cur in
      let max_work = r_opt r_int cur in
      let deadline = r_opt r_float cur in
      Game_start { adversary; algorithm; n; max_color_calls; max_work; deadline }
  | 7 ->
      let adversary = r_str cur in
      let algorithm = r_str cur in
      let n = r_int cur in
      let outcome = r_str cur in
      let guaranteed = r_bool cur in
      let color_calls = r_int cur in
      let work = r_int cur in
      Game_verdict { adversary; algorithm; n; outcome; guaranteed; color_calls; work }
  | 8 ->
      let executor = r_str cur in
      let step = r_int cur in
      let target = r_int cur in
      let revealed = r_int cur in
      let max_view = r_int cur in
      Step { executor; step; target; revealed; max_view }
  | 9 ->
      let executor = r_str cur in
      let step = r_int cur in
      let fresh = r_int cur in
      let revealed = r_int cur in
      Reveal { executor; step; fresh; revealed }
  | 10 ->
      let calls = r_int cur in
      Color_call { calls; work = r_int cur }
  | 11 ->
      let executor = r_str cur in
      let ok = r_bool cur in
      Audit { executor; ok; detail = r_str cur }
  | 12 ->
      let tag = r_str cur in
      Fault_injected { tag; call = r_int cur }
  | 13 ->
      let label = r_str cur in
      Misbehavior { label; detail = r_str cur }
  | 14 ->
      let key = r_str cur in
      let pid = r_int cur in
      Child_spawn { key; pid; attempt = r_int cur }
  | 15 ->
      let key = r_str cur in
      Child_heartbeat { key; pid = r_int cur }
  | 16 ->
      let key = r_str cur in
      let pid = r_int cur in
      let signal = r_str cur in
      Child_kill { key; pid; signal; elapsed = r_float cur }
  | 17 ->
      let key = r_str cur in
      let pid = r_int cur in
      let status = r_str cur in
      let cpu_user = r_float cur in
      Child_exit { key; pid; status; cpu_user; cpu_sys = r_float cur }
  | 18 ->
      let key = r_str cur in
      let attempt = r_int cur in
      Cell_retry { key; attempt; delay = r_float cur }
  | 19 ->
      let key = r_str cur in
      let attempts = r_int cur in
      Cell_quarantined { key; attempts; reason = r_str cur }
  | 20 ->
      let socket = r_str cur in
      let jobs = r_int cur in
      Server_start { socket; jobs; queue_limit = r_int cur }
  | 21 -> Conn_open { conn = r_int cur }
  | 22 ->
      let conn = r_int cur in
      Conn_close { conn; reason = r_str cur }
  | 23 ->
      let id = r_str cur in
      let kind = r_str cur in
      Job_submit { id; kind; disposition = r_str cur }
  | 24 ->
      let id = r_str cur in
      let queued = r_int cur in
      Job_reject { id; queued; limit = r_int cur }
  | 25 ->
      let id = r_str cur in
      Job_start { id; attempt = r_int cur }
  | 26 ->
      let id = r_str cur in
      Job_done { id; status = r_str cur }
  | 27 ->
      let queued = r_int cur in
      Server_drain { queued; running = r_int cur }
  | 28 -> Chaos_injected { kind = r_str cur }
  | 29 ->
      let kind = r_str cur in
      Canon_hit { kind; key = r_str cur }
  | 30 ->
      let path = r_str cur in
      let line = r_int cur in
      Journal_corrupt { path; line; reason = r_str cur }
  | 31 ->
      let endpoints = r_int cur in
      let jobs = r_int cur in
      Fleet_start { endpoints; jobs; shard_seed = r_int cur }
  | 32 ->
      let endpoint = r_str cur in
      Endpoint_state { endpoint; state = r_str cur }
  | 33 ->
      let id = r_str cur in
      let src = r_str cur in
      Failover { id; src; dst = r_str cur }
  | 34 ->
      let moved = r_int cur in
      let src = r_str cur in
      Rebalance { moved; src; dst = r_str cur }
  | 35 ->
      let verdict = r_str cur in
      let results = r_int cur in
      let failovers = r_int cur in
      Fleet_verdict { verdict; results; failovers; duplicates = r_int cur }
  | n -> fail cur (Printf.sprintf "unknown flight event id %d" n)

let decode_record cur : Trace.record =
  let i = r_uint cur in
  let w = r_uint cur in
  let ts = r_float cur in
  { i; w; ts; ev = decode_event cur }

(* ------------------------------- sink ------------------------------- *)

let default_cap = 4096

type sink = { path : string; cap : int; t0 : float }

let sink : sink option Atomic.t = Atomic.make None
let on () = Atomic.get sink <> None

(* Bumped on every install: rings cached by live domains for a previous
   sink are invalidated, not inherited. *)
let ring_epoch = Atomic.make 0

(* The hot path must neither encode nor retain fresh heap values: eager
   encoding costs ~8 points of E14 overhead, and parking freshly
   allocated records in the ring costs ~11 more — every young record the
   ring keeps alive is promoted at the next minor collection, and a hot
   game emits ~1000 events per millisecond.  So the per-step events
   ([Step], [Reveal], [Color_call] — all-int payloads plus a literal
   executor name) are flattened into preallocated unboxed arrays: an
   append is a handful of plain stores, no allocation, no write-barrier
   traffic to young blocks.  Everything else (per-game, per-cell and
   lifecycle events — rare by construction) is parked as an ordinary
   boxed record.  The binary encoding runs only at flush time. *)
type ring = {
  kinds : Bytes.t;  (** slot discriminator: 'b'oxed, 's'tep, 'r'eveal, 'c'olor *)
  flat : int array;  (** [flat_width] ints per slot for the flat kinds *)
  strs : string array;  (** executor per flat slot (a literal, never young) *)
  tss : float array;  (** unboxed timestamp per slot *)
  entries : Trace.record array;  (** boxed slots ('b' kind only) *)
  w : int;  (** domain id — rings are domain-private, so it is constant *)
  mutable now : float;  (** cached clock, refreshed every 32 flat appends *)
  mutable next : int;  (** total records appended *)
  mutable flushed : int;  (** records already written to disk *)
  buf : Buffer.t;  (** scratch for encoding at flush, domain-private *)
  r_epoch : int;
}

let flat_width = 4

let dummy_record =
  { Trace.i = -1; w = 0; ts = 0.0;
    ev = Trace.Trace_header { version = Trace.version; program = "" } }

(* Rebuild the record parked in slot [k] (an absolute index). *)
let slot_record s r k =
  let idx = k mod s.cap in
  match Bytes.get r.kinds idx with
  | 'b' -> r.entries.(idx)
  | kind ->
      let a = r.flat and o = idx * flat_width in
      let ev : Trace.event =
        match kind with
        | 's' ->
            Step
              { executor = r.strs.(idx); step = a.(o); target = a.(o + 1);
                revealed = a.(o + 2); max_view = a.(o + 3) }
        | 'r' ->
            Reveal
              { executor = r.strs.(idx); step = a.(o); fresh = a.(o + 1);
                revealed = a.(o + 2) }
        | 'c' -> Color_call { calls = a.(o); work = a.(o + 1) }
        | _ -> assert false
      in
      { Trace.i = k; w = r.w; ts = r.tss.(idx); ev }

let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ring_for s =
  let cell = Domain.DLS.get ring_key in
  match !cell with
  | Some r when r.r_epoch = Atomic.get ring_epoch -> r
  | _ ->
      let r =
        {
          kinds = Bytes.make s.cap 'b';
          flat = Array.make (s.cap * flat_width) 0;
          strs = Array.make s.cap "";
          tss = Array.make s.cap 0.0;
          entries = Array.make s.cap dummy_record;
          w = (Domain.self () :> int);
          now = Unix.gettimeofday ();
          next = 0;
          flushed = 0;
          buf = Buffer.create 256;
          r_epoch = Atomic.get ring_epoch;
        }
      in
      cell := Some r;
      r

(* One writer at a time, one [output] per flush: concurrent anomalies on
   different domains interleave at flush granularity, never inside a
   frame. *)
let flush_mutex = Mutex.create ()

let flush_ring s r =
  Mutex.protect flush_mutex (fun () ->
      let first = max r.flushed (r.next - s.cap) in
      if first < r.next then begin
        let out = Buffer.create 4096 in
        for k = first to r.next - 1 do
          Buffer.add_string out (encode_record r.buf (slot_record s r k))
        done;
        let oc =
          open_out_gen
            [ Open_wronly; Open_append; Open_creat; Open_binary ]
            0o644 s.path
        in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Buffer.output_buffer oc out);
        Metrics.incr "flight.flushes";
        Metrics.add "flight.flush_records" (r.next - first);
        r.flushed <- r.next
      end)

let anomalous (ev : Trace.event) =
  match ev with
  | Misbehavior _ | Cell_quarantined _ | Child_kill _ | Fault_injected _ -> true
  | Audit { ok; _ } -> not ok
  | _ -> false

(* Anomaly flushes under the current sink: a nonzero count makes the
   teardown flush the tail, so an anomalous run's file also carries the
   events {e after} the last anomaly (the verdict, the audit). *)
let anomaly_flushes = Atomic.make 0

let record ev =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      let r = ring_for s in
      let k = r.next mod s.cap in
      (* Hot (flat) events share a clock sample refreshed every 32
         appends — ~30ns/event of [gettimeofday] is the next-largest
         cost after allocation.  Boxed events (every anomaly is one)
         always take a fresh sample. *)
      if r.next land 31 = 0 then r.now <- Unix.gettimeofday ();
      r.tss.(k) <- r.now -. s.t0;
      (match (ev : Trace.event) with
      | Step { executor; step; target; revealed; max_view } ->
          Bytes.set r.kinds k 's';
          r.strs.(k) <- executor;
          let a = r.flat and o = k * flat_width in
          a.(o) <- step;
          a.(o + 1) <- target;
          a.(o + 2) <- revealed;
          a.(o + 3) <- max_view
      | Reveal { executor; step; fresh; revealed } ->
          Bytes.set r.kinds k 'r';
          r.strs.(k) <- executor;
          let a = r.flat and o = k * flat_width in
          a.(o) <- step;
          a.(o + 1) <- fresh;
          a.(o + 2) <- revealed
      | Color_call { calls; work } ->
          Bytes.set r.kinds k 'c';
          let a = r.flat and o = k * flat_width in
          a.(o) <- calls;
          a.(o + 1) <- work
      | _ ->
          Bytes.set r.kinds k 'b';
          r.now <- Unix.gettimeofday ();
          r.entries.(k) <- { Trace.i = r.next; w = r.w; ts = r.now -. s.t0; ev });
      r.next <- r.next + 1;
      if anomalous ev then begin
        Atomic.incr anomaly_flushes;
        flush_ring s r
      end

let flush () =
  match Atomic.get sink with
  | None -> ()
  | Some s -> flush_ring s (ring_for s)

let with_sink ?(program = Filename.basename Sys.executable_name)
    ?(cap = default_cap) ~path f =
  let s = { path; cap; t0 = Unix.gettimeofday () } in
  if not (Atomic.compare_and_set sink None (Some s)) then
    invalid_arg "Flight.with_sink: a flight sink is already installed";
  Atomic.incr ring_epoch;
  (* Header frame, written through the normal encoder so the file is
     self-describing whether or not an anomaly ever flushes. *)
  let buf = Buffer.create 64 in
  let header =
    encode_record buf
      { Trace.i = 0; w = (Domain.self () :> int); ts = 0.0;
        ev = Trace_header { version = Trace.version; program } }
  in
  let oc = open_out_bin path in
  output_string oc header;
  close_out oc;
  Atomic.set anomaly_flushes 0;
  Trace.set_hook (Some record);
  Fun.protect
    ~finally:(fun () ->
      (* An anomalous run flushes its tail on the way out — a clean run
         leaves only the header on disk. *)
      if Atomic.get anomaly_flushes > 0 then flush ();
      Trace.set_hook None;
      Atomic.set sink None)
    f

let with_sink_opt ?program ?cap path f =
  match path with
  | None -> f ()
  | Some path -> with_sink ?program ?cap ~path f

let is_flight_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> match input_char ic with
          | c -> c = frame_tag
          | exception End_of_file -> false)

let read_file path =
  let data =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  in
  let cur = { data; pos = 0; path } in
  let records = ref [] in
  while cur.pos < String.length data do
    if data.[cur.pos] <> frame_tag then
      fail cur (Printf.sprintf "expected frame tag %C" frame_tag);
    if cur.pos + 5 > String.length data then fail cur "truncated frame header";
    let len = Int32.to_int (String.get_int32_be data (cur.pos + 1)) in
    if len < 0 then fail cur "negative frame length";
    let payload_end = cur.pos + 5 + len in
    if payload_end > String.length data then fail cur "truncated frame payload";
    cur.pos <- cur.pos + 5;
    let sub = { data = String.sub data cur.pos len; pos = 0; path } in
    let r = decode_record sub in
    if sub.pos <> len then fail sub "trailing bytes in frame payload";
    records := r :: !records;
    cur.pos <- payload_end
  done;
  List.rev !records
