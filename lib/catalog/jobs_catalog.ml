(* The job-kind catalog behind serve.exe and submit.exe — and the cell
   constructors behind the sweep_thm1/2/3 binaries, so a job submitted
   over the socket runs exactly the code a local sweep cell runs.

   A thmN job's payload IS the sweep cell key ("t=1 k=9 side=4000
   algo=ael", ...): the handler parses it back into parameters and
   produces the same result string the local sweep prints for that
   cell.  That shared representation is what the server's determinism
   contract rests on — `submit` output for a spec list is byte-identical
   to the serverless sweep over the same cells, whatever the server's
   --jobs/--isolate/--chaos settings were.

   A payload that does not parse, or an unknown kind, raises — which the
   server maps to a typed "ERROR: ..." result, never a crash.

   Cell constructors take ~bulk (the executor fast path; identical
   result strings either way) and ~memo (the Canon.Memo caches; also
   identical result strings — hits replay recorded answers and Stats
   observes).  The socket handler always runs non-bulk and memo-off:
   server results stay byte-identical to historical runs by
   construction, not just by the equivalence arguments. *)

open Online_local
module Sweep = Harness.Sweep

let kinds = [ "thm1"; "thm2"; "thm3"; "fuzz" ]

let memo_ctx ~memo algorithm =
  if memo then
    Some (Canon.Memo.create ~pure:algorithm.Models.Algorithm.pure ())
  else None

(* ------------------------------- thm1 -------------------------------- *)

let thm1_algorithm name t =
  match name with
  | "greedy" -> Portfolio.greedy ()
  | "parity" -> Portfolio.hint_parity ()
  | "stripes" -> Portfolio.stripes3 ()
  | "ael" -> Portfolio.ael ~t ()
  | other -> failwith ("unknown algorithm: " ^ other)

(* Game-level report cache for thm1 cells.  The adversary's report is a
   pure function of (algorithm, executor radius, k, side, validate):
   the cell's [t] only enters through the algorithm's locality, so a
   t-axis sweep of a locality-independent algorithm replays one run per
   (k, side) — the cell text re-formats the cached report with its own
   t.  Sound for *any* deterministic algorithm, stateful or not: each
   live run instantiates a fresh instance, so the whole-run result
   (unlike a single skipped color call) carries no hidden state.
   Per-domain, per-process, never checkpointed — exactly like the step
   table (see lib/canon/README.md). *)
let thm1_report_tbl : (string, Thm1_adversary.report) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let thm1_run ?(bulk = false) ?(memo = false) ~validate ~t ~k ~side ~algo () =
  let algorithm = thm1_algorithm algo t in
  let run_live ?memo:ctx () =
    Thm1_adversary.run ~bulk ?memo:ctx ~validate ~n_side:side ~k ~algorithm ()
  in
  let r =
    if not memo then run_live ()
    else begin
      let radius = algorithm.Models.Algorithm.locality ~n:(side * side) in
      let gkey =
        Printf.sprintf "thm1|%s|%d|%d|%d|%b" algorithm.Models.Algorithm.name
          radius k side validate
      in
      let tbl = Domain.DLS.get thm1_report_tbl in
      match Hashtbl.find_opt tbl gkey with
      | Some r ->
          Canon.Memo.note_hit ~kind:"game" ~key:gkey;
          (* Replay the Stats observes the live run would have made, so
             a --stats file is byte-identical to the memo-off run. *)
          if Obs.Stats.on () then begin
            Obs.Stats.observe "thm1.presented" r.Thm1_adversary.presented;
            Obs.Stats.observe "thm1.revealed" r.Thm1_adversary.revealed;
            Obs.Stats.observe "thm1.span_width" r.Thm1_adversary.width;
            Obs.Stats.observe "thm1.span_height" r.Thm1_adversary.height
          end;
          r
      | None ->
          Canon.Memo.note_miss ~kind:"game";
          let r = run_live ?memo:(memo_ctx ~memo algorithm) () in
          Hashtbl.replace tbl gkey r;
          r
    end
  in
  Format.asprintf
    "thm1 vs %s (T=%d) on %d^2 grid, b-target k=%d:@.  %a@.  guaranteed by \
     theory: %b (needs k > 4T+4)@.  max fitting k at this side/T: %d"
    algo t side k Thm1_adversary.pp_report r
    (Thm1_adversary.guaranteed ~t ~k)
    (Thm1_adversary.recommended_k ~n_side:side ~t)

let thm1_cell ?(memo = false) ~bulk ~validate ~t ~k ~side ~algo () =
  {
    Sweep.key = Printf.sprintf "t=%d k=%d side=%d algo=%s" t k side algo;
    run = thm1_run ~bulk ~memo ~validate ~t ~k ~side ~algo;
  }

let thm1_of_key payload =
  Scanf.sscanf payload "t=%d k=%d side=%d algo=%s" (fun t k side algo ->
      thm1_run ~validate:false ~t ~k ~side ~algo ())

(* ------------------------------- thm2 -------------------------------- *)

let thm2_wrap_of = function
  | "torus" -> `Toroidal
  | "cylinder" -> `Cylindrical
  | other -> failwith ("unknown wrap: " ^ other)

let thm2_algorithms =
  [ ("greedy", Portfolio.greedy); ("ael(T=1)", fun () -> Portfolio.ael ~t:1 ()) ]

let thm2_run ?(bulk = false) ?(memo = false) ~side ~wrap ~algo () =
  let algorithm =
    match List.assoc_opt algo thm2_algorithms with
    | Some a -> a ()
    | None -> failwith ("unknown algorithm: " ^ algo)
  in
  let r =
    Thm2_adversary.run ~bulk
      ?memo:(memo_ctx ~memo algorithm)
      ~wrap:(thm2_wrap_of wrap) ~side ~algorithm ()
  in
  Format.asprintf "thm2 %s side=%d vs %-12s %a" wrap side algo
    Thm2_adversary.pp_report r

let thm2_cell ?(memo = false) ~bulk ~side ~wrap ~algo () =
  {
    Sweep.key = Printf.sprintf "wrap=%s side=%d algo=%s" wrap side algo;
    run = thm2_run ~bulk ~memo ~side ~wrap ~algo;
  }

let thm2_of_key payload =
  Scanf.sscanf payload "wrap=%s side=%d algo=%s" (fun wrap side algo ->
      thm2_run ~side ~wrap ~algo ())

(* ------------------------------- thm3 -------------------------------- *)

let thm3_algorithms =
  [ ("greedy", Portfolio.greedy); ("gadget-rows", Portfolio.gadget_rows) ]

let thm3_run ?(bulk = false) ?(memo = false) ~k ~gadgets ~algo () =
  let algorithm =
    match List.assoc_opt algo thm3_algorithms with
    | Some a -> a ()
    | None -> failwith ("unknown algorithm: " ^ algo)
  in
  let r =
    Thm3_adversary.run ~bulk
      ?memo:(memo_ctx ~memo algorithm)
      ~k ~gadgets ~algorithm ()
  in
  Format.asprintf "thm3 k=%d gadgets=%d (n=%d) vs %-12s@.  %a" k gadgets
    (gadgets * k * k) algo Thm3_adversary.pp_report r

let thm3_cell ?(memo = false) ~bulk ~k ~gadgets ~algo () =
  {
    Sweep.key = Printf.sprintf "k=%d gadgets=%d algo=%s" k gadgets algo;
    run = thm3_run ~bulk ~memo ~k ~gadgets ~algo;
  }

let thm3_of_key payload =
  Scanf.sscanf payload "k=%d gadgets=%d algo=%s" (fun k gadgets algo ->
      thm3_run ~k ~gadgets ~algo ())

(* ------------------------------- fuzz -------------------------------- *)

(* Payload "target=NAME seed=N cases=N".  Cases run serially (jobs:1)
   inside whatever isolation the server provides; the one-line report
   matches bin/fuzz.exe's status line for the same (seed, cases). *)
let fuzz_of_payload payload =
  Scanf.sscanf payload "target=%s seed=%d cases=%d" (fun name seed cases ->
      match Proptest.Fuzz_targets.find name with
      | None -> failwith ("unknown fuzz target: " ^ name)
      | Some target -> (
          let config =
            { Proptest.Runner.default_config with Proptest.Runner.seed; cases }
          in
          let r = Proptest.Fuzz_run.run_target ~jobs:1 ~config target in
          match r.Proptest.Fuzz_run.status with
          | Proptest.Fuzz_run.Passed { cases } ->
              Printf.sprintf "%s: PASS (%d cases)" name cases
          | Proptest.Fuzz_run.Skipped reason ->
              Printf.sprintf "%s: SKIP (%s)" name reason
          | Proptest.Fuzz_run.Failed c ->
              Printf.sprintf "%s: FAIL (case %d, size %d, %d shrinks)\n  %s" name
                c.Proptest.Runner.case c.Proptest.Runner.size
                c.Proptest.Runner.shrink_steps
                (Format.asprintf "%a" Proptest.Runner.pp_counterexample c)))

(* ------------------------------ dispatch ------------------------------ *)

let handler ~kind ~payload =
  match kind with
  | "thm1" -> thm1_of_key payload
  | "thm2" -> thm2_of_key payload
  | "thm3" -> thm3_of_key payload
  | "fuzz" -> fuzz_of_payload payload
  | other -> failwith ("unknown job kind: " ^ other)
