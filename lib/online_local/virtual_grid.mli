(** The deferred-placement Online-LOCAL executor on a virtual grid.

    The Theorem 1 adversary must grow several grid fragments while
    committing to their relative positions as late as possible: "the
    adversary has the flexibility to adjust the directions of these
    components and the distances between these components, as the
    algorithm is unaware of the precise location of these components"
    (Section 3.2).  This executor realizes that freedom:

    {ul
    {- the adversary works in {e frames} — independent coordinate systems
       holding grid fragments;}
    {- presenting a node reveals its radius-R diamond (the grid ball)
       inside its frame and asks the algorithm for the node's color;}
    {- {!merge} commits the relative placement of two frames (a
       translation plus an optional horizontal reflection) and
       {!reflect} re-orients a frame in place — both are invisible to the
       algorithm, because the fragments' revealed regions must be
       non-adjacent and non-overlapping under the committed placement
       (checked, [Invalid_argument] otherwise);}
    {- {!validate} replays the whole transcript against the final
       placement and verifies that every step showed the algorithm
       exactly the induced subgraph the Online-LOCAL model prescribes —
       the machine-checked honesty certificate for the adversary.}}

    Rows grow downward and columns rightward; coordinates may be
    negative (the virtual grid is unbounded — {!span} reports the
    bounding box so callers can check the construction fits the
    advertised [sqrt n x sqrt n] host).

    {2 Cost model}

    Frame coordinates are packed into single integers
    ({!Grid_graph.Packed.Coord}) and each frame's coordinate table is an
    open-addressing int map, so revealing a radius-R diamond costs
    O(R{^2}) allocation-free probes with the four grid-neighbor lookups
    done by integer arithmetic.  Outputs and the presented set are flat
    arrays indexed by handle: O(1) reads, no boxing.  Coordinates must
    stay within [|row|, |col| < 2{^29}] ([Invalid_argument] otherwise) —
    vastly beyond any constructible instance.  See
    [lib/online_local/README.md]. *)

type t
type frame

val create :
  ?bulk:bool ->
  ?memo:Canon.Memo.ctx ->
  palette:int ->
  n_total:int ->
  radius:int ->
  algorithm:Models.Algorithm.t ->
  unit ->
  t
(** [radius] is the ball radius revealed per presentation (the
    algorithm's locality, plus its oracle radius if any — the built-in
    algorithms attacked here carry none).  [bulk] (default [false])
    skips per-step trace and metrics event construction; it cannot
    change colors, violations, or honesty checks.  [memo] enables the
    step cache: every observable input (presentations, merges,
    reflections) and every answer is folded into the context's chain
    digest, and color calls whose chain key was already answered in an
    earlier run replay the cached color — for [pure] algorithms only,
    charging the guard through the context so memo-on output stays
    byte-identical to memo-off. *)

val new_frame : t -> frame

val present : t -> frame -> row:int -> col:int -> int
(** Present the node at the given frame coordinates; reveals its diamond,
    asks the algorithm, records and returns the color.
    @raise Models.Run_stats.Dishonest_transcript if this exact node was
    already presented. *)

val color_at : t -> frame -> row:int -> col:int -> int option
(** Color output for the node at the coordinates, if presented. *)

val handle_at : t -> frame -> row:int -> col:int -> Grid_graph.Graph.node option
(** The view handle of a revealed coordinate, if revealed. *)

val reflect : t -> frame -> unit
(** Re-orient a frame in place: [(r, c) -> (r, -c)]. *)

val merge : t -> keep:frame -> absorb:frame -> reflect:bool -> dr:int -> dc:int -> unit
(** Commit [absorb]'s placement relative to [keep]:
    [(r, c) -> (r + dr, (if reflect then -c else c) + dc)], then fold its
    nodes into [keep].  The absorbed frame becomes invalid.
    @raise Invalid_argument if the placement makes two already-revealed
    nodes collide or become adjacent (that would contradict the views
    already shown). *)

val frames : t -> frame list
(** All frames still alive (not absorbed by a merge), in creation order. *)

val span : t -> frame -> (int * int) * (int * int)
(** [(row_lo, row_hi), (col_lo, col_hi)] of the frame's revealed region. *)

val violation : t -> Models.Run_stats.violation option
(** First violation observed so far: an out-of-palette answer, or a
    monochromatic edge between two presented nodes of the revealed
    region. *)

val presented_count : t -> int
val revealed_count : t -> int

val snapshot_region : t -> Grid_graph.Graph.t
(** An immutable copy of the revealed region graph (handles coincide).
    O(region) — for tests and verifiers, not per-step use. *)

val output : t -> Grid_graph.Graph.node -> int option
(** The color answered for a revealed handle, if it was presented. *)

val scan_monochromatic : t -> (Grid_graph.Graph.node * Grid_graph.Graph.node) option
(** Exhaustive scan of the revealed region for a monochromatic edge among
    presented nodes. *)

val validate : t -> unit
(** Replay honesty check (O(presented x revealed) — test-sized runs
    only): under the final placement, (a) every revealed pair of
    grid-adjacent nodes is an edge of the region graph and vice versa,
    and (b) every node entered the revealed region exactly at the first
    presentation whose ball contains it, never earlier, never later.
    Frames never merged are taken as placed unboundedly far apart.
    @raise Models.Run_stats.Dishonest_transcript with a diagnostic if the
    transcript was dishonest — the typed form the guarded engine turns
    into an [Adversary_fault] certificate. *)

val bipartition_oracle : t -> Models.Oracle.t
(** A radius-0 bipartition oracle reading coordinate parity from the
    current frames — the honest oracle for algorithms that want one on
    this (bipartite) virtual host. *)
