(** Empirical locality measurement: the harness behind the Theta(log n)
    scaling experiments (E1/E4 in DESIGN.md).

    The {e measured locality} of an algorithm family on a host is the
    smallest [T] at which it produces a proper coloring against a given
    set of adversarial presentation orders.  For the Theorem 4 algorithm
    this should track [3 (k-1) log2 n]; for the Theorem 1 adversary, the
    smallest surviving [T] tracks [log n] from below. *)

type upper_sweep_point = {
  n : int;  (** host size *)
  t_star : int;  (** smallest locality that succeeded on all orders *)
  swaps_at_t_star : int;  (** Algorithm-1 executions at that locality *)
}

val min_locality_for_success :
  host:Grid_graph.Graph.t ->
  palette:int ->
  orders:Grid_graph.Graph.node list list ->
  make:(t:int -> Models.Algorithm.t) ->
  ?oracle:(to_host:(Grid_graph.Graph.node -> Grid_graph.Graph.node) -> Models.Oracle.t) ->
  ?hints:(Grid_graph.Graph.node -> Models.View.hint option) ->
  t_max:int ->
  unit ->
  int option
(** Binary search (success at [t] is monotone in practice, and verified
    at the returned point) for the smallest [t <= t_max] at which
    [make ~t] colors the host properly under {e every} order; [None] if
    even [t_max] fails. *)

val adversarial_orders : host:Grid_graph.Graph.t -> seeds:int list -> Grid_graph.Graph.node list list
(** A spread of stress orders: sequential; a two-ends-inward order
    (maximizes late merges of large groups); a bit-reversal order
    (maximizes the pairwise merge-tree depth, the Theorem 4 worst case);
    and the seeded shuffles. *)

val min_defeating_b : n_side:int -> t:int -> algorithm:(unit -> Models.Algorithm.t) -> k_max:int -> int option
(** Smallest b-value target at which the Theorem 1 adversary defeats a
    fresh instance of the algorithm on an [n_side^2] virtual grid;
    [None] if it survives every [k <= k_max]. *)
