(** Union-find over a growing universe.

    Like {!Grid_graph.Union_find} but elements (view handles) appear over
    time, which is how groups evolve in an Online-LOCAL run. *)

type t

val create : unit -> t

val ensure : t -> int -> unit
(** Make sure elements [0 .. handle] exist (as singletons if new). *)

val find : t -> int -> int
val union : t -> int -> int -> int
val same : t -> int -> int -> bool
val size : t -> int -> int
