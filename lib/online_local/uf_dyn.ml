type t = {
  mutable parent : int array;
  mutable set_size : int array;
  mutable used : int;
}

let create () = { parent = Array.make 16 (-1); set_size = Array.make 16 1; used = 0 }

let ensure t handle =
  let cap = Array.length t.parent in
  if handle >= cap then begin
    let cap' = max (handle + 1) (2 * cap) in
    let parent = Array.make cap' (-1) and set_size = Array.make cap' 1 in
    Array.blit t.parent 0 parent 0 cap;
    Array.blit t.set_size 0 set_size 0 cap;
    t.parent <- parent;
    t.set_size <- set_size
  end;
  while t.used <= handle do
    t.parent.(t.used) <- t.used;
    t.used <- t.used + 1
  done

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    let big, small =
      if t.set_size.(ra) >= t.set_size.(rb) then (ra, rb) else (rb, ra)
    in
    t.parent.(small) <- big;
    t.set_size.(big) <- t.set_size.(big) + t.set_size.(small);
    big
  end

let same t a b = find t a = find t b
let size t x = t.set_size.(find t x)
