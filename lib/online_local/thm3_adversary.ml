type report = {
  result : [ `Defeated of Models.Run_stats.violation | `Survived ];
  first_class : Colorings.Colorful.classification option;
  last_class : Colorings.Colorful.classification option;
  seam_used : bool;
  presented : int;
  revealed : int;
  preconditions_met : bool;
}

let class_name = function
  | Colorings.Colorful.Row_colorful -> "row"
  | Colorings.Colorful.Column_colorful -> "col"
  | Colorings.Colorful.Both -> "both"
  | Colorings.Colorful.Neither -> "neither"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>result=%s first=%s last=%s seam=%b presented=%d preconditions=%b@]"
    (match r.result with
    | `Defeated v -> Format.asprintf "DEFEATED (%a)" Models.Run_stats.pp_violation v
    | `Survived -> "survived")
    (match r.first_class with None -> "-" | Some c -> class_name c)
    (match r.last_class with None -> "-" | Some c -> class_name c)
    r.seam_used r.presented r.preconditions_met

let run ?(bulk = false) ?memo ~k ~gadgets ~algorithm () =
  if k < 3 then invalid_arg "thm3: k must be >= 3";
  if gadgets < 3 then invalid_arg "thm3: need at least 3 gadgets";
  let n = gadgets * k * k in
  let palette = (2 * k) - 2 in
  let t = algorithm.Models.Algorithm.locality ~n in
  let seam = gadgets / 2 in
  (* Gadget l sits at chain distance |l - l'| from gadget l', so the
     T-ball of gadget 0 touches gadgets 0..T and the T-ball of the last
     touches gadgets >= gadgets-1-T; they must miss each other and the
     seam. *)
  let preconditions_met = t < seam && t < gadgets - 2 - seam in
  let first = 0 and last = gadgets - 1 in
  let plain = Topology.Gadget.create ~k ~gadgets () in
  let order_for chain =
    let g l = Topology.Gadget.gadget_nodes chain l in
    let prefix = g first @ g last in
    let middle =
      List.concat_map (fun l -> g l) (List.init (gadgets - 2) (fun i -> i + 1))
    in
    (g first @ g last, prefix @ middle)
  in
  let run_on chain order =
    (* Raw gadget coordinates as hints: identical on the plain and seam
       hosts (which differ by the gadget transposition symmetry), so the
       probe-and-replay determinism is preserved. *)
    let hints v =
      let g, i, j = Topology.Gadget.coords chain v in
      Some (Models.View.Gadget_pos { frame = 0; gadget = g; row = i; col = j })
    in
    Models.Fixed_host.run ~bulk ?memo ~hints
      ~host:(Topology.Gadget.graph chain)
      ~palette ~algorithm ~order ()
  in
  let prefix, full_order = order_for plain in
  if not preconditions_met then begin
    let outcome = run_on plain full_order in
    {
      result =
        (match outcome.Models.Run_stats.violation with
        | Some v -> `Defeated v
        | None -> `Survived);
      first_class = None;
      last_class = None;
      seam_used = false;
      presented = outcome.Models.Run_stats.presented;
      revealed = outcome.Models.Run_stats.revealed;
      preconditions_met;
    }
  end
  else begin
    let probe = run_on plain prefix in
    let classify chain coloring l =
      Colorings.Colorful.classify
        (Colorings.Colorful.matrix_of_gadget chain coloring ~gadget:l)
    in
    let seam_used, first_class, last_class =
      match probe.Models.Run_stats.violation with
      | Some _ -> (false, None, None)
      | None ->
          let c0 = classify plain probe.Models.Run_stats.coloring first in
          let cl = classify plain probe.Models.Run_stats.coloring last in
          (* Transpose the suffix exactly when the two ends agree; under
             the seam host the last gadget's classification flips. *)
          let same =
            match (c0, cl) with
            | Colorings.Colorful.Row_colorful, Colorings.Colorful.Row_colorful
            | Colorings.Colorful.Column_colorful, Colorings.Colorful.Column_colorful ->
                true
            | _ -> false
          in
          (same, Some c0, Some cl)
    in
    let chain =
      if seam_used then Topology.Gadget.create ~seam ~k ~gadgets () else plain
    in
    let _, full_order =
      if seam_used then order_for chain else (prefix, full_order)
    in
    let outcome = run_on chain full_order in
    (* Re-derive the last gadget's classification on the chosen host
       (identical colors; the transposition changes what counts as a row). *)
    let last_class =
      match (last_class, seam_used) with
      | Some _, _ when Colorings.Coloring.colored_count outcome.Models.Run_stats.coloring > 0 -> (
          match
            List.for_all
              (fun v -> Colorings.Coloring.is_colored outcome.Models.Run_stats.coloring v)
              (Topology.Gadget.gadget_nodes chain last)
          with
          | true ->
              Some
                (Colorings.Colorful.classify
                   (Colorings.Colorful.matrix_of_gadget chain
                      outcome.Models.Run_stats.coloring ~gadget:last))
          | false -> last_class)
      | lc, _ -> lc
    in
    {
      result =
        (match outcome.Models.Run_stats.violation with
        | Some v -> `Defeated v
        | None -> `Survived);
      first_class;
      last_class;
      seam_used;
      presented = outcome.Models.Run_stats.presented;
      revealed = outcome.Models.Run_stats.revealed;
      preconditions_met;
    }
  end
