(** The Theorem 1 adversary: 3-coloring a simple grid needs locality
    Omega(log n) in Online-LOCAL.

    The strategy of Lemma 3.6, transcribed: recursively force two
    directed row paths of b-value [>= k-1] in independent frames, commit
    their relative placement with a region gap of 2 or 3 columns chosen
    so the connecting path's b-value parity breaks the tie (Lemma 3.5),
    and read off a path of b-value [>= k] from one of the four candidate
    orientations.  The Theorem 1 endgame then asks for a second row at
    vertical distance [2T + 2], orients it favourably (the frames are
    separate components, so the reflection is free), fills the rectangle
    between them, and exhibits a directed cycle of nonzero b-value —
    impossible for a proper coloring by Lemma 3.4, so a monochromatic
    edge must exist and is reported as the violation certificate.

    The recursion's region width doubles per b-value unit, so the forced
    b-value on an [s x s] grid is about [log2 s] — and the cycle argument
    needs [k > 4T + 4]: the executable form of the Omega(log n) bound. *)

type report = {
  result : [ `Defeated of Models.Run_stats.violation | `Survived ];
  forced_b : int;  (** b-value of the directed path the recursion achieved *)
  cycle_b : int option;  (** b-value of the closing cycle (endgame only) *)
  presented : int;
  revealed : int;
  width : int;  (** columns spanned by the final merged region *)
  height : int;  (** rows spanned, including the second-row band *)
  fits : bool;  (** whether the whole construction fits in n_side^2 *)
  snapshot : string option;
      (** with [~snapshot:true]: an ASCII picture of the endgame window
          (digits = output colors, 'o' = revealed but never presented,
          ' ' = unseen) — the library's rendition of the paper's
          Figure 6 *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?bulk:bool ->
  ?memo:Canon.Memo.ctx ->
  ?endgame:bool ->
  ?validate:bool ->
  ?snapshot:bool ->
  ?dims:int * int ->
  n_side:int ->
  k:int ->
  algorithm:Models.Algorithm.t ->
  unit ->
  report
(** Play the adversary with b-value target [k] against the algorithm on
    a virtual [n_side x n_side] grid — or on a rectangular
    [rows x cols] grid when [~dims:(rows, cols)] is given, which
    exercises the remark after Theorem 1: on an [(a x b)] grid the
    construction needs width about [2^k T] ≤ b {e and} height
    [2T + 3 + 2T] ≤ a, yielding the Omega(min(log b, a)) bound.
    [~endgame:false] stops after the path construction (useful for
    measuring forced b-values at scale without paying for the rectangle
    fill).  [~validate:true] replays the transcript through
    {!Virtual_grid.validate} — quadratic, tests only.  [~bulk:true] is
    forwarded to {!Virtual_grid.create}: per-step observability events
    are skipped, the report is unchanged. *)

val recommended_k : n_side:int -> t:int -> int
(** The largest b-value target whose construction (path plus endgame
    rectangle) still fits in an [n_side x n_side] grid against a
    locality-[t] algorithm, per the actual width recurrence
    [w(k) = 2 w(k-1) + 3], [w(0) = 2t + 1].  0 when even the base case
    does not fit. *)

val guaranteed : t:int -> k:int -> bool
(** Whether the proof guarantees defeat: [k > 4t + 4], so the cycle
    b-value [k - 2 (2t + 2)] is positive regardless of how the algorithm
    colors the connecting columns. *)
