open Grid_graph

type report = {
  result : [ `Defeated of Models.Run_stats.violation | `Survived ];
  s_east : int;
  s_west : int;
  reflected : bool;
  presented : int;
  revealed : int;
  preconditions_met : bool;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>result=%s s_east=%d s_west=%d reflected=%b presented=%d preconditions=%b@]"
    (match r.result with
    | `Defeated v -> Format.asprintf "DEFEATED (%a)" Models.Run_stats.pp_violation v
    | `Survived -> "survived")
    r.s_east r.s_west r.reflected r.presented r.preconditions_met

let variant_host_rect ~wrap ~rows ~cols ~reflect ~band_lo ~band_hi =
  if rows < 3 || cols < 3 then invalid_arg "thm2: dimensions must be >= 3";
  let id r j = (r * cols) + j in
  let sigma j = if reflect then (cols - j) mod cols else j in
  let in_band r = r >= band_lo && r <= band_hi in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      (* Horizontal row cycle (identical in both variants). *)
      edges := (id r j, id r ((j + 1) mod cols)) :: !edges;
      (* Vertical edge r -> r+1 (torus wraps; cylinder stops). *)
      let r' = r + 1 in
      let r'' = if r' = rows then (match wrap with `Toroidal -> Some 0 | `Cylindrical -> None) else Some r' in
      match r'' with
      | None -> ()
      | Some r'' ->
          let crossing = in_band r <> in_band r'' in
          let j' = if crossing then sigma j else j in
          edges := (id r j, id r'' j') :: !edges
    done
  done;
  Graph.create ~n:(rows * cols) ~edges:!edges

let variant_host ~wrap ~side ~reflect ~band_lo ~band_hi =
  variant_host_rect ~wrap ~rows:side ~cols:side ~reflect ~band_lo ~band_hi

let row_cycle_b_rect coloring ~cols ~row ~east =
  let color j = Colorings.Coloring.get_exn coloring ((row * cols) + j) in
  let a cu cv = if cu = 2 || cv = 2 then 0 else cu - cv in
  let b = ref 0 in
  for j = 0 to cols - 1 do
    let j' = (j + 1) mod cols in
    if east then b := !b + a (color j) (color j')
    else b := !b + a (color j') (color j)
  done;
  !b

let row_cycle_b coloring ~side ~row ~east = row_cycle_b_rect coloring ~cols:side ~row ~east

let run_rect ?(bulk = false) ?memo ~wrap ~rows ~cols ~algorithm () =
  let n = rows * cols in
  let t = algorithm.Models.Algorithm.locality ~n in
  (* Odd columns make the row b-values odd; 4T+4 rows leave room for two
     non-interacting bands plus unrevealed seam rows.  Only the row count
     gates the locality: the remark after Theorem 2 (Omega(a) whenever
     the number of columns b is odd). *)
  let preconditions_met = cols mod 2 = 1 && (4 * t) + 4 <= rows in
  (* Bands: band 1 around row t, band 2 around row 3t+2; the reflected
     band covers rows 2t+1 .. 4t+3 so both seams are unrevealed when the
     two rows have been presented. *)
  let row1 = t and row2 = (3 * t) + 2 in
  let band_lo = (2 * t) + 1 and band_hi = min ((4 * t) + 3) (rows - 1) in
  let row_nodes r = List.init cols (fun j -> (r * cols) + j) in
  let prefix = row_nodes row1 @ row_nodes row2 in
  (* Dense packed-int set — the executor core's representation — instead
     of an [(int, unit)] hashtable for the prefix-complement scan. *)
  let in_prefix = Grid_graph.Packed.Set.create n in
  List.iter (fun v -> Grid_graph.Packed.Set.add in_prefix v) prefix;
  let rest =
    List.filter
      (fun v -> not (Grid_graph.Packed.Set.mem in_prefix v))
      (List.init n (fun v -> v))
  in
  let full_order = prefix @ rest in
  let run_on host order =
    Models.Fixed_host.run ~bulk ?memo ~host ~palette:3 ~algorithm ~order ()
  in
  if not preconditions_met then
    (* The attack is only guaranteed above the threshold; still play the
       plain host so sweeps can chart the frontier. *)
    let host = variant_host_rect ~wrap ~rows ~cols ~reflect:false ~band_lo ~band_hi in
    let outcome = run_on host full_order in
    let coloring = outcome.Models.Run_stats.coloring in
    let s_east, s_west =
      if Colorings.Coloring.is_total coloring then
        ( row_cycle_b_rect coloring ~cols ~row:row1 ~east:true,
          row_cycle_b_rect coloring ~cols ~row:row2 ~east:false )
      else (0, 0)
    in
    {
      result =
        (match outcome.Models.Run_stats.violation with
        | Some v -> `Defeated v
        | None -> `Survived);
      s_east;
      s_west;
      reflected = false;
      presented = outcome.Models.Run_stats.presented;
      revealed = outcome.Models.Run_stats.revealed;
      preconditions_met;
    }
  else begin
    (* Probe: color the two rows on the plain host. *)
    let plain = variant_host_rect ~wrap ~rows ~cols ~reflect:false ~band_lo ~band_hi in
    let probe = run_on plain prefix in
    let reflect =
      match probe.Models.Run_stats.violation with
      | Some _ -> false  (* already failing; no need to reflect *)
      | None ->
          let s1 = row_cycle_b_rect probe.Models.Run_stats.coloring ~cols ~row:row1 ~east:true in
          let s2 = row_cycle_b_rect probe.Models.Run_stats.coloring ~cols ~row:row2 ~east:false in
          s1 + s2 = 0
    in
    let host =
      if reflect then variant_host_rect ~wrap ~rows ~cols ~reflect:true ~band_lo ~band_hi
      else plain
    in
    let outcome = run_on host full_order in
    let coloring = outcome.Models.Run_stats.coloring in
    let s_east, s_west =
      if Colorings.Coloring.is_total coloring then
        ( row_cycle_b_rect coloring ~cols ~row:row1 ~east:true,
          row_cycle_b_rect coloring ~cols ~row:row2 ~east:false )
      else (0, 0)
    in
    {
      result =
        (match outcome.Models.Run_stats.violation with
        | Some v -> `Defeated v
        | None -> `Survived);
      s_east;
      s_west;
      reflected = reflect;
      presented = outcome.Models.Run_stats.presented;
      revealed = outcome.Models.Run_stats.revealed;
      preconditions_met;
    }
  end

let run ?bulk ?memo ~wrap ~side ~algorithm () =
  run_rect ?bulk ?memo ~wrap ~rows:side ~cols:side ~algorithm ()
