module V = Models.View

(* Mirror of G_{k+1} built over the handles of A''s view of G_k.  An
   A-handle denotes either a main node (a G_k handle) or its twin. *)
type mirror = {
  mutable back : (int * bool) array;  (* A-handle -> (G_k handle, is_twin) *)
  mutable count : int;
  fwd : (int * bool, int) Hashtbl.t;  (* (G_k handle, is_twin) -> A-handle *)
  outputs : (int, int) Hashtbl.t;  (* A-handle -> color *)
  mutable current : V.t option;  (* A''s view at the current step *)
  mutable steps : int;
}

let mirror_create () =
  {
    back = Array.make 64 (0, false);
    count = 0;
    fwd = Hashtbl.create 256;
    outputs = Hashtbl.create 256;
    current = None;
    steps = 0;
  }

let current_view m =
  match m.current with
  | Some v -> v
  | None -> invalid_arg "thm5: simulation used before any step"

let lookup m key = Hashtbl.find_opt m.fwd key

let allocate m key =
  match lookup m key with
  | Some a -> (a, false)
  | None ->
      if m.count >= Array.length m.back then begin
        let bigger = Array.make (2 * Array.length m.back) (0, false) in
        Array.blit m.back 0 bigger 0 m.count;
        m.back <- bigger
      end;
      let a = m.count in
      m.back.(a) <- key;
      m.count <- m.count + 1;
      Hashtbl.replace m.fwd key a;
      (a, true)

(* Neighbors in G_{k+1}, as A-handles, restricted to what A has been
   shown (i.e. allocated A-handles). *)
let a_neighbors m a =
  let view = current_view m in
  let h, is_twin = m.back.(a) in
  let mains = view.V.neighbors h in
  let candidates =
    if is_twin then (h, false) :: List.map (fun x -> (x, false)) mains
    else
      ((h, true) :: List.map (fun x -> (x, false)) mains)
      @ List.map (fun x -> (x, true)) mains
  in
  List.filter_map (lookup m) candidates

let make_a_view m ~n2 ~palette_a ~target ~new_nodes =
  let view = current_view m in
  {
    V.n_total = n2;
    palette = palette_a;
    node_count = (fun () -> m.count);
    neighbors = (fun a -> a_neighbors m a);
    mem_edge =
      (fun a b ->
        let h1, t1 = m.back.(a) and h2, t2 = m.back.(b) in
        match (t1, t2) with
        | false, false -> view.V.mem_edge h1 h2
        | true, true -> false  (* the twin layer is independent *)
        | true, false | false, true ->
            h1 = h2 || view.V.mem_edge h1 h2);
    id =
      (fun a ->
        let h, t = m.back.(a) in
        (2 * view.V.id h) + Bool.to_int t);
    output = (fun a -> Hashtbl.find_opt m.outputs a);
    hint = (fun _ -> None);
    target;
    new_nodes;
    step = m.steps;
  }

(* Present one G_{k+1} node to A.  [radius] is A's locality; the ball of
   a main (radius >= 1) or of a twin (radius >= 2) is mains+twins of the
   G_k ball; a twin at radius 1 sees only itself, its main and the
   main's neighbors. *)
let present_to_a m ~instance ~n2 ~palette_a ~radius key =
  let view = current_view m in
  let h, is_twin = key in
  m.steps <- m.steps + 1;
  let ball = V.ball view h radius in
  let reveal_keys =
    if not is_twin then
      List.concat_map (fun x -> [ (x, false); (x, true) ]) ball
    else if radius >= 2 then
      List.concat_map (fun x -> [ (x, false); (x, true) ]) ball
    else
      (h, true) :: (h, false)
      :: List.map (fun x -> (x, false)) (view.V.neighbors h)
  in
  let fresh = ref [] in
  List.iter
    (fun k' ->
      let a, is_new = allocate m k' in
      if is_new then fresh := a :: !fresh)
    (List.sort compare reveal_keys);
  let new_nodes = List.sort compare !fresh in
  let target =
    match lookup m key with Some a -> a | None -> assert false
  in
  let color = instance (make_a_view m ~n2 ~palette_a ~target ~new_nodes) in
  Hashtbl.replace m.outputs target color;
  color

let lift_oracle m inner =
  let parts = inner.Models.Oracle.parts in
  let query _a_view a_handles =
    let view = current_view m in
    let mains =
      List.filter_map
        (fun a ->
          let h, t = m.back.(a) in
          if t then None else Some h)
        a_handles
    in
    let main_parts =
      if mains = [] then [||] else inner.Models.Oracle.query view mains
    in
    let part_of_main = Hashtbl.create 64 in
    List.iteri (fun i h -> Hashtbl.replace part_of_main h main_parts.(i)) mains;
    let raw =
      Array.of_list
        (List.map
           (fun a ->
             let h, t = m.back.(a) in
             if t then parts  (* the twin layer is a fresh part *)
             else Hashtbl.find part_of_main h)
           a_handles)
    in
    Models.Oracle.canonicalize raw a_handles
  in
  { Models.Oracle.parts = parts + 1; radius = inner.Models.Oracle.radius; query }

let reduce ~inner =
  {
    Models.Algorithm.name = "thm5-reduce:" ^ inner.Models.Algorithm.name;
    locality = (fun ~n -> inner.Models.Algorithm.locality ~n:(2 * n));
    pure = false;
    instantiate =
      (fun ~n ~palette ~oracle ->
        let n2 = 2 * n in
        let palette_a = palette + 1 in
        let m = mirror_create () in
        let oracle_a = Option.map (fun o -> lift_oracle m o) oracle in
        let instance =
          inner.Models.Algorithm.instantiate ~n:n2 ~palette:palette_a
            ~oracle:oracle_a
        in
        let radius = inner.Models.Algorithm.locality ~n:n2 in
        fun view ->
          m.current <- Some view;
          let target = view.V.target in
          let c =
            match Hashtbl.find_opt m.fwd (target, false) with
            | Some a when Hashtbl.mem m.outputs a -> Hashtbl.find m.outputs a
            | Some _ | None ->
                present_to_a m ~instance ~n2 ~palette_a ~radius (target, false)
          in
          if c < palette && c >= 0 then c
          else if c = palette then
            (* A used the extra color on the main; the twin's color is a
               sound answer for G_k (it is adjacent to everything the
               main is adjacent to, plus the main itself). *)
            present_to_a m ~instance ~n2 ~palette_a ~radius (target, true)
          else c (* out-of-palette answer: pass the violation through *));
  }
