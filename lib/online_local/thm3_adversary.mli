(** The Theorem 3 adversary: (2k-2)-coloring k-partite graphs needs
    locality Omega(n) in Online-LOCAL.

    On the gadget chain [G*], any proper (2k-2)-coloring makes every
    gadget row-colorful or every gadget column-colorful (Lemma 4.6).  The
    adversary presents the first gadget, then the last; if the algorithm
    classifies them the same way, it replays the presentation on the
    {e seam variant} of [G*] — isomorphic to [G*] via transposing every
    gadget past an unrevealed seam, and identical to it on both revealed
    neighborhoods — under which the two classifications now conflict.
    Either way the completed coloring cannot be proper. *)

type report = {
  result : [ `Defeated of Models.Run_stats.violation | `Survived ];
  first_class : Colorings.Colorful.classification option;
      (** classification of gadget 0 after the probe *)
  last_class : Colorings.Colorful.classification option;
      (** classification of the last gadget after the probe (on the
          chosen host, i.e. post-transposition) *)
  seam_used : bool;
  presented : int;
  revealed : int;  (** nodes revealed in the final run — not printed by
      {!pp_report}, whose output is pinned by goldens *)
  preconditions_met : bool;  (** T-balls of the end gadgets clear of each other and of the seam *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?bulk:bool ->
  ?memo:Canon.Memo.ctx ->
  k:int ->
  gadgets:int ->
  algorithm:Models.Algorithm.t ->
  unit ->
  report
(** Play the adversary on a chain of [gadgets] gadgets of side [k]
    (so [n = gadgets * k^2]) with palette [2k - 2].  [~bulk:true] is
    forwarded to the executor (per-step observability skipped; report
    unchanged).
    @raise Invalid_argument if [k < 3] (with [k = 2] the palette would
    have 2 colors and the instance is degenerate) or [gadgets < 3]. *)
