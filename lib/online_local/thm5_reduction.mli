(** The reduction of Lemma 5.7 (Theorem 5): from an algorithm [A] that
    (k+2)-colors [G_{k+1}] to an algorithm [A'] that (k+1)-colors [G_k]
    with the same locality.

    [A'] simulates [A] on [G_{k+1}] — which it reconstructs on the fly
    from its own view of [G_k], since [G_{k+1}] is [G_k] plus a twin
    [u*] per node [u], adjacent to [u] and [u]'s neighbors.  When asked
    to color [u], [A'] presents [u] to [A]; if [A] answers with the extra
    color [k+1], [A'] presents the twin [u*] and answers with the twin's
    color instead (which cannot itself be the extra color under any
    proper coloring, as [u] and [u*] are adjacent).

    Because [G_{k+1}]'s twins add no shortcuts, the ball
    [B_{G_{k+1}}(u, T)] is exactly the mains and twins of
    [B_{G_k}(u, T)], so the simulation is information-precise: [A] sees
    exactly what the Online-LOCAL model would show it, and [A'] has
    locality [T].  Consequently a correct [A] yields a correct [A'] —
    which is how the Omega(log n) bound climbs from [k] to [k + 1]. *)

val reduce : inner:Models.Algorithm.t -> Models.Algorithm.t
(** [reduce ~inner] is [A'] as above.  The returned algorithm's palette
    must be one smaller than [inner]'s; its oracle (if provided by the
    executor) is lifted to a [G_{k+1}] oracle by placing every twin in a
    fresh part.  [inner]'s locality is evaluated at [2 n]. *)
