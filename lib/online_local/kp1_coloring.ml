module V = Models.View

type stats = {
  mutable merges : int;
  mutable type_changes : int;
  mutable swaps : int;
  mutable wave_commits : int;
  mutable escapes : int;
  mutable largest_group : int;
}

let fresh_stats () =
  {
    merges = 0;
    type_changes = 0;
    swaps = 0;
    wave_commits = 0;
    escapes = 0;
    largest_group = 0;
  }

let ceil_log2 n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (2 * p) in
  go 0 1

let default_locality ~k ~n = max 1 (3 * (k - 1) * ceil_log2 n)

(* A group is a connected component of the seen region.  Its nodes carry
   {e labels} in [{0..k-1}]: a fixed bijective renaming of the parts of the
   unique k-partition restricted to the group (globally consistent within
   the group — the renaming is applied wholesale when groups merge, which
   is what lets oracle queries stay local: one representative per label
   stands in for the whole group).  [type_perm] maps labels to colors;
   while Algorithm 1 is mid-flight it temporarily maps into [{0..k}]
   (using the spare color), hence a plain int array rather than a
   {!Colorings.Perm.t}. *)
type group = {
  mutable members : int list;
  mutable committed_nodes : int list;  (* the paper's X' *)
  mutable type_perm : int array;  (* label -> color *)
  mutable reps : int array;  (* label -> a member with that label, or -1 *)
  mutable size : int;
}

type strategy = Oracle_reps | Bipartite_incremental

type state = {
  k : int;
  spare : int;  (* the extra color k *)
  flip : [ `Smaller | `Larger ];
  strategy : strategy;
  oracle : Models.Oracle.t option;
  uf : Uf_dyn.t;
  groups : (int, group) Hashtbl.t;  (* union-find root -> group *)
  label : (int, int) Hashtbl.t;  (* handle -> label *)
  committed : (int, int) Hashtbl.t;  (* handle -> color *)
  stats : stats;
}

let label_exn st h =
  match Hashtbl.find_opt st.label h with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "kp1: handle %d has no label" h)

let is_committed st h = Hashtbl.mem st.committed h

let commit st h color =
  (match Hashtbl.find_opt st.committed h with
  | Some c when c <> color ->
      invalid_arg (Printf.sprintf "kp1: recommitting handle %d (%d -> %d)" h c color)
  | Some _ -> ()
  | None -> Hashtbl.replace st.committed h color);
  ()

(* ------------------------------------------------------------------ *)
(* Labeling new nodes                                                  *)
(* ------------------------------------------------------------------ *)

(* Oracle-based labeling: query the partition of (new nodes + one
   representative per label of every adjacent group); translate the
   canonical parts into the base group's label space, extending with
   fresh labels for parts the base group has never seen. *)
let oracle_label st (view : V.t) ~new_nodes ~base ~others =
  let oracle =
    match st.oracle with
    | Some o -> o
    | None -> invalid_arg "kp1: this instance needs a partition oracle"
  in
  let reps_of g =
    Array.to_list (Array.of_seq (Seq.filter (fun r -> r >= 0) (Array.to_seq g.reps)))
  in
  let anchors = List.concat_map reps_of (match base with None -> others | Some b -> b :: others) in
  let queried = new_nodes @ anchors in
  let parts = oracle.Models.Oracle.query view queried in
  let part_of = Hashtbl.create (List.length queried * 2 + 1) in
  List.iteri (fun i h -> Hashtbl.replace part_of h parts.(i)) queried;
  (* sigma: canonical part -> base label. *)
  let sigma = Array.make st.k (-1) in
  let sigma_range = Array.make st.k false in
  (match base with
  | None -> ()
  | Some b ->
      Array.iteri
        (fun l rep ->
          if rep >= 0 then begin
            let p = Hashtbl.find part_of rep in
            if sigma.(p) >= 0 && sigma.(p) <> l then
              invalid_arg "kp1: oracle partition inconsistent with base labels";
            sigma.(p) <- l;
            sigma_range.(l) <- true
          end)
        b.reps);
  (* Extend sigma over every part present in the query. *)
  let next_free = ref 0 in
  let fresh_label () =
    while !next_free < st.k && sigma_range.(!next_free) do incr next_free done;
    if !next_free >= st.k then invalid_arg "kp1: ran out of labels (k too small?)";
    sigma_range.(!next_free) <- true;
    !next_free
  in
  List.iter
    (fun h ->
      let p = Hashtbl.find part_of h in
      if sigma.(p) < 0 then sigma.(p) <- fresh_label ())
    queried;
  (* Label the new nodes. *)
  List.iter (fun h -> Hashtbl.replace st.label h sigma.(Hashtbl.find part_of h)) new_nodes;
  (* Renaming of each other group's labels into the base space: rho_X such
     that rho_X(label_X of part p) = sigma(p). *)
  let rho_of x =
    let rho = Array.make st.k (-1) in
    let used = Array.make st.k false in
    Array.iteri
      (fun l rep ->
        if rep >= 0 then begin
          let p = Hashtbl.find part_of rep in
          if sigma.(p) < 0 then
            invalid_arg "kp1: part of a group representative missing from sigma";
          rho.(l) <- sigma.(p);
          used.(sigma.(p)) <- true
        end)
      x.reps;
    (* Extend to a full bijection over labels the group never used. *)
    let free = ref 0 in
    Array.iteri
      (fun l image ->
        if image < 0 then begin
          while !free < st.k && used.(!free) do incr free done;
          rho.(l) <- !free;
          used.(!free) <- true
        end)
      rho;
    rho
  in
  List.map (fun x -> (x, rho_of x)) others

(* Incremental bipartite labeling (k = 2, no oracle).  The new nodes
   (ball minus already-revealed) may be disconnected, with pockets touching
   only some of the merging groups, so a single-seed flood is not enough.
   Instead: flood sides through the new nodes from {e every} old contact,
   tagging each new node with the group its side is aligned to; every
   edge joining differently-aligned territory yields a parity constraint
   between two groups.  Solving the (tiny) constraint graph with the base
   group pinned to "no flip" decides which groups and pockets flip. *)
let bipartite_label st (view : V.t) ~new_nodes ~base ~others =
  let in_new = Hashtbl.create (List.length new_nodes * 2 + 1) in
  List.iter (fun h -> Hashtbl.replace in_new h ()) new_nodes;
  let groups = (match base with None -> [] | Some b -> [ b ]) @ others in
  let class_count = List.length groups + 1 in
  (* Class indices: 0 .. t for the old groups (0 = base when present), and
     [class_count - 1] is reserved for the fresh-seed class used when
     there is no old group at all. *)
  let class_of_old_member =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun i g -> Hashtbl.replace tbl (Uf_dyn.find st.uf (List.hd g.members)) i)
      groups;
    fun x -> Hashtbl.find_opt tbl (Uf_dyn.find st.uf x)
  in
  (* side/cls of each new node. *)
  let side = Hashtbl.create (List.length new_nodes * 2 + 1) in
  let cls = Hashtbl.create (List.length new_nodes * 2 + 1) in
  (* Parity constraints between classes: (a, b, flip_needed). *)
  let constraints = ref [] in
  let queue = Queue.create () in
  let assign w s c =
    Hashtbl.replace side w s;
    Hashtbl.replace cls w c;
    Queue.add w queue
  in
  (* Seed from every contact with an old labeled node. *)
  List.iter
    (fun w ->
      List.iter
        (fun x ->
          if not (Hashtbl.mem in_new x) then
            match (Hashtbl.find_opt st.label x, class_of_old_member x) with
            | Some lx, Some c ->
                if not (Hashtbl.mem side w) then assign w (1 - lx) c
                else
                  (* Second contact: record the implied constraint. *)
                  constraints :=
                    ( Hashtbl.find cls w,
                      c,
                      Hashtbl.find side w <> 1 - lx )
                    :: !constraints
            | _ -> ())
        (view.V.neighbors w))
    new_nodes;
  (if groups = [] then
     match new_nodes with
     | [] -> ()
     | seed :: _ -> assign seed 0 (class_count - 1));
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    let sw = Hashtbl.find side w and cw = Hashtbl.find cls w in
    List.iter
      (fun x ->
        if Hashtbl.mem in_new x then
          if not (Hashtbl.mem side x) then assign x (1 - sw) cw
          else if Hashtbl.find cls x <> cw then
            constraints :=
              (cw, Hashtbl.find cls x, Hashtbl.find side x <> 1 - sw) :: !constraints)
      (view.V.neighbors w)
  done;
  (* A pocket of new nodes with no old contact at all cannot exist when
     groups is non-empty: the ball is connected in the host, so each
     pocket borders revealed territory, i.e. some old group. *)
  List.iter
    (fun w ->
      if not (Hashtbl.mem side w) then
        invalid_arg "kp1: bipartite labeling left a new node unlabeled")
    new_nodes;
  (* Solve the constraint graph; class 0 (the base, or the fresh class) is
     pinned to "no flip". *)
  let adjacency = Array.make class_count [] in
  List.iter
    (fun (a, b, f) ->
      adjacency.(a) <- (b, f) :: adjacency.(a);
      adjacency.(b) <- (a, f) :: adjacency.(b))
    !constraints;
  let flip = Array.make class_count (-1) in
  let cqueue = Queue.create () in
  flip.(0) <- 0;
  Queue.add 0 cqueue;
  if class_count > 1 && groups = [] then flip.(class_count - 1) <- 0;
  while not (Queue.is_empty cqueue) do
    let a = Queue.pop cqueue in
    List.iter
      (fun (b, f) ->
        let want = flip.(a) lxor Bool.to_int f in
        if flip.(b) = -1 then begin
          flip.(b) <- want;
          Queue.add b cqueue
        end
        else if flip.(b) <> want then
          invalid_arg "kp1: inconsistent bipartite contacts (host not bipartite?)")
      adjacency.(a)
  done;
  (* Classes never reached by a constraint path from the base can only
     happen for groups with no effective contact — impossible by
     construction, but default them to "no flip" defensively. *)
  Array.iteri (fun i f -> if f = -1 then flip.(i) <- 0) flip;
  (* Commit the labels of the new nodes, flipping flipped classes. *)
  List.iter
    (fun w ->
      let s = Hashtbl.find side w lxor flip.(Hashtbl.find cls w) in
      Hashtbl.replace st.label w s)
    new_nodes;
  (* Renamings for the other groups follow their class verdicts. *)
  List.mapi (fun i g -> (i + (match base with None -> 0 | Some _ -> 1), g)) others
  |> List.map (fun (class_index, g) ->
         let rho = if flip.(class_index) = 1 then [| 1; 0 |] else [| 0; 1 |] in
         (g, rho))

(* ------------------------------------------------------------------ *)
(* Algorithm 1: swapping two colors of a group via barrier layers       *)
(* ------------------------------------------------------------------ *)

let change_index st (view : V.t) g ~from_color ~to_color ~group_membership =
  (* Commit one layer around X' = the committed nodes of g: part s gets
     the (updated) color of s.  Expands X'. *)
  let ring = ref [] in
  let seen_ring = Hashtbl.create 64 in
  List.iter
    (fun x ->
      List.iter
        (fun w ->
          if (not (is_committed st w)) && not (Hashtbl.mem seen_ring w) then begin
            Hashtbl.replace seen_ring w ();
            ring := w :: !ring
          end)
        (view.V.neighbors x))
    g.committed_nodes;
  List.iter
    (fun w ->
      if not (group_membership w) then st.stats.escapes <- st.stats.escapes + 1;
      let l = label_exn st w in
      let c = if g.type_perm.(l) = from_color then to_color else g.type_perm.(l) in
      commit st w c;
      st.stats.wave_commits <- st.stats.wave_commits + 1)
    !ring;
  Array.iteri
    (fun l c -> if c = from_color then g.type_perm.(l) <- to_color)
    g.type_perm;
  g.committed_nodes <- List.rev_append !ring g.committed_nodes

let swap_colors st view g ~c1 ~c2 ~group_membership =
  st.stats.swaps <- st.stats.swaps + 1;
  change_index st view g ~from_color:c1 ~to_color:st.spare ~group_membership;
  change_index st view g ~from_color:c2 ~to_color:c1 ~group_membership;
  change_index st view g ~from_color:st.spare ~to_color:c2 ~group_membership

(* ------------------------------------------------------------------ *)
(* The per-step driver                                                  *)
(* ------------------------------------------------------------------ *)

let initial_type st ~target_label =
  (* Any permutation assigning color 0 to the target's part. *)
  let p = Array.make st.k (-1) in
  p.(target_label) <- 0;
  let next = ref 1 in
  Array.iteri
    (fun l c ->
      if c < 0 then begin
        p.(l) <- !next;
        incr next
      end)
    p;
  p

let group_of st h = Hashtbl.find st.groups (Uf_dyn.find st.uf h)

let union_all st (view : V.t) ~new_nodes ~merged =
  List.iter
    (fun w ->
      List.iter (fun x -> ignore (Uf_dyn.union st.uf w x)) (view.V.neighbors w))
    new_nodes;
  match new_nodes with
  | [] -> ()
  | w :: _ ->
      let root = Uf_dyn.find st.uf w in
      Hashtbl.replace st.groups root merged

let step st (view : V.t) =
  let target = view.V.target in
  let new_nodes = view.V.new_nodes in
  List.iter (fun h -> Uf_dyn.ensure st.uf h) new_nodes;
  Uf_dyn.ensure st.uf target;
  (* Old groups adjacent to the new ball. *)
  let in_new = Hashtbl.create (List.length new_nodes * 2 + 1) in
  List.iter (fun h -> Hashtbl.replace in_new h ()) new_nodes;
  let old_roots = Hashtbl.create 8 in
  List.iter
    (fun w ->
      List.iter
        (fun x ->
          if not (Hashtbl.mem in_new x) then
            Hashtbl.replace old_roots (Uf_dyn.find st.uf x) ())
        (view.V.neighbors w))
    new_nodes;
  let roots = Hashtbl.fold (fun r () acc -> r :: acc) old_roots [] in
  let old_groups = List.map (fun r -> Hashtbl.find st.groups r) roots in
  let sorted =
    (* The paper rewrites the smaller groups to match the largest; the
       `Larger ablation deliberately inverts the choice, breaking the
       log n bound on per-node type changes. *)
    match st.flip with
    | `Smaller -> List.sort (fun a b -> compare b.size a.size) old_groups
    | `Larger -> List.sort (fun a b -> compare a.size b.size) old_groups
  in
  (match (sorted, new_nodes) with
  | [], [] -> ()  (* nothing new: target's group already exists *)
  | [], _ :: _ ->
      (* Case 1: a brand-new group. *)
      let renames =
        match st.strategy with
        | Oracle_reps -> oracle_label st view ~new_nodes ~base:None ~others:[]
        | Bipartite_incremental ->
            bipartite_label st view ~new_nodes ~base:None ~others:[]
      in
      assert (renames = []);
      let g =
        {
          members = new_nodes;
          committed_nodes = [];
          type_perm = initial_type st ~target_label:(label_exn st target);
          reps = Array.make st.k (-1);
          size = List.length new_nodes;
        }
      in
      List.iter (fun h -> if g.reps.(label_exn st h) < 0 then g.reps.(label_exn st h) <- h) new_nodes;
      List.iter (fun r -> Hashtbl.remove st.groups r) roots;
      union_all st view ~new_nodes ~merged:g;
      st.stats.largest_group <- max st.stats.largest_group g.size
  | base :: others, _ ->
      (* Cases 2 and 3: merge into the largest adjacent group. *)
      if others <> [] then st.stats.merges <- st.stats.merges + 1;
      let renames =
        match st.strategy with
        | Oracle_reps -> oracle_label st view ~new_nodes ~base:(Some base) ~others
        | Bipartite_incremental ->
            bipartite_label st view ~new_nodes ~base:(Some base) ~others
      in
      (* Relabel the smaller groups into the base label space, then unify
         their types by color swaps (Algorithm 1). *)
      List.iter
        (fun (x, rho) ->
          List.iter
            (fun v -> Hashtbl.replace st.label v rho.(Hashtbl.find st.label v))
            x.members;
          let reps' = Array.make st.k (-1) in
          Array.iteri (fun l rep -> if rep >= 0 then reps'.(rho.(l)) <- rep) x.reps;
          x.reps <- reps';
          let perm' = Array.make st.k (-1) in
          Array.iteri (fun l c -> perm'.(rho.(l)) <- c) x.type_perm;
          x.type_perm <- perm';
          if x.type_perm <> base.type_perm && x.committed_nodes <> [] then begin
            st.stats.type_changes <- st.stats.type_changes + 1;
            let membership = Hashtbl.create (x.size * 2 + 1) in
            List.iter (fun v -> Hashtbl.replace membership v ()) x.members;
            let swaps =
              Colorings.Perm.transposition_decomposition
                ~src:(Colorings.Perm.of_array x.type_perm)
                ~dst:(Colorings.Perm.of_array base.type_perm)
            in
            List.iter
              (fun (c1, c2) ->
                swap_colors st view x ~c1 ~c2
                  ~group_membership:(fun v -> Hashtbl.mem membership v))
              swaps;
            if x.type_perm <> base.type_perm then
              invalid_arg "kp1: swap sequence failed to unify types"
          end
          else x.type_perm <- Array.copy base.type_perm)
        renames;
      (* Fold everything into the base record. *)
      List.iter
        (fun (x, _) ->
          base.members <- List.rev_append x.members base.members;
          base.committed_nodes <- List.rev_append x.committed_nodes base.committed_nodes;
          Array.iteri (fun l rep -> if base.reps.(l) < 0 && rep >= 0 then base.reps.(l) <- rep) x.reps;
          base.size <- base.size + x.size)
        renames;
      base.members <- List.rev_append new_nodes base.members;
      base.size <- base.size + List.length new_nodes;
      List.iter
        (fun h -> if base.reps.(label_exn st h) < 0 then base.reps.(label_exn st h) <- h)
        new_nodes;
      List.iter (fun r -> Hashtbl.remove st.groups r) roots;
      union_all st view ~new_nodes ~merged:base;
      st.stats.largest_group <- max st.stats.largest_group base.size);
  (* Color the target according to its group's type, unless a barrier
     already committed it. *)
  (if not (is_committed st target) then begin
     let g = group_of st target in
     let color = g.type_perm.(label_exn st target) in
     commit st target color;
     g.committed_nodes <- target :: g.committed_nodes
   end
   else begin
     (* Track it as committed within its group bookkeeping already. *)
     ()
   end);
  Hashtbl.find st.committed target

let make_internal ~k ~locality ~flip ~stats ~strategy ~name =
  if k < 2 then invalid_arg "kp1: k must be >= 2";
  {
    Models.Algorithm.name;
    locality;
    pure = false;
    instantiate =
      (fun ~n:_ ~palette ~oracle ->
        if palette < k + 1 then invalid_arg "kp1: palette must have k+1 colors";
        (match (strategy, oracle) with
        | Oracle_reps, None -> invalid_arg "kp1: partition oracle required"
        | Oracle_reps, Some o ->
            if o.Models.Oracle.parts <> k then invalid_arg "kp1: oracle parts <> k"
        | Bipartite_incremental, _ -> ());
        let st =
          {
            k;
            spare = k;
            flip;
            strategy;
            oracle;
            uf = Uf_dyn.create ();
            groups = Hashtbl.create 64;
            label = Hashtbl.create 1024;
            committed = Hashtbl.create 1024;
            stats;
          }
        in
        fun view -> step st view);
  }

let make ?locality ?(flip = `Smaller) ?stats ~k () =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let locality =
    match locality with Some f -> f | None -> fun ~n -> default_locality ~k ~n
  in
  make_internal ~k ~locality ~flip ~stats ~strategy:Oracle_reps
    ~name:(Printf.sprintf "kp1-coloring(k=%d)" k)

let ael_bipartite ?locality ?stats () =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let locality =
    match locality with Some f -> f | None -> fun ~n -> default_locality ~k:2 ~n
  in
  make_internal ~k:2 ~locality ~flip:`Smaller ~stats ~strategy:Bipartite_incremental
    ~name:"ael-3coloring-bipartite"
