module Vg = Virtual_grid

type report = {
  result : [ `Defeated of Models.Run_stats.violation | `Survived ];
  forced_b : int;
  cycle_b : int option;
  presented : int;
  revealed : int;
  width : int;
  height : int;
  fits : bool;
  snapshot : string option;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>result=%s forced_b=%d cycle_b=%s presented=%d revealed=%d span=%dx%d fits=%b@]"
    (match r.result with
    | `Defeated v -> Format.asprintf "DEFEATED (%a)" Models.Run_stats.pp_violation v
    | `Survived -> "survived")
    r.forced_b
    (match r.cycle_b with None -> "-" | Some b -> string_of_int b)
    r.presented r.revealed r.width r.height r.fits

(* A directed row path, fully presented, inside a frame: row 0, columns
   [lo .. hi], traversed left-to-right ([`Fwd]) or right-to-left, with
   b-value [b] in that direction. *)
type path = { frame : Vg.frame; lo : int; hi : int; dir : [ `Fwd | `Rev ]; b : int }

exception Defeated_early of Models.Run_stats.violation

let check vg =
  match Vg.violation vg with Some v -> raise (Defeated_early v) | None -> ()

let color_exn vg f ~row ~col =
  match Vg.color_at vg f ~row ~col with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "thm1: expected a color at (%d,%d)" row col)

let a_value cu cv = if cu = 2 || cv = 2 then 0 else cu - cv

(* b-value of the row-0 path [lo .. hi] traversed forward. *)
let b_row vg f ~lo ~hi =
  let b = ref 0 in
  for col = lo to hi - 1 do
    b :=
      !b
      + a_value (color_exn vg f ~row:0 ~col) (color_exn vg f ~row:0 ~col:(col + 1))
  done;
  !b

(* b-value of the column path at [col] traversed from [row_from] towards
   [row_to] (either direction). *)
let b_col vg f ~col ~row_from ~row_to =
  let step = if row_to >= row_from then 1 else -1 in
  let b = ref 0 in
  let row = ref row_from in
  while !row <> row_to do
    b :=
      !b
      + a_value
          (color_exn vg f ~row:!row ~col)
          (color_exn vg f ~row:(!row + step) ~col);
    row := !row + step
  done;
  !b

let normalize_forward vg p =
  match p.dir with
  | `Fwd -> p
  | `Rev ->
      Vg.reflect vg p.frame;
      { p with lo = -p.hi; hi = -p.lo; dir = `Fwd }

let present_row vg f ~row ~col_lo ~col_hi =
  for col = col_lo to col_hi do
    (match Vg.handle_at vg f ~row ~col with
    | Some h when Vg.color_at vg f ~row ~col <> None -> ignore h
    | Some _ | None -> ignore (Vg.present vg f ~row ~col));
    check vg
  done

(* Lemma 3.6: force a row path with b-value >= k. *)
let rec build vg ~k ~radius =
  if k <= 0 then begin
    let f = Vg.new_frame vg in
    ignore (Vg.present vg f ~row:0 ~col:0);
    check vg;
    { frame = f; lo = 0; hi = 0; dir = `Fwd; b = 0 }
  end
  else begin
    let p1 = build vg ~k:(k - 1) ~radius in
    if p1.b >= k then p1
    else begin
      let p2 = build vg ~k:(k - 1) ~radius in
      if p2.b >= k then p2
      else begin
        let p1 = normalize_forward vg p1 and p2 = normalize_forward vg p2 in
        (* Region extents decide the placement; the gap between the two
           discovered regions is the paper's l in {2, 3}. *)
        let _, (_, b1_region) = Vg.span vg p1.frame in
        let _, (a2_region, _) = Vg.span vg p2.frame in
        let s_col_of gap = p2.lo + (b1_region + gap + 1 - a2_region) in
        let cv = color_exn vg p1.frame ~row:0 ~col:p1.hi in
        let cs = color_exn vg p2.frame ~row:0 ~col:p2.lo in
        let ind c = if c = 2 then 1 else 0 in
        let parity_of gap = (ind cv + ind cs + (s_col_of gap - p1.hi)) mod 2 in
        let gap = if parity_of 2 <> (k - 1) mod 2 then 2 else 3 in
        assert (parity_of gap <> (k - 1) mod 2);
        let offset = b1_region + gap + 1 - a2_region in
        let s_col = p2.lo + offset in
        let t_col = p2.hi + offset in
        Vg.merge vg ~keep:p1.frame ~absorb:p2.frame ~reflect:false ~dr:0 ~dc:offset;
        (* Ask for the connecting nodes (region overhangs plus the gap). *)
        present_row vg p1.frame ~row:0 ~col_lo:(p1.hi + 1) ~col_hi:(s_col - 1);
        let h = b_row vg p1.frame ~lo:p1.hi ~hi:s_col in
        let b_full = p1.b + h + p2.b in
        let candidates =
          [
            { frame = p1.frame; lo = p1.hi; hi = s_col; dir = `Fwd; b = h };
            { frame = p1.frame; lo = p1.hi; hi = s_col; dir = `Rev; b = -h };
            { frame = p1.frame; lo = p1.lo; hi = t_col; dir = `Fwd; b = b_full };
            { frame = p1.frame; lo = p1.lo; hi = t_col; dir = `Rev; b = -b_full };
          ]
        in
        let best =
          List.fold_left (fun acc c -> if c.b > acc.b then c else acc)
            (List.hd candidates) (List.tl candidates)
        in
        if best.b < k then
          failwith
            (Printf.sprintf
               "thm1: Lemma 3.6 invariant broken (best b=%d < k=%d) — improper coloring \
                slipped through"
               best.b k);
        best
      end
    end
  end

let total_span vg frames =
  (* Bounding box of the main frame plus stacked leftovers. *)
  List.fold_left
    (fun (w, h) f ->
      let (rlo, rhi), (clo, chi) = Vg.span vg f in
      (max w (chi - clo + 1), h + (rhi - rlo + 1) + 2))
    (0, 0) frames

let run ?(bulk = false) ?memo ?(endgame = true) ?(validate = false)
    ?(snapshot = false) ?dims ~n_side ~k ~algorithm () =
  let rows, cols = match dims with Some d -> d | None -> (n_side, n_side) in
  let n_total = rows * cols in
  let radius = algorithm.Models.Algorithm.locality ~n:n_total in
  let vg =
    Vg.create ~bulk ?memo ~palette:3 ~n_total ~radius ~algorithm ()
  in
  let render_window frame ~row_range ~col_range =
    Topology.Render.region ~rows:row_range ~cols:col_range (fun r c ->
        match Vg.handle_at vg frame ~row:r ~col:c with
        | None -> `Unseen
        | Some _ -> (
            match Vg.color_at vg frame ~row:r ~col:c with
            | Some color -> `Colored color
            | None -> `Seen))
  in
  let finish ?window ~result ~forced_b ~cycle_b () =
    let width, height =
      match Vg.frames vg with [] -> (0, 0) | frames -> total_span vg frames
    in
    if validate then Vg.validate vg;
    if Obs.Stats.on () then begin
      (* Per-run distributions for sweep campaigns (thm2/thm3 get the
         equivalent from Fixed_host.audit).  Deterministic per cell, so
         the drained totals honor the Stats jobs-invariance contract. *)
      Obs.Stats.observe "thm1.presented" (Vg.presented_count vg);
      Obs.Stats.observe "thm1.revealed" (Vg.revealed_count vg);
      Obs.Stats.observe "thm1.span_width" width;
      Obs.Stats.observe "thm1.span_height" height
    end;
    let snapshot =
      match (snapshot, window) with
      | true, Some (frame, row_range, col_range) ->
          Some (render_window frame ~row_range ~col_range)
      | _ -> None
    in
    {
      result;
      forced_b;
      cycle_b;
      presented = Vg.presented_count vg;
      revealed = Vg.revealed_count vg;
      width;
      height;
      fits = width <= cols && height <= rows;
      snapshot;
    }
  in
  try
    let p = build vg ~k ~radius in
    if not endgame then
      match Vg.scan_monochromatic vg with
      | Some (u, v) ->
          finish
            ~result:(`Defeated (Models.Run_stats.Monochromatic_edge (u, v)))
            ~forced_b:p.b ~cycle_b:None ()
      | None -> finish ~result:`Survived ~forced_b:p.b ~cycle_b:None ()
    else begin
      let p = normalize_forward vg p in
      (* Second row, 2T+2 above; a separate component the algorithm colors
         blind, whose direction we then choose. *)
      let f2 = Vg.new_frame vg in
      let len = p.hi - p.lo in
      present_row vg f2 ~row:0 ~col_lo:0 ~col_hi:len;
      let b2 = b_row vg f2 ~lo:0 ~hi:len in
      let dr = -(2 * radius + 2) in
      (* P_{s,t} runs from above p.hi back to above p.lo.  Placement (a)
         maps f2 forward (col 0 -> p.lo), so that traversal is f2-reversed
         (b = -b2); placement (b) reflects (col 0 -> p.hi), making it
         f2-forward (b = +b2).  Pick whichever gives b >= 0. *)
      (if b2 >= 0 then Vg.merge vg ~keep:p.frame ~absorb:f2 ~reflect:true ~dr ~dc:p.hi
       else Vg.merge vg ~keep:p.frame ~absorb:f2 ~reflect:false ~dr ~dc:p.lo);
      let b_st = abs b2 in
      (* Fill the rectangle between the two rows. *)
      for row = dr + 1 to -1 do
        present_row vg p.frame ~row ~col_lo:p.lo ~col_hi:p.hi
      done;
      let b_vs = b_col vg p.frame ~col:p.hi ~row_from:0 ~row_to:dr in
      let b_tu = b_col vg p.frame ~col:p.lo ~row_from:dr ~row_to:0 in
      let cycle_b = p.b + b_vs + b_st + b_tu in
      let window = (p.frame, (dr - radius, radius), (p.lo - 2, p.hi + 2)) in
      match Vg.scan_monochromatic vg with
      | Some (u, v) ->
          finish ~window
            ~result:(`Defeated (Models.Run_stats.Monochromatic_edge (u, v)))
            ~forced_b:p.b ~cycle_b:(Some cycle_b) ()
      | None ->
          if cycle_b <> 0 then
            failwith
              (Printf.sprintf
                 "thm1: cycle b-value %d nonzero yet no monochromatic edge — Lemma 3.4 \
                  contradicted (bug)"
                 cycle_b)
          else finish ~window ~result:`Survived ~forced_b:p.b ~cycle_b:(Some cycle_b) ()
    end
  with Defeated_early v ->
    (* Frames may be mid-construction; report what we know. *)
    finish ~result:(`Defeated v) ~forced_b:0 ~cycle_b:None ()

let recommended_k ~n_side ~t =
  let rec go k width =
    let next = (2 * width) + 3 in
    if next > n_side then k else go (k + 1) next
  in
  let base = (2 * t) + 1 in
  if base > n_side then 0 else go 0 base

let guaranteed ~t ~k = k > (4 * t) + 4
