(** The (k+1)-coloring algorithm of Theorem 4 (Section 5.1.2), and its
    k = 2 specialisation, the Akbari et al. (ICALP 2023) 3-coloring of
    bipartite graphs (Section 5.1.1).

    The algorithm k-colors the revealed fragments using the partition
    oracle and the group's {e type} (the permutation assigning colors to
    the k parts); when fragments with incompatible types merge, the
    smaller one's type is rewritten to match the larger one's by at most
    [k - 1] color swaps, each swap building three one-node-thick barrier
    layers with the help of the spare color [k] (Algorithm 1 of the
    paper).  With locality [3 (k-1) ceil(log2 n)] every node sees at most
    [log2 n] type changes, so the barriers always stay inside the group —
    the [O(log n)] upper bound.  Run with a deliberately smaller locality,
    the barriers escape the revealed region and the adversaries of
    Section 3 catch the algorithm: both directions of the tight bound are
    exercised by the same code. *)

type stats = {
  mutable merges : int;  (** group-merge events (Case 3 steps) *)
  mutable type_changes : int;  (** groups whose type was rewritten *)
  mutable swaps : int;  (** color transpositions executed (Algorithm 1 runs) *)
  mutable wave_commits : int;  (** nodes colored by barrier layers *)
  mutable escapes : int;
      (** barrier nodes that fell outside the group being rewritten —
          zero whenever the locality was sufficient; a nonzero count is
          the smoking gun of an under-provisioned [T] *)
  mutable largest_group : int;
}

val fresh_stats : unit -> stats

val default_locality : k:int -> n:int -> int
(** [3 (k-1) ceil(log2 n)], at least 1 — the locality Theorem 4
    prescribes (the oracle radius is accounted separately by executors). *)

val make :
  ?locality:(n:int -> int) ->
  ?flip:[ `Smaller | `Larger ] ->
  ?stats:stats ->
  k:int ->
  unit ->
  Models.Algorithm.t
(** The algorithm for (k+1)-coloring graphs in [L_{k,l}].  Needs an
    oracle with [parts = k] at instantiation (executors supply it);
    [~flip:`Larger] is the ablation that rewrites the {e larger} group on
    merges, destroying the logarithmic flip bound.  @raise
    Invalid_argument if [k < 2]. *)

val ael_bipartite :
  ?locality:(n:int -> int) -> ?stats:stats -> unit -> Models.Algorithm.t
(** The k = 2 instance wired to the radius-0 bipartition oracle, so it
    runs against any executor without external oracle plumbing — this is
    the algorithm the Theorem 1 adversary defeats at small localities. *)
