open Grid_graph

type upper_sweep_point = { n : int; t_star : int; swaps_at_t_star : int }

let succeeds ~host ~palette ~orders ~make ?oracle ?hints t =
  List.for_all
    (fun order ->
      (* A crashing run is a failed run, not an aborted sweep. *)
      let guard = Harness.Guard.create ~limits:Harness.Guard.no_limits () in
      match
        Harness.Guard.capture guard (fun () ->
            Models.Fixed_host.run ?oracle ?hints ~host ~palette ~algorithm:(make ~t)
              ~order ())
      with
      | Ok outcome -> Models.Run_stats.succeeded outcome ~colors:palette ~host
      | Error _ -> false)
    orders

let min_locality_for_success ~host ~palette ~orders ~make ?oracle ?hints ~t_max () =
  let ok t = succeeds ~host ~palette ~orders ~make ?oracle ?hints t in
  if not (ok t_max) then None
  else begin
    (* Success is monotone for the Theorem 4 algorithm (a larger T only
       enlarges groups); binary search, then confirm the boundary. *)
    let lo = ref 1 and hi = ref t_max in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ok mid then hi := mid else lo := mid + 1
    done;
    if ok !lo then Some !lo else None
  end

let adversarial_orders ~host ~seeds =
  let n = Graph.n host in
  let sequential = List.init n (fun i -> i) in
  let two_ends =
    (* Interleave from both ends so the last merges join the two largest
       groups. *)
    let rec go lo hi acc =
      if lo > hi then List.rev acc
      else if lo = hi then List.rev (lo :: acc)
      else go (lo + 1) (hi - 1) (hi :: lo :: acc)
    in
    go 0 (n - 1) []
  in
  let bit_reversal =
    (* Present nodes in bit-reversed index order: groups form spread out
       and merge pairwise bottom-up, maximizing the merge-tree depth any
       single node participates in — the worst case for the Theorem 4
       flip budget. *)
    let bits =
      let rec go b = if 1 lsl b >= n then b else go (b + 1) in
      go 0
    in
    let reverse i =
      let r = ref 0 in
      for b = 0 to bits - 1 do
        if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
      done;
      !r
    in
    List.init (1 lsl bits) reverse |> List.filter (fun i -> i < n)
  in
  (sequential :: two_ends :: bit_reversal
   :: List.map (fun seed -> Models.Fixed_host.orders ~all:host (`Random seed)) seeds)

let min_defeating_b ~n_side ~t:_ ~algorithm ~k_max =
  let rec go k =
    if k > k_max then None
    else
      let guard = Harness.Guard.create ~limits:Harness.Guard.no_limits () in
      match
        Harness.Guard.capture guard (fun () ->
            Thm1_adversary.run ~n_side ~k ~algorithm:(algorithm ()) ())
      with
      | Ok { Thm1_adversary.result = `Defeated _; _ } -> Some k
      | Ok { Thm1_adversary.result = `Survived; _ } | Error _ -> go (k + 1)
  in
  go 1
