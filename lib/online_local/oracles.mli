(** Partition oracles for the concrete L_{k,l} families of the paper.

    Each constructor packages the topology's canonical unique coloring as
    a {!Models.Oracle.t} with the radius claimed in the paper:

    {ul
    {- connected bipartite graphs: radius 0 (the bipartition is free);}
    {- triangular grids: radius 1 (triangle chains, Figure 1);}
    {- k-trees: radius 1 (clique-tree chains);}
    {- the layered graphs [G_k]: radius k (Lemma 5.6).}}

    All of them are built with {!Models.Oracle.of_canonical_coloring}, so
    the part indices are canonicalized per query and never leak a global
    alignment.  The [to_host] argument is supplied by the executor
    (see {!Models.Fixed_host.start}). *)

type maker :=
  to_host:(Grid_graph.Graph.node -> Grid_graph.Graph.node) -> Models.Oracle.t

val grid_bipartition : Topology.Grid2d.t -> maker
(** Radius-0, 2-part oracle from the grid's parity coloring.  Requires a
    bipartite grid (simple, or wrapped with even wrapped dimensions).
    @raise Invalid_argument otherwise. *)

val bipartite_graph : Grid_graph.Graph.t -> maker
(** Radius-0 oracle for any bipartite host graph.
    @raise Invalid_argument if the host is not bipartite. *)

val tri_grid : Topology.Tri_grid.t -> maker
(** Radius-1, 3-part oracle from the triangular grid's tripartition. *)

val clique_chain : parts:int -> radius:int -> Models.Oracle.t
(** The {e structural} oracle: infer the unique [parts]-partition from
    the revealed view alone, with no host access, by chaining
    [parts]-cliques — two cliques sharing [parts - 1] nodes force their
    odd nodes into the same part (the mechanism behind the paper's
    triangular-grid and k-tree examples in Section 1, and behind
    Claim 5.5 for the layered graphs).  [radius] is the advertised
    locality cost (1 for triangular grids and k-trees, k for [G_k]);
    the implementation walks as far through the {e revealed} region as
    the chain requires, which is information the algorithm legitimately
    holds.
    @raise Invalid_argument at query time when some queried node lies on
    no revealed [parts]-clique or the chain does not reach it — i.e.
    when the host does not support this mechanism. *)

val triangle_chain : Models.Oracle.t
(** [clique_chain ~parts:3 ~radius:1] — the paper's Figure-1 procedure
    for triangular grids. *)

val ktree : Topology.Ktree.t -> maker
(** Radius-1, (k+1)-part oracle from the k-tree's construction coloring. *)

val layered : Topology.Layered.t -> maker
(** Radius-k, k-part oracle for [G_k] (Lemma 5.6). *)

val gadget_chain : Topology.Gadget.t -> maker
(** Radius-1, k-part oracle from the row coloring of Proposition 4.1.
    Note [G*] does {e not} have a locally inferable unique coloring —
    this oracle exists so tests can demonstrate that fact (the partition
    it claims is not unique), not for use by correct algorithms. *)
