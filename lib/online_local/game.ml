type verdict = {
  adversary : string;
  algorithm : string;
  n : int;
  defeated : bool;
  guaranteed : bool;
  detail : string;
}

type t = {
  name : string;
  description : string;
  play : n:int -> Models.Algorithm.t -> verdict;
}

let pp_verdict ppf v =
  Format.fprintf ppf "@[<v>%s vs %s (n=%d): %s%s@,%s@]" v.adversary v.algorithm v.n
    (if v.defeated then "DEFEATED" else "survived")
    (if v.guaranteed then " [guaranteed]" else "")
    v.detail

let thm1 =
  {
    name = "thm1-grid";
    description = "Lemma 3.6 + cycle closure on an n x n simple grid";
    play =
      (fun ~n algorithm ->
        let t = algorithm.Models.Algorithm.locality ~n:(n * n) in
        let k = max 1 (Thm1_adversary.recommended_k ~n_side:n ~t) in
        let r = Thm1_adversary.run ~n_side:n ~k ~algorithm () in
        {
          adversary = "thm1-grid";
          algorithm = algorithm.Models.Algorithm.name;
          n;
          defeated =
            (match r.Thm1_adversary.result with `Defeated _ -> true | `Survived -> false);
          guaranteed = Thm1_adversary.guaranteed ~t ~k;
          detail = Format.asprintf "%a" Thm1_adversary.pp_report r;
        });
  }

let thm2 wrap name =
  {
    name;
    description = "two-row b-value attack on an n x n wrapped grid (n rounded to odd)";
    play =
      (fun ~n algorithm ->
        let side = if n mod 2 = 0 then n + 1 else n in
        let r = Thm2_adversary.run ~wrap ~side ~algorithm () in
        {
          adversary = name;
          algorithm = algorithm.Models.Algorithm.name;
          n = side;
          defeated =
            (match r.Thm2_adversary.result with `Defeated _ -> true | `Survived -> false);
          guaranteed = r.Thm2_adversary.preconditions_met;
          detail = Format.asprintf "%a" Thm2_adversary.pp_report r;
        });
  }

let thm2_torus = thm2 `Toroidal "thm2-torus"
let thm2_cylinder = thm2 `Cylindrical "thm2-cylinder"

let thm3 =
  {
    name = "thm3-gadgets";
    description = "gadget seam attack on a chain of n gadgets (k = 3)";
    play =
      (fun ~n algorithm ->
        let gadgets = max 3 n in
        let r = Thm3_adversary.run ~k:3 ~gadgets ~algorithm () in
        {
          adversary = "thm3-gadgets";
          algorithm = algorithm.Models.Algorithm.name;
          n = gadgets;
          defeated =
            (match r.Thm3_adversary.result with `Defeated _ -> true | `Survived -> false);
          guaranteed = r.Thm3_adversary.preconditions_met;
          detail = Format.asprintf "%a" Thm3_adversary.pp_report r;
        });
  }

let games = [ thm1; thm2_torus; thm2_cylinder; thm3 ]
let find name = List.find_opt (fun g -> g.name = name) games
