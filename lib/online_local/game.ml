module G = Harness.Guard
module M = Harness.Misbehavior
module Tr = Harness.Trace
module Mx = Harness.Metrics
module St = Harness.Stats

type outcome =
  | Defeated
  | Survived
  | Algorithm_fault of M.t
  | Adversary_fault of M.t

type verdict = {
  adversary : string;
  algorithm : string;
  n : int;
  outcome : outcome;
  defeated : bool;
  guaranteed : bool;
  detail : string;
}

type t = {
  name : string;
  description : string;
  play :
    ?bulk:bool ->
    ?paranoid:bool ->
    ?memo:bool ->
    ?limits:G.limits ->
    n:int ->
    Models.Algorithm.t ->
    verdict;
}

(* One memo context per game: its chain digest is scoped to a single
   run's observable history while the cache table behind it is
   per-domain, so identical games replayed later on the same domain hit.
   The guard charge hook is bound in [referee] once the guard exists. *)
let memo_ctx ~memo algorithm =
  if memo then
    Some (Canon.Memo.create ~pure:algorithm.Models.Algorithm.pure ())
  else None

let outcome_label = function
  | Defeated -> "DEFEATED"
  | Survived -> "survived"
  | Algorithm_fault m -> "ALGORITHM-FAULT (" ^ M.label m ^ ")"
  | Adversary_fault m -> "ADVERSARY-FAULT (" ^ M.label m ^ ")"

(* Metric-name-safe outcome tag (no parentheses, no per-certificate
   cardinality, so totals merge across fault variants). *)
let outcome_tag = function
  | Defeated -> "defeated"
  | Survived -> "survived"
  | Algorithm_fault _ -> "algorithm-fault"
  | Adversary_fault _ -> "adversary-fault"

let pp_verdict ppf v =
  Format.fprintf ppf "@[<v>%s vs %s (n=%d): %s%s@,%s@]" v.adversary v.algorithm v.n
    (outcome_label v.outcome)
    (if v.guaranteed then " [guaranteed]" else "")
    v.detail

let of_violation = function
  | Models.Run_stats.Monochromatic_edge _ -> Defeated
  | Models.Run_stats.Palette_overflow { color; _ } ->
      Algorithm_fault (M.Out_of_palette { color })
  | Models.Run_stats.Algorithm_failure { message; backtrace; _ } ->
      Algorithm_fault (M.Raised { message; backtrace })
  | Models.Run_stats.Repeated_presentation v ->
      Adversary_fault
        (M.Dishonest_transcript
           { message = Printf.sprintf "node %d presented twice" v })

let referee ?(limits = G.default_limits) ?memo ~adversary ~n ~guaranteed algorithm play =
  if Tr.on () then
    Tr.emit
      (Tr.Game_start
         {
           adversary;
           algorithm = algorithm.Models.Algorithm.name;
           n;
           max_color_calls = limits.G.max_color_calls;
           max_work = limits.G.max_work;
           deadline = limits.G.deadline;
         });
  let guard = G.create ~limits () in
  let guarded = G.algorithm guard algorithm in
  (match memo with
  | Some ctx -> Canon.Memo.set_charge ctx (fun () -> G.charge guard)
  | None -> ());
  let result = G.capture guard (fun () -> play guarded) in
  let outcome, detail =
    (* A typed fault recorded on the guard wins over whatever the
       executor turned it into: the executor only sees a generic
       exception, the guard knows it was a budget/deadline/raise. *)
    match (G.fault guard, result) with
    | Some m, Ok (_, detail) -> (Algorithm_fault m, M.to_string m ^ "; " ^ detail)
    | Some m, Error _ -> (Algorithm_fault m, M.to_string m)
    (* An exception escaping the adversary's own code is an adversary
       fault; Guard.capture already sharpened typed audit failures
       (Run_stats.Dishonest_transcript) into their certificate. *)
    | None, Error m -> (Adversary_fault m, M.to_string m)
    | None, Ok (`Survived, detail) -> (Survived, detail)
    | None, Ok (`Defeated v, detail) -> (of_violation v, detail)
  in
  if Tr.on () then
    Tr.emit
      (Tr.Game_verdict
         {
           adversary;
           algorithm = algorithm.Models.Algorithm.name;
           n;
           outcome = outcome_label outcome;
           guaranteed;
           color_calls = G.color_calls guard;
           work = G.work guard;
         });
  if Mx.on () then begin
    Mx.incr ("game.outcome." ^ outcome_tag outcome);
    Mx.incr ("game.played." ^ adversary);
    (* Guard-meter totals accumulate here, once per game — never in
       [Guard.tick], which is far too hot to meter. *)
    Mx.add "guard.color_calls" (G.color_calls guard);
    Mx.add "guard.work" (G.work guard)
  end;
  if St.on () then begin
    (* Per-game distributions, once per verdict like the metric totals
       above.  Only guard meters and sizes — deterministic values, per
       the Stats jobs-invariance contract. *)
    St.observe "game.color_calls" (G.color_calls guard);
    St.observe "game.work" (G.work guard);
    St.observe ("game.n." ^ adversary) n
  end;
  {
    adversary;
    algorithm = algorithm.Models.Algorithm.name;
    n;
    outcome;
    defeated = (match outcome with Defeated -> true | _ -> false);
    guaranteed;
    detail;
  }

let thm1 =
  {
    name = "thm1-grid";
    description = "Lemma 3.6 + cycle closure on an n x n simple grid";
    play =
      (fun ?(bulk = false) ?(paranoid = false) ?(memo = false) ?limits ~n algorithm ->
        let t = algorithm.Models.Algorithm.locality ~n:(n * n) in
        let k = max 1 (Thm1_adversary.recommended_k ~n_side:n ~t) in
        let ctx = memo_ctx ~memo algorithm in
        referee ?limits ?memo:ctx ~adversary:"thm1-grid" ~n
          ~guaranteed:(Thm1_adversary.guaranteed ~t ~k) algorithm
          (fun guarded ->
            let r =
              Thm1_adversary.run ~bulk ?memo:ctx
                ~validate:(paranoid && not bulk)
                ~n_side:n ~k ~algorithm:guarded ()
            in
            (r.Thm1_adversary.result, Format.asprintf "%a" Thm1_adversary.pp_report r)));
  }

let thm2 wrap name =
  {
    name;
    description = "two-row b-value attack on an n x n wrapped grid (n rounded to odd)";
    play =
      (fun ?(bulk = false) ?paranoid:_ ?(memo = false) ?limits ~n algorithm ->
        let side = if n mod 2 = 0 then n + 1 else n in
        let rounding =
          if side <> n then
            Printf.sprintf "side rounded %d -> %d (odd side required); " n side
          else ""
        in
        let ctx = memo_ctx ~memo algorithm in
        let r = ref None in
        let v =
          referee ?limits ?memo:ctx ~adversary:name ~n:side ~guaranteed:false algorithm
            (fun guarded ->
              let report =
                Thm2_adversary.run ~bulk ?memo:ctx ~wrap ~side ~algorithm:guarded ()
              in
              r := Some report;
              ( report.Thm2_adversary.result,
                rounding ^ Format.asprintf "%a" Thm2_adversary.pp_report report ))
        in
        let guaranteed =
          match !r with
          | Some report -> report.Thm2_adversary.preconditions_met
          | None -> false
        in
        { v with guaranteed });
  }

let thm2_torus = thm2 `Toroidal "thm2-torus"
let thm2_cylinder = thm2 `Cylindrical "thm2-cylinder"

let thm3 =
  {
    name = "thm3-gadgets";
    description = "gadget seam attack on a chain of n gadgets (k = 3)";
    play =
      (fun ?(bulk = false) ?paranoid:_ ?(memo = false) ?limits ~n algorithm ->
        let gadgets = max 3 n in
        let ctx = memo_ctx ~memo algorithm in
        let r = ref None in
        let v =
          referee ?limits ?memo:ctx ~adversary:"thm3-gadgets" ~n:gadgets ~guaranteed:false
            algorithm (fun guarded ->
              let report =
                Thm3_adversary.run ~bulk ?memo:ctx ~k:3 ~gadgets ~algorithm:guarded ()
              in
              r := Some report;
              ( report.Thm3_adversary.result,
                Format.asprintf "%a" Thm3_adversary.pp_report report ))
        in
        let guaranteed =
          match !r with
          | Some report -> report.Thm3_adversary.preconditions_met
          | None -> false
        in
        { v with guaranteed });
  }

(* Upper-bound runs as first-class games: a fixed simple grid, a seeded
   random order, no adversary trickery — the algorithm merely has to
   survive.  These exist so the fault matrix covers upper-bound
   executions too (kp1 needs the bipartition oracle, AEL runs
   oracle-free). *)
let upper ~with_oracle name description =
  {
    name;
    description;
    play =
      (fun ?(bulk = false) ?paranoid:_ ?(memo = false) ?limits ~n algorithm ->
        let side = max 4 n in
        let grid = Topology.Grid2d.(create Simple ~rows:side ~cols:side) in
        let host = Topology.Grid2d.graph grid in
        let hints v =
          let row, col = Topology.Grid2d.coords grid v in
          Some (Models.View.Grid_pos { frame = 0; row; col })
        in
        let order = Models.Fixed_host.orders ~all:host (`Random 7) in
        let oracle = if with_oracle then Some (Oracles.grid_bipartition grid) else None in
        let ctx = memo_ctx ~memo algorithm in
        referee ?limits ?memo:ctx ~adversary:name ~n:side ~guaranteed:false algorithm
          (fun guarded ->
            let outcome =
              Models.Fixed_host.run ~bulk ?memo:ctx ?oracle ~hints ~host ~palette:3
                ~algorithm:guarded ~order ()
            in
            ( (match outcome.Models.Run_stats.violation with
              | Some v -> `Defeated v
              | None -> `Survived),
              Format.asprintf "%a" Models.Run_stats.pp_outcome outcome )));
  }

let upper_grid =
  upper ~with_oracle:false "upper-grid"
    "survive a seeded random order on a simple n x n grid (oracle-free)"

let upper_grid_oracle =
  upper ~with_oracle:true "upper-grid-oracle"
    "survive a seeded random order on a simple n x n grid with the bipartition oracle"

let games = [ thm1; thm2_torus; thm2_cylinder; thm3; upper_grid; upper_grid_oracle ]
let find name = List.find_opt (fun g -> g.name = name) games
