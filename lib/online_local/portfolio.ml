module A = Models.Algorithm
module V = Models.View

let greedy () = A.greedy_first_fit
let hint_parity () = A.hint_parity

let stripes3 () =
  A.stateless ~name:"stripes3" ~locality:(fun ~n:_ -> 1) (fun view ->
      match view.V.hint view.V.target with
      | Some (V.Grid_pos { row; col; _ }) -> (((row + col) mod 3) + 3) mod 3
      | Some (V.Gadget_pos _ | V.Layer_pos _) | None -> 0)

let gadget_rows () =
  A.stateless ~name:"gadget-rows" ~locality:(fun ~n:_ -> 1) (fun view ->
      match view.V.hint view.V.target with
      | Some (V.Gadget_pos { row; _ }) -> row
      | Some (V.Grid_pos _ | V.Layer_pos _) | None -> 0)

let ael ~t () = Kp1_coloring.ael_bipartite ~locality:(fun ~n:_ -> t) ()
let kp1 ~k ~t () = Kp1_coloring.make ~k ~locality:(fun ~n:_ -> t) ()

let grid_baselines () =
  [
    ("greedy", greedy ());
    ("hint-parity", hint_parity ());
    ("stripes3", stripes3 ());
    ("ael-T1", ael ~t:1 ());
    ("ael-T2", ael ~t:2 ());
    ("ael-T4", ael ~t:4 ());
  ]

let run_games ?paranoid ?limits ~n entries games =
  List.concat_map
    (fun (label, algo) ->
      List.map (fun g -> (label, g.Game.play ?paranoid ?limits ~n algo)) games)
    entries
