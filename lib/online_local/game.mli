(** A uniform face over the paper's adversaries, so algorithms and
    attacks can be paired from one CLI or test loop.

    Each game pits one {!Models.Algorithm.t} against one adversary at a
    given instance size and reports a normalized verdict.  Both sides run
    guarded: the algorithm under a {!Harness.Guard} (step/color budgets,
    wall-clock deadline, exception containment), the adversary under
    {!Harness.Guard.capture} — so a misbehaving participant degrades one
    verdict into a typed fault instead of aborting a portfolio or sweep.

    The registry spans the three lower-bound theorems plus two
    upper-bound grid runs (oracle-free for AEL, bipartition oracle for
    the Theorem 4 algorithm).

    Distinct games share no mutable state, and the guard's ambient
    tick state is domain-local, so separate verdicts may be computed
    concurrently on separate domains — this is what
    [Harness.Sweep.run ~jobs] relies on. *)

type outcome =
  | Defeated  (** the adversary produced a genuine violation certificate *)
  | Survived  (** the algorithm withstood the attack *)
  | Algorithm_fault of Harness.Misbehavior.t
      (** the algorithm misbehaved (raised, over budget, past deadline,
          out of palette) — the run proves nothing about the theorem *)
  | Adversary_fault of Harness.Misbehavior.t
      (** the adversary misbehaved (crashed, or its transcript failed
          the honesty audit) — the verdict cannot be trusted *)

type verdict = {
  adversary : string;
  algorithm : string;
  n : int;  (** instance size the game was played at *)
  outcome : outcome;
  defeated : bool;  (** [outcome = Defeated] — kept for callers charting defeat frontiers *)
  guaranteed : bool;  (** whether theory guarantees defeat at these parameters *)
  detail : string;  (** adversary-specific report, pretty-printed *)
}

type t = {
  name : string;
  description : string;
  play :
    ?bulk:bool ->
    ?paranoid:bool ->
    ?memo:bool ->
    ?limits:Harness.Guard.limits ->
    n:int ->
    Models.Algorithm.t ->
    verdict;
      (** [n] is interpreted per adversary (grid side, torus side, or
          gadget count) — see {!val-games}.  [~paranoid:true] replays the
          Theorem 1 transcript through {!Virtual_grid.validate}; an audit
          failure surfaces as {!Adversary_fault} with a
          [Dishonest_transcript] certificate.  [~bulk:true] is the
          campaign fast path: per-step trace/metrics event construction
          is skipped in the executors and the paranoid re-audit is
          forced off.  Bulk cannot change the verdict — it only elides
          observability work whose inputs are already determined by the
          transcript (asserted over the E7 fault matrix in the tests).
          [~memo:true] routes the executors through the
          {!Canon.Memo} step cache: color calls of [pure] algorithms
          whose observable history matches an earlier run on this
          domain replay the cached answer, charging the guard so
          verdicts, meters and reports stay byte-identical to
          memo-off (asserted over the same fault matrix).
          A game of [k] steps costs O(sum of per-step frontier sizes)
          in the executor plus the algorithm's own work — see
          [lib/online_local/README.md] for the per-step cost model and
          [BENCH_game_steps.json] for measured rates.
          [?limits] defaults to {!Harness.Guard.default_limits}. *)
}

val referee :
  ?limits:Harness.Guard.limits ->
  ?memo:Canon.Memo.ctx ->
  adversary:string ->
  n:int ->
  guaranteed:bool ->
  Models.Algorithm.t ->
  (Models.Algorithm.t ->
  [ `Defeated of Models.Run_stats.violation | `Survived ] * string) ->
  verdict
(** The guarded engine behind every game: wrap [algorithm] in a fresh
    guard, run [play] on the guarded twin under {!Harness.Guard.capture},
    and classify.  Precedence: a fault recorded on the guard wins (the
    executor only saw a generic exception; the guard knows it was a
    budget, deadline, or raise); then an adversary-side escape becomes
    {!Adversary_fault} (a {!Models.Run_stats.Dishonest_transcript}
    escape keeps its [Dishonest_transcript] certificate, by exception
    type, not message text); then the violation decides — monochromatic
    edge is a genuine {!Defeated}, palette overflow and algorithm crashes
    are {!Algorithm_fault}, repeated presentation is {!Adversary_fault}.
    Exposed so tests can build rigged games.  [?memo] installs the
    guard's {!Harness.Guard.charge} as the context's charge hook before
    running [play], so memo-served calls meter like live ones. *)

val outcome_label : outcome -> string

val thm1 : t
(** Theorem 1 on an [n x n] virtual grid, with the largest fitting
    b-target. *)

val thm2_torus : t
val thm2_cylinder : t
(** Theorem 2 on an [n x n] wrapped grid; [n] is rounded up to odd (and
    the verdict detail says so when rounding happened). *)

val thm3 : t
(** Theorem 3 on a chain of [n] gadgets with k = 3. *)

val upper_grid : t
(** Upper-bound run: a seeded random order on a simple [max 4 n] square
    grid, no oracle (the AEL algorithm's setting). *)

val upper_grid_oracle : t
(** Same, supplying {!Oracles.grid_bipartition} (the Theorem 4
    algorithm's setting). *)

val games : t list
(** All of the above. *)

val find : string -> t option
(** Look up a game by name. *)

val pp_verdict : Format.formatter -> verdict -> unit
