(** A uniform face over the paper's adversaries, so algorithms and
    attacks can be paired from one CLI or test loop.

    Each game pits one {!Models.Algorithm.t} against one adversary at a
    given instance size and reports a normalized verdict.  The registry
    spans the three lower-bound theorems; the "upper-bound game" is
    {!Models.Fixed_host.run} with an order, which needs no adversary
    wrapper. *)

type verdict = {
  adversary : string;
  algorithm : string;
  n : int;  (** instance size the game was played at *)
  defeated : bool;
  guaranteed : bool;  (** whether theory guarantees defeat at these parameters *)
  detail : string;  (** adversary-specific report, pretty-printed *)
}

type t = {
  name : string;
  description : string;
  play : n:int -> Models.Algorithm.t -> verdict;
      (** [n] is interpreted per adversary (grid side, torus side, or
          gadget count) — see {!val-games}. *)
}

val thm1 : t
(** Theorem 1 on an [n x n] virtual grid, with the largest fitting
    b-target. *)

val thm2_torus : t
val thm2_cylinder : t
(** Theorem 2 on an [n x n] wrapped grid; [n] is rounded up to odd. *)

val thm3 : t
(** Theorem 3 on a chain of [n] gadgets with k = 3. *)

val games : t list
(** All of the above. *)

val find : string -> t option
(** Look up a game by name. *)

val pp_verdict : Format.formatter -> verdict -> unit
