module V = Models.View
module Coord = Grid_graph.Packed.Coord
module Ptable = Grid_graph.Packed.Table

type frame_state = {
  fid : int;
  table : Ptable.t;  (* packed frame coords -> handle *)
  mutable alive : bool;
}

type frame = frame_state

type t = {
  palette : int;
  n_total : int;
  radius : int;
  bulk : bool;  (* skip per-step trace/metrics event construction *)
  memo : Canon.Memo.ctx option;
  region : Grid_graph.Dyn_graph.t;
  mutable coords : int array;  (* handle -> current packed frame coords *)
  mutable frame_ids : int array;  (* handle -> current frame id *)
  mutable revealed_step : int array;  (* handle -> step at which it appeared *)
  mutable outputs : int array;  (* handle -> color; -1 = none *)
  mutable presented : Bytes.t;  (* handle set *)
  frames : (int, frame_state) Hashtbl.t;
  mutable next_fid : int;
  instance : Models.Algorithm.instance Lazy.t ref;
  mutable targets : int list;  (* reverse presentation order *)
  mutable steps : int;
  mutable first_violation : Models.Run_stats.violation option;
}

let create ?(bulk = false) ?memo ~palette ~n_total ~radius ~algorithm () =
  (* The chain starts from everything that shapes views besides the
     presentation history itself; equal chains then certify identical
     observable histories (see lib/canon/README.md). *)
  (match memo with
  | Some ctx when Canon.Memo.pure ctx ->
      Canon.Memo.begin_run ctx
        (Printf.sprintf "vg|%s|%d|%d|%d" algorithm.Models.Algorithm.name palette
           n_total radius)
  | _ -> ());
  let t =
    {
      palette;
      n_total;
      radius;
      bulk;
      memo;
      region = Grid_graph.Dyn_graph.create ();
      coords = Array.make 64 0;
      frame_ids = Array.make 64 (-1);
      revealed_step = Array.make 64 (-1);
      outputs = Array.make 64 (-1);
      presented = Bytes.make 64 '\000';
      frames = Hashtbl.create 8;
      next_fid = 0;
      instance = ref (lazy (fun _ -> 0));
      targets = [];
      steps = 0;
      first_violation = None;
    }
  in
  let oracle = None in
  t.instance :=
    lazy (algorithm.Models.Algorithm.instantiate ~n:n_total ~palette ~oracle);
  t

let new_frame t =
  let f = { fid = t.next_fid; table = Ptable.create ~capacity:256 (); alive = true } in
  t.next_fid <- t.next_fid + 1;
  Hashtbl.replace t.frames f.fid f;
  f

let grow t needed =
  let cap = Array.length t.coords in
  if needed > cap then begin
    let cap' = max needed (2 * cap) in
    let coords = Array.make cap' 0
    and frame_ids = Array.make cap' (-1)
    and revealed_step = Array.make cap' (-1)
    and outputs = Array.make cap' (-1)
    and presented = Bytes.make cap' '\000' in
    Array.blit t.coords 0 coords 0 cap;
    Array.blit t.frame_ids 0 frame_ids 0 cap;
    Array.blit t.revealed_step 0 revealed_step 0 cap;
    Array.blit t.outputs 0 outputs 0 cap;
    Bytes.blit t.presented 0 presented 0 cap;
    t.coords <- coords;
    t.frame_ids <- frame_ids;
    t.revealed_step <- revealed_step;
    t.outputs <- outputs;
    t.presented <- presented
  end

let check_alive f op =
  if not f.alive then invalid_arg ("Virtual_grid: frame used after merge in " ^ op)

let handle_at _t f ~row ~col =
  if Coord.in_range row col then Ptable.find_opt f.table (Coord.pack row col)
  else None

let output_opt t h = let c = t.outputs.(h) in if c < 0 then None else Some c

let color_at t f ~row ~col =
  match handle_at t f ~row ~col with
  | None -> None
  | Some h -> output_opt t h

(* [k] is a packed coordinate already checked in range by the caller. *)
let reveal_node t f k =
  let h = Ptable.find_default f.table k ~default:(-1) in
  if h >= 0 then (h, false)
  else begin
    let h = Grid_graph.Dyn_graph.add_node t.region in
    grow t (h + 1);
    t.coords.(h) <- k;
    t.frame_ids.(h) <- f.fid;
    t.revealed_step.(h) <- t.steps;
    Ptable.set f.table k h;
    (h, true)
  end

let neighbors4 (r, c) = [ (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ]

let make_view t ~target ~new_nodes =
  {
    V.n_total = t.n_total;
    palette = t.palette;
    node_count = (fun () -> Grid_graph.Dyn_graph.n t.region);
    neighbors = (fun h -> Grid_graph.Dyn_graph.neighbors t.region h);
    mem_edge = (fun a b -> Grid_graph.Dyn_graph.mem_edge t.region a b);
    id = (fun h -> h + 1);
    output = (fun h -> output_opt t h);
    hint =
      (fun h ->
        let k = t.coords.(h) in
        Some (V.Grid_pos { frame = t.frame_ids.(h); row = Coord.row k; col = Coord.col k }));
    target;
    new_nodes;
    step = t.steps;
  }

let present t f ~row ~col =
  check_alive f "present";
  (* One range check per presentation covers the whole diamond plus the
     one-step neighbor probes below; packing stays carry-free throughout. *)
  if
    not
      (Coord.in_range (row - t.radius) (col - t.radius)
      && Coord.in_range (row + t.radius) (col + t.radius))
  then invalid_arg "Virtual_grid.present: coordinates outside packable range";
  let base = Coord.pack row col in
  (match Ptable.find_default f.table base ~default:(-1) with
  | h when h >= 0 && Bytes.get t.presented h <> '\000' ->
      raise
        (Models.Run_stats.Dishonest_transcript
           "Virtual_grid.present: node already presented")
  | _ -> ());
  t.steps <- t.steps + 1;
  (* Reveal the radius-R diamond around the node. *)
  let fresh = ref [] in
  for dr = -t.radius to t.radius do
    let budget = t.radius - abs dr in
    let row_base = base + (dr * Coord.row_step) in
    for dc = -budget to budget do
      let h, is_new = reveal_node t f (row_base + dc) in
      if is_new then fresh := h :: !fresh
    done
  done;
  let new_nodes = List.sort compare !fresh in
  (* Each fresh node connects to every already-revealed grid neighbor.
     Probe order north, south, west, east is observable through the
     region's adjacency iteration order — do not reorder. *)
  List.iter
    (fun h ->
      let k = t.coords.(h) in
      let probe k' =
        let h' = Ptable.find_default f.table k' ~default:(-1) in
        if h' >= 0 then Grid_graph.Dyn_graph.add_edge t.region h h'
      in
      probe (Coord.north k);
      probe (Coord.south k);
      probe (Coord.west k);
      probe (Coord.east k))
    new_nodes;
  let target =
    match Ptable.find_default f.table base ~default:(-1) with
    | -1 -> assert false
    | h -> h
  in
  Bytes.set t.presented target '\001';
  t.targets <- target :: t.targets;
  if (not t.bulk) && Obs.Trace.on () then begin
    Obs.Trace.emit
      (Obs.Trace.Reveal
         {
           executor = "virtual_grid";
           step = t.steps;
           fresh = List.length new_nodes;
           revealed = Grid_graph.Dyn_graph.n t.region;
         });
    Obs.Trace.emit
      (Obs.Trace.Step
         {
           executor = "virtual_grid";
           step = t.steps;
           target;
           revealed = Grid_graph.Dyn_graph.n t.region;
           (* the virtual grid has one growing region, so the revealed
              count is also the largest view so far *)
           max_view = Grid_graph.Dyn_graph.n t.region;
         })
  end;
  if (not t.bulk) && Obs.Metrics.on () then begin
    Obs.Metrics.incr "virtual_grid.presented";
    Obs.Metrics.add "virtual_grid.revealed" (List.length new_nodes);
    Obs.Metrics.gauge_max "virtual_grid.max_view" (Grid_graph.Dyn_graph.n t.region)
  end;
  (* Memo: the chain digest is a complete fingerprint of the observable
     history, so a key hit means the algorithm would see the very same
     view — replay the cached color and charge the guard meter instead
     of running the instance.  Only [pure] algorithms are eligible;
     exceptions are never cached (their violation kind differs from a
     replayed color's). *)
  let memo_step =
    match t.memo with
    | Some ctx when Canon.Memo.pure ctx ->
        let suffix = Printf.sprintf "p|%d|%d|%d" f.fid row col in
        Some (ctx, suffix, Canon.Memo.step_key ctx suffix)
    | _ -> None
  in
  let cached =
    match memo_step with
    | Some (ctx, _, key) -> Canon.Memo.find ctx key
    | None -> None
  in
  let color =
    match
      (match cached with
      | Some c ->
          (match memo_step with
          | Some (ctx, _, _) -> Canon.Memo.charge ctx
          | None -> ());
          c
      | None -> (Lazy.force !(t.instance)) (make_view t ~target ~new_nodes))
    with
    | c ->
        (match (memo_step, cached) with
        | Some (ctx, _, key), None -> Canon.Memo.add ctx key c
        | _ -> ());
        c
    | exception ((Stack_overflow | Out_of_memory | Sys.Break) as e) -> raise e
    | exception exn ->
        let backtrace = Printexc.get_backtrace () in
        if t.first_violation = None then
          t.first_violation <-
            Some
              (Models.Run_stats.Algorithm_failure
                 { node = target; message = Printexc.to_string exn; backtrace });
        -1
  in
  (match memo_step with
  | Some (ctx, suffix, _) ->
      Canon.Memo.fold ctx (suffix ^ "=" ^ string_of_int color)
  | None -> ());
  if color < 0 || color >= t.palette then begin
    if t.first_violation = None then
      t.first_violation <-
        Some (Models.Run_stats.Palette_overflow { node = target; color })
  end
  else begin
    t.outputs.(target) <- color;
    if t.first_violation = None then
      List.iter
        (fun h ->
          if t.outputs.(h) = color then
            t.first_violation <- Some (Models.Run_stats.Monochromatic_edge (target, h)))
        (Grid_graph.Dyn_graph.neighbors t.region target)
  end;
  color

let fold_memo t s =
  match t.memo with
  | Some ctx when Canon.Memo.pure ctx -> Canon.Memo.fold ctx s
  | _ -> ()

let reflect t f =
  check_alive f "reflect";
  fold_memo t (Printf.sprintf "r|%d" f.fid);
  let entries = Ptable.fold f.table ~init:[] ~f:(fun acc k h -> (k, h) :: acc) in
  Ptable.clear f.table;
  List.iter
    (fun (k, h) ->
      let k' = Coord.pack (Coord.row k) (- Coord.col k) in
      Ptable.set f.table k' h;
      t.coords.(h) <- k')
    entries

let merge t ~keep ~absorb ~reflect:refl ~dr ~dc =
  check_alive keep "merge";
  check_alive absorb "merge";
  if keep.fid = absorb.fid then invalid_arg "Virtual_grid.merge: same frame";
  fold_memo t (Printf.sprintf "m|%d|%d|%b|%d|%d" keep.fid absorb.fid refl dr dc);
  let map k =
    let r = Coord.row k + dr in
    let c = (if refl then - Coord.col k else Coord.col k) + dc in
    if not (Coord.in_range r c) then
      invalid_arg "Virtual_grid.merge: placement outside packable range";
    Coord.pack r c
  in
  let entries = Ptable.fold absorb.table ~init:[] ~f:(fun acc k h -> (k, h) :: acc) in
  (* The committed placement must not contradict any view already shown:
     no collisions and no adjacencies between the two revealed regions. *)
  List.iter
    (fun (k, _) ->
      let m = map k in
      List.iter
        (fun probe ->
          if Ptable.mem keep.table probe then
            invalid_arg
              "Virtual_grid.merge: placement collides with or touches the kept region")
        [ m; Coord.north m; Coord.south m; Coord.west m; Coord.east m ])
    entries;
  List.iter
    (fun (k, h) ->
      let m = map k in
      Ptable.set keep.table m h;
      t.coords.(h) <- m;
      t.frame_ids.(h) <- keep.fid)
    entries;
  absorb.alive <- false;
  Hashtbl.remove t.frames absorb.fid

let frames t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.frames []
  |> List.sort (fun a b -> compare a.fid b.fid)

let span _t f =
  check_alive f "span";
  let row_lo = ref max_int and row_hi = ref min_int in
  let col_lo = ref max_int and col_hi = ref min_int in
  Ptable.iter f.table ~f:(fun k _ ->
      let r = Coord.row k and c = Coord.col k in
      row_lo := min !row_lo r;
      row_hi := max !row_hi r;
      col_lo := min !col_lo c;
      col_hi := max !col_hi c);
  ((!row_lo, !row_hi), (!col_lo, !col_hi))

let violation t = t.first_violation
let presented_count t = t.steps
let revealed_count t = Grid_graph.Dyn_graph.n t.region
let snapshot_region t = Grid_graph.Dyn_graph.snapshot t.region
let output t h = output_opt t h

let scan_monochromatic t =
  let found = ref None in
  let count = Grid_graph.Dyn_graph.n t.region in
  (try
     for h = 0 to count - 1 do
       match output_opt t h with
       | None -> ()
       | Some c ->
           List.iter
             (fun h' ->
               if h' > h && t.outputs.(h') = c then begin
                 found := Some (h, h');
                 raise Exit
               end)
             (Grid_graph.Dyn_graph.neighbors t.region h)
     done
   with Exit -> ());
  !found

let validate_placement t =
  let count = Grid_graph.Dyn_graph.n t.region in
  (* Absolute coordinates: surviving frames are placed far apart. *)
  let (_, (glo, ghi)) =
    Hashtbl.fold
      (fun _ f ((rl, rh), (cl, ch)) ->
        if Ptable.length f.table = 0 then ((rl, rh), (cl, ch))
        else
          let (rl', rh'), (cl', ch') = span t f in
          ((min rl rl', max rh rh'), (min cl cl', max ch ch')))
      t.frames
      ((0, 0), (0, 0))
  in
  let big = 4 * (ghi - glo + 2 * t.radius + 10) in
  let offset_of_fid = Hashtbl.create 8 in
  let next = ref 0 in
  Hashtbl.iter
    (fun fid _ ->
      Hashtbl.replace offset_of_fid fid (!next * big);
      incr next)
    t.frames;
  let abs_coords h =
    let k = t.coords.(h) in
    (Coord.row k, Coord.col k + Hashtbl.find offset_of_fid t.frame_ids.(h))
  in
  let by_coord = Hashtbl.create (count * 2 + 1) in
  for h = 0 to count - 1 do
    let coord = abs_coords h in
    if Hashtbl.mem by_coord coord then
      raise
        (Models.Run_stats.Dishonest_transcript "validate: two nodes share a position");
    Hashtbl.replace by_coord coord h
  done;
  (* (a) Region edges = grid adjacency. *)
  for h = 0 to count - 1 do
    let expected =
      List.filter_map (fun coord -> Hashtbl.find_opt by_coord coord)
        (neighbors4 (abs_coords h))
      |> List.sort compare
    in
    let actual = List.sort compare (Grid_graph.Dyn_graph.neighbors t.region h) in
    if expected <> actual then
      raise
        (Models.Run_stats.Dishonest_transcript
           (Printf.sprintf
              "validate: node %d has wrong adjacency under final placement" h))
  done;
  (* (b) Every node appeared exactly at the first presentation whose ball
     contains it under the final placement. *)
  let targets = Array.of_list (List.rev t.targets) in
  for h = 0 to count - 1 do
    let hr, hc = abs_coords h in
    let first = ref max_int in
    Array.iteri
      (fun j tgt ->
        let tr, tc = abs_coords tgt in
        if abs (hr - tr) + abs (hc - tc) <= t.radius then first := min !first (j + 1))
      targets;
    if !first <> t.revealed_step.(h) then
      raise
        (Models.Run_stats.Dishonest_transcript
           (Printf.sprintf
              "validate: node %d revealed at step %d but first containing ball is step %d"
              h t.revealed_step.(h) !first))
  done

let validate t =
  match validate_placement t with
  | () ->
      if Obs.Trace.on () then
        Obs.Trace.emit
          (Obs.Trace.Audit { executor = "virtual_grid"; ok = true; detail = "" })
  | exception (Models.Run_stats.Dishonest_transcript msg as e) ->
      if Obs.Trace.on () then
        Obs.Trace.emit
          (Obs.Trace.Audit { executor = "virtual_grid"; ok = false; detail = msg });
      raise e

let bipartition_oracle t =
  let query _view handles =
    let raw =
      Array.of_list
        (List.map
           (fun h ->
             let k = t.coords.(h) in
             ((Coord.row k + Coord.col k) mod 2 + 2) mod 2)
           handles)
    in
    Models.Oracle.canonicalize raw handles
  in
  { Models.Oracle.parts = 2; radius = 0; query }
