(** Baseline algorithms the lower-bound adversaries are played against.

    A lower-bound theorem quantifies over all algorithms; an executable
    reproduction demonstrates the adversary against a portfolio of
    concrete ones, from naive to the paper's own upper-bound algorithm
    run at a deliberately insufficient locality.  Every entry returns a
    fresh {!Models.Algorithm.t} per call (no shared state between runs). *)

val greedy : unit -> Models.Algorithm.t
(** Locality-1 first-fit greedy (see {!Models.Algorithm.greedy_first_fit}). *)

val hint_parity : unit -> Models.Algorithm.t
(** 2-coloring by frame-coordinate parity; ignores merges entirely. *)

val stripes3 : unit -> Models.Algorithm.t
(** 3-coloring by [(row + col) mod 3] from grid hints: proper on any
    fixed simple grid, but frame-relative — reflections and merge offsets
    break it.  The strongest hint-only baseline for grid adversaries. *)

val gadget_rows : unit -> Models.Algorithm.t
(** Colors gadget nodes by their row index from gadget hints — proper on
    the plain chain [G*] and row-colorful everywhere, hence the cleanest
    victim of the Theorem 3 seam. *)

val ael : t:int -> unit -> Models.Algorithm.t
(** The Akbari et al. 3-coloring of bipartite graphs at fixed locality
    [t] (oracle-free). *)

val kp1 : k:int -> t:int -> unit -> Models.Algorithm.t
(** The Theorem 4 algorithm at fixed locality [t] (needs an executor
    oracle). *)

val grid_baselines : unit -> (string * Models.Algorithm.t) list
(** The grid-adversary portfolio: greedy, hint-parity, stripes3, and ael
    at localities 1, 2 and 4. *)

val run_games :
  ?paranoid:bool ->
  ?limits:Harness.Guard.limits ->
  n:int ->
  (string * Models.Algorithm.t) list ->
  Game.t list ->
  (string * Game.verdict) list
(** Play every labeled algorithm against every game at size [n].  Each
    pairing runs guarded (see {!Game.referee}), so one faulty participant
    costs exactly one verdict — the portfolio always completes. *)
