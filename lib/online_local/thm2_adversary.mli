(** The Theorem 2 adversary: 3-coloring toroidal and cylindrical grids
    needs locality Omega(sqrt n) in Online-LOCAL.

    With an odd number of columns every row cycle has an odd b-value
    (Lemma 3.5), and for any proper coloring two rows oriented in
    opposite directions must have b-values summing to zero (Equation 1,
    by cell cancellation).  The adversary asks the algorithm to color two
    full rows whose T-radius bands are disjoint; from the algorithm's
    perspective these are two disconnected cylindrical bands, so the
    adversary is free to reflect one of them afterwards — flipping the
    sign of its odd (hence nonzero) b-value and breaking Equation 1.

    Reflection is realized as a {e host variant}: the grid in which the
    vertical edges crossing one unrevealed seam (two seams on the torus)
    connect column [j] to column [-j mod cols].  The variant is
    isomorphic to the plain grid and agrees with it on both revealed
    bands, so a deterministic algorithm colors the two rows identically
    on either host — the adversary probes on the plain host, picks the
    variant that breaks Equation 1, and replays the full presentation
    there. *)

type report = {
  result : [ `Defeated of Models.Run_stats.violation | `Survived ];
  s_east : int;  (** b-value of row 1 directed east (final coloring) *)
  s_west : int;  (** b-value of row 2 directed west (final coloring) *)
  reflected : bool;  (** whether the reflected variant was selected *)
  presented : int;
  revealed : int;  (** nodes revealed in the final (replay) run — not
      printed by {!pp_report}, whose output is pinned by goldens *)
  preconditions_met : bool;  (** odd side and 4T+4 <= side *)
}

val pp_report : Format.formatter -> report -> unit

val variant_host :
  wrap:[ `Cylindrical | `Toroidal ] -> side:int -> reflect:bool ->
  band_lo:int -> band_hi:int -> Grid_graph.Graph.t
(** The [side x side] grid of the given wrap, with rows
    [band_lo .. band_hi] column-reflected when [reflect] (the crossing
    seams sit just outside the band).  [reflect:false] is the plain
    grid.  Exposed for the isomorphism tests. *)

val run :
  ?bulk:bool ->
  ?memo:Canon.Memo.ctx ->
  wrap:[ `Cylindrical | `Toroidal ] ->
  side:int ->
  algorithm:Models.Algorithm.t ->
  unit ->
  report
(** Play the adversary on a [side x side] grid ([side] odd).  Probes the
    two rows on the plain host, selects the variant, replays in full,
    and audits the outcome.  [~bulk:true] is forwarded to the executor
    (per-step observability skipped; report unchanged). *)

val row_cycle_b : Colorings.Coloring.t -> side:int -> row:int -> east:bool -> int
(** b-value of the directed cycle along one row of a [side x side]
    wrapped grid under the (row-major) coloring; [east] traverses by
    increasing column. *)

val variant_host_rect :
  wrap:[ `Cylindrical | `Toroidal ] -> rows:int -> cols:int -> reflect:bool ->
  band_lo:int -> band_hi:int -> Grid_graph.Graph.t
(** Rectangular generalization of {!variant_host}. *)

val run_rect :
  ?bulk:bool ->
  ?memo:Canon.Memo.ctx ->
  wrap:[ `Cylindrical | `Toroidal ] ->
  rows:int ->
  cols:int ->
  algorithm:Models.Algorithm.t ->
  unit ->
  report
(** The remark after Theorem 2: on an [(a x b)] wrapped grid with an odd
    number of columns [b], the attack defeats any algorithm of locality
    [T <= (a - 4) / 4] — linear in the number of rows, independent of
    [b].  [run] is the square [a = b] case. *)

val row_cycle_b_rect :
  Colorings.Coloring.t -> cols:int -> row:int -> east:bool -> int
(** Rectangular generalization of {!row_cycle_b}. *)
