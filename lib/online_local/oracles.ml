let of_coloring ~parts ~radius coloring ~to_host =
  Models.Oracle.of_canonical_coloring ~parts ~radius ~to_host ~host_coloring:coloring

let grid_bipartition grid =
  let wrap = Topology.Grid2d.wrap grid in
  let rows = Topology.Grid2d.rows grid and cols = Topology.Grid2d.cols grid in
  let bipartite =
    match wrap with
    | Topology.Grid2d.Simple -> true
    | Topology.Grid2d.Cylindrical -> cols mod 2 = 0
    | Topology.Grid2d.Toroidal -> cols mod 2 = 0 && rows mod 2 = 0
  in
  if not bipartite then invalid_arg "Oracles.grid_bipartition: grid not bipartite";
  of_coloring ~parts:2 ~radius:0 (Topology.Grid2d.canonical_2_coloring grid)

let bipartite_graph host =
  match Grid_graph.Bipartite.two_color host with
  | None -> invalid_arg "Oracles.bipartite_graph: host not bipartite"
  | Some side -> of_coloring ~parts:2 ~radius:0 side

let tri_grid t = of_coloring ~parts:3 ~radius:1 (Topology.Tri_grid.canonical_3_coloring t)

let clique_chain ~parts ~radius =
  let q = parts in
  if q < 2 then invalid_arg "Oracles.clique_chain: parts must be >= 2";
  let query (view : Models.View.t) handles =
    if handles = [] then [||]
    else begin
      (* Work over everything revealed around the query: the chain of
         cliques may run through previously revealed territory, all of
         which the algorithm legitimately knows. *)
      let seen = Hashtbl.create 256 in
      let queue = Queue.create () in
      List.iter
        (fun h ->
          if not (Hashtbl.mem seen h) then begin
            Hashtbl.replace seen h ();
            Queue.add h queue
          end)
        handles;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun w ->
            if not (Hashtbl.mem seen w) then begin
              Hashtbl.replace seen w ();
              Queue.add w queue
            end)
          (view.Models.View.neighbors u)
      done;
      let nodes = Hashtbl.fold (fun v () acc -> v :: acc) seen [] in
      (* Enumerate q-cliques as sorted node lists rooted at their minimum. *)
      let cliques = ref [] in
      let rec extend clique candidates =
        if List.length clique = q then cliques := List.rev clique :: !cliques
        else
          List.iter
            (fun c ->
              if List.for_all (fun u -> view.Models.View.mem_edge u c) clique then
                extend (c :: clique)
                  (List.filter (fun d -> d > c) candidates))
            candidates
      in
      List.iter
        (fun v ->
          let bigger =
            List.filter (fun w -> w > v && Hashtbl.mem seen w)
              (view.Models.View.neighbors v)
          in
          extend [ v ] (List.sort compare bigger))
        nodes;
      let cliques = !cliques in
      (* Cliques through each node, for the shared-face walk. *)
      let through = Hashtbl.create 256 in
      List.iter
        (fun t ->
          List.iter
            (fun v ->
              Hashtbl.replace through v
                (t :: Option.value ~default:[] (Hashtbl.find_opt through v)))
            t)
        cliques;
      (* Chain parts outward from a seed clique on the smallest handle. *)
      let part = Hashtbl.create 256 in
      let seed_node = List.fold_left min (List.hd handles) handles in
      (match Hashtbl.find_opt through seed_node with
      | None | Some [] ->
          invalid_arg "Oracles.clique_chain: a queried node lies on no clique"
      | Some (t0 :: _) -> List.iteri (fun i v -> Hashtbl.replace part v i) t0);
      let tqueue = Queue.create () in
      let push_cliques_of v =
        List.iter (fun t -> Queue.add t tqueue)
          (Option.value ~default:[] (Hashtbl.find_opt through v))
      in
      Hashtbl.iter (fun v _ -> push_cliques_of v) part;
      let all_parts_sum = q * (q - 1) / 2 in
      let changed = ref true in
      while !changed do
        changed := false;
        let pending = Queue.create () in
        Queue.transfer tqueue pending;
        while not (Queue.is_empty pending) do
          let t = Queue.pop pending in
          let assigned = List.filter (fun v -> Hashtbl.mem part v) t in
          let unassigned = List.filter (fun v -> not (Hashtbl.mem part v)) t in
          match unassigned with
          | [ c ] when List.length assigned = q - 1 ->
              let sum =
                List.fold_left (fun acc v -> acc + Hashtbl.find part v) 0 assigned
              in
              let distinct =
                List.length (List.sort_uniq compare (List.map (Hashtbl.find part) assigned))
                = q - 1
              in
              if not distinct then
                invalid_arg
                  "Oracles.clique_chain: inconsistent clique chain (repeated part in a \
                   clique)";
              Hashtbl.replace part c (all_parts_sum - sum);
              changed := true;
              push_cliques_of c
          | [] ->
              let ps = List.map (Hashtbl.find part) t in
              if List.length (List.sort_uniq compare ps) <> q then
                invalid_arg
                  "Oracles.clique_chain: inconsistent clique chain (host lacks a unique \
                   partition)"
          | _ -> Queue.add t tqueue
        done
      done;
      let raw =
        Array.of_list
          (List.map
             (fun h ->
               match Hashtbl.find_opt part h with
               | Some p -> p
               | None ->
                   invalid_arg
                     "Oracles.clique_chain: clique chain does not reach a queried node")
             handles)
      in
      Models.Oracle.canonicalize raw handles
    end
  in
  { Models.Oracle.parts; radius; query }

let triangle_chain =
  let o = clique_chain ~parts:3 ~radius:1 in
  {
    o with
    Models.Oracle.query =
      (fun view handles ->
        try o.Models.Oracle.query view handles
        with Invalid_argument msg ->
          (* Keep the historical triangle-specific message for the common
             failure mode. *)
          if msg = "Oracles.clique_chain: a queried node lies on no clique" then
            invalid_arg "Oracles.triangle_chain: a queried node lies on no triangle"
          else invalid_arg msg);
  }

let ktree t =
  of_coloring
    ~parts:(Topology.Ktree.k t + 1)
    ~radius:1
    (Topology.Ktree.canonical_coloring t)

let layered t =
  of_coloring ~parts:(Topology.Layered.k t) ~radius:(Topology.Layered.k t)
    (Topology.Layered.canonical_k_coloring t)

let gadget_chain t =
  of_coloring ~parts:(Topology.Gadget.k t) ~radius:1
    (Topology.Gadget.canonical_k_coloring t)
