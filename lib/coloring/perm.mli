(** Permutations of [{0, ..., k-1}].

    A "type" of a group in the Section 5.1 algorithm is a permutation
    assigning colors to the k parts of the partition; unifying two types
    decomposes their difference into at most [k - 1] transpositions
    (executed by Algorithm 1). *)

type t
(** A permutation of [{0..k-1}]; [apply p i] is the image of [i]. *)

val identity : int -> t
val of_array : int array -> t
(** @raise Invalid_argument if the array is not a permutation. *)

val to_array : t -> int array
val size : t -> int
val apply : t -> int -> int
val compose : t -> t -> t
(** [compose p q] applies [q] first: [apply (compose p q) i = apply p (apply q i)]. *)

val inverse : t -> t
val equal : t -> t -> bool

val transposition : int -> int -> int -> t
(** [transposition k i j] swaps [i] and [j] in [{0..k-1}]. *)

val transposition_decomposition : src:t -> dst:t -> (int * int) list
(** A list of at most [k - 1] color swaps [(c1, c2)] such that applying
    them to [src] in order (each swap exchanging the two {e colors} in
    the permutation's image) yields [dst]. *)

val all : int -> t list
(** All [k!] permutations; keep [k] small. *)

val pp : Format.formatter -> t -> unit
