open Grid_graph

type colors = int array

let special = 2

let check_color c =
  if c < 0 || c > 2 then
    invalid_arg (Printf.sprintf "Bvalue: color %d outside {0,1,2}" c)

let a_value colors u v =
  let cu = colors.(u) and cv = colors.(v) in
  check_color cu;
  check_color cv;
  if cu = special || cv = special then 0 else cu - cv

let indicator colors u =
  check_color colors.(u);
  if colors.(u) = special then 1 else 0

let b_path colors path =
  List.fold_left (fun acc (u, v) -> acc + a_value colors u v) 0 (Walk.arcs path)

let b_cycle colors cycle =
  List.fold_left (fun acc (u, v) -> acc + a_value colors u v) 0 (Walk.cycle_arcs cycle)

let path_parity colors path =
  match path with
  | [] -> 0
  | first :: _ ->
      let last = List.nth path (List.length path - 1) in
      (indicator colors first + indicator colors last + Walk.length path) mod 2

let check_parity_path colors path =
  (b_path colors path - path_parity colors path) mod 2 = 0

let check_parity_cycle colors cycle =
  (b_cycle colors cycle - Walk.cycle_length cycle) mod 2 = 0

let check_cell_cancellation g colors cycle =
  Walk.cycle_length cycle = 4
  && Walk.is_cycle g cycle
  && List.for_all (fun (u, v) -> colors.(u) <> colors.(v)) (Walk.cycle_arcs cycle)
  && b_cycle colors cycle = 0

let grid_cycle_b_is_zero _grid colors cycle = b_cycle colors cycle = 0

let rectangle_cycle grid ~top ~bottom ~left ~right =
  if top >= bottom || left >= right then
    invalid_arg "Bvalue.rectangle_cycle: degenerate rectangle";
  let open Topology.Grid2d in
  (* Bottom row rightward, right column upward, top row leftward, left
     column downward; each corner appears exactly once. *)
  let bottom_row = row_segment grid ~row:bottom ~col_lo:left ~col_hi:right in
  let right_col = List.rev (col_segment grid ~col:right ~row_lo:top ~row_hi:bottom) in
  let top_row = List.rev (row_segment grid ~row:top ~col_lo:left ~col_hi:right) in
  let left_col = col_segment grid ~col:left ~row_lo:top ~row_hi:bottom in
  let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l in
  drop_last bottom_row @ drop_last right_col @ drop_last top_row @ drop_last left_col
