(** The transition-counting reading of the b-value (Section 3.1's
    intuition, Figures 3 and 4).

    In a proper 3-coloring, a directed path decomposes into maximal
    special-color-free segments separated by special-colored nodes
    (color 2 here, color 3 in the paper).  On a special-free segment the
    colors alternate between 0 and 1, so its a-values telescope to
    [first - last]; hence

    [b(P) = #(segments from 1 to 0) - #(segments from 0 to 1)],

    the paper's "difference between the number of occurrences of
    3->2->...->1->3 and 3->1->...->2->3".  This module computes the
    decomposition and the counts so the identity can be property-tested,
    and extracts the color-{0,1} {e regions} that the special color cuts
    a grid into. *)

type segment = {
  start_index : int;  (** index into the path of the segment's first node *)
  stop_index : int;  (** index of the segment's last node *)
  first_color : int;  (** in {0, 1} *)
  last_color : int;  (** in {0, 1} *)
}

val decompose : Bvalue.colors -> Grid_graph.Walk.t -> segment list
(** Maximal special-free segments of the path, in order. *)

val transition_counts : Bvalue.colors -> Grid_graph.Walk.t -> int * int
(** [(plus, minus)]: segments telescoping [1 -> 0] and [0 -> 1].
    Segments with equal endpoints count in neither. *)

val b_via_segments : Bvalue.colors -> Grid_graph.Walk.t -> int
(** [plus - minus] — equals {!Bvalue.b_path} on properly colored paths
    (property-tested), which is the content of the Section 3.1 intuition. *)

val regions : Grid_graph.Graph.t -> Bvalue.colors -> Grid_graph.Graph.node list list
(** Connected components of the non-special-colored nodes: the "regions"
    that the special color separates (Figure 3). *)
