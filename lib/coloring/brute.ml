open Grid_graph

(* Nodes in decreasing degree order: coloring high-degree nodes first
   prunes the search much earlier on the dense gadget graphs of Section 4. *)
let search_order g =
  let order = Array.init (Graph.n g) (fun i -> i) in
  Array.sort (fun u v -> compare (Graph.degree g v) (Graph.degree g u)) order;
  order

let solve ?partial g ~colors ~on_solution =
  let n = Graph.n g in
  let assignment = Array.make n (-1) in
  (match partial with
  | Some p ->
      if Coloring.size p <> n then invalid_arg "Brute: partial coloring size mismatch";
      List.iter (fun v -> assignment.(v) <- Coloring.get_exn p v) (Coloring.colored_nodes p)
  | None -> ());
  let order = search_order g in
  let free = Array.of_list (List.filter (fun v -> assignment.(v) = -1) (Array.to_list order)) in
  let allowed v c =
    Array.for_all (fun w -> assignment.(w) <> c) (Graph.neighbors g v)
  in
  (* Check the pre-colored part is itself consistent before searching. *)
  let precolored_ok =
    Graph.fold_edges g ~init:true ~f:(fun ok u v ->
        ok && not (assignment.(u) <> -1 && assignment.(u) = assignment.(v)))
    && Array.for_all (fun c -> c < colors) assignment
  in
  if precolored_ok then begin
    let rec go i =
      if i = Array.length free then on_solution (Array.copy assignment)
      else begin
        let v = free.(i) in
        for c = 0 to colors - 1 do
          if allowed v c then begin
            assignment.(v) <- c;
            go (i + 1);
            assignment.(v) <- -1
          end
        done
      end
    in
    go 0
  end

exception Found of int array

let find_coloring ?partial g ~colors =
  try
    solve ?partial g ~colors ~on_solution:(fun a -> raise (Found a));
    None
  with Found a -> Some a

let exists_coloring ?partial g ~colors = Option.is_some (find_coloring ?partial g ~colors)

let chromatic_number g =
  if Graph.n g = 0 then 0
  else
    let rec from c = if exists_coloring g ~colors:c then c else from (c + 1) in
    from 1

let iter_colorings g ~colors f = solve g ~colors ~on_solution:f

let count_colorings g ~colors =
  let count = ref 0 in
  iter_colorings g ~colors (fun _ -> incr count);
  !count
