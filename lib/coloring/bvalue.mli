(** The a-value and b-value machinery of Section 3.1.

    Colors are [{0, 1, 2}]; color [2] plays the role of the paper's
    color 3 (the "special" color).  For an arc [(u, v)]:

    {ul
    {- [a (u, v) = c u - c v] when neither endpoint has color 2;}
    {- [a (u, v) = 0] otherwise.}}

    The b-value of a directed path or cycle is the sum of [a] over its
    arcs.  The library exports the three properties the lower bounds
    rest on as checkable predicates:

    {ul
    {- Lemma 3.3: every properly colored 4-cycle has [b = 0];}
    {- Lemma 3.4: every simple directed cycle of a properly colored grid
       has [b = 0];}
    {- Lemma 3.5: [b(P) = i(u) + i(v) + length P  (mod 2)] where [i]
       indicates color 2, and [b(C) = length C (mod 2)].}} *)

type colors = int array
(** A total coloring with values in [{0, 1, 2}] indexed by node. *)

val special : int
(** The special color (2 here, 3 in the paper). *)

val a_value : colors -> Grid_graph.Graph.node -> Grid_graph.Graph.node -> int
(** [a_value c u v] per Definition 3.1.  Always in [{-1, 0, 1}].
    @raise Invalid_argument if a color is outside [{0, 1, 2}]. *)

val indicator : colors -> Grid_graph.Graph.node -> int
(** [i(u)]: 1 when the node has the special color, else 0. *)

val b_path : colors -> Grid_graph.Walk.t -> int
(** b-value of a directed path (sum of [a] over consecutive arcs); 0 for
    paths of length 0.  The path's adjacency is {e not} checked here —
    pair with {!Grid_graph.Walk.is_path} when the input is untrusted. *)

val b_cycle : colors -> Grid_graph.Walk.t -> int
(** b-value of a directed cycle, including the closing arc. *)

val path_parity : colors -> Grid_graph.Walk.t -> int
(** The parity Lemma 3.5 predicts for a path:
    [(i(first) + i(last) + length) mod 2]; 0 for empty paths. *)

val check_parity_path : colors -> Grid_graph.Walk.t -> bool
(** Whether [b_path] has the parity predicted by Lemma 3.5. *)

val check_parity_cycle : colors -> Grid_graph.Walk.t -> bool
(** Whether [b_cycle c w = cycle_length w  (mod 2)]. *)

val check_cell_cancellation : Grid_graph.Graph.t -> colors -> Grid_graph.Walk.t -> bool
(** Lemma 3.3 on one 4-node directed cycle: either the cycle is not a
    properly colored 4-cycle of the graph (vacuously true is {e not}
    assumed — the function returns [false] on malformed input so tests
    catch misuse), or its b-value is 0. *)

val grid_cycle_b_is_zero : Topology.Grid2d.t -> colors -> Grid_graph.Walk.t -> bool
(** Lemma 3.4 specialised to an axis-aligned rectangle boundary given as
    a directed cycle in a simple grid: checks [b = 0].  Works for any
    simple directed cycle (the b-value is computed directly). *)

val rectangle_cycle :
  Topology.Grid2d.t ->
  top:int -> bottom:int -> left:int -> right:int -> Grid_graph.Walk.t
(** The boundary of the axis-aligned rectangle, as a directed cycle
    running rightward along the bottom row, up the right column, leftward
    along the top row and down the left column.  Requires
    [top < bottom] and [left < right].
    @raise Invalid_argument on degenerate or out-of-range rectangles. *)
