(** (degree+1)-list coloring — the paper's introductory SLOCAL example
    ("the well-known greedy coloring algorithm solves the (degree+1)-list
    coloring problem with locality 1 in SLOCAL", Section 1).

    Every node carries a list (here: a set) of allowed colors of size at
    least its degree plus one; a proper coloring must pick each node's
    color from its own list.  Greedy sequential assignment always
    succeeds, whatever order the adversary picks — executable evidence
    for the claim, and a useful generality test for the models layer. *)

type lists = int list array
(** [lists.(v)] is the allowed palette of node [v]. *)

val valid_instance : Grid_graph.Graph.t -> lists -> bool
(** Every node's list has at least [degree + 1] distinct colors. *)

val greedy : Grid_graph.Graph.t -> lists -> order:Grid_graph.Graph.node list -> int array
(** Sequential greedy: each node takes the first color of its list not
    used by an already-colored neighbor.  With a valid instance this
    never gets stuck.
    @raise Invalid_argument if a node has no available color (possible
    only on invalid instances) or if [order] is not a permutation. *)

val is_list_proper : Grid_graph.Graph.t -> lists -> int array -> bool
(** Proper and every color drawn from its node's list. *)

val uniform_lists : Grid_graph.Graph.t -> colors:int -> lists
(** The ordinary coloring problem as a list instance: everyone gets
    [{0..colors-1}]. *)

val random_lists : Grid_graph.Graph.t -> slack:int -> seed:int -> lists
(** Random valid lists: node [v] gets [degree v + 1 + slack] distinct
    colors drawn from a universe twice that size.

    The SLOCAL form of the greedy rule lives in
    {!Models.Slocal.list_greedy} (the models layer sits above this
    one). *)
