type t = int array

let identity k = Array.init k (fun i -> i)

let of_array a =
  let k = Array.length a in
  let seen = Array.make k false in
  Array.iter
    (fun x ->
      if x < 0 || x >= k || seen.(x) then invalid_arg "Perm.of_array: not a permutation"
      else seen.(x) <- true)
    a;
  Array.copy a

let to_array p = Array.copy p
let size = Array.length
let apply p i = p.(i)

let compose p q = Array.init (Array.length p) (fun i -> p.(q.(i)))

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let equal (p : t) q = p = q

let transposition k i j =
  let p = identity k in
  p.(i) <- j;
  p.(j) <- i;
  p

(* Swapping colors c1 and c2 in a permutation p means post-composing with
   the transposition (c1 c2): every part mapped to c1 now maps to c2 and
   vice versa. *)
let swap_colors p (c1, c2) = compose (transposition (Array.length p) c1 c2) p

let transposition_decomposition ~src ~dst =
  let k = Array.length src in
  if Array.length dst <> k then invalid_arg "Perm: size mismatch";
  let current = ref (Array.copy src) in
  let swaps = ref [] in
  for part = 0 to k - 1 do
    let have = !current.(part) and want = dst.(part) in
    if have <> want then begin
      swaps := (have, want) :: !swaps;
      current := swap_colors !current (have, want)
    end
  done;
  assert (equal !current dst);
  List.rev !swaps

let all k =
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x -> List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) xs)))
          xs
  in
  List.map Array.of_list (perms (List.init k (fun i -> i)))

let pp ppf p =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int p)))
