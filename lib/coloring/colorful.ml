type matrix = int array array

let matrix_of_gadget chain coloring ~gadget =
  let k = Topology.Gadget.k chain in
  Array.init k (fun i ->
      Array.init k (fun j ->
          Coloring.get_exn coloring (Topology.Gadget.node chain ~gadget ~row:i ~col:j)))

let count_in_row m ~color ~row =
  Array.fold_left (fun acc c -> if c = color then acc + 1 else acc) 0 m.(row)

let count_in_col m ~color ~col =
  Array.fold_left (fun acc r -> if r.(col) = color then acc + 1 else acc) 0 m

let confined_to_row m ~color ~row = count_in_row m ~color ~row >= 2
let confined_to_col m ~color ~col = count_in_col m ~color ~col >= 2

let all_distinct xs =
  let l = Array.to_list xs in
  List.length (List.sort_uniq compare l) = List.length l

let row_colorful m ~row = all_distinct m.(row)
let col_colorful m ~col = all_distinct (Array.map (fun r -> r.(col)) m)

let is_row_colorful m =
  let k = Array.length m in
  let rec any i = i < k && (row_colorful m ~row:i || any (i + 1)) in
  any 0

let is_col_colorful m =
  let k = Array.length m in
  let rec any j = j < k && (col_colorful m ~col:j || any (j + 1)) in
  any 0

type classification = Row_colorful | Column_colorful | Both | Neither

let classify m =
  match (is_row_colorful m, is_col_colorful m) with
  | true, true -> Both
  | true, false -> Row_colorful
  | false, true -> Column_colorful
  | false, false -> Neither

let transpose m =
  let k = Array.length m in
  Array.init k (fun i -> Array.init k (fun j -> m.(j).(i)))
