(** Exhaustive coloring search for small graphs.

    The lower-bound sections of the paper repeatedly claim that certain
    partial colorings cannot be completed (Theorems 1-3).  This module is
    the ground-truth checker: a backtracking solver over all proper
    [c]-colorings, used by the test suite to validate the combinatorial
    lemmas (3.3-3.5, Claims 4.3/4.5, Lemma 4.6) on every instance small
    enough to enumerate. *)

val find_coloring :
  ?partial:Coloring.t -> Grid_graph.Graph.t -> colors:int -> int array option
(** A proper total [colors]-coloring extending [partial] (default: the
    empty coloring), or [None] if none exists.  Backtracking over nodes
    in decreasing-degree order with forward pruning. *)

val exists_coloring :
  ?partial:Coloring.t -> Grid_graph.Graph.t -> colors:int -> bool

val chromatic_number : Grid_graph.Graph.t -> int
(** Smallest [c] with a proper [c]-coloring.  Exponential; small graphs
    only. *)

val iter_colorings : Grid_graph.Graph.t -> colors:int -> (int array -> unit) -> unit
(** Enumerate every proper total [colors]-coloring (not up to symmetry);
    the callback must not retain the array. *)

val count_colorings : Grid_graph.Graph.t -> colors:int -> int
