open Grid_graph

type t = { colors : int array; mutable assigned : int }
(* colors.(v) = -1 encodes "uncolored". *)

let create n = { colors = Array.make n (-1); assigned = 0 }

let of_array a =
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Coloring.of_array: negative color")
    a;
  { colors = Array.copy a; assigned = Array.length a }

let copy t = { colors = Array.copy t.colors; assigned = t.assigned }
let size t = Array.length t.colors

let set t v c =
  if c < 0 then invalid_arg "Coloring.set: negative color";
  let old = t.colors.(v) in
  if old = -1 then begin
    t.colors.(v) <- c;
    t.assigned <- t.assigned + 1
  end
  else if old <> c then
    invalid_arg
      (Printf.sprintf "Coloring.set: node %d already colored %d, refusing %d" v old c)

let get t v = if t.colors.(v) = -1 then None else Some t.colors.(v)

let get_exn t v =
  if t.colors.(v) = -1 then invalid_arg "Coloring.get_exn: uncolored node"
  else t.colors.(v)

let is_colored t v = t.colors.(v) <> -1
let colored_count t = t.assigned
let is_total t = t.assigned = Array.length t.colors

let colored_nodes t =
  let out = ref [] in
  for v = Array.length t.colors - 1 downto 0 do
    if t.colors.(v) <> -1 then out := v :: !out
  done;
  !out

let max_color_used t =
  let best = Array.fold_left max (-1) t.colors in
  if best = -1 then None else Some best

let uses_at_most t c = Array.for_all (fun x -> x < c) t.colors

let find_monochromatic_edge g t =
  let found = ref None in
  (try
     Graph.iter_edges g (fun u v ->
         if t.colors.(u) <> -1 && t.colors.(u) = t.colors.(v) then begin
           found := Some (u, v);
           raise Exit
         end)
   with Exit -> ());
  !found

let is_proper g t = Option.is_none (find_monochromatic_edge g t)

let is_proper_total g t ~colors =
  is_total t && uses_at_most t colors && is_proper g t

let to_array t = Array.map (fun c -> if c = -1 then None else Some c) t.colors

let to_array_exn t =
  if not (is_total t) then invalid_arg "Coloring.to_array_exn: partial coloring"
  else Array.copy t.colors
