(** Partial vertex colorings.

    Colors are integers [0 .. c-1] (the paper writes [{1, ..., c}]).  A
    coloring may be partial — Online-LOCAL algorithms build their outputs
    one revealed node at a time, and the adversary arguments of Section 3
    reason about colorings of a path long before the rest of the grid is
    colored. *)

type t

val create : int -> t
(** [create n] is the everywhere-uncolored coloring of [n] nodes. *)

val of_array : int array -> t
(** Total coloring from an array of nonnegative colors.
    @raise Invalid_argument on a negative entry. *)

val copy : t -> t

val size : t -> int
(** Number of nodes. *)

val set : t -> Grid_graph.Graph.node -> int -> unit
(** Color a node.  Recoloring a node with a {e different} color raises
    [Invalid_argument] — in all the models of the paper an output, once
    assigned, is final; setting the same color again is a no-op. *)

val get : t -> Grid_graph.Graph.node -> int option
val get_exn : t -> Grid_graph.Graph.node -> int
val is_colored : t -> Grid_graph.Graph.node -> bool

val colored_count : t -> int
val is_total : t -> bool

val colored_nodes : t -> Grid_graph.Graph.node list
(** All colored nodes in increasing order. *)

val max_color_used : t -> int option
(** Largest color present, [None] when nothing is colored. *)

val uses_at_most : t -> int -> bool
(** Whether every assigned color is [< c]. *)

val find_monochromatic_edge :
  Grid_graph.Graph.t -> t -> (Grid_graph.Graph.node * Grid_graph.Graph.node) option
(** First edge whose two endpoints are colored alike, if any. *)

val is_proper : Grid_graph.Graph.t -> t -> bool
(** No monochromatic edge among colored nodes.  A partial coloring can be
    proper; a total proper coloring is a proper coloring in the usual
    sense. *)

val is_proper_total : Grid_graph.Graph.t -> t -> colors:int -> bool
(** Total, proper, and using only colors [< colors]. *)

val to_array : t -> int option array
(** A snapshot as an option array. *)

val to_array_exn : t -> int array
(** Snapshot of a total coloring.
    @raise Invalid_argument if some node is uncolored. *)
