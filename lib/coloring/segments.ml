type segment = {
  start_index : int;
  stop_index : int;
  first_color : int;
  last_color : int;
}

let decompose colors path =
  let nodes = Array.of_list path in
  let len = Array.length nodes in
  let out = ref [] in
  let start = ref (-1) in
  let flush stop =
    if !start >= 0 then begin
      out :=
        {
          start_index = !start;
          stop_index = stop;
          first_color = colors.(nodes.(!start));
          last_color = colors.(nodes.(stop));
        }
        :: !out;
      start := -1
    end
  in
  for i = 0 to len - 1 do
    if colors.(nodes.(i)) = Bvalue.special then flush (i - 1)
    else if !start < 0 then start := i
  done;
  flush (len - 1);
  List.rev !out

let transition_counts colors path =
  List.fold_left
    (fun (plus, minus) seg ->
      match (seg.first_color, seg.last_color) with
      | 1, 0 -> (plus + 1, minus)
      | 0, 1 -> (plus, minus + 1)
      | _ -> (plus, minus))
    (0, 0) (decompose colors path)

let b_via_segments colors path =
  let plus, minus = transition_counts colors path in
  plus - minus

let regions g colors =
  let keep = ref [] in
  Grid_graph.Graph.iter_nodes g (fun v ->
      if colors.(v) <> Bvalue.special then keep := v :: !keep);
  Grid_graph.Components.components_within g !keep
