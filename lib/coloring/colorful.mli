(** Row/column colorfulness of gadgets (Definitions 4.2 and 4.4).

    Given a proper coloring of a gadget [A(k)], a color is {e confined}
    to a row (column) if it appears at least twice there; a row (column)
    is {e colorful} if its [k] nodes carry distinct colors.  Claim 4.5:
    under a proper (2k-2)-coloring, a gadget is row-colorful xor
    column-colorful. *)

type matrix = int array array
(** [m.(i).(j)] is the color of the gadget node in row [i], column [j]. *)

val matrix_of_gadget : Topology.Gadget.t -> Coloring.t -> gadget:int -> matrix
(** Extract one gadget's color matrix from a coloring of the whole chain.
    @raise Invalid_argument if some node of the gadget is uncolored. *)

val confined_to_row : matrix -> color:int -> row:int -> bool
(** Whether the color appears at least twice in the row. *)

val confined_to_col : matrix -> color:int -> col:int -> bool

val row_colorful : matrix -> row:int -> bool
(** All [k] entries of the row distinct. *)

val col_colorful : matrix -> col:int -> bool

val is_row_colorful : matrix -> bool
(** Some row is colorful. *)

val is_col_colorful : matrix -> bool

type classification = Row_colorful | Column_colorful | Both | Neither

val classify : matrix -> classification
(** Claim 4.5 says a properly (2k-2)-colored gadget classifies as
    [Row_colorful] or [Column_colorful], never [Both] or [Neither]; the
    latter two are representable so tests can confirm they never occur. *)

val transpose : matrix -> matrix
