open Grid_graph

type lists = int list array

let valid_instance g lists =
  Array.length lists = Graph.n g
  && Graph.fold_nodes g ~init:true ~f:(fun acc v ->
         acc
         && List.length (List.sort_uniq compare lists.(v)) >= Graph.degree g v + 1)

let greedy g lists ~order =
  let n = Graph.n g in
  if List.length order <> n || List.length (List.sort_uniq compare order) <> n then
    invalid_arg "List_coloring.greedy: order is not a permutation";
  let colors = Array.make n (-1) in
  List.iter
    (fun v ->
      let taken =
        Array.to_list (Graph.neighbors g v)
        |> List.filter_map (fun u -> if colors.(u) >= 0 then Some colors.(u) else None)
      in
      match List.find_opt (fun c -> not (List.mem c taken)) lists.(v) with
      | Some c -> colors.(v) <- c
      | None -> invalid_arg "List_coloring.greedy: stuck (invalid instance?)")
    order;
  colors

let is_list_proper g lists colors =
  Array.length colors = Graph.n g
  && Graph.fold_nodes g ~init:true ~f:(fun acc v -> acc && List.mem colors.(v) lists.(v))
  && Graph.fold_edges g ~init:true ~f:(fun acc u v -> acc && colors.(u) <> colors.(v))

let uniform_lists g ~colors =
  Array.init (Graph.n g) (fun _ -> List.init colors (fun c -> c))

let random_lists g ~slack ~seed =
  let state = Random.State.make [| seed |] in
  Array.init (Graph.n g) (fun v ->
      let want = Graph.degree g v + 1 + slack in
      let universe = 2 * want in
      let chosen = Hashtbl.create 8 in
      while Hashtbl.length chosen < want do
        Hashtbl.replace chosen (Random.State.int state universe) ()
      done;
      Hashtbl.fold (fun c () acc -> c :: acc) chosen [] |> List.sort compare)
