(** Least-squares line fitting, for turning the sweep tables into slope
    statements ("T* grows like c log n with R^2 = ...").  Minimal and
    dependency-free; used by the experiment drivers. *)

type line = {
  slope : float;
  intercept : float;
  r_squared : float;  (** 1.0 on a perfect fit; 0/0-degenerate inputs give [nan] *)
}

val fit : (float * float) list -> line
(** Ordinary least squares on (x, y) points.
    @raise Invalid_argument with fewer than 2 points. *)

val fit_log_x : (float * float) list -> line
(** Fit y against log2 x — the shape test for Theta(log n) claims. *)

val pp : Format.formatter -> line -> unit
