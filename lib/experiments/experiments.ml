module Fit = Fit

open Online_local
module FH = Models.Fixed_host
module RS = Models.Run_stats

let hr ppf title =
  Format.fprintf ppf "@.----- %s -----@." title

(* ------------------------------- E1 ------------------------------- *)

let e1_grid_lower_bound ?(quick = false) ppf =
  hr ppf "E1 (Theorem 1): 3-coloring simple grids needs Omega(log n)";
  Format.fprintf ppf
    "@.(a) Lemma 3.6 adversary (b-target k = 9, guaranteed vs locality 1) vs portfolio:@.";
  Format.fprintf ppf "%-24s %-10s %-9s %-10s %s@." "algorithm" "result" "forced_b"
    "presented" "region";
  List.iter
    (fun (name, algo) ->
      let r = Thm1_adversary.run ~n_side:400 ~k:9 ~algorithm:algo () in
      Format.fprintf ppf "%-24s %-10s %-9d %-10d %dx%d@." name
        (match r.Thm1_adversary.result with
        | `Defeated _ -> "DEFEATED"
        | `Survived -> "survived")
        r.Thm1_adversary.forced_b r.Thm1_adversary.presented r.Thm1_adversary.width
        r.Thm1_adversary.height)
    (Portfolio.grid_baselines ());
  Format.fprintf ppf
    "@.(b) defeat frontier for the paper's algorithm: smallest b-target k* that@.";
  Format.fprintf ppf
    "    defeats AEL at locality T (grows with T <=> T* grows with log n):@.";
  Format.fprintf ppf "%-6s %-6s@." "T" "k*";
  let ts = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6; 8 ] in
  List.iter
    (fun t ->
      match
        Measure.min_defeating_b ~n_side:6000 ~t
          ~algorithm:(fun () -> Portfolio.ael ~t ())
          ~k_max:12
      with
      | Some k -> Format.fprintf ppf "%-6d %-6d@." t k
      | None -> Format.fprintf ppf "%-6d > 12@." t)
    ts;
  Format.fprintf ppf
    "@.(c) guaranteed-defeat locality threshold vs n (adversary needs k > 4T+4@.";
  Format.fprintf ppf
    "    and a region of width w(k) = 2 w(k-1) + 3 to fit in sqrt(n)):@.";
  Format.fprintf ppf "%-12s %-14s %-10s %s@." "sqrt(n)" "max fitting k" "T* beaten"
    "log2 sqrt(n)";
  let sides =
    if quick then [ 256; 4096; 65536 ]
    else [ 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576 ]
  in
  let points = ref [] in
  List.iter
    (fun side ->
      (* Largest T such that recommended_k(side, T) > 4T + 4. *)
      let rec best t acc =
        let k = Thm1_adversary.recommended_k ~n_side:side ~t in
        if Thm1_adversary.guaranteed ~t ~k then best (t + 1) t else acc
      in
      let t_star = best 1 0 in
      points := (float_of_int side, float_of_int t_star) :: !points;
      Format.fprintf ppf "%-12d %-14d %-10d %.1f@." side
        (Thm1_adversary.recommended_k ~n_side:side ~t:1)
        t_star
        (log (float_of_int side) /. log 2.))
    sides;
  if List.length !points >= 2 then
    Format.fprintf ppf "fit of T* against log2 sqrt(n): %a@." Fit.pp
      (Fit.fit_log_x (List.rev !points));
  (* Ablation (DESIGN.md decision 1): the adversary's power is exactly
     the deferred placement.  On a coordinate-leaking executor — a fixed
     host with honest global coordinate hints — the trivial stripes
     algorithm survives every presentation order. *)
  Format.fprintf ppf
    "@.(d) ablation: with coordinates leaked (fixed host, global hints), the@.";
  Format.fprintf ppf
    "    locality-1 stripes algorithm survives every order the adversary has:@.";
  let side = if quick then 20 else 40 in
  let g = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:side ~cols:side in
  let host = Topology.Grid2d.graph g in
  let hints v =
    let row, col = Topology.Grid2d.coords g v in
    Some (Models.View.Grid_pos { frame = 0; row; col })
  in
  let survived =
    List.for_all
      (fun order ->
        let outcome =
          FH.run ~hints ~host ~palette:3 ~algorithm:(Portfolio.stripes3 ()) ~order ()
        in
        RS.succeeded outcome ~colors:3 ~host)
      (Measure.adversarial_orders ~host ~seeds:[ 1; 2; 3 ])
  in
  Format.fprintf ppf
    "    stripes3 on %dx%d with leaked coordinates: survived all orders = %b@."
    side side survived;
  Format.fprintf ppf
    "    (the same stripes3 is DEFEATED above under deferred placement)@."

(* ------------------------------- E2 ------------------------------- *)

let e2_torus_lower_bound ?(quick = false) ppf =
  hr ppf "E2 (Theorem 2): toroidal/cylindrical grids need Omega(sqrt n)";
  Format.fprintf ppf
    "@.Two-row attack: defeat requires odd side and 4T+4 <= side, i.e. the@.";
  Format.fprintf ppf
    "threshold is linear in sqrt(n).  Playing across sides and localities:@.";
  Format.fprintf ppf "%-12s %-6s %-18s %-10s %-10s %s@." "wrap" "side" "algorithm"
    "preconds" "result" "s-values (e/w)";
  let sides = if quick then [ 9; 21 ] else [ 9; 13; 21; 33; 51 ] in
  (* id-stripes is proper on the plain 3-divisible host; greedy is the
     naive baseline.  Both fall to the reflection. *)
  let id_stripes side =
    Models.Algorithm.stateless ~name:"id-stripes" ~locality:(fun ~n:_ -> 1) (fun view ->
        let v = view.Models.View.id view.Models.View.target - 1 in
        ((v / side) + (v mod side)) mod 3)
  in
  List.iter
    (fun wrap ->
      List.iter
        (fun side ->
          let algorithms =
            ("greedy", Portfolio.greedy ())
            :: ("ael-T1", Portfolio.ael ~t:1 ())
            :: (if side mod 3 = 0 then [ ("id-stripes", id_stripes side) ] else [])
          in
          List.iter
            (fun (name, algorithm) ->
              let r = Thm2_adversary.run ~wrap ~side ~algorithm () in
              Format.fprintf ppf "%-12s %-6d %-18s %-10b %-10s %d/%d@."
                (match wrap with `Cylindrical -> "cylinder" | `Toroidal -> "torus")
                side name r.Thm2_adversary.preconditions_met
                (match r.Thm2_adversary.result with
                | `Defeated _ -> "DEFEATED"
                | `Survived -> "survived")
                r.Thm2_adversary.s_east r.Thm2_adversary.s_west)
            algorithms)
        sides)
    [ `Cylindrical; `Toroidal ];
  Format.fprintf ppf
    "@.Guaranteed thresholds: T*(side) = (side - 4) / 4 (linear in sqrt n):@.";
  Format.fprintf ppf "%-8s %-8s@." "side" "T*";
  List.iter
    (fun side -> Format.fprintf ppf "%-8d %-8d@." side ((side - 4) / 4))
    (if quick then [ 9; 101 ] else [ 9; 21; 51; 101; 201; 401; 1001 ])

(* ------------------------------- E3 ------------------------------- *)

let e3_gadget_lower_bound ?(quick = false) ppf =
  hr ppf "E3 (Theorem 3): (2k-2)-coloring k-partite graphs needs Omega(n)";
  Format.fprintf ppf "@.Gadget-chain attack across chain lengths (k = 3 unless noted):@.";
  Format.fprintf ppf "%-10s %-4s %-7s %-9s %-10s %-12s %s@." "gadgets" "k" "n"
    "preconds" "result" "seam used" "classes (first/last)";
  let class_name = function
    | Some Colorings.Colorful.Row_colorful -> "row"
    | Some Colorings.Colorful.Column_colorful -> "col"
    | Some Colorings.Colorful.Both -> "both"
    | Some Colorings.Colorful.Neither -> "neither"
    | None -> "-"
  in
  let cases =
    if quick then [ (5, 3); (9, 3) ] else [ (5, 3); (9, 3); (17, 3); (33, 3); (9, 4) ]
  in
  List.iter
    (fun (gadgets, k) ->
      List.iter
        (fun (name, algo) ->
          let r = Thm3_adversary.run ~k ~gadgets ~algorithm:algo () in
          Format.fprintf ppf "%-10d %-4d %-7d %-9b %-10s %-12b %s/%s (%s)@." gadgets k
            (gadgets * k * k)
            r.Thm3_adversary.preconditions_met
            (match r.Thm3_adversary.result with
            | `Defeated _ -> "DEFEATED"
            | `Survived -> "survived")
            r.Thm3_adversary.seam_used
            (class_name r.Thm3_adversary.first_class)
            (class_name r.Thm3_adversary.last_class)
            name)
        [ ("greedy", Portfolio.greedy ()); ("gadget-rows", Portfolio.gadget_rows ()) ])
    cases;
  Format.fprintf ppf
    "@.Defeat precondition T < gadgets/2 - 1: the tolerated locality grows@.";
  Format.fprintf ppf "linearly with n = gadgets * k^2, matching Omega(n):@.";
  Format.fprintf ppf "%-10s %-8s %-8s@." "gadgets" "n(k=3)" "max T";
  List.iter
    (fun g -> Format.fprintf ppf "%-10d %-8d %-8d@." g (9 * g) ((g / 2) - 2))
    (if quick then [ 9; 65 ] else [ 9; 17; 33; 65; 129; 257 ])

(* ------------------------------- E4 ------------------------------- *)

let e4_upper_bound_scaling ?(quick = false) ppf =
  hr ppf "E4 (Theorem 4): the (k+1)-coloring algorithm has O(log n) locality";
  Format.fprintf ppf
    "@.Smallest locality T* at which the algorithm beats sequential, two-ends@.";
  Format.fprintf ppf "and seeded-random presentation orders (vs prescribed 3(k-1)log2 n):@.";
  Format.fprintf ppf "%-22s %-8s %-6s %-12s %s@." "host" "n" "T*" "prescribed"
    "T*/log2 n";
  let grid_points = ref [] in
  let report ?(track = false) host_name host ~k ~oracle =
    let n = Grid_graph.Graph.n host in
    let orders = Measure.adversarial_orders ~host ~seeds:[ 1; 2 ] in
    let make ~t = Kp1_coloring.make ~k ~locality:(fun ~n:_ -> t) () in
    let t_max = Kp1_coloring.default_locality ~k ~n in
    match Measure.min_locality_for_success ~host ~palette:(k + 1) ~orders ~make ~oracle ~t_max () with
    | Some t_star ->
        if track then grid_points := (float_of_int n, float_of_int t_star) :: !grid_points;
        Format.fprintf ppf "%-22s %-8d %-6d %-12d %.2f@." host_name n t_star t_max
          (float_of_int t_star /. (log (float_of_int n) /. log 2.))
    | None -> Format.fprintf ppf "%-22s %-8d > %d@." host_name n t_max
  in
  let grid_sides = if quick then [ 8; 16 ] else [ 8; 12; 16; 24; 32; 48 ] in
  List.iter
    (fun side ->
      let g = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:side ~cols:side in
      report ~track:true
        (Printf.sprintf "grid %dx%d (k=2)" side side)
        (Topology.Grid2d.graph g) ~k:2
        ~oracle:(Oracles.grid_bipartition g))
    grid_sides;
  if List.length !grid_points >= 2 then
    Format.fprintf ppf "grid fit of T* against log2 n: %a@." Fit.pp
      (Fit.fit_log_x (List.rev !grid_points));
  let tri_sides = if quick then [ 10 ] else [ 8; 12; 16; 24; 32 ] in
  List.iter
    (fun side ->
      let t = Topology.Tri_grid.create ~side in
      report
        (Printf.sprintf "tri-grid side %d (k=3)" side)
        (Topology.Tri_grid.graph t) ~k:3 ~oracle:(Oracles.tri_grid t))
    tri_sides;
  let ktree_sizes = if quick then [ 100 ] else [ 100; 200; 400; 800 ] in
  List.iter
    (fun n ->
      let kt = Topology.Ktree.random ~k:2 ~n ~seed:42 in
      report
        (Printf.sprintf "2-tree n=%d (k=3)" n)
        (Topology.Ktree.graph kt) ~k:3 ~oracle:(Oracles.ktree kt))
    ktree_sizes;
  Format.fprintf ppf
    "@.Ablation (flip the larger group instead of the smaller): barrier work@.";
  Format.fprintf ppf "on a merge-heavy order, same locality budget:@.";
  Format.fprintf ppf "%-10s %-14s %-14s@." "side" "waves(smaller)" "waves(larger)";
  List.iter
    (fun side ->
      let g = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:side ~cols:side in
      let host = Topology.Grid2d.graph g in
      let waves flip =
        (* A tight (but sufficient) locality so groups actually coexist
           and conflict; summed over several random orders. *)
        List.fold_left
          (fun acc seed ->
            let stats = Kp1_coloring.fresh_stats () in
            let algo =
              Kp1_coloring.make ~stats ~k:2 ~flip ~locality:(fun ~n:_ -> 3) ()
            in
            let order = FH.orders ~all:host (`Random seed) in
            ignore
              (FH.run ~oracle:(Oracles.grid_bipartition g) ~host ~palette:3
                 ~algorithm:algo ~order ());
            acc + stats.Kp1_coloring.wave_commits)
          0 [ 11; 12; 13; 14; 15 ]
      in
      Format.fprintf ppf "%-10d %-14d %-14d@." side (waves `Smaller) (waves `Larger))
    (if quick then [ 16 ] else [ 16; 24; 32 ])

(* ------------------------------- E5 ------------------------------- *)

let e5_reduction ?(quick = false) ppf =
  hr ppf "E5 (Theorem 5): the Lemma 5.7 reduction";
  Format.fprintf ppf
    "@.A' = reduce(A) colors G_k with one color fewer than A needs on G_(k+1);@.";
  Format.fprintf ppf "simulation is information-precise and locality-preserving:@.";
  Format.fprintf ppf "%-6s %-8s %-10s %-12s %s@." "k" "n(G_k)" "A' proper"
    "inner steps" "outer steps";
  let base_side = if quick then 4 else 6 in
  let base =
    Topology.Grid2d.graph
      (Topology.Grid2d.create Topology.Grid2d.Simple ~rows:base_side ~cols:base_side)
  in
  List.iter
    (fun k ->
      let lay = Topology.Layered.create ~base ~k in
      let host = Topology.Layered.graph lay in
      let inner_steps = ref 0 in
      let inner_raw = Kp1_coloring.make ~k:(k + 1) ~locality:(fun ~n:_ -> 8) () in
      let inner =
        {
          inner_raw with
          Models.Algorithm.instantiate =
            (fun ~n ~palette ~oracle ->
              let f = inner_raw.Models.Algorithm.instantiate ~n ~palette ~oracle in
              fun view ->
                incr inner_steps;
                f view);
        }
      in
      let reduced = Thm5_reduction.reduce ~inner in
      let order = FH.orders ~all:host (`Random 17) in
      let outcome =
        FH.run ~oracle:(Oracles.layered lay) ~host ~palette:(k + 1) ~algorithm:reduced
          ~order ()
      in
      Format.fprintf ppf "%-6d %-8d %-10b %-12d %d@." k
        (Grid_graph.Graph.n host)
        (RS.succeeded outcome ~colors:(k + 1) ~host)
        !inner_steps outcome.RS.presented)
    (if quick then [ 2; 3 ] else [ 2; 3; 4 ])

(* ------------------------------- E6 ------------------------------- *)

let e6_lemma_checks ?(quick = false) ppf =
  hr ppf "E6 (groundwork): Lemmas 3.3-3.5, Claim 4.5, Equation (1), exhaustively";
  let square = Grid_graph.Graph.cycle_graph 4 in
  let cells = ref 0 in
  Colorings.Brute.iter_colorings square ~colors:3 (fun colors ->
      incr cells;
      assert (Colorings.Bvalue.b_cycle colors [ 0; 1; 2; 3 ] = 0));
  Format.fprintf ppf "Lemma 3.3: all %d proper 3-colorings of a 4-cycle have b = 0.@." !cells;
  let grid = Topology.Grid2d.create Topology.Grid2d.Simple ~rows:3 ~cols:3 in
  let g = Topology.Grid2d.graph grid in
  let count = ref 0 in
  Colorings.Brute.iter_colorings g ~colors:3 (fun colors ->
      incr count;
      let cycle = Colorings.Bvalue.rectangle_cycle grid ~top:0 ~bottom:2 ~left:0 ~right:2 in
      assert (Colorings.Bvalue.b_cycle colors cycle = 0));
  Format.fprintf ppf
    "Lemma 3.4: all %d proper 3-colorings of the 3x3 grid close the border cycle at b = 0.@."
    !count;
  let cyl = Topology.Grid2d.create Topology.Grid2d.Cylindrical ~rows:2 ~cols:5 in
  let cg = Topology.Grid2d.graph cyl in
  let eq1 = ref 0 in
  Colorings.Brute.iter_colorings cg ~colors:3 (fun colors ->
      incr eq1;
      let east = Topology.Grid2d.row_nodes cyl 0 in
      let west = List.rev (Topology.Grid2d.row_nodes cyl 1) in
      assert (Colorings.Bvalue.b_cycle colors east + Colorings.Bvalue.b_cycle colors west = 0);
      assert (abs (Colorings.Bvalue.b_cycle colors east) mod 2 = 1));
  Format.fprintf ppf
    "Eq. (1) + Lemma 3.5: all %d proper 3-colorings of the 2x5 cylinder have@." !eq1;
  Format.fprintf ppf "  opposite row b-values cancelling, each odd.@.";
  if not quick then begin
    let k = 3 in
    let chain = Topology.Gadget.create ~k ~gadgets:1 () in
    let rows = ref 0 and cols = ref 0 in
    Colorings.Brute.iter_colorings (Topology.Gadget.graph chain) ~colors:((2 * k) - 2)
      (fun colors ->
        match
          Colorings.Colorful.classify
            (Array.init k (fun i ->
                 Array.init k (fun j ->
                     colors.(Topology.Gadget.node chain ~gadget:0 ~row:i ~col:j))))
        with
        | Colorings.Colorful.Row_colorful -> incr rows
        | Colorings.Colorful.Column_colorful -> incr cols
        | Colorings.Colorful.Both | Colorings.Colorful.Neither -> assert false);
    Format.fprintf ppf
      "Claim 4.5: all %d proper 4-colorings of A(3) split %d row- / %d column-colorful.@."
      (!rows + !cols) !rows !cols
  end

(* ------------------------------- E7 ------------------------------- *)

let e7_limits =
  {
    Harness.Guard.max_color_calls = Some 200_000;
    max_work = Some 100_000;
    deadline = Some 10.0;
  }

(* Per-game instance size and well-behaved victim.  The victim only
   matters for the no-fault baseline and the in-palette faults
   (wrong-color, amnesia); the other classes fail at the first call
   regardless. *)
let e7_games () =
  [
    (Game.thm1, 30, fun () -> Portfolio.ael ~t:1 ());
    (* greedy, not ael: an odd-sided torus is not bipartite, so ael's
       honest answer there is to raise — which would shadow the injected
       faults with a baseline Algorithm_fault. *)
    (Game.thm2_torus, 13, fun () -> Portfolio.greedy ());
    (Game.thm2_cylinder, 13, fun () -> Portfolio.greedy ());
    (Game.thm3, 9, fun () -> Portfolio.gadget_rows ());
    (Game.upper_grid, 8, fun () -> Portfolio.ael ~t:4 ());
    (Game.upper_grid_oracle, 8, fun () -> Portfolio.kp1 ~k:2 ~t:8 ());
  ]

let fault_matrix ?(bulk = false) () =
  let injections =
    ("none", fun algo -> algo) :: Harness.Faults.algorithm_faults
  in
  List.concat_map
    (fun (game, n, base) ->
      List.map
        (fun (fault, inject) ->
          let v = game.Game.play ~bulk ~limits:e7_limits ~n (inject (base ())) in
          (game.Game.name, fault, Game.outcome_label v.Game.outcome))
        injections)
    (e7_games ())

let e7_fault_matrix ?quick:_ ppf =
  hr ppf "E7: engine soundness under fault injection";
  Format.fprintf ppf
    "@.Every fault class x every game must yield exactly the expected typed@.";
  Format.fprintf ppf
    "outcome: honest defeats stay DEFEATED, algorithm bugs become@.";
  Format.fprintf ppf
    "ALGORITHM-FAULT, adversary bugs become ADVERSARY-FAULT, and nothing@.";
  Format.fprintf ppf "aborts the matrix (budgets: %s calls, %s work, %.0fs).@.@."
    (match e7_limits.Harness.Guard.max_color_calls with
    | Some c -> string_of_int c
    | None -> "-")
    (match e7_limits.Harness.Guard.max_work with
    | Some w -> string_of_int w
    | None -> "-")
    (Option.value e7_limits.Harness.Guard.deadline ~default:0.);
  Format.fprintf ppf "%-18s %-16s %s@." "game" "fault" "outcome";
  List.iter
    (fun (game, fault, outcome) ->
      Format.fprintf ppf "%-18s %-16s %s@." game fault outcome)
    (fault_matrix ());
  (* The chaos oracle is a fault on the environment, not the algorithm:
     the Theorem 4 algorithm fed corrupted part ids loses honestly. *)
  let grid = Topology.Grid2d.(create Simple ~rows:8 ~cols:8) in
  let host = Topology.Grid2d.graph grid in
  let oracle ~to_host =
    Harness.Faults.chaos_oracle ~seed:1 (Oracles.grid_bipartition grid ~to_host)
  in
  let order = FH.orders ~all:host (`Random 7) in
  let outcome =
    FH.run ~oracle ~host ~palette:3
      ~algorithm:(Portfolio.kp1 ~k:2 ~t:8 ())
      ~order ()
  in
  Format.fprintf ppf
    "@.chaos oracle (corrupted bipartition) vs kp1 on the 8x8 grid: %s@."
    (match outcome.RS.violation with
    | Some v -> Format.asprintf "%a" RS.pp_violation v
    | None -> "survived (oracle corruption went unpunished!)")

let drivers : (?quick:bool -> Format.formatter -> unit) list =
  [
    e6_lemma_checks;
    e1_grid_lower_bound;
    e2_torus_lower_bound;
    e3_gadget_lower_bound;
    e4_upper_bound_scaling;
    e5_reduction;
    e7_fault_matrix;
  ]

let driver_names =
  [ "e6-lemmas"; "e1-grid"; "e2-torus"; "e3-gadget"; "e4-upper"; "e5-reduction";
    "e7-faults" ]

let run_all ?(quick = false) ?(jobs = 1) ?(isolation = `In_domain) ?supervisor
    ppf =
  let render_driver (driver : ?quick:bool -> Format.formatter -> unit) =
    let buf = Buffer.create 4096 in
    let bppf = Format.formatter_of_buffer buf in
    driver ~quick bppf;
    Format.pp_print_flush bppf ();
    Buffer.contents buf
  in
  match isolation with
  | `Process ->
      (* Each driver renders in a supervised child; like the in-domain
         parallel path below, buffers are delivered in driver order so the
         output is byte-identical at any jobs count.  A driver that raises
         or is quarantined aborts the repro — tables must be whole. *)
      let drivers = Array.of_list drivers in
      let names = Array.of_list driver_names in
      Harness.Supervisor.run ?config:supervisor ~jobs
        ~tasks:(Array.length drivers)
        ~key:(fun i -> names.(i))
        ~work:(fun i -> render_driver drivers.(i))
        ~consume:(fun i outcome ->
          match outcome with
          | Harness.Supervisor.Done rendered ->
              Format.pp_print_string ppf rendered
          | Harness.Supervisor.Failed msg ->
              failwith (Printf.sprintf "driver %s failed: %s" names.(i) msg)
          | Harness.Supervisor.Quarantined q ->
              failwith
                (Printf.sprintf "driver %s: %s" names.(i)
                   (Harness.Supervisor.quarantine_to_string q)))
        ();
      Format.pp_print_flush ppf ()
  | `In_domain ->
      if jobs <= 1 then
        List.iter
          (fun (driver : ?quick:bool -> Format.formatter -> unit) ->
            driver ~quick ppf)
          drivers
      else begin
        (* Each driver renders into its own buffer on a pool worker; buffers
           are concatenated in driver order, so the output is byte-identical
           to the sequential run at any jobs count. *)
        let drivers = Array.of_list drivers in
        Harness.Pool.run ~jobs ~tasks:(Array.length drivers)
          ~work:(fun i -> render_driver drivers.(i))
          ~consume:(fun _ rendered -> Format.pp_print_string ppf rendered);
        Format.pp_print_flush ppf ()
      end
