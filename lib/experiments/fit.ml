type line = { slope : float; intercept : float; r_squared : float }

let fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Fit.fit: need at least 2 points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
  let denom = (nf *. sxx) -. (sx *. sx) in
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let mean_y = sy /. nf in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. mean_y) ** 2.)) 0. points in
  let ss_res =
    List.fold_left
      (fun a (x, y) -> a +. ((y -. (slope *. x) -. intercept) ** 2.))
      0. points
  in
  { slope; intercept; r_squared = 1. -. (ss_res /. ss_tot) }

let fit_log_x points = fit (List.map (fun (x, y) -> (log x /. log 2., y)) points)

let pp ppf l =
  Format.fprintf ppf "slope=%.3f intercept=%.3f R^2=%.3f" l.slope l.intercept
    l.r_squared
