(** The experiment drivers behind EXPERIMENTS.md: one per theorem.

    The paper is a theory paper with no measurement tables, so each
    "experiment" regenerates the {e shape} of one theorem: who wins
    (adversary or algorithm), at which locality threshold, and how the
    threshold scales with [n].  Every driver prints a self-contained
    table; [~quick:true] shrinks the parameter ranges to bench-friendly
    sizes (the defaults match EXPERIMENTS.md). *)

module Fit : module type of Fit
(** Least-squares fits for the sweep tables (re-exported). *)

val e1_grid_lower_bound : ?quick:bool -> Format.formatter -> unit
(** Theorem 1.  (a) The portfolio falls to the Lemma 3.6 adversary;
    (b) the defeat frontier k*(T) for the paper's own algorithm grows
    with T; (c) the guaranteed-defeat locality threshold grows
    logarithmically in n. *)

val e2_torus_lower_bound : ?quick:bool -> Format.formatter -> unit
(** Theorem 2.  The two-row attack on cylindrical and toroidal grids:
    guaranteed-defeat threshold T*(side) = (side-4)/4 — linear in
    sqrt n — checked by playing the attack across sides and localities. *)

val e3_gadget_lower_bound : ?quick:bool -> Format.formatter -> unit
(** Theorem 3.  The gadget-chain attack across chain lengths and k:
    the defeat precondition T < n'/2 - 1 is linear in n. *)

val e4_upper_bound_scaling : ?quick:bool -> Format.formatter -> unit
(** Theorem 4.  Minimal locality at which the (k+1)-coloring algorithm
    beats a set of adversarial orders, as n grows, on grids (k=2),
    triangular grids (k=3) and k-trees — compared against the prescribed
    3 (k-1) log2 n. *)

val e5_reduction : ?quick:bool -> Format.formatter -> unit
(** Theorem 5.  The Lemma 5.7 reduction at work on G_2..G_4: correctness
    and simulation overhead (presentations made to the inner algorithm
    per outer presentation). *)

val e6_lemma_checks : ?quick:bool -> Format.formatter -> unit
(** Section 3.1/4.1 groundwork: exhaustive counts for Lemmas 3.3-3.5,
    Claim 4.5 and Equation (1) on enumerable instances. *)

val fault_matrix : ?bulk:bool -> unit -> (string * string * string) list
(** The E7 matrix data: [(game, fault, outcome label)] for every game in
    the registry crossed with every {!Harness.Faults.algorithm_faults}
    class (plus a no-fault baseline), each played under the E7 budgets.
    Deterministic; the fault-matrix test pins these rows exactly.
    [~bulk:true] plays every cell on the executor fast path — the
    bulk-equivalence test asserts the rows are identical either way. *)

val e7_fault_matrix : ?quick:bool -> Format.formatter -> unit
(** Engine soundness.  Prints {!fault_matrix} as a table, then the
    chaos-oracle case (corrupted bipartition part ids fed to the
    Theorem 4 algorithm).  No fault class aborts the sweep: every cell
    degrades to a typed verdict. *)

val run_all :
  ?quick:bool ->
  ?jobs:int ->
  ?isolation:Harness.Sweep.isolation ->
  ?supervisor:Harness.Supervisor.config ->
  Format.formatter ->
  unit
(** All of the above, in order.  With [jobs > 1] the drivers render
    concurrently on a {!Harness.Pool} (each into a private buffer) and
    the buffers are printed in driver order — output is byte-identical
    to the sequential run.  With [~isolation:`Process] each driver
    instead renders inside a supervised child process
    ({!Harness.Supervisor}, tuned by [?supervisor]); output is still
    byte-identical, and a driver whose child dies abnormally is retried,
    then — unlike a sweep cell — aborts the repro with [Failure]
    (partial experiment tables are worse than no tables).  One caveat:
    E7's 10-second wall-clock deadline is measured per game, so extreme
    oversubscription could in principle push a game past it; the E7
    games finish in milliseconds, leaving orders of magnitude of
    slack. *)
