(* Client-side shard router: one campaign fanned across N serve.exe
   endpoints, multiplexed single-threaded over [Unix.select] (the same
   structure as the server's own main loop — no domains, no locks).

   The exactly-once story is inherited, not invented: job ids are
   content-derived ({!Client.job_id}), every server dedups on them, and
   this router dedups result deliveries on them too — so resubmitting a
   lost endpoint's unfinished jobs elsewhere can change which server
   answers, never how many answers land in [results].  Redundant
   deliveries are counted ([duplicates]), making the dedup observable
   rather than silent. *)

type verdict = [ `Full | `Degraded of string list ]

let verdict_to_string = function
  | `Full -> "FULL"
  | `Degraded reasons -> "DEGRADED (" ^ String.concat "; " reasons ^ ")"

type campaign = {
  results : string list;
  verdict : verdict;
  failovers : int;
  duplicates : int;
  resubmits : int;
  rejections : int;
  reconnects : int;
}

(* ------------------------------- state ------------------------------- *)

type ep = {
  espec : string;
  eidx : int;
  mutable conn : Client.Endpoint.t option;
  mutable failures : int;  (* consecutive connection failures *)
  mutable open_until : float;  (* circuit breaker: no reconnect before *)
  mutable last_state : string;  (* last traced state, to dedup events *)
  mutable ever_lost : bool;
  mutable draining : bool;
  mutable depth : int;  (* last probed queued count *)
  mutable inflight : int;  (* unresolved jobs submitted on this conn *)
  mutable probe_at : float;  (* next depth probe due *)
}

type jb = {
  id : string;
  kind : string;
  payload : string;
  home : int;  (* seeded-deterministic initial shard *)
  mutable target : int;  (* current endpoint assignment *)
  mutable result : string option;
  mutable submitted : bool;  (* in flight on [target]'s current conn *)
  mutable rejects : int;
  mutable due : float;  (* no (re)submit before this time *)
}

(* Seeded-deterministic sharding: FNV-fold the job id, finalize with the
   splitmix mixer.  Independent of endpoint health, arrival order, and
   process — the same (seed, job) lands on the same home shard in every
   run, which is what makes a campaign's failure handling replayable. *)
let shard ~seed ~n id =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    id;
  let m = Backoff.mix64 (Int64.add !h (Int64.of_int seed)) in
  Int64.to_int (Int64.unsigned_rem m (Int64.of_int n))

let home_shard ~shard_seed ~endpoints ~kind ~payload =
  if endpoints < 1 then invalid_arg "Fleet: endpoints must be >= 1";
  shard ~seed:shard_seed ~n:endpoints (Client.job_id ~kind ~payload)

let with_sigpipe_ignored f =
  let prev =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter (fun b -> Sys.set_signal Sys.sigpipe b) prev)
    f

let split_tab s =
  match String.index_opt s '\t' with
  | None -> (s, "")
  | Some t -> (String.sub s 0 t, String.sub s (t + 1) (String.length s - t - 1))

(* load gap that triggers moving queued work to a shallower endpoint *)
let rebalance_threshold = 8

(* ------------------------------ campaign ----------------------------- *)

let run_campaign ?(backoff = Backoff.default) ?(window = 16) ?deadline
    ?(max_attempts = 10_000) ?(recv_timeout = 30.) ?(shard_seed = 0)
    ?(probe_interval = 0.25) ~endpoints specs =
  if endpoints = [] then invalid_arg "Fleet: at least one endpoint required";
  if window < 1 then invalid_arg "Fleet: window must be >= 1";
  if max_attempts < 1 then invalid_arg "Fleet: max_attempts must be >= 1";
  if probe_interval <= 0. then invalid_arg "Fleet: probe_interval must be positive";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s then
        invalid_arg ("Fleet: duplicate endpoint " ^ s);
      Hashtbl.replace seen s ())
    endpoints;
  Backoff.validate backoff;
  let deadline_ms =
    match deadline with
    | None -> ""
    | Some s ->
        if s <= 0. then invalid_arg "Fleet: deadline must be positive";
        string_of_int (int_of_float (s *. 1000.))
  in
  let n = List.length endpoints in
  let eps =
    Array.of_list
      (List.mapi
         (fun i spec ->
           {
             espec = spec;
             eidx = i;
             conn = None;
             failures = 0;
             open_until = 0.;
             last_state = "";
             ever_lost = false;
             draining = false;
             depth = 0;
             inflight = 0;
             probe_at = 0.;
           })
         endpoints)
  in
  (* unique jobs in first-appearance order; duplicate specs share an id *)
  let tbl : (string, jb) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (kind, payload) ->
      let id = Client.job_id ~kind ~payload in
      if not (Hashtbl.mem tbl id) then begin
        let home = shard ~seed:shard_seed ~n id in
        Hashtbl.replace tbl id
          {
            id;
            kind;
            payload;
            home;
            target = home;
            result = None;
            submitted = false;
            rejects = 0;
            due = 0.;
          };
        order := id :: !order
      end)
    specs;
  let order = List.rev !order in
  let jobs = List.map (fun id -> Hashtbl.find tbl id) order in
  let unresolved = ref (List.length jobs) in
  let total_submits = ref 0 in
  let resubmits = ref 0 in
  let rejections = ref 0 in
  let reconnects = ref 0 in
  let failovers = ref 0 in
  let duplicates = ref 0 in
  let rebalanced = ref 0 in
  let dead_rounds = ref 0 in
  let reasons = ref [] in  (* degraded reasons, newest first *)
  let add_reason r = if not (List.mem r !reasons) then reasons := r :: !reasons in
  let metric name = if Metrics.on () then Metrics.incr name in
  let trace_state e state =
    if e.last_state <> state then begin
      e.last_state <- state;
      if Trace.on () then
        Trace.emit (Trace.Endpoint_state { endpoint = e.espec; state })
    end
  in
  if Trace.on () then
    Trace.emit (Trace.Fleet_start { endpoints = n; jobs = window; shard_seed });
  metric "fleet.campaigns";
  let live e = e.conn <> None && not e.draining in
  let unsubmit_jobs_of e =
    List.iter
      (fun j ->
        if j.target = e.eidx && j.result = None && j.submitted then
          j.submitted <- false)
      jobs;
    e.inflight <- 0
  in
  let breaker_trip e now reason =
    e.failures <- e.failures + 1;
    e.open_until <- now +. Backoff.delay backoff ~key:e.espec ~attempt:e.failures;
    if not e.ever_lost then begin
      e.ever_lost <- true;
      metric "fleet.endpoints_lost"
    end;
    add_reason (Printf.sprintf "endpoint %s unreachable (%s)" e.espec reason);
    trace_state e "unreachable"
  in
  let lose_ep e now reason =
    (match e.conn with
    | Some c ->
        Client.Endpoint.close c;
        e.conn <- None;
        incr reconnects
    | None -> ());
    breaker_trip e now reason;
    unsubmit_jobs_of e
  in
  let mark_draining e =
    if not e.draining then begin
      e.draining <- true;
      add_reason (Printf.sprintf "endpoint %s draining" e.espec);
      trace_state e "draining";
      (* its queued jobs will never run there; resubmit them elsewhere.
         In-flight ones may still answer on the open connection — the
         dedup layer absorbs the extra delivery. *)
      unsubmit_jobs_of e
    end
  in
  let try_connect e now =
    match Client.Endpoint.connect ~recv_timeout e.espec with
    | c ->
        e.conn <- Some c;
        e.failures <- 0;
        e.probe_at <- now;  (* probe a fresh connection right away *)
        dead_rounds := 0;
        trace_state e "up"
    | exception Client.Conn_lost reason -> breaker_trip e now reason
  in
  (* pick the first live endpoint scanning from the job's home shard —
     deterministic in (job, set of live endpoints) *)
  let pick_target j =
    let rec go k =
      if k = n then None
      else
        let e = eps.((j.home + k) mod n) in
        if live e then Some e.eidx else go (k + 1)
    in
    go 0
  in
  let submit e j =
    incr total_submits;
    if !total_submits > List.length jobs then begin
      incr resubmits;
      metric "fleet.resubmits"
    end;
    j.submitted <- true;
    e.inflight <- e.inflight + 1;
    match e.conn with
    | Some c ->
        Client.Endpoint.send c ~tag:'S'
          (j.kind ^ "\t" ^ deadline_ms ^ "\n" ^ j.payload)
    | None -> assert false
  in
  let handle_frame e now { Wire.tag; payload } =
    match tag with
    | 'A' -> ()
    | 'R' -> (
        let id, result = split_tab payload in
        match Hashtbl.find_opt tbl id with
        | Some j when j.result = None ->
            j.result <- Some result;
            decr unresolved;
            if j.submitted then begin
              j.submitted <- false;
              let t = eps.(j.target) in
              t.inflight <- max 0 (t.inflight - 1)
            end
        | Some _ ->
            (* a second server also answered (failover raced a live
               completion): delivered once, counted here *)
            incr duplicates;
            metric "fleet.duplicates"
        | None -> ())
    | 'X' -> (
        let id, reason = split_tab payload in
        incr rejections;
        metric "fleet.rejections";
        match Hashtbl.find_opt tbl id with
        | Some j when j.result = None ->
            if j.submitted then begin
              j.submitted <- false;
              let t = eps.(j.target) in
              t.inflight <- max 0 (t.inflight - 1)
            end;
            j.rejects <- j.rejects + 1;
            if j.rejects > max_attempts then
              failwith
                (Printf.sprintf "Fleet: job %s rejected %d times, giving up" id
                   j.rejects);
            if reason = "draining" then begin
              mark_draining e;
              j.due <- now  (* move elsewhere immediately *)
            end
            else
              j.due <- now +. Backoff.delay backoff ~key:id ~attempt:j.rejects
        | _ -> ())
    | 'D' -> (
        (* queued \t running \t completed \t draining *)
        match String.split_on_char '\t' payload with
        | queued :: _running :: _completed :: draining :: _ ->
            (match int_of_string_opt queued with
            | Some q -> e.depth <- q
            | None -> ());
            if draining = "1" then mark_draining e
        | _ -> ())
    | 'E' -> raise (Client.Conn_lost ("server error: " ^ payload))
    | _ -> ()
  in
  let rebalance () =
    let lives = Array.to_list eps |> List.filter live in
    match lives with
    | [] | [ _ ] -> ()
    | lives ->
        let load e = e.depth + e.inflight in
        let deep =
          List.fold_left (fun a e -> if load e > load a then e else a)
            (List.hd lives) lives
        in
        let shallow =
          List.fold_left (fun a e -> if load e < load a then e else a)
            (List.hd lives) lives
        in
        if deep.eidx <> shallow.eidx
           && load deep - load shallow >= rebalance_threshold
        then begin
          let quota = ref ((load deep - load shallow) / 2) in
          let moved = ref 0 in
          List.iter
            (fun j ->
              if !quota > 0 && j.result = None && (not j.submitted)
                 && j.target = deep.eidx
              then begin
                j.target <- shallow.eidx;
                decr quota;
                incr moved
              end)
            jobs;
          if !moved > 0 then begin
            rebalanced := !rebalanced + !moved;
            metric "fleet.rebalanced";
            if Trace.on () then
              Trace.emit
                (Trace.Rebalance
                   { moved = !moved; src = deep.espec; dst = shallow.espec })
          end
        end
  in
  with_sigpipe_ignored @@ fun () ->
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e ->
          match e.conn with
          | Some c ->
              Client.Endpoint.close c;
              e.conn <- None
          | None -> ())
        eps)
  @@ fun () ->
  while !unresolved > 0 do
    let now = Unix.gettimeofday () in
    (* reconnect endpoints whose breaker window has passed *)
    Array.iter
      (fun e ->
        if e.conn = None && (not e.draining) && now >= e.open_until then
          try_connect e now)
      eps;
    if Array.for_all (fun e -> not (live e)) eps then begin
      (* whole fleet dark: bound the wait like the single-server client
         bounds its reconnect loop *)
      incr dead_rounds;
      if !dead_rounds > max_attempts then
        failwith
          (Printf.sprintf
             "Fleet: giving up: all %d endpoints unreachable after %d rounds"
             n !dead_rounds);
      let earliest =
        Array.fold_left
          (fun acc e ->
            if e.draining then acc else Float.min acc e.open_until)
          infinity eps
      in
      if earliest = infinity then
        failwith "Fleet: every endpoint is draining; no server can run the work";
      if earliest > now then Unix.sleepf (Float.min 1. (earliest -. now))
    end
    else begin
      (* assign + submit due jobs, respecting per-endpoint windows *)
      List.iter
        (fun j ->
          if j.result = None && (not j.submitted) && j.due <= now then begin
            let target_live = live eps.(j.target) in
            (match (target_live, pick_target j) with
            | false, Some t when t <> j.target ->
                incr failovers;
                metric "fleet.failovers";
                if Trace.on () then
                  Trace.emit
                    (Trace.Failover
                       {
                         id = j.id;
                         src = eps.(j.target).espec;
                         dst = eps.(t).espec;
                       });
                j.target <- t
            | _ -> ());
            let e = eps.(j.target) in
            if live e && e.inflight < window then
              try submit e j
              with Client.Conn_lost reason -> lose_ep e now reason
          end)
        jobs;
      (* depth probes drive the rebalancer *)
      Array.iter
        (fun e ->
          if live e && now >= e.probe_at then begin
            e.probe_at <- now +. probe_interval;
            match e.conn with
            | Some c -> (
                try Client.Endpoint.send c ~tag:'Q' ""
                with Client.Conn_lost reason -> lose_ep e now reason)
            | None -> ()
          end)
        eps;
      rebalance ();
      (* wait for replies (or the next due/breaker/probe deadline) *)
      let rfds =
        Array.to_list eps
        |> List.filter_map (fun e -> Option.map Client.Endpoint.fd e.conn)
      in
      let timeout =
        let t = ref 0.25 in
        let consider due =
          if due > now then t := Float.min !t (due -. now)
          else if due > 0. then t := 0.
        in
        List.iter (fun j -> if j.result = None && not j.submitted then consider j.due) jobs;
        Array.iter
          (fun e ->
            if e.conn = None && not e.draining then consider e.open_until;
            if live e then consider e.probe_at)
          eps;
        Float.max 0. !t
      in
      match Unix.select rfds [] [] timeout with
      | ready, _, _ ->
          List.iter
            (fun fd ->
              match
                Array.fold_left
                  (fun acc e ->
                    match e.conn with
                    | Some c when Client.Endpoint.fd c = fd -> Some e
                    | _ -> acc)
                  None eps
              with
              | Some e -> (
                  match
                    Option.fold ~none:[] ~some:Client.Endpoint.pump e.conn
                  with
                  | frames -> (
                      dead_rounds := 0;
                      try List.iter (handle_frame e now) frames
                      with Client.Conn_lost reason -> lose_ep e now reason)
                  | exception Client.Conn_lost reason -> lose_ep e now reason)
              | None -> ())
            ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  let results =
    List.map
      (fun (kind, payload) ->
        match (Hashtbl.find tbl (Client.job_id ~kind ~payload)).result with
        | Some r -> r
        | None -> assert false)
      specs
  in
  if !failovers > 0 then
    add_reason (Printf.sprintf "%d job(s) failed over" !failovers);
  let verdict =
    match !reasons with [] -> `Full | rs -> `Degraded (List.rev rs)
  in
  if Trace.on () then
    Trace.emit
      (Trace.Fleet_verdict
         {
           verdict = verdict_to_string verdict;
           results = List.length results;
           failovers = !failovers;
           duplicates = !duplicates;
         });
  {
    results;
    verdict;
    failovers = !failovers;
    duplicates = !duplicates;
    resubmits = !resubmits;
    rejections = !rejections;
    reconnects = !reconnects;
  }
