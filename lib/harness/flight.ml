(* Re-export: see the note in trace.ml — one ring, two names. *)
include Obs.Flight
