type error =
  | Unknown_tag of char
  | Negative_length of { tag : char }
  | Oversized of { tag : char; declared : int; limit : int }

let pp_error ppf = function
  | Unknown_tag c -> Format.fprintf ppf "unexpected byte %C" c
  | Negative_length { tag } -> Format.fprintf ppf "negative frame length (tag %C)" tag
  | Oversized { tag; declared; limit } ->
      Format.fprintf ppf "oversized frame (tag %C): %d bytes declared, limit %d"
        tag declared limit

let error_to_string e = Format.asprintf "%a" pp_error e

type frame = { tag : char; payload : string }

let default_max_payload = 16 * 1024 * 1024

let encode ~tag payload =
  let n = String.length payload in
  if n > Int32.to_int Int32.max_int then
    invalid_arg "Wire.encode: payload exceeds the int32 frame-length range";
  let frame = Bytes.create (5 + n) in
  Bytes.set frame 0 tag;
  Bytes.set_int32_be frame 1 (Int32.of_int n);
  Bytes.blit_string payload 0 frame 5 n;
  frame

let encode_bare tag = Bytes.make 1 tag

(* IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320), table-driven.
   Stays in [Wire] because it is the harness's shared integrity
   primitive: journal v2 record trailers checksum with it, and any
   future frame-level integrity layer would too. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc s =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_update 0 s

type decoder = {
  tags : string;
  bare : string;
  max_payload : int;
  buf : Buffer.t;
  (* consumed prefix of [buf]; compacted when it grows past the live
     suffix so a long-lived stream doesn't accumulate dead bytes *)
  mutable pos : int;
  mutable poisoned : error option;
}

let decoder ?(max_payload = default_max_payload) ?(bare = "") ~tags () =
  if max_payload < 0 then invalid_arg "Wire.decoder: max_payload must be >= 0";
  String.iter
    (fun c ->
      if String.contains bare c then
        invalid_arg "Wire.decoder: a tag cannot be both framed and bare")
    tags;
  { tags; bare; max_payload; buf = Buffer.create 256; pos = 0; poisoned = None }

let live d = Buffer.length d.buf - d.pos

let compact d =
  if d.pos > 0 && d.pos >= live d then begin
    let rest = Buffer.sub d.buf d.pos (live d) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.pos <- 0
  end

let feed d buf off len =
  if d.poisoned = None && len > 0 then begin
    compact d;
    Buffer.add_subbytes d.buf buf off len
  end

let feed_string d s = feed d (Bytes.unsafe_of_string s) 0 (String.length s)

let buffered d = if d.poisoned = None then live d else 0

let poison d e =
  d.poisoned <- Some e;
  Buffer.clear d.buf;
  d.pos <- 0;
  Error e

let decode d =
  match d.poisoned with
  | Some e -> Error e
  | None ->
      let n = live d in
      if n = 0 then Ok None
      else
        let tag = Buffer.nth d.buf d.pos in
        if String.contains d.bare tag then begin
          d.pos <- d.pos + 1;
          compact d;
          Ok (Some { tag; payload = "" })
        end
        else if not (String.contains d.tags tag) then poison d (Unknown_tag tag)
        else if n < 5 then Ok None
        else
          let hdr = Bytes.of_string (Buffer.sub d.buf d.pos 5) in
          let len = Int32.to_int (Bytes.get_int32_be hdr 1) in
          if len < 0 then poison d (Negative_length { tag })
          else if len > d.max_payload then
            (* checked before any length-proportional allocation *)
            poison d (Oversized { tag; declared = len; limit = d.max_payload })
          else if n < 5 + len then Ok None
          else begin
            let payload = Buffer.sub d.buf (d.pos + 5) len in
            d.pos <- d.pos + 5 + len;
            compact d;
            Ok (Some { tag; payload })
          end
