(** Fleet dispatch: one campaign sharded across N {!Server} endpoints,
    with failover, circuit breakers, and queue-depth rebalancing — and
    the same byte-identity contract as a single-server campaign.

    {2 Topology}

    A single-threaded router multiplexes one {!Client.Endpoint} per
    server with [Unix.select].  Each unique job (content-derived id,
    {!Client.job_id}) gets a {e home} shard —
    [mix64 (hash id + seed) mod N] — deterministic in [(shard_seed, job)]
    and independent of arrival order or endpoint health, so two runs of
    the same campaign shard identically.

    {2 Failover and exactly-once}

    When an endpoint dies (EOF, reset, refused, receive timeout) or
    starts draining, its unfinished jobs are resubmitted to the next
    live endpoint.  This is safe {e because} job ids are content-derived
    and every server dedups on them: the worst case is two servers
    computing the same job, and the router delivers the first ['R'] per
    id into [results], counting later ones in [duplicates] — the
    counter that makes the dedup observable.  Results always come back
    in spec order, so dispatch output is byte-identical to a serverless
    sweep and to a single-server campaign at every shard count, [jobs]
    level, isolation mode, and kill/restart history.

    {2 Breakers and rebalancing}

    A failed endpoint is not hammered: each failure opens a per-endpoint
    circuit breaker for the seeded {!Backoff} delay of its consecutive
    failure count; reconnects are attempted only after it closes.
    Cheap ['Q']/['D'] depth probes (no JSON) feed a rebalancer that
    moves queued-but-unsubmitted work from the deepest endpoint to the
    shallowest when their load gap exceeds a threshold.

    The campaign survives down to one live endpoint; what it cannot
    hide it {e types}: any endpoint loss, drain, or failover degrades
    the verdict to [`Degraded reasons] instead of pretending the run
    was calm. *)

type verdict = [ `Full | `Degraded of string list ]
(** [`Full]: every endpoint stayed up and no job moved.  [`Degraded]:
    the campaign completed, but the listed endpoint losses / drains /
    failovers happened on the way. *)

val verdict_to_string : verdict -> string
(** ["FULL"], or ["DEGRADED (reason; reason; ...)"]. *)

type campaign = {
  results : string list;
      (** one result per submitted spec, {e in spec order} — byte-equal
          to a serverless run and to {!Client.run_campaign} *)
  verdict : verdict;
  failovers : int;  (** job reassignments off a dead/draining endpoint *)
  duplicates : int;
      (** redundant ['R'] deliveries dropped by the dedup layer — the
          exactly-once proof surface *)
  resubmits : int;  (** submit frames beyond the first per unique job *)
  rejections : int;  (** typed ['X'] answers absorbed *)
  reconnects : int;  (** endpoint connections lost and re-established *)
}

val home_shard :
  shard_seed:int -> endpoints:int -> kind:string -> payload:string -> int
(** The home shard (in [\[0, endpoints)]) a job would be assigned under
    a given seed — the sharding hash, exposed so placement is
    predictable offline (and testable: a pure function of its
    arguments).
    @raise Invalid_argument if [endpoints < 1]. *)

val run_campaign :
  ?backoff:Backoff.config ->
  ?window:int ->
  ?deadline:float ->
  ?max_attempts:int ->
  ?recv_timeout:float ->
  ?shard_seed:int ->
  ?probe_interval:float ->
  endpoints:string list ->
  (string * string) list ->
  campaign
(** [run_campaign ~endpoints specs] shards every [(kind, payload)] spec
    across [endpoints] (socket specs: Unix paths or ["tcp:PORT"]) and
    blocks until all results are in.  [window] (default 16) bounds the
    jobs in flight {e per endpoint}; [shard_seed] (default 0) seeds the
    home-shard hash; [probe_interval] (default 0.25 s) paces depth
    probes; [backoff], [deadline], [max_attempts], [recv_timeout] as in
    {!Client.run_campaign}.

    Emits [fleet_start] / [endpoint_state] / [failover] / [rebalance] /
    [fleet_verdict] trace events and [fleet.*] metrics when
    observability is on.

    @raise Invalid_argument on an empty or duplicated endpoint list, or
    an invalid parameter.
    @raise Failure when the whole fleet is unreachable [max_attempts]
    rounds in a row, when one job is rejected [max_attempts] times, or
    when every endpoint is draining (no server can run new work). *)
