module A = Models.Algorithm

(* Every combinator reports the calls at which it actually fires, so a
   trace distinguishes "fault armed" (visible in the algorithm name)
   from "fault delivered". *)
let injected ~tag ~call =
  if Trace.on () then Trace.emit (Trace.Fault_injected { tag; call });
  if Metrics.on () then Metrics.incr ("faults.injected." ^ tag)

let wrap ~tag algo transform =
  {
    algo with
    A.name = Printf.sprintf "%s(%s)" tag algo.A.name;
    (* call-count-dependent faults are stateful: never memo-skip them *)
    pure = false;
    instantiate =
      (fun ~n ~palette ~oracle ->
        transform ~palette (algo.A.instantiate ~n ~palette ~oracle));
  }

let counting transform = fun ~palette inst ->
  let calls = ref 0 in
  fun view ->
    incr calls;
    transform ~palette ~call:!calls inst view

let wrong_color ~every algo =
  if every < 1 then invalid_arg "Faults.wrong_color: every must be >= 1";
  wrap ~tag:(Printf.sprintf "wrong-color@%d" every) algo
    (counting (fun ~palette ~call inst view ->
         let c = inst view in
         if call mod every = 0 then begin
           injected ~tag:"wrong-color" ~call;
           (c + 1) mod palette
         end
         else c))

let out_of_palette ?color ~at_step algo =
  wrap ~tag:(Printf.sprintf "out-of-palette@%d" at_step) algo
    (counting (fun ~palette ~call inst view ->
         if call = at_step then begin
           injected ~tag:"out-of-palette" ~call;
           Option.value color ~default:palette
         end
         else inst view))

let raise_at ?(message = "injected fault") ~step algo =
  wrap ~tag:(Printf.sprintf "raise@%d" step) algo
    (counting (fun ~palette:_ ~call inst view ->
         if call = step then begin
           injected ~tag:"raise" ~call;
           failwith message
         end
         else inst view))

let spin ~steps algo =
  wrap ~tag:(Printf.sprintf "spin@%d" steps) algo
    (counting (fun ~palette:_ ~call inst view ->
         if call >= steps then begin
           injected ~tag:"spin" ~call;
           while true do
             Guard.tick ()
           done
         end;
         inst view))

let amnesia algo =
  {
    algo with
    A.name = Printf.sprintf "amnesia(%s)" algo.A.name;
    pure = false;
    instantiate =
      (fun ~n ~palette ~oracle ->
        (* A fresh instance per color call: the unbounded global memory
           of the Online-LOCAL model is dropped on the floor. *)
        let calls = ref 0 in
        fun view ->
          incr calls;
          injected ~tag:"amnesia" ~call:!calls;
          algo.A.instantiate ~n ~palette ~oracle view);
  }

let chaos_oracle ~seed oracle =
  let parts = oracle.Models.Oracle.parts in
  let queries = ref 0 in
  {
    oracle with
    Models.Oracle.query =
      (fun view handles ->
        (* Copy before perturbing: the wrapped oracle may hand out a
           shared or cached buffer, and the injected fault must corrupt
           the answer, not the oracle's own state. *)
        incr queries;
        let raw = Array.copy (oracle.Models.Oracle.query view handles) in
        let corrupted = ref false in
        List.iteri
          (fun i h ->
            if (h + seed) mod 2 = 0 then begin
              corrupted := true;
              raw.(i) <- (raw.(i) + 1) mod parts
            end)
          handles;
        if !corrupted then injected ~tag:"chaos-oracle" ~call:!queries;
        raw);
  }

let algorithm_faults =
  [
    (* every:2, not every:1 — shifting EVERY answer by +1 mod palette is
       a color permutation, which turns a proper strategy into another
       proper strategy; alternating actually corrupts. *)
    ("wrong-color", fun algo -> wrong_color ~every:2 algo);
    ("out-of-palette", fun algo -> out_of_palette ~at_step:1 algo);
    ("raise", fun algo -> raise_at ~step:1 algo);
    ("spin", fun algo -> spin ~steps:1 algo);
    ("amnesia", amnesia);
  ]
